/// \file quickstart.cpp
/// \brief finser in ~40 lines: characterize a 14 nm SOI FinFET SRAM cell,
/// run the cross-layer Monte Carlo on a small array, and report the
/// alpha-particle soft-error rate.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "finser/core/ser_flow.hpp"

int main() {
  using namespace finser;

  // 1. Configure the flow. Defaults reproduce the paper's setup (14 nm SOI
  //    FinFET 6T cell, thin-cell layout); we shrink the Monte-Carlo sizes so
  //    the quickstart finishes in a few seconds.
  core::SerFlowConfig cfg;
  cfg.array_rows = 4;
  cfg.array_cols = 4;
  cfg.characterization.vdds = {0.8};          // Nominal supply only.
  cfg.characterization.pv_samples_single = 60;
  cfg.characterization.pv_samples_grid = 16;
  cfg.array_mc.strikes = 20000;
  cfg.alpha_bins = 8;

  core::SerFlow flow(cfg);

  // 2. Characterize the cell (SPICE level). This builds the POF LUTs —
  //    the per-cell probability of failure vs injected charge.
  const sram::CellSoftErrorModel& cell = flow.cell_model();
  const sram::PofTable& table = cell.at_vdd(0.8);
  std::printf("cell characterized at Vdd = %.1f V\n", table.vdd_v);
  std::printf("  critical charge (I1, nominal): %.4f fC  (~%.0f e-h pairs)\n",
              table.singles[0].nominal_qcrit_fc,
              table.singles[0].nominal_qcrit_fc / 1.602176634e-4);
  std::printf("  critical charge spread (sigma): %.4f fC\n",
              table.singles[0].stddev_qcrit_fc());

  // 3. Sweep the terrestrial alpha spectrum over the array (device +
  //    array levels) and integrate the FIT rate (Eq. 8 of the paper).
  const auto result = flow.sweep(env::package_alphas());
  const core::FitResult& fit = result.fit[0][core::kModeWithPv];

  std::printf("\nalpha-induced soft errors, %zux%zu array @ 0.8 V:\n",
              flow.layout().rows(), flow.layout().cols());
  std::printf("  SER    : %.3e FIT\n", fit.fit_tot);
  std::printf("  SEU    : %.3e FIT\n", fit.fit_seu);
  std::printf("  MBU    : %.3e FIT  (MBU/SEU = %.2f %%)\n", fit.fit_mbu,
              fit.fit_seu > 0.0 ? 100.0 * fit.fit_mbu / fit.fit_seu : 0.0);
  return 0;
}
