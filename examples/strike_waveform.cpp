/// \file strike_waveform.cpp
/// \brief A look inside the circuit level: the storage-node waveforms of a
/// sub-critical (recovered) and a super-critical (flipped) particle strike.
///
/// Writes plot-ready CSVs and prints an ASCII sketch — the femtosecond
/// charge dump, the nanosecond-scale regenerative decision, and why the
/// paper's "only the pulse charge matters" observation holds: by the time
/// the cross-coupled pair reacts, the pulse is long gone.

#include <cstdio>
#include <fstream>

#include "finser/spice/dc.hpp"
#include "finser/sram/cell.hpp"
#include "finser/sram/characterize.hpp"

namespace {

using namespace finser;

/// Render one probe as a rough ASCII strip chart.
void sketch(const spice::Waveform& w, std::size_t probe, double vdd,
            const char* label) {
  std::printf("  %-3s ", label);
  const double t_end = w.times().back();
  for (int col = 0; col < 64; ++col) {
    const double t = t_end * col / 63.0;
    const double v = w.at(probe, t);
    const char* glyph = v > 0.8 * vdd   ? "#"
                        : v > 0.6 * vdd ? "+"
                        : v > 0.4 * vdd ? "-"
                        : v > 0.2 * vdd ? "."
                                        : " ";
    std::printf("%s", glyph);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using sram::CellDesign;
  using sram::StrikeCharges;

  const double vdd = 0.8;
  sram::StrikeSimulator sim(CellDesign{}, vdd);

  // Find the critical charge, then show strikes at 0.9x and 1.1x of it.
  const double qcrit = sram::bisect_critical_scale(
      sim, StrikeCharges{1, 0, 0}, sram::DeltaVt{}, 0.6, 1e-4,
      spice::PulseShape::Kind::kRectangular);
  std::printf("6T cell @ %.1f V, critical charge %.4f fC\n\n", vdd, qcrit);

  // Re-run the two strikes with direct SPICE calls so we keep the waveforms.
  for (double scale : {0.9, 1.1}) {
    sram::StrikeSimulator fresh(CellDesign{}, vdd);
    const auto outcome =
        fresh.simulate(StrikeCharges{scale * qcrit, 0.0, 0.0});
    std::printf("strike at %.1fx Qcrit (%.4f fC): %s\n", scale, scale * qcrit,
                outcome.flipped ? "FLIPPED" : "recovered");
  }

  // For the CSV/ASCII view, rebuild the cell circuit explicitly (public
  // SPICE API) so the waveform object is in our hands.
  for (double scale : {0.9, 1.1}) {
    spice::Circuit c;
    const auto q = c.node("q");
    const auto qb = c.node("qb");
    const auto nvdd = c.node("vdd");
    const auto bl = c.node("bl");
    const auto blb = c.node("blb");
    const auto wl = c.node("wl");
    c.add<spice::VSource>(c, nvdd, spice::kGround, vdd);
    c.add<spice::VSource>(c, bl, spice::kGround, vdd);
    c.add<spice::VSource>(c, blb, spice::kGround, vdd);
    c.add<spice::VSource>(c, wl, spice::kGround, 0.0);
    c.add<spice::Mosfet>(q, qb, spice::kGround, spice::default_nfet());
    c.add<spice::Mosfet>(q, qb, nvdd, spice::default_pfet());
    c.add<spice::Mosfet>(qb, q, spice::kGround, spice::default_nfet());
    c.add<spice::Mosfet>(qb, q, nvdd, spice::default_pfet());
    c.add<spice::Mosfet>(bl, wl, q, spice::default_nfet());
    c.add<spice::Mosfet>(blb, wl, qb, spice::default_nfet());
    c.add<spice::Capacitor>(q, spice::kGround, CellDesign{}.cnode_f);
    c.add<spice::Capacitor>(qb, spice::kGround, CellDesign{}.cnode_f);
    const double tau_s =
        phys::transit_time_fs(CellDesign{}.tech, vdd) * 1e-15;
    c.add<spice::PulseISource>(
        q, spice::kGround,
        spice::PulseShape::rectangular_for_charge(scale * qcrit * 1e-15, tau_s,
                                                  1e-12));

    std::vector<double> guess(c.unknown_count(), 0.0);
    guess[q] = vdd;
    guess[nvdd] = vdd;
    guess[bl] = vdd;
    guess[blb] = vdd;
    const auto x0 = spice::solve_dc(c, guess);
    spice::TransientOptions opt;
    opt.t_end = 50e-12;
    opt.dt_max = 2e-13;
    const auto wave = spice::run_transient(c, x0, opt, {"q", "qb"});

    char path[64];
    std::snprintf(path, sizeof(path), "strike_%.0fpct.csv", 100.0 * scale);
    std::ofstream os(path);
    wave.write_csv(os);
    std::printf("\n%.0f%% of Qcrit (0..50 ps, CSV: %s)\n", 100.0 * scale, path);
    sketch(wave, 0, vdd, "Q");
    sketch(wave, 1, vdd, "QB");
  }
  return 0;
}
