/// \file low_power_voltage_scaling.cpp
/// \brief The paper's headline applied: how far can a low-power design scale
/// Vdd down before proton-induced soft errors dominate?
///
/// The paper's key observation (Figs. 8-9) is that proton direct ionization
/// — negligible at nominal supplies — becomes comparable to the alpha SER
/// around Vdd = 0.7 V. This example runs the full cross-layer flow across
/// the DVFS range, prints the proton/alpha budget split at each operating
/// point, and locates the crossover voltage a reliability engineer would
/// feed back into the power-management spec.

#include <cstdio>

#include "finser/core/ser_flow.hpp"

int main() {
  using namespace finser;

  core::SerFlowConfig cfg;
  cfg.array_rows = 6;
  cfg.array_cols = 6;
  cfg.characterization.vdds = {0.7, 0.8, 0.9, 1.0, 1.1};
  cfg.characterization.pv_samples_single = 80;
  cfg.characterization.pv_samples_grid = 20;
  cfg.array_mc.strikes = 30000;
  cfg.proton_bins = 10;
  cfg.alpha_bins = 8;
  cfg.seed = 7;

  core::SerFlow flow(cfg);
  std::printf("characterizing cell across the DVFS range...\n");
  flow.cell_model();

  const auto protons = flow.sweep(env::sea_level_protons());
  const auto alphas = flow.sweep(env::package_alphas());

  std::printf("\n%-6s %-12s %-12s %-12s %-10s\n", "Vdd", "proton FIT",
              "alpha FIT", "total FIT", "proton %");
  double crossover_vdd = -1.0;
  for (std::size_t v = 0; v < protons.vdds.size(); ++v) {
    const double p = protons.fit[v][core::kModeWithPv].fit_tot;
    const double a = alphas.fit[v][core::kModeWithPv].fit_tot;
    const double share = (p + a) > 0.0 ? 100.0 * p / (p + a) : 0.0;
    std::printf("%-6.1f %-12.3e %-12.3e %-12.3e %-10.1f\n", protons.vdds[v], p,
                a, p + a, share);
    if (p >= a && crossover_vdd < 0.0) crossover_vdd = protons.vdds[v];
  }

  std::printf("\nassessment:\n");
  if (crossover_vdd > 0.0) {
    std::printf(
        "  below ~%.1f V the sea-level proton flux dominates the soft-error\n"
        "  budget: alpha-only qualification (the pre-22nm practice) would\n"
        "  underestimate the field failure rate. This reproduces the paper's\n"
        "  central conclusion for low-power operating points.\n",
        crossover_vdd);
  } else {
    std::printf(
        "  protons stay below the alpha SER across this range; extend the\n"
        "  sweep to lower Vdd to find the crossover.\n");
  }
  std::printf(
      "  scaling Vdd 1.1 -> 0.7 V multiplies the total SER by %.1fx\n"
      "  (paper conclusion 1: SER is higher at lower supply voltages).\n",
      (protons.fit.front()[core::kModeWithPv].fit_tot +
       alphas.fit.front()[core::kModeWithPv].fit_tot) /
          (protons.fit.back()[core::kModeWithPv].fit_tot +
           alphas.fit.back()[core::kModeWithPv].fit_tot));
  return 0;
}
