/// \file cell_robustness_study.cpp
/// \brief SRAM designer's view: how does the cell's critical charge depend
/// on supply voltage, transistor sizing and process variation?
///
/// This example drives the circuit level of finser directly (StrikeSimulator
/// + critical-charge bisection) — the workload a memory designer runs when
/// trading radiation robustness against area and leakage:
///   * Qcrit vs Vdd for the three strike paths I1/I2/I3 (paper Fig. 5a);
///   * the effect of a 2-fin pull-down (the classic hardening lever);
///   * the +/-3 sigma Qcrit window under threshold variation.

#include <cstdio>

#include "finser/sram/characterize.hpp"

int main() {
  using namespace finser;
  using sram::CellDesign;
  using sram::StrikeCharges;

  const auto qcrit = [](sram::StrikeSimulator& sim, const StrikeCharges& dir,
                        const sram::DeltaVt& dvt = {}) {
    return sram::bisect_critical_scale(sim, dir, dvt, 0.8, 1e-4,
                                       spice::PulseShape::Kind::kRectangular);
  };

  std::printf("critical charge vs Vdd and strike path [fC]\n");
  std::printf("%-6s %-10s %-10s %-10s\n", "Vdd", "I1 (PD)", "I2 (PU)",
              "I3 (PG)");
  for (double vdd : {0.7, 0.8, 0.9, 1.0, 1.1}) {
    sram::StrikeSimulator sim(CellDesign{}, vdd);
    std::printf("%-6.1f %-10.4f %-10.4f %-10.4f\n", vdd,
                qcrit(sim, {1, 0, 0}), qcrit(sim, {0, 1, 0}),
                qcrit(sim, {0, 0, 1}));
  }

  std::printf("\nhardening lever: double-fin pull-down (Vdd = 0.8 V)\n");
  {
    CellDesign hd;  // High-density reference cell: 1-1-1.
    CellDesign hp;  // Hardened cell: 2-fin pull-downs, larger node cap.
    hp.nfin_pd = 2.0;
    hp.cnode_f *= 1.4;  // Extra junction/gate capacitance of the second fin.
    sram::StrikeSimulator sim_hd(hd, 0.8);
    sram::StrikeSimulator sim_hp(hp, 0.8);
    const double q_hd = qcrit(sim_hd, {1, 0, 0});
    const double q_hp = qcrit(sim_hp, {1, 0, 0});
    std::printf("  1-1-1 cell : Qcrit = %.4f fC\n", q_hd);
    std::printf("  2-1-1 cell : Qcrit = %.4f fC  (+%.0f %%)\n", q_hp,
                100.0 * (q_hp - q_hd) / q_hd);
  }

  std::printf("\nprocess-variation window (Vdd = 0.8 V, sigma_Vt = 50 mV)\n");
  {
    sram::CharacterizerConfig cfg;
    cfg.vdds = {0.8};
    cfg.pv_samples_single = 150;
    sram::CellCharacterizer ch(CellDesign{}, cfg);
    stats::Rng rng(99);
    sram::StrikeSimulator sim(CellDesign{}, 0.8);
    double q_min = 1e30, q_max = 0.0, acc = 0.0;
    int n = 0;
    for (int i = 0; i < 150; ++i) {
      const auto dvt = ch.sample_delta_vt(rng);
      const double q = qcrit(sim, {1, 0, 0}, dvt);
      if (q >= sram::SingleCdf::kNeverFlips) continue;
      q_min = std::min(q_min, q);
      q_max = std::max(q_max, q);
      acc += q;
      ++n;
    }
    std::printf("  samples: %d   mean = %.4f fC   window = [%.4f, %.4f] fC\n",
                n, acc / n, q_min, q_max);
    std::printf("  weakest cell is %.0f %% below nominal -> the SER tail the\n"
                "  paper's Fig. 11 is about.\n",
                100.0 * (acc / n - q_min) / (acc / n));
  }
  return 0;
}
