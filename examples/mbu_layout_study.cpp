/// \file mbu_layout_study.cpp
/// \brief Beyond the paper: how multi-bit-upset rates depend on the stored
/// data pattern and the angular law of the radiation source.
///
/// MBUs are a *geometric* phenomenon — one grazing track clipping sensitive
/// fins of neighboring cells. Which fins are sensitive depends on the data
/// (paper Fig. 5a: three of six transistors per cell), so the data pattern
/// changes the spatial correlation of sensitive volumes; and the share of
/// grazing tracks depends on the source's angular law. Both knobs matter
/// when qualifying ECC schemes (interleaving distance is chosen against the
/// MBU multiplicity). This example quantifies them with the array engine.

#include <array>
#include <cmath>
#include <cstdio>
#include <numbers>

#include "finser/core/ser_flow.hpp"
#include "finser/util/csv.hpp"

namespace {

using namespace finser;

core::SerFlowConfig base_config() {
  core::SerFlowConfig cfg;
  cfg.array_rows = 7;
  cfg.array_cols = 7;
  cfg.characterization.vdds = {0.8};
  cfg.characterization.pv_samples_single = 80;
  cfg.characterization.pv_samples_grid = 20;
  cfg.array_mc.strikes = 120000;
  cfg.seed = 2718;
  return cfg;
}

void run_case(const char* label, const core::SerFlowConfig& cfg) {
  core::SerFlow flow(cfg);
  // 1.5 MeV alphas: near the deposit maximum, the MBU-richest energy.
  const auto res = flow.run_at_energy(phys::Species::kAlpha, 1.5);
  const auto& e = res.est[0][core::kModeWithPv];
  std::printf("%-28s POFtot=%.4e  SEU=%.4e  MBU=%.4e  MBU/SEU=%5.2f %%\n",
              label, e.tot, e.seu, e.mbu,
              e.seu > 0.0 ? 100.0 * e.mbu / e.seu : 0.0);
}

}  // namespace

int main() {
  std::printf("alpha strikes, 7x7 array, Vdd = 0.8 V, 1.5 MeV\n\n");

  std::printf("-- stored data pattern (isotropic source) --\n");
  for (auto [label, pattern] :
       {std::pair{"checkerboard", sram::DataPattern::kCheckerboard},
        std::pair{"all ones", sram::DataPattern::kAllOnes},
        std::pair{"all zeros", sram::DataPattern::kAllZeros},
        std::pair{"random", sram::DataPattern::kRandom}}) {
    core::SerFlowConfig cfg = base_config();
    cfg.pattern = pattern;
    run_case(label, cfg);
  }

  std::printf("\n-- angular law (checkerboard data) --\n");
  {
    core::SerFlowConfig cfg = base_config();
    cfg.array_mc.angular = core::SourceAngularLaw::kIsotropic;
    run_case("isotropic hemisphere", cfg);
    cfg.array_mc.angular = core::SourceAngularLaw::kCosine;
    run_case("cosine-law (flux-weighted)", cfg);
  }

  std::printf("\n-- charge-collection model (88° grazing beam, 1 MeV) --\n");
  {
    // The independent model (cluster 1x1) multiplies per-cell POFs; the
    // correlated 2x2 model re-prices every multi-cell tile with one joint
    // circuit simulation including inter-cell charge sharing
    // (docs/charge_sharing.md). The grazing beam maximizes same-tile
    // multi-cell deposits, so the two multiplicity distributions separate.
    std::array<std::array<double, core::kMaxMultiplicity>, 2> dist{};
    const sram::ClusterMode modes[2] = {sram::ClusterMode::k1x1,
                                        sram::ClusterMode::k2x2};
    const char* labels[2] = {"independent (1x1)", "correlated (2x2)"};
    for (int m = 0; m < 2; ++m) {
      core::SerFlowConfig cfg = base_config();
      cfg.array_mc.strikes = 20000;
      cfg.array_mc.angular = core::SourceAngularLaw::kBeam;
      const double tilt = 88.0 * std::numbers::pi / 180.0;
      cfg.array_mc.beam_direction = {std::sin(tilt), 0.05, -std::cos(tilt)};
      cfg.array_mc.cluster.mode = modes[m];
      core::SerFlow flow(cfg);
      const auto res = flow.run_at_energy(phys::Species::kAlpha, 1.0);
      dist[m] = res.est[0][core::kModeWithPv].multiplicity;
      double n2plus = 0.0;
      for (std::size_t n = 2; n < core::kMaxMultiplicity; ++n) {
        n2plus += dist[m][n];
      }
      std::printf("%-28s P(n=1)=%.4e  P(n>=2)=%.4e\n", labels[m],
                  dist[m][1], n2plus);
    }
    util::CsvTable t({"n", "p_independent", "p_correlated"});
    for (std::size_t n = 0; n < core::kMaxMultiplicity; ++n) {
      t.add_row({static_cast<double>(n), dist[0][n], dist[1][n]});
    }
    t.write_csv_file("mbu_layout_study_cluster.csv");
    std::printf("multiplicity distributions: mbu_layout_study_cluster.csv\n");
  }

  std::printf(
      "\nreading: the data pattern moves the MBU/SEU ratio by reshuffling\n"
      "which fins are simultaneously sensitive; the cosine law suppresses\n"
      "grazing tracks and with them most multi-cell events. ECC interleaving\n"
      "should therefore be validated against the worst-case pattern and an\n"
      "isotropic (package-alpha) source, not just vertical-beam data.\n");
  return 0;
}
