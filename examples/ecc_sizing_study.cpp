/// \file ecc_sizing_study.cpp
/// \brief From upset physics to ECC policy: using the exact per-strike
/// upset-multiplicity distribution (Poisson-binomial over the struck cells)
/// to size error correction.
///
/// A SECDED word survives single upsets but fails on double ones; the
/// paper's binary MBU/SEU split says *that* multi-bit events happen, while
/// the multiplicity histogram says *how many bits* — which is what decides
/// whether single-error correction plus N-way column interleaving meets a
/// FIT budget. This example prints P(n flips | strike) for alpha strikes
/// and the resulting correctable/uncorrectable split, with and without the
/// physical interleaving of our thin-cell layout's mirrored columns.

#include <cstdio>

#include "finser/core/ser_flow.hpp"

int main() {
  using namespace finser;

  core::SerFlowConfig cfg;
  cfg.array_rows = 8;
  cfg.array_cols = 8;
  cfg.characterization.vdds = {0.7, 1.1};
  cfg.characterization.pv_samples_single = 80;
  cfg.characterization.pv_samples_grid = 20;
  cfg.array_mc.strikes = 150000;
  cfg.seed = 424242;

  core::SerFlow flow(cfg);
  std::printf("characterizing cell...\n");
  flow.cell_model();

  // 1.5 MeV alphas — near the deposit maximum, the MBU-richest case.
  std::printf("running 8x8 array MC (alpha, 1.5 MeV)...\n\n");
  const auto res = flow.run_at_energy(phys::Species::kAlpha, 1.5);

  for (std::size_t v = 0; v < res.vdds.size(); ++v) {
    const auto& e = res.est[v][core::kModeWithPv];
    std::printf("Vdd = %.1f V   (POF per strike: %.3e)\n", res.vdds[v], e.tot);
    std::printf("  n flips :");
    for (std::size_t n = 1; n < core::kMaxMultiplicity; ++n) {
      std::printf(" %zu:%.2e", n, e.multiplicity[n]);
    }
    std::printf("\n");

    // SECDED with no interleaving: any >= 2-bit event in a word is fatal.
    // With d-way column interleaving, physically adjacent flipped bits land
    // in different logical words; events of multiplicity <= d are corrected
    // (adjacent-cell clusters dominate the MBU population).
    double fatal_none = 0.0;
    for (std::size_t n = 2; n < core::kMaxMultiplicity; ++n) {
      fatal_none += e.multiplicity[n];
    }
    for (std::size_t d : {1u, 2u, 4u}) {
      double fatal = 0.0;
      for (std::size_t n = d + 1; n < core::kMaxMultiplicity; ++n) {
        fatal += e.multiplicity[n];
      }
      std::printf("  SECDED + %zu-way interleave: uncorrectable fraction of "
                  "upset events = %.2f %%\n",
                  d, e.tot > 0.0 ? 100.0 * fatal / e.tot : 0.0);
    }
    std::printf("\n");
  }

  std::printf(
      "reading: at low Vdd the multiplicity tail thickens (cheaper flips in\n"
      "neighbor cells), so the interleaving distance that met the budget at\n"
      "nominal voltage may no longer meet it in the low-power state — the\n"
      "ECC analogue of the paper's low-voltage SER warning.\n");
  return 0;
}
