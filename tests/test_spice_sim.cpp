#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "finser/spice/dc.hpp"
#include "finser/spice/devices.hpp"
#include "finser/spice/transient.hpp"
#include "finser/util/error.hpp"

namespace finser::spice {
namespace {

// ---------------------------------------------------------------------------
// DC analysis
// ---------------------------------------------------------------------------

TEST(Dc, VoltageDivider) {
  Circuit c;
  const auto vin = c.node("in");
  const auto mid = c.node("mid");
  c.add<VSource>(c, vin, kGround, 9.0);
  c.add<Resistor>(vin, mid, 2e3);
  c.add<Resistor>(mid, kGround, 1e3);
  const auto x = solve_dc(c);
  // Tolerance covers the residual 1e-12 S gmin shunt of the final stage.
  EXPECT_NEAR(x[mid], 3.0, 1e-7);
  EXPECT_NEAR(x[vin], 9.0, 1e-9);
}

TEST(Dc, VsourceBranchCurrent) {
  Circuit c;
  const auto vin = c.node("in");
  auto& src = c.add<VSource>(c, vin, kGround, 10.0);
  c.add<Resistor>(vin, kGround, 5.0);
  const auto x = solve_dc(c);
  // Branch current flows from + through the source: -2 A (source delivers).
  EXPECT_NEAR(x[c.node_count() + src.branch_id()], -2.0, 1e-9);
}

TEST(Dc, CapacitorIsOpenInDc) {
  Circuit c;
  const auto vin = c.node("in");
  const auto mid = c.node("mid");
  c.add<VSource>(c, vin, kGround, 5.0);
  c.add<Resistor>(vin, mid, 1e3);
  c.add<Capacitor>(mid, kGround, 1e-12);
  // gmin makes this solvable; mid floats to the source voltage.
  const auto x = solve_dc(c);
  EXPECT_NEAR(x[mid], 5.0, 1e-6);
}

TEST(Dc, InverterVtcMonotoneWithGain) {
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<VSource>(c, vdd, kGround, 0.8);
  auto& vin = c.add<VSource>(c, in, kGround, 0.0);
  c.add<Mosfet>(out, in, kGround, default_nfet(), 1.0);
  c.add<Mosfet>(out, in, vdd, default_pfet(), 1.0);

  std::vector<double> x;
  double prev = 0.9;
  double max_gain = 0.0;
  double prev_out = 0.8;
  for (double vi = 0.0; vi <= 0.8001; vi += 0.02) {
    vin.set_voltage(vi);
    x = solve_dc(c, x);
    EXPECT_LE(x[out], prev + 1e-7) << "VTC not monotone at " << vi;
    if (vi > 0.0) max_gain = std::max(max_gain, (prev_out - x[out]) / 0.02);
    prev = x[out];
    prev_out = x[out];
  }
  EXPECT_GT(max_gain, 2.0);       // Regenerative.
  EXPECT_LT(prev, 0.05);          // Full swing.
}

TEST(Dc, SramBistability) {
  // The same netlist converges to either stable state depending on the
  // initial guess — and to the metastable point from a symmetric guess.
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto q = c.node("q");
  const auto qb = c.node("qb");
  c.add<VSource>(c, vdd, kGround, 0.8);
  c.add<Mosfet>(q, qb, kGround, default_nfet(), 1.0);
  c.add<Mosfet>(q, qb, vdd, default_pfet(), 1.0);
  c.add<Mosfet>(qb, q, kGround, default_nfet(), 1.0);
  c.add<Mosfet>(qb, q, vdd, default_pfet(), 1.0);

  std::vector<double> guess(c.unknown_count(), 0.0);
  guess[vdd] = 0.8;
  guess[q] = 0.8;
  auto x1 = solve_dc(c, guess);
  EXPECT_GT(x1[q], 0.75);
  EXPECT_LT(x1[qb], 0.05);

  guess[q] = 0.0;
  guess[qb] = 0.8;
  auto x0 = solve_dc(c, guess);
  EXPECT_LT(x0[q], 0.05);
  EXPECT_GT(x0[qb], 0.75);
}

TEST(Dc, BadArgumentsThrow) {
  Circuit c;
  c.node("a");
  c.add<Resistor>(c.find_node("a"), kGround, 1.0);
  EXPECT_THROW(solve_dc(c, std::vector<double>(99, 0.0)), util::InvalidArgument);
  DcOptions opt;
  opt.gmin_steps.clear();
  EXPECT_THROW(solve_dc(c, {}, opt), util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Transient analysis
// ---------------------------------------------------------------------------

TEST(Transient, RcStepResponseMatchesAnalytic) {
  // Charge a 1 pF cap through 1 kΩ from a current source step: the cap is
  // pre-discharged (DC with source off), then a long rectangular current
  // pulse drives it: v(t) = I*R_th... use simpler exact form:
  // I into C parallel R: v(t) = I*R*(1 - exp(-t/RC)).
  Circuit c;
  const auto n = c.node("n");
  c.add<Resistor>(n, kGround, 1e3);
  c.add<Capacitor>(n, kGround, 1e-12);
  const double i0 = 1e-3;
  c.add<PulseISource>(kGround, n,
                      PulseShape{PulseShape::Kind::kRectangular, 0.0, 1.0, i0});
  const auto x0 = solve_dc(c);

  TransientOptions opt;
  opt.t_end = 3e-9;  // 3 time constants.
  opt.dt_max = 1e-11;
  opt.method = Integrator::kTrapezoidal;
  const auto w = run_transient(c, x0, opt, {"n"});
  const double rc = 1e3 * 1e-12;
  for (double t : {0.5e-9, 1e-9, 2e-9, 3e-9}) {
    const double expected = i0 * 1e3 * (1.0 - std::exp(-t / rc));
    EXPECT_NEAR(w.at(0, t), expected, 0.01 * i0 * 1e3) << t;
  }
}

TEST(Transient, BackwardEulerAgreesWithTrapezoidal) {
  for (auto method : {Integrator::kBackwardEuler, Integrator::kTrapezoidal}) {
    Circuit c;
    const auto n = c.node("n");
    c.add<Resistor>(n, kGround, 1e3);
    c.add<Capacitor>(n, kGround, 1e-12);
    c.add<PulseISource>(kGround, n,
                        PulseShape{PulseShape::Kind::kRectangular, 0.0, 1.0, 1e-3});
    const auto x0 = solve_dc(c);
    TransientOptions opt;
    opt.t_end = 2e-9;
    opt.dt_max = 5e-12;
    opt.method = method;
    const auto w = run_transient(c, x0, opt, {"n"});
    const double rc = 1e-9;
    const double expected = 1.0 * (1.0 - std::exp(-2e-9 / rc));
    EXPECT_NEAR(w.final_value(0), expected, 0.02);
  }
}

TEST(Transient, ChargeConservationOnPulse) {
  // A pulse into an isolated capacitor raises its voltage by Q/C exactly.
  Circuit c;
  const auto n = c.node("n");
  c.add<Capacitor>(n, kGround, 1e-15);
  const double q = 0.1e-15;  // 0.1 fC -> 0.1 V on 1 fF.
  c.add<PulseISource>(kGround, n,
                      PulseShape::rectangular_for_charge(q, 1e-14, 1e-12));
  // DC: gmin resolves the floating node to 0 V.
  const auto x0 = solve_dc(c);
  TransientOptions opt;
  opt.t_end = 10e-12;
  const auto w = run_transient(c, x0, opt, {"n"});
  EXPECT_NEAR(w.final_value(0), 0.1, 1e-3);
}

TEST(Transient, TriangularPulseDeliversSameCharge) {
  for (auto kind : {PulseShape::Kind::kRectangular, PulseShape::Kind::kTriangular}) {
    Circuit c;
    const auto n = c.node("n");
    c.add<Capacitor>(n, kGround, 1e-15);
    const double q = 0.05e-15;
    const PulseShape shape =
        kind == PulseShape::Kind::kRectangular
            ? PulseShape::rectangular_for_charge(q, 1e-14, 1e-12)
            : PulseShape::triangular_for_charge(q, 1e-14, 1e-12);
    c.add<PulseISource>(kGround, n, shape);
    const auto x0 = solve_dc(c);
    TransientOptions opt;
    opt.t_end = 10e-12;
    const auto w = run_transient(c, x0, opt, {"n"});
    EXPECT_NEAR(w.final_value(0), 0.05, 2e-3);
  }
}

TEST(Transient, WaveformProbesAndInterpolation) {
  Circuit c;
  const auto a = c.node("a");
  const auto b = c.node("b");
  c.add<VSource>(c, a, kGround, 2.0);
  c.add<Resistor>(a, b, 1e3);
  c.add<Resistor>(b, kGround, 1e3);
  const auto x0 = solve_dc(c);
  TransientOptions opt;
  opt.t_end = 1e-12;
  const auto w = run_transient(c, x0, opt, {"b", "a"});
  EXPECT_EQ(w.probe_count(), 2u);
  EXPECT_EQ(w.probe("a"), 1u);
  EXPECT_THROW(w.probe("zzz"), util::InvalidArgument);
  EXPECT_NEAR(w.at(0, 0.5e-12), 1.0, 1e-9);
  EXPECT_NEAR(w.min_value(1), 2.0, 1e-9);
  EXPECT_NEAR(w.max_value(1), 2.0, 1e-9);
  EXPECT_GT(w.sample_count(), 2u);
  EXPECT_EQ(w.times().front(), 0.0);
}

TEST(Transient, DefaultProbesAllNodes) {
  Circuit c;
  c.add<VSource>(c, c.node("x"), kGround, 1.0);
  c.add<Resistor>(c.node("x"), c.node("y"), 1.0);
  c.add<Resistor>(c.node("y"), kGround, 1.0);
  const auto x0 = solve_dc(c);
  TransientOptions opt;
  opt.t_end = 1e-12;
  const auto w = run_transient(c, x0, opt);
  EXPECT_EQ(w.probe_count(), 2u);
}

TEST(Transient, RejectsBadOptions) {
  Circuit c;
  c.add<VSource>(c, c.node("x"), kGround, 1.0);
  c.add<Resistor>(c.node("x"), kGround, 1.0);
  const auto x0 = solve_dc(c);
  TransientOptions opt;  // t_end defaults to 0.
  EXPECT_THROW(run_transient(c, x0, opt), util::InvalidArgument);
  opt.t_end = 1e-12;
  EXPECT_THROW(run_transient(c, std::vector<double>(1, 0.0), opt),
               util::InvalidArgument);
}

TEST(Transient, WaveformCsvExport) {
  Circuit c;
  const auto a = c.node("a");
  c.add<VSource>(c, a, kGround, 1.5);
  c.add<Resistor>(a, c.node("b"), 1e3);
  c.add<Resistor>(c.node("b"), kGround, 1e3);
  const auto x0 = solve_dc(c);
  TransientOptions opt;
  opt.t_end = 1e-12;
  const auto w = run_transient(c, x0, opt, {"a", "b"});
  std::ostringstream os;
  w.write_csv(os);
  const std::string out = os.str();
  EXPECT_EQ(out.substr(0, 11), "time_s,a,b\n");
  // First sample row: t = 0, a = 1.5, b = 0.75.
  EXPECT_NE(out.find("0,1.5,0.75"), std::string::npos);
  // One line per sample plus the header.
  EXPECT_EQ(static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n')),
            w.sample_count() + 1);
}

TEST(Dc, VsourceSetVoltageTakesEffect) {
  Circuit c;
  const auto a = c.node("a");
  auto& src = c.add<VSource>(c, a, kGround, 1.0);
  c.add<Resistor>(a, kGround, 1e3);
  EXPECT_NEAR(solve_dc(c)[a], 1.0, 1e-9);
  src.set_voltage(2.5);
  EXPECT_DOUBLE_EQ(src.voltage(), 2.5);
  EXPECT_NEAR(solve_dc(c)[a], 2.5, 1e-9);
}

TEST(Dc, MosfetOpAtReportsOperatingPoint) {
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto out = c.node("out");
  c.add<VSource>(c, vdd, kGround, 0.8);
  auto& nmos = c.add<Mosfet>(out, vdd, kGround, default_nfet(), 2.0);
  c.add<Resistor>(vdd, out, 5e3);
  EXPECT_DOUBLE_EQ(nmos.nfin(), 2.0);
  EXPECT_EQ(nmos.drain(), out);
  EXPECT_EQ(nmos.gate(), vdd);
  EXPECT_EQ(nmos.source(), kGround);
  const auto x = solve_dc(c);
  const auto op = nmos.op_at(x);
  // KCL at `out`: the resistor current equals the drain current.
  EXPECT_NEAR(op.ids, (0.8 - x[out]) / 5e3, 1e-9);
  EXPECT_GT(op.gm, 0.0);
}

// ---------------------------------------------------------------------------
// PWL voltage source
// ---------------------------------------------------------------------------

TEST(Pwl, WaveformValueClampsAndInterpolates) {
  Circuit c;
  const auto n = c.node("n");
  auto& src = c.add<PwlVSource>(
      c, n, kGround,
      std::vector<std::pair<double, double>>{{1e-9, 0.0}, {2e-9, 1.0},
                                             {3e-9, 0.25}});
  EXPECT_DOUBLE_EQ(src.value(0.0), 0.0);        // Clamped before.
  EXPECT_DOUBLE_EQ(src.value(1.5e-9), 0.5);     // Rising ramp.
  EXPECT_DOUBLE_EQ(src.value(2.5e-9), 0.625);   // Falling ramp.
  EXPECT_DOUBLE_EQ(src.value(10e-9), 0.25);     // Clamped after.
}

TEST(Pwl, RejectsBadWaveforms) {
  Circuit c;
  const auto n = c.node("n");
  EXPECT_THROW(c.add<PwlVSource>(c, n, kGround,
                                 std::vector<std::pair<double, double>>{}),
               util::InvalidArgument);
  EXPECT_THROW(
      c.add<PwlVSource>(c, n, kGround,
                        std::vector<std::pair<double, double>>{{1e-9, 0.0},
                                                               {1e-9, 1.0}}),
      util::InvalidArgument);
}

TEST(Pwl, DcUsesTimeZeroValue) {
  Circuit c;
  const auto n = c.node("n");
  c.add<PwlVSource>(c, n, kGround,
                    std::vector<std::pair<double, double>>{{0.0, 0.7},
                                                           {1e-9, 0.0}});
  c.add<Resistor>(n, kGround, 1e3);
  const auto x = solve_dc(c);
  EXPECT_NEAR(x[n], 0.7, 1e-9);
}

TEST(Pwl, DrivesRcThroughRamp) {
  // Slow ramp (>> RC): the cap tracks the source closely; check endpoints.
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<PwlVSource>(c, in, kGround,
                    std::vector<std::pair<double, double>>{
                        {0.0, 0.0}, {10e-9, 1.0}, {20e-9, 1.0}});
  c.add<Resistor>(in, out, 1e3);
  c.add<Capacitor>(out, kGround, 1e-13);  // RC = 0.1 ns << 10 ns ramp.
  const auto x0 = solve_dc(c);
  TransientOptions opt;
  opt.t_end = 20e-9;
  opt.dt_max = 5e-11;
  const auto w = run_transient(c, x0, opt, {"out"});
  EXPECT_NEAR(w.at(0, 5e-9), 0.5, 0.03);   // Mid-ramp (small RC lag).
  EXPECT_NEAR(w.final_value(0), 1.0, 1e-3);  // Settled.
}

TEST(Transient, BreakpointsAreHitExactly) {
  Circuit c;
  const auto n = c.node("n");
  c.add<Capacitor>(n, kGround, 1e-15);
  c.add<PulseISource>(kGround, n,
                      PulseShape::rectangular_for_charge(0.1e-15, 1e-14, 5e-12));
  const auto x0 = solve_dc(c);
  TransientOptions opt;
  opt.t_end = 20e-12;
  const auto w = run_transient(c, x0, opt, {"n"});
  // Voltage must be (near) zero right up to the pulse start.
  EXPECT_NEAR(w.at(0, 4.9e-12), 0.0, 1e-6);
  // And fully developed right after the pulse end.
  EXPECT_NEAR(w.at(0, 5.2e-12), 0.1, 2e-3);
}


// ---------------------------------------------------------------------------
// Integrator convergence order
// ---------------------------------------------------------------------------

/// Max |simulated - analytic| of an R-C low-pass driven by a voltage ramp,
/// integrated with uniform steps of size \p h. The ramp response has the
/// closed form  v_c(t) = m*(t - RC*(1 - e^{-t/RC})), and the circuit is
/// linear, so Newton solves every step exactly in one iteration and the
/// measured error is purely the integrator's truncation error.
double ramp_rc_error(Integrator method, double h) {
  constexpr double kR = 1e3;     // [ohm]
  constexpr double kC = 1e-15;   // [F] -> RC = 1 ps.
  constexpr double kSlope = 1.0 / 1e-9;  // 1 V over 1 ns.
  Circuit c;
  const auto n_in = c.node("in");
  const auto n_out = c.node("out");
  c.add<PwlVSource>(c, n_in, kGround,
                    std::vector<std::pair<double, double>>{{0.0, 0.0},
                                                           {1e-9, 1.0}});
  c.add<Resistor>(n_in, n_out, kR);
  c.add<Capacitor>(n_out, kGround, kC);
  const auto x0 = solve_dc(c);

  TransientOptions opt;
  opt.t_end = 4e-12;  // 4 RC: the exponential transient dominates throughout.
  opt.dt_initial = h;
  opt.dt_max = h;
  opt.grow_factor = 1.0;  // Uniform steps: error halving is attributable to h.
  opt.method = method;
  const Waveform w = run_transient(c, x0, opt, {"out"});

  constexpr double kRc = kR * kC;
  double worst = 0.0;
  for (std::size_t i = 0; i < w.sample_count(); ++i) {
    const double t = w.times()[i];
    const double exact = kSlope * (t - kRc * (1.0 - std::exp(-t / kRc)));
    worst = std::max(worst, std::abs(w.value(0, i) - exact));
  }
  return worst;
}

TEST(Transient, BackwardEulerConvergesFirstOrder) {
  const double e0 = ramp_rc_error(Integrator::kBackwardEuler, 4e-13);
  const double e1 = ramp_rc_error(Integrator::kBackwardEuler, 2e-13);
  const double e2 = ramp_rc_error(Integrator::kBackwardEuler, 1e-13);
  ASSERT_GT(e0, e1);
  ASSERT_GT(e1, e2);
  const double p01 = std::log2(e0 / e1);
  const double p12 = std::log2(e1 / e2);
  // Global error ~ O(h): halving h should halve the error.
  EXPECT_GT(p01, 0.7) << "e0 = " << e0 << ", e1 = " << e1;
  EXPECT_LT(p01, 1.35);
  EXPECT_GT(p12, 0.7) << "e1 = " << e1 << ", e2 = " << e2;
  EXPECT_LT(p12, 1.35);
}

TEST(Transient, TrapezoidalConvergesSecondOrder) {
  const double e0 = ramp_rc_error(Integrator::kTrapezoidal, 4e-13);
  const double e1 = ramp_rc_error(Integrator::kTrapezoidal, 2e-13);
  const double e2 = ramp_rc_error(Integrator::kTrapezoidal, 1e-13);
  ASSERT_GT(e0, e1);
  ASSERT_GT(e1, e2);
  const double p01 = std::log2(e0 / e1);
  const double p12 = std::log2(e1 / e2);
  // Global error ~ O(h^2): halving h should quarter the error.
  EXPECT_GT(p01, 1.6) << "e0 = " << e0 << ", e1 = " << e1;
  EXPECT_LT(p01, 2.4);
  EXPECT_GT(p12, 1.6) << "e1 = " << e1 << ", e2 = " << e2;
  EXPECT_LT(p12, 2.4);
  // And the 2nd-order method must actually beat backward Euler at equal h.
  EXPECT_LT(e2, ramp_rc_error(Integrator::kBackwardEuler, 1e-13));
}

}  // namespace
}  // namespace finser::spice
