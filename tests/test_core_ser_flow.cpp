#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "finser/core/ser_flow.hpp"
#include "finser/util/error.hpp"

namespace finser::core {
namespace {

/// Minimal-cost flow configuration for unit tests.
SerFlowConfig tiny_config() {
  SerFlowConfig cfg;
  cfg.array_rows = 2;
  cfg.array_cols = 2;
  cfg.characterization.vdds = {0.8};
  cfg.characterization.pv_samples_single = 10;
  cfg.characterization.pair_grid_points = 6;
  cfg.characterization.triple_grid_points = 6;
  cfg.characterization.pv_samples_grid = 6;
  cfg.array_mc.strikes = 1500;
  cfg.proton_bins = 3;
  cfg.alpha_bins = 3;
  cfg.seed = 5;
  return cfg;
}

TEST(SerFlow, LayoutMatchesConfig) {
  SerFlow flow(tiny_config());
  EXPECT_EQ(flow.layout().rows(), 2u);
  EXPECT_EQ(flow.layout().cols(), 2u);
  EXPECT_EQ(flow.layout().fins().size(), 24u);
}

TEST(SerFlow, CellModelIsCachedInMemory) {
  SerFlow flow(tiny_config());
  const auto& m1 = flow.cell_model();
  const auto& m2 = flow.cell_model();
  EXPECT_EQ(&m1, &m2);
  EXPECT_EQ(m1.tables.size(), 1u);
}

TEST(SerFlow, DiskCacheRoundTrip) {
  const auto cache =
      (std::filesystem::temp_directory_path() / "finser_flow_cache.bin").string();
  std::filesystem::remove(cache);

  SerFlowConfig cfg = tiny_config();
  cfg.lut_cache_path = cache;
  bool characterized = false;
  {
    SerFlow flow(cfg);
    flow.cell_model([&](const std::string& msg) {
      if (msg.find("characterizing") != std::string::npos) characterized = true;
    });
    EXPECT_TRUE(characterized);
    EXPECT_TRUE(std::filesystem::exists(cache));
  }
  {
    SerFlow flow(cfg);
    bool loaded = false;
    flow.cell_model([&](const std::string& msg) {
      if (msg.find("loaded from") != std::string::npos) loaded = true;
    });
    EXPECT_TRUE(loaded);
  }
  // A config change invalidates the cache.
  {
    SerFlowConfig cfg2 = cfg;
    cfg2.characterization.q_max_fc *= 1.05;
    SerFlow flow(cfg2);
    bool recharacterized = false;
    flow.cell_model([&](const std::string& msg) {
      if (msg.find("characterizing") != std::string::npos) recharacterized = true;
    });
    EXPECT_TRUE(recharacterized);
  }
  std::filesystem::remove(cache);
}

TEST(SerFlow, RunAtEnergyReturnsAllVddsAndModes) {
  SerFlow flow(tiny_config());
  const auto res = flow.run_at_energy(phys::Species::kAlpha, 1.0);
  ASSERT_EQ(res.vdds.size(), 1u);
  EXPECT_GE(res.est[0][kModeWithPv].tot, 0.0);
  EXPECT_GE(res.est[0][kModeNominal].tot, 0.0);
}

TEST(SerFlow, SweepProducesBinsAndFit) {
  SerFlow flow(tiny_config());
  const auto res = flow.sweep(env::package_alphas());
  EXPECT_EQ(res.species, phys::Species::kAlpha);
  ASSERT_EQ(res.bins.size(), 3u);
  ASSERT_EQ(res.per_bin.size(), 3u);
  ASSERT_EQ(res.fit.size(), 1u);
  for (std::size_t mode = 0; mode < 2; ++mode) {
    const FitResult& f = res.fit[0][mode];
    EXPECT_GE(f.fit_tot, 0.0);
    EXPECT_NEAR(f.fit_tot, f.fit_seu + f.fit_mbu, 1e-9 * (f.fit_tot + 1e-30));
  }
}

TEST(SerFlow, SweepUsesSpeciesSpecificBinning) {
  SerFlowConfig cfg = tiny_config();
  cfg.proton_bins = 4;
  cfg.alpha_bins = 2;
  SerFlow flow(cfg);
  EXPECT_EQ(flow.sweep(env::sea_level_protons()).bins.size(), 4u);
  EXPECT_EQ(flow.sweep(env::package_alphas()).bins.size(), 2u);
}

TEST(McScale, EnvParsingAndDefaults) {
  unsetenv("FINSER_MC_SCALE");
  EXPECT_DOUBLE_EQ(mc_scale_from_env(), 1.0);
  setenv("FINSER_MC_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(mc_scale_from_env(), 2.5);
  setenv("FINSER_MC_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(mc_scale_from_env(), 1.0);
  setenv("FINSER_MC_SCALE", "-3", 1);
  EXPECT_DOUBLE_EQ(mc_scale_from_env(), 1.0);
  unsetenv("FINSER_MC_SCALE");
}

TEST(McScale, RejectsEveryMalformedEnvValue) {
  // Each of these must fall back to 1.0 rather than poisoning downstream
  // Monte-Carlo sizes with NaN/inf/zero scales.
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "1e999", "0", "0.0",
                          "-0.25", "abc", "", "2.5x", "3,5", "--2"}) {
    setenv("FINSER_MC_SCALE", bad, 1);
    EXPECT_DOUBLE_EQ(mc_scale_from_env(), 1.0) << "value: \"" << bad << '"';
  }
  // Leading/trailing whitespace around a valid number is tolerated.
  setenv("FINSER_MC_SCALE", "  0.5 ", 1);
  EXPECT_DOUBLE_EQ(mc_scale_from_env(), 0.5);
  setenv("FINSER_MC_SCALE", "4\t", 1);
  EXPECT_DOUBLE_EQ(mc_scale_from_env(), 4.0);
  unsetenv("FINSER_MC_SCALE");
}

TEST(McScale, AppliesToAllMonteCarloSizes) {
  SerFlowConfig cfg = tiny_config();
  apply_mc_scale(cfg, 3.0);
  EXPECT_EQ(cfg.array_mc.strikes, 4500u);
  EXPECT_EQ(cfg.characterization.pv_samples_single, 30u);
  EXPECT_EQ(cfg.characterization.pv_samples_grid, 18u);
  apply_mc_scale(cfg, 1e-9);  // Floors at 1.
  EXPECT_GE(cfg.array_mc.strikes, 1u);
  EXPECT_THROW(apply_mc_scale(cfg, 0.0), util::InvalidArgument);
}

}  // namespace
}  // namespace finser::core
