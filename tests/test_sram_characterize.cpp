#include <gtest/gtest.h>

#include <cmath>

#include "finser/sram/characterize.hpp"
#include "finser/util/error.hpp"

namespace finser::sram {
namespace {

/// Small, fast configuration shared by the characterization tests.
CharacterizerConfig fast_config() {
  CharacterizerConfig cfg;
  cfg.vdds = {0.8};
  cfg.pv_samples_single = 24;
  cfg.pair_grid_points = 6;
  cfg.triple_grid_points = 6;
  cfg.pv_samples_grid = 10;
  cfg.seed = 7;
  return cfg;
}

// ---------------------------------------------------------------------------
// make_charge_axis
// ---------------------------------------------------------------------------

TEST(ChargeAxis, StartsAtZeroEndsAtMax) {
  const auto axis = make_charge_axis(0.08, 0.12, 9, 0.4);
  EXPECT_DOUBLE_EQ(axis.front(), 0.0);
  EXPECT_DOUBLE_EQ(axis.back(), 0.4);
  EXPECT_EQ(axis.size(), 9u);
}

TEST(ChargeAxis, DensifiesAroundCriticalBand) {
  const auto axis = make_charge_axis(0.08, 0.12, 10, 0.4);
  // Count points in [0.4*0.08, 1.7*0.12]: the dense band holds all interior
  // points by construction.
  int in_band = 0;
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (axis[i] >= 0.03 && axis[i] <= 0.21) ++in_band;
  }
  EXPECT_GE(in_band, 7);
}

TEST(ChargeAxis, FallsBackWhenCellNeverFlips) {
  const auto axis = make_charge_axis(0.0, 0.0, 8, 0.4);
  EXPECT_DOUBLE_EQ(axis.front(), 0.0);
  EXPECT_DOUBLE_EQ(axis.back(), 0.4);
  // Strictly increasing.
  for (std::size_t i = 1; i < axis.size(); ++i) EXPECT_GT(axis[i], axis[i - 1]);
}

TEST(ChargeAxis, RejectsTooFewPoints) {
  EXPECT_THROW(make_charge_axis(0.1, 0.1, 5, 0.4), util::InvalidArgument);
  EXPECT_THROW(make_charge_axis(0.1, 0.1, 8, 0.0), util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Bisection
// ---------------------------------------------------------------------------

TEST(Bisect, FindsThresholdWithinTolerance) {
  StrikeSimulator sim(CellDesign{}, 0.8);
  const double qc = bisect_critical_scale(sim, StrikeCharges{1, 0, 0}, DeltaVt{},
                                          0.4, 1e-3,
                                          spice::PulseShape::Kind::kRectangular);
  ASSERT_LT(qc, SingleCdf::kNeverFlips);
  // Verify the bracket: qc flips, qc - 2 tol does not.
  EXPECT_TRUE(sim.simulate(StrikeCharges{qc, 0, 0}).flipped);
  EXPECT_FALSE(sim.simulate(StrikeCharges{qc - 2e-3, 0, 0}).flipped);
}

TEST(Bisect, ReturnsSentinelWhenNoFlipPossible) {
  StrikeSimulator sim(CellDesign{}, 0.8);
  const double qc = bisect_critical_scale(sim, StrikeCharges{1, 0, 0}, DeltaVt{},
                                          0.01, 1e-3,  // Ceiling below Qcrit.
                                          spice::PulseShape::Kind::kRectangular);
  EXPECT_EQ(qc, SingleCdf::kNeverFlips);
}

TEST(Bisect, RejectsBadBracket) {
  StrikeSimulator sim(CellDesign{}, 0.8);
  EXPECT_THROW(bisect_critical_scale(sim, StrikeCharges{1, 0, 0}, DeltaVt{}, 0.0,
                                     1e-3, spice::PulseShape::Kind::kRectangular),
               util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Full characterization at one voltage
// ---------------------------------------------------------------------------

class CharacterizeFixture : public ::testing::Test {
 protected:
  static const PofTable& table() {
    static const PofTable t = [] {
      CellCharacterizer ch(CellDesign{}, fast_config());
      return ch.characterize_at(0.8, fast_config().seed);
    }();
    return t;
  }
};

TEST_F(CharacterizeFixture, SinglesHaveConsistentStatistics) {
  for (const auto& s : table().singles) {
    ASSERT_GT(s.total_samples, 0u);
    EXPECT_EQ(s.total_samples, 24u);
    EXPECT_GT(s.qcrit_samples_fc.size(), 20u);  // Nearly all flip below 0.4 fC.
    EXPECT_LT(s.nominal_qcrit_fc, 0.4);
    EXPECT_GT(s.nominal_qcrit_fc, 0.01);
    // Mean within a few sigma of nominal.
    EXPECT_NEAR(s.mean_qcrit_fc(), s.nominal_qcrit_fc,
                4.0 * s.stddev_qcrit_fc() + 1e-3);
    // Samples sorted.
    for (std::size_t i = 1; i < s.qcrit_samples_fc.size(); ++i) {
      EXPECT_LE(s.qcrit_samples_fc[i - 1], s.qcrit_samples_fc[i]);
    }
  }
}

TEST_F(CharacterizeFixture, SingleCdfIsMonotoneFromZeroToOne) {
  const auto& s = table().singles[0];
  double prev = -1.0;
  for (double q = 0.0; q <= 0.45; q += 0.01) {
    const double p = s.pof(q);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(s.pof(0.0), 0.0);
  EXPECT_GT(s.pof(0.4), 0.9);
}

TEST_F(CharacterizeFixture, NominalPofIsStep) {
  const auto& s = table().singles[1];
  EXPECT_DOUBLE_EQ(s.pof_nominal(s.nominal_qcrit_fc - 1e-6), 0.0);
  EXPECT_DOUBLE_EQ(s.pof_nominal(s.nominal_qcrit_fc + 1e-6), 1.0);
}

TEST_F(CharacterizeFixture, PairGridsBracketZeroAndOne) {
  for (const auto& g : table().pairs_nominal) {
    EXPECT_DOUBLE_EQ(g(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(g(0.4, 0.4), 1.0);
  }
  for (const auto& g : table().pairs_pv) {
    EXPECT_LT(g(0.0, 0.0), 0.05);
    EXPECT_GT(g(0.4, 0.4), 0.95);
  }
}

TEST_F(CharacterizeFixture, TripleGridBracketsZeroAndOne) {
  EXPECT_DOUBLE_EQ(table().triple_nominal(0.0, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(table().triple_nominal(0.4, 0.4, 0.4), 1.0);
  EXPECT_LT(table().triple_pv(0.0, 0.0, 0.0), 0.05);
  EXPECT_GT(table().triple_pv(0.4, 0.4, 0.4), 0.95);
}

TEST_F(CharacterizeFixture, PofDispatchByChargePattern) {
  const PofTable& t = table();
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{}, true), 0.0);
  // A single huge charge uses the matching CDF.
  EXPECT_GT(t.pof(StrikeCharges{0.4, 0.0, 0.0}, true), 0.9);
  EXPECT_GT(t.pof(StrikeCharges{0.0, 0.4, 0.0}, true), 0.9);
  EXPECT_GT(t.pof(StrikeCharges{0.0, 0.0, 0.4}, true), 0.9);
  // Pairs and triple saturate too.
  EXPECT_GT(t.pof(StrikeCharges{0.4, 0.4, 0.0}, true), 0.9);
  EXPECT_GT(t.pof(StrikeCharges{0.4, 0.4, 0.4}, true), 0.9);
  // Nominal mode is binary.
  const double p = t.pof(StrikeCharges{0.4, 0.4, 0.0}, false);
  EXPECT_TRUE(p == 0.0 || p == 1.0);
}

TEST_F(CharacterizeFixture, TinyChargesGiveNearZeroPof) {
  // This is the regression test for the uniform-axis interpolation artifact:
  // small multi-fin deposits must not inherit phantom POF from the first
  // grid cell.
  const PofTable& t = table();
  EXPECT_LT(t.pof(StrikeCharges{0.005, 0.005, 0.0}, true), 0.02);
  EXPECT_LT(t.pof(StrikeCharges{0.005, 0.005, 0.005}, true), 0.02);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{0.005, 0.005, 0.0}, false), 0.0);
}

TEST(Characterizer, DeterministicGivenSeed) {
  CellCharacterizer ch(CellDesign{}, fast_config());
  const PofTable a = ch.characterize_at(0.8, 11);
  const PofTable b = ch.characterize_at(0.8, 11);
  ASSERT_EQ(a.singles[0].qcrit_samples_fc.size(),
            b.singles[0].qcrit_samples_fc.size());
  for (std::size_t i = 0; i < a.singles[0].qcrit_samples_fc.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.singles[0].qcrit_samples_fc[i],
                     b.singles[0].qcrit_samples_fc[i]);
  }
}

TEST(Characterizer, FingerprintSensitivity) {
  const CellDesign design;
  CharacterizerConfig c1 = fast_config();
  CharacterizerConfig c2 = fast_config();
  EXPECT_EQ(c1.fingerprint(design), c2.fingerprint(design));
  c2.q_max_fc *= 1.01;
  EXPECT_NE(c1.fingerprint(design), c2.fingerprint(design));
  CellDesign d2;
  d2.cnode_f *= 1.01;
  EXPECT_NE(c1.fingerprint(design), c1.fingerprint(d2));
}

TEST(Characterizer, SampleDeltaVtMatchesSigma) {
  CellCharacterizer ch(CellDesign{}, fast_config());
  stats::Rng rng(3);
  double acc = 0.0, acc2 = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const DeltaVt d = ch.sample_delta_vt(rng);
    for (double v : d) {
      acc += v;
      acc2 += v * v;
    }
  }
  const double mean = acc / (6.0 * n);
  const double var = acc2 / (6.0 * n) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.002);
  EXPECT_NEAR(std::sqrt(var), CellDesign{}.sigma_vt, 0.003);
}

TEST(Characterizer, RejectsBadConfig) {
  CharacterizerConfig bad = fast_config();
  bad.vdds.clear();
  EXPECT_THROW(CellCharacterizer(CellDesign{}, bad), util::InvalidArgument);
  bad = fast_config();
  bad.pair_grid_points = 1;
  EXPECT_THROW(CellCharacterizer(CellDesign{}, bad), util::InvalidArgument);
}

// POF is monotone in supply voltage: at any fixed charge, a cell at lower
// Vdd is at least as likely to flip (paper conclusion 1 at the LUT level).
class PofVsVdd : public ::testing::TestWithParam<double> {};

TEST_P(PofVsVdd, LowerVddNeverLessVulnerable) {
  static const std::pair<PofTable, PofTable> tables = [] {
    CellCharacterizer ch(CellDesign{}, fast_config());
    PofTable lo = ch.characterize_at(0.7, 31);
    PofTable hi = ch.characterize_at(1.1, 31);
    return std::make_pair(std::move(lo), std::move(hi));
  }();
  const double q = GetParam();
  const StrikeCharges c{q, 0.0, 0.0};
  // Nominal tables are noise-free: strict ordering must hold.
  EXPECT_GE(tables.first.pof(c, false), tables.second.pof(c, false)) << q;
  // PV tables carry MC noise; allow a small tolerance.
  EXPECT_GE(tables.first.pof(c, true), tables.second.pof(c, true) - 0.08) << q;
}

INSTANTIATE_TEST_SUITE_P(ChargeSweep, PofVsVdd,
                         ::testing::Values(0.05, 0.1, 0.13, 0.16, 0.2, 0.3));

// POF monotone in each charge coordinate (flip region is upward closed).
class PofMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PofMonotone, AlongEachAxis) {
  static const PofTable t = [] {
    CellCharacterizer c(CellDesign{}, fast_config());
    return c.characterize_at(0.8, fast_config().seed);
  }();
  const int axis = GetParam();
  for (double base : {0.0, 0.05, 0.15}) {
    double prev = -1.0;
    for (double q = 0.0; q <= 0.4; q += 0.02) {
      StrikeCharges c{base, base, base};
      if (axis == 0) c.i1_fc = q;
      if (axis == 1) c.i2_fc = q;
      if (axis == 2) c.i3_fc = q;
      const double p = t.pof(c, true);
      EXPECT_GE(p, prev - 0.06) << "axis " << axis << " base " << base
                                << " q " << q;  // MC noise tolerance.
      prev = std::max(prev, p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Axes, PofMonotone, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace finser::sram
