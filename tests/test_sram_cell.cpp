#include <gtest/gtest.h>

#include <cmath>

#include "finser/sram/cell.hpp"
#include "finser/util/error.hpp"

namespace finser::sram {
namespace {

// ---------------------------------------------------------------------------
// Hold state
// ---------------------------------------------------------------------------

TEST(SramCell, HoldStateIsFullSwing) {
  for (double vdd : {0.7, 0.9, 1.1}) {
    StrikeSimulator sim(CellDesign{}, vdd);
    const auto hs = sim.hold_state();
    EXPECT_NEAR(hs[0], vdd, 0.02) << vdd;   // Q at the rail.
    EXPECT_NEAR(hs[1], 0.0, 0.02) << vdd;   // QB at ground.
  }
}

TEST(SramCell, HoldStateSurvivesThresholdVariation) {
  StrikeSimulator sim(CellDesign{}, 0.8);
  DeltaVt dvt{0.05, -0.05, 0.03, -0.04, 0.05, -0.02};
  const auto hs = sim.hold_state(dvt);
  EXPECT_GT(hs[0], 0.7);
  EXPECT_LT(hs[1], 0.1);
}

TEST(SramCell, NoStrikeNoFlip) {
  StrikeSimulator sim(CellDesign{}, 0.8);
  const auto out = sim.simulate(StrikeCharges{});
  EXPECT_FALSE(out.flipped);
  EXPECT_NEAR(out.final_q_v, 0.8, 0.02);
  EXPECT_NEAR(out.final_qb_v, 0.0, 0.02);
}

TEST(SramCell, RejectsNonPositiveVdd) {
  EXPECT_THROW(StrikeSimulator(CellDesign{}, 0.0), util::InvalidArgument);
  EXPECT_THROW(StrikeSimulator(CellDesign{}, -0.8), util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Strike response
// ---------------------------------------------------------------------------

TEST(SramCell, LargeChargeFlipsThroughEachCurrent) {
  StrikeSimulator sim(CellDesign{}, 0.8);
  EXPECT_TRUE(sim.simulate(StrikeCharges{1.0, 0.0, 0.0}).flipped);
  EXPECT_TRUE(sim.simulate(StrikeCharges{0.0, 1.0, 0.0}).flipped);
  EXPECT_TRUE(sim.simulate(StrikeCharges{0.0, 0.0, 1.0}).flipped);
}

TEST(SramCell, TinyChargeDoesNotFlip) {
  StrikeSimulator sim(CellDesign{}, 0.8);
  EXPECT_FALSE(sim.simulate(StrikeCharges{0.001, 0.0, 0.0}).flipped);
  EXPECT_FALSE(sim.simulate(StrikeCharges{0.0, 0.001, 0.0}).flipped);
  EXPECT_FALSE(sim.simulate(StrikeCharges{0.0, 0.0, 0.001}).flipped);
}

TEST(SramCell, FlippedStateIsComplementary) {
  StrikeSimulator sim(CellDesign{}, 0.8);
  const auto out = sim.simulate(StrikeCharges{1.0, 0.0, 0.0});
  ASSERT_TRUE(out.flipped);
  EXPECT_LT(out.final_q_v, 0.05);
  EXPECT_GT(out.final_qb_v, 0.75);
}

TEST(SramCell, CombinedCurrentsAreAtLeastAsEffective) {
  StrikeSimulator sim(CellDesign{}, 0.8);
  const double q = 0.2;
  EXPECT_TRUE(sim.simulate(StrikeCharges{q, 0.0, 0.0}).flipped);
  EXPECT_TRUE(sim.simulate(StrikeCharges{q, q, 0.0}).flipped);
  EXPECT_TRUE(sim.simulate(StrikeCharges{q, q, q}).flipped);
}

TEST(SramCell, WeakerCellFlipsMoreEasily) {
  StrikeSimulator sim(CellDesign{}, 0.8);
  // Find a charge that does NOT flip the nominal cell.
  double q = 0.2;
  while (sim.simulate(StrikeCharges{q, 0.0, 0.0}).flipped) q *= 0.8;
  // Strongly weaken the restoring devices.
  DeltaVt weak{};
  weak[static_cast<std::size_t>(Role::kPuL)] = 0.25;
  weak[static_cast<std::size_t>(Role::kPdR)] = 0.25;
  // Somewhere in the window above the nominal non-flip charge, the weak
  // cell must flip while the nominal one does not.
  bool separated = false;
  for (double scale = 1.0; scale <= 1.35; scale += 0.05) {
    const StrikeCharges c{q * scale, 0.0, 0.0};
    if (sim.simulate(c, weak).flipped && !sim.simulate(c).flipped) {
      separated = true;
    }
  }
  EXPECT_TRUE(separated);
}

TEST(SramCell, PulseShapeInsensitivityPaperClaim) {
  // Paper Sec. 4: POF depends on delivered charge, not pulse shape/width.
  StrikeSimulator sim(CellDesign{}, 0.8);
  for (double q : {0.05, 0.1, 0.2, 0.4}) {
    const bool rect = sim.simulate(StrikeCharges{q, 0.0, 0.0}, DeltaVt{},
                                   spice::PulseShape::Kind::kRectangular)
                          .flipped;
    const bool tri = sim.simulate(StrikeCharges{q, 0.0, 0.0}, DeltaVt{},
                                  spice::PulseShape::Kind::kTriangular)
                         .flipped;
    EXPECT_EQ(rect, tri) << "q = " << q;
  }
}

// Monotonicity sweep: once the cell flips at q, it flips at every q' > q.
class StrikeMonotone : public ::testing::TestWithParam<double> {};

TEST_P(StrikeMonotone, FlipIsMonotoneInCharge) {
  StrikeSimulator sim(CellDesign{}, GetParam());
  bool flipped_before = false;
  for (double q = 0.02; q <= 0.42; q += 0.04) {
    const bool f = sim.simulate(StrikeCharges{q, 0.0, 0.0}).flipped;
    if (flipped_before) {
      EXPECT_TRUE(f) << "q = " << q << " vdd = " << GetParam();
    }
    flipped_before = flipped_before || f;
  }
  EXPECT_TRUE(flipped_before);  // 0.42 fC must flip at any studied Vdd.
}

INSTANTIATE_TEST_SUITE_P(VddSweep, StrikeMonotone,
                         ::testing::Values(0.7, 0.8, 0.9, 1.0, 1.1));

TEST(SramCell, HotterCellFlipsMoreEasily) {
  // Temperature extension: at high junction temperature the restoring drive
  // weakens (mobility) and |Vt| drops, so the critical charge falls.
  CellDesign cold;
  cold.temp_k = 233.15;
  CellDesign hot;
  hot.temp_k = 398.15;
  auto qcrit = [](const CellDesign& d) {
    StrikeSimulator sim(d, 0.8);
    double lo = 0.0, hi = 0.5;
    for (int i = 0; i < 18; ++i) {
      const double mid = 0.5 * (lo + hi);
      (sim.simulate(StrikeCharges{mid, 0.0, 0.0}).flipped ? hi : lo) = mid;
    }
    return hi;
  };
  EXPECT_LT(qcrit(hot), qcrit(cold));
}

// Critical charge rises with Vdd (paper conclusion 1: SER higher at low Vdd).
TEST(SramCell, HigherVddNeedsMoreCharge) {
  double prev_flip_q = 0.0;
  for (double vdd : {0.7, 0.9, 1.1}) {
    StrikeSimulator sim(CellDesign{}, vdd);
    double lo = 0.0, hi = 0.5;
    for (int i = 0; i < 20; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (sim.simulate(StrikeCharges{mid, 0.0, 0.0}).flipped) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    EXPECT_GT(hi, prev_flip_q) << vdd;
    prev_flip_q = hi;
  }
}

}  // namespace
}  // namespace finser::sram
