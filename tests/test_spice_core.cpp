#include <gtest/gtest.h>

#include <cmath>

#include "finser/spice/circuit.hpp"
#include "finser/spice/devices.hpp"
#include "finser/spice/finfet.hpp"
#include "finser/spice/mna.hpp"
#include "finser/util/error.hpp"

namespace finser::spice {
namespace {

// ---------------------------------------------------------------------------
// Mna / LU solver
// ---------------------------------------------------------------------------

TEST(Mna, Solves2x2System) {
  Mna m(2);
  // [2 1; 1 3] x = [5; 10] -> x = [1, 3].
  m.add(0, 0, 2.0);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 3.0);
  m.add_rhs(0, 5.0);
  m.add_rhs(1, 10.0);
  const auto x = m.solve();
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Mna, PivotingHandlesZeroDiagonal) {
  Mna m(2);
  // [0 1; 1 0] x = [2; 3] -> x = [3, 2]: requires a row swap.
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add_rhs(0, 2.0);
  m.add_rhs(1, 3.0);
  const auto x = m.solve();
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Mna, SingularThrows) {
  Mna m(2);
  m.add(0, 0, 1.0);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 1.0);
  EXPECT_THROW(m.solve(), util::NumericalError);
}

TEST(Mna, GroundStampsIgnored) {
  Mna m(1);
  m.add(kGround, kGround, 5.0);
  m.add(0, kGround, -1.0);
  m.add(kGround, 0, -1.0);
  m.add(0, 0, 2.0);
  m.add_rhs(kGround, 9.0);
  m.add_rhs(0, 4.0);
  const auto x = m.solve();
  EXPECT_NEAR(x[0], 2.0, 1e-12);
}

TEST(Mna, ClearResetsSystem) {
  Mna m(1);
  m.add(0, 0, 1.0);
  m.add_rhs(0, 7.0);
  EXPECT_NEAR(m.solve()[0], 7.0, 1e-12);
  m.clear();
  m.add(0, 0, 2.0);
  m.add_rhs(0, 8.0);
  EXPECT_NEAR(m.solve()[0], 4.0, 1e-12);
}

TEST(Mna, LargerRandomishSystemRoundTrip) {
  // Build A from a known x, verify solve(A, A*x) == x.
  const std::size_t n = 8;
  Mna m(n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = std::sin(1.7 * (double)i) + 2.0;
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double a = (i == j) ? 10.0 + (double)i : std::cos((double)(i * 3 + j));
      m.add(i, j, a);
      b[i] += a * x_true[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) m.add_rhs(i, b[i]);
  const auto x = m.solve();
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

// ---------------------------------------------------------------------------
// Circuit plumbing
// ---------------------------------------------------------------------------

TEST(Circuit, NodeNamespace) {
  Circuit c;
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_EQ(c.node("gnd"), kGround);
  const auto a = c.node("a");
  EXPECT_EQ(c.node("a"), a);
  const auto b = c.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(c.node_count(), 2u);
  EXPECT_EQ(c.node_name(a), "a");
  EXPECT_EQ(c.node_name(kGround), "gnd");
  EXPECT_EQ(c.find_node("b"), b);
  EXPECT_THROW(c.find_node("missing"), util::InvalidArgument);
  EXPECT_THROW(c.node(""), util::InvalidArgument);
}

TEST(Circuit, BranchAllocation) {
  Circuit c;
  c.node("n1");
  c.add<VSource>(c, c.node("n1"), kGround, 1.0);
  c.add<VSource>(c, c.node("n2"), kGround, 2.0);
  EXPECT_EQ(c.branch_count(), 2u);
  EXPECT_EQ(c.unknown_count(), 4u);
}

// ---------------------------------------------------------------------------
// PulseShape
// ---------------------------------------------------------------------------

TEST(PulseShape, RectangularValueAndCharge) {
  const auto p = PulseShape::rectangular_for_charge(1e-15, 1e-14, 2e-12);
  EXPECT_DOUBLE_EQ(p.value(2e-12), 0.0);          // Edge exclusive at start.
  EXPECT_DOUBLE_EQ(p.value(2.005e-12), 0.1);      // 1 fC / 10 fs = 0.1 A.
  EXPECT_DOUBLE_EQ(p.value(2.02e-12), 0.0);
  EXPECT_NEAR(p.charge_c(), 1e-15, 1e-27);
}

TEST(PulseShape, TriangularValueAndCharge) {
  const auto p = PulseShape::triangular_for_charge(1e-15, 1e-14, 0.0);
  EXPECT_NEAR(p.charge_c(), 1e-15, 1e-27);
  EXPECT_NEAR(p.value(0.5e-14), p.amplitude_a, 1e-18);  // Peak at midpoint.
  EXPECT_NEAR(p.value(0.25e-14), 0.5 * p.amplitude_a, 1e-12 * p.amplitude_a);
  // Triangle peak is twice the equal-charge rectangle height.
  const auto r = PulseShape::rectangular_for_charge(1e-15, 1e-14, 0.0);
  EXPECT_NEAR(p.amplitude_a, 2.0 * r.amplitude_a, 1e-12 * p.amplitude_a);
}

TEST(PulseShape, ZeroWidthRejected) {
  EXPECT_THROW(PulseShape::rectangular_for_charge(1e-15, 0.0), util::InvalidArgument);
}

TEST(PulseShape, BreakpointsReported) {
  Circuit c;
  const auto n = c.node("n");
  auto& src = c.add<PulseISource>(
      n, kGround, PulseShape::triangular_for_charge(1e-15, 1e-14, 1e-12));
  std::vector<double> bp;
  src.add_breakpoints(1e-9, bp);
  ASSERT_EQ(bp.size(), 3u);  // Start, mid, end.
  EXPECT_DOUBLE_EQ(bp[0], 1e-12);
}

// ---------------------------------------------------------------------------
// FinFET model
// ---------------------------------------------------------------------------

TEST(FinFet, CutoffCurrentTiny) {
  const auto op = evaluate_finfet(default_nfet(), 0.8, 0.0, 0.0, 0.0, 1.0);
  EXPECT_LT(op.ids, 1e-7);  // Well below on-current.
  EXPECT_GT(op.ids, 0.0);   // Finite subthreshold leakage.
}

TEST(FinFet, OnCurrentIn14nmClass) {
  const auto op = evaluate_finfet(default_nfet(), 0.8, 0.8, 0.0, 0.0, 1.0);
  EXPECT_GT(op.ids, 20e-6);
  EXPECT_LT(op.ids, 200e-6);
}

TEST(FinFet, SubthresholdSlopeReasonable) {
  // I(vg) ratio per 100 mV below threshold should be ~ a decade per 72 mV.
  const auto lo = evaluate_finfet(default_nfet(), 0.8, 0.05, 0.0, 0.0, 1.0);
  const auto hi = evaluate_finfet(default_nfet(), 0.8, 0.15, 0.0, 0.0, 1.0);
  const double decades = std::log10(hi.ids / lo.ids);
  EXPECT_GT(decades, 1.0);  // Slope steeper than 100 mV/dec.
  EXPECT_LT(decades, 2.0);  // But not below the 60 mV/dec physical limit - n.
}

TEST(FinFet, ZeroVdsZeroCurrent) {
  const auto op = evaluate_finfet(default_nfet(), 0.0, 0.8, 0.0, 0.0, 1.0);
  EXPECT_NEAR(op.ids, 0.0, 1e-15);
  EXPECT_GT(op.gds, 0.0);  // Linear-region conductance.
}

TEST(FinFet, MonotoneInVgsAndVds) {
  double prev = 0.0;
  for (double vg = 0.0; vg <= 0.8; vg += 0.05) {
    const auto op = evaluate_finfet(default_nfet(), 0.8, vg, 0.0, 0.0, 1.0);
    EXPECT_GE(op.ids, prev);
    EXPECT_GE(op.gm, 0.0);
    prev = op.ids;
  }
  prev = 0.0;
  for (double vd = 0.0; vd <= 0.8; vd += 0.05) {
    const auto op = evaluate_finfet(default_nfet(), vd, 0.8, 0.0, 0.0, 1.0);
    EXPECT_GE(op.ids, prev - 1e-15);
    EXPECT_GE(op.gds, 0.0);
    prev = op.ids;
  }
}

TEST(FinFet, SymmetryUnderSourceDrainSwap) {
  // ids(d, g, s) == -ids(s, g, d) for a symmetric device.
  const auto fwd = evaluate_finfet(default_nfet(), 0.5, 0.8, 0.1, 0.0, 1.0);
  const auto rev = evaluate_finfet(default_nfet(), 0.1, 0.8, 0.5, 0.0, 1.0);
  EXPECT_NEAR(fwd.ids, -rev.ids, 1e-12 + 1e-9 * std::abs(fwd.ids));
}

TEST(FinFet, DerivativesMatchFiniteDifferences) {
  const double h = 1e-6;
  for (double vd : {0.05, 0.4, 0.8, -0.3}) {
    for (double vg : {0.1, 0.3, 0.6}) {
      const auto op = evaluate_finfet(default_nfet(), vd, vg, 0.0, 0.0, 1.0);
      const auto gp = evaluate_finfet(default_nfet(), vd, vg + h, 0.0, 0.0, 1.0);
      const auto gm_fd = (gp.ids - op.ids) / h;
      EXPECT_NEAR(op.gm, gm_fd, 1e-3 * std::abs(gm_fd) + 1e-9)
          << "vd=" << vd << " vg=" << vg;
      const auto dp = evaluate_finfet(default_nfet(), vd + h, vg, 0.0, 0.0, 1.0);
      const auto gds_fd = (dp.ids - op.ids) / h;
      EXPECT_NEAR(op.gds, gds_fd, 1e-3 * std::abs(gds_fd) + 1e-9)
          << "vd=" << vd << " vg=" << vg;
    }
  }
}

TEST(FinFet, PmosMirrorsNmos) {
  // A PFET conducts when its gate is low relative to source.
  const auto off = evaluate_finfet(default_pfet(), 0.0, 0.8, 0.8, 0.0, 1.0);
  const auto on = evaluate_finfet(default_pfet(), 0.0, 0.0, 0.8, 0.0, 1.0);
  EXPECT_LT(std::abs(off.ids), 1e-7);
  EXPECT_LT(on.ids, -20e-6);  // Current flows out of the drain (negative).
  EXPECT_GT(std::abs(on.ids), std::abs(off.ids) * 100.0);
}

TEST(FinFet, PmosDerivativesMatchFiniteDifferences) {
  const double h = 1e-6;
  const auto op = evaluate_finfet(default_pfet(), 0.2, 0.1, 0.8, 0.0, 1.0);
  const auto gp = evaluate_finfet(default_pfet(), 0.2, 0.1 + h, 0.8, 0.0, 1.0);
  EXPECT_NEAR(op.gm, (gp.ids - op.ids) / h, 1e-3 * std::abs(op.gm) + 1e-9);
  const auto dp = evaluate_finfet(default_pfet(), 0.2 + h, 0.1, 0.8, 0.0, 1.0);
  EXPECT_NEAR(op.gds, (dp.ids - op.ids) / h, 1e-3 * std::abs(op.gds) + 1e-9);
}

TEST(FinFet, DeltaVtShiftsThreshold) {
  const auto weak = evaluate_finfet(default_nfet(), 0.8, 0.3, 0.0, 0.05, 1.0);
  const auto nom = evaluate_finfet(default_nfet(), 0.8, 0.3, 0.0, 0.0, 1.0);
  const auto strong = evaluate_finfet(default_nfet(), 0.8, 0.3, 0.0, -0.05, 1.0);
  EXPECT_LT(weak.ids, nom.ids);
  EXPECT_GT(strong.ids, nom.ids);
}

TEST(FinFet, FinCountScalesCurrent) {
  const auto one = evaluate_finfet(default_nfet(), 0.8, 0.8, 0.0, 0.0, 1.0);
  const auto three = evaluate_finfet(default_nfet(), 0.8, 0.8, 0.0, 0.0, 3.0);
  EXPECT_NEAR(three.ids, 3.0 * one.ids, 1e-9);
  EXPECT_THROW(evaluate_finfet(default_nfet(), 0.8, 0.8, 0.0, 0.0, 0.0),
               util::InvalidArgument);
}

TEST(FinFet, TemperatureScaling) {
  // Hot device: lower |Vt| (more subthreshold leakage) but lower mobility
  // (less on-current) — the classic crossover around the ZTC point.
  const auto cold_off = evaluate_finfet(default_nfet(), 0.8, 0.0, 0.0, 0.0, 1.0,
                                        233.15);
  const auto hot_off = evaluate_finfet(default_nfet(), 0.8, 0.0, 0.0, 0.0, 1.0,
                                       398.15);
  EXPECT_GT(hot_off.ids, 10.0 * cold_off.ids);  // Leakage explodes with T.

  const auto cold_on = evaluate_finfet(default_nfet(), 0.8, 0.8, 0.0, 0.0, 1.0,
                                       233.15);
  const auto hot_on = evaluate_finfet(default_nfet(), 0.8, 0.8, 0.0, 0.0, 1.0,
                                      398.15);
  EXPECT_LT(hot_on.ids, cold_on.ids);  // Mobility loss wins at strong inversion.

  // Default argument == 300 K exactly.
  const auto implicit = evaluate_finfet(default_nfet(), 0.8, 0.4, 0.0, 0.0, 1.0);
  const auto explicit300 =
      evaluate_finfet(default_nfet(), 0.8, 0.4, 0.0, 0.0, 1.0, 300.0);
  EXPECT_DOUBLE_EQ(implicit.ids, explicit300.ids);
  EXPECT_THROW(evaluate_finfet(default_nfet(), 0.8, 0.4, 0.0, 0.0, 1.0, 0.0),
               util::InvalidArgument);
}

TEST(FinFet, TemperatureDerivativesStayConsistent) {
  const double h = 1e-6;
  const auto op = evaluate_finfet(default_nfet(), 0.6, 0.5, 0.0, 0.0, 1.0, 358.15);
  const auto gp =
      evaluate_finfet(default_nfet(), 0.6, 0.5 + h, 0.0, 0.0, 1.0, 358.15);
  EXPECT_NEAR(op.gm, (gp.ids - op.ids) / h, 1e-3 * std::abs(op.gm) + 1e-9);
}

TEST(FinFet, DiblLowersThresholdAtHighVds) {
  // Same vgs, higher vds -> more current than CLM alone would give.
  const auto lo = evaluate_finfet(default_nfet(), 0.4, 0.3, 0.0, 0.0, 1.0);
  const auto hi = evaluate_finfet(default_nfet(), 0.8, 0.3, 0.0, 0.0, 1.0);
  EXPECT_GT(hi.ids, lo.ids * 1.1);
}

}  // namespace
}  // namespace finser::spice
