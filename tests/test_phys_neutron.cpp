#include <gtest/gtest.h>

#include <cmath>

#include "finser/phys/neutron.hpp"
#include "finser/phys/stopping.hpp"
#include "finser/util/error.hpp"

namespace finser::phys {
namespace {

const geom::Vec3 kDown{0.0, 0.0, -1.0};

// ---------------------------------------------------------------------------
// Recoil species plumbing
// ---------------------------------------------------------------------------

TEST(RecoilSpecies, MassAndChargeOrdering) {
  EXPECT_GT(mass_mev(Species::kSiRecoil), mass_mev(Species::kMgRecoil));
  EXPECT_GT(mass_mev(Species::kMgRecoil), mass_mev(Species::kAlpha));
  EXPECT_DOUBLE_EQ(charge_number(Species::kSiRecoil), 14.0);
  EXPECT_DOUBLE_EQ(charge_number(Species::kMgRecoil), 12.0);
  EXPECT_DOUBLE_EQ(charge_number(Species::kNeutron), 0.0);
  EXPECT_EQ(species_name(Species::kSiRecoil), "Si-recoil");
  EXPECT_EQ(species_name(Species::kNeutron), "neutron");
}

TEST(RecoilSpecies, NeutronHasNoStoppingPower) {
  EXPECT_DOUBLE_EQ(electronic_stopping(Species::kNeutron, 10.0, silicon()), 0.0);
  EXPECT_DOUBLE_EQ(nuclear_stopping(Species::kNeutron, 10.0, silicon()), 0.0);
  EXPECT_DOUBLE_EQ(effective_charge(Species::kNeutron, 10.0), 0.0);
}

TEST(RecoilSpecies, SiRecoilStoppingIsHuge) {
  // A 1 MeV Si recoil loses energy orders of magnitude faster than a 1 MeV
  // proton — the basis of the neutron soft-error mechanism.
  const double s_si = total_stopping(Species::kSiRecoil, 1.0, silicon());
  const double s_p = total_stopping(Species::kProton, 1.0, silicon());
  EXPECT_GT(s_si, 10.0 * s_p);
}

TEST(RecoilSpecies, SiRecoilRangeIsSubMicronScale) {
  // SRIM: ~1.2-1.5 um at 1 MeV, ~150 nm at 100 keV.
  const double r1 = csda_range_um(Species::kSiRecoil, 1.0, silicon());
  EXPECT_GT(r1, 0.5);
  EXPECT_LT(r1, 3.0);
  const double r01 = csda_range_um(Species::kSiRecoil, 0.1, silicon());
  EXPECT_LT(r01, 0.6);
  EXPECT_GT(r1, r01);
}

TEST(Lindhard, PartitionLimitsAndAnchor) {
  const Material& si = silicon();
  // Classic anchor: ~50 % ionizing at 100 keV Si-in-Si.
  EXPECT_NEAR(lindhard_partition(Species::kSiRecoil, 0.1, si), 0.49, 0.08);
  // Fast recoils ionize nearly fully, slow ones barely.
  EXPECT_GT(lindhard_partition(Species::kSiRecoil, 10.0, si), 0.8);
  EXPECT_LT(lindhard_partition(Species::kSiRecoil, 0.001, si), 0.25);
  // Monotone in energy.
  double prev = 0.0;
  for (double e : {0.001, 0.01, 0.1, 1.0, 10.0}) {
    const double q = lindhard_partition(Species::kSiRecoil, e, si);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(Lindhard, LightIonsNearlyFullyIonizing) {
  // For protons/alphas above ~1 MeV, the overall ionizing fraction is ~1.
  EXPECT_GT(ionizing_fraction(Species::kProton, 1.0, silicon()), 0.99);
  EXPECT_GT(ionizing_fraction(Species::kAlpha, 2.0, silicon()), 0.99);
  // For a slow Si recoil, it is far below 1 (nuclear channel dominates).
  EXPECT_LT(ionizing_fraction(Species::kSiRecoil, 0.05, silicon()), 0.7);
}

// ---------------------------------------------------------------------------
// Cross sections
// ---------------------------------------------------------------------------

TEST(NeutronModel, CrossSectionMagnitudes) {
  NeutronInteractionModel m;
  // Broad natSi scale: a few barn elastic at MeV energies.
  EXPECT_GT(m.elastic_barn(1.0), 1.0);
  EXPECT_LT(m.elastic_barn(1.0), 10.0);
  // Reaction channels closed below threshold.
  EXPECT_DOUBLE_EQ(m.n_alpha_barn(1.0), 0.0);
  EXPECT_DOUBLE_EQ(m.n_proton_barn(2.0), 0.0);
  // Open and sub-barn above.
  EXPECT_GT(m.n_alpha_barn(14.0), 0.05);
  EXPECT_LT(m.n_alpha_barn(14.0), 1.0);
  EXPECT_GT(m.n_proton_barn(14.0), 0.05);
  EXPECT_DOUBLE_EQ(m.total_barn(14.0), m.elastic_barn(14.0) +
                                            m.n_alpha_barn(14.0) +
                                            m.n_proton_barn(14.0));
}

TEST(NeutronModel, MeanFreePathIsCentimeters) {
  NeutronInteractionModel m;
  for (double e : {1.0, 14.0, 100.0}) {
    const double mfp_cm = m.mean_free_path_um(e) / 1e4;
    EXPECT_GT(mfp_cm, 2.0) << e;
    EXPECT_LT(mfp_cm, 50.0) << e;
  }
}

TEST(NeutronModel, RejectsBadInput) {
  NeutronInteractionModel m;
  stats::Rng rng(1);
  EXPECT_THROW(m.elastic_barn(0.0), util::InvalidArgument);
  EXPECT_THROW(m.sample(0.0, kDown, rng), util::InvalidArgument);
  EXPECT_THROW(m.sample(1.0, geom::Vec3{0, 0, -2}, rng), util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Kinematics
// ---------------------------------------------------------------------------

TEST(NeutronKinematics, ElasticRecoilBounded) {
  NeutronInteractionModel m;
  stats::Rng rng(7);
  const double e_n = 5.0;
  const double e_max = NeutronInteractionModel::max_recoil_energy_mev(e_n);
  EXPECT_NEAR(e_max, 0.133 * e_n, 0.01 * e_n);
  for (int i = 0; i < 2000; ++i) {
    const auto out = m.sample(1.0, kDown, rng);  // Only elastic open at 1 MeV.
    ASSERT_EQ(out.channel, NeutronChannel::kElastic);
    for (const auto& sec : out.secondaries) {
      EXPECT_EQ(sec.species, Species::kSiRecoil);
      EXPECT_LE(sec.energy_mev,
                NeutronInteractionModel::max_recoil_energy_mev(1.0) * (1 + 1e-9));
      EXPECT_GT(sec.energy_mev, 0.0);
      EXPECT_NEAR(sec.direction.norm(), 1.0, 1e-9);
      // Elastic recoils go forward (into the hemisphere of the neutron).
      EXPECT_GE(sec.direction.dot(kDown), -1e-9);
    }
  }
}

TEST(NeutronKinematics, RecoilEnergyIsUniformOverRange) {
  // Isotropic-CM elastic scattering => E_R uniform in [0, E_max].
  NeutronInteractionModel m;
  stats::Rng rng(8);
  const double e_max = NeutronInteractionModel::max_recoil_energy_mev(2.0);
  double acc = 0.0;
  int n = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto out = m.sample(2.0, kDown, rng);
    for (const auto& sec : out.secondaries) {
      acc += sec.energy_mev;
      ++n;
    }
  }
  EXPECT_NEAR(acc / n, 0.5 * e_max, 0.02 * e_max);
}

TEST(NeutronKinematics, NAlphaEnergySharing) {
  // At 14 MeV the (n,alpha) channel is open; verify energy split and the
  // back-to-back emission of alpha and Mg recoil.
  NeutronInteractionModel m;
  stats::Rng rng(9);
  bool seen = false;
  for (int i = 0; i < 5000 && !seen; ++i) {
    const auto out = m.sample(14.0, kDown, rng);
    if (out.channel != NeutronChannel::kNAlpha) continue;
    seen = true;
    ASSERT_EQ(out.secondaries.size(), 2u);
    const auto& alpha = out.secondaries[0];
    const auto& mg = out.secondaries[1];
    EXPECT_EQ(alpha.species, Species::kAlpha);
    EXPECT_EQ(mg.species, Species::kMgRecoil);
    // Available CM energy: 14 * 28/29 - 2.654 ~ 10.86 MeV.
    const double e_cm = 14.0 * 27.977 / 28.986 + NeutronInteractionModel::kQnAlphaMeV;
    EXPECT_NEAR(alpha.energy_mev + mg.energy_mev, e_cm, 0.05);
    // Inverse-mass split: alpha carries ~25/29 of it.
    EXPECT_NEAR(alpha.energy_mev, e_cm * 24.986 / (4.0026 + 24.986), 0.05);
    // Back-to-back.
    EXPECT_NEAR(alpha.direction.dot(mg.direction), -1.0, 1e-9);
  }
  EXPECT_TRUE(seen);
}

TEST(NeutronKinematics, ChannelFrequenciesMatchCrossSections) {
  NeutronInteractionModel m;
  stats::Rng rng(10);
  int elastic = 0, nalpha = 0, nproton = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    switch (m.sample(14.0, kDown, rng).channel) {
      case NeutronChannel::kElastic: ++elastic; break;
      case NeutronChannel::kNAlpha: ++nalpha; break;
      case NeutronChannel::kNProton: ++nproton; break;
    }
  }
  const double total = m.total_barn(14.0);
  EXPECT_NEAR(elastic / static_cast<double>(n), m.elastic_barn(14.0) / total, 0.01);
  EXPECT_NEAR(nalpha / static_cast<double>(n), m.n_alpha_barn(14.0) / total, 0.01);
  EXPECT_NEAR(nproton / static_cast<double>(n), m.n_proton_barn(14.0) / total,
              0.01);
}

}  // namespace
}  // namespace finser::phys
