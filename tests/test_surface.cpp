/// \file test_surface.cpp
/// \brief finser::surface unit tests: from_sweep channel copies, the
/// byte-stable query contract (exact nodes bitwise, clamped edges bitwise),
/// the versioned codec, the hoisted cell-model codec, surface fingerprints,
/// and the ServeSession NDJSON loop against synthetic lookup/refine hooks.

#include "finser/surface/response_surface.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

#include "finser/core/array_engine.hpp"
#include "finser/pipeline/surface_provider.hpp"
#include "finser/surface/serve.hpp"
#include "finser/util/error.hpp"

namespace finser::surface {
namespace {

bool bits_eq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Synthetic finished sweep with distinct, deterministic channel values —
/// value(b, v, m) is injective so a copy/transpose bug cannot cancel out.
core::EnergySweepResult make_sweep(std::size_t nv = 3, std::size_t nb = 4) {
  core::EnergySweepResult s;
  s.species = phys::Species::kAlpha;
  for (std::size_t v = 0; v < nv; ++v) {
    s.vdds.push_back(0.7 + 0.1 * static_cast<double>(v));
  }
  for (std::size_t b = 0; b < nb; ++b) {
    env::EnergyBin bin;
    bin.e_rep_mev = std::pow(2.0, static_cast<double>(b));  // geometric
    bin.e_lo_mev = bin.e_rep_mev / 1.5;
    bin.e_hi_mev = bin.e_rep_mev * 1.5;
    bin.integral_flux_per_cm2_s = 1.0 + static_cast<double>(b);
    s.bins.push_back(bin);
  }
  s.per_bin.resize(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    s.per_bin[b].vdds = s.vdds;
    s.per_bin[b].est.resize(nv);
    for (std::size_t v = 0; v < nv; ++v) {
      for (std::size_t m = 0; m < 2; ++m) {
        const double base = 0.001 * static_cast<double>(100 * b + 10 * v + m + 1);
        core::PofEstimate& e = s.per_bin[b].est[v][m];
        e.tot = base;
        e.seu = base * 0.75;
        e.mbu = base * 0.25;
        e.tot_se = base * 0.01;
      }
    }
  }
  s.fit.resize(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    for (std::size_t m = 0; m < 2; ++m) {
      const double base = 10.0 * static_cast<double>(10 * v + m + 1);
      s.fit[v][m].fit_tot = base;
      s.fit[v][m].fit_seu = base * 0.8;
      s.fit[v][m].fit_mbu = base * 0.2;
    }
  }
  return s;
}

ResponseSurface make_surface(std::size_t nv = 3, std::size_t nb = 4) {
  return ResponseSurface::from_sweep("scen", 300.0, 0x1234abcdu,
                                     make_sweep(nv, nb));
}

TEST(ResponseSurface, FromSweepCopiesChannelsBitExact) {
  const core::EnergySweepResult sweep = make_sweep();
  const ResponseSurface s = make_surface();
  EXPECT_EQ(s.scenario, "scen");
  EXPECT_EQ(s.species, "alpha");
  EXPECT_EQ(s.n_vdd(), 3u);
  EXPECT_EQ(s.n_bins(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    for (std::size_t v = 0; v < 3; ++v) {
      for (const std::size_t m : {core::kModeNominal, core::kModeWithPv}) {
        const core::PofEstimate& e = sweep.per_bin[b].est[v][m];
        const int mi = static_cast<int>(m);
        EXPECT_TRUE(bits_eq(s.pof_at(s.pof_tot, mi, b, v), e.tot));
        EXPECT_TRUE(bits_eq(s.pof_at(s.pof_seu, mi, b, v), e.seu));
        EXPECT_TRUE(bits_eq(s.pof_at(s.pof_mbu, mi, b, v), e.mbu));
        EXPECT_TRUE(bits_eq(s.pof_at(s.pof_tot_se, mi, b, v), e.tot_se));
      }
    }
  }
  for (std::size_t v = 0; v < 3; ++v) {
    for (const std::size_t m : {core::kModeNominal, core::kModeWithPv}) {
      EXPECT_TRUE(bits_eq(s.fit_tot[m][v], sweep.fit[v][m].fit_tot));
      EXPECT_TRUE(bits_eq(s.fit_seu[m][v], sweep.fit[v][m].fit_seu));
      EXPECT_TRUE(bits_eq(s.fit_mbu[m][v], sweep.fit[v][m].fit_mbu));
    }
  }
}

TEST(ResponseSurface, GridPointQueriesReturnNodeValuesBitwise) {
  const ResponseSurface s = make_surface();
  for (std::size_t b = 0; b < s.n_bins(); ++b) {
    for (std::size_t v = 0; v < s.n_vdd(); ++v) {
      EXPECT_TRUE(s.is_grid_vdd(s.vdds[v]));
      EXPECT_TRUE(s.is_grid_energy(s.bins[b].e_rep_mev));
      for (const bool with_pv : {false, true}) {
        const int m = with_pv ? static_cast<int>(core::kModeWithPv)
                              : static_cast<int>(core::kModeNominal);
        const PofSample p = s.pof(s.vdds[v], s.bins[b].e_rep_mev, with_pv);
        EXPECT_TRUE(bits_eq(p.tot, s.pof_at(s.pof_tot, m, b, v)));
        EXPECT_TRUE(bits_eq(p.seu, s.pof_at(s.pof_seu, m, b, v)));
        EXPECT_TRUE(bits_eq(p.mbu, s.pof_at(s.pof_mbu, m, b, v)));
        EXPECT_TRUE(bits_eq(p.tot_se, s.pof_at(s.pof_tot_se, m, b, v)));
        const FitSample f = s.fit(s.vdds[v], with_pv);
        const std::size_t mu = static_cast<std::size_t>(m);
        EXPECT_TRUE(bits_eq(f.tot, s.fit_tot[mu][v]));
        EXPECT_TRUE(bits_eq(f.seu, s.fit_seu[mu][v]));
        EXPECT_TRUE(bits_eq(f.mbu, s.fit_mbu[mu][v]));
      }
    }
  }
  EXPECT_FALSE(s.is_grid_vdd(0.75));
  EXPECT_FALSE(s.is_grid_energy(3.0));
}

TEST(ResponseSurface, InteriorQueriesStayWithinCornerValues) {
  const ResponseSurface s = make_surface();
  const PofSample p = s.pof(0.75, 3.0, true);  // between v0/v1 and b1/b2
  const int m = static_cast<int>(core::kModeWithPv);
  double lo = 1.0, hi = 0.0;
  for (std::size_t b = 1; b <= 2; ++b) {
    for (std::size_t v = 0; v <= 1; ++v) {
      lo = std::min(lo, s.pof_at(s.pof_tot, m, b, v));
      hi = std::max(hi, s.pof_at(s.pof_tot, m, b, v));
    }
  }
  EXPECT_GE(p.tot, lo);
  EXPECT_LE(p.tot, hi);
  // FIT between the two nodes:
  const FitSample f = s.fit(0.75, true);
  EXPECT_GT(f.tot, std::min(s.fit_tot[1][0], s.fit_tot[1][1]));
  EXPECT_LT(f.tot, std::max(s.fit_tot[1][0], s.fit_tot[1][1]));
}

TEST(ResponseSurface, OutOfRangeClampsToEdgeNodesBitwise) {
  const ResponseSurface s = make_surface();
  const int m = static_cast<int>(core::kModeWithPv);
  const std::size_t last_v = s.n_vdd() - 1;
  const std::size_t last_b = s.n_bins() - 1;
  EXPECT_TRUE(bits_eq(s.pof(0.1, 0.01, true).tot, s.pof_at(s.pof_tot, m, 0, 0)));
  EXPECT_TRUE(bits_eq(s.pof(5.0, 1e6, true).tot,
                      s.pof_at(s.pof_tot, m, last_b, last_v)));
  EXPECT_TRUE(bits_eq(s.fit(0.1, true).tot, s.fit_tot[1][0]));
  EXPECT_TRUE(bits_eq(s.fit(5.0, true).tot, s.fit_tot[1][last_v]));
}

TEST(ResponseSurface, DegenerateSingleNodeAxesCollapse) {
  const ResponseSurface s = make_surface(1, 1);
  const int m = static_cast<int>(core::kModeWithPv);
  // Every query — on, below, above the lone node — answers the node.
  for (const double vdd : {0.1, 0.7, 9.0}) {
    for (const double e : {0.01, 1.0, 1e4}) {
      EXPECT_TRUE(bits_eq(s.pof(vdd, e, true).tot, s.pof_at(s.pof_tot, m, 0, 0)));
    }
    EXPECT_TRUE(bits_eq(s.fit(vdd, true).tot, s.fit_tot[1][0]));
  }
}

TEST(ResponseSurface, CodecRoundTripIsByteStable) {
  const ResponseSurface s = make_surface();
  const std::vector<std::uint8_t> blob = s.encode();
  const ResponseSurface d = ResponseSurface::decode(blob);
  EXPECT_EQ(d.scenario, s.scenario);
  EXPECT_EQ(d.species, s.species);
  EXPECT_TRUE(bits_eq(d.temp_k, s.temp_k));
  EXPECT_EQ(d.fingerprint, s.fingerprint);
  // Re-encoding the decoded surface must reproduce the exact payload: the
  // warm-restart byte-identity contract is this round trip.
  EXPECT_EQ(d.encode(), blob);
  // And decoded queries answer bitwise like the original.
  const PofSample a = s.pof(0.75, 3.0, true);
  const PofSample b = d.pof(0.75, 3.0, true);
  EXPECT_TRUE(bits_eq(a.tot, b.tot));
  EXPECT_TRUE(bits_eq(a.seu, b.seu));
  EXPECT_TRUE(bits_eq(a.mbu, b.mbu));
  EXPECT_TRUE(bits_eq(a.tot_se, b.tot_se));
}

TEST(ResponseSurface, DecodeRejectsMalformedBlobs) {
  const std::vector<std::uint8_t> blob = make_surface().encode();
  // Truncation at any of a few depths throws, never crashes.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 std::size_t{16}, blob.size() - 1}) {
    std::vector<std::uint8_t> cut(blob.begin(),
                                  blob.begin() + static_cast<long>(keep));
    EXPECT_THROW(ResponseSurface::decode(cut), util::Error);
  }
  // Unknown codec version.
  std::vector<std::uint8_t> wrong = blob;
  wrong[0] = 0xEE;
  EXPECT_THROW(ResponseSurface::decode(wrong), util::Error);
  // Trailing garbage.
  std::vector<std::uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_THROW(ResponseSurface::decode(padded), util::Error);
}

TEST(ResponseSurface, ValidateRejectsChannelSizeMismatch) {
  ResponseSurface s = make_surface();
  EXPECT_NO_THROW(s.validate());
  s.pof_tot[0].pop_back();
  EXPECT_THROW(s.validate(), util::Error);
}

TEST(CellModelCodec, RoundTripsAndRestoresFingerprintFromKey) {
  sram::CellSoftErrorModel model;
  model.config_fingerprint = 0xfeedbeef;  // *not* serialized: key carries it
  const std::vector<std::uint8_t> blob = encode_cell_model(model);
  const sram::CellSoftErrorModel back = decode_cell_model(blob, 0x1111);
  EXPECT_TRUE(back.tables.empty());
  EXPECT_EQ(back.config_fingerprint, 0x1111u);
  std::vector<std::uint8_t> padded = blob;
  padded.push_back(7);
  EXPECT_THROW(decode_cell_model(padded, 0), util::Error);
}

TEST(SurfaceFingerprint, StableAndSensitiveToSpeciesPosition) {
  pipeline::ScenarioSpec scen;
  scen.name = "s";
  scen.species = {"alpha", "proton"};
  const std::uint64_t a0 = pipeline::response_surface_fingerprint(scen, 0);
  const std::uint64_t a1 = pipeline::response_surface_fingerprint(scen, 1);
  EXPECT_EQ(a0, pipeline::response_surface_fingerprint(scen, 0));
  // Same scenario, different position in the sweep order: different seeds
  // were consumed before this species, so the identity must differ.
  EXPECT_NE(a0, a1);
  // Any physics knob shifts the identity...
  pipeline::ScenarioSpec warm = scen;
  warm.flow.cell_design.temp_k += 50.0;
  EXPECT_NE(a0, pipeline::response_surface_fingerprint(warm, 0));
  // ...but the scenario display name does not change the physics hash used
  // here beyond the campaign document (name is part of the document).
  EXPECT_THROW(pipeline::response_surface_fingerprint(scen, 2),
               util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// ServeSession against synthetic hooks: no simulation, pure protocol.
// ---------------------------------------------------------------------------

std::vector<std::string> run_session(const std::string& input,
                                     ServeSession& session, int& rc) {
  std::istringstream in(input);
  std::ostringstream out;
  rc = session.run(in, out);
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  std::string l;
  while (std::getline(split, l)) lines.push_back(l);
  return lines;
}

std::vector<ServeScenario> one_scenario_catalog() {
  ServeScenario sc;
  sc.name = "scen";
  sc.species = {"alpha"};
  sc.temp_k = 300.0;
  return {sc};
}

TEST(ServeSession, CacheHitsAnswerWithoutRefinementAndDrainCleanly) {
  const ResponseSurface surf = make_surface();
  int refines = 0;
  ServeSession session(
      one_scenario_catalog(), ServeConfig{},
      [&surf](const std::string&, const std::string&) { return &surf; },
      [&refines](const std::string&, const std::string&) -> const ResponseSurface* {
        ++refines;
        return nullptr;
      },
      nullptr);
  int rc = -1;
  const auto lines = run_session(
      "{\"id\": 1, \"op\": \"pof\", \"species\": \"alpha\", \"vdd\": 0.7, "
      "\"energy_mev\": 2.0}\n"
      "{\"id\": 2, \"op\": \"fit\", \"species\": \"alpha\", \"vdd\": 0.7, "
      "\"with_pv\": false}\n"
      "{\"op\":\"shutdown\"}\n",
      session, rc);
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(refines, 0);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"grid_point\":true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"pof_tot\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"fit_tot\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"op\":\"shutdown\""), std::string::npos);
}

TEST(ServeSession, RepeatedQueriesAreByteIdenticalAcrossCacheStates) {
  const ResponseSurface surf = make_surface();
  const std::string query =
      "{\"id\": \"q\", \"op\": \"pof\", \"species\": \"alpha\", "
      "\"vdd\": 0.8, \"energy_mev\": 2.0}\n";

  // Session A: every lookup hits. Session B: first lookup misses and the
  // surface arrives via refine. The response *bytes* must match — replies
  // carry no provenance, so cache state is unobservable.
  ServeSession hit(
      one_scenario_catalog(), ServeConfig{},
      [&surf](const std::string&, const std::string&) { return &surf; },
      [](const std::string&, const std::string&) -> const ResponseSurface* {
        return nullptr;
      },
      nullptr);
  bool refined = false;
  ServeSession miss(
      one_scenario_catalog(), ServeConfig{},
      [&surf, &refined](const std::string&,
                        const std::string&) -> const ResponseSurface* {
        return refined ? &surf : nullptr;
      },
      [&surf, &refined](const std::string&, const std::string&) {
        refined = true;
        return &surf;
      },
      nullptr);
  int rc_a = -1, rc_b = -1;
  const auto a = run_session(query, hit, rc_a);
  const auto b = run_session(query, miss, rc_b);
  EXPECT_EQ(rc_a, 0);
  EXPECT_EQ(rc_b, 0);
  EXPECT_TRUE(refined);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0], b[0]);
}

TEST(ServeSession, MalformedAndUnknownRequestsDegradeButKeepServing) {
  const ResponseSurface surf = make_surface();
  ServeSession session(
      one_scenario_catalog(), ServeConfig{},
      [&surf](const std::string&, const std::string&) { return &surf; },
      [](const std::string&, const std::string&) -> const ResponseSurface* {
        return nullptr;
      },
      nullptr);
  int rc = -1;
  const auto lines = run_session(
      "this is not json\n"
      "{\"op\": \"frobnicate\"}\n"
      "{\"op\": \"pof\", \"species\": \"muon\", \"vdd\": 0.8, "
      "\"energy_mev\": 1.0}\n"
      "{\"op\": \"pof\", \"species\": \"alpha\", \"vdd\": \"high\", "
      "\"energy_mev\": 1.0}\n"
      "{\"op\": \"fit\", \"species\": \"alpha\", \"vdd\": 0.8}\n",
      session, rc);
  EXPECT_EQ(rc, 6);  // degraded: errors occurred, but the loop kept going
  ASSERT_EQ(lines.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NE(lines[i].find("\"status\":\"error\""), std::string::npos)
        << lines[i];
  }
  EXPECT_NE(lines[4].find("\"status\":\"ok\""), std::string::npos);
}

TEST(ServeSession, ShedsWhenPendingQueueIsFull) {
  const ResponseSurface surf = make_surface();
  bool built = false;
  ServeConfig cfg;
  cfg.max_pending = 1;
  ServeSession session(
      one_scenario_catalog(), cfg,
      [&surf, &built](const std::string&,
                      const std::string&) -> const ResponseSurface* {
        return built ? &surf : nullptr;
      },
      [&surf, &built](const std::string&, const std::string&) {
        built = true;
        return &surf;
      },
      nullptr);
  int rc = -1;
  const auto lines = run_session(
      "{\"id\": 1, \"op\": \"fit\", \"species\": \"alpha\", \"vdd\": 0.8}\n"
      "{\"id\": 2, \"op\": \"fit\", \"species\": \"alpha\", \"vdd\": 0.9}\n",
      session, rc);
  EXPECT_EQ(rc, 6);  // a shed reply is a degraded run
  ASSERT_EQ(lines.size(), 2u);
  // The shed reply is immediate, so it precedes the queued answer.
  EXPECT_NE(lines[0].find("\"status\":\"shed\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":1"), std::string::npos);
}

TEST(ServeSession, CancelledTokenDrainsWithCacheOnlyAnswers) {
  const ResponseSurface surf = make_surface();
  exec::CancelToken cancel;
  cancel.cancel();
  ServeSession session(
      one_scenario_catalog(), ServeConfig{},
      [](const std::string&, const std::string&) -> const ResponseSurface* {
        return nullptr;  // nothing cached
      },
      [&surf](const std::string&, const std::string&) {
        ADD_FAILURE() << "refine must not run after cancellation";
        return &surf;
      },
      &cancel);
  int rc = -1;
  const auto lines = run_session(
      "{\"id\": 9, \"op\": \"fit\", \"species\": \"alpha\", \"vdd\": 0.8}\n",
      session, rc);
  // Pre-cancelled token: the loop exits before reading; no replies, clean.
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(lines.empty());
}

}  // namespace
}  // namespace finser::surface
