#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "finser/core/array_mc.hpp"
#include "finser/exec/exec.hpp"
#include "finser/exec/progress.hpp"
#include "finser/exec/thread_pool.hpp"
#include "finser/stats/rng.hpp"
#include "finser/util/error.hpp"

namespace finser::exec {
namespace {

// ---------------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------------

TEST(ExecConfig, HardwareThreadsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ExecConfig, ExplicitRequestWins) {
  setenv("FINSER_THREADS", "7", 1);
  EXPECT_EQ(resolve_threads(3), 3u);
  unsetenv("FINSER_THREADS");
}

TEST(ExecConfig, EnvUsedWhenRequestIsAuto) {
  setenv("FINSER_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(0), 5u);
  unsetenv("FINSER_THREADS");
  EXPECT_EQ(resolve_threads(0), hardware_threads());
}

TEST(ExecConfig, MalformedEnvIsRejected) {
  for (const char* bad : {"0", "-2", "abc", "", "2.5", "3x"}) {
    setenv("FINSER_THREADS", bad, 1);
    EXPECT_EQ(threads_from_env(), 0u) << "value: \"" << bad << '"';
  }
  setenv("FINSER_THREADS", "4", 1);
  EXPECT_EQ(threads_from_env(), 4u);
  setenv("FINSER_THREADS", "4 ", 1);  // Trailing whitespace tolerated.
  EXPECT_EQ(threads_from_env(), 4u);
  unsetenv("FINSER_THREADS");
  EXPECT_EQ(threads_from_env(), 0u);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversEveryItemExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  const std::size_t n = 1237;  // Deliberately not a multiple of the chunk.
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_chunks(n, 64, [&](const ChunkRange& r) {
    EXPECT_LT(r.worker, pool.thread_count());
    for (std::size_t i = r.begin; i < r.end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ChunkDecompositionIsThreadCountInvariant) {
  auto ranges_with = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::array<std::size_t, 3>> out;
    pool.parallel_for_chunks(1000, 96, [&](const ChunkRange& r) {
      std::lock_guard<std::mutex> lock(mu);
      out.push_back({r.index, r.begin, r.end});
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(ranges_with(1), ranges_with(4));
}

TEST(ThreadPool, EmptyRegionIsNoOp) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallel_for_chunks(0, 16, [&](const ChunkRange&) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for_chunks(10, 3, [&](const ChunkRange& r) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(r.worker, 0u);
  });
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_chunks(100, 1,
                               [](const ChunkRange& r) {
                                 if (r.index == 17)
                                   throw std::runtime_error("chunk 17");
                               }),
      std::runtime_error);
  // The pool survives the exception and runs subsequent regions.
  std::atomic<std::size_t> count{0};
  pool.parallel_for_chunks(50, 5, [&](const ChunkRange&) { ++count; });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPool, ReusableAcrossRegions) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for_chunks(100, 7, [&](const ChunkRange& r) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        sum.fetch_add(static_cast<long>(i));
      }
    });
  }
  EXPECT_EQ(sum.load(), 20L * (99L * 100L / 2L));
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

TEST(CancelToken, SetResetHandshake) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // Idempotent.
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ThreadPool, NullCancelTokenRunsEverything) {
  ThreadPool pool(3);
  std::atomic<std::size_t> ran{0};
  const bool completed = pool.parallel_for_chunks(
      100, 4, [&](const ChunkRange&) { ++ran; }, nullptr);
  EXPECT_TRUE(completed);
  EXPECT_EQ(ran.load(), 25u);
}

TEST(ThreadPool, CancelStopsAtChunkBoundary) {
  ThreadPool pool(4);
  CancelToken token;
  std::atomic<std::size_t> ran{0};
  const bool completed = pool.parallel_for_chunks(
      1000, 1,
      [&](const ChunkRange&) {
        ++ran;
        token.cancel();  // Fired from inside the first executing chunks.
      },
      &token);
  EXPECT_FALSE(completed);
  // Chunks already claimed still finish (no mid-chunk interruption), but the
  // region stops well short of the full 1000.
  EXPECT_GE(ran.load(), 1u);
  EXPECT_LT(ran.load(), 1000u);

  // An already-cancelled token stops the region before any chunk runs.
  std::atomic<std::size_t> ran2{0};
  EXPECT_FALSE(pool.parallel_for_chunks(
      100, 1, [&](const ChunkRange&) { ++ran2; }, &token));
  EXPECT_EQ(ran2.load(), 0u);

  // After a reset the same pool and token run a full region again.
  token.reset();
  std::atomic<std::size_t> ran3{0};
  EXPECT_TRUE(pool.parallel_for_chunks(
      100, 1, [&](const ChunkRange&) { ++ran3; }, &token));
  EXPECT_EQ(ran3.load(), 100u);
}

TEST(CancelToken, SignalHandlerRoutesSigintToToken) {
  CancelToken token;
  install_signal_cancel(&token);
  std::raise(SIGINT);
  EXPECT_TRUE(token.cancelled());
  // Restore the default disposition before the token leaves scope.
  install_signal_cancel(nullptr);
}

TEST(CancelToken, SignalFanoutForwardsSigtermToRegisteredChildren) {
  // The supervisor registers worker pids so one Ctrl-C stops the whole
  // fleet. Fork a child with default SIGTERM disposition, register it, and
  // check the forwarded signal kills it.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    for (;;) ::pause();  // Waits for the fan-out SIGTERM.
  }

  CancelToken token;
  install_signal_cancel(&token);
  ASSERT_TRUE(signal_fanout_add(static_cast<int>(child)));
  EXPECT_TRUE(signal_fanout_add(static_cast<int>(child)));  // Idempotent.
  EXPECT_FALSE(signal_fanout_add(0));  // Pid 0 would signal our own group.

  std::raise(SIGTERM);
  EXPECT_TRUE(token.cancelled());
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGTERM);

  // Remove frees the slot; a later signal must not touch the stale pid.
  signal_fanout_remove(static_cast<int>(child));
  token.reset();
  std::raise(SIGTERM);
  EXPECT_TRUE(token.cancelled());
  install_signal_cancel(nullptr);
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

TEST(Reduce, PairwiseMatchesFold) {
  std::vector<double> parts(13);
  std::iota(parts.begin(), parts.end(), 1.0);
  const double got =
      reduce_pairwise(parts, [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(got, 13.0 * 14.0 / 2.0);
  EXPECT_THROW(reduce_pairwise(std::vector<double>{},
                               [](double a, double b) { return a + b; }),
               util::InvalidArgument);
}

TEST(Reduce, ParallelReduceSumsItems) {
  ThreadPool pool(4);
  const auto got = parallel_reduce<long>(
      pool, 5000, 128,
      [](const ChunkRange& r) {
        long s = 0;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          s += static_cast<long>(i);
        }
        return s;
      },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(got, 4999L * 5000L / 2L);
  EXPECT_THROW((parallel_reduce<long>(
                   pool, 0, 16, [](const ChunkRange&) { return 0L; },
                   [](long a, long b) { return a + b; })),
               util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Deterministic RNG streams
// ---------------------------------------------------------------------------

TEST(RngStream, SameStreamIdReproduces) {
  stats::Rng a = stats::Rng::stream(42, 7);
  stats::Rng b = stats::Rng::stream(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngStream, DistinctStreamsAndRootsDiffer) {
  std::set<std::uint64_t> firsts;
  for (std::uint64_t id = 0; id < 256; ++id) {
    firsts.insert(stats::Rng::stream(42, id)());
  }
  EXPECT_EQ(firsts.size(), 256u);  // No collisions across stream ids.
  EXPECT_NE(stats::Rng::stream(1, 0)(),
            stats::Rng::stream(2, 0)());
  EXPECT_EQ(stats::Rng::derive_seed(9, 3), stats::Rng::derive_seed(9, 3));
  EXPECT_NE(stats::Rng::derive_seed(9, 3), stats::Rng::derive_seed(9, 4));
}

// ---------------------------------------------------------------------------
// ProgressSink
// ---------------------------------------------------------------------------

TEST(Progress, DisabledSinkIsNoOp) {
  const ProgressSink sink;
  EXPECT_FALSE(static_cast<bool>(sink));
  sink.message("ignored");
  sink.start_phase("x", 10);
  sink.tick(10);
  EXPECT_EQ(sink.completed(), 0u);
}

TEST(Progress, CountsTicksFromManyThreads) {
  std::vector<std::string> lines;
  std::mutex mu;
  const ProgressSink sink(
      [&](const std::string& m) {
        std::lock_guard<std::mutex> lock(mu);
        lines.push_back(m);
      },
      std::chrono::milliseconds(0));
  sink.start_phase("strikes", 1000);
  ThreadPool pool(4);
  pool.parallel_for_chunks(1000, 10,
                           [&](const ChunkRange& r) { sink.tick(r.end - r.begin); });
  EXPECT_EQ(sink.completed(), 1000u);
  // The final line is always emitted, whatever the throttle swallowed.
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("1000/1000"), std::string::npos);
}

TEST(Progress, ThrottleSuppressesFloodButKeepsFinalTick) {
  int calls = 0;
  const ProgressSink sink([&](const std::string&) { ++calls; },
                          std::chrono::milliseconds(10000));
  sink.start_phase("work", 500);
  for (int i = 0; i < 500; ++i) sink.tick();
  // First emission plus the guaranteed final one at most.
  EXPECT_LE(calls, 2);
  EXPECT_GE(calls, 1);
  EXPECT_EQ(sink.completed(), 500u);
}

TEST(Progress, MessageNeverThrottled) {
  int calls = 0;
  const ProgressSink sink([&](const std::string&) { ++calls; },
                          std::chrono::milliseconds(10000));
  for (int i = 0; i < 5; ++i) sink.message("m");
  EXPECT_EQ(calls, 5);
}

TEST(Progress, ImplicitFromLambdaKeepsCallSitesWorking) {
  std::string got;
  const ProgressSink sink = [&](const std::string& m) { got = m; };
  EXPECT_TRUE(static_cast<bool>(sink));
  sink.message("hello");
  EXPECT_EQ(got, "hello");
}

// ---------------------------------------------------------------------------
// PofAccumulator: merged chunks must reproduce the single-pass statistics
// ---------------------------------------------------------------------------

TEST(PofAccumulator, MergedChunksEqualSinglePass) {
  stats::Rng rng(123);
  std::vector<core::CombinedPof> obs(4097);
  for (auto& o : obs) {
    o.tot = rng.uniform(0.0, 1.0);
    o.seu = 0.8 * o.tot;
    o.mbu = o.tot - o.seu;
  }

  core::PofAccumulator single;
  for (const auto& o : obs) {
    single.add(o);
    single.add_multiplicity(o.tot > 0.5 ? 2 : 1, o.tot);
  }

  // Chunked accumulation with an uneven tail, merged pairwise.
  const std::size_t chunk = 256;
  std::vector<core::PofAccumulator> parts;
  for (std::size_t b = 0; b < obs.size(); b += chunk) {
    core::PofAccumulator acc;
    for (std::size_t i = b; i < std::min(b + chunk, obs.size()); ++i) {
      acc.add(obs[i]);
      acc.add_multiplicity(obs[i].tot > 0.5 ? 2 : 1, obs[i].tot);
    }
    parts.push_back(acc);
  }
  const core::PofAccumulator merged = reduce_pairwise(
      parts, [](core::PofAccumulator a, const core::PofAccumulator& b) {
        a.merge(b);
        return a;
      });

  EXPECT_EQ(merged.count(), single.count());
  const core::PofEstimate es = single.finalize(obs.size(), 1.0);
  const core::PofEstimate em = merged.finalize(obs.size(), 1.0);
  // The Chan merge is exact for counts and near-exact for mean/M2; allow a
  // few ulps of reassociation noise.
  EXPECT_NEAR(em.tot, es.tot, 1e-13);
  EXPECT_NEAR(em.seu, es.seu, 1e-13);
  EXPECT_NEAR(em.mbu, es.mbu, 1e-13);
  EXPECT_NEAR(em.tot_se, es.tot_se, 1e-13);
  EXPECT_NEAR(em.seu_se, es.seu_se, 1e-13);
  EXPECT_NEAR(em.mbu_se, es.mbu_se, 1e-13);
  for (std::size_t n = 0; n < core::kMaxMultiplicity; ++n) {
    EXPECT_NEAR(em.multiplicity[n], es.multiplicity[n], 1e-13) << n;
  }
}

}  // namespace
}  // namespace finser::exec
