#include <gtest/gtest.h>

#include "finser/core/fit.hpp"
#include "finser/util/error.hpp"

namespace finser::core {
namespace {

env::EnergyBin make_bin(double e, double flux) {
  env::EnergyBin b;
  b.e_rep_mev = e;
  b.e_lo_mev = e * 0.9;
  b.e_hi_mev = e * 1.1;
  b.integral_flux_per_cm2_s = flux;
  return b;
}

PofEstimate make_pof(double tot, double seu, double mbu) {
  PofEstimate p;
  p.tot = tot;
  p.seu = seu;
  p.mbu = mbu;
  return p;
}

TEST(Fit, SingleBinHandComputation) {
  // POF 0.5, flux 1e-6 /cm²/s, area 1e6 nm² = 1e-8 cm².
  // rate = 0.5 * 1e-6 * 1e-8 = 5e-15 /s = 1.8e-11 /h = 1.8e-2 FIT.
  const std::vector<env::EnergyBin> bins = {make_bin(1.0, 1e-6)};
  const std::vector<PofEstimate> pofs = {make_pof(0.5, 0.4, 0.1)};
  const FitResult r = integrate_fit(bins, pofs, 1000.0, 1000.0);
  EXPECT_NEAR(r.fit_tot, 1.8e-2, 1e-6);
  EXPECT_NEAR(r.fit_seu, 1.44e-2, 1e-6);
  EXPECT_NEAR(r.fit_mbu, 0.36e-2, 1e-6);
}

TEST(Fit, LinearInFluxAndArea) {
  const std::vector<env::EnergyBin> bins1 = {make_bin(1.0, 1e-6)};
  const std::vector<env::EnergyBin> bins2 = {make_bin(1.0, 2e-6)};
  const std::vector<PofEstimate> pofs = {make_pof(0.1, 0.1, 0.0)};
  const double f1 = integrate_fit(bins1, pofs, 100.0, 100.0).fit_tot;
  const double f2 = integrate_fit(bins2, pofs, 100.0, 100.0).fit_tot;
  EXPECT_NEAR(f2, 2.0 * f1, 1e-15);
  const double f4 = integrate_fit(bins1, pofs, 200.0, 200.0).fit_tot;
  EXPECT_NEAR(f4, 4.0 * f1, 1e-12);
}

TEST(Fit, SumsOverBins) {
  const std::vector<env::EnergyBin> bins = {make_bin(1.0, 1e-6),
                                            make_bin(2.0, 3e-6)};
  const std::vector<PofEstimate> pofs = {make_pof(0.5, 0.5, 0.0),
                                         make_pof(0.25, 0.25, 0.0)};
  const FitResult r = integrate_fit(bins, pofs, 1000.0, 1000.0);
  const FitResult a =
      integrate_fit({bins[0]}, {pofs[0]}, 1000.0, 1000.0);
  const FitResult b =
      integrate_fit({bins[1]}, {pofs[1]}, 1000.0, 1000.0);
  EXPECT_NEAR(r.fit_tot, a.fit_tot + b.fit_tot, 1e-12);
}

TEST(Fit, TotEqualsSeuPlusMbu) {
  const std::vector<env::EnergyBin> bins = {make_bin(1.0, 1e-6),
                                            make_bin(5.0, 1e-7)};
  const std::vector<PofEstimate> pofs = {make_pof(0.5, 0.45, 0.05),
                                         make_pof(0.2, 0.19, 0.01)};
  const FitResult r = integrate_fit(bins, pofs, 500.0, 500.0);
  EXPECT_NEAR(r.fit_tot, r.fit_seu + r.fit_mbu, 1e-12 * r.fit_tot);
}

TEST(Fit, ZeroPofGivesZeroFit) {
  const std::vector<env::EnergyBin> bins = {make_bin(1.0, 1e-3)};
  const std::vector<PofEstimate> pofs = {make_pof(0.0, 0.0, 0.0)};
  const FitResult r = integrate_fit(bins, pofs, 1e4, 1e4);
  EXPECT_DOUBLE_EQ(r.fit_tot, 0.0);
}

TEST(Fit, RejectsBadInput) {
  const std::vector<env::EnergyBin> bins = {make_bin(1.0, 1e-6)};
  EXPECT_THROW(integrate_fit(bins, {}, 100.0, 100.0), util::InvalidArgument);
  const std::vector<PofEstimate> pofs = {make_pof(0.1, 0.1, 0.0)};
  EXPECT_THROW(integrate_fit(bins, pofs, 0.0, 100.0), util::InvalidArgument);
  EXPECT_THROW(integrate_fit(bins, pofs, 100.0, -1.0), util::InvalidArgument);
}

}  // namespace
}  // namespace finser::core
