/// \file test_fault_injection.cpp
/// \brief FINSER_FAULT machinery + the failure paths it is built to exercise:
/// graceful I/O failure, and solver divergence counted/excluded/gated during
/// cell characterization.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "finser/sram/characterize.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fault.hpp"
#include "finser/util/io.hpp"

namespace finser::util {
namespace {

/// Every test disarms injection on exit, pass or fail — a leaked fault spec
/// would poison unrelated tests in this process.
struct FaultGuard {
  ~FaultGuard() { fault_configure(""); }
};

// ---------------------------------------------------------------------------
// Spec parsing and counter semantics
// ---------------------------------------------------------------------------

TEST(FaultInjection, WindowSemantics) {
  const FaultGuard guard;
  // Fires on hits 3 and 4 of a [3, 3+2) window; all six hits are counted.
  fault_configure("newton_diverge:3:2");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(fault_fire(FaultSite::kNewtonDiverge));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(fault_count(FaultSite::kNewtonDiverge), 6u);
  EXPECT_EQ(fault_arg(FaultSite::kNewtonDiverge), 3u);
}

TEST(FaultInjection, UnconfiguredSiteNeitherFiresNorCounts) {
  const FaultGuard guard;
  fault_configure("newton_diverge:1");
  EXPECT_FALSE(fault_fire(FaultSite::kIoWriteFail));
  EXPECT_EQ(fault_count(FaultSite::kIoWriteFail), 0u);
}

TEST(FaultInjection, ReconfigureResetsCounters) {
  const FaultGuard guard;
  fault_configure("io_write_fail:1");
  EXPECT_TRUE(fault_fire(FaultSite::kIoWriteFail));
  fault_configure("io_write_fail:1");
  EXPECT_EQ(fault_count(FaultSite::kIoWriteFail), 0u);
  EXPECT_TRUE(fault_fire(FaultSite::kIoWriteFail));
  fault_configure("");
  EXPECT_FALSE(fault_fire(FaultSite::kIoWriteFail));
}

TEST(FaultInjection, MalformedSpecsRejected) {
  const FaultGuard guard;
  const char* bad_specs[] = {
      "nonsense_site:1",      // Unknown site.
      "newton_diverge",       // Missing the hit index.
      "newton_diverge:abc",   // Non-numeric hit index.
      "io_write_fail:0",      // Hit indices are 1-based.
      "newton_diverge:2:0",   // Window width must be >= 1.
  };
  for (const char* spec : bad_specs) {
    EXPECT_THROW(fault_configure(spec), InvalidArgument) << spec;
  }
}

// ---------------------------------------------------------------------------
// io_write_fail: the write reports failure, leaves no file, then recovers
// ---------------------------------------------------------------------------

TEST(FaultInjection, InjectedIoFailureIsGraceful) {
  const FaultGuard guard;
  const std::string path =
      (std::filesystem::temp_directory_path() / "finser_fault_io.bin").string();
  std::remove(path.c_str());

  fault_configure("io_write_fail:1");
  const char data[] = "payload";
  std::string error;
  EXPECT_FALSE(atomic_write_file(path, data, sizeof(data), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(std::filesystem::exists(path));

  // The window has passed: the retry succeeds.
  EXPECT_TRUE(atomic_write_file(path, data, sizeof(data), &error));
  EXPECT_TRUE(std::filesystem::exists(path));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// newton_diverge during characterization
// ---------------------------------------------------------------------------

sram::CharacterizerConfig small_config() {
  sram::CharacterizerConfig cfg;
  cfg.vdds = {0.8};
  cfg.pv_samples_single = 8;
  cfg.pair_grid_points = 6;
  cfg.triple_grid_points = 6;
  cfg.pv_samples_grid = 4;
  cfg.seed = 7;
  cfg.threads = 1;  // The strike-call order must be deterministic here.
  return cfg;
}

struct CleanReference {
  sram::PofTable table;
  std::uint64_t n_sims = 0;  ///< Total strike simulations of one run.
};

/// Characterize once with an unreachable trigger: the fault never fires, but
/// its counter reveals the exact number of strike simulations, so tests can
/// deterministically target e.g. the very last one. Cached — the reference
/// run is the expensive part of this file.
const CleanReference& clean_reference() {
  static const CleanReference ref = [] {
    const sram::CellCharacterizer ch(sram::CellDesign{}, small_config());
    fault_configure("newton_diverge:1000000000");
    CleanReference r;
    r.table = ch.characterize_at(0.8, 123);
    r.n_sims = fault_count(FaultSite::kNewtonDiverge);
    fault_configure("");
    return r;
  }();
  return ref;
}

TEST(FaultInjection, DivergentSampleIsCountedAndExcluded) {
  const FaultGuard guard;
  const CleanReference& ref = clean_reference();
  ASSERT_GT(ref.n_sims, 50u);
  EXPECT_EQ(ref.table.failed_samples, 0u);
  EXPECT_GT(ref.table.attempted_samples, 0u);

  // Make the very last strike simulation diverge. The final stage is the
  // triple-grid Monte Carlo, so the singles and pair grids must come out
  // bit-identical and exactly one PV sample drops out of one grid cell.
  const sram::CellCharacterizer ch(sram::CellDesign{}, small_config());
  fault_configure("newton_diverge:" + std::to_string(ref.n_sims));
  const sram::PofTable faulted = ch.characterize_at(0.8, 123);
  fault_configure("");

  EXPECT_EQ(faulted.failed_samples, 1u);
  EXPECT_EQ(faulted.attempted_samples, ref.table.attempted_samples);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(faulted.singles[i].qcrit_samples_fc,
              ref.table.singles[i].qcrit_samples_fc);
    EXPECT_EQ(faulted.singles[i].failed_samples, 0u);
    const auto& pv = faulted.pairs_pv[i];
    const auto& pv_ref = ref.table.pairs_pv[i];
    for (std::size_t x = 0; x < pv.x_axis().size(); ++x) {
      for (std::size_t y = 0; y < pv.y_axis().size(); ++y) {
        EXPECT_EQ(pv.at(x, y), pv_ref.at(x, y));
      }
    }
  }

  // Excluding one of pv_samples_grid samples from one cell moves that cell's
  // POF estimate by at most 1/(n-1); every other cell is untouched.
  const sram::CharacterizerConfig cfg = small_config();
  const double tol =
      1.0 / static_cast<double>(cfg.pv_samples_grid - 1) + 1e-12;
  double max_diff = 0.0;
  const auto& t = faulted.triple_pv;
  const auto& t_ref = ref.table.triple_pv;
  for (std::size_t x = 0; x < t.x_axis().size(); ++x) {
    for (std::size_t y = 0; y < t.y_axis().size(); ++y) {
      for (std::size_t z = 0; z < t.z_axis().size(); ++z) {
        max_diff =
            std::max(max_diff, std::abs(t.at(x, y, z) - t_ref.at(x, y, z)));
      }
    }
  }
  EXPECT_LE(max_diff, tol);
}

TEST(FaultInjection, FailureFractionThresholdAborts) {
  const FaultGuard guard;
  const CleanReference& ref = clean_reference();

  sram::CharacterizerConfig cfg = small_config();
  cfg.max_failure_fraction = 0.0;  // Zero tolerance: one failure must abort.
  const sram::CellCharacterizer strict(sram::CellDesign{}, cfg);
  fault_configure("newton_diverge:" + std::to_string(ref.n_sims));
  try {
    strict.characterize_at(0.8, 123);
    FAIL() << "expected NumericalError from the failure-fraction gate";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("failure fraction"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace finser::util
