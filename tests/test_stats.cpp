#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <set>

#include "finser/stats/direction.hpp"
#include "finser/stats/histogram.hpp"
#include "finser/stats/rng.hpp"
#include "finser/stats/summary.hpp"
#include "finser/util/error.hpp"

namespace finser::stats {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, GoldenValuesForCrossPlatformReproducibility) {
  // EXPERIMENTS.md promises bit-identical reruns; these reference outputs
  // pin the xoshiro256++/SplitMix64 implementation across platforms and
  // standard libraries.
  Rng r(42);
  const std::uint64_t expected[5] = {
      15021278609987233951ull, 5881210131331364753ull, 18149643915985481100ull,
      12933668939759105464ull, 14637574242682825331ull};
  for (std::uint64_t e : expected) EXPECT_EQ(r(), e);

  Rng u(20140601);  // The bench seed.
  EXPECT_DOUBLE_EQ(u.uniform(), 0.0039949576277070742);
  EXPECT_DOUBLE_EQ(u.uniform(), 0.36822370663179094);
  EXPECT_DOUBLE_EQ(u.uniform(), 0.85496988337738011);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.003);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(r.uniform(1.0, 0.0), util::InvalidArgument);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng r(5);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[r.uniform_index(7)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 7, 5 * std::sqrt(n / 7.0));
  EXPECT_THROW(r.uniform_index(0), util::InvalidArgument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.03);
  EXPECT_NEAR(s.stddev(), 2.0, 0.03);
  EXPECT_THROW(r.normal(0.0, -1.0), util::InvalidArgument);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(17);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.005);
  EXPECT_THROW(r.exponential(0.0), util::InvalidArgument);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 1e5, 0.3, 0.01);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  EXPECT_FALSE(r.bernoulli(-0.5));
  EXPECT_TRUE(r.bernoulli(1.5));
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng c1 = parent1.split();
  Rng c2 = parent2.split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(c1(), c2());
  // Child differs from a fresh parent continuation.
  Rng c3 = parent1.split();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (c1() == c3()) ++same;
  }
  EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------------------
// RunningStats
// ---------------------------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_of_mean(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Unbiased.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.37) * 3.0 + i * 0.01;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, StderrShrinksWithSamples) {
  Rng r(23);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(r.normal());
  for (int i = 0; i < 10000; ++i) large.add(r.normal());
  EXPECT_GT(small.stderr_of_mean(), large.stderr_of_mean());
}

// ---------------------------------------------------------------------------
// WeightedRunningStats
// ---------------------------------------------------------------------------

TEST(WeightedRunningStats, EmptyIsZero) {
  WeightedRunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.ess(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_of_mean(), 0.0);
}

TEST(WeightedRunningStats, UnitWeightsMatchRunningStats) {
  // With w ≡ 1 the weighted accumulator degenerates to the plain Welford
  // one: same mean, same unbiased variance, ESS == count.
  Rng r(47);
  RunningStats plain;
  WeightedRunningStats weighted;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(2.0, 0.5);
    plain.add(x);
    weighted.add(x, 1.0);
  }
  EXPECT_EQ(weighted.count(), plain.count());
  EXPECT_DOUBLE_EQ(weighted.mean(), plain.mean());
  EXPECT_NEAR(weighted.variance(), plain.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(weighted.ess(), 1000.0);
  EXPECT_NEAR(weighted.stderr_of_mean(), plain.stderr_of_mean(), 1e-12);
}

TEST(WeightedRunningStats, KnownWeightedMean) {
  WeightedRunningStats s;
  s.add(1.0, 1.0);
  s.add(3.0, 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);  // (1·1 + 3·3) / 4.
  EXPECT_DOUBLE_EQ(s.sum_weights(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum_weights_sq(), 10.0);
  EXPECT_DOUBLE_EQ(s.ess(), 1.6);  // 16 / 10.
}

TEST(WeightedRunningStats, ZeroWeightObservationsAreCountedNotWeighed) {
  WeightedRunningStats s;
  s.add(5.0, 2.0);
  s.add(1234.5, 0.0);  // Must not move any moment.
  s.add(7.0, 2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum_weights(), 4.0);
  EXPECT_DOUBLE_EQ(s.ess(), 2.0);

  // A merged-in chunk whose observations all carry zero weight is a no-op
  // on the moments (the degenerate all-miss chunk of an importance run).
  WeightedRunningStats zeros;
  zeros.add(9.0, 0.0);
  zeros.add(-3.0, 0.0);
  const WeightedRunningStats before = s;
  s.merge(zeros);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), before.mean());
  EXPECT_DOUBLE_EQ(s.variance(), before.variance());
  EXPECT_DOUBLE_EQ(s.ess(), before.ess());
}

TEST(WeightedRunningStats, SingleSampleBinHasNoVariance) {
  WeightedRunningStats s;
  s.add(0.42, 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.42);
  EXPECT_DOUBLE_EQ(s.ess(), 1.0);
  // ESS ≤ 1: the reliability-weighted variance denominator vanishes, so
  // variance and SE report 0 rather than dividing by ~0.
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_of_mean(), 0.0);
}

TEST(WeightedRunningStats, MergeEqualsSequential) {
  Rng r(53);
  WeightedRunningStats a, b, all;
  for (int i = 0; i < 200; ++i) {
    const double x = r.normal();
    const double w = r.uniform(0.0, 3.0);
    (i % 3 == 0 ? a : b).add(x, w);
    all.add(x, w);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_NEAR(a.ess(), all.ess(), 1e-9);
}

TEST(WeightedRunningStats, MergeOrderIndependence) {
  // Property-style seeded check: splitting one weighted sample into K
  // chunks and merging them in any order gives the same statistics (to
  // floating-point noise) — the foundation of the pairwise chunk reduction.
  Rng r(59);
  constexpr int kChunks = 7;
  std::array<WeightedRunningStats, kChunks> chunks;
  WeightedRunningStats serial;
  for (int i = 0; i < 700; ++i) {
    const double x = r.uniform(-1.0, 1.0);
    const double w = r.exponential(1.0);
    chunks[static_cast<std::size_t>(i % kChunks)].add(x, w);
    serial.add(x, w);
  }
  // Forward, backward, and odd-even merge orders.
  WeightedRunningStats fwd, bwd, mix;
  for (int c = 0; c < kChunks; ++c) fwd.merge(chunks[std::size_t(c)]);
  for (int c = kChunks; c-- > 0;) bwd.merge(chunks[std::size_t(c)]);
  for (int c = 0; c < kChunks; c += 2) mix.merge(chunks[std::size_t(c)]);
  for (int c = 1; c < kChunks; c += 2) mix.merge(chunks[std::size_t(c)]);
  for (const WeightedRunningStats* s : {&fwd, &bwd, &mix}) {
    EXPECT_EQ(s->count(), serial.count());
    EXPECT_NEAR(s->mean(), serial.mean(), 1e-12);
    EXPECT_NEAR(s->variance(), serial.variance(), 1e-10);
    EXPECT_NEAR(s->ess(), serial.ess(), 1e-8);
  }
}

TEST(WeightedRunningStats, SurvivesExtremeWeightRatios) {
  // Overflow-adjacent weight ratios (~1e±150): Σw² is the first quantity at
  // risk; the moments must stay finite and the tiny-weight observation must
  // contribute essentially nothing to the mean.
  WeightedRunningStats s;
  s.add(1.0, 1e150);
  s.add(1000.0, 1e-150);
  EXPECT_TRUE(std::isfinite(s.mean()));
  EXPECT_TRUE(std::isfinite(s.variance()));
  EXPECT_TRUE(std::isfinite(s.sum_weights_sq()));
  EXPECT_NEAR(s.mean(), 1.0, 1e-12);
  EXPECT_NEAR(s.ess(), 1.0, 1e-12);  // One weight utterly dominates.

  // And the mirrored order (small weight first — the harder incremental
  // update) agrees.
  WeightedRunningStats t;
  t.add(1000.0, 1e-150);
  t.add(1.0, 1e150);
  EXPECT_NEAR(t.mean(), s.mean(), 1e-12);
  EXPECT_TRUE(std::isfinite(t.variance()));
}

TEST(WeightedRunningStats, RawRoundTripIsBitExact) {
  Rng r(61);
  WeightedRunningStats s;
  for (int i = 0; i < 50; ++i) s.add(r.normal(), r.uniform(0.0, 2.0));
  const WeightedRunningStats back = WeightedRunningStats::from_raw(s.raw());
  EXPECT_EQ(back.count(), s.count());
  EXPECT_DOUBLE_EQ(back.mean(), s.mean());
  EXPECT_DOUBLE_EQ(back.variance(), s.variance());
  EXPECT_DOUBLE_EQ(back.ess(), s.ess());
  // A restored accumulator keeps accumulating identically.
  WeightedRunningStats cont = back;
  WeightedRunningStats orig = s;
  cont.add(0.5, 1.5);
  orig.add(0.5, 1.5);
  EXPECT_DOUBLE_EQ(cont.mean(), orig.mean());
  EXPECT_DOUBLE_EQ(cont.variance(), orig.variance());
}

TEST(WeightedRunningStats, RejectsBadWeights) {
  WeightedRunningStats s;
  EXPECT_THROW(s.add(1.0, -0.5), util::InvalidArgument);
  EXPECT_THROW(s.add(1.0, std::numeric_limits<double>::infinity()),
               util::InvalidArgument);
  EXPECT_THROW(s.add(1.0, std::numeric_limits<double>::quiet_NaN()),
               util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, LinearBinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75, 2.0);
  h.add(-1.0);
  h.add(1.5);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 4.0, 8);
  Rng r(29);
  for (int i = 0; i < 10000; ++i) h.add(r.uniform(0.0, 4.0));
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    integral += h.density(b) * h.bin_width(b);
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, LogBinsAreGeometric) {
  Histogram h(1.0, 100.0, 2, Histogram::Binning::kLog);
  EXPECT_NEAR(h.bin_hi(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_lo(1), 10.0, 1e-9);
  h.add(5.0);
  h.add(50.0);
  h.add(0.5);  // Underflow (also guards log of small positives).
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), util::InvalidArgument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), util::InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 4, Histogram::Binning::kLog),
               util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Direction sampling
// ---------------------------------------------------------------------------

TEST(Direction, IsotropicSphereIsUnitAndBalanced) {
  Rng r(31);
  RunningStats zsum;
  for (int i = 0; i < 20000; ++i) {
    const auto v = isotropic_sphere(r);
    EXPECT_NEAR(v.norm(), 1.0, 1e-12);
    zsum.add(v.z);
  }
  EXPECT_NEAR(zsum.mean(), 0.0, 0.02);  // Symmetric in z.
}

TEST(Direction, HemisphereIsDownward) {
  Rng r(37);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LE(isotropic_hemisphere_down(r).z, 0.0);
    EXPECT_LE(cosine_hemisphere_down(r).z, 0.0);
  }
}

TEST(Direction, IsotropicHemisphereCosineMoment) {
  // For an isotropic hemisphere, E[|cos θ|] = 1/2.
  Rng r(41);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(-isotropic_hemisphere_down(r).z);
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Direction, CosineHemisphereCosineMoment) {
  // For a cosine-law hemisphere, E[|cos θ|] = 2/3.
  Rng r(43);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(-cosine_hemisphere_down(r).z);
  EXPECT_NEAR(s.mean(), 2.0 / 3.0, 0.01);
}

}  // namespace
}  // namespace finser::stats
