#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "finser/sram/pof_table.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fault.hpp"
#include "finser/util/io.hpp"

namespace finser::sram {
namespace {

/// Hand-built table with known values (no SPICE needed).
PofTable synthetic_table(double vdd) {
  PofTable t;
  t.vdd_v = vdd;
  t.q_max_fc = 0.4;
  for (int i = 0; i < 3; ++i) {
    SingleCdf s;
    s.nominal_qcrit_fc = 0.1 + 0.01 * i;
    s.total_samples = 4;
    s.qcrit_samples_fc = {0.08, 0.09, 0.11, 0.12};
    t.singles[static_cast<std::size_t>(i)] = s;
  }
  const util::Axis axis({0.0, 0.1, 0.4});
  const std::vector<double> pv = {0.0, 0.0, 0.5,   // Row q_a = 0.
                                  0.0, 0.5, 1.0,   // Row q_a = 0.1.
                                  0.5, 1.0, 1.0};  // Row q_a = 0.4.
  const std::vector<double> nom = {0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  for (int p = 0; p < 3; ++p) {
    t.pairs_pv[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, pv);
    t.pairs_nominal[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, nom);
  }
  std::vector<double> pv3(27, 0.0), nom3(27, 0.0);
  for (std::size_t i = 0; i < 27; ++i) {
    pv3[i] = (i == 26) ? 1.0 : 0.2;
    nom3[i] = (i >= 13) ? 1.0 : 0.0;
  }
  t.triple_pv = util::Grid3(axis, axis, axis, pv3);
  t.triple_nominal = util::Grid3(axis, axis, axis, nom3);
  return t;
}

// ---------------------------------------------------------------------------
// SingleCdf
// ---------------------------------------------------------------------------

TEST(SingleCdf, EmpiricalCdfSteps) {
  SingleCdf s;
  s.total_samples = 4;
  s.qcrit_samples_fc = {0.08, 0.09, 0.11, 0.12};
  EXPECT_DOUBLE_EQ(s.pof(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.pof(0.085), 0.25);
  EXPECT_DOUBLE_EQ(s.pof(0.10), 0.5);
  EXPECT_DOUBLE_EQ(s.pof(0.2), 1.0);
}

TEST(SingleCdf, NeverFlippedSamplesReducePof) {
  SingleCdf s;
  s.total_samples = 8;  // 4 of which never flipped (not in the list).
  s.qcrit_samples_fc = {0.08, 0.09, 0.11, 0.12};
  EXPECT_DOUBLE_EQ(s.pof(1.0), 0.5);
}

TEST(SingleCdf, EmptyIsZero) {
  SingleCdf s;
  EXPECT_DOUBLE_EQ(s.pof(10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_qcrit_fc(), SingleCdf::kNeverFlips);
  EXPECT_DOUBLE_EQ(s.stddev_qcrit_fc(), 0.0);
}

TEST(SingleCdf, Moments) {
  SingleCdf s;
  s.total_samples = 4;
  s.qcrit_samples_fc = {0.08, 0.09, 0.11, 0.12};
  EXPECT_NEAR(s.mean_qcrit_fc(), 0.1, 1e-12);
  EXPECT_NEAR(s.stddev_qcrit_fc(), 0.0182574, 1e-6);
}

// ---------------------------------------------------------------------------
// PofTable dispatch
// ---------------------------------------------------------------------------

TEST(PofTableDispatch, NoChargeNoPof) {
  const PofTable t = synthetic_table(0.8);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{}, true), 0.0);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{}, false), 0.0);
  // Sub-epsilon charges count as zero.
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{1e-7, 1e-7, 1e-7}, true), 0.0);
}

TEST(PofTableDispatch, SinglesUseCdf) {
  const PofTable t = synthetic_table(0.8);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{0.10, 0, 0}, true), 0.5);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{0, 0.10, 0}, true), 0.5);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{0, 0, 0.10}, true), 0.5);
  // Nominal mode: thresholds differ per current (0.10, 0.11, 0.12).
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{0.105, 0, 0}, false), 1.0);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{0, 0.105, 0}, false), 0.0);
}

TEST(PofTableDispatch, PairsInterpolate) {
  const PofTable t = synthetic_table(0.8);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{0.1, 0.1, 0}, true), 0.5);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{0.4, 0.4, 0}, true), 1.0);
  // Nominal pairs round the bilinear value to a binary decision.
  const double p = t.pof(StrikeCharges{0.1, 0.1, 0}, false);
  EXPECT_TRUE(p == 0.0 || p == 1.0);
}

TEST(PofTableDispatch, TripleUsesGrid3) {
  const PofTable t = synthetic_table(0.8);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{0.4, 0.4, 0.4}, true), 1.0);
  EXPECT_DOUBLE_EQ(t.pof(StrikeCharges{0.4, 0.4, 0.4}, false), 1.0);
  EXPECT_NEAR(t.pof(StrikeCharges{0.05, 0.05, 0.05}, true), 0.2, 0.15);
}

// ---------------------------------------------------------------------------
// CellSoftErrorModel
// ---------------------------------------------------------------------------

TEST(Model, VddLookup) {
  CellSoftErrorModel m;
  m.tables.push_back(synthetic_table(0.7));
  m.tables.push_back(synthetic_table(0.8));
  EXPECT_DOUBLE_EQ(m.at_vdd(0.8).vdd_v, 0.8);
  EXPECT_DOUBLE_EQ(m.at_vdd(0.7 + 5e-4).vdd_v, 0.7);  // 1 mV tolerance.
  EXPECT_THROW(m.at_vdd(0.9), util::DomainError);
  const auto vs = m.vdds();
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_DOUBLE_EQ(vs[0], 0.7);
}

TEST(Model, SerializationRoundTrip) {
  CellSoftErrorModel m;
  m.config_fingerprint = 0xDEADBEEFCAFEull;
  m.tables.push_back(synthetic_table(0.7));
  m.tables.push_back(synthetic_table(1.1));

  const auto path =
      (std::filesystem::temp_directory_path() / "finser_pof_roundtrip.bin")
          .string();
  m.save(path);
  const CellSoftErrorModel r = CellSoftErrorModel::load(path);
  EXPECT_EQ(r.config_fingerprint, m.config_fingerprint);
  ASSERT_EQ(r.tables.size(), 2u);
  EXPECT_DOUBLE_EQ(r.tables[1].vdd_v, 1.1);
  EXPECT_DOUBLE_EQ(r.tables[0].q_max_fc, 0.4);

  // Behaviour identical after the round trip.
  for (const StrikeCharges c : {StrikeCharges{0.1, 0, 0}, StrikeCharges{0.1, 0.1, 0},
                                StrikeCharges{0.2, 0.2, 0.2}}) {
    EXPECT_DOUBLE_EQ(r.tables[0].pof(c, true), m.tables[0].pof(c, true));
    EXPECT_DOUBLE_EQ(r.tables[0].pof(c, false), m.tables[0].pof(c, false));
  }
  std::filesystem::remove(path);
}

TEST(Model, TryLoadValidatesFingerprint) {
  CellSoftErrorModel m;
  m.config_fingerprint = 111;
  m.tables.push_back(synthetic_table(0.8));
  const auto path =
      (std::filesystem::temp_directory_path() / "finser_pof_fp.bin").string();
  m.save(path);

  CellSoftErrorModel out;
  EXPECT_TRUE(CellSoftErrorModel::try_load(path, 111, out));
  EXPECT_EQ(out.tables.size(), 1u);
  EXPECT_FALSE(CellSoftErrorModel::try_load(path, 222, out));
  EXPECT_FALSE(CellSoftErrorModel::try_load("/nonexistent/file.bin", 111, out));
  std::filesystem::remove(path);
}

TEST(Model, LoadRejectsCorruptFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "finser_pof_bad.bin").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a pof file at all", f);
    std::fclose(f);
  }
  EXPECT_THROW(CellSoftErrorModel::load(path), util::Error);
  std::filesystem::remove(path);
}

TEST(Model, LoadRejectsMissingFile) {
  EXPECT_THROW(CellSoftErrorModel::load("/nonexistent/nope.bin"), util::Error);
}

TEST(Model, LoadRejectsTruncatedFile) {
  CellSoftErrorModel m;
  m.config_fingerprint = 7;
  m.tables.push_back(synthetic_table(0.8));
  const auto dir = std::filesystem::temp_directory_path();
  const auto full = (dir / "finser_pof_full.bin").string();
  const auto cut = (dir / "finser_pof_cut.bin").string();
  m.save(full);

  // Truncate at several points: every cut must throw, never crash or
  // silently return a partial model.
  const auto size = std::filesystem::file_size(full);
  for (const double frac : {0.3, 0.6, 0.9}) {
    std::filesystem::copy_file(full, cut,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(
        cut, static_cast<std::uintmax_t>(frac * static_cast<double>(size)));
    EXPECT_THROW(CellSoftErrorModel::load(cut), util::Error) << frac;
  }
  std::filesystem::remove(full);
  std::filesystem::remove(cut);
}

TEST(Model, TryLoadRejectsBitFlipWithCrcReason) {
  CellSoftErrorModel m;
  m.config_fingerprint = 13;
  m.tables.push_back(synthetic_table(0.8));
  const auto path =
      (std::filesystem::temp_directory_path() / "finser_pof_flip.bin").string();
  m.save(path);

  // Flip one payload byte: try_load must reject by CRC, never throw, and
  // report why.
  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(util::read_file(path, raw, nullptr));
  raw[raw.size() / 2] ^= 0x01;
  ASSERT_TRUE(util::atomic_write_file(path, raw.data(), raw.size()));

  CellSoftErrorModel out;
  std::string reason;
  EXPECT_FALSE(CellSoftErrorModel::try_load(path, 13, out, &reason));
  EXPECT_NE(reason.find("CRC"), std::string::npos) << reason;
  std::filesystem::remove(path);
}

TEST(Model, CacheFlipFaultForcesRegeneration) {
  CellSoftErrorModel m;
  m.config_fingerprint = 42;
  m.tables.push_back(synthetic_table(0.8));
  const auto path =
      (std::filesystem::temp_directory_path() / "finser_pof_fault.bin").string();

  // First save lands corrupted (byte 25 of the file XOR-flipped by the
  // injected fault): the cache must be rejected, not loaded.
  util::fault_configure("cache_flip:25");
  m.save(path);
  CellSoftErrorModel out;
  std::string reason;
  EXPECT_FALSE(CellSoftErrorModel::try_load(path, 42, out, &reason));
  EXPECT_FALSE(reason.empty());

  // The re-characterized model saves again; the fault window has passed, so
  // the regenerated cache is intact and loads.
  m.save(path);
  util::fault_configure("");
  EXPECT_TRUE(CellSoftErrorModel::try_load(path, 42, out, &reason)) << reason;
  EXPECT_EQ(out.config_fingerprint, 42u);
  std::filesystem::remove(path);
}

TEST(Model, SaveCreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "finser_pof_mkdir";
  std::filesystem::remove_all(dir);
  CellSoftErrorModel m;
  m.tables.push_back(synthetic_table(0.8));
  const auto path = (dir / "deep" / "cache.bin").string();
  m.save(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace finser::sram
