#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "finser/util/constants.hpp"
#include "finser/util/csv.hpp"
#include "finser/util/error.hpp"
#include "finser/util/units.hpp"

namespace finser::util {
namespace {

// ---------------------------------------------------------------------------
// Units / constants
// ---------------------------------------------------------------------------

TEST(Units, LengthRoundTrips) {
  EXPECT_DOUBLE_EQ(cm_to_nm(nm_to_cm(123.0)), 123.0);
  EXPECT_DOUBLE_EQ(nm_to_um(um_to_nm(0.25)), 0.25);
  EXPECT_DOUBLE_EQ(cm_to_um(um_to_cm(42.0)), 42.0);
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(mev_to_ev(1.0), 1e6);
  EXPECT_DOUBLE_EQ(ev_to_mev(3.6), 3.6e-6);
  EXPECT_DOUBLE_EQ(kev_to_mev(80.0), 0.08);
  EXPECT_DOUBLE_EQ(mev_to_kev(0.08), 80.0);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(fs_to_s(10.0), 1e-14);
  EXPECT_DOUBLE_EQ(s_to_fs(1e-14), 10.0);
  EXPECT_DOUBLE_EQ(hour_to_s(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(s_to_hour(7200.0), 2.0);
}

TEST(Units, ChargeAndFit) {
  EXPECT_DOUBLE_EQ(fc_to_c(1.0), 1e-15);
  EXPECT_DOUBLE_EQ(c_to_fc(1e-15), 1.0);
  EXPECT_DOUBLE_EQ(per_hour_to_fit(1e-9), 1.0);
}

TEST(Constants, ElectronChargeMatchesEv) {
  // 1 eV in J equals the elementary charge in C by definition.
  EXPECT_DOUBLE_EQ(kElementaryChargeC, kElectronVoltJ);
}

TEST(Constants, SiliconEhPairYield) {
  // 1 MeV deposited => ~278k pairs at 3.6 eV/pair.
  EXPECT_NEAR(mev_to_ev(1.0) / kSiliconEhPairEnergyEV, 277778.0, 1.0);
}

TEST(Constants, MassOrdering) {
  EXPECT_GT(kAlphaMassMeV, 3.9 * kProtonMassMeV);
  EXPECT_LT(kAlphaMassMeV, 4.0 * kProtonMassMeV);  // Binding energy deficit.
}

// ---------------------------------------------------------------------------
// Error machinery
// ---------------------------------------------------------------------------

TEST(Error, RequireThrowsWithContext) {
  try {
    FINSER_REQUIRE(1 == 2, "custom message");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_util_misc.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw NumericalError("x"), Error);
  EXPECT_THROW(throw DomainError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(Csv, HeaderAndRows) {
  CsvTable t({"a", "b"});
  t.add_row({1.5, std::string("x")});
  t.add_row({2.0, std::string("y")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1.5,x\n2,y\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvTable t({"c"});
  t.add_row({std::string("hello, \"world\"")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "c\n\"hello, \"\"world\"\"\"\n");
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), InvalidArgument);
}

TEST(Csv, EmptyColumnsThrow) {
  EXPECT_THROW(CsvTable({}), InvalidArgument);
}

TEST(Csv, WritesFileWithParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "finser_csv_test";
  std::filesystem::remove_all(dir);
  CsvTable t({"x"});
  t.add_row({1.0});
  const std::string path = (dir / "sub" / "out.csv").string();
  t.write_csv_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::filesystem::remove_all(dir);
}

TEST(Csv, PrettyAlignsColumns) {
  CsvTable t({"col", "v"});
  t.add_row({std::string("long-entry"), 1.0});
  std::ostringstream os;
  t.write_pretty(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("long-entry"), std::string::npos);
}

TEST(Csv, CountsRowsAndColumns) {
  CsvTable t({"a", "b", "c"});
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({1.0, 2.0, 3.0});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace finser::util
