#include <gtest/gtest.h>

#include <cmath>

#include "finser/env/spectrum.hpp"
#include "finser/stats/histogram.hpp"
#include "finser/util/error.hpp"

namespace finser::env {
namespace {

// ---------------------------------------------------------------------------
// Generic Spectrum behaviour
// ---------------------------------------------------------------------------

Spectrum toy_spectrum() {
  return Spectrum(phys::Species::kProton, "toy", {1.0, 10.0, 100.0},
                  {1.0, 0.1, 0.01});
}

TEST(Spectrum, DifferentialInterpolatesLogLog) {
  const Spectrum s = toy_spectrum();
  // Power law E^-1 between the points: at E = sqrt(10), J = 1/sqrt(10).
  EXPECT_NEAR(s.differential(std::sqrt(10.0)), 1.0 / std::sqrt(10.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.differential(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.differential(200.0), 0.0);
}

TEST(Spectrum, IntegralFluxPositiveAndAdditive) {
  const Spectrum s = toy_spectrum();
  const double a = s.integral_flux(1.0, 10.0);
  const double b = s.integral_flux(10.0, 100.0);
  EXPECT_GT(a, 0.0);
  EXPECT_GT(b, 0.0);
  EXPECT_NEAR(a + b, s.total_flux(), 1e-12);
  EXPECT_THROW(s.integral_flux(10.0, 1.0), util::InvalidArgument);
}

TEST(Spectrum, NormalizeTotalFlux) {
  Spectrum s = toy_spectrum();
  s.normalize_total_flux(42.0);
  EXPECT_NEAR(s.total_flux(), 42.0, 1e-9);
  EXPECT_THROW(s.normalize_total_flux(0.0), util::InvalidArgument);
}

TEST(Spectrum, DiscretizeCoversRange) {
  const Spectrum s = toy_spectrum();
  const auto bins = s.discretize(1.0, 100.0, 10);
  ASSERT_EQ(bins.size(), 10u);
  EXPECT_NEAR(bins.front().e_lo_mev, 1.0, 1e-12);
  EXPECT_NEAR(bins.back().e_hi_mev, 100.0, 1e-9);
  double sum = 0.0;
  for (const auto& b : bins) {
    EXPECT_GT(b.e_rep_mev, b.e_lo_mev);
    EXPECT_LT(b.e_rep_mev, b.e_hi_mev);
    EXPECT_NEAR(b.e_rep_mev, std::sqrt(b.e_lo_mev * b.e_hi_mev), 1e-9);
    sum += b.integral_flux_per_cm2_s;
  }
  // Both sides integrate the same log-log interpolant with refined
  // trapezoids; boundary placement differs, hence the small tolerance.
  EXPECT_NEAR(sum, s.total_flux(), 1e-3 * s.total_flux());
  EXPECT_THROW(s.discretize(1.0, 100.0, 0), util::InvalidArgument);
  EXPECT_THROW(s.discretize(-1.0, 100.0, 4), util::InvalidArgument);
}

TEST(Spectrum, SampleEnergyFollowsDensity) {
  const Spectrum s = toy_spectrum();
  stats::Rng rng(4);
  stats::Histogram h(1.0, 100.0, 2, stats::Histogram::Binning::kLog);
  for (int i = 0; i < 40000; ++i) h.add(s.sample_energy(rng));
  const double expected0 = s.integral_flux(1.0, 10.0) / s.total_flux();
  EXPECT_NEAR(h.count(0) / h.total(), expected0, 0.02);
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
}

TEST(Spectrum, RejectsBadConstruction) {
  EXPECT_THROW(Spectrum(phys::Species::kProton, "x", {1.0}, {1.0}),
               util::InvalidArgument);
  EXPECT_THROW(Spectrum(phys::Species::kProton, "x", {1.0, 2.0}, {1.0}),
               util::InvalidArgument);
  EXPECT_THROW(Spectrum(phys::Species::kProton, "x", {1.0, 2.0}, {1.0, 0.0}),
               util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Built-in environments (paper Fig. 2)
// ---------------------------------------------------------------------------

TEST(SeaLevelProtons, SpeciesAndRange) {
  const Spectrum p = sea_level_protons();
  EXPECT_EQ(p.species(), phys::Species::kProton);
  EXPECT_LE(p.e_min_mev(), 0.1);   // Covers the direct-ionization band.
  EXPECT_GE(p.e_max_mev(), 1e6);   // Fig. 2a extends to 10^7 MeV.
}

TEST(SeaLevelProtons, SteepHighEnergyCollapse) {
  const Spectrum p = sea_level_protons();
  // ~12 orders of magnitude between the plateau and 10^7 MeV (Fig. 2a).
  EXPECT_GT(p.differential(10.0) / p.differential(1e6), 1e6);
  // Differential flux decreasing beyond ~100 MeV.
  double prev = p.differential(100.0);
  for (double e = 300.0; e <= 1e6; e *= 3.0) {
    const double j = p.differential(e);
    EXPECT_LT(j, prev);
    prev = j;
  }
}

TEST(SeaLevelProtons, LowEnergyFluxRisesTowardMeV) {
  const Spectrum p = sea_level_protons();
  EXPECT_LT(p.differential(0.1), p.differential(1.0));
}

TEST(PackageAlphas, NormalizedEmissionRate) {
  const Spectrum a = package_alphas();
  // Paper assumption: 0.001 alpha/(cm^2 h).
  EXPECT_NEAR(a.total_flux() * 3600.0, 0.001, 1e-9);
  EXPECT_EQ(a.species(), phys::Species::kAlpha);
  EXPECT_LE(a.e_min_mev(), 0.5);
  EXPECT_NEAR(a.e_max_mev(), 10.0, 1e-12);
}

TEST(PackageAlphas, CustomEmissionRateScales) {
  const Spectrum a = package_alphas(0.01);
  EXPECT_NEAR(a.total_flux() * 3600.0, 0.01, 1e-9);
  EXPECT_THROW(package_alphas(0.0), util::InvalidArgument);
}

TEST(PackageAlphas, SpectrumRisesTowardEightMeV) {
  const Spectrum a = package_alphas();
  EXPECT_GT(a.differential(8.0), a.differential(1.0));
  EXPECT_GT(a.differential(8.0), a.differential(10.0));  // Drop past the peak.
}

TEST(SeaLevelNeutrons, AnchoredToJedecIntegralFlux) {
  const Spectrum n = sea_level_neutrons();
  EXPECT_EQ(n.species(), phys::Species::kNeutron);
  // The canonical ~13 n/(cm^2 h) above 10 MeV.
  EXPECT_NEAR(n.integral_flux(10.0, 1000.0) * 3600.0, 13.0, 0.1);
  // Differential flux falls steeply with energy.
  EXPECT_GT(n.differential(1.0), 10.0 * n.differential(100.0));
}

TEST(SeaLevelNeutrons, SamplingRespectsSpectrumWeights) {
  const Spectrum n = sea_level_neutrons();
  stats::Rng rng(17);
  stats::Histogram h(0.1, 1000.0, 4, stats::Histogram::Binning::kLog);
  for (int i = 0; i < 30000; ++i) h.add(n.sample_energy(rng));
  // Most sampled neutrons are below 10 MeV (the spectrum is bottom-heavy).
  const double below = h.count(0) + h.count(1);
  EXPECT_GT(below / h.total(), 0.6);
}

TEST(FluxRatio, ProtonsVastlyOutnumberAlphas) {
  // The paper's Fig. 9 crossover requires the proton flux in the direct-
  // ionization band to exceed the alpha emission rate by orders of magnitude.
  const double p = sea_level_protons().integral_flux(0.1, 100.0);
  const double a = package_alphas().total_flux();
  EXPECT_GT(p / a, 100.0);
  EXPECT_LT(p / a, 1e5);
}

}  // namespace
}  // namespace finser::env
