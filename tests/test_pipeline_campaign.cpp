/// \file test_pipeline_campaign.cpp
/// \brief Declarative campaigns: schema parsing with typo suggestions,
/// JSON round-trip, stage-graph scheduling, single-scenario byte-identity
/// with the legacy SerFlow path, and characterize-once artifact sharing.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "finser/obs/obs.hpp"
#include "finser/pipeline/campaign.hpp"
#include "finser/util/error.hpp"

namespace finser::pipeline {
namespace {

/// Minimal-cost flow configuration (mirrors test_core_ser_flow.cpp).
core::SerFlowConfig tiny_flow() {
  core::SerFlowConfig cfg;
  cfg.array_rows = 2;
  cfg.array_cols = 2;
  cfg.characterization.vdds = {0.8};
  cfg.characterization.pv_samples_single = 10;
  cfg.characterization.pair_grid_points = 6;
  cfg.characterization.triple_grid_points = 6;
  cfg.characterization.pv_samples_grid = 6;
  cfg.array_mc.strikes = 600;
  cfg.neutron_mc.histories = 600;
  cfg.proton_bins = 3;
  cfg.alpha_bins = 3;
  cfg.seed = 5;
  return cfg;
}

std::string temp_dir(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- parsing ----------------------------------------------------------------

TEST(CampaignParse, MinimalDocument) {
  const CampaignSpec spec = parse_campaign_text(
      R"({"scenarios": [{"name": "a"}]})");
  ASSERT_EQ(spec.scenarios.size(), 1u);
  EXPECT_EQ(spec.scenarios[0].name, "a");
  // Schema fallbacks are the SerFlowConfig struct defaults.
  const core::SerFlowConfig reference;
  EXPECT_EQ(spec.scenarios[0].flow.array_rows, reference.array_rows);
  EXPECT_EQ(spec.scenarios[0].flow.array_mc.strikes,
            reference.array_mc.strikes);
  EXPECT_EQ(spec.scenarios[0].species,
            (std::vector<std::string>{"alpha", "proton"}));
}

TEST(CampaignParse, UnknownScenarioKeySuggestsNearest) {
  try {
    parse_campaign_text(
        R"({"scenarios": [{"name": "a", "strikse": 100}]})");
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key `strikse`"), std::string::npos) << what;
    EXPECT_NE(what.find("scenarios[0]"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean `strikes`"), std::string::npos) << what;
  }
}

TEST(CampaignParse, UnknownTopLevelKeySuggestsNearest) {
  try {
    parse_campaign_text(
        R"({"outptu_dir": "x", "scenarios": [{"name": "a"}]})");
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean `output_dir`"), std::string::npos)
        << what;
  }
}

TEST(CampaignParse, FarFetchedKeyGetsNoSuggestion) {
  try {
    parse_campaign_text(
        R"({"scenarios": [{"name": "a", "zzzzzz": 1}]})");
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key `zzzzzz`"), std::string::npos) << what;
    EXPECT_EQ(what.find("did you mean"), std::string::npos) << what;
  }
}

TEST(CampaignParse, UnknownPatternAndSpeciesSuggestNearest) {
  try {
    parse_campaign_text(
        R"({"scenarios": [{"name": "a", "pattern": "checkerbord"}]})");
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean `checkerboard`"),
              std::string::npos)
        << e.what();
  }
  try {
    parse_campaign_text(
        R"({"scenarios": [{"name": "a", "species": ["protn"]}]})");
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean `proton`"),
              std::string::npos)
        << e.what();
  }
}

TEST(CampaignParse, DefaultsMergeUnderScenarios) {
  const CampaignSpec spec = parse_campaign_text(R"({
    "defaults": {"strikes": 1234, "rows": 3},
    "scenarios": [
      {"name": "inherits"},
      {"name": "overrides", "strikes": 99}
    ]
  })");
  EXPECT_EQ(spec.scenarios[0].flow.array_mc.strikes, 1234u);
  EXPECT_EQ(spec.scenarios[0].flow.array_rows, 3u);
  EXPECT_EQ(spec.scenarios[1].flow.array_mc.strikes, 99u);
  EXPECT_EQ(spec.scenarios[1].flow.array_rows, 3u);
}

TEST(CampaignParse, RejectsDuplicateNamesAndBadValues) {
  EXPECT_THROW(parse_campaign_text(
                   R"({"scenarios": [{"name": "a"}, {"name": "a"}]})"),
               util::InvalidArgument);
  EXPECT_THROW(parse_campaign_text(R"({"scenarios": []})"),
               util::InvalidArgument);
  EXPECT_THROW(parse_campaign_text(R"({"scenarios": [{"name": ""}]})"),
               util::InvalidArgument);
  EXPECT_THROW(parse_campaign_text(
                   R"({"scenarios": [{"name": "a", "rows": 0}]})"),
               util::InvalidArgument);
  EXPECT_THROW(parse_campaign_text(
                   R"({"scenarios": [{"name": "a", "rows": "many"}]})"),
               util::InvalidArgument);
  EXPECT_THROW(parse_campaign_text(
                   R"({"scenarios": [{"name": "a", "vdds": []}]})"),
               util::InvalidArgument);
  EXPECT_THROW(parse_campaign_text(R"({"scenarios": [{}]})"),
               util::InvalidArgument);
}

TEST(CampaignParse, JsonRoundTripIsExact) {
  CampaignSpec spec;
  spec.name = "round-trip";
  spec.artifact_dir = "out/artifacts";
  spec.output_dir = "out";
  spec.threads = 4;
  ScenarioSpec a;
  a.name = "nominal";
  a.species = {"alpha", "proton"};
  a.flow = tiny_flow();
  ScenarioSpec b = a;
  b.name = "low-vdd";
  b.species = {"neutron"};
  b.flow.characterization.vdds = {0.7, 0.75};
  b.flow.pattern = sram::DataPattern::kRandom;
  b.flow.pattern_seed = 9;
  b.flow.cell_design.cnode_f = 0.21e-15;
  b.flow.cell_geometry.fin_w_nm = 12.0;
  spec.scenarios = {a, b};

  const std::string dump1 = campaign_to_json(spec).dump(2);
  const CampaignSpec reparsed = parse_campaign_text(dump1);
  const std::string dump2 = campaign_to_json(reparsed).dump(2);
  EXPECT_EQ(dump1, dump2);

  // Spot-check the schema-covered fields survived exactly (doubles too:
  // %.17g serialization round-trips IEEE-754 bit patterns).
  ASSERT_EQ(reparsed.scenarios.size(), 2u);
  EXPECT_EQ(reparsed.scenarios[1].flow.cell_design.cnode_f,
            b.flow.cell_design.cnode_f);
  EXPECT_EQ(reparsed.scenarios[1].flow.characterization.vdds,
            b.flow.characterization.vdds);
  EXPECT_EQ(reparsed.scenarios[1].flow.pattern, sram::DataPattern::kRandom);
  EXPECT_EQ(reparsed.scenarios[1].species,
            (std::vector<std::string>{"neutron"}));
  EXPECT_EQ(reparsed.threads, 4u);
}

// --- stage graph ------------------------------------------------------------

TEST(StageGraph, DependenciesRunBeforeDependents) {
  StageGraph graph;
  std::mutex mu;
  std::vector<int> order;
  const auto record = [&](int id) {
    const std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  const std::size_t a = graph.add("a", {}, [&](std::size_t) { record(0); });
  const std::size_t b = graph.add("b", {}, [&](std::size_t) { record(1); });
  graph.add("c", {a, b}, [&](std::size_t) { record(2); });
  graph.run(4);

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), 2);  // c strictly after both roots
}

TEST(StageGraph, StageThreadShareIsPositiveAndBounded) {
  StageGraph graph;
  std::mutex mu;
  std::vector<std::size_t> shares;
  for (int i = 0; i < 5; ++i) {
    graph.add("s", {}, [&](std::size_t threads) {
      const std::lock_guard<std::mutex> lock(mu);
      shares.push_back(threads);
    });
  }
  graph.run(2);
  ASSERT_EQ(shares.size(), 5u);
  for (std::size_t s : shares) EXPECT_GE(s, 1u);
}

TEST(StageGraph, ExceptionsPropagate) {
  StageGraph graph;
  graph.add("boom", {}, [](std::size_t) {
    throw util::InvalidArgument("stage failure");
  });
  EXPECT_THROW(graph.run(2), util::InvalidArgument);
}

TEST(StageGraph, RejectsForwardDependencies) {
  StageGraph graph;
  EXPECT_THROW(graph.add("bad", {0}, [](std::size_t) {}),
               util::InvalidArgument);
}

// --- runner -----------------------------------------------------------------

void expect_sweeps_equal(const core::EnergySweepResult& a,
                         const core::EnergySweepResult& b) {
  ASSERT_EQ(a.bins.size(), b.bins.size());
  ASSERT_EQ(a.per_bin.size(), b.per_bin.size());
  ASSERT_EQ(a.vdds, b.vdds);
  for (std::size_t i = 0; i < a.per_bin.size(); ++i) {
    ASSERT_EQ(a.per_bin[i].est.size(), b.per_bin[i].est.size());
    for (std::size_t v = 0; v < a.per_bin[i].est.size(); ++v) {
      for (std::size_t mode = 0; mode < 2; ++mode) {
        const core::PofEstimate& x = a.per_bin[i].est[v][mode];
        const core::PofEstimate& y = b.per_bin[i].est[v][mode];
        EXPECT_EQ(x.tot, y.tot);
        EXPECT_EQ(x.seu, y.seu);
        EXPECT_EQ(x.mbu, y.mbu);
        EXPECT_EQ(x.tot_se, y.tot_se);
        EXPECT_EQ(x.hit_fraction, y.hit_fraction);
        EXPECT_EQ(x.multiplicity, y.multiplicity);
      }
    }
  }
  ASSERT_EQ(a.fit.size(), b.fit.size());
  for (std::size_t v = 0; v < a.fit.size(); ++v) {
    for (std::size_t mode = 0; mode < 2; ++mode) {
      EXPECT_EQ(a.fit[v][mode].fit_tot, b.fit[v][mode].fit_tot);
      EXPECT_EQ(a.fit[v][mode].fit_seu, b.fit[v][mode].fit_seu);
      EXPECT_EQ(a.fit[v][mode].fit_mbu, b.fit[v][mode].fit_mbu);
    }
  }
}

/// The tentpole contract: a single-scenario campaign is bit-identical to
/// driving core::SerFlow directly, at any thread count.
TEST(CampaignRunner, SingleScenarioMatchesLegacyFlowBitExactly) {
  const core::SerFlowConfig cfg = tiny_flow();
  const std::vector<std::string> species = {"alpha", "proton"};

  // Legacy path: one flow, sweeps in species order (the CLI `run` loop).
  core::SerFlow legacy(cfg);
  std::vector<core::EnergySweepResult> expected;
  for (const std::string& name : species) {
    expected.push_back(legacy.sweep(spectrum_for_species(name)));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    CampaignSpec spec = single_scenario_campaign(cfg, species, "");
    spec.threads = threads;
    CampaignRunner runner(std::move(spec));
    const std::vector<ScenarioResult> results = runner.run();
    ASSERT_EQ(results.size(), 1u);
    ASSERT_EQ(results[0].sweeps.size(), species.size());
    for (std::size_t s = 0; s < species.size(); ++s) {
      expect_sweeps_equal(expected[s], results[0].sweeps[s]);
    }
  }
}

/// Three scenarios sharing one cell-model fingerprint characterize exactly
/// once; with an artifact store, a warm re-run characterizes zero times and
/// serves every energy bin from cache.
TEST(CampaignRunner, SharedModelCharacterizesOnceAndWarmRunsFromArtifacts) {
  const std::string artifacts = temp_dir("finser_campaign_artifacts");
  std::filesystem::remove_all(artifacts);

  CampaignSpec spec;
  spec.name = "share-test";
  spec.artifact_dir = artifacts;
  spec.output_dir = "";  // no CSVs from this test
  const sram::DataPattern patterns[3] = {sram::DataPattern::kCheckerboard,
                                         sram::DataPattern::kAllOnes,
                                         sram::DataPattern::kAllZeros};
  for (int i = 0; i < 3; ++i) {
    ScenarioSpec s;
    s.name = "s" + std::to_string(i);
    s.species = {"alpha"};
    s.flow = tiny_flow();
    s.flow.pattern = patterns[i];  // same cell model, different layout
    spec.scenarios.push_back(std::move(s));
  }

  obs::Registry::global().reset();
  obs::set_enabled(true);

  CampaignRunner cold(spec);
  const auto cold_results = cold.run();
  ASSERT_EQ(cold_results.size(), 3u);
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("pipeline.characterizations").total(), 1u);
  EXPECT_EQ(reg.counter("pipeline.device_lut_builds").total(), 1u);
  EXPECT_EQ(reg.counter("core.bin_cache_hits").total(), 0u);
  // 3 scenarios × 3 alpha bins, all computed on the cold run.
  EXPECT_EQ(reg.counter("core.bin_cache_misses").total(), 9u);

  CampaignRunner warm(spec);
  const auto warm_results = warm.run();
  EXPECT_EQ(reg.counter("pipeline.characterizations").total(), 1u)
      << "warm run must reuse the characterization artifact";
  EXPECT_EQ(reg.counter("pipeline.device_lut_builds").total(), 1u)
      << "warm run must reuse the device LUT artifact";
  EXPECT_EQ(reg.counter("core.bin_cache_hits").total(), 9u)
      << "warm run must serve every energy bin from the artifact store";

  obs::set_enabled(false);
  obs::Registry::global().reset();

  // Cached bins are bit-identical to computed ones.
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(warm_results[i].sweeps.size(), 1u);
    expect_sweeps_equal(cold_results[i].sweeps[0], warm_results[i].sweeps[0]);
  }
  std::filesystem::remove_all(artifacts);
}

/// The stage plan is the sharding contract (docs/sharding.md): ids must be
/// deterministic, path-safe (they name lease files) and dependency-closed,
/// or supervisor and workers would disagree about what "stage 3" means.
TEST(CampaignRunner, StagePlanIdsAreDeterministicAndPathSafe) {
  CampaignSpec spec;
  spec.name = "plan-test";
  ScenarioSpec a;
  a.name = "a";
  a.species = {"alpha"};
  a.flow = tiny_flow();
  ScenarioSpec b = a;
  b.name = "b";
  b.flow.pattern = sram::DataPattern::kAllOnes;  // same model fingerprint
  spec.scenarios = {a, b};

  CampaignRunner r1(spec);
  CampaignRunner r2(spec);
  const std::vector<StageInfo>& plan = r1.plan();
  // Shared cell model + shared (geometry, species): 1 characterize +
  // 1 device LUT + 2 sweeps.
  ASSERT_EQ(plan.size(), 4u);
  ASSERT_EQ(r2.plan().size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].id, r2.plan()[i].id) << "plan must be deterministic";
    // Ids are `<index>-<slug>` with a filesystem-safe slug.
    EXPECT_EQ(plan[i].id.rfind(std::to_string(i) + "-", 0), 0u) << plan[i].id;
    for (char c : plan[i].id) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                  c == '_' || c == '.')
          << plan[i].id;
    }
    for (std::size_t dep : plan[i].deps) EXPECT_LT(dep, i);
  }
  EXPECT_NE(plan[0].label.find("characterize"), std::string::npos);
  EXPECT_NE(plan.back().label.find("sweep"), std::string::npos);
}

/// Driving stages one at a time through run_stage() (the worker path) must
/// reproduce run() (the in-process path) bit-exactly.
TEST(CampaignRunner, RunStageByStageMatchesRun) {
  CampaignSpec spec = single_scenario_campaign(tiny_flow(), {"alpha"}, "");

  CampaignRunner whole(spec);
  const std::vector<ScenarioResult> expected = whole.run();

  CampaignRunner stepped(spec);
  for (std::size_t i = 0; i < stepped.plan().size(); ++i) {
    stepped.run_stage(i, 1);
  }
  const std::vector<ScenarioResult>& actual = stepped.results();
  ASSERT_EQ(actual.size(), expected.size());
  ASSERT_EQ(actual[0].sweeps.size(), expected[0].sweeps.size());
  for (std::size_t s = 0; s < expected[0].sweeps.size(); ++s) {
    expect_sweeps_equal(expected[0].sweeps[s], actual[0].sweeps[s]);
  }
}

/// The fingerprint names lease/done files across processes, so it must not
/// depend on execution knobs (threads, lanes) — only on the science.
TEST(CampaignFingerprint, InvariantToExecutionKnobs) {
  CampaignSpec spec = single_scenario_campaign(tiny_flow(), {"alpha"}, "");
  const std::uint64_t base = campaign_fingerprint(spec);

  CampaignSpec threaded = spec;
  threaded.threads = 7;
  threaded.lanes = 4;
  EXPECT_EQ(campaign_fingerprint(threaded), base);

  CampaignSpec edited = spec;
  edited.scenarios[0].flow.array_mc.strikes += 1;
  EXPECT_NE(campaign_fingerprint(edited), base);
}

/// Scenario outputs land in per-scenario directories with the CLI's CSV
/// formats.
TEST(CampaignRunner, WritesPerScenarioCsvOutputs) {
  const std::string out = temp_dir("finser_campaign_out");
  std::filesystem::remove_all(out);

  CampaignSpec spec = single_scenario_campaign(tiny_flow(), {"alpha"}, out,
                                               "only");
  CampaignRunner runner(std::move(spec));
  runner.run();

  EXPECT_TRUE(std::filesystem::exists(out + "/only/pof_alpha.csv"));
  EXPECT_TRUE(std::filesystem::exists(out + "/only/fit_summary.csv"));
  EXPECT_TRUE(std::filesystem::exists(out + "/eh_pairs_alpha.csv"));
  std::filesystem::remove_all(out);
}

}  // namespace
}  // namespace finser::pipeline
