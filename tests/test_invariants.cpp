/// \file test_invariants.cpp
/// \brief Property tests of the paper's probability algebra over randomized
/// inputs: Eqs. 4–6 (POF combination), the Poisson-binomial multiplicity
/// distribution, monotonicity of the POF tables, and Eqs. 7–8 (FIT
/// integration: non-negative and linear in flux).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "finser/core/fit.hpp"
#include "finser/core/pof_combine.hpp"
#include "finser/sram/pof_table.hpp"
#include "finser/stats/rng.hpp"

namespace finser {
namespace {

TEST(PofCombineInvariants, RandomizedEqs4To6) {
  stats::Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform() * 6.0);
    std::vector<double> p(k);
    for (double& v : p) {
      // Mix interior values with the exact endpoints the O(k²) products
      // must handle (p = 0, p = 1).
      const double u = rng.uniform();
      v = u < 0.1 ? 0.0 : u < 0.2 ? 1.0 : rng.uniform();
    }
    const core::CombinedPof c = core::combine_eqs_4_to_6(p);

    // All three outputs are probabilities.
    EXPECT_GE(c.tot, 0.0);
    EXPECT_LE(c.tot, 1.0 + 1e-12);
    EXPECT_GE(c.seu, -1e-12);
    EXPECT_LE(c.seu, 1.0 + 1e-12);
    EXPECT_GE(c.mbu, -1e-12);

    // Eq. 6 exactly, and POF_tot dominates both components.
    EXPECT_NEAR(c.tot, c.seu + c.mbu, 1e-12);
    EXPECT_GE(c.tot + 1e-12, std::max(c.seu, c.mbu));

    // Eq. 4 against a direct evaluation.
    double surv = 1.0;
    for (double v : p) surv *= 1.0 - v;
    EXPECT_NEAR(c.tot, 1.0 - surv, 1e-12);

    // The array fails at least as often as its single most fragile cell.
    EXPECT_GE(c.tot + 1e-12, *std::max_element(p.begin(), p.end()));

    // Monotone: adding one more vulnerable cell can only increase POF_tot.
    std::vector<double> p_more = p;
    p_more.push_back(rng.uniform());
    EXPECT_GE(core::combine_eqs_4_to_6(p_more).tot + 1e-12, c.tot);
  }
}

TEST(PofCombineInvariants, MultiplicityDistributionIdentities) {
  stats::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform() * 7.0);
    std::vector<double> p(k);
    for (double& v : p) v = rng.uniform();
    const auto dist = core::multiplicity_distribution(p);
    const core::CombinedPof c = core::combine_eqs_4_to_6(p);

    double sum = 0.0;
    for (double d : dist) {
      EXPECT_GE(d, -1e-12);
      sum += d;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_NEAR(dist[0], 1.0 - c.tot, 1e-9);   // P(0 flips) = 1 - POF_tot.
    EXPECT_NEAR(dist[1], c.seu, 1e-9);         // P(1 flip)  = POF_SEU.
    double multi = 0.0;
    for (std::size_t n = 2; n < core::kMaxMultiplicity; ++n) multi += dist[n];
    EXPECT_NEAR(multi, c.mbu, 1e-9);           // P(≥2)      = POF_MBU.
  }
}

TEST(PofTableInvariants, SingleCdfMonotoneNonDecreasingInCharge) {
  stats::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    sram::SingleCdf cdf;
    cdf.nominal_qcrit_fc = 0.05 + 0.1 * rng.uniform();
    const std::size_t n = 5 + static_cast<std::size_t>(rng.uniform() * 40.0);
    cdf.total_samples = n + 2;  // Two samples never flipped.
    for (std::size_t i = 0; i < n; ++i) {
      cdf.qcrit_samples_fc.push_back(0.01 + 0.2 * rng.uniform());
    }
    std::sort(cdf.qcrit_samples_fc.begin(), cdf.qcrit_samples_fc.end());

    double prev = -1.0;
    for (double q = 0.0; q <= 0.3; q += 0.003) {
      const double p = cdf.pof(q);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      EXPECT_GE(p, prev) << "POF decreased at q = " << q;
      prev = p;
    }
    // Depositing nothing never flips; far above every sample flips all
    // flippable fractions.
    EXPECT_EQ(cdf.pof(0.0), 0.0);
    EXPECT_NEAR(cdf.pof(1e3),
                static_cast<double>(n) / static_cast<double>(cdf.total_samples),
                1e-12);
  }
}

TEST(PofTableInvariants, SingleCdfMonotoneNonIncreasingInVdd) {
  // A higher supply voltage strictly raises every sampled critical charge
  // (more charge is needed to flip), so at any fixed deposited charge the
  // POF must not increase with Vdd. Model the Qcrit(Vdd) dependence the
  // characterizer observes: roughly linear growth.
  stats::Rng rng(11);
  const std::vector<double> vdds{0.7, 0.8, 0.9, 1.0, 1.1};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> base(40);
    for (double& b : base) b = 0.02 + 0.08 * rng.uniform();

    std::vector<sram::SingleCdf> cdfs;
    for (const double vdd : vdds) {
      sram::SingleCdf cdf;
      cdf.total_samples = base.size();
      for (const double b : base) cdf.qcrit_samples_fc.push_back(b * vdd);
      std::sort(cdf.qcrit_samples_fc.begin(), cdf.qcrit_samples_fc.end());
      cdfs.push_back(std::move(cdf));
    }
    for (double q = 0.005; q <= 0.15; q += 0.005) {
      for (std::size_t v = 1; v < vdds.size(); ++v) {
        EXPECT_LE(cdfs[v].pof(q), cdfs[v - 1].pof(q) + 1e-12)
            << "POF increased from Vdd " << vdds[v - 1] << " to " << vdds[v]
            << " at q = " << q;
      }
    }
  }
}

TEST(FitInvariants, NonNegativeAndLinearInFlux) {
  stats::Rng rng(2718);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n_bins = 1 + static_cast<std::size_t>(rng.uniform() * 12.0);
    std::vector<env::EnergyBin> bins(n_bins);
    std::vector<core::PofEstimate> pofs(n_bins);
    double e_lo = 0.1;
    for (std::size_t b = 0; b < n_bins; ++b) {
      bins[b].e_lo_mev = e_lo;
      bins[b].e_hi_mev = e_lo * (1.5 + rng.uniform());
      bins[b].e_rep_mev = std::sqrt(bins[b].e_lo_mev * bins[b].e_hi_mev);
      bins[b].integral_flux_per_cm2_s = rng.uniform() * 1e-3;
      e_lo = bins[b].e_hi_mev;
      pofs[b].tot = rng.uniform();
      pofs[b].seu = pofs[b].tot * rng.uniform();
      pofs[b].mbu = pofs[b].tot - pofs[b].seu;
    }
    const double lx = 500.0 + 5000.0 * rng.uniform();
    const double ly = 500.0 + 5000.0 * rng.uniform();

    const core::FitResult fit = core::integrate_fit(bins, pofs, lx, ly);
    EXPECT_GE(fit.fit_tot, 0.0);
    EXPECT_GE(fit.fit_seu, 0.0);
    EXPECT_GE(fit.fit_mbu, 0.0);
    EXPECT_NEAR(fit.fit_tot, fit.fit_seu + fit.fit_mbu,
                1e-9 * std::max(1.0, fit.fit_tot));

    // Eq. 8 is a weighted sum over bins: doubling every bin's flux must
    // exactly double the FIT rate (linearity in flux).
    std::vector<env::EnergyBin> doubled = bins;
    for (auto& b : doubled) b.integral_flux_per_cm2_s *= 2.0;
    const core::FitResult fit2 = core::integrate_fit(doubled, pofs, lx, ly);
    EXPECT_NEAR(fit2.fit_tot, 2.0 * fit.fit_tot,
                1e-9 * std::max(1.0, fit.fit_tot));

    // And zero flux means zero failure rate, whatever the POFs.
    std::vector<env::EnergyBin> dark = bins;
    for (auto& b : dark) b.integral_flux_per_cm2_s = 0.0;
    EXPECT_EQ(core::integrate_fit(dark, pofs, lx, ly).fit_tot, 0.0);
  }
}

}  // namespace
}  // namespace finser
