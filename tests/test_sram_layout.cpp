#include <gtest/gtest.h>

#include <set>

#include "finser/sram/layout.hpp"
#include "finser/util/error.hpp"

namespace finser::sram {
namespace {

// ---------------------------------------------------------------------------
// Single cell geometry
// ---------------------------------------------------------------------------

TEST(Layout, SingleCellHasSixFins) {
  ArrayLayout layout(1, 1, CellGeometry{});
  EXPECT_EQ(layout.fins().size(), 6u);
  EXPECT_EQ(layout.cell_count(), 1u);
}

TEST(Layout, FinBoxDimensionsMatchGeometry) {
  CellGeometry g;
  ArrayLayout layout(1, 1, g);
  for (std::uint32_t id = 0; id < layout.fins().size(); ++id) {
    const auto& box = layout.fins().box(id);
    const auto ext = box.extent();
    EXPECT_DOUBLE_EQ(ext.x, g.fin_w_nm);
    EXPECT_DOUBLE_EQ(ext.y, g.gate_len_nm);
    EXPECT_DOUBLE_EQ(ext.z, g.fin_h_nm);
    EXPECT_DOUBLE_EQ(box.lo.z, 0.0);  // Fins sit on the BOX.
  }
}

TEST(Layout, AllRolesPresentOncePerCell) {
  ArrayLayout layout(1, 1, CellGeometry{});
  std::set<Role> roles;
  for (std::uint32_t id = 0; id < layout.fins().size(); ++id) {
    roles.insert(layout.site(id).role);
  }
  EXPECT_EQ(roles.size(), kRoleCount);
}

TEST(Layout, FinsDoNotOverlapWithinCell) {
  ArrayLayout layout(1, 1, CellGeometry{});
  const auto& fins = layout.fins();
  for (std::uint32_t a = 0; a < fins.size(); ++a) {
    for (std::uint32_t b = a + 1; b < fins.size(); ++b) {
      EXPECT_FALSE(fins.box(a).overlaps(fins.box(b))) << a << " vs " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Array tiling
// ---------------------------------------------------------------------------

TEST(Layout, PaperArrayHas486Fins) {
  // 9x9 cells x 6 transistors (single-fin devices).
  ArrayLayout layout(9, 9, CellGeometry{});
  EXPECT_EQ(layout.fins().size(), 486u);
  EXPECT_EQ(layout.cell_count(), 81u);
}

TEST(Layout, FootprintMatchesPitch) {
  CellGeometry g;
  ArrayLayout layout(9, 9, g);
  EXPECT_DOUBLE_EQ(layout.width_nm(), 9.0 * g.cell_w_nm);
  EXPECT_DOUBLE_EQ(layout.height_nm(), 9.0 * g.cell_h_nm);
  const auto b = layout.bounds();
  EXPECT_GE(b.lo.x, 0.0);
  EXPECT_LE(b.hi.x, layout.width_nm());
  EXPECT_GE(b.lo.y, 0.0);
  EXPECT_LE(b.hi.y, layout.height_nm());
}

TEST(Layout, SitesMapBackToCells) {
  ArrayLayout layout(3, 4, CellGeometry{});
  std::set<std::pair<std::uint32_t, std::uint32_t>> cells;
  for (std::uint32_t id = 0; id < layout.fins().size(); ++id) {
    const FinSite& s = layout.site(id);
    EXPECT_LT(s.cell_row, 3u);
    EXPECT_LT(s.cell_col, 4u);
    cells.insert({s.cell_row, s.cell_col});
    // Every fin lies inside its cell's bounding rectangle.
    const auto& box = layout.fins().box(id);
    const CellGeometry& g = layout.geometry();
    EXPECT_GE(box.lo.x, s.cell_col * g.cell_w_nm - 1e-9);
    EXPECT_LE(box.hi.x, (s.cell_col + 1) * g.cell_w_nm + 1e-9);
    EXPECT_GE(box.lo.y, s.cell_row * g.cell_h_nm - 1e-9);
    EXPECT_LE(box.hi.y, (s.cell_row + 1) * g.cell_h_nm + 1e-9);
  }
  EXPECT_EQ(cells.size(), 12u);
}

TEST(Layout, MirroringReflectsOddColumns) {
  CellGeometry g;
  ArrayLayout layout(1, 2, g);
  // Find PdL in both cells: odd column is x-mirrored.
  double x0 = -1, x1 = -1;
  for (std::uint32_t id = 0; id < layout.fins().size(); ++id) {
    const FinSite& s = layout.site(id);
    if (s.role == Role::kPdL) {
      const double cx = layout.fins().box(id).center().x -
                        s.cell_col * g.cell_w_nm;
      if (s.cell_col == 0) x0 = cx;
      if (s.cell_col == 1) x1 = cx;
    }
  }
  ASSERT_GE(x0, 0.0);
  ASSERT_GE(x1, 0.0);
  EXPECT_NEAR(x1, g.cell_w_nm - x0, 1e-9);
}

TEST(Layout, MirroringReflectsOddRows) {
  CellGeometry g;
  ArrayLayout layout(2, 1, g);
  double y0 = -1, y1 = -1;
  for (std::uint32_t id = 0; id < layout.fins().size(); ++id) {
    const FinSite& s = layout.site(id);
    if (s.role == Role::kPdL) {
      const double cy = layout.fins().box(id).center().y -
                        s.cell_row * g.cell_h_nm;
      if (s.cell_row == 0) y0 = cy;
      if (s.cell_row == 1) y1 = cy;
    }
  }
  EXPECT_NEAR(y1, g.cell_h_nm - y0, 1e-9);
}

TEST(Layout, MultiFinDevicesReplicateBoxes) {
  CellGeometry g;
  g.nfin_pd = 2;
  ArrayLayout layout(1, 1, g);
  // 2 PD devices with 2 fins each + 4 single-fin devices = 8 boxes.
  EXPECT_EQ(layout.fins().size(), 8u);
  int pd_fins = 0;
  for (std::uint32_t id = 0; id < layout.fins().size(); ++id) {
    const Role r = layout.site(id).role;
    if (r == Role::kPdL || r == Role::kPdR) ++pd_fins;
  }
  EXPECT_EQ(pd_fins, 4);
}

// ---------------------------------------------------------------------------
// Technology kinds (SOI vs bulk)
// ---------------------------------------------------------------------------

TEST(Layout, SoiHasUnitEfficiencyOnly) {
  ArrayLayout layout(2, 2, CellGeometry{});
  for (std::uint32_t id = 0; id < layout.fins().size(); ++id) {
    EXPECT_DOUBLE_EQ(layout.collection_efficiency(id), 1.0);
  }
  EXPECT_THROW(layout.collection_efficiency(
                   static_cast<std::uint32_t>(layout.fins().size())),
               util::InvalidArgument);
}

TEST(Layout, BulkAddsTieredCollectionVolumes) {
  CellGeometry g;
  g.technology = TechnologyKind::kBulk;
  ArrayLayout layout(1, 1, g);
  // 6 fins x (1 channel + 3 tiers).
  EXPECT_EQ(layout.fins().size(), 24u);
  int channels = 0, tiers = 0;
  for (std::uint32_t id = 0; id < layout.fins().size(); ++id) {
    const auto& box = layout.fins().box(id);
    const double eff = layout.collection_efficiency(id);
    if (box.lo.z >= 0.0) {
      ++channels;
      EXPECT_DOUBLE_EQ(eff, 1.0);
    } else {
      ++tiers;
      EXPECT_GT(eff, 0.0);
      EXPECT_LT(eff, 1.0);
      EXPECT_LE(box.hi.z, 0.0);  // Strictly below the fin base.
    }
  }
  EXPECT_EQ(channels, 6);
  EXPECT_EQ(tiers, 18);
}

TEST(Layout, BulkTiersInheritSiteIdentity) {
  CellGeometry g;
  g.technology = TechnologyKind::kBulk;
  ArrayLayout layout(2, 2, g);
  for (std::uint32_t id = 0; id < layout.fins().size(); ++id) {
    const FinSite& s = layout.site(id);
    EXPECT_LT(s.cell_row, 2u);
    EXPECT_LT(s.cell_col, 2u);
  }
}

TEST(Layout, BulkEfficiencyDecreasesWithDepth) {
  CellGeometry g;
  g.technology = TechnologyKind::kBulk;
  ArrayLayout layout(1, 1, g);
  // For any fin column, tiers deeper in z must not collect more.
  for (std::uint32_t a = 0; a < layout.fins().size(); ++a) {
    for (std::uint32_t b = 0; b < layout.fins().size(); ++b) {
      const auto& ba = layout.fins().box(a);
      const auto& bb = layout.fins().box(b);
      const bool same_column = std::abs(ba.lo.x - bb.lo.x) < 1e-9 &&
                               std::abs(ba.lo.y - bb.lo.y) < 1e-9;
      if (same_column && ba.hi.z <= 0.0 && bb.hi.z <= 0.0 &&
          ba.lo.z < bb.lo.z) {
        EXPECT_LE(layout.collection_efficiency(a),
                  layout.collection_efficiency(b));
      }
    }
  }
}

TEST(Layout, BulkRejectsMalformedTiers) {
  CellGeometry g;
  g.technology = TechnologyKind::kBulk;
  g.bulk_tiers = {{100.0, 50.0, 0.5}};  // Inverted depth range.
  EXPECT_THROW(ArrayLayout(1, 1, g), util::InvalidArgument);
  g.bulk_tiers = {{0.0, 100.0, 1.5}};  // Efficiency > 1.
  EXPECT_THROW(ArrayLayout(1, 1, g), util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Data patterns
// ---------------------------------------------------------------------------

TEST(Layout, DataPatterns) {
  ArrayLayout ones(2, 2, CellGeometry{}, DataPattern::kAllOnes);
  ArrayLayout zeros(2, 2, CellGeometry{}, DataPattern::kAllZeros);
  ArrayLayout checker(2, 2, CellGeometry{}, DataPattern::kCheckerboard);
  EXPECT_TRUE(ones.bit(0, 0));
  EXPECT_TRUE(ones.bit(1, 1));
  EXPECT_FALSE(zeros.bit(0, 0));
  EXPECT_TRUE(checker.bit(0, 0));
  EXPECT_FALSE(checker.bit(0, 1));
  EXPECT_FALSE(checker.bit(1, 0));
  EXPECT_TRUE(checker.bit(1, 1));
}

TEST(Layout, RandomPatternIsSeededDeterministically) {
  ArrayLayout a(4, 4, CellGeometry{}, DataPattern::kRandom, 99);
  ArrayLayout b(4, 4, CellGeometry{}, DataPattern::kRandom, 99);
  ArrayLayout c(4, 4, CellGeometry{}, DataPattern::kRandom, 100);
  int diff_ab = 0, diff_ac = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t col = 0; col < 4; ++col) {
      diff_ab += a.bit(r, col) != b.bit(r, col);
      diff_ac += a.bit(r, col) != c.bit(r, col);
    }
  }
  EXPECT_EQ(diff_ab, 0);
  EXPECT_GT(diff_ac, 0);
}

// ---------------------------------------------------------------------------
// Sensitivity mapping (paper Fig. 5a)
// ---------------------------------------------------------------------------

TEST(Layout, StrikeIndexForStoredOne) {
  EXPECT_EQ(ArrayLayout::strike_index(Role::kPdL, true), 0);
  EXPECT_EQ(ArrayLayout::strike_index(Role::kPuR, true), 1);
  EXPECT_EQ(ArrayLayout::strike_index(Role::kPgR, true), 2);
  EXPECT_FALSE(ArrayLayout::strike_index(Role::kPdR, true).has_value());
  EXPECT_FALSE(ArrayLayout::strike_index(Role::kPuL, true).has_value());
  EXPECT_FALSE(ArrayLayout::strike_index(Role::kPgL, true).has_value());
}

TEST(Layout, StrikeIndexForStoredZeroIsMirrored) {
  EXPECT_EQ(ArrayLayout::strike_index(Role::kPdR, false), 0);
  EXPECT_EQ(ArrayLayout::strike_index(Role::kPuL, false), 1);
  EXPECT_EQ(ArrayLayout::strike_index(Role::kPgL, false), 2);
  EXPECT_FALSE(ArrayLayout::strike_index(Role::kPdL, false).has_value());
}

TEST(Layout, ExactlyThreeSensitiveTransistorsPerCell) {
  for (bool bit : {false, true}) {
    int sensitive = 0;
    for (std::size_t r = 0; r < kRoleCount; ++r) {
      if (ArrayLayout::strike_index(static_cast<Role>(r), bit)) ++sensitive;
    }
    EXPECT_EQ(sensitive, 3);
  }
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

TEST(Layout, RejectsDegenerateInputs) {
  EXPECT_THROW(ArrayLayout(0, 3, CellGeometry{}), util::InvalidArgument);
  EXPECT_THROW(ArrayLayout(3, 0, CellGeometry{}), util::InvalidArgument);
  CellGeometry bad;
  bad.fin_w_nm = 0.0;
  EXPECT_THROW(ArrayLayout(1, 1, bad), util::InvalidArgument);
  CellGeometry bad2;
  bad2.nfin_pu = 0;
  EXPECT_THROW(ArrayLayout(1, 1, bad2), util::InvalidArgument);
}

TEST(Layout, SiteOutOfRangeThrows) {
  ArrayLayout layout(1, 1, CellGeometry{});
  EXPECT_THROW(layout.site(6), util::InvalidArgument);
  EXPECT_THROW(layout.bit(1, 0), util::InvalidArgument);
}

}  // namespace
}  // namespace finser::sram
