#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "finser/util/config.hpp"
#include "finser/util/error.hpp"

namespace finser::util {
namespace {

TEST(Config, ParsesKeysValuesAndComments) {
  const auto cfg = KeyValueConfig::parse(
      "# campaign setup\n"
      "array.rows = 9\n"
      "cell.sigma_vt = 0.05   ; inline comment\n"
      "\n"
      "output.dir = finser_out\n");
  EXPECT_EQ(cfg.size(), 3u);
  EXPECT_TRUE(cfg.has("array.rows"));
  EXPECT_EQ(cfg.get_int("array.rows", 0), 9);
  EXPECT_DOUBLE_EQ(cfg.get_double("cell.sigma_vt", 0.0), 0.05);
  EXPECT_EQ(cfg.get_string("output.dir", ""), "finser_out");
}

TEST(Config, FallbacksWhenAbsent) {
  const auto cfg = KeyValueConfig::parse("");
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
  const auto list = cfg.get_double_list("missing", {1.0, 2.0});
  EXPECT_EQ(list.size(), 2u);
}

TEST(Config, BoolSpellings) {
  const auto cfg = KeyValueConfig::parse(
      "a = true\nb = Yes\nc = 1\nd = off\ne = FALSE\nf = maybe\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_FALSE(cfg.get_bool("e", true));
  EXPECT_THROW(cfg.get_bool("f", true), InvalidArgument);
}

TEST(Config, DoubleLists) {
  const auto cfg = KeyValueConfig::parse("vdds = 0.7, 0.8,0.9 , 1.1\n");
  const auto v = cfg.get_double_list("vdds", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 0.7);
  EXPECT_DOUBLE_EQ(v[3], 1.1);
}

TEST(Config, TypeErrorsThrow) {
  const auto cfg = KeyValueConfig::parse("a = banana\nb = 1.5x\nl = 1, two\n");
  EXPECT_THROW(cfg.get_double("a", 0.0), InvalidArgument);
  EXPECT_THROW(cfg.get_int("b", 0), InvalidArgument);
  EXPECT_THROW(cfg.get_double_list("l", {}), InvalidArgument);
  // A numeric string still works as a string.
  EXPECT_EQ(cfg.get_string("a", ""), "banana");
}

TEST(Config, MalformedLinesRejected) {
  EXPECT_THROW(KeyValueConfig::parse("just some words\n"), InvalidArgument);
  EXPECT_THROW(KeyValueConfig::parse("= value\n"), InvalidArgument);
  EXPECT_THROW(KeyValueConfig::parse("a = 1\na = 2\n"), InvalidArgument);
}

TEST(Config, ErrorsNameKeyAndSourceLine) {
  const auto cfg = KeyValueConfig::parse(
      "# campaign\n"
      "alpha = 1\n"
      "beta = oops\n");
  EXPECT_EQ(cfg.line_of("alpha"), 2);
  EXPECT_EQ(cfg.line_of("beta"), 3);
  EXPECT_EQ(cfg.line_of("missing"), 0);
  try {
    cfg.get_double("beta", 0.0);
    FAIL() << "expected InvalidArgument for a non-numeric value";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("beta"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
}

TEST(Config, DuplicateKeyErrorNamesBothLines) {
  try {
    KeyValueConfig::parse("alpha = 1\n# comment\nalpha = 2\n");
    FAIL() << "expected InvalidArgument for a duplicated key";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("alpha"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
  }
}

TEST(Config, UnknownKeyTracking) {
  const auto cfg = KeyValueConfig::parse("used = 1\ntypo.key = 2\n");
  EXPECT_EQ(cfg.get_int("used", 0), 1);
  const auto unknown = cfg.unknown_keys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo.key");
}

TEST(Config, EditDistanceIsLevenshtein) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("strikes", "strikse"), 2u);  // transpose = 2 edits
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("mc.seed", "mc.sed"), 1u);
}

TEST(Config, NearestKeyCapsDistanceAtTwo) {
  const std::vector<std::string> keys = {"mc.strikes", "mc.seed", "array.rows"};
  EXPECT_EQ(nearest_key("mc.strikse", keys), "mc.strikes");
  EXPECT_EQ(nearest_key("mc.sed", keys), "mc.seed");
  EXPECT_EQ(nearest_key("completely.different", keys), "");
  // An exact match is not a suggestion.
  EXPECT_EQ(nearest_key("mc.seed", {"mc.seed"}), "");
  // Deterministic tie-break: smaller distance first, then map/list order.
  EXPECT_EQ(nearest_key("ac", std::vector<std::string>{"ab", "ac1", "ad"}),
            "ab");
}

TEST(Config, SuggestionForUsesRequestedKeysAsVocabulary) {
  const auto cfg = KeyValueConfig::parse("mc.strikse = 100\n");
  // The program asks for its supported knobs (present in the file or not)...
  EXPECT_EQ(cfg.get_int("mc.strikes", 60000), 60000);
  EXPECT_EQ(cfg.get_int("array.rows", 9), 9);
  // ...which makes the typo diagnosable.
  const auto unknown = cfg.unknown_keys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "mc.strikse");
  EXPECT_EQ(cfg.suggestion_for("mc.strikse"), "mc.strikes");
  EXPECT_EQ(cfg.suggestion_for("nothing.like.it"), "");
}

TEST(Config, ParseFileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "finser_cfg_test.ini").string();
  {
    std::ofstream os(path);
    os << "x = 3.5\n";
  }
  const auto cfg = KeyValueConfig::parse_file(path);
  EXPECT_DOUBLE_EQ(cfg.get_double("x", 0.0), 3.5);
  std::filesystem::remove(path);
  EXPECT_THROW(KeyValueConfig::parse_file("/nonexistent/cfg.ini"), Error);
}

}  // namespace
}  // namespace finser::util
