#include <gtest/gtest.h>

#include <cmath>

#include "finser/geom/aabb.hpp"
#include "finser/geom/box_set.hpp"
#include "finser/geom/vec3.hpp"
#include "finser/stats/direction.hpp"
#include "finser/stats/rng.hpp"
#include "finser/util/error.hpp"

namespace finser::geom {
namespace {

// ---------------------------------------------------------------------------
// Vec3
// ---------------------------------------------------------------------------

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3, DotAndCross) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_EQ(a.cross(b), (Vec3{-3, 6, -3}));
  const Vec3 x{1, 0, 0}, y{0, 1, 0};
  EXPECT_EQ(x.cross(y), (Vec3{0, 0, 1}));
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  const Vec3 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, (Vec3{2, 3, 4}));
  v -= {1, 1, 1};
  EXPECT_EQ(v, (Vec3{1, 2, 3}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{3, 6, 9}));
}

TEST(Ray, PointAt) {
  const Ray r{{1, 0, 0}, {0, 0, -1}};
  EXPECT_EQ(r.at(2.0), (Vec3{1, 0, -2}));
}

// ---------------------------------------------------------------------------
// Aabb
// ---------------------------------------------------------------------------

TEST(Aabb, BasicProperties) {
  const Aabb b{{0, 0, 0}, {2, 4, 6}};
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.center(), (Vec3{1, 2, 3}));
  EXPECT_EQ(b.extent(), (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(b.volume(), 48.0);
}

TEST(Aabb, Contains) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(b.contains({0.5, 0.5, 0.5}));
  EXPECT_TRUE(b.contains({0, 0, 0}));      // Boundary inclusive.
  EXPECT_TRUE(b.contains({1, 1, 1}));
  EXPECT_FALSE(b.contains({1.001, 0.5, 0.5}));
}

TEST(Aabb, Overlaps) {
  const Aabb a{{0, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(a.overlaps({{1, 1, 1}, {3, 3, 3}}));
  EXPECT_TRUE(a.overlaps({{2, 0, 0}, {3, 1, 1}}));  // Touching counts.
  EXPECT_FALSE(a.overlaps({{2.1, 0, 0}, {3, 1, 1}}));
}

TEST(Aabb, Expand) {
  Aabb a{{0, 0, 0}, {1, 1, 1}};
  a.expand({{-1, 0.5, 0.5}, {0.5, 2, 0.7}});
  EXPECT_EQ(a.lo, (Vec3{-1, 0, 0}));
  EXPECT_EQ(a.hi, (Vec3{1, 2, 1}));
}

TEST(AabbIntersect, AxisAlignedHit) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  const Ray r{{0.5, 0.5, 2.0}, {0, 0, -1}};
  const auto iv = b.intersect(r);
  ASSERT_TRUE(iv.has_value());
  EXPECT_NEAR(iv->t_in, 1.0, 1e-12);
  EXPECT_NEAR(iv->t_out, 2.0, 1e-12);
  EXPECT_NEAR(iv->length(), 1.0, 1e-12);
}

TEST(AabbIntersect, Miss) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  EXPECT_FALSE(b.intersect({{2, 2, 2}, {0, 0, -1}}).has_value());
  EXPECT_FALSE(b.intersect({{0.5, 0.5, 2.0}, {0, 0, 1}}).has_value());  // Away.
}

TEST(AabbIntersect, OriginInside) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  const auto iv = b.intersect({{0.5, 0.5, 0.5}, {1, 0, 0}});
  ASSERT_TRUE(iv.has_value());
  EXPECT_DOUBLE_EQ(iv->t_in, 0.0);
  EXPECT_NEAR(iv->t_out, 0.5, 1e-12);
}

TEST(AabbIntersect, BoxBehindOrigin) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  EXPECT_FALSE(b.intersect({{0.5, 0.5, 3.0}, {0, 0, 1}}).has_value());
}

TEST(AabbIntersect, DiagonalThroughCorners) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  const Vec3 dir = Vec3{1, 1, 1}.normalized();
  const auto iv = b.intersect({{-1, -1, -1}, dir});
  ASSERT_TRUE(iv.has_value());
  EXPECT_NEAR(iv->length(), std::sqrt(3.0), 1e-9);
}

TEST(AabbIntersect, ParallelRayInsideSlab) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  // Parallel to x-axis at y, z inside.
  const auto iv = b.intersect({{-2, 0.5, 0.5}, {1, 0, 0}});
  ASSERT_TRUE(iv.has_value());
  EXPECT_NEAR(iv->length(), 1.0, 1e-12);
  // Parallel but outside the slab.
  EXPECT_FALSE(b.intersect({{-2, 2.0, 0.5}, {1, 0, 0}}).has_value());
}

TEST(AabbIntersect, GrazingEdgeReportsZeroLength) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  const auto iv = b.intersect({{0.0, -1.0, 0.5}, {0, 1, 0}});
  ASSERT_TRUE(iv.has_value());
  EXPECT_GE(iv->length(), 0.0);
}

TEST(AabbIntersect, RespectsTmin) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  const Ray r{{0.5, 0.5, 2.0}, {0, 0, -1}};
  const auto iv = b.intersect(r, 1.5);
  ASSERT_TRUE(iv.has_value());
  EXPECT_DOUBLE_EQ(iv->t_in, 1.5);
}

// ---------------------------------------------------------------------------
// BoxSet + UniformGrid
// ---------------------------------------------------------------------------

TEST(BoxSet, AddAndBounds) {
  BoxSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_THROW(set.bounds(), util::InvalidArgument);
  const auto id0 = set.add({{0, 0, 0}, {1, 1, 1}});
  const auto id1 = set.add({{5, 5, 5}, {6, 7, 8}});
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  const Aabb b = set.bounds();
  EXPECT_EQ(b.lo, (Vec3{0, 0, 0}));
  EXPECT_EQ(b.hi, (Vec3{6, 7, 8}));
}

TEST(BoxSet, RejectsInvalidBox) {
  BoxSet set;
  EXPECT_THROW(set.add({{1, 0, 0}, {0, 1, 1}}), util::InvalidArgument);
}

TEST(BoxSet, QuerySortedByEntry) {
  BoxSet set;
  set.add({{0, 0, 4}, {1, 1, 5}});   // Further along -z ray.
  set.add({{0, 0, 8}, {1, 1, 9}});   // Nearer.
  std::vector<BoxHit> hits;
  set.query({{0.5, 0.5, 10.0}, {0, 0, -1}}, hits);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(hits[1].id, 0u);
  EXPECT_LT(hits[0].interval.t_in, hits[1].interval.t_in);
}

TEST(UniformGrid, MatchesBruteForceOnRandomScenes) {
  stats::Rng rng(1234);
  for (int scene = 0; scene < 5; ++scene) {
    BoxSet set;
    for (int i = 0; i < 60; ++i) {
      const Vec3 lo{rng.uniform(0, 900), rng.uniform(0, 400), rng.uniform(0, 30)};
      const Vec3 sz{rng.uniform(5, 30), rng.uniform(5, 30), rng.uniform(5, 30)};
      set.add({lo, lo + sz});
    }
    UniformGrid grid(set);
    std::vector<BoxHit> brute, accel;
    for (int q = 0; q < 300; ++q) {
      Ray ray;
      ray.origin = {rng.uniform(-50, 1000), rng.uniform(-50, 450),
                    rng.uniform(40, 80)};
      ray.dir = stats::isotropic_hemisphere_down(rng);
      if (ray.dir.z == 0.0) continue;
      set.query(ray, brute);
      grid.query(ray, accel);
      ASSERT_EQ(brute.size(), accel.size()) << "scene " << scene << " query " << q;
      for (std::size_t i = 0; i < brute.size(); ++i) {
        EXPECT_EQ(brute[i].id, accel[i].id);
        EXPECT_NEAR(brute[i].interval.t_in, accel[i].interval.t_in, 1e-9);
        EXPECT_NEAR(brute[i].interval.t_out, accel[i].interval.t_out, 1e-9);
      }
    }
  }
}

TEST(UniformGrid, HandlesAxisAlignedRays) {
  BoxSet set;
  set.add({{0, 0, 0}, {10, 10, 10}});
  set.add({{20, 0, 0}, {30, 10, 10}});
  UniformGrid grid(set);
  std::vector<BoxHit> hits;
  grid.query({{-5, 5, 5}, {1, 0, 0}}, hits);
  EXPECT_EQ(hits.size(), 2u);
  grid.query({{5, 5, 50}, {0, 0, -1}}, hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
}

TEST(UniformGrid, EmptySetThrows) {
  BoxSet set;
  EXPECT_THROW(UniformGrid grid(set), util::InvalidArgument);
}

TEST(UniformGrid, RepeatQueriesAreConsistent) {
  BoxSet set;
  set.add({{0, 0, 0}, {1, 1, 1}});
  UniformGrid grid(set);
  std::vector<BoxHit> h1, h2;
  const Ray r{{0.5, 0.5, 5}, {0, 0, -1}};
  grid.query(r, h1);
  grid.query(r, h2);  // Epoch stamping must not suppress re-hits.
  EXPECT_EQ(h1.size(), 1u);
  EXPECT_EQ(h2.size(), 1u);
}

}  // namespace
}  // namespace finser::geom
