/// \file test_pipeline_artifact_store.cpp
/// \brief Content-addressed artifact store: integrity, addressing, and
/// degradation semantics (docs/architecture.md).
///
/// The contract under test: put() is atomic and CRC-sealed; try_get() never
/// throws and returns the exact payload only when the blob passes magic,
/// CRC, kind-echo, fingerprint, and length checks — every other outcome is
/// a miss that degrades to recomputation.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "finser/obs/obs.hpp"
#include "finser/pipeline/artifact_store.hpp"
#include "finser/util/fault.hpp"

namespace finser::pipeline {
namespace {

/// Fresh store rooted in a unique temp directory, removed on scope exit.
class TempStore {
 public:
  explicit TempStore(const char* name)
      : root_((std::filesystem::temp_directory_path() / name).string()),
        store_(root_) {
    std::filesystem::remove_all(root_);
  }
  ~TempStore() { std::filesystem::remove_all(root_); }

  const ArtifactStore& operator*() const { return store_; }
  const ArtifactStore* operator->() const { return &store_; }
  const std::string& root() const { return root_; }

 private:
  std::string root_;
  ArtifactStore store_;
};

std::vector<std::uint8_t> payload_bytes() {
  return {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
}

TEST(ArtifactStore, PutThenGetRoundTrips) {
  const TempStore store("finser_art_roundtrip");
  const ArtifactKey key{"unit_test", 0x1234abcdu};

  std::string error;
  ASSERT_TRUE(store->put(key, payload_bytes(), &error)) << error;

  std::vector<std::uint8_t> out;
  std::string reason;
  ASSERT_TRUE(store->try_get(key, out, &reason)) << reason;
  EXPECT_EQ(out, payload_bytes());
}

TEST(ArtifactStore, EmptyPayloadRoundTrips) {
  const TempStore store("finser_art_empty");
  const ArtifactKey key{"unit_test", 7};
  ASSERT_TRUE(store->put(key, {}));
  std::vector<std::uint8_t> out{1, 2, 3};
  ASSERT_TRUE(store->try_get(key, out));
  EXPECT_TRUE(out.empty());
}

TEST(ArtifactStore, MissingArtifactIsAQuietMiss) {
  const TempStore store("finser_art_missing");
  std::vector<std::uint8_t> out;
  std::string reason;
  EXPECT_FALSE(store->try_get(ArtifactKey{"unit_test", 99}, out, &reason));
  EXPECT_EQ(reason, "no artifact");
}

TEST(ArtifactStore, DifferentFingerprintAddressesDifferentBlob) {
  const TempStore store("finser_art_addr");
  ASSERT_TRUE(store->put(ArtifactKey{"k", 1}, {0x01}));
  ASSERT_TRUE(store->put(ArtifactKey{"k", 2}, {0x02}));
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(store->try_get(ArtifactKey{"k", 1}, out));
  EXPECT_EQ(out, std::vector<std::uint8_t>{0x01});
  ASSERT_TRUE(store->try_get(ArtifactKey{"k", 2}, out));
  EXPECT_EQ(out, std::vector<std::uint8_t>{0x02});
}

TEST(ArtifactStore, CorruptBlobIsRejectedByCrc) {
  const TempStore store("finser_art_corrupt");
  const ArtifactKey key{"unit_test", 5};

  // cache_flip corrupts one byte of the first put (offset mod file size).
  util::fault_configure("cache_flip:21");
  ASSERT_TRUE(store->put(key, payload_bytes()));
  util::fault_configure("");

  std::vector<std::uint8_t> out;
  std::string reason;
  EXPECT_FALSE(store->try_get(key, out, &reason));
  EXPECT_NE(reason.find("CRC"), std::string::npos) << reason;

  // A clean rewrite heals the entry.
  ASSERT_TRUE(store->put(key, payload_bytes()));
  EXPECT_TRUE(store->try_get(key, out));
  EXPECT_EQ(out, payload_bytes());
}

TEST(ArtifactStore, BlobRenamedToAnotherFingerprintIsStale) {
  const TempStore store("finser_art_stale");
  const ArtifactKey original{"unit_test", 10};
  const ArtifactKey other{"unit_test", 11};
  ASSERT_TRUE(store->put(original, payload_bytes()));

  // Simulate a mis-filed blob: valid envelope, wrong address.
  std::filesystem::rename(store->path_for(original), store->path_for(other));

  std::vector<std::uint8_t> out;
  std::string reason;
  EXPECT_FALSE(store->try_get(other, out, &reason));
  EXPECT_NE(reason.find("fingerprint mismatch"), std::string::npos) << reason;
}

TEST(ArtifactStore, BlobRenamedToAnotherKindIsMisKeyed) {
  const TempStore store("finser_art_kind");
  const ArtifactKey original{"kind_a", 10};
  const ArtifactKey other{"kind_b", 10};
  ASSERT_TRUE(store->put(original, payload_bytes()));
  std::filesystem::rename(store->path_for(original), store->path_for(other));

  std::vector<std::uint8_t> out;
  std::string reason;
  EXPECT_FALSE(store->try_get(other, out, &reason));
  EXPECT_NE(reason.find("kind mismatch"), std::string::npos) << reason;
}

TEST(ArtifactStore, GarbageFileNeverThrows) {
  const TempStore store("finser_art_garbage");
  const ArtifactKey key{"unit_test", 3};
  std::filesystem::create_directories(store.root());
  {
    std::ofstream os(store->path_for(key), std::ios::binary);
    os << "this is not an artifact";
  }
  std::vector<std::uint8_t> out;
  std::string reason;
  EXPECT_FALSE(store->try_get(key, out, &reason));
  EXPECT_NE(reason.find("magic"), std::string::npos) << reason;

  // Truncated-below-header file.
  {
    std::ofstream os(store->path_for(key), std::ios::binary);
    os << "FN";
  }
  EXPECT_FALSE(store->try_get(key, out, &reason));
  EXPECT_NE(reason.find("too short"), std::string::npos) << reason;
}

TEST(ArtifactStore, ConcurrentWritersSameKeyConverge) {
  const TempStore store("finser_art_race");
  const ArtifactKey key{"unit_test", 77};
  // Content-addressed: every writer of a key writes the same bytes, so any
  // interleaving of the atomic rename leaves a valid blob behind.
  std::vector<std::uint8_t> payload(512);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31u);
  }

  std::vector<std::thread> writers;
  writers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&] {
      for (int rep = 0; rep < 20; ++rep) store->put(key, payload);
    });
  }
  for (std::thread& t : writers) t.join();

  std::vector<std::uint8_t> out;
  std::string reason;
  ASSERT_TRUE(store->try_get(key, out, &reason)) << reason;
  EXPECT_EQ(out, payload);
}

TEST(ArtifactStore, ObsCountersClassifyOutcomes) {
  obs::Registry::global().reset();
  obs::set_enabled(true);
  const TempStore store("finser_art_obs");
  const ArtifactKey key{"unit_test", 1};

  std::vector<std::uint8_t> out;
  EXPECT_FALSE(store->try_get(key, out));  // quiet miss
  ASSERT_TRUE(store->put(key, payload_bytes()));
  EXPECT_TRUE(store->try_get(key, out));  // hit

  util::fault_configure("cache_flip:13");
  ASSERT_TRUE(store->put(key, payload_bytes()));
  util::fault_configure("");
  EXPECT_FALSE(store->try_get(key, out));  // loud reject

  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("pipeline.artifact.misses").total(), 1u);
  EXPECT_EQ(reg.counter("pipeline.artifact.hits").total(), 1u);
  EXPECT_EQ(reg.counter("pipeline.artifact.rejects").total(), 1u);
  EXPECT_EQ(reg.counter("pipeline.artifact.writes").total(), 2u);

  obs::set_enabled(false);
  obs::Registry::global().reset();
}

/// A crash between temp-file creation and rename leaves a `*.tmp` orphan;
/// opening a store over that directory must sweep it (and count the sweep)
/// while leaving committed blobs untouched.
TEST(ArtifactStore, OpeningSweepsOrphanedTmpFiles) {
  const std::string root =
      (std::filesystem::temp_directory_path() / "finser_art_orphans").string();
  std::filesystem::remove_all(root);
  const ArtifactKey key{"unit_test", 5};
  {
    const ArtifactStore writer(root);
    ASSERT_TRUE(writer.put(key, payload_bytes()));
  }
  // Plant what a mid-write kill would leave behind.
  {
    std::ofstream os(root + "/torn_blob.art.tmp", std::ios::binary);
    os << "half-written";
    std::ofstream os2(root + "/another.tmp", std::ios::binary);
  }

  obs::Registry::global().reset();
  obs::set_enabled(true);
  const ArtifactStore reopened(root);
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("pipeline.artifact.orphans_swept").total(), 2u);
  obs::set_enabled(false);
  obs::Registry::global().reset();

  EXPECT_FALSE(std::filesystem::exists(root + "/torn_blob.art.tmp"));
  EXPECT_FALSE(std::filesystem::exists(root + "/another.tmp"));
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(reopened.try_get(key, out)) << "sweep must keep real blobs";
  EXPECT_EQ(out, payload_bytes());

  // Sweeping a directory that does not exist is a quiet no-op.
  EXPECT_EQ(ArtifactStore::sweep_orphans(root + "/nope"), 0u);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace finser::pipeline
