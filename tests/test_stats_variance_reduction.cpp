/// \file test_stats_variance_reduction.cpp
/// \brief Statistical-correctness suite for the variance-reduction layer
/// (finser::stats::vr + the engines' adaptive stopping).
///
/// The tests here are the contract docs/statistics.md states in prose:
///  * every importance estimator is *exactly* unbiased (weighted runs agree
///    with uniform brute force within combined CI);
///  * the reported 95% intervals are calibrated (coverage of a pinned
///    brute-force truth across many seeded replicates);
///  * likelihood-ratio weights obey their closed-form bounds and ESS
///    bookkeeping is exact for unit weights;
///  * energy strata tile the bin exactly (partition of unity, weight 1);
///  * CI-driven early stopping is a pure function of the merged chunk
///    prefix — bit-identical at any thread count.
///
/// Replicate seeds honor FINSER_STATS_SEED (CI runs a small seed matrix);
/// unset, the suite is fully deterministic under seed 1.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "finser/core/array_mc.hpp"
#include "finser/stats/direction.hpp"
#include "finser/stats/rng.hpp"
#include "finser/stats/summary.hpp"
#include "finser/stats/vr.hpp"
#include "finser/util/error.hpp"

namespace finser {
namespace {

using core::ArrayMc;
using core::ArrayMcConfig;
using core::ArrayMcResult;
using core::EnergyPoint;
using core::PofEstimate;
using core::SourceAngularLaw;
using core::SourcePositionSampling;
using sram::ArrayLayout;
using sram::CellGeometry;
using sram::CellSoftErrorModel;
using sram::PofTable;

/// Base seed of the replicate matrices. CI sweeps FINSER_STATS_SEED so the
/// statistical tests are exercised on more than one point set; locally the
/// default keeps every run reproducible.
std::uint64_t stats_seed() {
  const char* s = std::getenv("FINSER_STATS_SEED");
  if (s == nullptr || *s == '\0') return 1;
  return std::strtoull(s, nullptr, 10);
}

/// Synthetic cell model (same construction as test_core_array_mc.cpp): any
/// sensitive deposit above q_thresh flips. Keeps SPICE out of the loop.
CellSoftErrorModel synthetic_model(double vdd, double q_thresh_fc) {
  PofTable t;
  t.vdd_v = vdd;
  t.q_max_fc = 0.4;
  for (auto& s : t.singles) {
    s.nominal_qcrit_fc = q_thresh_fc;
    s.total_samples = 2;
    s.qcrit_samples_fc = {0.8 * q_thresh_fc, 1.2 * q_thresh_fc};
  }
  const util::Axis axis({0.0, q_thresh_fc, 0.4});
  std::vector<double> v2(9, 1.0);
  v2[0] = 0.0;  // Only the all-below-threshold corner never flips.
  for (int p = 0; p < 3; ++p) {
    t.pairs_pv[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v2);
    t.pairs_nominal[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v2);
  }
  std::vector<double> v3(27, 1.0);
  v3[0] = 0.0;
  t.triple_pv = util::Grid3(axis, axis, axis, v3);
  t.triple_nominal = util::Grid3(axis, axis, axis, v3);

  CellSoftErrorModel m;
  m.tables.push_back(std::move(t));
  return m;
}

ArrayMcConfig fast_config(std::size_t strikes = 4000) {
  ArrayMcConfig cfg;
  cfg.strikes = strikes;
  cfg.source_margin_nm = 0.0;
  return cfg;
}

// ---------------------------------------------------------------------------
// relative_halfwidth
// ---------------------------------------------------------------------------

TEST(VrHalfwidth, MatchesDefinitionAndHandlesZeroMean) {
  EXPECT_DOUBLE_EQ(stats::relative_halfwidth(0.2, 0.01),
                   stats::kZ95 * 0.01 / 0.2);
  EXPECT_DOUBLE_EQ(stats::relative_halfwidth(0.0, 0.01), 0.0);
  EXPECT_DOUBLE_EQ(stats::relative_halfwidth(-1.0, 0.01), 0.0);
  stats::CiStopConfig off;
  EXPECT_FALSE(off.enabled());
  off.target = 0.05;
  EXPECT_TRUE(off.enabled());
}

// ---------------------------------------------------------------------------
// FocusPlane
// ---------------------------------------------------------------------------

/// Plane [0,100]×[0,50] with one plain box, one overlapping box, one box
/// clipped by the plane edge and one entirely off-plane (dropped).
stats::FocusPlane test_plane(double alpha) {
  std::vector<stats::FocusBox> boxes = {
      {10.0, 20.0, 10.0, 20.0},    // 100 nm².
      {15.0, 30.0, 12.0, 22.0},    // 150 nm², overlaps the first.
      {-10.0, 5.0, 40.0, 60.0},    // Clipped to [0,5]×[40,50] = 50 nm².
      {200.0, 210.0, 0.0, 10.0},   // Entirely off-plane: dropped.
  };
  return stats::FocusPlane(0.0, 100.0, 0.0, 50.0, std::move(boxes), alpha);
}

TEST(VrFocusPlane, ClipsAndDropsBoxes) {
  const stats::FocusPlane plane = test_plane(0.8);
  EXPECT_EQ(plane.box_count(), 3u);
  EXPECT_DOUBLE_EQ(plane.plane_area(), 5000.0);
  EXPECT_DOUBLE_EQ(plane.focus_area(), 300.0);
  EXPECT_DOUBLE_EQ(plane.alpha(), 0.8);
}

TEST(VrFocusPlane, PdfIsADensity) {
  // MC quadrature of the mixture density over the plane: E[q · A] = 1.
  const stats::FocusPlane plane = test_plane(0.8);
  stats::Rng rng(stats::Rng::derive_seed(stats_seed(), 101));
  stats::RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    const double y = rng.uniform(0.0, 50.0);
    s.add(plane.pdf(x, y) * plane.plane_area());
  }
  EXPECT_NEAR(s.mean(), 1.0, 5.0 * s.stderr_of_mean());
  EXPECT_NEAR(s.mean(), 1.0, 0.08);
  // Off-plane points carry no density (and hence no weight mass).
  EXPECT_DOUBLE_EQ(plane.pdf(-1.0, 25.0), 0.0);
  EXPECT_DOUBLE_EQ(plane.weight(150.0, 25.0), 0.0);
}

TEST(VrFocusPlane, WeightTimesPdfIsTheUniformDensity) {
  const stats::FocusPlane plane = test_plane(0.8);
  // Outside every box, inside a single box, and inside the overlap region.
  const double pts[3][2] = {{60.0, 40.0}, {12.0, 11.0}, {17.0, 15.0}};
  for (const auto& p : pts) {
    const double q = plane.pdf(p[0], p[1]);
    ASSERT_GT(q, 0.0);
    EXPECT_NEAR(plane.weight(p[0], p[1]) * q * plane.plane_area(), 1.0, 1e-12);
  }
  // The overlap is covered twice, so its density strictly exceeds a
  // single-covered point's.
  EXPECT_GT(plane.pdf(17.0, 15.0), plane.pdf(12.0, 11.0));
}

TEST(VrFocusPlane, SamplesAreSelfConsistentAndWeightsBounded) {
  const double alpha = 0.8;
  const stats::FocusPlane plane = test_plane(alpha);
  stats::Rng rng(stats::Rng::derive_seed(stats_seed(), 102));
  const double bound = 1.0 / (1.0 - alpha);
  std::size_t focused = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto s = plane.sample(rng.uniform(), rng.uniform(), rng.uniform());
    EXPECT_GE(s.x, 0.0);
    EXPECT_LE(s.x, 100.0);
    EXPECT_GE(s.y, 0.0);
    EXPECT_LE(s.y, 50.0);
    // The sample's weight is the same exact likelihood ratio weight(x, y)
    // computes — no separate code path to drift out of sync.
    EXPECT_DOUBLE_EQ(s.weight, plane.weight(s.x, s.y));
    EXPECT_GT(s.weight, 0.0);
    EXPECT_LE(s.weight, bound * (1.0 + 1e-12));
    if (s.focused) ++focused;
  }
  // The focus branch fires with probability alpha.
  EXPECT_NEAR(static_cast<double>(focused) / 5000.0, alpha, 0.03);
}

TEST(VrFocusPlane, ImportanceEstimatorIsUnbiased) {
  // Estimate the area fraction of a fixed region two ways: plain uniform MC
  // and the focus-plane mixture with likelihood-ratio weights. Both must
  // recover the exact answer — the weights undo the sampling bias exactly.
  const stats::FocusPlane plane = test_plane(0.8);
  auto f = [](double x, double y) {
    return (x < 30.0 && y < 25.0) ? 1.0 : 0.0;
  };
  const double truth = (30.0 * 25.0) / 5000.0;  // 0.15.
  stats::Rng rng(stats::Rng::derive_seed(stats_seed(), 103));
  stats::RunningStats is;
  for (int i = 0; i < 50000; ++i) {
    const auto s = plane.sample(rng.uniform(), rng.uniform(), rng.uniform());
    is.add(s.weight * f(s.x, s.y));
  }
  EXPECT_NEAR(is.mean(), truth, 5.0 * is.stderr_of_mean());
  EXPECT_NEAR(is.mean(), truth, 0.03);
}

TEST(VrFocusPlane, NoBoxesDegradesToUniform) {
  stats::FocusPlane plane(0.0, 100.0, 0.0, 50.0, {}, 0.9);
  EXPECT_DOUBLE_EQ(plane.alpha(), 0.0);
  EXPECT_EQ(plane.box_count(), 0u);
  const auto s = plane.sample(0.25, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(s.weight, 1.0);
  EXPECT_FALSE(s.focused);
  EXPECT_DOUBLE_EQ(s.x, 50.0);
  EXPECT_DOUBLE_EQ(s.y, 25.0);
}

TEST(VrFocusPlane, RejectsBadInputs) {
  EXPECT_THROW(stats::FocusPlane(0.0, 0.0, 0.0, 50.0, {}, 0.5),
               util::InvalidArgument);
  EXPECT_THROW(stats::FocusPlane(0.0, 100.0, 0.0, 50.0, {}, 1.0),
               util::InvalidArgument);
  EXPECT_THROW(stats::FocusPlane(0.0, 100.0, 0.0, 50.0, {}, -0.1),
               util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Direction mixture
// ---------------------------------------------------------------------------

TEST(VrDirection, BetaZeroReproducesIsotropicExactly) {
  stats::Rng a(stats::Rng::derive_seed(stats_seed(), 104));
  stats::Rng b(stats::Rng::derive_seed(stats_seed(), 104));
  for (int i = 0; i < 256; ++i) {
    const auto s = stats::biased_hemisphere_down(a, 0.0);
    const auto iso = stats::isotropic_hemisphere_down(b);
    EXPECT_DOUBLE_EQ(s.weight, 1.0);
    EXPECT_DOUBLE_EQ(s.dir.x, iso.x);
    EXPECT_DOUBLE_EQ(s.dir.y, iso.y);
    EXPECT_DOUBLE_EQ(s.dir.z, iso.z);
  }
}

TEST(VrDirection, WeightIsTheExactLikelihoodRatio) {
  const double beta = 0.6;
  stats::Rng rng(stats::Rng::derive_seed(stats_seed(), 105));
  for (int i = 0; i < 1000; ++i) {
    const auto s = stats::biased_hemisphere_down(rng, beta);
    EXPECT_LT(s.dir.z, 0.0);
    EXPECT_DOUBLE_EQ(
        s.weight, 1.0 / (2.0 * beta * std::abs(s.dir.z) + (1.0 - beta)));
    // Closed-form bounds of the mixture ratio.
    EXPECT_GE(s.weight, 1.0 / (1.0 + beta) - 1e-15);
    EXPECT_LE(s.weight, 1.0 / (1.0 - beta) + 1e-15);
  }
}

TEST(VrDirection, WeightedMomentsMatchIsotropicLaw) {
  // Under the isotropic hemisphere law E[1] = 1 and E[|z|] = 1/2; the
  // weighted estimator under the mixture must recover both.
  const double beta = 0.7;
  stats::Rng rng(stats::Rng::derive_seed(stats_seed(), 106));
  stats::RunningStats mass, mz;
  for (int i = 0; i < 200000; ++i) {
    const auto s = stats::biased_hemisphere_down(rng, beta);
    mass.add(s.weight);
    mz.add(s.weight * std::abs(s.dir.z));
  }
  EXPECT_NEAR(mass.mean(), 1.0, 5.0 * mass.stderr_of_mean());
  EXPECT_NEAR(mz.mean(), 0.5, 5.0 * mz.stderr_of_mean());
  EXPECT_NEAR(mass.mean(), 1.0, 0.01);
  EXPECT_NEAR(mz.mean(), 0.5, 0.01);
}

TEST(VrDirection, RejectsBadBeta) {
  stats::Rng rng(1);
  EXPECT_THROW(stats::biased_hemisphere_down(rng, 1.0), util::InvalidArgument);
  EXPECT_THROW(stats::biased_hemisphere_down(rng, -0.2), util::InvalidArgument);
}

TEST(VrDirection, GrazingDeltaZeroReproducesIsotropicExactly) {
  stats::Rng a(stats::Rng::derive_seed(stats_seed(), 107));
  stats::Rng b(stats::Rng::derive_seed(stats_seed(), 107));
  for (int i = 0; i < 256; ++i) {
    const auto s = stats::grazing_hemisphere_down(a, 0.0);
    const auto iso = stats::isotropic_hemisphere_down(b);
    EXPECT_DOUBLE_EQ(s.weight, 1.0);
    EXPECT_DOUBLE_EQ(s.dir.x, iso.x);
    EXPECT_DOUBLE_EQ(s.dir.y, iso.y);
    EXPECT_DOUBLE_EQ(s.dir.z, iso.z);
  }
}

TEST(VrDirection, GrazingWeightIsTheExactLikelihoodRatio) {
  const double delta = 0.9;
  const double log_span = std::log1p(1.0 / stats::kGrazingZ0);
  stats::Rng rng(stats::Rng::derive_seed(stats_seed(), 108));
  for (int i = 0; i < 1000; ++i) {
    const auto s = stats::grazing_hemisphere_down(rng, delta);
    EXPECT_LT(s.dir.z, 0.0);
    const double q =
        delta / ((std::abs(s.dir.z) + stats::kGrazingZ0) * log_span) +
        (1.0 - delta);
    EXPECT_DOUBLE_EQ(s.weight, 1.0 / q);
    // The mixture's uniform floor bounds every weight.
    EXPECT_LE(s.weight, 1.0 / (1.0 - delta) + 1e-12);
    EXPECT_GT(s.weight, 0.0);
    // Unit direction on the downward hemisphere.
    EXPECT_NEAR(s.dir.norm(), 1.0, 1e-12);
  }
}

TEST(VrDirection, GrazingWeightedMomentsMatchIsotropicLaw) {
  // Under the isotropic hemisphere law E[1] = 1 and E[|z|] = 1/2; the
  // weighted estimator under the grazing mixture must recover both even
  // though small |z| is oversampled by more than an order of magnitude.
  const double delta = 0.9;
  stats::Rng rng(stats::Rng::derive_seed(stats_seed(), 109));
  stats::RunningStats mass, mz;
  for (int i = 0; i < 200000; ++i) {
    const auto s = stats::grazing_hemisphere_down(rng, delta);
    mass.add(s.weight);
    mz.add(s.weight * std::abs(s.dir.z));
  }
  EXPECT_NEAR(mass.mean(), 1.0, 5.0 * mass.stderr_of_mean());
  EXPECT_NEAR(mz.mean(), 0.5, 5.0 * mz.stderr_of_mean());
  EXPECT_NEAR(mass.mean(), 1.0, 0.01);
  EXPECT_NEAR(mz.mean(), 0.5, 0.01);
}

TEST(VrDirection, GrazingRejectsBadDelta) {
  stats::Rng rng(1);
  EXPECT_THROW(stats::grazing_hemisphere_down(rng, 1.0),
               util::InvalidArgument);
  EXPECT_THROW(stats::grazing_hemisphere_down(rng, -0.1),
               util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Scrambled Sobol
// ---------------------------------------------------------------------------

TEST(VrSobol, DeterministicGivenScrambleSeed) {
  const stats::SobolSequence a(42), b(42), c(43);
  bool any_differs = false;
  for (std::uint64_t i = 0; i < 64; ++i) {
    for (std::size_t d = 0; d < stats::SobolSequence::kDims; ++d) {
      const double p = a.point(i, d);
      EXPECT_GE(p, 0.0);
      EXPECT_LT(p, 1.0);
      EXPECT_DOUBLE_EQ(p, b.point(i, d));
      if (p != c.point(i, d)) any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);  // The digital shift actually scrambles.
}

TEST(VrSobol, IndexingIsOrderIndependent) {
  // point(index, dim) is a pure function of the index — the QMC analogue of
  // the counter-based RNG streams: any chunk/worker asking for point s gets
  // the same value, in any order.
  const stats::SobolSequence seq(stats_seed());
  std::vector<double> forward;
  for (std::uint64_t i = 0; i < 128; ++i) forward.push_back(seq.point(i, 2));
  for (std::uint64_t i = 128; i-- > 0;) {
    EXPECT_DOUBLE_EQ(seq.point(i, 2), forward[i]);
  }
}

TEST(VrSobol, DyadicStratificationSurvivesScrambling) {
  // The first 2^m points of each dimension hit each dyadic interval of
  // width 2^-m exactly once; a digital (XOR) shift permutes those intervals
  // bijectively, so the property must survive scrambling.
  const stats::SobolSequence seq(stats::Rng::derive_seed(stats_seed(), 107));
  constexpr std::uint64_t kN = 16;
  for (std::size_t d = 0; d < stats::SobolSequence::kDims; ++d) {
    std::vector<int> hits(kN, 0);
    for (std::uint64_t i = 0; i < kN; ++i) {
      const auto bin =
          static_cast<std::size_t>(seq.point(i, d) * static_cast<double>(kN));
      ASSERT_LT(bin, kN);
      ++hits[bin];
    }
    for (std::size_t b = 0; b < kN; ++b) {
      EXPECT_EQ(hits[b], 1) << "dim " << d << " bin " << b;
    }
  }
}

TEST(VrSobol, LeadingPairIsATwoDimensionalNet) {
  // Dimensions (0, 1) form a (0,2)-sequence in base 2: the first 16 points
  // put exactly one point in each cell of the 4×4 dyadic grid.
  const stats::SobolSequence seq(stats::Rng::derive_seed(stats_seed(), 108));
  int cells[4][4] = {};
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto cx = static_cast<std::size_t>(seq.point(i, 0) * 4.0);
    const auto cy = static_cast<std::size_t>(seq.point(i, 1) * 4.0);
    ASSERT_LT(cx, 4u);
    ASSERT_LT(cy, 4u);
    ++cells[cx][cy];
  }
  for (auto& row : cells) {
    for (int c : row) EXPECT_EQ(c, 1);
  }
}

TEST(VrSobol, RejectsBadDimension) {
  const stats::SobolSequence seq(1);
  EXPECT_THROW(seq.point(0, stats::SobolSequence::kDims),
               util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Engine-level unbiasedness (importance sampling, QMC, energy strata)
// ---------------------------------------------------------------------------

TEST(VrArrayMc, ImportanceSamplingIsUnbiased) {
  // Importance-sampled POF must agree with the uniform brute-force estimate
  // within the combined CI — under the hard case (isotropic directions,
  // where off-focus grazing tracks still hit and carry the large weights).
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig uni = fast_config(8000);
  ArrayMcConfig imp = fast_config(8000);
  imp.position = SourcePositionSampling::kImportance;
  ArrayMc mc_u(layout, model, uni);
  ArrayMc mc_i(layout, model, imp);
  const std::uint64_t seed = stats::Rng::derive_seed(stats_seed(), 109);
  const PofEstimate eu = mc_u.run(phys::Species::kAlpha, 1.0, seed).est[0][1];
  const PofEstimate ei =
      mc_i.run(phys::Species::kAlpha, 1.0, seed + 1).est[0][1];
  EXPECT_GT(ei.tot, 0.0);
  EXPECT_NEAR(ei.tot, eu.tot, 5.0 * (eu.tot_se + ei.tot_se));
  EXPECT_NEAR(ei.seu, eu.seu, 5.0 * (eu.seu_se + ei.seu_se));
  EXPECT_NEAR(ei.tot, ei.seu + ei.mbu, 1e-12);  // Eq. 6 survives weighting.
  // Weighted-estimator bookkeeping: ESS is real and bounded by the strike
  // count; the uniform run's ESS is exactly its strike count.
  EXPECT_GT(ei.ess, 0.0);
  EXPECT_LE(ei.ess, static_cast<double>(ei.strikes));
  EXPECT_LT(ei.ess, static_cast<double>(ei.strikes));  // Weights do vary.
  EXPECT_DOUBLE_EQ(eu.ess, static_cast<double>(eu.strikes));
}

TEST(VrArrayMc, ImportanceSamplingReducesSpread) {
  // Run-to-run spread of the estimate across seeds, uniform vs importance.
  // Measured under a near-vertical beam so the position sampling (the thing
  // the focus mixture improves) dominates the estimator variance; under an
  // isotropic source the direction/transport randomness adds a floor both
  // estimators share (the bench measures that regime; docs/statistics.md).
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig uni = fast_config(2000);
  uni.source_margin_nm = 300.0;
  uni.angular = SourceAngularLaw::kBeam;
  uni.beam_direction = {0.1, 0.05, -1.0};
  ArrayMcConfig imp = uni;
  imp.position = SourcePositionSampling::kImportance;
  ArrayMc mc_u(layout, model, uni);
  ArrayMc mc_i(layout, model, imp);
  const std::uint64_t base = stats::Rng::derive_seed(stats_seed(), 110);
  auto spread = [&](const ArrayMc& mc) {
    stats::RunningStats s;
    for (std::uint64_t k = 0; k < 12; ++k) {
      s.add(mc.run(phys::Species::kAlpha, 1.0, base + k).est[0][1].tot);
    }
    return s;
  };
  const stats::RunningStats su = spread(mc_u);
  const stats::RunningStats si = spread(mc_i);
  // Same estimand...
  EXPECT_NEAR(si.mean(), su.mean(),
              5.0 * (su.stderr_of_mean() + si.stderr_of_mean()));
  // ...at visibly lower variance.
  EXPECT_LT(si.stddev(), su.stddev());
}

TEST(VrArrayMc, SobolPositionsAgreeWithPseudoRandom) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig prng = fast_config(6000);
  ArrayMcConfig qmc = fast_config(6000);
  qmc.sampling.qmc = stats::QmcMode::kSobol;
  ArrayMc mc_p(layout, model, prng);
  ArrayMc mc_q(layout, model, qmc);
  const std::uint64_t seed = stats::Rng::derive_seed(stats_seed(), 111);
  const PofEstimate ep = mc_p.run(phys::Species::kAlpha, 1.0, seed).est[0][1];
  const PofEstimate eq = mc_q.run(phys::Species::kAlpha, 1.0, seed).est[0][1];
  EXPECT_GT(eq.tot, 0.0);
  EXPECT_NEAR(eq.tot, ep.tot, 5.0 * (ep.tot_se + eq.tot_se));
  // QMC positions keep unit weights: ESS stays exactly the strike count.
  EXPECT_DOUBLE_EQ(eq.ess, static_cast<double>(eq.strikes));
}

TEST(VrArrayMc, SobolDrivesImportanceMixture) {
  // QMC selector/position dimensions through the focus mixture: still
  // unbiased (the weight is a function of the realized point only).
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig uni = fast_config(8000);
  ArrayMcConfig isq = fast_config(8000);
  isq.position = SourcePositionSampling::kImportance;
  isq.sampling.qmc = stats::QmcMode::kSobol;
  ArrayMc mc_u(layout, model, uni);
  ArrayMc mc_q(layout, model, isq);
  const std::uint64_t seed = stats::Rng::derive_seed(stats_seed(), 112);
  const PofEstimate eu = mc_u.run(phys::Species::kAlpha, 1.0, seed).est[0][1];
  const PofEstimate eq =
      mc_q.run(phys::Species::kAlpha, 1.0, seed + 7).est[0][1];
  EXPECT_GT(eq.tot, 0.0);
  EXPECT_NEAR(eq.tot, eu.tot, 5.0 * (eu.tot_se + eq.tot_se));
}

TEST(VrArrayMc, DirectionBiasIsUnbiased) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig iso = fast_config(8000);
  ArrayMcConfig bias = fast_config(8000);
  bias.sampling.direction_bias = 0.5;
  ArrayMc mc_i(layout, model, iso);
  ArrayMc mc_b(layout, model, bias);
  const std::uint64_t seed = stats::Rng::derive_seed(stats_seed(), 113);
  const PofEstimate ei = mc_i.run(phys::Species::kAlpha, 1.0, seed).est[0][1];
  const PofEstimate eb =
      mc_b.run(phys::Species::kAlpha, 1.0, seed + 3).est[0][1];
  EXPECT_GT(eb.tot, 0.0);
  EXPECT_NEAR(eb.tot, ei.tot, 5.0 * (ei.tot_se + eb.tot_se));
  // Mixture weights are bounded in [1/(1+β), 1/(1-β)], so the ESS cannot
  // collapse: (Σw)²/Σw² ≥ n · (1-β)²/(1+β)²-ish — assert a conservative
  // floor plus the strict ceiling.
  EXPECT_GT(eb.ess, 0.25 * static_cast<double>(eb.strikes));
  EXPECT_LT(eb.ess, static_cast<double>(eb.strikes));
}

TEST(VrArrayMc, EnergyStrataTileTheBinExactly) {
  // K log-uniform strata keyed by the global strike index have exactly unit
  // weight and the same estimand as K = 1 (plain log-uniform over the bin):
  // the bin-average POF. Chunk size deliberately does not divide the strike
  // count, so strata wrap across chunk boundaries.
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig one = fast_config(7000);
  one.chunk = 512;
  one.sampling.energy_strata = 1;
  ArrayMcConfig four = one;
  four.sampling.energy_strata = 4;
  ArrayMc mc_1(layout, model, one);
  ArrayMc mc_4(layout, model, four);
  const EnergyPoint bin{phys::Species::kAlpha, 1.0, 0.5, 2.0};
  const std::uint64_t seed = stats::Rng::derive_seed(stats_seed(), 114);
  const PofEstimate e1 = mc_1.run_point(bin, seed).est[0][1];
  const PofEstimate e4 = mc_4.run_point(bin, seed + 5).est[0][1];
  EXPECT_GT(e1.tot, 0.0);
  EXPECT_GT(e4.tot, 0.0);
  EXPECT_NEAR(e4.tot, e1.tot, 5.0 * (e1.tot_se + e4.tot_se));
  // Partition of unity: stratification never introduces weights.
  EXPECT_DOUBLE_EQ(e1.ess, static_cast<double>(e1.strikes));
  EXPECT_DOUBLE_EQ(e4.ess, static_cast<double>(e4.strikes));
}

TEST(VrArrayMc, StrataAreNoOpWithoutBinBounds) {
  // A point energy (no bin range) ignores energy_strata entirely — the run
  // is byte-identical to the unstratified configuration.
  const ArrayLayout layout(2, 2, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  ArrayMcConfig plain = fast_config(2000);
  ArrayMcConfig strat = plain;
  strat.sampling.energy_strata = 6;
  ArrayMc mc_p(layout, model, plain);
  ArrayMc mc_s(layout, model, strat);
  const auto a = mc_p.run(phys::Species::kAlpha, 1.0, 77);
  const auto b = mc_s.run(phys::Species::kAlpha, 1.0, 77);
  EXPECT_TRUE(core::encode_result(a) == core::encode_result(b));
}

TEST(VrArrayMc, DefaultSamplingIsByteIdenticalToLegacyUniform) {
  // The whole VR layer defaults to off: a default SamplingConfig +
  // disabled CI stopping must reproduce the pre-VR uniform estimator
  // bit-for-bit (the golden figures pin this globally; this is the local
  // witness).
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig a = fast_config(3000);
  ArrayMcConfig b = fast_config(3000);
  b.sampling = stats::SamplingConfig{};
  b.ci = stats::CiStopConfig{};
  b.ci.target = 0.0;
  ArrayMc mc_a(layout, model, a);
  ArrayMc mc_b(layout, model, b);
  const auto ra = mc_a.run(phys::Species::kAlpha, 1.0, 2024);
  const auto rb = mc_b.run(phys::Species::kAlpha, 1.0, 2024);
  EXPECT_TRUE(core::encode_result(ra) == core::encode_result(rb));
  EXPECT_EQ(ra.units_used, ra.units_total);
  EXPECT_FALSE(ra.stopped_early);
}

TEST(VrArrayMc, RejectsBadVrInputs) {
  const ArrayLayout layout(2, 2, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  {
    ArrayMcConfig cfg = fast_config();
    cfg.sampling.direction_bias = 1.0;
    EXPECT_THROW(ArrayMc(layout, model, cfg), util::InvalidArgument);
  }
  {
    ArrayMcConfig cfg = fast_config();
    cfg.angular = SourceAngularLaw::kCosine;
    cfg.sampling.direction_bias = 0.3;
    EXPECT_THROW(ArrayMc(layout, model, cfg), util::InvalidArgument);
  }
  {
    ArrayMcConfig cfg = fast_config();
    cfg.position = SourcePositionSampling::kStratified;
    cfg.sampling.qmc = stats::QmcMode::kSobol;
    EXPECT_THROW(ArrayMc(layout, model, cfg), util::InvalidArgument);
  }
  {
    ArrayMcConfig cfg = fast_config();
    cfg.position = SourcePositionSampling::kImportance;
    cfg.sampling.focus_fraction = 1.0;
    EXPECT_THROW(ArrayMc(layout, model, cfg), util::InvalidArgument);
  }
  {
    ArrayMcConfig cfg = fast_config();
    cfg.position = SourcePositionSampling::kImportance;
    cfg.sampling.focus_margin_nm = -1.0;
    EXPECT_THROW(ArrayMc(layout, model, cfg), util::InvalidArgument);
  }
  {
    ArrayMcConfig cfg = fast_config();
    cfg.sampling.grazing_bias = 1.0;
    EXPECT_THROW(ArrayMc(layout, model, cfg), util::InvalidArgument);
  }
  {
    ArrayMcConfig cfg = fast_config();
    cfg.sampling.grazing_bias = -0.5;
    EXPECT_THROW(ArrayMc(layout, model, cfg), util::InvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// CI coverage calibration
// ---------------------------------------------------------------------------

TEST(VrCoverage, ImportanceIntervalsCoverBruteForceTruth) {
  // Calibration of the reported 95% intervals for the *weighted* estimator:
  // across many seeded replicates, est ± z·se must cover a pinned
  // brute-force truth at (roughly) the nominal rate. The truth itself is a
  // large uniform run; its own (small) uncertainty widens the acceptance
  // band, which can only make observed coverage conservative.
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  const std::uint64_t base = stats::Rng::derive_seed(stats_seed(), 115);

  ArrayMcConfig big = fast_config(96000);
  ArrayMc mc_truth(layout, model, big);
  const PofEstimate truth =
      mc_truth.run(phys::Species::kAlpha, 1.0, base).est[0][1];
  ASSERT_GT(truth.tot, 0.0);

  ArrayMcConfig rep = fast_config(2000);
  rep.position = SourcePositionSampling::kImportance;
  ArrayMc mc_rep(layout, model, rep);
  constexpr int kReplicates = 60;
  int covered = 0;
  for (int i = 0; i < kReplicates; ++i) {
    const PofEstimate e =
        mc_rep.run(phys::Species::kAlpha, 1.0, base + 1 + std::uint64_t(i))
            .est[0][1];
    const double halfwidth = stats::kZ95 * (e.tot_se + truth.tot_se);
    if (std::abs(e.tot - truth.tot) <= halfwidth) ++covered;
  }
  // Nominal coverage is 95%; demand ≥ 85% so the test tolerates replicate
  // noise (binomial sd over 60 replicates ≈ 2.8%) without going blind to a
  // genuinely mis-calibrated SE (which shows up as coverage ≪ 80%).
  EXPECT_GE(covered, 51) << "covered " << covered << "/" << kReplicates;
}

// ---------------------------------------------------------------------------
// Adaptive stopping
// ---------------------------------------------------------------------------

TEST(VrAdaptiveStop, StopsEarlyAndMeetsTarget) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig cfg = fast_config(40000);
  cfg.chunk = 256;
  cfg.ci.target = 0.25;
  cfg.ci.min_chunks = 4;
  ArrayMc mc(layout, model, cfg);
  const auto res = mc.run(phys::Species::kAlpha, 1.0, 9001);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_LT(res.units_used, res.units_total);
  EXPECT_EQ(res.units_total, 40000u);
  EXPECT_GE(res.units_used, cfg.ci.min_chunks * cfg.chunk);
  // The stopper works at chunk granularity.
  EXPECT_EQ(res.units_used % cfg.chunk, 0u);
  for (const auto& modes : res.est) {
    for (const PofEstimate& e : modes) {
      EXPECT_EQ(e.strikes, res.units_used);
      // The achieved CI honours the target on every (vdd, mode) channel —
      // the stopping predicate is the max over all of them.
      EXPECT_LE(stats::relative_halfwidth(e.tot, e.tot_se), cfg.ci.target);
    }
  }
}

TEST(VrAdaptiveStop, UnreachableTargetRunsTheFullBudget) {
  const ArrayLayout layout(2, 2, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  ArrayMcConfig cfg = fast_config(3000);
  cfg.chunk = 256;
  cfg.ci.target = 1e-6;  // Unreachable within 3000 strikes.
  ArrayMc mc(layout, model, cfg);
  const auto res = mc.run(phys::Species::kAlpha, 1.0, 9002);
  EXPECT_FALSE(res.stopped_early);
  EXPECT_EQ(res.units_used, res.units_total);
  EXPECT_EQ(res.units_used, 3000u);
  // The budget ceiling is a correctness boundary, not a failure: estimates
  // are the same as an unstopped run with the same seed.
  ArrayMcConfig plain = fast_config(3000);
  plain.chunk = 256;
  ArrayMc mc_plain(layout, model, plain);
  const auto ref = mc_plain.run(phys::Species::kAlpha, 1.0, 9002);
  EXPECT_DOUBLE_EQ(res.est[0][1].tot, ref.est[0][1].tot);
  EXPECT_DOUBLE_EQ(res.est[0][0].mbu, ref.est[0][0].mbu);
}

TEST(VrAdaptiveStop, StoppingDecisionIsThreadCountInvariant) {
  // The stopping decision is a pure function of the merged chunk prefix at
  // deterministic round boundaries — so the *entire result*, including how
  // many units were consumed, is byte-identical at any thread count.
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig base = fast_config(40000);
  base.chunk = 256;
  base.ci.target = 0.25;
  base.ci.min_chunks = 4;
  std::vector<std::uint8_t> reference;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    ArrayMcConfig cfg = base;
    cfg.threads = threads;
    ArrayMc mc(layout, model, cfg);
    const auto res = mc.run(phys::Species::kAlpha, 1.0, 9003);
    EXPECT_TRUE(res.stopped_early);
    const auto bytes = core::encode_result(res);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_TRUE(bytes == reference) << "threads=" << threads;
    }
  }
}

TEST(VrAdaptiveStop, ImportanceAndStoppingCompose) {
  // The two tentpole halves together: importance sampling converges to the
  // CI target in (far) fewer strikes than the budget, and the result still
  // agrees with uniform brute force.
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig cfg = fast_config(60000);
  cfg.chunk = 256;
  cfg.position = SourcePositionSampling::kImportance;
  cfg.ci.target = 0.2;
  cfg.ci.min_chunks = 4;
  ArrayMc mc(layout, model, cfg);
  const std::uint64_t seed = stats::Rng::derive_seed(stats_seed(), 116);
  const auto res = mc.run(phys::Species::kAlpha, 1.0, seed);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_LT(res.units_used, res.units_total / 2);

  ArrayMcConfig uni = fast_config(8000);
  ArrayMc mc_u(layout, model, uni);
  const PofEstimate eu =
      mc_u.run(phys::Species::kAlpha, 1.0, seed + 1).est[0][1];
  const PofEstimate ei = res.est[0][1];
  EXPECT_NEAR(ei.tot, eu.tot, 5.0 * (eu.tot_se + ei.tot_se));
}

}  // namespace
}  // namespace finser
