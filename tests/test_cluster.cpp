/// \file test_cluster.cpp
/// \brief Correlated multi-node charge collection (docs/charge_sharing.md):
/// tile bookkeeping, the saturating multiplicity convolution, the joint
/// multi-cell simulator, the memoized cluster POF surface, and the
/// cluster-aware array engine — including the contract that `cluster = 1x1`
/// is byte-identical to the independent per-cell pipeline at every thread
/// count and lane width.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>
#include <vector>

#include "finser/core/array_mc.hpp"
#include "finser/core/pof_combine.hpp"
#include "finser/obs/obs.hpp"
#include "finser/spice/batch.hpp"
#include "finser/sram/cluster.hpp"
#include "finser/util/error.hpp"

namespace finser::sram {
namespace {

// --- tiling bookkeeping -----------------------------------------------------

TEST(ClusterMode, NamesRoundTrip) {
  for (ClusterMode mode :
       {ClusterMode::k1x1, ClusterMode::k2x2, ClusterMode::k1x4}) {
    const auto back = cluster_mode_from(cluster_mode_name(mode));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, mode);
  }
  EXPECT_FALSE(cluster_mode_from("3x3").has_value());
  EXPECT_FALSE(cluster_mode_from("").has_value());
  EXPECT_EQ(cluster_rows(ClusterMode::k2x2), 2u);
  EXPECT_EQ(cluster_cols(ClusterMode::k2x2), 2u);
  EXPECT_EQ(cluster_rows(ClusterMode::k1x4), 1u);
  EXPECT_EQ(cluster_cols(ClusterMode::k1x4), 4u);
  EXPECT_FALSE(ClusterConfig{}.enabled());
}

TEST(ClusterTiling, RaggedTilesAtOddArraySizes) {
  // 5x5 array under 2x2 tiles: 3 ragged tile columns and rows. Cells agree
  // on a tile id iff they share (row/2, col/2); border cells (row or col 4)
  // land in smaller tiles of their own.
  const std::size_t cols = 5;
  for (std::uint32_t r1 = 0; r1 < 5; ++r1) {
    for (std::uint32_t c1 = 0; c1 < 5; ++c1) {
      for (std::uint32_t r2 = 0; r2 < 5; ++r2) {
        for (std::uint32_t c2 = 0; c2 < 5; ++c2) {
          const bool same_tile = (r1 / 2 == r2 / 2) && (c1 / 2 == c2 / 2);
          EXPECT_EQ(cluster_tile_id(r1, c1, cols, 2, 2) ==
                        cluster_tile_id(r2, c2, cols, 2, 2),
                    same_tile)
              << "(" << r1 << "," << c1 << ") vs (" << r2 << "," << c2 << ")";
        }
      }
    }
  }
  // Corner cell (4,4) is alone in its 1x1 ragged tile, at local index 0.
  EXPECT_EQ(cluster_local_index(4, 4, 2, 2), 0);
  // 1x4 tiles on a 7-wide row: tile breaks at column 4; the ragged tail
  // {4,5,6} keeps ascending locals 0,1,2.
  EXPECT_NE(cluster_tile_id(0, 3, 7, 1, 4), cluster_tile_id(0, 4, 7, 1, 4));
  EXPECT_EQ(cluster_local_index(0, 4, 1, 4), 0);
  EXPECT_EQ(cluster_local_index(0, 6, 1, 4), 2);
}

TEST(ClusterTiling, AscendingCellOrderGivesAscendingLocals) {
  // The engine sorts touched cells by (tile, flat cell index) and relies on
  // ascending cell index within one tile implying strictly ascending local
  // indices — the surface's canonical key order.
  for (const auto& [tr, tc] : {std::pair<std::size_t, std::size_t>{2, 2},
                               std::pair<std::size_t, std::size_t>{1, 4}}) {
    const std::size_t rows = 5, cols = 7;
    std::map<std::uint32_t, std::vector<std::uint8_t>> locals_by_tile;
    for (std::uint32_t r = 0; r < rows; ++r) {
      for (std::uint32_t c = 0; c < cols; ++c) {
        // Flat cell index order is exactly this double loop's order.
        locals_by_tile[cluster_tile_id(r, c, cols, tr, tc)].push_back(
            cluster_local_index(r, c, tr, tc));
      }
    }
    for (const auto& [tile, locals] : locals_by_tile) {
      for (std::size_t i = 1; i < locals.size(); ++i) {
        EXPECT_LT(locals[i - 1], locals[i]) << "tile " << tile;
      }
    }
  }
}

TEST(ClusterTiling, AdjacentCellsAcrossTileBoundarySplit) {
  // A grazing track crossing columns 1 and 2 spans two 2x2 tiles — the
  // engine must price the two fragments independently.
  EXPECT_NE(cluster_tile_id(0, 1, 8, 2, 2), cluster_tile_id(0, 2, 8, 2, 2));
  EXPECT_NE(cluster_tile_id(1, 0, 8, 2, 2), cluster_tile_id(2, 0, 8, 2, 2));
  EXPECT_EQ(cluster_tile_id(0, 0, 8, 2, 2), cluster_tile_id(1, 1, 8, 2, 2));
}

TEST(ClusterTiling, InterleavingDistanceDecouplesCorrelation) {
  // ECC sizing: bits of one logical word placed >= tile_cols columns apart
  // (and >= tile_rows rows apart) can never share a cluster tile, so the
  // correlated model cannot couple them — the layout-level guarantee that
  // word-interleaving defeats intra-tile charge sharing (sram::ArrayLayout
  // cells are addressed by the same row/col grid the tiling uses).
  const std::size_t rows = 9, cols = 9;
  for (const auto& [tr, tc] : {std::pair<std::size_t, std::size_t>{2, 2},
                               std::pair<std::size_t, std::size_t>{1, 4}}) {
    for (std::uint32_t r = 0; r < rows; ++r) {
      for (std::uint32_t c = 0; c < cols; ++c) {
        // Any cell >= one tile extent away in either axis is in a different
        // tile, so interleaved bits never couple.
        if (c + tc < cols) {
          EXPECT_NE(cluster_tile_id(r, c, cols, tr, tc),
                    cluster_tile_id(r, c + static_cast<std::uint32_t>(tc),
                                    cols, tr, tc));
        }
        if (r + tr < rows) {
          EXPECT_NE(cluster_tile_id(r, c, cols, tr, tc),
                    cluster_tile_id(r + static_cast<std::uint32_t>(tr), c,
                                    cols, tr, tc));
        }
      }
    }
  }
}

// --- saturating multiplicity convolution ------------------------------------

TEST(ConvolveMultiplicity, BaseDistributionIsIdentity) {
  std::array<double, core::kMaxMultiplicity> dist{};
  dist[0] = 0.25;
  dist[1] = 0.5;
  dist[3] = 0.25;
  const auto out = core::convolve_multiplicity(dist, {1.0});
  for (std::size_t n = 0; n < core::kMaxMultiplicity; ++n) {
    EXPECT_DOUBLE_EQ(out[n], dist[n]);
  }
}

TEST(ConvolveMultiplicity, MatchesPoissonBinomialFactorization) {
  // Convolving the per-cell DP of {p1} with the law of an independent cell
  // {1-p2, p2} must equal the joint DP of {p1, p2}.
  const double p1 = 0.3, p2 = 0.2;
  const auto joint = core::multiplicity_distribution({p1, p2});
  const auto left = core::multiplicity_distribution({p1});
  const auto out = core::convolve_multiplicity(left, {1.0 - p2, p2});
  for (std::size_t n = 0; n < core::kMaxMultiplicity; ++n) {
    EXPECT_NEAR(out[n], joint[n], 1e-15) << "bin " << n;
  }
}

TEST(ConvolveMultiplicity, SaturatesIntoLastBinAndCounts) {
  obs::Registry::global().reset();
  obs::set_enabled(true);
  std::array<double, core::kMaxMultiplicity> dist{};
  dist[core::kMaxMultiplicity - 1] = 1.0;  // already at "8 or more"
  const std::vector<double> q = {0.5, 0.25, 0.25};  // up to 2 more flips
  const auto out = core::convolve_multiplicity(dist, q);
  EXPECT_DOUBLE_EQ(out[core::kMaxMultiplicity - 1], 1.0);
  double sum = 0.0;
  for (double v : out) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-15);
  EXPECT_GE(obs::Registry::global()
                .counter("core.pof.multiplicity_saturated")
                .total(),
            1u);
  obs::set_enabled(false);
  obs::Registry::global().reset();
}

TEST(ConvolveMultiplicity, DeepPofListSaturationIsCounted) {
  obs::Registry::global().reset();
  obs::set_enabled(true);
  // 10 cells can flip 10 > kMaxMultiplicity-1 ways: the DP's absorbing last
  // bin keeps the output a distribution, and the truncation is counted.
  const std::vector<double> pofs(10, 0.5);
  const auto dist = core::multiplicity_distribution(pofs);
  double sum = 0.0;
  for (double v : dist) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GE(obs::Registry::global()
                .counter("core.pof.multiplicity_saturated")
                .total(),
            1u);
  obs::set_enabled(false);
  obs::Registry::global().reset();
}

// --- joint multi-cell simulator ---------------------------------------------

constexpr double kVdd = 0.8;
// Comfortably above the ~0.136 fC cell Qcrit at 0.8 V / below it.
constexpr double kSuperFc = 0.4;
constexpr double kSubFc = 0.05;

TEST(ClusterSimulator, SingleStruckCellFlipsAloneInTile) {
  const CellDesign design;
  ClusterSimulator sim(design, kVdd, 2, 2);
  ASSERT_EQ(sim.cell_count(), 4u);
  std::vector<ClusterSimulator::CellStrike> strikes(1);
  strikes[0].local = 2;
  strikes[0].charges.i1_fc = kSuperFc;
  const std::vector<DeltaVt> dvts(4);
  const auto out =
      sim.simulate(strikes, dvts, spice::PulseShape::Kind::kRectangular);
  ASSERT_FALSE(out.failed) << out.error;
  ASSERT_EQ(out.flipped.size(), 4u);
  EXPECT_EQ(out.flip_count, 1u);
  EXPECT_TRUE(out.flipped[2]);
  EXPECT_FALSE(out.flipped[0]);
  EXPECT_FALSE(out.flipped[1]);
  EXPECT_FALSE(out.flipped[3]);
}

TEST(ClusterSimulator, SubCriticalChargeFlipsNothing) {
  const CellDesign design;
  ClusterSimulator sim(design, kVdd, 1, 4);
  std::vector<ClusterSimulator::CellStrike> strikes(2);
  strikes[0].local = 0;
  strikes[0].charges.i1_fc = kSubFc;
  strikes[1].local = 3;
  strikes[1].charges.i1_fc = kSubFc;
  const std::vector<DeltaVt> dvts(4);
  const auto out =
      sim.simulate(strikes, dvts, spice::PulseShape::Kind::kRectangular);
  ASSERT_FALSE(out.failed) << out.error;
  EXPECT_EQ(out.flip_count, 0u);
}

TEST(ClusterSimulator, JointStrikeFlipsBothCells) {
  const CellDesign design;
  ClusterSimulator sim(design, kVdd, 2, 2);
  std::vector<ClusterSimulator::CellStrike> strikes(2);
  strikes[0].local = 0;
  strikes[0].charges.i1_fc = kSuperFc;
  strikes[1].local = 1;
  strikes[1].charges.i1_fc = kSuperFc;
  const std::vector<DeltaVt> dvts(4);
  const auto out =
      sim.simulate(strikes, dvts, spice::PulseShape::Kind::kRectangular);
  ASSERT_FALSE(out.failed) << out.error;
  EXPECT_EQ(out.flip_count, 2u);
  EXPECT_TRUE(out.flipped[0]);
  EXPECT_TRUE(out.flipped[1]);
}

TEST(ClusterSimulator, BatchMatchesScalarPerSample) {
  const CellDesign design;
  ClusterSimulator sim(design, kVdd, 2, 2);
  std::vector<ClusterSimulator::CellStrike> strikes(2);
  strikes[0].local = 0;
  strikes[0].charges.i1_fc = 0.15;  // near-critical: PV decides
  strikes[1].local = 3;
  strikes[1].charges.i1_fc = 0.12;
  stats::Rng rng(42);
  std::vector<std::vector<DeltaVt>> samples(6, std::vector<DeltaVt>(4));
  for (auto& dvts : samples) {
    for (auto& d : dvts) {
      for (auto& dv : d) dv = rng.normal(0.0, 0.03);
    }
  }
  std::vector<ClusterSimulator::Outcome> batch;
  sim.simulate_batch(strikes, samples, spice::PulseShape::Kind::kRectangular,
                     batch);
  ASSERT_EQ(batch.size(), samples.size());
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const auto scalar = sim.simulate(strikes, samples[s],
                                     spice::PulseShape::Kind::kRectangular);
    ASSERT_EQ(batch[s].failed, scalar.failed) << "sample " << s;
    EXPECT_EQ(batch[s].flipped, scalar.flipped) << "sample " << s;
    EXPECT_EQ(batch[s].flip_count, scalar.flip_count) << "sample " << s;
  }
}

// --- memoized POF surface ---------------------------------------------------

std::vector<ClusterPofSurface::CellCharge> two_cell_query(double qa,
                                                          double qb) {
  std::vector<ClusterPofSurface::CellCharge> cells(2);
  cells[0].local = 0;
  cells[0].charges.i1_fc = qa;
  cells[1].local = 1;
  cells[1].charges.i1_fc = qb;
  return cells;
}

TEST(ClusterPofSurface, MemoizesAndRepeatsExactly) {
  const CellDesign design;
  ClusterConfig cc;
  cc.mode = ClusterMode::k2x2;
  cc.pv_samples = 3;
  ClusterPofSurface surf(design, cc);
  std::vector<double> first, second;
  surf.flip_count_distribution(kVdd, true, two_cell_query(0.2, 0.05), first);
  EXPECT_EQ(surf.size(), 1u);
  surf.flip_count_distribution(kVdd, true, two_cell_query(0.2, 0.05), second);
  EXPECT_EQ(surf.size(), 1u);
  EXPECT_EQ(first, second);  // bitwise: memo hit == fresh evaluation
  ASSERT_EQ(first.size(), 3u);
  double sum = 0.0;
  for (double v : first) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ClusterPofSurface, QuantizationSnapsNearbyQueries) {
  const CellDesign design;
  ClusterConfig cc;
  cc.mode = ClusterMode::k2x2;
  cc.pv_samples = 1;
  cc.quantum_fc = 0.01;
  ClusterPofSurface surf(design, cc);
  std::vector<double> a, b;
  surf.flip_count_distribution(kVdd, false, two_cell_query(0.2, 0.05), a);
  surf.flip_count_distribution(kVdd, false, two_cell_query(0.201, 0.049), b);
  EXPECT_EQ(surf.size(), 1u);  // same quantized key
  EXPECT_EQ(a, b);
}

TEST(ClusterPofSurface, ShareFractionCouplesAdjacentCells) {
  const CellDesign design;
  // Cell A super-critical, cell B sub-critical on its own. Without sharing
  // exactly one cell flips; with a large share fraction B also collects
  // 0.45 * 0.4 = 0.18 fC > Qcrit and the nominal outcome is a double flip.
  ClusterConfig off;
  off.mode = ClusterMode::k2x2;
  off.share_fraction = 0.0;
  off.pv_samples = 1;
  ClusterPofSurface surf_off(design, off);
  std::vector<double> d_off;
  surf_off.flip_count_distribution(kVdd, false, two_cell_query(kSuperFc, kSubFc),
                                   d_off);
  EXPECT_DOUBLE_EQ(d_off[1], 1.0);

  ClusterConfig on = off;
  on.share_fraction = 0.45;
  ClusterPofSurface surf_on(design, on);
  std::vector<double> d_on;
  surf_on.flip_count_distribution(kVdd, false, two_cell_query(kSuperFc, kSubFc),
                                  d_on);
  EXPECT_DOUBLE_EQ(d_on[2], 1.0);
}

TEST(ClusterPofSurface, EncodeDecodeMergeRoundTrips) {
  const CellDesign design;
  ClusterConfig cc;
  cc.mode = ClusterMode::k2x2;
  cc.pv_samples = 2;
  ClusterPofSurface source(design, cc);
  std::vector<double> a, b;
  source.flip_count_distribution(kVdd, false, two_cell_query(0.2, 0.05), a);
  source.flip_count_distribution(kVdd, true, two_cell_query(0.15, 0.15), b);
  EXPECT_EQ(source.size(), 2u);
  const auto blob = source.encode();

  ClusterPofSurface fresh(design, cc);
  EXPECT_EQ(fresh.decode_merge(blob), 2u);
  EXPECT_EQ(fresh.size(), 2u);
  // Preloaded entries answer queries without any new simulation, with the
  // exact cached values.
  std::vector<double> a2, b2;
  fresh.flip_count_distribution(kVdd, false, two_cell_query(0.2, 0.05), a2);
  fresh.flip_count_distribution(kVdd, true, two_cell_query(0.15, 0.15), b2);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(b, b2);
  // Merging again absorbs nothing (first-in wins).
  EXPECT_EQ(fresh.decode_merge(blob), 0u);

  std::vector<std::uint8_t> truncated(blob.begin(), blob.end() - 3);
  ClusterPofSurface victim(design, cc);
  EXPECT_THROW(victim.decode_merge(truncated), util::Error);
}

TEST(ClusterPofSurface, RejectsMalformedQueries) {
  const CellDesign design;
  ClusterConfig cc;
  cc.mode = ClusterMode::k2x2;
  ClusterPofSurface surf(design, cc);
  std::vector<double> out;
  std::vector<ClusterPofSurface::CellCharge> unsorted(2);
  unsorted[0].local = 2;
  unsorted[1].local = 1;
  EXPECT_THROW(surf.flip_count_distribution(kVdd, false, unsorted, out),
               util::Error);
  std::vector<ClusterPofSurface::CellCharge> oob(1);
  oob[0].local = 4;  // 2x2 tile has locals 0..3
  EXPECT_THROW(surf.flip_count_distribution(kVdd, false, oob, out),
               util::Error);
  EXPECT_THROW(surf.flip_count_distribution(kVdd, false, {}, out),
               util::Error);
}

TEST(ClusterPofSurface, FingerprintSeparatesConfigs) {
  const CellDesign design;
  ClusterConfig a;
  a.mode = ClusterMode::k2x2;
  ClusterConfig b = a;
  b.share_fraction = 0.2;
  ClusterConfig c = a;
  c.mode = ClusterMode::k1x4;
  const ClusterPofSurface sa(design, a), sb(design, b), sc(design, c);
  EXPECT_NE(sa.fingerprint(1), sb.fingerprint(1));
  EXPECT_NE(sa.fingerprint(1), sc.fingerprint(1));
  EXPECT_NE(sa.fingerprint(1), sa.fingerprint(2));
  EXPECT_EQ(sa.fingerprint(7), ClusterPofSurface(design, a).fingerprint(7));
}

}  // namespace
}  // namespace finser::sram

// --- cluster-aware array engine ---------------------------------------------

namespace finser::core {
namespace {

using sram::ArrayLayout;
using sram::CellGeometry;
using sram::CellSoftErrorModel;
using sram::PofTable;

/// Same synthetic cell model as test_core_array_mc.cpp: threshold LUTs, no
/// SPICE on the per-cell path (the cluster path runs the real simulator).
CellSoftErrorModel synthetic_model(double vdd, double q_thresh_fc) {
  PofTable t;
  t.vdd_v = vdd;
  t.q_max_fc = 0.4;
  for (auto& s : t.singles) {
    s.nominal_qcrit_fc = q_thresh_fc;
    s.total_samples = 2;
    s.qcrit_samples_fc = {0.8 * q_thresh_fc, 1.2 * q_thresh_fc};
  }
  const util::Axis axis({0.0, q_thresh_fc, 0.4});
  std::vector<double> v2(9, 1.0);
  v2[0] = 0.0;
  for (int p = 0; p < 3; ++p) {
    t.pairs_pv[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v2);
    t.pairs_nominal[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v2);
  }
  std::vector<double> v3(27, 1.0);
  v3[0] = 0.0;
  t.triple_pv = util::Grid3(axis, axis, axis, v3);
  t.triple_nominal = util::Grid3(axis, axis, axis, v3);
  CellSoftErrorModel m;
  m.tables.push_back(std::move(t));
  return m;
}

ArrayMcConfig grazing_config(std::size_t strikes, sram::ClusterMode mode,
                             const sram::CellDesign* design) {
  ArrayMcConfig cfg;
  cfg.strikes = strikes;
  cfg.angular = SourceAngularLaw::kBeam;
  const double tilt = 88.0 * std::numbers::pi / 180.0;
  cfg.beam_direction = {std::sin(tilt), 0.05, -std::cos(tilt)};
  cfg.cluster.mode = mode;
  cfg.cluster.pv_samples = 2;
  cfg.cluster_design = design;
  return cfg;
}

TEST(ClusterEngine, OneByOneIsByteIdenticalToDefaultAtAnyThreadCount) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  ArrayMcConfig base;
  base.strikes = 2000;
  ArrayMc reference(layout, model, base);
  const auto ref =
      encode_result(reference.run(phys::Species::kAlpha, 1.0, 11));
  for (std::size_t threads : {1, 4}) {
    ArrayMcConfig cfg = base;
    cfg.threads = threads;
    cfg.cluster.mode = sram::ClusterMode::k1x1;  // explicit default
    ArrayMc mc(layout, model, cfg);
    const auto got = encode_result(mc.run(phys::Species::kAlpha, 1.0, 11));
    EXPECT_EQ(ref, got) << "threads=" << threads;
  }
}

TEST(ClusterEngine, CorrelatedRunIsThreadAndLaneInvariant) {
  // Odd-sized (3x3) array under 2x2 tiles: ragged border tiles, grazing
  // tracks spanning several tiles. The per-cell path uses the synthetic
  // LUT; multi-cell tiles run the real joint simulator from the design.
  const sram::CellDesign design;
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  const auto run_with = [&](std::size_t threads, std::size_t lanes) {
    const std::size_t restore = spice::lane_width();
    spice::set_lane_width(lanes);
    ArrayMcConfig cfg = grazing_config(300, sram::ClusterMode::k2x2, &design);
    cfg.threads = threads;
    ArrayMc mc(layout, model, cfg);
    const auto blob = encode_result(mc.run(phys::Species::kAlpha, 1.0, 12));
    spice::set_lane_width(restore);
    return blob;
  };
  const auto ref = run_with(1, 1);
  EXPECT_EQ(ref, run_with(4, 1)) << "thread count changed the result";
  EXPECT_EQ(ref, run_with(2, 4)) << "lane width changed the result";
}

TEST(ClusterEngine, SharedSurfaceReusesMemoAcrossRuns) {
  const sram::CellDesign design;
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  sram::ClusterConfig cc;
  cc.mode = sram::ClusterMode::k2x2;
  cc.pv_samples = 2;
  sram::ClusterPofSurface surface(design, cc);

  ArrayMcConfig cfg = grazing_config(200, sram::ClusterMode::k2x2, &design);
  cfg.cluster_surface = &surface;
  ArrayMc mc(layout, model, cfg);
  const auto first = encode_result(mc.run(phys::Species::kAlpha, 1.0, 13));
  const std::size_t entries = surface.size();
  EXPECT_GT(entries, 0u);  // the grazing fixture produced joint tiles
  // Second engine sharing the surface: pure memo hits, identical bytes.
  ArrayMc mc2(layout, model, cfg);
  const auto second = encode_result(mc2.run(phys::Species::kAlpha, 1.0, 13));
  EXPECT_EQ(first, second);
  EXPECT_EQ(surface.size(), entries);
}

TEST(ClusterEngine, ClusterModeNeedsDesign) {
  const ArrayLayout layout(2, 2, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  ArrayMcConfig cfg;
  cfg.cluster.mode = sram::ClusterMode::k2x2;
  EXPECT_THROW(ArrayMc(layout, model, cfg), util::Error);
}

}  // namespace
}  // namespace finser::core
