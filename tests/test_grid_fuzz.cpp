/// \file test_grid_fuzz.cpp
/// \brief Fuzz-equivalence of the two ray-query paths: UniformGrid (3-D DDA
/// accelerator) versus BoxSet (brute-force reference) over ~10k random rays
/// through the paper's 9×9 array layout, plus the degenerate families the
/// DDA is most likely to get wrong — axis-aligned directions and rays that
/// start inside a box.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "finser/geom/box_set.hpp"
#include "finser/sram/layout.hpp"
#include "finser/stats/direction.hpp"
#include "finser/stats/rng.hpp"

namespace finser::geom {
namespace {

/// Sorted, canonical form of a hit list for exact set comparison. Hits are
/// sorted by t_in with id as tiebreaker (BoxSet::query only sorts by t_in,
/// so equal-t orderings are normalized away).
std::vector<BoxHit> canonical(std::vector<BoxHit> hits) {
  std::sort(hits.begin(), hits.end(), [](const BoxHit& a, const BoxHit& b) {
    if (a.interval.t_in != b.interval.t_in) {
      return a.interval.t_in < b.interval.t_in;
    }
    return a.id < b.id;
  });
  return hits;
}

std::string describe(const Ray& ray) {
  std::ostringstream os;
  os << "ray origin=(" << ray.origin.x << ", " << ray.origin.y << ", "
     << ray.origin.z << ") dir=(" << ray.dir.x << ", " << ray.dir.y << ", "
     << ray.dir.z << ")";
  return os.str();
}

/// Exact equivalence check of the two query paths for one ray.
void expect_equivalent(const BoxSet& set, UniformGrid& grid, const Ray& ray) {
  std::vector<BoxHit> brute, fast;
  set.query(ray, brute);
  grid.query(ray, fast);
  const std::vector<BoxHit> b = canonical(std::move(brute));
  const std::vector<BoxHit> f = canonical(std::move(fast));

  ASSERT_EQ(b.size(), f.size()) << describe(ray);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i].id, f[i].id) << describe(ray) << " hit " << i;
    // Identical box + identical ray → identical slab arithmetic; the two
    // paths share Aabb::intersect, so the intervals must match exactly.
    EXPECT_EQ(b[i].interval.t_in, f[i].interval.t_in) << describe(ray);
    EXPECT_EQ(b[i].interval.t_out, f[i].interval.t_out) << describe(ray);
  }
}

class GridFuzz : public ::testing::Test {
 protected:
  GridFuzz() : layout_(9, 9, sram::CellGeometry{}), grid_(layout_.fins()) {}

  const BoxSet& set() const { return layout_.fins(); }
  Aabb bounds() const { return layout_.fins().bounds(); }

  sram::ArrayLayout layout_;
  UniformGrid grid_;
};

TEST_F(GridFuzz, RandomRaysThroughPaperLayout) {
  stats::Rng rng(20140601);
  const Aabb b = bounds();
  const Vec3 ext = b.extent();
  // Sample origins in an inflated shell around the layout so rays enter
  // from every side, plus a fraction straight inside.
  for (int i = 0; i < 10000; ++i) {
    Ray ray;
    ray.origin = {b.lo.x + ext.x * rng.uniform(-0.5, 1.5),
                  b.lo.y + ext.y * rng.uniform(-0.5, 1.5),
                  b.lo.z + ext.z * rng.uniform(-0.5, 1.5)};
    ray.dir = stats::isotropic_sphere(rng);
    expect_equivalent(set(), grid_, ray);
  }
}

TEST_F(GridFuzz, AxisAlignedDegenerateDirections) {
  stats::Rng rng(42);
  const Aabb b = bounds();
  const Vec3 ext = b.extent();
  const Vec3 axes[6] = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
                        {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
  for (int i = 0; i < 600; ++i) {
    Ray ray;
    ray.origin = {b.lo.x + ext.x * rng.uniform(-0.25, 1.25),
                  b.lo.y + ext.y * rng.uniform(-0.25, 1.25),
                  b.lo.z + ext.z * rng.uniform(-0.25, 1.25)};
    ray.dir = axes[i % 6];
    expect_equivalent(set(), grid_, ray);
  }
  // Two-component zeros as well (diagonals in a coordinate plane).
  for (int i = 0; i < 600; ++i) {
    Ray ray;
    ray.origin = {b.lo.x + ext.x * rng.uniform(-0.25, 1.25),
                  b.lo.y + ext.y * rng.uniform(-0.25, 1.25),
                  b.lo.z + ext.z * rng.uniform(-0.25, 1.25)};
    const double s = rng.uniform() < 0.5 ? 1.0 : -1.0;
    const double t = rng.uniform() < 0.5 ? 1.0 : -1.0;
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    switch (i % 3) {
      case 0: ray.dir = {s * inv_sqrt2, t * inv_sqrt2, 0.0}; break;
      case 1: ray.dir = {s * inv_sqrt2, 0.0, t * inv_sqrt2}; break;
      default: ray.dir = {0.0, s * inv_sqrt2, t * inv_sqrt2}; break;
    }
    expect_equivalent(set(), grid_, ray);
  }
}

TEST_F(GridFuzz, RaysStartingInsideBoxes) {
  stats::Rng rng(7);
  const BoxSet& boxes = set();
  for (int i = 0; i < 2000; ++i) {
    const auto id =
        static_cast<std::uint32_t>(rng.uniform_index(boxes.size()));
    const Aabb& box = boxes.box(id);
    const Vec3 ext = box.extent();
    Ray ray;
    ray.origin = {box.lo.x + ext.x * rng.uniform(),
                  box.lo.y + ext.y * rng.uniform(),
                  box.lo.z + ext.z * rng.uniform()};
    ray.dir = stats::isotropic_sphere(rng);
    expect_equivalent(set(), grid_, ray);

    std::vector<BoxHit> hits;
    boxes.query(ray, hits);
    const bool found = std::any_of(
        hits.begin(), hits.end(),
        [&](const BoxHit& h) { return h.id == id; });
    EXPECT_TRUE(found) << "containing box missing from hits: " << describe(ray);
  }
}

TEST_F(GridFuzz, GrazingRaysAlongBoxFaces) {
  // Rays sliding exactly on a face plane are the classic accelerator
  // divergence: whatever the brute-force slab test says, the grid must say
  // the same thing.
  stats::Rng rng(13);
  const BoxSet& boxes = set();
  for (int i = 0; i < 1000; ++i) {
    const auto id =
        static_cast<std::uint32_t>(rng.uniform_index(boxes.size()));
    const Aabb& box = boxes.box(id);
    Ray ray;
    // Start on the +x face plane, shoot along ±y.
    ray.origin = {box.hi.x,
                  box.lo.y + box.extent().y * rng.uniform(-0.5, 1.5),
                  box.lo.z + box.extent().z * rng.uniform()};
    ray.dir = {0.0, rng.uniform() < 0.5 ? 1.0 : -1.0, 0.0};
    expect_equivalent(set(), grid_, ray);
  }
}

}  // namespace
}  // namespace finser::geom
