#include <gtest/gtest.h>

#include "finser/sram/characterize.hpp"
#include "finser/sram/snm.hpp"
#include "finser/util/error.hpp"

namespace finser::sram {
namespace {

// ---------------------------------------------------------------------------
// Access modes (retention vs read)
// ---------------------------------------------------------------------------

TEST(AccessMode, ReadDisturbRaisesTheZeroNode) {
  StrikeSimulator hold(CellDesign{}, 0.8, AccessMode::kRetention);
  StrikeSimulator read(CellDesign{}, 0.8, AccessMode::kRead);
  const auto hs_hold = hold.hold_state();
  const auto hs_read = read.hold_state();
  // Retention: QB pinned at ground. Read: the ON pass gate pulls QB up to
  // the read-disturb level — above ground, below the trip point.
  EXPECT_LT(hs_hold[1], 0.01);
  EXPECT_GT(hs_read[1], 0.02);
  EXPECT_LT(hs_read[1], 0.4 * 0.8);
  // The '1' node barely moves.
  EXPECT_NEAR(hs_read[0], 0.8, 0.05);
}

TEST(AccessMode, ReadModeLowersCriticalCharge) {
  for (double vdd : {0.7, 0.9, 1.1}) {
    StrikeSimulator hold(CellDesign{}, vdd, AccessMode::kRetention);
    StrikeSimulator read(CellDesign{}, vdd, AccessMode::kRead);
    const auto kind = spice::PulseShape::Kind::kRectangular;
    const double q_hold = bisect_critical_scale(hold, StrikeCharges{1, 0, 0},
                                                DeltaVt{}, 0.6, 1e-3, kind);
    const double q_read = bisect_critical_scale(read, StrikeCharges{1, 0, 0},
                                                DeltaVt{}, 0.6, 1e-3, kind);
    ASSERT_LT(q_hold, SingleCdf::kNeverFlips);
    ASSERT_LT(q_read, SingleCdf::kNeverFlips);
    EXPECT_LT(q_read, q_hold) << "vdd = " << vdd;
  }
}

TEST(AccessMode, ReadCellStillBistable) {
  // A read access must not flip the cell by itself (read stability).
  StrikeSimulator read(CellDesign{}, 0.7, AccessMode::kRead);
  const auto out = read.simulate(StrikeCharges{});
  EXPECT_FALSE(out.flipped);
}

// ---------------------------------------------------------------------------
// 8T read-decoupled topology
// ---------------------------------------------------------------------------

TEST(EightT, RetentionMatchesSixT) {
  CellDesign d6;
  CellDesign d8;
  d8.topology = CellTopology::k8T;
  StrikeSimulator s6(d6, 0.8);
  StrikeSimulator s8(d8, 0.8);
  const auto kind = spice::PulseShape::Kind::kRectangular;
  const double q6 = bisect_critical_scale(s6, StrikeCharges{1, 0, 0}, DeltaVt{},
                                          0.6, 1e-3, kind);
  const double q8 = bisect_critical_scale(s8, StrikeCharges{1, 0, 0}, DeltaVt{},
                                          0.6, 1e-3, kind);
  // The read stack barely loads the storage nodes: retention Qcrit within 5%.
  EXPECT_NEAR(q8, q6, 0.05 * q6);
}

TEST(EightT, ReadAccessDoesNotWeakenTheCell) {
  CellDesign d8;
  d8.topology = CellTopology::k8T;
  StrikeSimulator hold(d8, 0.8, AccessMode::kRetention);
  StrikeSimulator read(d8, 0.8, AccessMode::kRead);
  const auto kind = spice::PulseShape::Kind::kRectangular;
  const double qh = bisect_critical_scale(hold, StrikeCharges{1, 0, 0},
                                          DeltaVt{}, 0.6, 1e-3, kind);
  const double qr = bisect_critical_scale(read, StrikeCharges{1, 0, 0},
                                          DeltaVt{}, 0.6, 1e-3, kind);
  // Read-decoupled: no read disturb, Qcrit(read) ~= Qcrit(hold)...
  EXPECT_NEAR(qr, qh, 0.03 * qh);
  // ...whereas the 6T cell loses ~20 % (see AccessMode tests).
  StrikeSimulator read6(CellDesign{}, 0.8, AccessMode::kRead);
  const double qr6 = bisect_critical_scale(read6, StrikeCharges{1, 0, 0},
                                           DeltaVt{}, 0.6, 1e-3, kind);
  EXPECT_GT(qr, 1.1 * qr6);
}

TEST(EightT, HoldStateAndStrikesBehave) {
  CellDesign d8;
  d8.topology = CellTopology::k8T;
  StrikeSimulator sim(d8, 0.8, AccessMode::kRead);
  const auto hs = sim.hold_state();
  EXPECT_NEAR(hs[0], 0.8, 0.03);
  EXPECT_LT(hs[1], 0.02);  // No read disturb on the storage node.
  EXPECT_TRUE(sim.simulate(StrikeCharges{0.5, 0, 0}).flipped);
  EXPECT_FALSE(sim.simulate(StrikeCharges{0.01, 0, 0}).flipped);
}

// ---------------------------------------------------------------------------
// Static noise margin
// ---------------------------------------------------------------------------

TEST(Snm, HoldSnmInTextbookRange) {
  for (double vdd : {0.7, 0.9, 1.1}) {
    const SnmResult r = static_noise_margin(CellDesign{}, vdd);
    EXPECT_GT(r.snm_v, 0.2 * vdd) << vdd;   // Healthy cell.
    EXPECT_LT(r.snm_v, 0.45 * vdd) << vdd;  // Bounded by Vdd/2 - margin.
  }
}

TEST(Snm, SymmetricCellHasSymmetricLobes) {
  const SnmResult r = static_noise_margin(CellDesign{}, 0.8);
  EXPECT_NEAR(r.lobe_low_v, r.lobe_high_v, 5e-3);
  EXPECT_DOUBLE_EQ(r.snm_v, std::min(r.lobe_low_v, r.lobe_high_v));
}

TEST(Snm, ReadSnmBelowHoldSnm) {
  for (double vdd : {0.7, 0.9, 1.1}) {
    const double hold = static_noise_margin(CellDesign{}, vdd).snm_v;
    const double read =
        static_noise_margin(CellDesign{}, vdd, AccessMode::kRead).snm_v;
    EXPECT_LT(read, hold) << vdd;
    EXPECT_GT(read, 0.0) << vdd;  // Still readable without flipping.
  }
}

TEST(Snm, GrowsWithVdd) {
  double prev = 0.0;
  for (double vdd : {0.7, 0.8, 0.9, 1.0, 1.1}) {
    const double s = static_noise_margin(CellDesign{}, vdd).snm_v;
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Snm, MismatchSkewsLobesAndShrinksSnm) {
  const SnmResult nom = static_noise_margin(CellDesign{}, 0.8);
  DeltaVt mm{};
  mm[static_cast<std::size_t>(Role::kPdL)] = 0.08;
  mm[static_cast<std::size_t>(Role::kPuR)] = 0.08;
  mm[static_cast<std::size_t>(Role::kPuL)] = -0.08;
  mm[static_cast<std::size_t>(Role::kPdR)] = -0.08;
  const SnmResult skew = static_noise_margin(CellDesign{}, 0.8,
                                             AccessMode::kRetention, mm);
  EXPECT_LT(skew.snm_v, nom.snm_v);
  EXPECT_GT(std::abs(skew.lobe_low_v - skew.lobe_high_v), 0.02);
}

TEST(Snm, CorrelatesWithCriticalCharge) {
  // The library-level link the paper exploits implicitly: a weaker cell
  // (lower SNM) flips on less charge.
  DeltaVt weak{};
  weak[static_cast<std::size_t>(Role::kPuL)] = 0.12;
  weak[static_cast<std::size_t>(Role::kPdR)] = 0.12;
  const double snm_nom = static_noise_margin(CellDesign{}, 0.8).snm_v;
  const double snm_weak =
      static_noise_margin(CellDesign{}, 0.8, AccessMode::kRetention, weak).snm_v;
  StrikeSimulator sim(CellDesign{}, 0.8);
  const auto kind = spice::PulseShape::Kind::kRectangular;
  const double q_nom = bisect_critical_scale(sim, StrikeCharges{1, 0, 0},
                                             DeltaVt{}, 0.6, 1e-3, kind);
  const double q_weak = bisect_critical_scale(sim, StrikeCharges{1, 0, 0}, weak,
                                              0.6, 1e-3, kind);
  EXPECT_LT(snm_weak, snm_nom);
  EXPECT_LT(q_weak, q_nom);
}

TEST(Snm, RejectsBadInput) {
  EXPECT_THROW(static_noise_margin(CellDesign{}, 0.0), util::InvalidArgument);
  EXPECT_THROW(static_noise_margin(CellDesign{}, 0.8, AccessMode::kRetention,
                                   DeltaVt{}, 4),
               util::InvalidArgument);
}

}  // namespace
}  // namespace finser::sram
