#include <gtest/gtest.h>

#include "finser/core/neutron_mc.hpp"
#include "finser/core/pof_combine.hpp"
#include "finser/core/ser_flow.hpp"
#include "finser/util/error.hpp"

namespace finser::core {
namespace {

using sram::ArrayLayout;
using sram::CellGeometry;
using sram::CellSoftErrorModel;
using sram::PofTable;

/// Threshold cell model (see test_core_array_mc.cpp for the full variant).
CellSoftErrorModel threshold_model(double vdd, double q_thresh_fc) {
  PofTable t;
  t.vdd_v = vdd;
  t.q_max_fc = 0.4;
  for (auto& s : t.singles) {
    s.nominal_qcrit_fc = q_thresh_fc;
    s.total_samples = 2;
    s.qcrit_samples_fc = {0.9 * q_thresh_fc, 1.1 * q_thresh_fc};
  }
  const util::Axis axis({0.0, q_thresh_fc, 0.4});
  std::vector<double> v(9, 1.0);
  v[0] = 0.0;
  for (int p = 0; p < 3; ++p) {
    t.pairs_pv[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v);
    t.pairs_nominal[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v);
  }
  std::vector<double> v3(27, 1.0);
  v3[0] = 0.0;
  t.triple_pv = util::Grid3(axis, axis, axis, v3);
  t.triple_nominal = util::Grid3(axis, axis, axis, v3);
  CellSoftErrorModel m;
  m.tables.push_back(std::move(t));
  return m;
}

// ---------------------------------------------------------------------------
// Eqs. 4-6 combiner (shared kernel)
// ---------------------------------------------------------------------------

TEST(PofCombine, EmptyAndSingle) {
  const auto zero = combine_eqs_4_to_6({});
  EXPECT_DOUBLE_EQ(zero.tot, 0.0);
  const auto one = combine_eqs_4_to_6({0.3});
  EXPECT_DOUBLE_EQ(one.tot, 0.3);
  EXPECT_DOUBLE_EQ(one.seu, 0.3);
  EXPECT_NEAR(one.mbu, 0.0, 1e-15);
}

TEST(PofCombine, TwoCellsHandValues) {
  const auto r = combine_eqs_4_to_6({0.5, 0.5});
  EXPECT_DOUBLE_EQ(r.tot, 0.75);
  EXPECT_DOUBLE_EQ(r.seu, 0.5);   // 2 * 0.5 * 0.5.
  EXPECT_DOUBLE_EQ(r.mbu, 0.25);  // Both flip.
}

TEST(PofCombine, CertainFlipsHandledExactly) {
  const auto r = combine_eqs_4_to_6({1.0, 1.0});
  EXPECT_DOUBLE_EQ(r.tot, 1.0);
  EXPECT_DOUBLE_EQ(r.seu, 0.0);
  EXPECT_DOUBLE_EQ(r.mbu, 1.0);
  const auto s = combine_eqs_4_to_6({1.0, 0.0, 0.25});
  EXPECT_DOUBLE_EQ(s.tot, 1.0);
  EXPECT_DOUBLE_EQ(s.seu, 0.75);
  EXPECT_DOUBLE_EQ(s.mbu, 0.25);
}

TEST(PofCombine, MultiplicityDistributionHandValues) {
  const auto d = multiplicity_distribution({0.5, 0.5});
  EXPECT_DOUBLE_EQ(d[0], 0.25);
  EXPECT_DOUBLE_EQ(d[1], 0.5);
  EXPECT_DOUBLE_EQ(d[2], 0.25);
  EXPECT_DOUBLE_EQ(d[3], 0.0);
}

TEST(PofCombine, MultiplicityMatchesEqs4To6) {
  for (const std::vector<double>& p :
       {std::vector<double>{0.3}, {0.1, 0.9}, {0.2, 0.3, 0.4, 0.9},
        {1.0, 0.5, 0.25}}) {
    const auto c = combine_eqs_4_to_6(p);
    const auto d = multiplicity_distribution(p);
    double sum = 0.0, tail = 0.0;
    for (std::size_t n = 0; n < kMaxMultiplicity; ++n) sum += d[n];
    for (std::size_t n = 2; n < kMaxMultiplicity; ++n) tail += d[n];
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(d[0], 1.0 - c.tot, 1e-12);
    EXPECT_NEAR(d[1], c.seu, 1e-12);
    EXPECT_NEAR(tail, c.mbu, 1e-12);
  }
}

TEST(PofCombine, MultiplicityOverflowBinAggregates) {
  // 12 cells at p = 1: all mass lands in the ">= kMax-1" bin.
  const std::vector<double> p(12, 1.0);
  const auto d = multiplicity_distribution(p);
  EXPECT_DOUBLE_EQ(d[kMaxMultiplicity - 1], 1.0);
}

TEST(PofCombine, IdentityTotEqualsSeuPlusMbu) {
  for (const std::vector<double>& p :
       {std::vector<double>{0.1}, {0.1, 0.9}, {0.2, 0.3, 0.4}, {1.0, 0.5, 0.5}}) {
    const auto r = combine_eqs_4_to_6(p);
    EXPECT_NEAR(r.tot, r.seu + r.mbu, 1e-12);
    EXPECT_GE(r.mbu, 0.0);
    EXPECT_LE(r.tot, 1.0);
  }
}

// ---------------------------------------------------------------------------
// NeutronArrayMc
// ---------------------------------------------------------------------------

NeutronMcConfig fast_config(std::size_t n = 20000) {
  NeutronMcConfig cfg;
  cfg.histories = n;
  cfg.source_margin_nm = 500.0;
  return cfg;
}

TEST(NeutronMc, ProducesWeightedPofEstimates) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = threshold_model(0.8, 0.02);
  NeutronArrayMc mc(layout, model, fast_config());
  const auto res = mc.run(14.0, 1);
  const auto& e = res.est[0][kModeWithPv];
  // Forced-interaction weights make per-neutron POF tiny but nonzero.
  EXPECT_GT(e.tot, 0.0);
  EXPECT_LT(e.tot, 1e-3);
  EXPECT_NEAR(e.tot, e.seu + e.mbu, 1e-15);
  EXPECT_GT(e.hit_fraction, 0.0);
}

TEST(NeutronMc, ElasticOnlyEnergiesStillUpset) {
  // At 2 MeV only elastic recoils exist; they must still flip cells.
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = threshold_model(0.8, 0.02);
  NeutronArrayMc mc(layout, model, fast_config());
  EXPECT_GT(mc.run(2.0, 2).est[0][kModeWithPv].tot, 0.0);
}

TEST(NeutronMc, HigherThresholdLowersPof) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel easy = threshold_model(0.8, 0.01);
  const CellSoftErrorModel hard = threshold_model(0.8, 0.35);
  NeutronArrayMc mc_e(layout, easy, fast_config());
  NeutronArrayMc mc_h(layout, hard, fast_config());
  EXPECT_GT(mc_e.run(5.0, 3).est[0][kModeWithPv].tot,
            mc_h.run(5.0, 3).est[0][kModeWithPv].tot);
}

TEST(NeutronMc, DeterministicGivenSeed) {
  const ArrayLayout layout(2, 2, CellGeometry{});
  const CellSoftErrorModel model = threshold_model(0.8, 0.02);
  NeutronArrayMc mc(layout, model, fast_config(4000));
  EXPECT_DOUBLE_EQ(mc.run(14.0, 4).est[0][kModeWithPv].tot,
                   mc.run(14.0, 4).est[0][kModeWithPv].tot);
}

TEST(NeutronMc, RejectsBadConfig) {
  const ArrayLayout layout(2, 2, CellGeometry{});
  const CellSoftErrorModel model = threshold_model(0.8, 0.02);
  NeutronMcConfig bad = fast_config(0);
  EXPECT_THROW(NeutronArrayMc(layout, model, bad), util::InvalidArgument);
  bad = fast_config();
  bad.interaction_depth_um = 0.0;
  EXPECT_THROW(NeutronArrayMc(layout, model, bad), util::InvalidArgument);
  NeutronArrayMc mc(layout, model, fast_config(100));
  EXPECT_THROW(mc.run(0.0, 5), util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// SerFlow integration
// ---------------------------------------------------------------------------

TEST(NeutronFlow, SweepDispatchesToNeutronMc) {
  SerFlowConfig cfg;
  cfg.array_rows = 2;
  cfg.array_cols = 2;
  cfg.characterization.vdds = {0.8};
  cfg.characterization.pv_samples_single = 10;
  cfg.characterization.pv_samples_grid = 6;
  cfg.neutron_mc.histories = 4000;
  cfg.neutron_bins = 3;
  SerFlow flow(cfg);
  const auto res = flow.sweep(env::sea_level_neutrons());
  EXPECT_EQ(res.species, phys::Species::kNeutron);
  EXPECT_EQ(res.bins.size(), 3u);
  EXPECT_GE(res.fit[0][kModeWithPv].fit_tot, 0.0);
  // Spectrum anchor: ~13 n/(cm^2 h) above 10 MeV.
  EXPECT_NEAR(env::sea_level_neutrons().integral_flux(10.0, 1000.0) * 3600.0,
              13.0, 0.2);
}

}  // namespace
}  // namespace finser::core
