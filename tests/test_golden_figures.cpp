/// \file test_golden_figures.cpp
/// \brief Golden-regression locks on the paper's headline figures at a
/// small, fixed Monte-Carlo scale and seed:
///
///   * Fig. 4 — mean e–h pairs per fin strike vs particle energy,
///   * Fig. 8 — array POF vs particle energy (Vdd 0.7/0.8 V, with PV),
///   * Fig. 9 — FIT rate vs Vdd (Eq. 8 over the Fig. 2 spectra).
///
/// Each test reruns the figure pipeline deterministically and compares
/// against a checked-in CSV under tests/golden/ with relative tolerances
/// (the pipelines are bit-deterministic on one platform; the tolerance
/// absorbs libm differences across platforms). To regenerate after an
/// *intentional* physics change:
///
///   FINSER_REGEN_GOLDEN=1 ./finser_golden_tests
///
/// then commit the rewritten CSVs (see docs/observability.md).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "finser/core/ser_flow.hpp"
#include "finser/phys/collection.hpp"
#include "finser/phys/fin_mc.hpp"
#include "finser/util/csv.hpp"
#include "finser/util/error.hpp"

#ifndef FINSER_GOLDEN_DIR
#error "FINSER_GOLDEN_DIR must point at the checked-in golden CSV directory"
#endif

namespace finser {
namespace {

constexpr double kRelTol = 0.02;    ///< Cross-platform libm headroom.
constexpr double kAbsTol = 1e-12;   ///< For values that are exactly zero.

bool regen_requested() {
  const char* v = std::getenv("FINSER_REGEN_GOLDEN");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::string golden_path(const std::string& name) {
  return std::string(FINSER_GOLDEN_DIR) + "/" + name + ".csv";
}

/// Minimal CSV loader (numbers only past the header row).
struct GoldenCsv {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

GoldenCsv load_golden(const std::string& name) {
  const std::string path = golden_path(name);
  std::ifstream is(path);
  if (!is) {
    throw util::Error("golden CSV missing: " + path +
                      " (regenerate with FINSER_REGEN_GOLDEN=1)");
  }
  GoldenCsv out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    if (out.header.empty()) {
      while (std::getline(ls, cell, ',')) out.header.push_back(cell);
      continue;
    }
    std::vector<double> row;
    while (std::getline(ls, cell, ',')) row.push_back(std::stod(cell));
    out.rows.push_back(std::move(row));
  }
  return out;
}

/// Regenerate when asked, else compare cell by cell with relative tolerance.
void check_against_golden(const util::CsvTable& table, const std::string& name,
                          const std::vector<std::vector<double>>& values) {
  if (regen_requested()) {
    table.write_csv_file(golden_path(name));
    GTEST_SKIP() << "regenerated " << golden_path(name);
  }
  const GoldenCsv golden = load_golden(name);
  ASSERT_EQ(golden.rows.size(), values.size()) << name << ": row count drifted";
  for (std::size_t r = 0; r < values.size(); ++r) {
    ASSERT_EQ(golden.rows[r].size(), values[r].size())
        << name << ": column count drifted at row " << r;
    for (std::size_t c = 0; c < values[r].size(); ++c) {
      const double want = golden.rows[r][c];
      const double got = values[r][c];
      const double tol = kAbsTol + kRelTol * std::abs(want);
      EXPECT_NEAR(got, want, tol)
          << name << " row " << r << " col " << c << " ("
          << (c < golden.header.size() ? golden.header[c] : "?") << ")";
    }
  }
}

/// The fixed test fidelity: small enough for CI, fixed forever — golden
/// values depend on it. Never read FINSER_MC_SCALE here: ambient env must
/// not change what this binary computes.
constexpr double kGoldenScale = 0.002;
constexpr std::uint64_t kGoldenSeed = 20140601;

core::SerFlowConfig golden_flow_config() {
  core::SerFlowConfig cfg;
  cfg.array_rows = 9;
  cfg.array_cols = 9;
  cfg.characterization.vdds = {0.7, 0.8, 0.9, 1.0, 1.1};
  cfg.characterization.pv_samples_single = 200;
  cfg.characterization.pv_samples_grid = 48;
  cfg.array_mc.strikes = 60000;
  cfg.proton_bins = 6;
  cfg.alpha_bins = 5;
  cfg.seed = kGoldenSeed;
  cfg.threads = 2;  // Results are thread-count invariant; 2 exercises merge.
  core::apply_mc_scale(cfg, kGoldenScale);
  return cfg;
}

TEST(GoldenFigures, Fig4EhPairsVsEnergy) {
  phys::FinStrikeMc::Config cfg;
  cfg.samples = 4000;
  const phys::FinTechnology tech;
  const geom::Aabb fin{{0.0, 0.0, 0.0},
                       {tech.w_fin_nm, tech.l_fin_nm, tech.h_fin_nm}};
  const phys::FinStrikeMc mc(fin, cfg);

  util::CsvTable t({"energy_mev", "alpha_pairs", "proton_pairs",
                    "alpha_hit_fraction", "proton_hit_fraction"});
  std::vector<std::vector<double>> values;
  for (const double e : {0.1, 0.5, 2.0, 10.0, 50.0}) {
    // Fresh per-energy streams: row values are independent of row order.
    stats::Rng rng_a(kGoldenSeed + 1);
    stats::Rng rng_p(kGoldenSeed + 2);
    const auto a = mc.run(phys::Species::kAlpha, e, rng_a);
    const auto p = mc.run(phys::Species::kProton, e, rng_p);
    values.push_back({e, a.mean_eh_pairs, p.mean_eh_pairs, a.hit_fraction,
                      p.hit_fraction});
    t.add_row({e, a.mean_eh_pairs, p.mean_eh_pairs, a.hit_fraction,
               p.hit_fraction});
  }
  check_against_golden(t, "fig4_ehpairs", values);
}

TEST(GoldenFigures, Fig8PofVsEnergy) {
  core::SerFlowConfig cfg = golden_flow_config();
  core::SerFlow flow(cfg);
  const auto& vdds = flow.cell_model().vdds();
  ASSERT_GE(vdds.size(), 2u);

  util::CsvTable t({"energy_mev", "alpha_pof_vdd0.7", "alpha_pof_vdd0.8",
                    "proton_pof_vdd0.7", "proton_pof_vdd0.8"});
  std::vector<std::vector<double>> values;
  for (const double e : {1.0, 5.0, 20.0}) {
    const auto ra = flow.run_at_energy(phys::Species::kAlpha, e);
    const auto rp = flow.run_at_energy(phys::Species::kProton, e);
    const double a07 = ra.est[0][core::kModeWithPv].tot;
    const double a08 = ra.est[1][core::kModeWithPv].tot;
    const double p07 = rp.est[0][core::kModeWithPv].tot;
    const double p08 = rp.est[1][core::kModeWithPv].tot;
    values.push_back({e, a07, a08, p07, p08});
    t.add_row({e, a07, a08, p07, p08});
  }
  check_against_golden(t, "fig8_pof_energy", values);
}

TEST(GoldenFigures, Fig9FitVsVdd) {
  core::SerFlowConfig cfg = golden_flow_config();
  core::SerFlow flow(cfg);
  const auto ra = flow.sweep(env::package_alphas());
  const auto rp = flow.sweep(env::sea_level_protons());
  ASSERT_EQ(ra.vdds.size(), rp.vdds.size());

  util::CsvTable t({"vdd_v", "alpha_fit_tot", "alpha_fit_seu", "alpha_fit_mbu",
                    "proton_fit_tot"});
  std::vector<std::vector<double>> values;
  for (std::size_t v = 0; v < ra.vdds.size(); ++v) {
    const auto& a = ra.fit[v][core::kModeWithPv];
    const auto& p = rp.fit[v][core::kModeWithPv];
    values.push_back({ra.vdds[v], a.fit_tot, a.fit_seu, a.fit_mbu, p.fit_tot});
    t.add_row({ra.vdds[v], a.fit_tot, a.fit_seu, a.fit_mbu, p.fit_tot});
  }
  check_against_golden(t, "fig9_fit_vdd", values);
}

}  // namespace
}  // namespace finser
