/// \file test_shard_lease.cpp
/// \brief Lease records: integrity, staleness, and reclaim semantics
/// (docs/sharding.md).
///
/// The contract under test mirrors the artifact store's: write_lease is
/// atomic and CRC-sealed; try_read_lease never throws and yields a record
/// only when the blob passes magic, CRC, version and campaign-fingerprint
/// checks — every other outcome (truncated, bit-flipped, stale-campaign,
/// garbage, torn-by-fault) reads as "absent", i.e. the lease is
/// reclaimable by a supervisor.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "finser/obs/obs.hpp"
#include "finser/shard/lease.hpp"
#include "finser/util/fault.hpp"
#include "finser/util/io.hpp"

namespace finser::shard {
namespace {

constexpr std::uint64_t kCampaign = 0xABCDEF0123456789ull;

/// Unique temp dir removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const char* name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

LeaseRecord sample_record() {
  LeaseRecord rec;
  rec.kind = LeaseKind::kTask;
  rec.state = LeaseState::kAssign;
  rec.campaign = kCampaign;
  rec.worker = 3;
  rec.attempt = 2;
  rec.seq = 41;
  rec.stage = "5-sweep-nominal";
  rec.message = "";
  return rec;
}

TEST(ShardLease, PathHelpersEmbedRoleAndId) {
  EXPECT_EQ(task_path("/d", 2), "/d/task-2");
  EXPECT_EQ(heartbeat_path("/d", 7), "/d/hb-7");
  EXPECT_EQ(done_path("/d", "0-characterize-ab12cd34"),
            "/d/done-0-characterize-ab12cd34");
}

TEST(ShardLease, WriteThenReadRoundTrips) {
  const TempDir dir("finser_lease_roundtrip");
  const std::string path = task_path(dir.path(), 3);
  std::string error;
  ASSERT_TRUE(write_lease(path, sample_record(), &error)) << error;

  LeaseRecord out;
  std::string reason;
  ASSERT_TRUE(try_read_lease(path, kCampaign, out, &reason)) << reason;
  EXPECT_EQ(out.kind, LeaseKind::kTask);
  EXPECT_EQ(out.state, LeaseState::kAssign);
  EXPECT_EQ(out.campaign, kCampaign);
  EXPECT_EQ(out.worker, 3u);
  EXPECT_EQ(out.attempt, 2u);
  EXPECT_EQ(out.seq, 41u);
  EXPECT_EQ(out.stage, "5-sweep-nominal");
  EXPECT_TRUE(out.message.empty());
}

TEST(ShardLease, MissingLeaseIsAQuietMiss) {
  const TempDir dir("finser_lease_missing");
  LeaseRecord out;
  std::string reason;
  EXPECT_FALSE(try_read_lease(heartbeat_path(dir.path(), 0), kCampaign, out,
                              &reason));
  EXPECT_EQ(reason, "no lease");
}

TEST(ShardLease, TruncatedLeaseIsReclaimable) {
  const TempDir dir("finser_lease_trunc");
  const std::string path = task_path(dir.path(), 0);
  ASSERT_TRUE(write_lease(path, sample_record()));

  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(util::read_file(path, raw));
  // Chop mid-body: magic survives, CRC cannot.
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(raw.data()),
             static_cast<std::streamsize>(raw.size() / 2));
  }
  LeaseRecord out;
  std::string reason;
  EXPECT_FALSE(try_read_lease(path, kCampaign, out, &reason));
  EXPECT_NE(reason.find("CRC"), std::string::npos) << reason;

  // Reclaimable: a clean rewrite heals the slot.
  ASSERT_TRUE(write_lease(path, sample_record()));
  EXPECT_TRUE(try_read_lease(path, kCampaign, out, &reason)) << reason;
}

TEST(ShardLease, CrcFlippedLeaseIsReclaimable) {
  const TempDir dir("finser_lease_flip");
  const std::string path = heartbeat_path(dir.path(), 1);
  LeaseRecord rec = sample_record();
  rec.kind = LeaseKind::kHeartbeat;
  rec.state = LeaseState::kRunning;
  ASSERT_TRUE(write_lease(path, rec));

  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(util::read_file(path, raw));
  raw[raw.size() / 2] ^= 0x01;
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(raw.data()),
             static_cast<std::streamsize>(raw.size()));
  }
  LeaseRecord out;
  std::string reason;
  EXPECT_FALSE(try_read_lease(path, kCampaign, out, &reason));
  EXPECT_NE(reason.find("CRC"), std::string::npos) << reason;
}

TEST(ShardLease, StaleCampaignFingerprintIsReclaimable) {
  const TempDir dir("finser_lease_stale");
  const std::string path = done_path(dir.path(), "5-sweep-nominal");
  LeaseRecord rec = sample_record();
  rec.kind = LeaseKind::kDone;
  rec.state = LeaseState::kDone;
  ASSERT_TRUE(write_lease(path, rec));

  // A supervisor running an *edited* campaign must not trust the marker.
  LeaseRecord out;
  std::string reason;
  EXPECT_FALSE(try_read_lease(path, kCampaign + 1, out, &reason));
  EXPECT_NE(reason.find("stale"), std::string::npos) << reason;
}

TEST(ShardLease, GarbageFileNeverThrows) {
  const TempDir dir("finser_lease_garbage");
  const std::string path = task_path(dir.path(), 0);
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a lease";
  }
  LeaseRecord out;
  std::string reason;
  EXPECT_FALSE(try_read_lease(path, kCampaign, out, &reason));
  EXPECT_NE(reason.find("magic"), std::string::npos) << reason;

  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << "FN";
  }
  EXPECT_FALSE(try_read_lease(path, kCampaign, out, &reason));
  EXPECT_NE(reason.find("too short"), std::string::npos) << reason;
}

TEST(ShardLease, TornWriteFaultSiteLandsARejectableRecord) {
  const TempDir dir("finser_lease_torn");
  const std::string path = task_path(dir.path(), 4);

  // lease_torn drops the atomic rename and writes only a prefix — the
  // worst a crashed writer could leave behind.
  util::fault_configure("lease_torn:1");
  ASSERT_TRUE(write_lease(path, sample_record()));
  util::fault_configure("");

  LeaseRecord out;
  std::string reason;
  EXPECT_FALSE(try_read_lease(path, kCampaign, out, &reason));
  EXPECT_TRUE(reason.find("CRC") != std::string::npos ||
              reason.find("too short") != std::string::npos)
      << reason;

  // The supervisor's heal path is a plain rewrite.
  ASSERT_TRUE(write_lease(path, sample_record()));
  EXPECT_TRUE(try_read_lease(path, kCampaign, out, &reason)) << reason;
}

TEST(ShardLease, ObsCountersClassifyOutcomes) {
  obs::Registry::global().reset();
  obs::set_enabled(true);
  const TempDir dir("finser_lease_obs");
  const std::string path = task_path(dir.path(), 0);

  LeaseRecord out;
  EXPECT_FALSE(try_read_lease(path, kCampaign, out));  // quiet miss
  ASSERT_TRUE(write_lease(path, sample_record()));
  EXPECT_TRUE(try_read_lease(path, kCampaign, out));  // valid read

  util::fault_configure("lease_torn:1");
  ASSERT_TRUE(write_lease(path, sample_record()));  // torn
  util::fault_configure("");
  EXPECT_FALSE(try_read_lease(path, kCampaign, out));  // reject

  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("shard.lease.writes").total(), 1u);  // torn ≠ write
  EXPECT_EQ(reg.counter("shard.lease.reads").total(), 1u);
  EXPECT_EQ(reg.counter("shard.lease.rejects").total(), 1u);

  obs::set_enabled(false);
  obs::Registry::global().reset();
}

}  // namespace
}  // namespace finser::shard
