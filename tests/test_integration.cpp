/// \file test_integration.cpp
/// \brief End-to-end assertions of the paper's qualitative findings on a
/// reduced-size flow (small array, few strikes). These are the "does the
/// reproduction reproduce" tests; the full-size numbers live in the bench
/// harness and EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "finser/core/ser_flow.hpp"

namespace finser::core {
namespace {

/// Shared reduced flow: characterize once for the whole suite (it is the
/// expensive step), then sweep both species.
class IntegrationFixture : public ::testing::Test {
 protected:
  struct Data {
    SerFlowConfig cfg;
    EnergySweepResult protons;
    EnergySweepResult alphas;
  };

  static const Data& data() {
    static const Data d = [] {
      SerFlowConfig cfg;
      cfg.array_rows = 5;
      cfg.array_cols = 5;
      cfg.characterization.vdds = {0.7, 1.1};
      cfg.characterization.pv_samples_single = 40;
      cfg.characterization.pv_samples_grid = 12;
      cfg.array_mc.strikes = 25000;
      cfg.proton_bins = 6;
      cfg.alpha_bins = 5;
      cfg.seed = 77;
      SerFlow flow(cfg);
      Data out{cfg, flow.sweep(env::sea_level_protons()),
               flow.sweep(env::package_alphas())};
      return out;
    }();
    return d;
  }

  static double fit(const EnergySweepResult& r, std::size_t vdd_idx,
                    std::size_t mode) {
    return r.fit[vdd_idx][mode].fit_tot;
  }
};

TEST_F(IntegrationFixture, SerIsHigherAtLowerVdd) {
  // Paper conclusion 1.
  for (const auto* sweep : {&data().protons, &data().alphas}) {
    EXPECT_GT(fit(*sweep, 0, kModeWithPv), fit(*sweep, 1, kModeWithPv));
  }
}

TEST_F(IntegrationFixture, ProtonSerComparableToAlphaAtLowVdd) {
  // Paper conclusion 2 (first half): at Vdd = 0.7 V the two sources are the
  // same order of magnitude.
  const double p = fit(data().protons, 0, kModeWithPv);
  const double a = fit(data().alphas, 0, kModeWithPv);
  EXPECT_GT(p, 0.1 * a);
  EXPECT_LT(p, 10.0 * a);
}

TEST_F(IntegrationFixture, ProtonSerCollapsesFasterWithVdd) {
  // Paper conclusion 2 (second half): the proton SER decreases with an
  // "extremely higher rate" as Vdd rises.
  const double p_drop =
      fit(data().protons, 0, kModeWithPv) / fit(data().protons, 1, kModeWithPv);
  const double a_drop =
      fit(data().alphas, 0, kModeWithPv) / fit(data().alphas, 1, kModeWithPv);
  EXPECT_GT(p_drop, 2.0 * a_drop);
}

TEST_F(IntegrationFixture, AlphaMbuRatioExceedsProton) {
  // Paper conclusion 3: MBU/SEU is much higher for alpha radiation.
  const auto& pa = data().alphas.fit[0][kModeWithPv];
  const auto& pp = data().protons.fit[0][kModeWithPv];
  ASSERT_GT(pa.fit_seu, 0.0);
  const double alpha_ratio = pa.fit_mbu / pa.fit_seu;
  const double proton_ratio = pp.fit_seu > 0.0 ? pp.fit_mbu / pp.fit_seu : 0.0;
  EXPECT_GT(alpha_ratio, proton_ratio);
  EXPECT_GT(alpha_ratio, 0.001);  // MBUs actually occur.
  EXPECT_LT(proton_ratio, 0.05);  // Paper: < 2 % (loose MC bound here).
}

TEST_F(IntegrationFixture, NeglectingPvDoesNotOverestimateSer) {
  // Paper conclusion 4: neglecting process variation underestimates SER.
  // With reduced MC the effect is small, so assert the direction with a
  // noise allowance rather than a magnitude.
  for (std::size_t v = 0; v < 2; ++v) {
    const double with_pv = fit(data().alphas, v, kModeWithPv);
    const double nominal = fit(data().alphas, v, kModeNominal);
    EXPECT_GT(with_pv, 0.9 * nominal) << "vdd index " << v;
  }
}

TEST_F(IntegrationFixture, PofDecreasesWithEnergyForProtons) {
  // Paper Fig. 8: POF falls with particle energy (fewer e-h pairs).
  const auto& sweep = data().protons;
  const double first = sweep.per_bin.front().est[0][kModeWithPv].tot;
  const double last = sweep.per_bin.back().est[0][kModeWithPv].tot;
  EXPECT_GT(first, last);
}

TEST_F(IntegrationFixture, AlphaPofExceedsProtonPofAtSameEnergy) {
  // Paper Fig. 8: the alpha POF curve lies far above the proton curve.
  // Compare at ~1 MeV (present in both sweeps' ranges).
  const auto& p = data().protons;
  const auto& a = data().alphas;
  double p_pof = 0.0, a_pof = 0.0;
  for (std::size_t b = 0; b < p.bins.size(); ++b) {
    if (p.bins[b].e_rep_mev >= 0.8 && p.bins[b].e_rep_mev <= 2.5) {
      p_pof = std::max(p_pof, p.per_bin[b].est[0][kModeWithPv].tot);
    }
  }
  for (std::size_t b = 0; b < a.bins.size(); ++b) {
    if (a.bins[b].e_rep_mev >= 0.8 && a.bins[b].e_rep_mev <= 2.5) {
      a_pof = std::max(a_pof, a.per_bin[b].est[0][kModeWithPv].tot);
    }
  }
  EXPECT_GT(a_pof, 3.0 * p_pof);
}

TEST_F(IntegrationFixture, StatisticalErrorsAreReported) {
  const auto& est = data().alphas.per_bin.front().est[0][kModeWithPv];
  EXPECT_GT(est.tot_se, 0.0);
  EXPECT_LT(est.tot_se, est.tot);  // Meaningfully resolved.
}

}  // namespace
}  // namespace finser::core
