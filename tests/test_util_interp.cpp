#include "finser/util/interp.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <limits>
#include <utility>

#include "finser/util/error.hpp"

namespace finser::util {
namespace {

// ---------------------------------------------------------------------------
// Axis
// ---------------------------------------------------------------------------

TEST(Axis, RejectsTooFewPoints) {
  EXPECT_THROW(Axis(std::vector<double>{1.0}), InvalidArgument);
  EXPECT_THROW(Axis(std::vector<double>{}), InvalidArgument);
}

TEST(Axis, RejectsNonIncreasing) {
  EXPECT_THROW(Axis({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(Axis({0.0, 2.0, 1.0}), InvalidArgument);
}

TEST(Axis, RejectsNonPositiveLogPoints) {
  EXPECT_THROW(Axis({0.0, 1.0}, Scale::kLog), InvalidArgument);
  EXPECT_THROW(Axis({-1.0, 1.0}, Scale::kLog), InvalidArgument);
}

TEST(Axis, AccessorsReturnRawCoordinates) {
  Axis a({1.0, 10.0, 100.0}, Scale::kLog);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[1], 10.0);
  EXPECT_DOUBLE_EQ(a[2], 100.0);
  EXPECT_DOUBLE_EQ(a.front(), 1.0);
  EXPECT_DOUBLE_EQ(a.back(), 100.0);
  EXPECT_EQ(a.size(), 3u);
}

TEST(Axis, LocateInterior) {
  Axis a({0.0, 1.0, 3.0});
  const auto loc = a.locate(2.0, OutOfRange::kThrow);
  EXPECT_EQ(loc.index, 1u);
  EXPECT_NEAR(loc.frac, 0.5, 1e-12);
  EXPECT_FALSE(loc.clamped);
}

TEST(Axis, LocateExactGridPoint) {
  Axis a({0.0, 1.0, 3.0});
  const auto loc = a.locate(1.0, OutOfRange::kThrow);
  EXPECT_EQ(loc.index, 1u);
  EXPECT_NEAR(loc.frac, 0.0, 1e-12);
}

TEST(Axis, LocateClampsBelow) {
  Axis a({0.0, 1.0});
  const auto loc = a.locate(-5.0, OutOfRange::kClamp);
  EXPECT_TRUE(loc.clamped);
  EXPECT_EQ(loc.index, 0u);
  EXPECT_DOUBLE_EQ(loc.frac, 0.0);
}

TEST(Axis, LocateClampsAbove) {
  Axis a({0.0, 1.0});
  const auto loc = a.locate(7.0, OutOfRange::kClamp);
  EXPECT_TRUE(loc.clamped);
  EXPECT_EQ(loc.index, 0u);
  EXPECT_DOUBLE_EQ(loc.frac, 1.0);
}

TEST(Axis, LocateThrowsOutOfRange) {
  Axis a({0.0, 1.0});
  EXPECT_THROW(a.locate(-0.1, OutOfRange::kThrow), DomainError);
  EXPECT_THROW(a.locate(1.1, OutOfRange::kThrow), DomainError);
  EXPECT_NO_THROW(a.locate(0.0, OutOfRange::kThrow));
  EXPECT_NO_THROW(a.locate(1.0, OutOfRange::kThrow));
}

TEST(Axis, LogLocateIsLogUniform) {
  Axis a({1.0, 100.0}, Scale::kLog);
  const auto loc = a.locate(10.0, OutOfRange::kThrow);
  EXPECT_NEAR(loc.frac, 0.5, 1e-12);  // Geometric midpoint.
}

TEST(Axis, LogLocateNonPositiveQueryClamps) {
  Axis a({1.0, 100.0}, Scale::kLog);
  const auto loc = a.locate(-1.0, OutOfRange::kClamp);
  EXPECT_TRUE(loc.clamped);
  EXPECT_THROW(a.locate(0.0, OutOfRange::kThrow), DomainError);
}

TEST(MakeAxis, LinearEndpointsExact) {
  Axis a = make_linear_axis(0.25, 0.75, 11);
  EXPECT_EQ(a.size(), 11u);
  EXPECT_DOUBLE_EQ(a.front(), 0.25);
  EXPECT_DOUBLE_EQ(a.back(), 0.75);
}

TEST(MakeAxis, LogEndpointsExact) {
  Axis a = make_log_axis(0.1, 100.0, 7);
  EXPECT_EQ(a.size(), 7u);
  EXPECT_DOUBLE_EQ(a.front(), 0.1);
  EXPECT_DOUBLE_EQ(a.back(), 100.0);
}

TEST(MakeAxis, RejectsBadArguments) {
  EXPECT_THROW(make_linear_axis(1.0, 1.0, 5), InvalidArgument);
  EXPECT_THROW(make_linear_axis(0.0, 1.0, 1), InvalidArgument);
  EXPECT_THROW(make_log_axis(0.0, 1.0, 5), InvalidArgument);
  EXPECT_THROW(make_log_axis(2.0, 1.0, 5), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Grid1
// ---------------------------------------------------------------------------

TEST(Grid1, LinearInterpolationExactAtNodes) {
  Grid1 g(Axis({0.0, 1.0, 2.0}), {5.0, 7.0, 11.0});
  EXPECT_DOUBLE_EQ(g(0.0), 5.0);
  EXPECT_DOUBLE_EQ(g(1.0), 7.0);
  EXPECT_DOUBLE_EQ(g(2.0), 11.0);
}

TEST(Grid1, LinearInterpolationBetweenNodes) {
  Grid1 g(Axis({0.0, 1.0, 2.0}), {5.0, 7.0, 11.0});
  EXPECT_NEAR(g(0.5), 6.0, 1e-12);
  EXPECT_NEAR(g(1.5), 9.0, 1e-12);
}

TEST(Grid1, ClampPolicyEvaluatesAtEdges) {
  Grid1 g(Axis({0.0, 1.0}), {3.0, 4.0});
  EXPECT_DOUBLE_EQ(g(-10.0), 3.0);
  EXPECT_DOUBLE_EQ(g(10.0), 4.0);
}

TEST(Grid1, ZeroPolicyReturnsZeroOutside) {
  Grid1 g(Axis({0.0, 1.0}), {3.0, 4.0}, Scale::kLinear, OutOfRange::kZero);
  EXPECT_DOUBLE_EQ(g(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(g(1.1), 0.0);
  EXPECT_DOUBLE_EQ(g(0.5), 3.5);
}

TEST(Grid1, LogValuesInterpolateGeometrically) {
  Grid1 g(Axis({0.0, 1.0}), {1.0, 100.0}, Scale::kLog);
  EXPECT_NEAR(g(0.5), 10.0, 1e-9);
}

TEST(Grid1, LogValuesRejectNonPositive) {
  EXPECT_THROW(Grid1(Axis({0.0, 1.0}), {0.0, 1.0}, Scale::kLog), InvalidArgument);
}

TEST(Grid1, SizeMismatchThrows) {
  EXPECT_THROW(Grid1(Axis({0.0, 1.0}), {1.0, 2.0, 3.0}), InvalidArgument);
}

TEST(Grid1, IntegrateConstantFunction) {
  Grid1 g(Axis({0.0, 2.0, 4.0}), {3.0, 3.0, 3.0});
  EXPECT_NEAR(g.integrate(), 12.0, 1e-12);
  EXPECT_NEAR(g.integrate(1.0, 3.0), 6.0, 1e-12);
}

TEST(Grid1, IntegrateLinearRamp) {
  Grid1 g(Axis({0.0, 1.0}), {0.0, 2.0});
  EXPECT_NEAR(g.integrate(), 1.0, 1e-12);       // Triangle area.
  EXPECT_NEAR(g.integrate(0.5, 1.0), 0.75, 1e-12);
}

TEST(Grid1, IntegrateClipsToRange) {
  Grid1 g(Axis({0.0, 1.0}), {1.0, 1.0});
  EXPECT_NEAR(g.integrate(-5.0, 5.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(g.integrate(2.0, 3.0), 0.0);
}

TEST(Grid1, IntegrateInvertedRangeThrows) {
  Grid1 g(Axis({0.0, 1.0}), {1.0, 1.0});
  EXPECT_THROW(g.integrate(1.0, 0.0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Grid2 / Grid3
// ---------------------------------------------------------------------------

TEST(Grid2, BilinearReproducesPlane) {
  // f(x, y) = 2x + 3y + 1 is reproduced exactly by bilinear interpolation.
  Axis ax({0.0, 1.0, 2.0});
  Axis ay({0.0, 2.0});
  std::vector<double> v;
  for (double x : {0.0, 1.0, 2.0}) {
    for (double y : {0.0, 2.0}) v.push_back(2.0 * x + 3.0 * y + 1.0);
  }
  Grid2 g(ax, ay, v);
  EXPECT_NEAR(g(0.5, 1.0), 2.0 * 0.5 + 3.0 * 1.0 + 1.0, 1e-12);
  EXPECT_NEAR(g(1.7, 0.3), 2.0 * 1.7 + 3.0 * 0.3 + 1.0, 1e-12);
}

TEST(Grid2, ClampsAtCorners) {
  Grid2 g(Axis({0.0, 1.0}), Axis({0.0, 1.0}), {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(g(-1.0, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(g(2.0, 2.0), 4.0);
}

TEST(Grid2, SizeMismatchThrows) {
  EXPECT_THROW(Grid2(Axis({0.0, 1.0}), Axis({0.0, 1.0}), {1.0, 2.0, 3.0}),
               InvalidArgument);
}

TEST(Grid3, TrilinearReproducesLinearField) {
  Axis a({0.0, 1.0});
  std::vector<double> v;
  for (double x : {0.0, 1.0}) {
    for (double y : {0.0, 1.0}) {
      for (double z : {0.0, 1.0}) v.push_back(x + 10.0 * y + 100.0 * z);
    }
  }
  Grid3 g(a, a, a, v);
  EXPECT_NEAR(g(0.3, 0.6, 0.9), 0.3 + 6.0 + 90.0, 1e-12);
  EXPECT_NEAR(g(1.0, 0.0, 0.5), 1.0 + 50.0, 1e-12);
}

TEST(Grid3, ZeroPolicy) {
  Axis a({0.0, 1.0});
  Grid3 g(a, a, a, std::vector<double>(8, 5.0), OutOfRange::kZero);
  EXPECT_DOUBLE_EQ(g(0.5, 0.5, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(g(1.5, 0.5, 0.5), 0.0);
}

// Property sweep: interpolation is bounded by tabulated values and monotone
// tables interpolate monotonically.
class Grid1Property : public ::testing::TestWithParam<double> {};

TEST_P(Grid1Property, BoundedByTableExtremes) {
  Grid1 g(Axis({0.0, 0.3, 1.1, 2.0}), {1.0, 4.0, 2.0, 8.0});
  const double x = GetParam();
  const double y = g(x);
  EXPECT_GE(y, 1.0);
  EXPECT_LE(y, 8.0);
}

TEST_P(Grid1Property, MonotoneTableInterpolatesMonotonically) {
  Grid1 g(Axis({0.0, 0.3, 1.1, 2.0}), {1.0, 2.0, 5.0, 9.0});
  const double x = GetParam();
  EXPECT_LE(g(x), g(std::min(x + 0.05, 2.0)) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(QuerySweep, Grid1Property,
                         ::testing::Values(0.0, 0.1, 0.29, 0.3, 0.7, 1.0, 1.1,
                                           1.5, 1.9, 2.0));

// ---------------------------------------------------------------------------
// Non-finite rejection (the response-surface layer leans on these contracts:
// a NaN poisoning a lerp weight would silently corrupt every served answer).
// ---------------------------------------------------------------------------

TEST(Axis, RejectsNonFinitePoints) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Axis({0.0, nan}), InvalidArgument);
  EXPECT_THROW(Axis({nan, 1.0}), InvalidArgument);
  EXPECT_THROW(Axis({0.0, inf}), InvalidArgument);
  EXPECT_THROW(Axis({-inf, 1.0}), InvalidArgument);
}

TEST(Axis, LocateRejectsNonFiniteQueryUnderEveryPolicy) {
  Axis a({0.0, 1.0, 3.0});
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  for (const auto policy :
       {OutOfRange::kClamp, OutOfRange::kThrow, OutOfRange::kZero}) {
    EXPECT_THROW(a.locate(nan, policy), DomainError);
    EXPECT_THROW(a.locate(inf, policy), DomainError);
    EXPECT_THROW(a.locate(-inf, policy), DomainError);
  }
}

TEST(Grid1, RejectsNonFiniteValues) {
  EXPECT_THROW(Grid1(Axis({0.0, 1.0}), {1.0, std::nan("")}), InvalidArgument);
  EXPECT_THROW(
      Grid1(Axis({0.0, 1.0}), {std::numeric_limits<double>::infinity(), 1.0}),
      InvalidArgument);
}

TEST(Grid2, RejectsNonFiniteValues) {
  EXPECT_THROW(
      Grid2(Axis({0.0, 1.0}), Axis({0.0, 1.0}), {1.0, 2.0, std::nan(""), 4.0}),
      InvalidArgument);
}

TEST(Grid3, RejectsNonFiniteValues) {
  std::vector<double> v(8, 1.0);
  v[5] = -std::numeric_limits<double>::infinity();
  EXPECT_THROW(Grid3(Axis({0.0, 1.0}), Axis({0.0, 1.0}), Axis({0.0, 1.0}), v),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Query-order independence: evaluation is a pure function of (table, x), so
// any permutation and repetition of queries must produce bit-identical
// doubles. The serving layer's byte-stability contract rests on this.
// ---------------------------------------------------------------------------

TEST(Grid1, QueriesAreBitIdenticalAcrossOrder) {
  Grid1 g(Axis({0.1, 1.0, 10.0, 100.0}, Scale::kLog),
          {3.0, 1.5, 0.25, 0.75});
  const std::vector<double> xs = {0.05, 0.1,  0.37, 1.0,  2.5,
                                  10.0, 42.0, 99.0, 100.0, 250.0};
  std::vector<double> forward, backward, interleaved;
  for (const double x : xs) forward.push_back(g(x));
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) backward.push_back(g(*it));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t j = (i * 7) % xs.size();
    (void)g(xs[j]);  // warm-up noise: must not perturb anything
    interleaved.push_back(g(xs[j]));
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // memcmp-grade equality, not EXPECT_DOUBLE_EQ: the contract is bitwise.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(forward[i]),
              std::bit_cast<std::uint64_t>(backward[xs.size() - 1 - i]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(interleaved[i]),
              std::bit_cast<std::uint64_t>(forward[(i * 7) % xs.size()]));
  }
}

TEST(Grid2, QueriesAreBitIdenticalAcrossOrder) {
  Grid2 g(Axis({0.0, 1.0, 2.0}), Axis({0.0, 10.0}),
          {1.0, 2.0, 0.5, 4.0, 8.0, 0.125});
  std::vector<std::pair<double, double>> qs;
  for (const double x : {-1.0, 0.0, 0.4, 1.0, 1.7, 2.0, 3.0}) {
    for (const double y : {-5.0, 0.0, 3.3, 10.0, 20.0}) qs.emplace_back(x, y);
  }
  std::vector<double> forward;
  for (const auto& [x, y] : qs) forward.push_back(g(x, y));
  for (std::size_t i = qs.size(); i-- > 0;) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(g(qs[i].first, qs[i].second)),
              std::bit_cast<std::uint64_t>(forward[i]));
  }
}

}  // namespace
}  // namespace finser::util
