#include <gtest/gtest.h>

#include "finser/logic/set_chain.hpp"
#include "finser/util/error.hpp"

namespace finser::logic {
namespace {

TEST(SetChain, NoChargeNoGlitch) {
  SetChainSimulator sim(ChainDesign{}, 0.8);
  const auto out = sim.inject(0.0);
  EXPECT_FALSE(out.propagated);
  EXPECT_DOUBLE_EQ(out.width_out_s, 0.0);
  EXPECT_LT(out.peak_excursion_v, 0.05);
}

TEST(SetChain, LargeChargePropagates) {
  SetChainSimulator sim(ChainDesign{}, 0.8);
  const auto out = sim.inject(0.5);
  EXPECT_TRUE(out.propagated);
  EXPECT_GT(out.width_out_s, 1e-13);
  EXPECT_GT(out.peak_excursion_v, 0.4);
}

TEST(SetChain, CriticalChargeBracketsPropagation) {
  SetChainSimulator sim(ChainDesign{}, 0.8);
  const double qc = sim.critical_charge_fc(1.0, 5e-4);
  ASSERT_LT(qc, 1e29);
  EXPECT_TRUE(sim.inject(qc + 1e-3).propagated);
  EXPECT_FALSE(sim.inject(qc - 2e-3).propagated);
}

TEST(SetChain, GlitchWidthGrowsWithCharge) {
  SetChainSimulator sim(ChainDesign{}, 0.8);
  const double qc = sim.critical_charge_fc();
  double prev = 0.0;
  for (double scale : {1.2, 2.0, 3.0, 5.0}) {
    const auto out = sim.inject(scale * qc);
    ASSERT_TRUE(out.propagated) << scale;
    EXPECT_GE(out.width_out_s, prev - 1e-13) << scale;
    prev = out.width_out_s;
  }
}

TEST(SetChain, ElectricalMaskingRaisesQcritWithDepth) {
  // Narrow glitches attenuate stage by stage ([15]'s electrical masking):
  // a longer chain needs more injected charge to disturb its output.
  double prev = 0.0;
  for (std::size_t stages : {2u, 4u, 8u, 16u}) {
    ChainDesign d;
    d.stages = stages;
    SetChainSimulator sim(d, 0.8);
    const double qc = sim.critical_charge_fc();
    EXPECT_GT(qc, prev) << stages;
    prev = qc;
  }
}

TEST(SetChain, QcritGrowsWithVdd) {
  double prev = 0.0;
  for (double vdd : {0.7, 0.9, 1.1}) {
    SetChainSimulator sim(ChainDesign{}, vdd);
    const double qc = sim.critical_charge_fc();
    EXPECT_GT(qc, prev) << vdd;
    prev = qc;
  }
}

TEST(SetChain, HeavierLoadRaisesQcrit) {
  ChainDesign light;
  ChainDesign heavy;
  heavy.cload_f = 4.0 * light.cload_f;
  SetChainSimulator sim_l(light, 0.8);
  SetChainSimulator sim_h(heavy, 0.8);
  EXPECT_GT(sim_h.critical_charge_fc(), sim_l.critical_charge_fc());
}

TEST(SetChain, NeverPropagatesReturnsSentinel) {
  SetChainSimulator sim(ChainDesign{}, 0.8);
  EXPECT_GT(sim.critical_charge_fc(1e-4, 1e-5), 1e29);  // Ceiling too low.
}

TEST(SetChain, RejectsBadInputs) {
  EXPECT_THROW(SetChainSimulator(ChainDesign{}, 0.0), util::InvalidArgument);
  ChainDesign d;
  d.stages = 0;
  EXPECT_THROW(SetChainSimulator(d, 0.8), util::InvalidArgument);
  SetChainSimulator sim(ChainDesign{}, 0.8);
  EXPECT_THROW(sim.inject(-1.0), util::InvalidArgument);
  EXPECT_THROW(sim.critical_charge_fc(0.0), util::InvalidArgument);
}

TEST(LatchWindow, CaptureProbability) {
  EXPECT_DOUBLE_EQ(latch_capture_probability(0.0, 1e-9, 10e-12), 0.0);
  // 20 ps pulse + 10 ps window over a 1 ns period: 3 %.
  EXPECT_NEAR(latch_capture_probability(20e-12, 1e-9, 10e-12), 0.03, 1e-12);
  // Pulse longer than the period: always captured.
  EXPECT_DOUBLE_EQ(latch_capture_probability(2e-9, 1e-9, 10e-12), 1.0);
  EXPECT_THROW(latch_capture_probability(1e-12, 0.0, 0.0), util::InvalidArgument);
}

TEST(LatchWindow, FasterClockCapturesMore) {
  const double w = 5e-12;
  EXPECT_GT(latch_capture_probability(w, 0.5e-9, 5e-12),
            latch_capture_probability(w, 2e-9, 5e-12));
}

}  // namespace
}  // namespace finser::logic
