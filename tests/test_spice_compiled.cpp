/// \file test_spice_compiled.cpp
/// \brief Equivalence contract of the compiled SPICE path.
///
/// The compiled (devirtualized, rebindable) evaluation path must be
/// *byte-identical* to the polymorphic reference path — same MNA matrices,
/// same solutions, same waveforms, same strike outcomes — on randomized
/// device soups as well as on the real SRAM cell, including across
/// parameter rebinds, warm solver workspaces and a kill-and-resume
/// characterization run. These tests are the license for the compiled path
/// to be the default engine everywhere.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/exec/cancel.hpp"
#include "finser/spice/batch.hpp"
#include "finser/spice/compiled.hpp"
#include "finser/spice/dc.hpp"
#include "finser/spice/devices.hpp"
#include "finser/spice/finfet.hpp"
#include "finser/spice/transient.hpp"
#include "finser/spice/vecmath.hpp"
#include "finser/sram/cell.hpp"
#include "finser/sram/characterize.hpp"
#include "finser/stats/rng.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/error.hpp"

namespace finser::spice {
namespace {

// ---------------------------------------------------------------------------
// Random device soups
// ---------------------------------------------------------------------------

/// A random mixed-kind netlist. Electrical sanity is irrelevant here — the
/// stamping contract must hold for any topology the Circuit API accepts.
Circuit make_soup(stats::Rng& rng) {
  Circuit c;
  const std::size_t n_nodes = 3 + rng.uniform_index(6);
  std::vector<std::size_t> nodes{kGround};
  for (std::size_t i = 0; i < n_nodes; ++i) {
    nodes.push_back(c.node("n" + std::to_string(i)));
  }
  const auto pick = [&] { return nodes[rng.uniform_index(nodes.size())]; };
  const auto pick_pair = [&] {
    std::size_t a = pick();
    std::size_t b = pick();
    while (b == a) b = pick();
    return std::pair<std::size_t, std::size_t>{a, b};
  };

  const std::size_t n_devices = 8 + rng.uniform_index(13);
  for (std::size_t d = 0; d < n_devices; ++d) {
    switch (rng.uniform_index(6)) {
      case 0: {
        const auto [a, b] = pick_pair();
        c.add<Resistor>(a, b, rng.uniform(10.0, 1e6));
        break;
      }
      case 1: {
        const auto [a, b] = pick_pair();
        c.add<Capacitor>(a, b, rng.uniform(1e-16, 1e-14));
        break;
      }
      case 2: {
        const auto [a, b] = pick_pair();
        c.add<VSource>(c, a, b, rng.uniform(-1.0, 1.0));
        break;
      }
      case 3: {
        const auto [a, b] = pick_pair();
        const double t0 = rng.uniform(0.0, 4e-12);
        c.add<PwlVSource>(
            c, a, b,
            std::vector<std::pair<double, double>>{
                {t0, rng.uniform(-1.0, 1.0)},
                {t0 + rng.uniform(1e-13, 5e-12), rng.uniform(-1.0, 1.0)}});
        break;
      }
      case 4: {
        const auto [a, b] = pick_pair();
        const double q = rng.uniform(0.01e-15, 0.5e-15);
        const double w = rng.uniform(1e-15, 1e-13);
        const double delay = rng.uniform(0.0, 5e-12);
        c.add<PulseISource>(
            a, b,
            rng.uniform() < 0.5
                ? PulseShape::rectangular_for_charge(q, w, delay)
                : PulseShape::triangular_for_charge(q, w, delay));
        break;
      }
      default: {
        const FinFetModel& model =
            rng.uniform() < 0.5 ? default_nfet() : default_pfet();
        auto& m = c.add<Mosfet>(pick(), pick(), pick(), model,
                                1.0 + static_cast<double>(rng.uniform_index(3)));
        m.set_delta_vt(rng.normal(0.0, 0.05));
        break;
      }
    }
  }
  return c;
}

std::vector<double> random_iterate(stats::Rng& rng, std::size_t n) {
  std::vector<double> x(n);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

void expect_same_system(const Mna& a, const Mna& b, std::size_t n,
                        const char* where) {
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a.rhs_at(i), b.rhs_at(i)) << where << ": rhs row " << i;
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(a.matrix_at(i, j), b.matrix_at(i, j))
          << where << ": entry (" << i << ", " << j << ")";
    }
  }
}

TEST(SpiceCompiled, RandomSoupStampsAreByteIdentical) {
  stats::Rng rng(20140604);
  for (int trial = 0; trial < 40; ++trial) {
    const Circuit c = make_soup(rng);
    CompiledCircuit cc(c);
    ASSERT_EQ(cc.device_count(), c.devices().size());
    const std::size_t n = c.unknown_count();
    Mna ref(n);
    Mna cmp(n);

    // DC stamp at a random iterate.
    StampContext ctx;
    ctx.branch_offset = c.node_count();
    const std::vector<double> x_dc = random_iterate(rng, n);
    ctx.x = &x_dc;
    ref.clear();
    cmp.clear();
    for (const auto& dev : c.devices()) dev->stamp(ref, ctx);
    cc.stamp_all(cmp, ctx);
    expect_same_system(ref, cmp, n, "dc");

    // Transient stamp: fresh state from a random operating point, then two
    // accepted steps so the capacitor histories (kept separately by each
    // path) must evolve in lockstep.
    const std::vector<double> x0 = random_iterate(rng, n);
    for (const auto& dev : c.devices()) dev->initialize_state(x0);
    cc.initialize_state(x0);
    ctx.transient = true;
    ctx.method = rng.uniform() < 0.5 ? Integrator::kBackwardEuler
                                     : Integrator::kTrapezoidal;
    std::vector<double> x_step = x0;
    double t = 0.0;
    for (int step = 0; step < 2; ++step) {
      ctx.dt = rng.uniform(1e-15, 1e-12);
      t += ctx.dt;
      ctx.time = t;
      x_step = random_iterate(rng, n);
      ctx.x = &x_step;
      ref.clear();
      cmp.clear();
      for (const auto& dev : c.devices()) dev->stamp(ref, ctx);
      cc.stamp_all(cmp, ctx);
      expect_same_system(ref, cmp, n, step == 0 ? "tran step 0" : "tran step 1");
      for (const auto& dev : c.devices()) dev->commit(ctx);
      cc.commit(ctx);
    }

    // Breakpoints (order-insensitive by contract: the engine sorts them).
    std::vector<double> b_ref;
    std::vector<double> b_cmp;
    for (const auto& dev : c.devices()) dev->add_breakpoints(1e-11, b_ref);
    cc.add_breakpoints(1e-11, b_cmp);
    std::sort(b_ref.begin(), b_ref.end());
    std::sort(b_cmp.begin(), b_cmp.end());
    ASSERT_EQ(b_ref, b_cmp);
  }
}

// The fused stamp path (raw flat arrays + precomputed slot indices, used by
// the compiled Newton kernel) must produce the same dense system as the
// Mna-based stamp, entry for entry, with every ground contribution absorbed
// by the trailing scratch slots.
TEST(SpiceCompiled, FusedStampMatchesMnaOnSoups) {
  stats::Rng rng(19830426);
  for (int trial = 0; trial < 40; ++trial) {
    const Circuit c = make_soup(rng);
    CompiledCircuit cc(c);
    const std::size_t n = c.unknown_count();
    Mna ref(n);
    SolveWorkspace ws;
    ws.fused_for(n);

    StampContext ctx;
    ctx.branch_offset = c.node_count();
    std::vector<double> x = random_iterate(rng, n);
    ctx.x = &x;

    const auto check = [&](const char* where) {
      ref.clear();
      cc.stamp_all(ref, ctx);
      std::fill(ws.fa.begin(), ws.fa.end(), 0.0);
      std::fill(ws.fb.begin(), ws.fb.end(), 0.0);
      cc.stamp_fused(ws.fa.data(), ws.fb.data(), ctx);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ws.fb[i], ref.rhs_at(i)) << where << ": rhs row " << i;
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_EQ(ws.fa[i * n + j], ref.matrix_at(i, j))
              << where << ": entry (" << i << ", " << j << ")";
        }
      }
    };

    check("dc");

    cc.initialize_state(x);
    ctx.transient = true;
    ctx.method = rng.uniform() < 0.5 ? Integrator::kBackwardEuler
                                     : Integrator::kTrapezoidal;
    double t = 0.0;
    for (int step = 0; step < 2; ++step) {
      ctx.dt = rng.uniform(1e-15, 1e-12);
      t += ctx.dt;
      ctx.time = t;
      x = random_iterate(rng, n);
      check(step == 0 ? "tran step 0" : "tran step 1");
      cc.commit(ctx);
    }
  }
}

// The baked per-device plan (bake_finfet + evaluate_finfet_planned) must
// reproduce the reference model evaluation bit for bit over the whole bias
// space, for both polarities and off-nominal ΔVt / fin count / temperature.
TEST(SpiceCompiled, PlannedFinfetEvalIsByteIdentical) {
  stats::Rng rng(65537);
  for (int trial = 0; trial < 2000; ++trial) {
    const bool pmos = rng.uniform() < 0.5;
    const FinFetModel& m = pmos ? default_pfet() : default_nfet();
    const double delta_vt = rng.normal(0.0, 0.06);
    const double nfin = 1.0 + static_cast<double>(rng.uniform_index(3));
    const double temp_k = rng.uniform(250.0, 400.0);
    const FinFetPlan plan = bake_finfet(m, delta_vt, nfin, temp_k);

    const double vd = rng.uniform(-1.2, 1.2);
    const double vg = rng.uniform(-1.2, 1.2);
    const double vs = rng.uniform(-1.2, 1.2);
    const MosOp ref = evaluate_finfet(m, vd, vg, vs, delta_vt, nfin, temp_k);
    const MosOp got = evaluate_finfet_planned(plan, vd, vg, vs);
    ASSERT_EQ(ref.ids, got.ids) << (pmos ? "pfet" : "nfet") << " trial "
                                << trial;
    ASSERT_EQ(ref.gm, got.gm);
    ASSERT_EQ(ref.gds, got.gds);
  }
}

// ---------------------------------------------------------------------------
// Solution-level equivalence on a solvable circuit, across rebinds
// ---------------------------------------------------------------------------

/// A randomized but well-posed circuit: a supply-driven FinFET inverter
/// chain with storage caps and a strike-style current pulse — every node has
/// a DC path, so both DC and transient solves converge.
struct SolvableCircuit {
  Circuit c;
  VSource* supply = nullptr;
  Mosfet* nfet = nullptr;
  PulseISource* pulse = nullptr;
};

SolvableCircuit make_solvable(stats::Rng& rng) {
  SolvableCircuit s;
  const auto vdd = s.c.node("vdd");
  const auto in = s.c.node("in");
  const auto out = s.c.node("out");
  const auto out2 = s.c.node("out2");
  const double vdd_v = rng.uniform(0.6, 1.0);
  s.supply = &s.c.add<VSource>(s.c, vdd, kGround, vdd_v);
  s.c.add<VSource>(s.c, in, kGround, rng.uniform(0.0, 0.2));
  s.nfet = &s.c.add<Mosfet>(out, in, kGround, default_nfet(), 1.0);
  s.c.add<Mosfet>(out, in, vdd, default_pfet(), 1.0);
  s.c.add<Mosfet>(out2, out, kGround, default_nfet(), 1.0);
  s.c.add<Mosfet>(out2, out, vdd, default_pfet(), 1.0);
  s.c.add<Resistor>(out, out2, rng.uniform(1e4, 1e6));
  s.c.add<Capacitor>(out, kGround, rng.uniform(0.05e-15, 0.3e-15));
  s.c.add<Capacitor>(out2, kGround, rng.uniform(0.05e-15, 0.3e-15));
  s.pulse = &s.c.add<PulseISource>(
      out, kGround,
      PulseShape::rectangular_for_charge(rng.uniform(0.01e-15, 0.2e-15),
                                         rng.uniform(5e-15, 5e-14), 1e-12));
  return s;
}

void expect_same_vector(const std::vector<double>& a,
                        const std::vector<double>& b, const char* where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << where << ": component " << i;
  }
}

void expect_same_waveform(const Waveform& a, const Waveform& b,
                          const char* where) {
  ASSERT_EQ(a.sample_count(), b.sample_count()) << where;
  ASSERT_EQ(a.probe_count(), b.probe_count()) << where;
  for (std::size_t i = 0; i < a.sample_count(); ++i) {
    ASSERT_EQ(a.times()[i], b.times()[i]) << where << ": time " << i;
    for (std::size_t p = 0; p < a.probe_count(); ++p) {
      ASSERT_EQ(a.value(p, i), b.value(p, i))
          << where << ": probe " << p << ", sample " << i;
    }
  }
}

TEST(SpiceCompiled, SolutionsMatchAcrossRebindsAndWarmWorkspace) {
  stats::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    SolvableCircuit s = make_solvable(rng);
    CompiledCircuit cc(s.c);
    SolveWorkspace ws;  // Deliberately reused across every solve below.

    TransientOptions topt;
    topt.t_end = 20e-12;

    for (int pass = 0; pass < 3; ++pass) {
      // Mutate every rebindable parameter, then rebind the plan.
      s.supply->set_voltage(rng.uniform(0.6, 1.0));
      s.nfet->set_delta_vt(rng.normal(0.0, 0.05));
      s.pulse->set_shape(PulseShape::triangular_for_charge(
          rng.uniform(0.01e-15, 0.3e-15), rng.uniform(5e-15, 5e-14), 1e-12));
      cc.rebind();

      const std::vector<double> x_ref = solve_dc(s.c);
      const std::vector<double> x_cmp = solve_dc(cc, ws);
      expect_same_vector(x_ref, x_cmp, "dc");

      const Waveform w_ref = run_transient(s.c, x_ref, topt, {"out", "out2"});
      const Waveform w_cmp = run_transient(cc, ws, x_cmp, topt, {"out", "out2"});
      expect_same_waveform(w_ref, w_cmp, "transient");
    }
  }
}

// ---------------------------------------------------------------------------
// Lane-batched engine: byte-equality against the scalar compiled path
// ---------------------------------------------------------------------------

/// Restores the auto lane-width resolution no matter how a test exits.
struct LaneWidthGuard {
  explicit LaneWidthGuard(std::size_t w) { set_lane_width(w); }
  ~LaneWidthGuard() { set_lane_width(0); }
  LaneWidthGuard(const LaneWidthGuard&) = delete;
  LaneWidthGuard& operator=(const LaneWidthGuard&) = delete;
};

TEST(SpiceBatch, LaneWidthSelection) {
  EXPECT_TRUE(lane_width_valid(0));
  EXPECT_TRUE(lane_width_valid(1));
  EXPECT_TRUE(lane_width_valid(4));
  EXPECT_TRUE(lane_width_valid(8));
  EXPECT_FALSE(lane_width_valid(2));
  EXPECT_FALSE(lane_width_valid(16));
  EXPECT_THROW(set_lane_width(3), util::InvalidArgument);
  {
    LaneWidthGuard g(4);
    EXPECT_EQ(lane_width(), 4u);
  }
  EXPECT_EQ(lane_width(), kDefaultLaneWidth);
}

// The deterministic exp/log1p kernels are pinned by golden tests at the
// waveform level; this is the direct accuracy contract against libm — a few
// ulp over the biased ranges the FinFET model actually exercises.
TEST(SpiceBatch, VecmathTracksLibm) {
  stats::Rng rng(360360);
  for (int trial = 0; trial < 20000; ++trial) {
    const double x = rng.uniform(-60.0, 60.0);
    const double want = std::exp(x);
    const double got = detail::fexp(x);
    EXPECT_NEAR(got, want, 4.0 * std::abs(want) * 2.2e-16) << "fexp(" << x << ")";
    const double u = rng.uniform(0.0, 1e6);
    const double wl = std::log1p(u);
    const double gl = detail::flog1p(u);
    EXPECT_NEAR(gl, wl, 4.0 * std::abs(wl) * 2.2e-16 + 1e-300)
        << "flog1p(" << u << ")";
  }
  EXPECT_EQ(detail::fexp(1000.0),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(detail::fexp(-1000.0), 0.0);
  EXPECT_EQ(detail::flog1p(0.0), 0.0);
}

/// Per-lane parameter set for a SolvableCircuit rebind.
struct LaneParams {
  double vdd;
  double dvt;
  double q;
  double w;
};

LaneParams random_params(stats::Rng& rng) {
  return LaneParams{rng.uniform(0.6, 1.0), rng.normal(0.0, 0.05),
                    rng.uniform(0.01e-15, 0.3e-15), rng.uniform(5e-15, 5e-14)};
}

void bind_params(SolvableCircuit& s, CompiledCircuit& cc, const LaneParams& p) {
  s.supply->set_voltage(p.vdd);
  s.nfet->set_delta_vt(p.dvt);
  s.pulse->set_shape(PulseShape::triangular_for_charge(p.q, p.w, 1e-12));
  cc.rebind();
}

// The batched transient must reproduce the scalar compiled engine byte for
// byte, per lane, for every compiled width — including lanes carrying
// different supply voltages, ΔVt and pulse shapes, and ragged tails where
// only some lanes are occupied.
TEST(SpiceBatch, BatchTransientMatchesScalarPerLane) {
  stats::Rng rng(271828);
  TransientOptions topt;
  topt.t_end = 20e-12;

  for (int trial = 0; trial < 3; ++trial) {
    SolvableCircuit s = make_solvable(rng);
    CompiledCircuit cc(s.c);
    SolveWorkspace ws;

    // Eight parameter sets; each width consumes a prefix, so the same lane
    // is checked under every width.
    std::vector<LaneParams> params;
    for (int k = 0; k < 8; ++k) params.push_back(random_params(rng));

    // Scalar references.
    std::vector<std::vector<double>> x0(params.size());
    std::vector<Waveform> ref;
    for (std::size_t k = 0; k < params.size(); ++k) {
      bind_params(s, cc, params[k]);
      x0[k] = solve_dc(cc, ws);
      ref.push_back(run_transient(cc, ws, x0[k], topt, {"out", "out2"}));
    }

    for (std::size_t width : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      BatchWorkspace bw;
      cc.batch_configure(bw, width);
      std::vector<std::vector<double>> lanes_x0(width);
      for (std::size_t k = 0; k < width; ++k) {
        bind_params(s, cc, params[k]);
        cc.batch_rebind_lane(bw, k);
        lanes_x0[k] = x0[k];
      }
      const BatchTransientResult res =
          run_transient_batch(cc, bw, lanes_x0, topt, {"out", "out2"});
      for (std::size_t k = 0; k < width; ++k) {
        ASSERT_FALSE(res.failed[k]) << res.errors[k];
        expect_same_waveform(
            ref[k], res.waves[k],
            ("width " + std::to_string(width) + " lane " + std::to_string(k))
                .c_str());
      }

      // Ragged tail: only the first two lanes occupied; the occupied lanes
      // must not feel the masked ones.
      if (width > 2) {
        cc.batch_configure(bw, width);
        std::vector<std::vector<double>> tail_x0(2);
        for (std::size_t k = 0; k < 2; ++k) {
          bind_params(s, cc, params[k]);
          cc.batch_rebind_lane(bw, k);
          tail_x0[k] = x0[k];
        }
        const BatchTransientResult tail =
            run_transient_batch(cc, bw, tail_x0, topt, {"out", "out2"});
        for (std::size_t k = 0; k < 2; ++k) {
          ASSERT_FALSE(tail.failed[k]) << tail.errors[k];
          expect_same_waveform(
              ref[k], tail.waves[k],
              ("ragged width " + std::to_string(width) + " lane " +
               std::to_string(k))
                  .c_str());
        }
      }
    }
  }
}

TEST(SpiceCompiled, UnsupportedDeviceKindThrows) {
  class Ghost : public Device {
   public:
    void stamp(Mna&, const StampContext&) const override {}
    const char* kind() const override { return "ghost"; }
  };
  Circuit c;
  c.node("n");
  c.add<Ghost>();
  EXPECT_THROW(CompiledCircuit{c}, util::InvalidArgument);
}

}  // namespace
}  // namespace finser::spice

namespace finser::sram {
namespace {

// ---------------------------------------------------------------------------
// StrikeSimulator: reference vs compiled engine
// ---------------------------------------------------------------------------

TEST(SpiceCompiled, StrikeSimulatorEnginesAgreeExactly) {
  const CellDesign design;
  stats::Rng rng(4242);
  for (double vdd : {0.7, 1.0}) {
    StrikeSimulator ref(design, vdd, AccessMode::kRetention,
                        SpiceEngine::kReference);
    StrikeSimulator fast(design, vdd, AccessMode::kRetention,
                         SpiceEngine::kCompiled);
    EXPECT_EQ(fast.engine(), SpiceEngine::kCompiled);

    DeltaVt dvt{};
    for (int trial = 0; trial < 6; ++trial) {
      // Re-use each ΔVt twice to exercise the compiled DC hold cache: the
      // cached-hold simulate must still match the reference bit-for-bit.
      if (trial % 2 == 0) {
        for (double& v : dvt) v = rng.normal(0.0, design.sigma_vt);
      }
      const StrikeCharges q{rng.uniform(0.0, 0.3), rng.uniform(0.0, 0.3),
                            rng.uniform(0.0, 0.3)};
      const auto kind = trial % 2 == 0 ? spice::PulseShape::Kind::kRectangular
                                       : spice::PulseShape::Kind::kTriangular;
      const StrikeOutcome a = ref.simulate(q, dvt, kind);
      const StrikeOutcome b = fast.simulate(q, dvt, kind);
      EXPECT_EQ(a.flipped, b.flipped) << "vdd " << vdd << ", trial " << trial;
      EXPECT_EQ(a.final_q_v, b.final_q_v);
      EXPECT_EQ(a.final_qb_v, b.final_qb_v);

      const auto h_ref = ref.hold_state(dvt);
      const auto h_cmp = fast.hold_state(dvt);
      EXPECT_EQ(h_ref[0], h_cmp[0]);
      EXPECT_EQ(h_ref[1], h_cmp[1]);
    }
  }
}

// ---------------------------------------------------------------------------
// Lane-batched StrikeSimulator and characterizer
// ---------------------------------------------------------------------------

struct LaneWidthGuard {
  explicit LaneWidthGuard(std::size_t w) { spice::set_lane_width(w); }
  ~LaneWidthGuard() { spice::set_lane_width(0); }
  LaneWidthGuard(const LaneWidthGuard&) = delete;
  LaneWidthGuard& operator=(const LaneWidthGuard&) = delete;
};

// simulate_batch must reproduce scalar simulate() byte for byte at every
// lane width, for group sizes that exercise full groups, internal splitting
// (count > width) and ragged tails — and the per-sample results must not
// depend on the width or on where the batch boundaries fall.
TEST(SpiceBatch, StrikeOutcomesMatchScalarAcrossWidths) {
  const CellDesign design;
  stats::Rng rng(991199);

  // A sample set that reuses some ΔVt vectors (hold-cache hits) and spans
  // both pulse kinds.
  constexpr std::size_t kCount = 11;
  std::vector<StrikeCharges> charges;
  std::vector<DeltaVt> dvts;
  for (std::size_t k = 0; k < kCount; ++k) {
    charges.push_back(StrikeCharges{rng.uniform(0.0, 0.3),
                                    rng.uniform(0.0, 0.3),
                                    rng.uniform(0.0, 0.3)});
    DeltaVt dvt{};
    if (k % 3 != 0) {
      for (double& v : dvt) v = rng.normal(0.0, design.sigma_vt);
    }
    dvts.push_back(dvt);
  }
  const std::vector<std::uint8_t> all(kCount, 1);

  for (double vdd : {0.7, 1.0}) {
    // Scalar references from a fresh simulator.
    StrikeSimulator ref_sim(design, vdd);
    std::vector<StrikeOutcome> ref;
    for (std::size_t k = 0; k < kCount; ++k) {
      ref.push_back(ref_sim.simulate(charges[k], dvts[k],
                                     spice::PulseShape::Kind::kRectangular));
    }

    for (std::size_t width : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      LaneWidthGuard guard(width);
      StrikeSimulator sim(design, vdd);
      std::vector<StrikeSimulator::LaneOutcome> out;
      sim.simulate_batch(charges, dvts, spice::PulseShape::Kind::kRectangular,
                         all, out);
      ASSERT_EQ(out.size(), kCount);
      for (std::size_t k = 0; k < kCount; ++k) {
        ASSERT_FALSE(out[k].failed) << out[k].error;
        EXPECT_EQ(out[k].outcome.flipped, ref[k].flipped)
            << "vdd " << vdd << " width " << width << " sample " << k;
        EXPECT_EQ(out[k].outcome.final_q_v, ref[k].final_q_v);
        EXPECT_EQ(out[k].outcome.final_qb_v, ref[k].final_qb_v);
      }

      // Batch-boundary independence: the same samples fed one at a time
      // (every call a ragged tail of one) give the same answers.
      StrikeSimulator one_by_one(design, vdd);
      for (std::size_t k = 0; k < kCount; ++k) {
        std::vector<StrikeSimulator::LaneOutcome> single;
        one_by_one.simulate_batch({charges[k]}, {dvts[k]},
                                  spice::PulseShape::Kind::kRectangular, {1},
                                  single);
        ASSERT_FALSE(single[0].failed) << single[0].error;
        EXPECT_EQ(single[0].outcome.final_q_v, ref[k].final_q_v)
            << "width " << width << " sample " << k;
        EXPECT_EQ(single[0].outcome.final_qb_v, ref[k].final_qb_v);
      }
    }
  }
}

// Inactive lanes must be left untouched and active lanes must not feel them.
TEST(SpiceBatch, MaskedLanesAreUntouched) {
  LaneWidthGuard guard(4);
  const CellDesign design;
  StrikeSimulator sim(design, 0.8);
  const std::vector<StrikeCharges> charges(5, StrikeCharges{0.15, 0.0, 0.1});
  const std::vector<DeltaVt> dvts(5);
  const std::vector<std::uint8_t> active{1, 0, 1, 0, 1};
  std::vector<StrikeSimulator::LaneOutcome> out(5);
  out[1].error = "sentinel";
  out[3].error = "sentinel";
  sim.simulate_batch(charges, dvts, spice::PulseShape::Kind::kRectangular,
                     active, out);
  EXPECT_EQ(out[1].error, "sentinel");
  EXPECT_EQ(out[3].error, "sentinel");
  const StrikeOutcome want = StrikeSimulator(design, 0.8).simulate(
      charges[0], dvts[0], spice::PulseShape::Kind::kRectangular);
  for (std::size_t k : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    ASSERT_FALSE(out[k].failed) << out[k].error;
    EXPECT_EQ(out[k].outcome.final_q_v, want.final_q_v) << "lane " << k;
    EXPECT_EQ(out[k].outcome.final_qb_v, want.final_qb_v);
  }
}

// The full characterization table — CDFs, nominal boundaries, grid MC — must
// be byte-identical for every lane width (the scalar width is the reference).
TEST(SpiceBatch, CharacterizeAtAgreesAcrossLaneWidths) {
  CharacterizerConfig cfg;
  cfg.vdds = {0.8};
  cfg.pv_samples_single = 5;
  cfg.pair_grid_points = 6;
  cfg.triple_grid_points = 6;
  cfg.pv_samples_grid = 3;
  cfg.seed = 99;
  cfg.threads = 2;
  const CellDesign design;
  const CellCharacterizer ch(design, cfg);

  auto table_bytes = [&](std::size_t width) {
    LaneWidthGuard guard(width);
    const PofTable t = ch.characterize_at(0.8, 5);
    util::ByteWriter w;
    t.write(w);
    return w.take();
  };
  const std::vector<std::uint8_t> want = table_bytes(1);
  EXPECT_EQ(want, table_bytes(4));
  EXPECT_EQ(want, table_bytes(8));
}

// ---------------------------------------------------------------------------
// Kill-and-resume through the compiled characterizer path
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> model_bytes(const CellSoftErrorModel& model) {
  util::ByteWriter w;
  for (const PofTable& t : model.tables) t.write(w);
  return w.take();
}

TEST(SpiceCompiled, CharacterizerResumesThroughCompiledPath) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "finser_compiled_resume.bin")
          .string();
  std::remove(path.c_str());

  CharacterizerConfig cfg;
  cfg.vdds = {0.7, 0.9};
  cfg.pv_samples_single = 6;
  cfg.pair_grid_points = 6;
  cfg.triple_grid_points = 6;
  cfg.pv_samples_grid = 4;
  cfg.seed = 13;
  cfg.threads = 2;
  const CellDesign design;
  const CellCharacterizer ch(design, cfg);

  // Uninterrupted baseline (no checkpointing at all).
  const CellSoftErrorModel want = ch.characterize();

  // Killed run: cancel as soon as the second voltage reports progress; the
  // first voltage's table is already flushed to the checkpoint.
  ckpt::RunOptions run;
  run.checkpoint_path = path;
  run.checkpoint_interval_sec = 0.0;
  exec::CancelToken token;
  run.cancel = &token;
  bool saw_second = false;
  const exec::ProgressSink canceller([&](const std::string& msg) {
    if (msg.find("vdd=0.9") != std::string::npos && !saw_second) {
      saw_second = true;
      token.cancel();
    }
  });
  EXPECT_THROW(ch.characterize(canceller, run), util::Cancelled);
  EXPECT_TRUE(saw_second);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resume without the token: the restored voltage is reused and the final
  // model is byte-identical to the uninterrupted run.
  run.cancel = nullptr;
  const CellSoftErrorModel got = ch.characterize({}, run);
  EXPECT_EQ(model_bytes(want), model_bytes(got));
  EXPECT_FALSE(std::filesystem::exists(path));
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// Same contract with the lane-batched engine forced on: a killed batched run
// resumes to the byte-identical model — and that model equals a scalar
// (width 1) uninterrupted run, so a resume may even change lane width.
TEST(SpiceBatch, CharacterizerResumesThroughBatchedPath) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "finser_batched_resume.bin")
          .string();
  std::remove(path.c_str());

  CharacterizerConfig cfg;
  cfg.vdds = {0.7, 0.9};
  cfg.pv_samples_single = 6;
  cfg.pair_grid_points = 6;
  cfg.triple_grid_points = 6;
  cfg.pv_samples_grid = 4;
  cfg.seed = 13;
  cfg.threads = 2;
  const CellDesign design;
  const CellCharacterizer ch(design, cfg);

  std::vector<std::uint8_t> want;
  {
    LaneWidthGuard scalar(1);
    want = model_bytes(ch.characterize());
  }

  LaneWidthGuard batched(4);
  ckpt::RunOptions run;
  run.checkpoint_path = path;
  run.checkpoint_interval_sec = 0.0;
  exec::CancelToken token;
  run.cancel = &token;
  bool saw_second = false;
  const exec::ProgressSink canceller([&](const std::string& msg) {
    if (msg.find("vdd=0.9") != std::string::npos && !saw_second) {
      saw_second = true;
      token.cancel();
    }
  });
  EXPECT_THROW(ch.characterize(canceller, run), util::Cancelled);
  EXPECT_TRUE(saw_second);
  ASSERT_TRUE(std::filesystem::exists(path));

  run.cancel = nullptr;
  const CellSoftErrorModel got = ch.characterize({}, run);
  EXPECT_EQ(want, model_bytes(got));
  EXPECT_FALSE(std::filesystem::exists(path));
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace finser::sram
