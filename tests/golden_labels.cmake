# Included by ctest after gtest test discovery (TEST_INCLUDE_FILES, see
# tests/CMakeLists.txt). Labels every finser_golden_tests case `golden`
# (regression lock on the paper figures) and `slow` (so sanitizer CI jobs
# can exclude them with `ctest -LE slow`). gtest_discover_tests cannot
# forward a list-valued LABELS property itself — the semicolon is flattened
# during argument forwarding — hence this ctest-time include.
set_tests_properties(
  GoldenFigures.Fig4EhPairsVsEnergy
  GoldenFigures.Fig8PofVsEnergy
  GoldenFigures.Fig9FitVsVdd
  PROPERTIES LABELS "golden;slow")
