#include <gtest/gtest.h>

#include <cmath>

#include "finser/phys/collection.hpp"
#include "finser/phys/fin_mc.hpp"
#include "finser/phys/straggling.hpp"
#include "finser/phys/stopping.hpp"
#include "finser/phys/track.hpp"
#include "finser/stats/summary.hpp"
#include "finser/util/error.hpp"

namespace finser::phys {
namespace {

const Material& si = silicon();

// ---------------------------------------------------------------------------
// Straggling
// ---------------------------------------------------------------------------

TEST(Straggling, BohrSigmaScalesWithSqrtLength) {
  const double s1 = bohr_sigma_mev(Species::kProton, 1.0, 10.0, si);
  const double s4 = bohr_sigma_mev(Species::kProton, 1.0, 40.0, si);
  EXPECT_NEAR(s4 / s1, 2.0, 1e-9);
  EXPECT_GT(s1, 0.0);
}

TEST(Straggling, XiScalesLinearlyWithLength) {
  const double x1 = landau_xi_mev(Species::kProton, 5.0, 10.0, si);
  const double x3 = landau_xi_mev(Species::kProton, 5.0, 30.0, si);
  EXPECT_NEAR(x3 / x1, 3.0, 1e-9);
}

TEST(Straggling, KappaRegimes) {
  // Slow proton in a fin: many soft collisions -> kappa >> 1 (Gaussian).
  EXPECT_GT(vavilov_kappa(Species::kProton, 0.2, 26.0, si), 1.0);
  // Fast proton: rare hard collisions -> kappa << 1 (Landau/Moyal).
  EXPECT_LT(vavilov_kappa(Species::kProton, 50.0, 26.0, si), 0.1);
}

TEST(Straggling, NoneModelIsDeterministic) {
  stats::Rng rng(5);
  const double loss = sample_energy_loss(StragglingModel::kNone, rng,
                                         Species::kProton, 1.0, 0.01, 10.0, si);
  EXPECT_DOUBLE_EQ(loss, 0.01);
}

TEST(Straggling, SamplesClampedToAvailableEnergy) {
  stats::Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const double loss =
        sample_energy_loss(StragglingModel::kGaussian, rng, Species::kProton,
                           0.002, 0.0019, 26.0, si);
    EXPECT_GE(loss, 0.0);
    EXPECT_LE(loss, 0.002);
  }
}

TEST(Straggling, GaussianMeanMatches) {
  stats::Rng rng(7);
  stats::RunningStats s;
  const double mean = 0.003;
  for (int i = 0; i < 20000; ++i) {
    s.add(sample_energy_loss(StragglingModel::kGaussian, rng, Species::kProton,
                             1.0, mean, 26.0, si));
  }
  EXPECT_NEAR(s.mean(), mean, 5.0 * s.stderr_of_mean() + 1e-5);
}

TEST(Straggling, MoyalMeanMatchesAndIsSkewed) {
  stats::Rng rng(8);
  stats::RunningStats s;
  // Use the physically consistent CSDA mean so the Moyal scale xi and the
  // mean belong to the same segment.
  const double e = 50.0;
  const double mean = csda_energy_loss(Species::kProton, e, 26.0, si);
  double max_seen = 0.0;
  for (int i = 0; i < 30000; ++i) {
    const double x = sample_energy_loss(StragglingModel::kMoyal, rng,
                                        Species::kProton, e, mean, 26.0, si);
    s.add(x);
    max_seen = std::max(max_seen, x);
  }
  EXPECT_NEAR(s.mean(), mean, 8.0 * s.stderr_of_mean() + 1e-6);
  EXPECT_GT(max_seen, 2.0 * mean);  // Heavy upper tail (delta rays).
}

TEST(Straggling, AutoSelectsRegimeByKappa) {
  // At low energy the auto model must behave like Gaussian (no heavy tail):
  // the 99.9th percentile stays within ~4 sigma of the mean.
  stats::Rng rng(9);
  const double e = 0.2;
  const double mean = csda_energy_loss(Species::kProton, e, 26.0, si);
  const double sigma = bohr_sigma_mev(Species::kProton, e, 26.0, si);
  double max_seen = 0.0;
  for (int i = 0; i < 20000; ++i) {
    max_seen = std::max(max_seen, sample_energy_loss(StragglingModel::kAuto, rng,
                                                     Species::kProton, e, mean,
                                                     26.0, si));
  }
  EXPECT_LT(max_seen, mean + 6.0 * sigma);
}

TEST(Straggling, RejectsNegativeInputs) {
  stats::Rng rng(10);
  EXPECT_THROW(bohr_sigma_mev(Species::kProton, 1.0, -1.0, si),
               util::InvalidArgument);
  EXPECT_THROW(sample_energy_loss(StragglingModel::kNone, rng, Species::kProton,
                                  1.0, -0.1, 10.0, si),
               util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Collection model (paper Eqs. 1-3)
// ---------------------------------------------------------------------------

TEST(Collection, TransitTimePaperEq2) {
  // Paper: tau > 10 fs for the Fig. 3a transistor at Vdd = 1 V, with
  // L = 20 nm and mu_e = 400 cm^2/Vs giving exactly 10 fs.
  FinTechnology tech;
  EXPECT_NEAR(transit_time_fs(tech, 1.0), 10.0, 1e-9);
  EXPECT_NEAR(transit_time_fs(tech, 0.7), 10.0 / 0.7, 1e-9);
  EXPECT_THROW(transit_time_fs(tech, 0.0), util::InvalidArgument);
}

TEST(Collection, PassageMuchShorterThanTransit) {
  // The separation tau_p << tau justifies the instantaneous-generation
  // assumption (paper Sec. 3.3).
  FinTechnology tech;
  const double tau = transit_time_fs(tech, 1.0);
  const double tau_p = passage_time_fs(Species::kAlpha, 5.0, tech.w_fin_nm);
  EXPECT_LT(tau_p * 5.0, tau);
}

TEST(Collection, EhPairsFromEnergy) {
  EXPECT_NEAR(eh_pairs_from_energy(3.6e-6, si), 1.0, 1e-9);
  EXPECT_NEAR(eh_pairs_from_energy(1.0, si), 277778.0, 1.0);
  EXPECT_DOUBLE_EQ(eh_pairs_from_energy(1.0, silicon_dioxide()), 0.0);
  EXPECT_THROW(eh_pairs_from_energy(-1.0, si), util::InvalidArgument);
}

TEST(Collection, ChargeFromPairs) {
  // 1 fC = 6242 electrons; 625 pairs ≈ 0.1001 fC.
  EXPECT_NEAR(charge_fc_from_pairs(625.0), 625.0 * 1.602176634e-4, 1e-12);
  EXPECT_NEAR(charge_fc_from_pairs(6241.5), 1.0, 1e-3);
  EXPECT_DOUBLE_EQ(charge_fc_from_pairs(0.0), 0.0);
}

TEST(Collection, DriftPulseChargeConsistency) {
  FinTechnology tech;
  const double pairs = 1000.0;
  const CurrentPulse p = drift_pulse(pairs, tech, 0.8);
  EXPECT_NEAR(p.width_fs, transit_time_fs(tech, 0.8), 1e-12);
  EXPECT_NEAR(p.charge_fc(), charge_fc_from_pairs(pairs), 1e-9);
  EXPECT_GT(p.amplitude_a, 0.0);
}

// ---------------------------------------------------------------------------
// Track transport
// ---------------------------------------------------------------------------

geom::BoxSet single_fin() {
  geom::BoxSet set;
  set.add({{0, 0, 0}, {10, 20, 26}});
  return set;
}

TEST(Transport, StraightThroughDepositMatchesCsda) {
  const geom::BoxSet fins = single_fin();
  Transporter::Config cfg;
  cfg.straggling = StragglingModel::kNone;
  Transporter t(fins, cfg);
  stats::Rng rng(1);

  const geom::Ray ray{{5, 10, 50}, {0, 0, -1}};
  const auto res = t.transport(ray, Species::kAlpha, 2.0, rng);
  ASSERT_EQ(res.deposits.size(), 1u);
  EXPECT_NEAR(res.deposits[0].path_nm, 26.0, 1e-9);
  const double expected = csda_energy_loss(Species::kAlpha, 2.0, 26.0, si);
  EXPECT_NEAR(res.deposits[0].energy_mev, expected, 0.02 * expected);
  EXPECT_NEAR(res.deposits[0].eh_pairs,
              eh_pairs_from_energy(res.deposits[0].energy_mev, si),
              res.deposits[0].eh_pairs * 0.05 + 1.0);
}

TEST(Transport, EnergyConservation) {
  const geom::BoxSet fins = single_fin();
  Transporter::Config cfg;
  cfg.straggling = StragglingModel::kNone;
  Transporter t(fins, cfg);
  stats::Rng rng(2);
  const geom::Ray ray{{5, 10, 50}, {0, 0, -1}};
  const double e0 = 1.0;
  const auto res = t.transport(ray, Species::kProton, e0, rng);
  double deposited = 0.0;
  for (const auto& d : res.deposits) deposited += d.energy_mev;
  EXPECT_LE(deposited + res.exit_energy_mev, e0 + 1e-12);
}

TEST(Transport, MissProducesNoDeposit) {
  const geom::BoxSet fins = single_fin();
  Transporter t(fins);
  stats::Rng rng(3);
  const auto res = t.transport({{100, 100, 50}, {0, 0, -1}}, Species::kAlpha,
                               5.0, rng);
  EXPECT_TRUE(res.deposits.empty());
  EXPECT_NEAR(res.exit_energy_mev, 5.0, 1e-9);
}

TEST(Transport, LowEnergyParticleStopsInside) {
  // A 10 keV proton has ~0.15 um range; a 500 nm silicon slab absorbs it.
  geom::BoxSet fins;
  fins.add({{0, 0, 0}, {100, 100, 500}});
  Transporter::Config cfg;
  cfg.straggling = StragglingModel::kNone;
  Transporter t(fins, cfg);
  stats::Rng rng(4);
  const auto res = t.transport({{50, 50, 501}, {0, 0, -1}}, Species::kProton,
                               0.01, rng);
  EXPECT_TRUE(res.stopped_inside);
  EXPECT_DOUBLE_EQ(res.exit_energy_mev, 0.0);
  ASSERT_EQ(res.deposits.size(), 1u);
  // Essentially the whole kinetic energy ionizes (minus the nuclear share).
  EXPECT_GT(res.deposits[0].energy_mev, 0.008);
}

TEST(Transport, MultiFinDepositsAreOrderedAndDegraded) {
  geom::BoxSet fins;
  fins.add({{0, 0, 0}, {10, 20, 26}});
  fins.add({{100, 0, 0}, {110, 20, 26}});
  Transporter::Config cfg;
  cfg.straggling = StragglingModel::kNone;
  Transporter t(fins, cfg);
  stats::Rng rng(5);
  // Horizontal ray through both fins at mid-height, low energy so dE/dx
  // grows as the particle slows (below the Bragg peak the loss drops).
  const geom::Ray ray{{-5, 10, 13}, {1, 0, 0}};
  const auto res = t.transport(ray, Species::kAlpha, 3.0, rng);
  ASSERT_EQ(res.deposits.size(), 2u);
  EXPECT_EQ(res.deposits[0].fin_id, 0u);
  EXPECT_EQ(res.deposits[1].fin_id, 1u);
  // 3 MeV alpha is above the Bragg peak: slowing increases dE/dx, so the
  // second fin receives more than the first.
  EXPECT_GT(res.deposits[1].energy_mev, res.deposits[0].energy_mev);
}

TEST(Transport, RejectsBadInput) {
  const geom::BoxSet fins = single_fin();
  Transporter t(fins);
  stats::Rng rng(6);
  EXPECT_THROW(t.transport({{0, 0, 10}, {0, 0, -2}}, Species::kAlpha, 5.0, rng),
               util::InvalidArgument);  // Non-unit direction.
  EXPECT_THROW(t.transport({{0, 0, 10}, {0, 0, -1}}, Species::kAlpha, 0.0, rng),
               util::InvalidArgument);
  geom::BoxSet empty;
  EXPECT_THROW(Transporter bad(empty), util::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Single-fin strike MC (paper Fig. 4 machinery)
// ---------------------------------------------------------------------------

TEST(FinMc, MeanChordTheorem) {
  // Isotropic chords through a convex body have mean length 4V/S.
  const geom::Aabb fin{{0, 0, 0}, {10, 20, 26}};
  FinStrikeMc::Config cfg;
  cfg.samples = 40000;
  cfg.straggling = StragglingModel::kNone;
  FinStrikeMc mc(fin, cfg);
  stats::Rng rng(7);
  const auto stats = mc.run(Species::kAlpha, 5.0, rng);
  const double v = 10.0 * 20.0 * 26.0;
  const double s = 2.0 * (10 * 20 + 10 * 26 + 20 * 26);
  EXPECT_NEAR(stats.mean_chord_nm, 4.0 * v / s, 0.15);
  EXPECT_GT(stats.hit_fraction, 0.3);
  EXPECT_LT(stats.hit_fraction, 0.8);
}

TEST(FinMc, AlphaYieldsMorePairsThanProton) {
  const geom::Aabb fin{{0, 0, 0}, {10, 20, 26}};
  FinStrikeMc::Config cfg;
  cfg.samples = 8000;
  FinStrikeMc mc(fin, cfg);
  stats::Rng rng(8);
  for (double e : {0.5, 1.0, 5.0}) {
    const auto a = mc.run(Species::kAlpha, e, rng);
    const auto p = mc.run(Species::kProton, e, rng);
    EXPECT_GT(a.mean_eh_pairs, 2.0 * p.mean_eh_pairs) << e;
  }
}

TEST(FinMc, PairsDecreaseAboveBraggPeak) {
  const geom::Aabb fin{{0, 0, 0}, {10, 20, 26}};
  FinStrikeMc::Config cfg;
  cfg.samples = 8000;
  FinStrikeMc mc(fin, cfg);
  stats::Rng rng(9);
  const auto lo = mc.run(Species::kAlpha, 1.0, rng);
  const auto hi = mc.run(Species::kAlpha, 20.0, rng);
  EXPECT_GT(lo.mean_eh_pairs, 2.0 * hi.mean_eh_pairs);
}

TEST(FinMc, LutCoversRangeAndClamps) {
  const geom::Aabb fin{{0, 0, 0}, {10, 20, 26}};
  FinStrikeMc::Config cfg;
  cfg.samples = 2000;
  FinStrikeMc mc(fin, cfg);
  stats::Rng rng(10);
  const auto lut = mc.build_lut(Species::kProton, 0.1, 100.0, 8, rng);
  EXPECT_GT(lut(0.1), 0.0);
  EXPECT_GT(lut(0.05), 0.0);   // Clamped below.
  EXPECT_GT(lut(200.0), 0.0);  // Clamped above.
  EXPECT_GT(lut(0.15), lut(50.0));
}

TEST(FinMc, RejectsBadConfig) {
  const geom::Aabb fin{{0, 0, 0}, {10, 20, 26}};
  FinStrikeMc::Config cfg;
  cfg.samples = 0;
  EXPECT_THROW(FinStrikeMc bad(fin, cfg), util::InvalidArgument);
  FinStrikeMc mc(fin);
  stats::Rng rng(11);
  EXPECT_THROW(mc.run(Species::kAlpha, 0.0, rng), util::InvalidArgument);
}

}  // namespace
}  // namespace finser::phys
