/// \file test_mna_reference.cpp
/// \brief Reference tests of the dense MNA LU solver: residual accuracy on
/// random diagonally-dominant systems and the explicit error paths
/// (singular matrix, non-finite right-hand side).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "finser/spice/mna.hpp"
#include "finser/stats/rng.hpp"
#include "finser/util/error.hpp"

namespace finser::spice {
namespace {

/// Dense copy of a random strictly diagonally dominant system stamped into
/// \p mna. Diagonal dominance guarantees a well-conditioned LU (no pivot
/// collapse), so the residual bound below is a pure accuracy statement.
struct DenseSystem {
  std::size_t n;
  std::vector<double> a;  // Row-major n×n.
  std::vector<double> b;
};

DenseSystem stamp_random_system(Mna& mna, std::size_t n, stats::Rng& rng) {
  DenseSystem sys{n, std::vector<double>(n * n, 0.0),
                  std::vector<double>(n, 0.0)};
  for (std::size_t i = 0; i < n; ++i) {
    double off_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double g = rng.uniform(-1.0, 1.0);
      sys.a[i * n + j] = g;
      off_sum += std::abs(g);
    }
    // Strict dominance with a healthy margin, random sign on the diagonal.
    const double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
    sys.a[i * n + i] = sign * (off_sum + 1.0 + rng.uniform());
    sys.b[i] = rng.uniform(-10.0, 10.0);
  }
  mna.clear();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (sys.a[i * n + j] != 0.0) mna.add(i, j, sys.a[i * n + j]);
    }
    mna.add_rhs(i, sys.b[i]);
  }
  return sys;
}

double residual_inf_norm(const DenseSystem& sys, const std::vector<double>& x) {
  double worst = 0.0;
  for (std::size_t i = 0; i < sys.n; ++i) {
    double acc = -sys.b[i];
    for (std::size_t j = 0; j < sys.n; ++j) acc += sys.a[i * sys.n + j] * x[j];
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

TEST(MnaReference, RandomDiagonallyDominantSystems) {
  stats::Rng rng(31415);
  for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u}) {
    for (int trial = 0; trial < 25; ++trial) {
      Mna mna(n);
      const DenseSystem sys = stamp_random_system(mna, n, rng);
      const std::vector<double> x = mna.solve();
      ASSERT_EQ(x.size(), n);
      EXPECT_LT(residual_inf_norm(sys, x), 1e-9)
          << "n = " << n << ", trial " << trial;
    }
  }
}

TEST(MnaReference, SolveIsRepeatableAfterClear) {
  stats::Rng rng(8);
  Mna mna(6);
  const DenseSystem sys = stamp_random_system(mna, 6, rng);
  const std::vector<double> x1 = mna.solve();

  mna.clear();
  for (std::size_t i = 0; i < sys.n; ++i) {
    for (std::size_t j = 0; j < sys.n; ++j) {
      if (sys.a[i * sys.n + j] != 0.0) mna.add(i, j, sys.a[i * sys.n + j]);
    }
    mna.add_rhs(i, sys.b[i]);
  }
  const std::vector<double> x2 = mna.solve();
  for (std::size_t i = 0; i < sys.n; ++i) EXPECT_EQ(x1[i], x2[i]);
}

TEST(MnaReference, SingularMatrixThrows) {
  // All-zero matrix: no pivot in column 0.
  Mna zero(4);
  zero.add_rhs(0, 1.0);
  EXPECT_THROW(zero.solve(), util::NumericalError);

  // Two identical rows: rank deficiency surfaces at the second column.
  Mna dup(3);
  for (std::size_t j = 0; j < 3; ++j) {
    dup.add(0, j, static_cast<double>(j) + 1.0);
    dup.add(1, j, static_cast<double>(j) + 1.0);
  }
  dup.add(2, 2, 5.0);
  dup.add_rhs(0, 1.0);
  EXPECT_THROW(dup.solve(), util::NumericalError);
}

TEST(MnaReference, NonFiniteRhsThrows) {
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    Mna mna(3);
    for (std::size_t i = 0; i < 3; ++i) mna.add(i, i, 2.0);
    mna.add_rhs(1, bad);
    try {
      mna.solve();
      FAIL() << "expected NumericalError for rhs = " << bad;
    } catch (const util::NumericalError& e) {
      EXPECT_NE(std::string(e.what()).find("non-finite rhs"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(MnaReference, StampingIntoConsumedSystemThrows) {
  // The factorization destroys A and b in place; silently stamping on top of
  // the LU factors used to produce garbage on the next solve. Every mutation
  // of a consumed system must throw the lifecycle LogicError instead.
  stats::Rng rng(99);
  Mna mna(4);
  stamp_random_system(mna, 4, rng);
  (void)mna.solve();

  EXPECT_THROW(mna.add(0, 0, 1.0), util::LogicError);
  EXPECT_THROW(mna.add_rhs(0, 1.0), util::LogicError);
  EXPECT_THROW(mna.add_gmin(1e-9, 4), util::LogicError);
  EXPECT_THROW((void)mna.solve(), util::LogicError);

  // Ground-index stamps are still state-checked: the contract violation is
  // the call itself, not whether the stamp would have landed.
  EXPECT_THROW(mna.add(kGround, 0, 1.0), util::LogicError);

  // clear() re-arms the system for a fresh stamp/solve cycle.
  mna.clear();
  const DenseSystem sys = stamp_random_system(mna, 4, rng);
  const std::vector<double> x = mna.solve();
  EXPECT_LT(residual_inf_norm(sys, x), 1e-9);
}

TEST(MnaReference, CachedPivotSolveIsBitIdenticalToFresh) {
  // solve_with_cache must be byte-for-byte solve(): the cached pivot order
  // is verified against the same column scan fresh pivoting performs, so
  // the elimination arithmetic never depends on the prediction.
  stats::Rng rng_fresh(2718);
  stats::Rng rng_cached(2718);
  Mna fresh(7);
  Mna cached(7);
  Mna::PivotCache cache;
  std::vector<double> x_cached;
  for (int trial = 0; trial < 50; ++trial) {
    stamp_random_system(fresh, 7, rng_fresh);
    stamp_random_system(cached, 7, rng_cached);
    const std::vector<double> x_fresh = fresh.solve();
    cached.solve_with_cache(cache, x_cached);
    ASSERT_EQ(x_cached.size(), x_fresh.size());
    for (std::size_t i = 0; i < x_fresh.size(); ++i) {
      EXPECT_EQ(x_fresh[i], x_cached[i]) << "trial " << trial << ", i = " << i;
    }
  }
}

TEST(MnaReference, PivotCacheSurvivesNearIdenticalResolves) {
  // The Newton-resolve pattern: the same topology refactored with slightly
  // perturbed values. Whether the cached order holds or falls back, the
  // solution must match a fresh solve exactly.
  Mna cached(5);
  Mna fresh(5);
  Mna::PivotCache cache;
  std::vector<double> x_cached;
  for (int iter = 0; iter < 20; ++iter) {
    const double eps = 1e-6 * iter;
    for (Mna* m : {&cached, &fresh}) {
      m->clear();
      for (std::size_t i = 0; i < 5; ++i) {
        m->add(i, i, 4.0 + eps * static_cast<double>(i));
        if (i + 1 < 5) {
          m->add(i, i + 1, -1.0 - eps);
          m->add(i + 1, i, -1.0 + eps);
        }
        m->add_rhs(i, 1.0 + eps);
      }
    }
    cached.solve_with_cache(cache, x_cached);
    const std::vector<double> x_fresh = fresh.solve();
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(x_fresh[i], x_cached[i]);
    EXPECT_TRUE(cache.valid);
  }
}

TEST(MnaReference, SingularSolveInvalidatesPivotCache) {
  Mna mna(3);
  Mna::PivotCache cache;
  std::vector<double> x;
  for (std::size_t i = 0; i < 3; ++i) {
    mna.add(i, i, 1.0);
    mna.add_rhs(i, 1.0);
  }
  mna.solve_with_cache(cache, x);
  EXPECT_TRUE(cache.valid);

  mna.clear();  // All-zero matrix: singular at column 0.
  EXPECT_THROW(mna.solve_with_cache(cache, x), util::NumericalError);
  EXPECT_FALSE(cache.valid);
}

TEST(MnaReference, GroundStampsAreIgnored) {
  // Stamps against kGround are dropped by contract; the solve must behave
  // as if they were never added.
  Mna mna(2);
  mna.add(0, 0, 1.0);
  mna.add(1, 1, 1.0);
  mna.add(kGround, 0, 123.0);
  mna.add(0, kGround, 456.0);
  mna.add_rhs(kGround, 789.0);
  mna.add_rhs(0, 2.0);
  mna.add_rhs(1, 3.0);
  const std::vector<double> x = mna.solve();
  EXPECT_EQ(x[0], 2.0);
  EXPECT_EQ(x[1], 3.0);
}

}  // namespace
}  // namespace finser::spice
