/// \file test_obs.cpp
/// \brief finser::obs unit tests: metric primitives, the registry, the JSON
/// layer's round-trip guarantees, the RunReport schema, and the headline
/// contract — the report's "metrics" section is byte-identical across
/// thread counts for the same seed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "finser/core/array_mc.hpp"
#include "finser/obs/obs.hpp"
#include "finser/obs/report.hpp"
#include "finser/util/error.hpp"
#include "finser/util/json.hpp"

namespace finser::obs {
namespace {

/// Every test runs with a clean registry and leaves collection off, so the
/// tests compose in one process in any order.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_trace_enabled(false);
    set_enabled(false);
    Registry::global().reset();
  }
};

TEST_F(ObsTest, CounterAccumulatesAcrossThreads) {
  Counter& c = Registry::global().counter("t.counter");
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.total(), 8 * kPerThread);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST_F(ObsTest, IntHistogramBucketsByBitWidth) {
  IntHistogram& h = Registry::global().int_histogram("t.hist");
  h.record(0);   // bit_width 0 -> bucket 0
  h.record(1);   // bucket 1
  h.record(2);   // bucket 2
  h.record(3);   // bucket 2
  h.record(7);   // bucket 3
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 13u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  const auto b = h.buckets();
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 1u);
}

TEST_F(ObsTest, MacrosAreNoOpsWhenDisabled) {
  set_enabled(false);
  FINSER_OBS_COUNT("t.disabled", 5);
  FINSER_OBS_RECORD("t.disabled_hist", 5);
  set_enabled(true);
  const Snapshot s = Registry::global().snapshot();
  for (const auto& c : s.counters) EXPECT_NE(c.name, "t.disabled");
  for (const auto& h : s.histograms) EXPECT_NE(h.name, "t.disabled_hist");
}

TEST_F(ObsTest, ScopedSpanRecordsDuration) {
  { ScopedSpan span("t.span"); }
  { ScopedSpan span("t.span"); }
  const Snapshot s = Registry::global().snapshot();
  ASSERT_EQ(s.durations.size(), 1u);
  EXPECT_EQ(s.durations[0].name, "t.span");
  EXPECT_EQ(s.durations[0].count, 2u);
  EXPECT_GE(s.durations[0].max_ns, s.durations[0].min_ns);
}

TEST_F(ObsTest, TraceEventsBufferOnlyWhenTracing) {
  { ScopedSpan span("t.untraced"); }
  EXPECT_TRUE(Registry::global().trace_events().empty());

  set_trace_enabled(true);
  { ScopedSpan span("t.traced", "t.traced label=1"); }
  const auto events = Registry::global().trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "t.traced label=1");

  // The aggregate stat keys off the static name, not the trace label.
  bool found = false;
  for (const auto& d : Registry::global().snapshot().durations) {
    found = found || d.name == "t.traced";
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, ChromeTraceDocumentShape) {
  set_trace_enabled(true);
  { ScopedSpan span("t.ev"); }
  const util::JsonValue doc = build_chrome_trace(Registry::global());
  ASSERT_TRUE(doc.contains("traceEvents"));
  const util::JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 1u);
  const util::JsonValue& e = events.at(0);
  EXPECT_EQ(e.at("ph").as_string(), "X");
  EXPECT_EQ(e.at("name").as_string(), "t.ev");
  EXPECT_GE(e.at("dur").as_double(), 0.0);
  for (const char* key : {"ts", "pid", "tid"}) EXPECT_TRUE(e.contains(key));
  // The serialized document must survive a parse round-trip unchanged.
  EXPECT_EQ(util::JsonValue::parse(doc.dump(0)), doc);
}

TEST_F(ObsTest, ConfigureFromEnv) {
  set_enabled(false);
  ::setenv("FINSER_METRICS", "0", 1);
  EXPECT_EQ(configure_from_env(), "0");
  EXPECT_FALSE(enabled());
  ::setenv("FINSER_METRICS", "out/metrics.json", 1);
  EXPECT_EQ(configure_from_env(), "out/metrics.json");
  EXPECT_TRUE(enabled());
  ::unsetenv("FINSER_METRICS");
  set_enabled(false);
  EXPECT_EQ(configure_from_env(), "");
  EXPECT_FALSE(enabled());
}

TEST_F(ObsTest, JsonRoundTripPreservesDocument) {
  util::JsonValue doc = util::JsonValue::object();
  doc["int"] = std::int64_t{-42};
  doc["uint"] = std::uint64_t{0xFFFFFFFFFFFFFFFFull};
  doc["pi"] = 3.141592653589793;
  doc["tiny"] = 4.9e-324;  // Denormal min: stresses %.17g fidelity.
  doc["flag"] = true;
  doc["none"] = util::JsonValue();
  doc["text"] = "quote \" slash \\ newline \n unicode é";
  util::JsonValue arr = util::JsonValue::array();
  for (int i = 0; i < 4; ++i) arr.push_back(i);
  doc["arr"] = std::move(arr);

  for (const int indent : {0, 2}) {
    const util::JsonValue back = util::JsonValue::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent=" << indent;
    EXPECT_EQ(back.at("uint").as_uint(), 0xFFFFFFFFFFFFFFFFull);
    EXPECT_EQ(back.at("int").as_int(), -42);
    EXPECT_EQ(back.at("pi").as_double(), 3.141592653589793);
  }
}

TEST_F(ObsTest, JsonParserRejectsMalformedInput) {
  EXPECT_THROW(util::JsonValue::parse("{\"a\": 1,}"), util::Error);
  EXPECT_THROW(util::JsonValue::parse("{\"a\": 1} junk"), util::Error);
  EXPECT_THROW(util::JsonValue::parse("{\"a\": 1, \"a\": 2}"), util::Error);
  EXPECT_THROW(util::JsonValue::parse("[1, 2"), util::Error);
  EXPECT_THROW(util::JsonValue::parse(""), util::Error);
}

TEST_F(ObsTest, RunReportValidatesAndRoundTrips) {
  FINSER_OBS_COUNT("t.report_counter", 7);
  FINSER_OBS_RECORD("t.report_hist", 12);
  { ScopedSpan span("t.report_span"); }

  RunInfo info;
  info.tool = "test";
  info.command = "unit";
  info.seed = 99;
  info.threads = 4;
  info.mc_scale = 0.5;
  info.config_fingerprint = 0xDEADBEEFCAFEF00Dull;
  const util::JsonValue doc =
      build_run_report(Registry::global().snapshot(), info);

  EXPECT_EQ(validate_run_report(doc), "");
  EXPECT_EQ(doc.at("run").at("config_fingerprint").as_string(),
            "0xdeadbeefcafef00d");
  EXPECT_EQ(doc.at("run").at("seed").as_uint(), 99u);
  EXPECT_EQ(
      doc.at("metrics").at("counters").at("t.report_counter").as_uint(), 7u);

  // Serialized round trip: parse(dump) is the same document and still valid.
  const util::JsonValue back = util::JsonValue::parse(doc.dump(2));
  EXPECT_EQ(back, doc);
  EXPECT_EQ(validate_run_report(back), "");

  // Validation rejects structural damage.
  util::JsonValue broken = doc;
  broken["schema"] = "not.a.run.report";
  EXPECT_NE(validate_run_report(broken), "");
  EXPECT_NE(validate_run_report(util::JsonValue::parse("{}")), "");
}

// ---------------------------------------------------------------------------
// The determinism contract: same seed, different thread counts, identical
// "metrics" JSON bytes. Exercises the full wired pipeline (exec + geom +
// core counters) through ArrayMc with a synthetic SPICE-free cell model.
// ---------------------------------------------------------------------------

sram::CellSoftErrorModel threshold_model(double vdd, double q_thresh_fc) {
  sram::PofTable t;
  t.vdd_v = vdd;
  t.q_max_fc = 0.4;
  for (auto& s : t.singles) {
    s.nominal_qcrit_fc = q_thresh_fc;
    s.total_samples = 2;
    s.qcrit_samples_fc = {0.8 * q_thresh_fc, 1.2 * q_thresh_fc};
  }
  const util::Axis axis({0.0, q_thresh_fc, 0.4});
  std::vector<double> v2(9, 1.0);
  v2[0] = 0.0;
  for (int p = 0; p < 3; ++p) {
    t.pairs_pv[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v2);
    t.pairs_nominal[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v2);
  }
  std::vector<double> v3(27, 1.0);
  v3[0] = 0.0;
  t.triple_pv = util::Grid3(axis, axis, axis, v3);
  t.triple_nominal = util::Grid3(axis, axis, axis, v3);
  sram::CellSoftErrorModel m;
  m.tables.push_back(std::move(t));
  return m;
}

std::string metrics_bytes_at(std::size_t threads) {
  Registry::global().reset();
  const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
  const sram::CellSoftErrorModel model = threshold_model(0.8, 0.05);
  core::ArrayMcConfig cfg;
  cfg.strikes = 6000;
  cfg.threads = threads;
  core::ArrayMc mc(layout, model, cfg);
  (void)mc.run(phys::Species::kAlpha, 2.0, 20140601);
  return metrics_json(Registry::global().snapshot()).dump(2);
}

TEST_F(ObsTest, MetricsSectionByteIdenticalAcrossThreadCounts) {
  const std::string at1 = metrics_bytes_at(1);
  const std::string at4 = metrics_bytes_at(4);
  EXPECT_EQ(at1, at4);

  // And the section is non-trivial: the wired counters actually fired.
  const util::JsonValue m = util::JsonValue::parse(at1);
  const util::JsonValue& counters = m.at("counters");
  EXPECT_EQ(counters.at("core.array_mc.strikes").as_uint(), 6000u);
  EXPECT_GT(counters.at("core.array_mc.strike_hits").as_uint(), 0u);
  EXPECT_GT(counters.at("exec.chunks").as_uint(), 0u);
  EXPECT_EQ(counters.at("exec.items").as_uint(), 6000u);
  EXPECT_GT(counters.at("geom.grid_queries").as_uint(), 0u);
}

}  // namespace
}  // namespace finser::obs
