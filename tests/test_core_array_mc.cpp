#include <gtest/gtest.h>

#include <cmath>

#include "finser/core/array_mc.hpp"
#include "finser/stats/summary.hpp"
#include "finser/util/error.hpp"

namespace finser::core {
namespace {

using sram::ArrayLayout;
using sram::CellGeometry;
using sram::CellSoftErrorModel;
using sram::PofTable;
using sram::SingleCdf;

/// Synthetic cell model: any sensitive deposit above q_thresh flips with
/// probability p (PV mode) or deterministically above the nominal threshold.
/// Avoids running SPICE in the array-MC unit tests.
CellSoftErrorModel synthetic_model(double vdd, double q_thresh_fc) {
  PofTable t;
  t.vdd_v = vdd;
  t.q_max_fc = 0.4;
  for (auto& s : t.singles) {
    s.nominal_qcrit_fc = q_thresh_fc;
    s.total_samples = 2;
    s.qcrit_samples_fc = {0.8 * q_thresh_fc, 1.2 * q_thresh_fc};
  }
  const util::Axis axis({0.0, q_thresh_fc, 0.4});
  auto grid_values = [&](bool nominal) {
    std::vector<double> v(9, 0.0);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        const bool above = (i >= 1) || (j >= 1);
        v[static_cast<std::size_t>(i * 3 + j)] =
            above ? 1.0 : (nominal ? 0.0 : 0.0);
      }
    }
    v[0] = 0.0;
    return v;
  };
  for (int p = 0; p < 3; ++p) {
    t.pairs_pv[static_cast<std::size_t>(p)] =
        util::Grid2(axis, axis, grid_values(false));
    t.pairs_nominal[static_cast<std::size_t>(p)] =
        util::Grid2(axis, axis, grid_values(true));
  }
  std::vector<double> v3(27, 1.0);
  v3[0] = 0.0;
  t.triple_pv = util::Grid3(axis, axis, axis, v3);
  t.triple_nominal = util::Grid3(axis, axis, axis, v3);

  CellSoftErrorModel m;
  m.tables.push_back(std::move(t));
  return m;
}

ArrayMcConfig fast_config(std::size_t strikes = 4000) {
  ArrayMcConfig cfg;
  cfg.strikes = strikes;
  cfg.source_margin_nm = 0.0;
  return cfg;
}

TEST(ArrayMc, EstimatesAreProbabilities) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  ArrayMc mc(layout, model, fast_config());
  const auto res = mc.run(phys::Species::kAlpha, 1.0, 1);
  ASSERT_EQ(res.vdds.size(), 1u);
  for (std::size_t mode = 0; mode < 2; ++mode) {
    const PofEstimate& e = res.est[0][mode];
    EXPECT_GE(e.tot, 0.0);
    EXPECT_LE(e.tot, 1.0);
    EXPECT_GE(e.seu, 0.0);
    EXPECT_GE(e.mbu, 0.0);
    EXPECT_NEAR(e.tot, e.seu + e.mbu, 1e-12);  // Eq. 6.
    EXPECT_GT(e.hit_fraction, 0.0);
    EXPECT_LT(e.hit_fraction, 1.0);
    EXPECT_EQ(e.strikes, 4000u);
  }
}

TEST(ArrayMc, AlphaPofExceedsProtonPof) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  ArrayMc mc(layout, model, fast_config(8000));
  const auto alpha = mc.run(phys::Species::kAlpha, 2.0, 2);
  const auto proton = mc.run(phys::Species::kProton, 2.0, 2);
  EXPECT_GT(alpha.est[0][1].tot, proton.est[0][1].tot);
}

TEST(ArrayMc, DeterministicGivenSeed) {
  const ArrayLayout layout(2, 2, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  ArrayMc mc(layout, model, fast_config(2000));
  const auto a = mc.run(phys::Species::kAlpha, 1.0, 3);
  const auto b = mc.run(phys::Species::kAlpha, 1.0, 3);
  EXPECT_DOUBLE_EQ(a.est[0][0].tot, b.est[0][0].tot);
  EXPECT_DOUBLE_EQ(a.est[0][1].mbu, b.est[0][1].mbu);
}

TEST(ArrayMc, SingleCellHasNoMbu) {
  const ArrayLayout layout(1, 1, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMc mc(layout, model, fast_config(6000));
  const auto res = mc.run(phys::Species::kAlpha, 1.0, 4);
  EXPECT_GT(res.est[0][1].tot, 0.0);
  EXPECT_DOUBLE_EQ(res.est[0][1].mbu, 0.0);  // Eq. 5 == Eq. 4 for one cell.
}

TEST(ArrayMc, LowerThresholdRaisesPof) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel easy = synthetic_model(0.8, 0.01);
  const CellSoftErrorModel hard = synthetic_model(0.8, 0.2);
  ArrayMc mc_easy(layout, easy, fast_config(6000));
  ArrayMc mc_hard(layout, hard, fast_config(6000));
  const auto e = mc_easy.run(phys::Species::kAlpha, 1.0, 5);
  const auto h = mc_hard.run(phys::Species::kAlpha, 1.0, 5);
  EXPECT_GT(e.est[0][1].tot, h.est[0][1].tot);
}

TEST(ArrayMc, MarginGrowsSampledAreaAndDilutesPof) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig with_margin = fast_config(24000);
  with_margin.source_margin_nm = 500.0;
  ArrayMc mc0(layout, model, fast_config(24000));
  ArrayMc mc1(layout, model, with_margin);
  EXPECT_GT(mc1.sampled_area_nm2(), mc0.sampled_area_nm2());
  const auto p0 = mc0.run(phys::Species::kAlpha, 1.0, 6);
  const auto p1 = mc1.run(phys::Species::kAlpha, 1.0, 6);
  // Per-sampled-particle POF shrinks when many particles land off-array...
  EXPECT_LT(p1.est[0][1].tot, p0.est[0][1].tot);
  // ...while the area-weighted product (what enters the FIT) stays the same
  // order. It sits systematically *above* the zero-margin value — the margin
  // admits real grazing contributors that enter the fin layer from outside
  // the footprint, which the zero-margin run cannot see — but must not blow
  // up: the extra band is mostly misses.
  const double f0 = p0.est[0][1].tot * mc0.sampled_area_nm2();
  const double f1 = p1.est[0][1].tot * mc1.sampled_area_nm2();
  EXPECT_GT(f1, 0.9 * f0);
  EXPECT_LT(f1, 2.0 * f0);
}

TEST(ArrayMc, CosineSourceFavoursVerticalTracks) {
  // Cosine-law sources see fewer grazing tracks, so on a synthetic model
  // where every deposit flips, MBU (a grazing-track effect) drops.
  const ArrayLayout layout(4, 4, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.001);
  ArrayMcConfig iso = fast_config(20000);
  ArrayMcConfig cos = fast_config(20000);
  cos.angular = SourceAngularLaw::kCosine;
  ArrayMc mc_iso(layout, model, iso);
  ArrayMc mc_cos(layout, model, cos);
  const auto a = mc_iso.run(phys::Species::kAlpha, 1.0, 7);
  const auto b = mc_cos.run(phys::Species::kAlpha, 1.0, 7);
  EXPECT_GT(a.est[0][1].mbu, b.est[0][1].mbu);
}

TEST(ArrayMc, BulkCollectsMoreThanSoi) {
  // The buried oxide is SOI's radiation advantage (paper Sec. 3.3): with the
  // same threshold model, a bulk layout's substrate collection volumes must
  // raise the array POF.
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  CellGeometry soi_geom;
  CellGeometry bulk_geom;
  bulk_geom.technology = sram::TechnologyKind::kBulk;
  const ArrayLayout soi(3, 3, soi_geom);
  const ArrayLayout bulk(3, 3, bulk_geom);
  ArrayMc mc_soi(soi, model, fast_config(12000));
  ArrayMc mc_bulk(bulk, model, fast_config(12000));
  const auto p_soi = mc_soi.run(phys::Species::kAlpha, 3.0, 31).est[0][1];
  const auto p_bulk = mc_bulk.run(phys::Species::kAlpha, 3.0, 31).est[0][1];
  EXPECT_GT(p_bulk.tot, 1.2 * p_soi.tot);
  EXPECT_GT(p_bulk.hit_fraction, p_soi.hit_fraction);
}

TEST(ArrayMc, MultiplicityConsistentWithSeuMbu) {
  const ArrayLayout layout(4, 4, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.01);
  ArrayMc mc(layout, model, fast_config(8000));
  const auto est = mc.run(phys::Species::kAlpha, 1.5, 21).est[0][1];
  double sum = 0.0, tail = 0.0;
  for (std::size_t n = 0; n < kMaxMultiplicity; ++n) sum += est.multiplicity[n];
  for (std::size_t n = 2; n < kMaxMultiplicity; ++n) tail += est.multiplicity[n];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(est.multiplicity[1], est.seu, 1e-9);
  EXPECT_NEAR(tail, est.mbu, 1e-9);
  EXPECT_GT(tail, 0.0);  // Grazing tracks produce real multi-cell events.
}

TEST(ArrayMc, StratifiedSamplingAgreesAndReducesVariance) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig uni = fast_config(6000);
  ArrayMcConfig strat = fast_config(6000);
  strat.position = SourcePositionSampling::kStratified;
  ArrayMc mc_u(layout, model, uni);
  ArrayMc mc_s(layout, model, strat);

  // Same estimator mean (within combined MC error)...
  const auto eu = mc_u.run(phys::Species::kAlpha, 1.0, 11).est[0][1];
  const auto es = mc_s.run(phys::Species::kAlpha, 1.0, 12).est[0][1];
  EXPECT_NEAR(es.tot, eu.tot, 5.0 * (eu.tot_se + es.tot_se));

  // ...and lower run-to-run spread of the estimate. Measured under a fixed
  // beam so the position sampling (the thing stratification improves)
  // dominates the estimator variance; under an isotropic source the
  // direction/transport randomness swamps the position term and the
  // reduction is within noise.
  ArrayMcConfig beam_u = uni;
  beam_u.angular = SourceAngularLaw::kBeam;
  beam_u.beam_direction = {0.3, 0.2, -1.0};
  ArrayMcConfig beam_s = beam_u;
  beam_s.position = SourcePositionSampling::kStratified;
  ArrayMc mc_bu(layout, model, beam_u);
  ArrayMc mc_bs(layout, model, beam_s);
  auto spread = [&](ArrayMc& mc) {
    stats::RunningStats s;
    for (std::uint64_t seed = 100; seed < 116; ++seed) {
      s.add(mc.run(phys::Species::kAlpha, 1.0, seed).est[0][1].tot);
    }
    return s.stddev();
  };
  EXPECT_LT(spread(mc_bs), spread(mc_bu));
}

TEST(ArrayMc, StratifiedAgreesWithUniformAtFixedEnergy) {
  // Seeded regression for the chunked strike loop: jittered-grid strata are
  // keyed by the *global* strike index, so stratified sampling must stay an
  // unbiased estimator (agreeing with uniform within standard error) even
  // when the chunk size does not divide the strike count.
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.02);
  ArrayMcConfig uni = fast_config(7000);
  ArrayMcConfig strat = fast_config(7000);
  strat.position = SourcePositionSampling::kStratified;
  uni.chunk = strat.chunk = 512;  // 7000 / 512 leaves a partial tail chunk.
  ArrayMc mc_u(layout, model, uni);
  ArrayMc mc_s(layout, model, strat);
  const auto eu = mc_u.run(phys::Species::kAlpha, 1.5, 2024).est[0][1];
  const auto es = mc_s.run(phys::Species::kAlpha, 1.5, 2024).est[0][1];
  EXPECT_GT(eu.tot, 0.0);
  EXPECT_GT(es.tot, 0.0);
  EXPECT_NEAR(es.tot, eu.tot, 4.0 * (eu.tot_se + es.tot_se));
}

TEST(ArrayMc, RejectsBadInputs) {
  const ArrayLayout layout(2, 2, CellGeometry{});
  const CellSoftErrorModel model = synthetic_model(0.8, 0.05);
  ArrayMcConfig cfg = fast_config(0);
  EXPECT_THROW(ArrayMc(layout, model, cfg), util::InvalidArgument);
  CellSoftErrorModel empty;
  EXPECT_THROW(ArrayMc(layout, empty, fast_config()), util::InvalidArgument);
  ArrayMc mc(layout, model, fast_config());
  EXPECT_THROW(mc.run(phys::Species::kAlpha, 0.0, 8), util::InvalidArgument);
}

}  // namespace
}  // namespace finser::core
