#include <gtest/gtest.h>

#include <cmath>

#include "finser/phys/particle.hpp"
#include "finser/phys/stopping.hpp"
#include "finser/util/error.hpp"

namespace finser::phys {
namespace {

const Material& si = silicon();
const Material& ox = silicon_dioxide();

// ---------------------------------------------------------------------------
// Kinematics
// ---------------------------------------------------------------------------

TEST(Particle, SpeciesData) {
  EXPECT_DOUBLE_EQ(charge_number(Species::kProton), 1.0);
  EXPECT_DOUBLE_EQ(charge_number(Species::kAlpha), 2.0);
  EXPECT_EQ(species_name(Species::kProton), "proton");
  EXPECT_EQ(species_name(Species::kAlpha), "alpha");
  EXPECT_GT(mass_mev(Species::kAlpha), mass_mev(Species::kProton));
}

TEST(Particle, BetaGammaLimits) {
  EXPECT_DOUBLE_EQ(beta(Species::kProton, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma(Species::kProton, 0.0), 1.0);
  // 1 GeV proton: gamma ~ 2.066, beta ~ 0.875.
  EXPECT_NEAR(gamma(Species::kProton, 1000.0), 2.0658, 1e-3);
  EXPECT_NEAR(beta(Species::kProton, 1000.0), 0.875, 1e-3);
  EXPECT_THROW(gamma(Species::kProton, -1.0), util::InvalidArgument);
}

TEST(Particle, NonRelativisticSpeed) {
  // 1 MeV proton: v = c*sqrt(2E/M) to leading order ~ 1.38e9 cm/s.
  EXPECT_NEAR(speed_cm_per_s(Species::kProton, 1.0), 1.383e9, 2e7);
}

TEST(Particle, PassageTimePaperEq1) {
  // Paper Sec. 3.3: alpha passage time through the fin is < 1 fs; the proton
  // of equal velocity-scaled energy is faster.
  const double tau_alpha = passage_time_fs(Species::kAlpha, 5.0, 10.0);
  EXPECT_LT(tau_alpha, 1.0);
  EXPECT_GT(tau_alpha, 0.0);
  const double tau_p = passage_time_fs(Species::kProton, 5.0, 10.0);
  EXPECT_LT(tau_p, tau_alpha);  // Same energy, lighter -> faster.
  EXPECT_THROW(passage_time_fs(Species::kProton, 0.0, 10.0),
               util::InvalidArgument);
}

TEST(Particle, MaxEnergyTransferScale) {
  // Non-relativistic: Tmax ~ 4 (m_e/M) E.
  const double e = 1.0;
  const double approx =
      4.0 * (0.511 / mass_mev(Species::kProton)) * e;
  EXPECT_NEAR(max_energy_transfer_mev(Species::kProton, e), approx, 0.1 * approx);
  EXPECT_GT(max_energy_transfer_mev(Species::kProton, 10.0),
            max_energy_transfer_mev(Species::kProton, 1.0));
}

// ---------------------------------------------------------------------------
// Electronic stopping
// ---------------------------------------------------------------------------

TEST(Stopping, ProtonPstarAnchors) {
  // PSTAR silicon anchors (MeV·cm²/g), tolerances ~15 %: the paper's results
  // are normalized, so the *shape* matters more than absolute values.
  EXPECT_NEAR(electronic_stopping(Species::kProton, 0.01, si), 285.0, 45.0);
  EXPECT_NEAR(electronic_stopping(Species::kProton, 0.08, si), 530.0, 80.0);
  EXPECT_NEAR(electronic_stopping(Species::kProton, 0.5, si), 270.0, 40.0);
  EXPECT_NEAR(electronic_stopping(Species::kProton, 1.0, si), 175.0, 26.0);
  EXPECT_NEAR(electronic_stopping(Species::kProton, 10.0, si), 36.5, 6.0);
}

TEST(Stopping, ProtonBraggPeakNear80keV) {
  double best_e = 0.0, best_s = 0.0;
  for (double e = 0.005; e < 2.0; e *= 1.05) {
    const double s = electronic_stopping(Species::kProton, e, si);
    if (s > best_s) {
      best_s = s;
      best_e = e;
    }
  }
  EXPECT_GT(best_e, 0.03);
  EXPECT_LT(best_e, 0.15);
  EXPECT_GT(best_s, 450.0);
  EXPECT_LT(best_s, 620.0);
}

TEST(Stopping, AlphaBraggPeakPosition) {
  double best_e = 0.0, best_s = 0.0;
  for (double e = 0.05; e < 10.0; e *= 1.05) {
    const double s = electronic_stopping(Species::kAlpha, e, si);
    if (s > best_s) {
      best_s = s;
      best_e = e;
    }
  }
  // ASTAR peak ~0.7 MeV at ~1.4e3; effective-charge scaling lands within ~30 %.
  EXPECT_GT(best_e, 0.3);
  EXPECT_LT(best_e, 1.5);
  EXPECT_GT(best_s, 900.0);
}

TEST(Stopping, AlphaExceedsProtonAtSameEnergy) {
  // Paper Fig. 4: alpha generates roughly an order of magnitude more charge.
  for (double e : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_GT(electronic_stopping(Species::kAlpha, e, si),
              3.0 * electronic_stopping(Species::kProton, e, si))
        << "at E = " << e;
  }
}

TEST(Stopping, HighEnergyTailDecreases) {
  double prev = electronic_stopping(Species::kProton, 1.0, si);
  for (double e = 2.0; e <= 1000.0; e *= 2.0) {
    const double s = electronic_stopping(Species::kProton, e, si);
    EXPECT_LT(s, prev) << "at E = " << e;
    prev = s;
  }
}

TEST(Stopping, VelocityScalingLaw) {
  // S_alpha(E) = z_eff^2 * S_p(E * m_p/m_alpha) by construction; verify the
  // public API is self-consistent.
  const double e_alpha = 4.0;
  const double e_p = e_alpha * mass_mev(Species::kProton) / mass_mev(Species::kAlpha);
  const double zeff = effective_charge(Species::kAlpha, e_alpha);
  EXPECT_NEAR(electronic_stopping(Species::kAlpha, e_alpha, si),
              zeff * zeff * electronic_stopping(Species::kProton, e_p, si),
              1e-9);
}

TEST(Stopping, EffectiveChargeLimits) {
  EXPECT_NEAR(effective_charge(Species::kAlpha, 100.0), 2.0, 0.01);
  EXPECT_LT(effective_charge(Species::kAlpha, 0.05), 1.2);
  EXPECT_NEAR(effective_charge(Species::kProton, 10.0), 1.0, 0.01);
}

TEST(Stopping, ZeroEnergyIsZero) {
  EXPECT_DOUBLE_EQ(electronic_stopping(Species::kProton, 0.0, si), 0.0);
  EXPECT_DOUBLE_EQ(nuclear_stopping(Species::kProton, 0.0, si), 0.0);
  EXPECT_THROW(electronic_stopping(Species::kProton, -1.0, si),
               util::InvalidArgument);
}

TEST(Stopping, OxideTracksSiliconShape) {
  // SiO2 and Si have nearly equal Z/A; stopping should be within ~20 %.
  for (double e : {0.1, 1.0, 10.0}) {
    const double r = electronic_stopping(Species::kProton, e, ox) /
                     electronic_stopping(Species::kProton, e, si);
    EXPECT_GT(r, 0.8) << e;
    EXPECT_LT(r, 1.2) << e;
  }
}

// ---------------------------------------------------------------------------
// Nuclear stopping
// ---------------------------------------------------------------------------

TEST(Stopping, NuclearNegligibleAboveMeV) {
  for (double e : {1.0, 10.0, 100.0}) {
    EXPECT_LT(nuclear_stopping(Species::kProton, e, si),
              0.01 * electronic_stopping(Species::kProton, e, si))
        << e;
  }
}

TEST(Stopping, NuclearGrowsTowardLowEnergy) {
  EXPECT_GT(nuclear_stopping(Species::kProton, 0.001, si),
            nuclear_stopping(Species::kProton, 0.1, si));
}

TEST(Stopping, TotalIsSum) {
  const double e = 0.05;
  EXPECT_DOUBLE_EQ(total_stopping(Species::kAlpha, e, si),
                   electronic_stopping(Species::kAlpha, e, si) +
                       nuclear_stopping(Species::kAlpha, e, si));
}

// ---------------------------------------------------------------------------
// CSDA
// ---------------------------------------------------------------------------

TEST(Csda, EnergyLossBoundedByEnergy) {
  EXPECT_LE(csda_energy_loss(Species::kProton, 0.01, 1e6, si), 0.01);
  EXPECT_DOUBLE_EQ(csda_energy_loss(Species::kProton, 1.0, 0.0, si), 0.0);
}

TEST(Csda, ThinPathMatchesLinearStopping) {
  // Over 10 nm, the loss should be ~ S * rho * l within a few percent.
  const double e = 1.0;
  const double expected =
      linear_electronic_stopping(Species::kProton, e, si) * 10e-7;
  EXPECT_NEAR(csda_energy_loss(Species::kProton, e, 10.0, si), expected,
              0.05 * expected);
}

TEST(Csda, FullStopForLongPath) {
  // A 0.5 MeV proton has ~6 um range; 100 um absorbs everything.
  EXPECT_NEAR(csda_energy_loss(Species::kProton, 0.5, 100e3, si), 0.5, 1e-3);
}

TEST(Csda, RangeAnchors) {
  // PSTAR CSDA ranges in Si: 1 MeV proton ~16.6 um, 5 MeV alpha ~27 um.
  EXPECT_NEAR(csda_range_um(Species::kProton, 1.0, si), 16.6, 4.0);
  EXPECT_NEAR(csda_range_um(Species::kAlpha, 5.0, si), 27.0, 7.0);
}

TEST(Csda, RangeMonotoneInEnergy) {
  double prev = 0.0;
  for (double e : {0.1, 0.3, 1.0, 3.0, 10.0}) {
    const double r = csda_range_um(Species::kProton, e, si);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(Csda, RangeBelowCutoffIsZero) {
  EXPECT_DOUBLE_EQ(csda_range_um(Species::kProton, 1e-4, si, 1e-3), 0.0);
  EXPECT_THROW(csda_range_um(Species::kProton, 1.0, si, 0.0),
               util::InvalidArgument);
}

// Property sweep: stopping power is positive and finite over the full band.
class StoppingPositive : public ::testing::TestWithParam<double> {};

TEST_P(StoppingPositive, ProtonPositiveFinite) {
  const double s = electronic_stopping(Species::kProton, GetParam(), si);
  EXPECT_GT(s, 0.0);
  EXPECT_TRUE(std::isfinite(s));
}

TEST_P(StoppingPositive, AlphaPositiveFinite) {
  const double s = electronic_stopping(Species::kAlpha, GetParam(), si);
  EXPECT_GT(s, 0.0);
  EXPECT_TRUE(std::isfinite(s));
}

TEST_P(StoppingPositive, NuclearNonNegative) {
  EXPECT_GE(nuclear_stopping(Species::kAlpha, GetParam(), si), 0.0);
}

INSTANTIATE_TEST_SUITE_P(EnergySweep, StoppingPositive,
                         ::testing::Values(1e-3, 1e-2, 0.05, 0.08, 0.2, 0.5,
                                           0.7, 1.0, 2.0, 5.0, 10.0, 50.0,
                                           100.0, 1000.0));

}  // namespace
}  // namespace finser::phys
