/// \file test_parallel_determinism.cpp
/// \brief The exec-layer contract, enforced: every Monte-Carlo engine must
/// produce bit-identical results for the same seed at 1 thread and at >= 4
/// threads. RNG streams are keyed by chunk index and partials merge in chunk
/// order, so the thread count is pure scheduling noise — any EXPECT_EQ
/// failure here means a schedule dependency leaked into the estimators.

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <vector>

#include "finser/core/array_mc.hpp"
#include "finser/core/neutron_mc.hpp"
#include "finser/core/ser_flow.hpp"
#include "finser/sram/characterize.hpp"
#include "finser/util/error.hpp"

namespace finser::core {
namespace {

using sram::ArrayLayout;
using sram::CellGeometry;
using sram::CellSoftErrorModel;
using sram::PofTable;

/// Threshold cell model: deposits above q_thresh flip (see the array-MC
/// tests); keeps SPICE out of the array/neutron engine cases.
CellSoftErrorModel threshold_model(double vdd, double q_thresh_fc) {
  PofTable t;
  t.vdd_v = vdd;
  t.q_max_fc = 0.4;
  for (auto& s : t.singles) {
    s.nominal_qcrit_fc = q_thresh_fc;
    s.total_samples = 2;
    s.qcrit_samples_fc = {0.9 * q_thresh_fc, 1.1 * q_thresh_fc};
  }
  const util::Axis axis({0.0, q_thresh_fc, 0.4});
  std::vector<double> v(9, 1.0);
  v[0] = 0.0;
  for (int p = 0; p < 3; ++p) {
    t.pairs_pv[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v);
    t.pairs_nominal[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v);
  }
  std::vector<double> v3(27, 1.0);
  v3[0] = 0.0;
  t.triple_pv = util::Grid3(axis, axis, axis, v3);
  t.triple_nominal = util::Grid3(axis, axis, axis, v3);
  CellSoftErrorModel m;
  m.tables.push_back(std::move(t));
  return m;
}

/// Bit-exact comparison of two estimates (EXPECT_EQ, not NEAR: the contract
/// is identity, not statistical agreement).
void expect_identical(const PofEstimate& a, const PofEstimate& b) {
  EXPECT_EQ(a.tot, b.tot);
  EXPECT_EQ(a.seu, b.seu);
  EXPECT_EQ(a.mbu, b.mbu);
  EXPECT_EQ(a.tot_se, b.tot_se);
  EXPECT_EQ(a.seu_se, b.seu_se);
  EXPECT_EQ(a.mbu_se, b.mbu_se);
  EXPECT_EQ(a.hit_fraction, b.hit_fraction);
  EXPECT_EQ(a.strikes, b.strikes);
  for (std::size_t n = 0; n < kMaxMultiplicity; ++n) {
    EXPECT_EQ(a.multiplicity[n], b.multiplicity[n]) << "multiplicity " << n;
  }
}

void expect_identical(const ArrayMcResult& a, const ArrayMcResult& b) {
  ASSERT_EQ(a.vdds, b.vdds);
  ASSERT_EQ(a.est.size(), b.est.size());
  for (std::size_t v = 0; v < a.est.size(); ++v) {
    for (std::size_t mode = 0; mode < 2; ++mode) {
      expect_identical(a.est[v][mode], b.est[v][mode]);
    }
  }
}

TEST(ParallelDeterminism, ArrayMcOneVsFourThreads) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = threshold_model(0.8, 0.02);
  ArrayMcConfig serial;
  serial.strikes = 5000;
  serial.chunk = 256;  // Partial tail chunk: 5000 = 19*256 + 136.
  serial.threads = 1;
  ArrayMcConfig parallel = serial;
  parallel.threads = 4;
  ArrayMc mc1(layout, model, serial);
  ArrayMc mc4(layout, model, parallel);
  expect_identical(mc1.run(phys::Species::kAlpha, 1.5, 99),
                   mc4.run(phys::Species::kAlpha, 1.5, 99));
  // Stratified sampling keys strata off the global strike index, so it must
  // hold to the same contract.
  serial.position = parallel.position = SourcePositionSampling::kStratified;
  ArrayMc ms1(layout, model, serial);
  ArrayMc ms4(layout, model, parallel);
  expect_identical(ms1.run(phys::Species::kProton, 0.5, 100),
                   ms4.run(phys::Species::kProton, 0.5, 100));
}

TEST(ParallelDeterminism, NeutronMcOneVsFourThreads) {
  const ArrayLayout layout(3, 3, CellGeometry{});
  const CellSoftErrorModel model = threshold_model(0.8, 0.02);
  NeutronMcConfig serial;
  serial.histories = 6000;
  serial.chunk = 512;
  serial.source_margin_nm = 500.0;
  serial.threads = 1;
  NeutronMcConfig parallel = serial;
  parallel.threads = 4;
  NeutronArrayMc mc1(layout, model, serial);
  NeutronArrayMc mc4(layout, model, parallel);
  expect_identical(mc1.run(14.0, 7), mc4.run(14.0, 7));
}

TEST(ParallelDeterminism, CharacterizerOneVsFourThreads) {
  sram::CharacterizerConfig cfg;
  cfg.vdds = {0.8};
  cfg.pv_samples_single = 16;
  cfg.pair_grid_points = 6;
  cfg.triple_grid_points = 6;
  cfg.pv_samples_grid = 8;
  cfg.seed = 7;
  cfg.threads = 1;
  sram::CharacterizerConfig cfg4 = cfg;
  cfg4.threads = 4;
  // The thread count must not enter the LUT cache fingerprint: the tables
  // are interchangeable by contract.
  EXPECT_EQ(cfg.fingerprint(sram::CellDesign{}),
            cfg4.fingerprint(sram::CellDesign{}));

  sram::CellCharacterizer ch1(sram::CellDesign{}, cfg);
  sram::CellCharacterizer ch4(sram::CellDesign{}, cfg4);
  const PofTable a = ch1.characterize_at(0.8, 11);
  const PofTable b = ch4.characterize_at(0.8, 11);

  for (std::size_t s = 0; s < a.singles.size(); ++s) {
    EXPECT_EQ(a.singles[s].nominal_qcrit_fc, b.singles[s].nominal_qcrit_fc);
    ASSERT_EQ(a.singles[s].qcrit_samples_fc.size(),
              b.singles[s].qcrit_samples_fc.size());
    for (std::size_t i = 0; i < a.singles[s].qcrit_samples_fc.size(); ++i) {
      EXPECT_EQ(a.singles[s].qcrit_samples_fc[i],
                b.singles[s].qcrit_samples_fc[i]);
    }
  }
  // Pair/triple grids: probe the interpolants over the charge cube.
  for (double q1 : {0.0, 0.04, 0.11, 0.3}) {
    for (double q2 : {0.0, 0.07, 0.25}) {
      for (double q3 : {0.0, 0.15}) {
        const sram::StrikeCharges c{q1, q2, q3};
        EXPECT_EQ(a.pof(c, true), b.pof(c, true)) << q1 << " " << q2 << " " << q3;
        EXPECT_EQ(a.pof(c, false), b.pof(c, false));
      }
    }
  }
}

TEST(ParallelDeterminism, SerFlowSweepOneVsFourThreads) {
  SerFlowConfig cfg;
  cfg.array_rows = 2;
  cfg.array_cols = 2;
  cfg.characterization.vdds = {0.8};
  cfg.characterization.pv_samples_single = 10;
  cfg.characterization.pair_grid_points = 6;
  cfg.characterization.triple_grid_points = 6;
  cfg.characterization.pv_samples_grid = 6;
  cfg.array_mc.strikes = 1500;
  cfg.array_mc.chunk = 128;
  cfg.proton_bins = 3;
  cfg.alpha_bins = 3;
  cfg.seed = 5;
  cfg.threads = 1;
  SerFlowConfig cfg4 = cfg;
  cfg4.threads = 4;

  SerFlow flow1(cfg);
  SerFlow flow4(cfg4);
  const EnergySweepResult r1 = flow1.sweep(env::package_alphas());
  const EnergySweepResult r4 = flow4.sweep(env::package_alphas());

  ASSERT_EQ(r1.bins.size(), r4.bins.size());
  ASSERT_EQ(r1.per_bin.size(), r4.per_bin.size());
  for (std::size_t b = 0; b < r1.per_bin.size(); ++b) {
    expect_identical(r1.per_bin[b], r4.per_bin[b]);
  }
  ASSERT_EQ(r1.fit.size(), r4.fit.size());
  for (std::size_t v = 0; v < r1.fit.size(); ++v) {
    for (std::size_t mode = 0; mode < 2; ++mode) {
      EXPECT_EQ(r1.fit[v][mode].fit_tot, r4.fit[v][mode].fit_tot);
      EXPECT_EQ(r1.fit[v][mode].fit_seu, r4.fit[v][mode].fit_seu);
      EXPECT_EQ(r1.fit[v][mode].fit_mbu, r4.fit[v][mode].fit_mbu);
    }
  }
}

}  // namespace
}  // namespace finser::core
