/// \file test_ckpt.cpp
/// \brief Checkpoint file format + run_units resume/cancel semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/exec/cancel.hpp"
#include "finser/exec/thread_pool.hpp"
#include "finser/util/error.hpp"
#include "finser/util/io.hpp"

namespace finser::ckpt {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Removes the checkpoint file (and its temp sibling) on scope exit.
struct FileGuard {
  std::string path;
  ~FileGuard() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
};

std::vector<std::uint8_t> blob_of(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> out;
  for (int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

Checkpoint sample_checkpoint() {
  Checkpoint ckpt;
  ckpt.fingerprint = 0xFEEDFACEDEADBEEFull;
  ckpt.blobs.resize(5);
  ckpt.blobs[1] = blob_of({10, 11, 12});
  ckpt.blobs[3] = blob_of({42});
  return ckpt;
}

TEST(Checkpoint, RoundTripPreservesBlobsAndGaps) {
  const FileGuard file{temp_path("finser_ckpt_roundtrip.bin")};
  const Checkpoint ckpt = sample_checkpoint();
  EXPECT_EQ(ckpt.done_count(), 2u);

  std::string error;
  ASSERT_TRUE(ckpt.save(file.path, &error)) << error;

  Checkpoint loaded;
  std::string reason;
  ASSERT_TRUE(Checkpoint::try_load(file.path, ckpt.fingerprint, 5, loaded,
                                   &reason))
      << reason;
  EXPECT_EQ(loaded.fingerprint, ckpt.fingerprint);
  ASSERT_EQ(loaded.blobs.size(), 5u);
  EXPECT_EQ(loaded.blobs, ckpt.blobs);
  EXPECT_EQ(loaded.done_count(), 2u);
}

TEST(Checkpoint, TryLoadRejectsWrongFingerprint) {
  const FileGuard file{temp_path("finser_ckpt_fp.bin")};
  const Checkpoint ckpt = sample_checkpoint();
  ASSERT_TRUE(ckpt.save(file.path));

  Checkpoint loaded;
  std::string reason;
  EXPECT_FALSE(Checkpoint::try_load(file.path, ckpt.fingerprint + 1, 5, loaded,
                                    &reason));
  EXPECT_NE(reason.find("fingerprint"), std::string::npos) << reason;
}

TEST(Checkpoint, TryLoadRejectsWrongUnitCount) {
  const FileGuard file{temp_path("finser_ckpt_units.bin")};
  const Checkpoint ckpt = sample_checkpoint();
  ASSERT_TRUE(ckpt.save(file.path));

  Checkpoint loaded;
  std::string reason;
  EXPECT_FALSE(
      Checkpoint::try_load(file.path, ckpt.fingerprint, 7, loaded, &reason));
  EXPECT_FALSE(reason.empty());
}

TEST(Checkpoint, TryLoadRejectsBitFlip) {
  const FileGuard file{temp_path("finser_ckpt_flip.bin")};
  const Checkpoint ckpt = sample_checkpoint();
  ASSERT_TRUE(ckpt.save(file.path));

  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(util::read_file(file.path, raw, nullptr));
  raw[raw.size() / 2] ^= 0x01;
  ASSERT_TRUE(util::atomic_write_file(file.path, raw.data(), raw.size()));

  Checkpoint loaded;
  std::string reason;
  EXPECT_FALSE(
      Checkpoint::try_load(file.path, ckpt.fingerprint, 5, loaded, &reason));
  EXPECT_NE(reason.find("CRC"), std::string::npos) << reason;
}

TEST(Checkpoint, TryLoadRejectsTruncation) {
  const FileGuard file{temp_path("finser_ckpt_trunc.bin")};
  const Checkpoint ckpt = sample_checkpoint();
  ASSERT_TRUE(ckpt.save(file.path));

  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(util::read_file(file.path, raw, nullptr));
  raw.resize(raw.size() - 5);
  ASSERT_TRUE(util::atomic_write_file(file.path, raw.data(), raw.size()));

  Checkpoint loaded;
  EXPECT_FALSE(
      Checkpoint::try_load(file.path, ckpt.fingerprint, 5, loaded, nullptr));
}

TEST(Checkpoint, TryLoadRejectsBadMagic) {
  const FileGuard file{temp_path("finser_ckpt_magic.bin")};
  const std::string junk = "definitely not a checkpoint file";
  ASSERT_TRUE(util::atomic_write_file(file.path, junk.data(), junk.size()));

  Checkpoint loaded;
  std::string reason;
  EXPECT_FALSE(Checkpoint::try_load(file.path, 1, 5, loaded, &reason));
  EXPECT_FALSE(reason.empty());
}

TEST(Checkpoint, TryLoadMissingFileIsClean) {
  Checkpoint loaded;
  std::string reason;
  EXPECT_FALSE(Checkpoint::try_load(temp_path("finser_ckpt_missing.bin"), 1, 5,
                                    loaded, &reason));
  EXPECT_FALSE(reason.empty());
}

std::vector<std::uint8_t> unit_blob(std::size_t index) {
  return blob_of({static_cast<int>(index) + 1, 7});
}

TEST(RunUnits, ComputesEverythingWhenInactive) {
  exec::ThreadPool pool(2);
  std::atomic<std::size_t> computed{0};
  const UnitRunResult out =
      run_units(pool, 8, /*fingerprint=*/123, RunOptions{},
                [&](const exec::ChunkRange& u) {
                  ++computed;
                  return unit_blob(u.index);
                });
  EXPECT_EQ(computed.load(), 8u);
  EXPECT_EQ(out.reused, 0u);
  ASSERT_EQ(out.blobs.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(out.blobs[i], unit_blob(i));
}

TEST(RunUnits, ResumesFromExistingCheckpoint) {
  const FileGuard file{temp_path("finser_ckpt_resume.bin")};
  constexpr std::uint64_t kFp = 9001;

  Checkpoint seed;
  seed.fingerprint = kFp;
  seed.blobs.resize(5);
  seed.blobs[0] = unit_blob(0);
  seed.blobs[3] = unit_blob(3);
  ASSERT_TRUE(seed.save(file.path));

  RunOptions run;
  run.checkpoint_path = file.path;
  run.checkpoint_interval_sec = 0.0;

  exec::ThreadPool pool(1);
  std::vector<std::size_t> computed;
  const UnitRunResult out =
      run_units(pool, 5, kFp, run, [&](const exec::ChunkRange& u) {
        computed.push_back(u.index);
        return unit_blob(u.index);
      });

  EXPECT_EQ(out.reused, 2u);
  EXPECT_EQ(computed, (std::vector<std::size_t>{1, 2, 4}));
  ASSERT_EQ(out.blobs.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(out.blobs[i], unit_blob(i));
  // A finished run leaves no checkpoint behind.
  EXPECT_FALSE(std::filesystem::exists(file.path));
}

TEST(RunUnits, DiscardsMismatchedCheckpoint) {
  const FileGuard file{temp_path("finser_ckpt_stale.bin")};

  Checkpoint stale;
  stale.fingerprint = 111;  // Saved under a different config.
  stale.blobs.resize(4);
  stale.blobs[0] = blob_of({99});
  ASSERT_TRUE(stale.save(file.path));

  RunOptions run;
  run.checkpoint_path = file.path;
  run.checkpoint_interval_sec = 0.0;

  exec::ThreadPool pool(1);
  std::atomic<std::size_t> computed{0};
  const UnitRunResult out =
      run_units(pool, 4, /*fingerprint=*/222, run,
                [&](const exec::ChunkRange& u) {
                  ++computed;
                  return unit_blob(u.index);
                });
  EXPECT_EQ(out.reused, 0u);
  EXPECT_EQ(computed.load(), 4u);
  EXPECT_EQ(out.blobs[0], unit_blob(0));
}

TEST(RunUnits, CancelFlushesCheckpointAndResumeCompletes) {
  const FileGuard file{temp_path("finser_ckpt_cancel.bin")};
  constexpr std::uint64_t kFp = 4242;
  constexpr std::size_t kUnits = 6;

  RunOptions run;
  run.checkpoint_path = file.path;
  run.checkpoint_interval_sec = 0.0;
  exec::CancelToken token;
  run.cancel = &token;

  exec::ThreadPool pool(1);
  std::size_t before_cancel = 0;
  try {
    run_units(pool, kUnits, kFp, run, [&](const exec::ChunkRange& u) {
      ++before_cancel;
      if (u.index == 1) token.cancel();  // Fire mid-run, at a unit boundary.
      return unit_blob(u.index);
    });
    FAIL() << "cancelled run_units must throw util::Cancelled";
  } catch (const util::Cancelled&) {
  }
  // With one thread, units 0 and 1 ran; the cancel stopped the rest, and the
  // final flush persisted exactly the finished units.
  EXPECT_EQ(before_cancel, 2u);
  Checkpoint persisted;
  std::string reason;
  ASSERT_TRUE(
      Checkpoint::try_load(file.path, kFp, kUnits, persisted, &reason))
      << reason;
  EXPECT_EQ(persisted.done_count(), 2u);

  // Resume without the cancel: only the missing units are recomputed and the
  // assembled blob set is identical to an uninterrupted run.
  run.cancel = nullptr;
  std::atomic<std::size_t> resumed{0};
  const UnitRunResult out =
      run_units(pool, kUnits, kFp, run, [&](const exec::ChunkRange& u) {
        ++resumed;
        return unit_blob(u.index);
      });
  EXPECT_EQ(out.reused, 2u);
  EXPECT_EQ(resumed.load(), kUnits - 2);
  for (std::size_t i = 0; i < kUnits; ++i) EXPECT_EQ(out.blobs[i], unit_blob(i));
  EXPECT_FALSE(std::filesystem::exists(file.path));
}

// ---------------------------------------------------------------------------
// Adaptive (CI-stopped) unit runner
// ---------------------------------------------------------------------------

TEST(RoundBoundaries, GeometricScheduleEndsAtUnitCount) {
  const AdaptiveSchedule sched{4, 2.0};
  EXPECT_EQ(round_boundaries(100, sched),
            (std::vector<std::size_t>{4, 8, 16, 32, 64, 100}));
  // Boundaries always make progress, even with growth 1.
  EXPECT_EQ(round_boundaries(4, AdaptiveSchedule{1, 1.0}),
            (std::vector<std::size_t>{1, 2, 3, 4}));
  // min_units above n collapses to a single round.
  EXPECT_EQ(round_boundaries(5, AdaptiveSchedule{8, 2.0}),
            (std::vector<std::size_t>{5}));
  // min_units 0 still starts at one unit.
  EXPECT_EQ(round_boundaries(3, AdaptiveSchedule{0, 3.0}),
            (std::vector<std::size_t>{1, 3}));
}

TEST(RunUnitsAdaptive, StopsAtFirstConvergedBoundary) {
  exec::ThreadPool pool(2);
  std::atomic<std::size_t> computed{0};
  const AdaptiveSchedule sched{2, 2.0};  // Boundaries 2, 4, 8, 12.
  const UnitRunResult out = run_units_adaptive(
      pool, 12, /*fingerprint=*/5, RunOptions{}, sched,
      [&](const exec::ChunkRange& u) {
        ++computed;
        return unit_blob(u.index);
      },
      [](std::size_t done, const std::vector<std::vector<std::uint8_t>>&) {
        return done >= 4;  // Converged at the second boundary.
      });
  EXPECT_TRUE(out.stopped_early);
  EXPECT_EQ(out.completed, 4u);
  EXPECT_EQ(computed.load(), 4u);  // Later rounds never ran.
  ASSERT_EQ(out.blobs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out.blobs[i], unit_blob(i));
}

TEST(RunUnitsAdaptive, NeverConvergedRunsEveryUnit) {
  exec::ThreadPool pool(2);
  const UnitRunResult out = run_units_adaptive(
      pool, 10, /*fingerprint=*/6, RunOptions{}, AdaptiveSchedule{2, 2.0},
      [](const exec::ChunkRange& u) { return unit_blob(u.index); },
      [](std::size_t, const std::vector<std::vector<std::uint8_t>>&) {
        return false;
      });
  EXPECT_FALSE(out.stopped_early);
  EXPECT_EQ(out.completed, 10u);
  ASSERT_EQ(out.blobs.size(), 10u);
}

TEST(RunUnitsAdaptive, PredicateSeesOnlyTheCompletedPrefixInOrder) {
  exec::ThreadPool pool(4);
  std::vector<std::size_t> decision_points;
  run_units_adaptive(
      pool, 20, /*fingerprint=*/7, RunOptions{}, AdaptiveSchedule{4, 2.0},
      [](const exec::ChunkRange& u) { return unit_blob(u.index); },
      [&](std::size_t done,
          const std::vector<std::vector<std::uint8_t>>& blobs) {
        decision_points.push_back(done);
        // The prefix [0, done) is fully populated with the right blobs and
        // everything beyond it is still empty — regardless of the thread
        // schedule that computed the round.
        for (std::size_t i = 0; i < done; ++i) {
          EXPECT_EQ(blobs[i], unit_blob(i)) << "unit " << i;
        }
        for (std::size_t i = done; i < blobs.size(); ++i) {
          EXPECT_TRUE(blobs[i].empty()) << "unit " << i;
        }
        return false;
      });
  // Final boundary (done == n_units) needs no decision.
  EXPECT_EQ(decision_points, (std::vector<std::size_t>{4, 8, 16}));
}

TEST(RunUnitsAdaptive, ResumeReplaysTheSameStoppingDecision) {
  // Kill-and-resume with early stopping enabled: a checkpoint taken
  // mid-round must resume to the *same* stopping boundary with the same
  // blobs — the stopping state is derived, not stored, so byte-identity of
  // the prefix is the whole contract.
  const FileGuard file{temp_path("finser_ckpt_adaptive_resume.bin")};
  constexpr std::uint64_t kFp = 777;
  constexpr std::size_t kUnits = 16;
  const AdaptiveSchedule sched{2, 2.0};  // Boundaries 2, 4, 8, 16.
  const auto converged =
      [](std::size_t done, const std::vector<std::vector<std::uint8_t>>&) {
        return done >= 8;
      };

  RunOptions run;
  run.checkpoint_path = file.path;
  run.checkpoint_interval_sec = 0.0;
  exec::CancelToken token;
  run.cancel = &token;

  exec::ThreadPool pool(1);
  try {
    run_units_adaptive(pool, kUnits, kFp, run, sched,
                       [&](const exec::ChunkRange& u) {
                         if (u.index == 5) token.cancel();  // Mid round 3.
                         return unit_blob(u.index);
                       },
                       converged);
    FAIL() << "cancelled run_units_adaptive must throw util::Cancelled";
  } catch (const util::Cancelled&) {
  }
  // The flushed checkpoint keeps one slot per *potential* unit, so a resumed
  // run can still schedule every remaining round.
  Checkpoint persisted;
  std::string reason;
  ASSERT_TRUE(Checkpoint::try_load(file.path, kFp, kUnits, persisted, &reason))
      << reason;
  EXPECT_GE(persisted.done_count(), 5u);
  EXPECT_LT(persisted.done_count(), 8u);

  run.cancel = nullptr;
  std::vector<std::size_t> recomputed;
  const UnitRunResult out = run_units_adaptive(
      pool, kUnits, kFp, run,
      sched,
      [&](const exec::ChunkRange& u) {
        recomputed.push_back(u.index);
        return unit_blob(u.index);
      },
      converged);
  EXPECT_TRUE(out.stopped_early);
  EXPECT_EQ(out.completed, 8u);
  ASSERT_EQ(out.blobs.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(out.blobs[i], unit_blob(i));
  // Only the units the kill lost were recomputed, and none past the
  // stopping boundary.
  EXPECT_EQ(out.reused, persisted.done_count());
  for (std::size_t i : recomputed) EXPECT_LT(i, 8u);
  EXPECT_FALSE(std::filesystem::exists(file.path));
}

TEST(RunUnitsAdaptive, RequiresAPredicate) {
  exec::ThreadPool pool(1);
  EXPECT_THROW(
      run_units_adaptive(
          pool, 4, 1, RunOptions{}, AdaptiveSchedule{},
          [](const exec::ChunkRange& u) { return unit_blob(u.index); },
          ConvergedFn{}),
      util::InvalidArgument);
}

}  // namespace
}  // namespace finser::ckpt
