#!/usr/bin/env bash
# Regenerate every paper figure / ablation CSV (bench_out/) and print the
# series. Usage: scripts/run_benches.sh [build-dir]   (default: build)
set -u
BUILD="${1:-build}"
for b in "$BUILD"/bench/*; do
  case "$(basename "$b")" in CMakeFiles|*.cmake) continue ;; esac
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $b ====="
  "$b" || exit 1
done
