#!/usr/bin/env bash
# Regenerate every paper figure / ablation CSV (bench_out/) and print the
# series. Usage: scripts/run_benches.sh [build-dir]   (default: build)
#
# Fails loudly: a bench that exits non-zero, a bench directory with no
# executables, or a non-executable entry each abort the run with the
# offending name — a silently skipped bench looks exactly like a green run
# in CI, which is how missing figures slip through.
set -u
BUILD="${1:-build}"
if [ ! -d "$BUILD/bench" ]; then
  echo "run_benches: no such bench directory: $BUILD/bench" >&2
  exit 1
fi
ran=0
for b in "$BUILD"/bench/*; do
  case "$(basename "$b")" in CMakeFiles|*.cmake) continue ;; esac
  [ -f "$b" ] || continue
  if [ ! -x "$b" ]; then
    echo "run_benches: bench is not executable: $b" >&2
    exit 1
  fi
  echo "===== $b ====="
  if ! "$b"; then
    echo "run_benches: bench failed: $b" >&2
    exit 1
  fi
  ran=$((ran + 1))
done
if [ "$ran" -eq 0 ]; then
  echo "run_benches: no bench executables found in $BUILD/bench (build them" \
       "with: cmake --build $BUILD)" >&2
  exit 1
fi
echo "run_benches: $ran benches OK"
