#!/usr/bin/env bash
# Serve-mode smoke test (docs/serving.md).
#
# Drives `finser_cli serve` end to end against a deliberately tiny campaign
# and checks the contracts the serving layer advertises:
#
#   1. A cold server refines misses through the campaign runner, answers a
#      burst of compatible requests with ONE refinement (batching), and
#      persists `response_surface` artifacts.
#   2. Grid answers are byte-identical to the batch pipeline: a server
#      reading a `finser_cli campaign` run's artifact store replies with
#      the exact bytes the cold server computed.
#   3. A warm restart answers purely from cached artifacts: byte-identical
#      replies with zero characterizations and zero surface builds,
#      witnessed by the `stats` op's counters.
#   4. SIGTERM drains cleanly: exit 0, replies flushed, no orphaned *.tmp
#      files in the artifact store.
#   5. Malformed input degrades (exit 6) without stopping the loop, and
#      `artifacts ls` reads the store without mutating it.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)

set -u

BUILD=${1:-build}
CLI="$BUILD/tools/finser_cli"
if [[ ! -x "$CLI" ]]; then
  echo "serve_smoke: $CLI not built" >&2
  exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/finser_serve_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
unset FINSER_FAULT FINSER_MC_SCALE FINSER_THREADS FINSER_CI_TARGET \
  FINSER_CLUSTER FINSER_WORKERS FINSER_METRICS

FAILURES=0
fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

# Tiny campaign: the smoke test checks plumbing and byte contracts, not
# physics. Two grids points per axis keep the refinement under a second.
make_campaign() {
  local path=$1 artdir=$2
  cat > "$path" <<EOF
{
  "campaign": "serve-smoke",
  "seed": 7,
  "artifact_dir": "$artdir",
  "output_dir": "$WORK/batch_out",
  "defaults": {
    "rows": 2, "cols": 2, "vdds": [0.7, 0.8], "pv_samples": 10,
    "strikes": 600, "histories": 600, "species": ["alpha"]
  },
  "scenarios": [{"name": "a"}]
}
EOF
}
make_campaign "$WORK/cold.json" "$WORK/art_cold"
make_campaign "$WORK/batch.json" "$WORK/art_batch"

# A mixed burst: two distinct queries plus a repeat of the first — written in
# one pipe burst, so the server sees all three before it blocks and must
# answer them from a single refinement pass.
REQ1='{"id":1,"op":"pof","species":"alpha","vdd":0.7,"energy_mev":2.0}'
REQ2='{"id":2,"op":"fit","species":"alpha","vdd":0.8,"with_pv":false}'
REQ3='{"id":3,"op":"pof","species":"alpha","vdd":0.7,"energy_mev":2.0}'
STATS='{"id":9,"op":"stats"}'
BYE='{"op":"shutdown"}'

# Counter assertion against a stats reply: a counter that never incremented
# is absent from the snapshot, so "zero" means absent or literally 0.
counter_is_zero() {
  local file=$1 name=$2
  if grep -q "\"$name\":" "$file"; then
    grep -q "\"$name\":0[,}]" "$file"
  fi
}
counter_equals() {
  local file=$1 name=$2 want=$3
  grep -q "\"$name\":$want[,}]" "$file"
}

# --- phase 1: cold server — miss, batch, refine once, persist ---------------
echo "=== phase 1: cold serve"
printf '%s\n' "$REQ1" "$REQ2" "$REQ3" "$STATS" "$BYE" |
  "$CLI" serve "$WORK/cold.json" --threads 2 > "$WORK/cold.out" 2> "$WORK/cold.err"
[[ $? -eq 0 ]] || fail "cold serve exited non-zero"
[[ $(wc -l < "$WORK/cold.out") -eq 5 ]] || fail "cold serve: expected 5 replies"
head -3 "$WORK/cold.out" > "$WORK/cold.answers"
grep -q '"status":"error"\|"status":"shed"' "$WORK/cold.out" &&
  fail "cold serve degraded unexpectedly"
STATS_LINE="$WORK/cold.stats"
sed -n '4p' "$WORK/cold.out" > "$STATS_LINE"
counter_equals "$STATS_LINE" "serve.refines" 1 ||
  fail "burst was not served by exactly one refinement"
counter_equals "$STATS_LINE" "serve.batches" 1 ||
  fail "burst was not resolved as one batch"
counter_equals "$STATS_LINE" "pipeline.characterizations" 1 ||
  fail "cold serve should characterize exactly once"
# Identical repeated query ⇒ identical reply bytes (ids differ by design).
s1=$(sed -n 1p "$WORK/cold.answers" | sed 's/"id":1,//')
s3=$(sed -n 3p "$WORK/cold.answers" | sed 's/"id":3,//')
[[ "$s1" == "$s3" ]] || fail "repeat query answered with different bytes"
ls "$WORK/art_cold"/response_surface-*.art > /dev/null 2>&1 ||
  fail "cold serve persisted no response_surface artifact"

# --- phase 2: batch campaign, then serve from ITS artifacts -----------------
# The server never simulates here (different process, different store); if
# its replies match phase 1's bytes, serve ≡ batch at grid points.
echo "=== phase 2: batch equivalence"
"$CLI" campaign "$WORK/batch.json" --threads 2 > "$WORK/batch.log" 2>&1 ||
  fail "batch campaign exited non-zero"
printf '%s\n' "$REQ1" "$REQ2" "$REQ3" "$STATS" "$BYE" |
  "$CLI" serve "$WORK/batch.json" --threads 2 > "$WORK/warm_batch.out" 2> /dev/null
[[ $? -eq 0 ]] || fail "batch-warmed serve exited non-zero"
head -3 "$WORK/warm_batch.out" | cmp -s - "$WORK/cold.answers" ||
  fail "serve answers differ from the batch pipeline's surfaces"
sed -n '4p' "$WORK/warm_batch.out" > "$WORK/warm_batch.stats"
counter_is_zero "$WORK/warm_batch.stats" "pipeline.characterizations" ||
  fail "batch-warmed serve ran a characterization"
counter_is_zero "$WORK/warm_batch.stats" "surface.builds" ||
  fail "batch-warmed serve rebuilt a surface"

# --- phase 3: warm restart on the cold server's own store -------------------
echo "=== phase 3: warm restart"
printf '%s\n' "$REQ1" "$REQ2" "$REQ3" "$STATS" "$BYE" |
  "$CLI" serve "$WORK/cold.json" --threads 2 > "$WORK/warm.out" 2> /dev/null
[[ $? -eq 0 ]] || fail "warm serve exited non-zero"
head -3 "$WORK/warm.out" | cmp -s - "$WORK/cold.answers" ||
  fail "warm restart answers differ from the cold run"
sed -n '4p' "$WORK/warm.out" > "$WORK/warm.stats"
counter_is_zero "$WORK/warm.stats" "pipeline.characterizations" ||
  fail "warm restart ran a characterization"
counter_is_zero "$WORK/warm.stats" "surface.builds" ||
  fail "warm restart rebuilt a surface"
counter_equals "$WORK/warm.stats" "surface.artifact_hits" 1 ||
  fail "warm restart did not load the response_surface artifact"

# --- phase 4: SIGTERM drain -------------------------------------------------
echo "=== phase 4: SIGTERM drain"
FIFO="$WORK/serve.fifo"
mkfifo "$FIFO"
"$CLI" serve "$WORK/cold.json" --threads 2 < "$FIFO" > "$WORK/drain.out" \
  2> /dev/null &
SERVE_PID=$!
exec 3> "$FIFO"  # hold the write end open so EOF does not end the loop
echo "$REQ1" >&3
for _ in $(seq 1 100); do
  [[ -s "$WORK/drain.out" ]] && break
  sleep 0.1
done
[[ -s "$WORK/drain.out" ]] || fail "draining server answered nothing"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
status=$?
exec 3>&-
[[ $status -eq 0 ]] || fail "SIGTERM drain exited $status, expected 0"
head -1 "$WORK/drain.out" | cmp -s - <(head -1 "$WORK/cold.answers") ||
  fail "drained server's reply differs from the cold run"
if ls "$WORK/art_cold"/*.tmp > /dev/null 2>&1; then
  fail "SIGTERM drain left orphaned .tmp artifacts"
fi

# --- phase 5: degraded input + read-only inventory --------------------------
echo "=== phase 5: degraded exit + artifacts ls"
printf '%s\n%s\n' 'this is not json' "$BYE" |
  "$CLI" serve "$WORK/cold.json" --threads 2 > "$WORK/bad.out" 2> /dev/null
[[ $? -eq 6 ]] || fail "malformed request should exit 6 (degraded)"
grep -q '"status":"error"' "$WORK/bad.out" ||
  fail "malformed request got no error reply"
grep -q '"op":"shutdown"' "$WORK/bad.out" ||
  fail "loop stopped serving after a malformed request"
"$CLI" artifacts ls "$WORK/art_cold" > "$WORK/ls.out" ||
  fail "artifacts ls exited non-zero"
grep -q "response_surface" "$WORK/ls.out" ||
  fail "artifacts ls did not list the response_surface entry"
grep -q " 0 bad)" "$WORK/ls.out" || fail "artifacts ls found bad entries"

if [[ $FAILURES -gt 0 ]]; then
  echo "serve_smoke: $FAILURES check(s) failed" >&2
  exit 1
fi
echo "serve_smoke: all checks passed"
