#!/usr/bin/env bash
# Fault-injection matrix for the CLI flow (docs/robustness.md).
#
# Runs `finser_cli run` end to end under every FINSER_FAULT site and requires
# the *documented* degradation for each — warn-and-continue for I/O failures,
# reject-and-regenerate for a corrupted cache, a clean exit code 3 (never a
# crash) when the solver is driven past its retry ladder. The SIGKILL site is
# covered separately by the KillResumeHarness ctest.
#
# Usage: scripts/fault_matrix.sh [build-dir]   (default: build)

set -u

BUILD=${1:-build}
CLI="$BUILD/tools/finser_cli"
if [[ ! -x "$CLI" ]]; then
  echo "fault_matrix: $CLI not built" >&2
  exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/finser_fault_matrix.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# A deliberately tiny campaign: the matrix tests failure *paths*, not physics.
CONFIG="$WORK/tiny.ini"
cat > "$CONFIG" <<EOF
array.rows = 2
array.cols = 2
cell.vdds = 0.8
mc.pv_samples = 10
mc.strikes = 1000
mc.seed = 99
species = alpha
output.dir = $WORK/out
lut_cache = $WORK/out/pof_luts.bin
EOF

unset FINSER_FAULT FINSER_MC_SCALE FINSER_THREADS
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

run_cli() {
  local fault=$1
  shift
  echo "=== FINSER_FAULT=${fault:-<none>} $*"
  if [[ -n "$fault" ]]; then
    FINSER_FAULT=$fault "$CLI" "$@" > "$WORK/stdout.log" 2> "$WORK/stderr.log"
  else
    "$CLI" "$@" > "$WORK/stdout.log" 2> "$WORK/stderr.log"
  fi
}

# --- baseline: the tiny campaign must pass cleanly --------------------------
run_cli "" run "$CONFIG" --threads 2
[[ $? -eq 0 ]] || fail "baseline run exited non-zero"
[[ -s "$WORK/out/fit_summary.csv" ]] || fail "baseline produced no fit_summary.csv"

# --- io_write_fail: a failed cache/checkpoint write degrades to a warning ---
rm -rf "$WORK/out"
run_cli "io_write_fail:1" run "$CONFIG" --threads 2
[[ $? -eq 0 ]] || fail "io_write_fail run did not warn-and-continue (exit != 0)"
grep -qi "warning" "$WORK/stdout.log" "$WORK/stderr.log" ||
  fail "io_write_fail run emitted no warning"

# --- cache_flip: a corrupted LUT cache is rejected and regenerated ----------
rm -rf "$WORK/out"
run_cli "cache_flip:40" run "$CONFIG" --threads 2
[[ $? -eq 0 ]] || fail "cache_flip seeding run exited non-zero"
run_cli "" run "$CONFIG" --threads 2
[[ $? -eq 0 ]] || fail "run with corrupted cache exited non-zero"
grep -q "re-characterizing" "$WORK/stderr.log" ||
  fail "corrupted cache was not rejected + regenerated"
run_cli "" run "$CONFIG" --threads 2
[[ $? -eq 0 ]] || fail "run with regenerated cache exited non-zero"
grep -q "re-characterizing" "$WORK/stderr.log" &&
  fail "regenerated cache was rejected again"

# --- newton_diverge saturation: exit code 3, never a crash ------------------
# Making *every* strike transient diverge must trip the failure-fraction gate
# and exit with the documented code 3.
rm -rf "$WORK/out"
run_cli "newton_diverge:1:1000000000" run "$CONFIG" --threads 2
status=$?
[[ $status -eq 3 ]] ||
  fail "saturated newton_diverge exited $status, expected 3"
grep -qi "numerical failure" "$WORK/stderr.log" ||
  fail "saturated newton_diverge did not report a numerical failure"

# --- sharded campaign sites (docs/sharding.md) ------------------------------
# A tiny two-scenario campaign driven through `campaign --workers`; the
# supervisor must absorb each documented shard failure and still exit 0 with
# complete outputs. (FINSER_FAULT reaches the initial workers through the
# environment; replacement workers are spawned with it stripped.)
CAMPAIGN="$WORK/tiny_campaign.json"
cat > "$CAMPAIGN" <<EOF
{
  "campaign": "fault-matrix",
  "seed": 5,
  "output_dir": "$WORK/shard_out",
  "defaults": {
    "rows": 2, "cols": 2, "vdds": [0.8], "pv_samples": 10,
    "strikes": 600, "histories": 600, "species": ["alpha"]
  },
  "scenarios": [{"name": "a"}, {"name": "b", "pattern": "zeros"}]
}
EOF

# worker_kill_after_claim: every initial worker SIGKILLs itself right after
# acking its first stage; replacements must finish the campaign.
rm -rf "$WORK/shard_out"
run_cli "worker_kill_after_claim:1" campaign "$CAMPAIGN" --workers 2
[[ $? -eq 0 ]] || fail "worker_kill_after_claim campaign exited non-zero"
[[ -s "$WORK/shard_out/a/fit_summary.csv" && -s "$WORK/shard_out/b/fit_summary.csv" ]] ||
  fail "worker_kill_after_claim campaign left outputs incomplete"

# lease_torn: the supervisor's first lease write is torn mid-file; the
# half-written record must read as reclaimable, not crash the run.
rm -rf "$WORK/shard_out"
run_cli "lease_torn:1" campaign "$CAMPAIGN" --workers 1
[[ $? -eq 0 ]] || fail "lease_torn campaign exited non-zero"
[[ -s "$WORK/shard_out/a/fit_summary.csv" ]] ||
  fail "lease_torn campaign left outputs incomplete"

# heartbeat_stall: the initial worker stops heartbeating and wedges; with a
# 1 s heartbeat timeout the supervisor must kill + replace it and finish.
rm -rf "$WORK/shard_out"
run_cli "heartbeat_stall:1" campaign "$CAMPAIGN" --workers 1 \
  --heartbeat-timeout-s 1
[[ $? -eq 0 ]] || fail "heartbeat_stall campaign exited non-zero"
[[ -s "$WORK/shard_out/a/fit_summary.csv" && -s "$WORK/shard_out/b/fit_summary.csv" ]] ||
  fail "heartbeat_stall campaign left outputs incomplete"

if [[ $FAILURES -gt 0 ]]; then
  echo "fault matrix: $FAILURES check(s) failed" >&2
  exit 1
fi
echo "fault matrix: all checks passed"
