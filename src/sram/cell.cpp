#include "finser/sram/cell.hpp"

#include "finser/obs/obs.hpp"
#include "finser/spice/dc.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fault.hpp"
#include "finser/util/units.hpp"

namespace finser::sram {

using spice::kGround;
using spice::Mosfet;
using spice::PulseISource;
using spice::PulseShape;

StrikeSimulator::StrikeSimulator(const CellDesign& design, double vdd_v,
                                 AccessMode mode, SpiceEngine engine)
    : design_(design), vdd_v_(vdd_v), mode_(mode), engine_(engine) {
  FINSER_REQUIRE(vdd_v > 0.0, "StrikeSimulator: Vdd must be positive");
  if (design_.nfet == nullptr) design_.nfet = &spice::default_nfet();
  if (design_.pfet == nullptr) design_.pfet = &spice::default_pfet();

  tau_s_ = util::fs_to_s(phys::transit_time_fs(design_.tech, vdd_v_));

  n_q_ = circuit_.node("q");
  n_qb_ = circuit_.node("qb");
  n_vdd_ = circuit_.node("vdd");
  n_bl_ = circuit_.node("bl");
  n_blb_ = circuit_.node("blb");
  n_wl_ = circuit_.node("wl");

  circuit_.add<spice::VSource>(circuit_, n_vdd_, kGround, vdd_v_);
  circuit_.add<spice::VSource>(circuit_, n_bl_, kGround, vdd_v_);   // precharged
  circuit_.add<spice::VSource>(circuit_, n_blb_, kGround, vdd_v_);  // precharged
  // Write wordline: low in retention; high during a 6T read access (the
  // read-disturb condition). The 8T cell reads through its dedicated read
  // wordline instead, so its write wordline stays low in both modes.
  const bool wl_high =
      mode_ == AccessMode::kRead && design_.topology == CellTopology::k6T;
  circuit_.add<spice::VSource>(circuit_, n_wl_, kGround, wl_high ? vdd_v_ : 0.0);

  // Cross-coupled inverters.
  fets_[static_cast<std::size_t>(Role::kPdL)] =
      &circuit_.add<Mosfet>(n_q_, n_qb_, kGround, *design_.nfet, design_.nfin_pd);
  fets_[static_cast<std::size_t>(Role::kPuL)] =
      &circuit_.add<Mosfet>(n_q_, n_qb_, n_vdd_, *design_.pfet, design_.nfin_pu);
  fets_[static_cast<std::size_t>(Role::kPdR)] =
      &circuit_.add<Mosfet>(n_qb_, n_q_, kGround, *design_.nfet, design_.nfin_pd);
  fets_[static_cast<std::size_t>(Role::kPuR)] =
      &circuit_.add<Mosfet>(n_qb_, n_q_, n_vdd_, *design_.pfet, design_.nfin_pu);
  // Pass gates (wordline low).
  fets_[static_cast<std::size_t>(Role::kPgL)] =
      &circuit_.add<Mosfet>(n_bl_, n_wl_, n_q_, *design_.nfet, design_.nfin_pg);
  fets_[static_cast<std::size_t>(Role::kPgR)] =
      &circuit_.add<Mosfet>(n_blb_, n_wl_, n_qb_, *design_.nfet, design_.nfin_pg);

  for (spice::Mosfet* fet : fets_) fet->set_temperature(design_.temp_k);

  // 8T read-decoupled topology: a 2-NFET read stack (M7 gated by QB, M8 by
  // the read wordline) buffering the storage nodes from the read bitline.
  // In retention the read wordline is low; in kRead mode *it* (not the
  // write wordline) is asserted — the storage nodes never see the bitline.
  if (design_.topology == CellTopology::k8T) {
    const auto n_rbl = circuit_.node("rbl");
    const auto n_rwl = circuit_.node("rwl");
    const auto n_rint = circuit_.node("rint");
    circuit_.add<spice::VSource>(circuit_, n_rbl, kGround, vdd_v_);  // precharge
    circuit_.add<spice::VSource>(circuit_, n_rwl, kGround,
                                 mode_ == AccessMode::kRead ? vdd_v_ : 0.0);
    auto& m7 = circuit_.add<Mosfet>(n_rint, n_qb_, kGround, *design_.nfet,
                                    design_.nfin_pd);
    auto& m8 = circuit_.add<Mosfet>(n_rbl, n_rwl, n_rint, *design_.nfet,
                                    design_.nfin_pg);
    m7.set_temperature(design_.temp_k);
    m8.set_temperature(design_.temp_k);
    circuit_.add<spice::Capacitor>(n_rint, kGround, 0.02e-15);
    // The write wordline stays low in both modes for the 8T cell; the
    // VSource added above already encodes kRetention for it when 8T.
  }

  // Storage-node capacitances (gate + junction, lumped).
  circuit_.add<spice::Capacitor>(n_q_, kGround, design_.cnode_f);
  circuit_.add<spice::Capacitor>(n_qb_, kGround, design_.cnode_f);

  // Strike current sources (paper Fig. 5a); shapes set per simulation.
  const PulseShape zero{};
  src_i1_ = &circuit_.add<PulseISource>(n_q_, kGround, zero);   // PD at Q.
  src_i2_ = &circuit_.add<PulseISource>(n_vdd_, n_qb_, zero);   // PU at QB.
  src_i3_ = &circuit_.add<PulseISource>(n_blb_, n_qb_, zero);   // PG at QB.

  // Transient window: the pulse is ~10 fs; 50 ps comfortably covers the flip
  // or recovery of a 14 nm cell (regeneration time constants are < 1 ps).
  topt_.t_end = 50e-12;
  topt_.dt_initial = 1e-15;
  topt_.dt_max = 1e-12;

  // The netlist is final: lower it once. Every simulate() from here on is a
  // rebind, never a rebuild.
  if (engine_ == SpiceEngine::kCompiled) compiled_.emplace(circuit_);
}

void StrikeSimulator::set_pulse_width_scale(double scale) {
  FINSER_REQUIRE(scale > 0.0, "set_pulse_width_scale: scale must be positive");
  pulse_width_scale_ = scale;
}

void StrikeSimulator::apply_delta_vt(const DeltaVt& delta_vt) {
  for (std::size_t r = 0; r < kRoleCount; ++r) {
    fets_[r]->set_delta_vt(delta_vt[r]);
  }
}

std::vector<double> StrikeSimulator::solve_hold(const DeltaVt& delta_vt) {
  apply_delta_vt(delta_vt);
  std::vector<double> guess(circuit_.unknown_count(), 0.0);
  guess[n_q_] = vdd_v_;
  guess[n_qb_] = 0.0;
  guess[n_vdd_] = vdd_v_;
  guess[n_bl_] = vdd_v_;
  guess[n_blb_] = vdd_v_;
  return spice::solve_dc(circuit_, guess);
}

const std::vector<double>& StrikeSimulator::hold_cached(const DeltaVt& delta_vt) {
  // The DC hold state depends only on the threshold shifts (strike sources
  // are open in DC, supplies are fixed), so one solve serves every charge
  // probed against the same ΔVt vector — in a Qcrit bisection that is the
  // whole bisection. Exact-equality keying is deliberate: a cache hit
  // returns what a fresh deterministic solve of identical inputs would, so
  // results are independent of hit patterns (and of thread/chunk layout).
  if (hold_valid_ && hold_dvt_ == delta_vt) {
    FINSER_OBS_COUNT("sram.strike.dc_reuse", 1);
    return hold_x_;
  }
  std::vector<double> guess(circuit_.unknown_count(), 0.0);
  guess[n_q_] = vdd_v_;
  guess[n_qb_] = 0.0;
  guess[n_vdd_] = vdd_v_;
  guess[n_bl_] = vdd_v_;
  guess[n_blb_] = vdd_v_;
  hold_x_ = spice::solve_dc(*compiled_, ws_, guess);
  hold_dvt_ = delta_vt;
  hold_valid_ = true;
  return hold_x_;
}

std::array<double, 2> StrikeSimulator::hold_state(const DeltaVt& delta_vt) {
  if (engine_ == SpiceEngine::kReference) {
    const auto x = solve_hold(delta_vt);
    return {x[n_q_], x[n_qb_]};
  }
  apply_delta_vt(delta_vt);
  compiled_->rebind();
  const auto& x = hold_cached(delta_vt);
  return {x[n_q_], x[n_qb_]};
}

void StrikeSimulator::set_strike_shapes(const StrikeCharges& charges,
                                        PulseShape::Kind kind) {
  // All three currents share the drift-collection width τ and start together
  // 1 ps into the run (so the waveform shows the undisturbed hold level).
  constexpr double kDelayS = 1e-12;
  const double width_s = tau_s_ * pulse_width_scale_;
  auto shape = [&](double q_fc) {
    const double q_c = util::fc_to_c(q_fc);
    return kind == PulseShape::Kind::kRectangular
               ? PulseShape::rectangular_for_charge(q_c, width_s, kDelayS)
               : PulseShape::triangular_for_charge(q_c, width_s, kDelayS);
  };
  src_i1_->set_shape(shape(charges.i1_fc));
  src_i2_->set_shape(shape(charges.i2_fc));
  src_i3_->set_shape(shape(charges.i3_fc));
}

StrikeOutcome StrikeSimulator::simulate(const StrikeCharges& charges,
                                        const DeltaVt& delta_vt,
                                        PulseShape::Kind kind) {
  // Fault-injection hook: the Nth strike simulation "diverges" exactly like
  // a real Newton failure would, exercising the characterizer's
  // count-and-exclude path (util/fault.hpp).
  if (util::fault_fire(util::FaultSite::kNewtonDiverge)) {
    throw util::NumericalError(
        "StrikeSimulator::simulate: injected Newton divergence "
        "(FINSER_FAULT newton_diverge)");
  }

  const auto finish = [this](const spice::Waveform& wave) {
    StrikeOutcome out;
    out.final_q_v = wave.final_value(0);
    out.final_qb_v = wave.final_value(1);
    // Flip detection: the '1' node fell below mid-rail and the '0' node rose
    // above it (a regenerated cell returns to its rails within the window).
    out.flipped = out.final_q_v < 0.5 * vdd_v_ && out.final_qb_v > 0.5 * vdd_v_;
    return out;
  };

  if (engine_ == SpiceEngine::kReference) {
    const auto x0 = solve_hold(delta_vt);
    set_strike_shapes(charges, kind);
    return finish(spice::run_transient(circuit_, x0, topt_, {"q", "qb"}));
  }

  // Compiled hot path: mutate the source devices exactly as the reference
  // engine would, then rebind the plan once. The strike shapes are open in
  // DC, so setting them before the hold solve changes nothing there.
  apply_delta_vt(delta_vt);
  set_strike_shapes(charges, kind);
  compiled_->rebind();
  const auto& x0 = hold_cached(delta_vt);
  return finish(spice::run_transient(*compiled_, ws_, x0, topt_, {"q", "qb"}));
}

void StrikeSimulator::simulate_batch(const std::vector<StrikeCharges>& charges,
                                     const std::vector<DeltaVt>& dvts,
                                     PulseShape::Kind kind,
                                     const std::vector<std::uint8_t>& active,
                                     std::vector<LaneOutcome>& out) {
  const std::size_t count = charges.size();
  FINSER_REQUIRE(dvts.size() == count && active.size() == count,
                 "simulate_batch: input size mismatch");
  if (out.size() < count) out.resize(count);

  const std::size_t width = spice::lane_width();
  if (engine_ == SpiceEngine::kReference || width == 1) {
    // Scalar reference loop: same per-sample arithmetic by definition.
    for (std::size_t k = 0; k < count; ++k) {
      if (!active[k]) continue;
      out[k] = LaneOutcome{};
      try {
        out[k].outcome = simulate(charges[k], dvts[k], kind);
      } catch (const util::NumericalError& e) {
        out[k].failed = true;
        out[k].error = e.what();
      }
    }
    return;
  }

  if (bw_.lanes != width) {
    compiled_->batch_configure(bw_, width);
    hold_lane_valid_.fill(false);
  }

  std::vector<std::vector<double>> x0s;
  for (std::size_t offset = 0; offset < count; offset += width) {
    const std::size_t group = std::min(width, count - offset);
    x0s.assign(group, {});
    bool any = false;
    for (std::size_t g = 0; g < group; ++g) {
      const std::size_t k = offset + g;
      if (!active[k]) continue;
      out[k] = LaneOutcome{};
      // Fault-injection hook, fired in lane order (mirrors simulate()).
      if (util::fault_fire(util::FaultSite::kNewtonDiverge)) {
        out[k].failed = true;
        out[k].error =
            "StrikeSimulator::simulate: injected Newton divergence "
            "(FINSER_FAULT newton_diverge)";
        continue;
      }
      // Bind lane g: same setter+rebind sequence as the scalar path, then
      // captured into the lane's AoSoA slices.
      apply_delta_vt(dvts[k]);
      set_strike_shapes(charges[k], kind);
      compiled_->rebind();
      compiled_->batch_rebind_lane(bw_, g);
      // Per-lane ΔVt-keyed DC hold cache (see hold_cached for why exact
      // keying keeps results independent of hit patterns). The DC solve
      // itself stays scalar: it is ~2% of a sample's cost and amortized to
      // one per sample by this cache.
      if (hold_lane_valid_[g] && hold_lane_dvt_[g] == dvts[k]) {
        FINSER_OBS_COUNT("sram.strike.dc_reuse", 1);
        x0s[g] = hold_lane_x_[g];
        any = true;
        continue;
      }
      std::vector<double> guess(circuit_.unknown_count(), 0.0);
      guess[n_q_] = vdd_v_;
      guess[n_qb_] = 0.0;
      guess[n_vdd_] = vdd_v_;
      guess[n_bl_] = vdd_v_;
      guess[n_blb_] = vdd_v_;
      try {
        hold_lane_x_[g] = spice::solve_dc(*compiled_, ws_, guess);
        hold_lane_dvt_[g] = dvts[k];
        hold_lane_valid_[g] = true;
        x0s[g] = hold_lane_x_[g];
        any = true;
      } catch (const util::NumericalError& e) {
        hold_lane_valid_[g] = false;
        out[k].failed = true;
        out[k].error = e.what();
      }
    }
    if (!any) continue;

    const spice::BatchTransientResult res =
        spice::run_transient_batch(*compiled_, bw_, x0s, topt_, {"q", "qb"});
    for (std::size_t g = 0; g < group; ++g) {
      const std::size_t k = offset + g;
      if (x0s[g].empty()) continue;
      if (res.failed[g]) {
        out[k].failed = true;
        out[k].error = res.errors[g];
        continue;
      }
      StrikeOutcome& o = out[k].outcome;
      o.final_q_v = res.waves[g].final_value(0);
      o.final_qb_v = res.waves[g].final_value(1);
      o.flipped =
          o.final_q_v < 0.5 * vdd_v_ && o.final_qb_v > 0.5 * vdd_v_;
    }
  }
}

}  // namespace finser::sram
