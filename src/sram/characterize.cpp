#include "finser/sram/characterize.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>

#include "finser/exec/thread_pool.hpp"
#include "finser/obs/obs.hpp"
#include "finser/spice/batch.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/error.hpp"

namespace finser::sram {

namespace detail {

/// One StrikeSimulator per pool worker slot, created lazily on the worker's
/// own thread (the simulator keeps transient-analysis scratch and is not
/// shareable across threads). Each slot lives for the whole per-voltage
/// characterization, so with the default compiled engine every worker
/// compiles its cell circuit exactly once and then rebinds parameters per
/// sample — across the Qcrit bisections, the PV-sample loops and the grid
/// stages alike (see spice/compiled.hpp).
struct SimSlots {
  const CellDesign* design;
  double vdd_v;
  std::vector<std::unique_ptr<StrikeSimulator>> sims;

  SimSlots(const CellDesign& d, double vdd, std::size_t slots)
      : design(&d), vdd_v(vdd), sims(slots) {}

  StrikeSimulator& at(std::size_t worker) {
    std::unique_ptr<StrikeSimulator>& s = sims[worker];
    if (!s) s = std::make_unique<StrikeSimulator>(*design, vdd_v);
    return *s;
  }
};

}  // namespace detail

namespace {

/// Bumped whenever the characterization algorithm's RNG-consumption scheme
/// changes (v2: counter-based per-stage / per-work-item streams); stale disk
/// caches from older schemes then fail fingerprint validation and rebuild.
constexpr std::uint64_t kSchemeVersion = 2;

/// Stream-family ids under one per-voltage seed (stats::Rng::derive_seed).
constexpr std::uint64_t kStreamSingleBase = 1;  // which = 0..2 -> 1..3.
constexpr std::uint64_t kStreamPairBase = 4;    // pair p = 0..2 -> 4..6.
constexpr std::uint64_t kStreamTriple = 7;

/// A parallel stage that stopped early (cancel token fired) holds a
/// partially written table — the only safe continuation is to abandon it.
/// Finished voltages survive in the checkpoint; this one restarts on resume.
void require_complete(bool completed) {
  if (!completed) {
    throw util::Cancelled(
        "characterization cancelled at a chunk boundary; the in-progress "
        "voltage is discarded (finished voltages persist in the checkpoint)");
  }
}

StrikeCharges scale_direction(const StrikeCharges& dir, double s) {
  return StrikeCharges{dir.i1_fc * s, dir.i2_fc * s, dir.i3_fc * s};
}

/// Sentinel for a PV sample whose solve diverged: excluded from the CDF,
/// never guessed as flip or no-flip.
constexpr double kFailedSample = -1.0;

/// Lane-batched bisect_critical_scale for a group of PV samples sharing one
/// strike direction: every lane runs the scalar bisection verbatim — same
/// bracket [0, s_max], same probe-then-halve sequence — so the group stays in
/// lockstep and each lane's result is byte-identical to the scalar call.
/// Lanes finish independently (never-flips at the s_max probe, a diverged
/// solve, or bracket below tol) and are masked off; their slot stays put so
/// the remaining lanes keep their per-slot DC hold caches. Writes qcrit to
/// out[0..dvts.size()), kFailedSample for diverged lanes.
void bisect_critical_scale_batch(StrikeSimulator& sim,
                                 const StrikeCharges& direction,
                                 const std::vector<DeltaVt>& dvts, double s_max,
                                 double tol, spice::PulseShape::Kind kind,
                                 double* out, std::size_t& n_failed) {
  FINSER_REQUIRE(s_max > 0.0 && tol > 0.0,
                 "bisect_critical_scale: bad bracket parameters");
  const std::size_t group = dvts.size();
  std::vector<StrikeCharges> charges(group, scale_direction(direction, s_max));
  std::vector<std::uint8_t> active(group, 1);
  std::vector<StrikeSimulator::LaneOutcome> res(group);
  std::vector<double> lo(group, 0.0);
  std::vector<double> hi(group, s_max);

  sim.simulate_batch(charges, dvts, kind, active, res);
  for (std::size_t g = 0; g < group; ++g) {
    if (res[g].failed) {
      out[g] = kFailedSample;
      ++n_failed;
      active[g] = 0;
    } else if (!res[g].outcome.flipped) {
      out[g] = SingleCdf::kNeverFlips;
      active[g] = 0;
    }
  }
  for (;;) {
    bool any = false;
    for (std::size_t g = 0; g < group; ++g) {
      if (!active[g]) continue;
      if (hi[g] - lo[g] > tol) {
        charges[g] = scale_direction(direction, 0.5 * (lo[g] + hi[g]));
        any = true;
      } else {
        out[g] = hi[g];
        active[g] = 0;
      }
    }
    if (!any) break;
    sim.simulate_batch(charges, dvts, kind, active, res);
    for (std::size_t g = 0; g < group; ++g) {
      if (!active[g]) continue;
      if (res[g].failed) {
        out[g] = kFailedSample;
        ++n_failed;
        active[g] = 0;
        continue;
      }
      const double mid = 0.5 * (lo[g] + hi[g]);
      if (res[g].outcome.flipped) {
        hi[g] = mid;
      } else {
        lo[g] = mid;
      }
    }
  }
}

/// Lockstep integer binary search of the first flipping grid column for a
/// lane group of nominal boundary rows. All lanes share the search range
/// [0, np); a lane whose bracket closes is masked off while the rest finish.
/// Nominal rows are ΔVt-free, so every lane's per-slot DC hold cache hits
/// after its first iteration. Failures propagate (as in the scalar rows): a
/// wrong boundary would misplace the whole MC band.
template <typename MakeCharges>
std::vector<std::size_t> boundary_search_batch(StrikeSimulator& sim,
                                               std::size_t group, std::size_t np,
                                               spice::PulseShape::Kind kind,
                                               MakeCharges&& make_charges) {
  std::vector<std::size_t> lo(group, 0);
  std::vector<std::size_t> hi(group, np);
  std::vector<StrikeCharges> charges(group);
  const std::vector<DeltaVt> dvts(group);  // Nominal: all-zero ΔVt.
  std::vector<std::uint8_t> active(group, 0);
  std::vector<StrikeSimulator::LaneOutcome> res(group);
  for (;;) {
    bool any = false;
    for (std::size_t g = 0; g < group; ++g) {
      active[g] = lo[g] < hi[g] ? 1 : 0;
      if (!active[g]) continue;
      charges[g] = make_charges(g, lo[g] + (hi[g] - lo[g]) / 2);
      any = true;
    }
    if (!any) break;
    sim.simulate_batch(charges, dvts, kind, active, res);
    for (std::size_t g = 0; g < group; ++g) {
      if (!active[g]) continue;
      if (res[g].failed) throw util::NumericalError(res[g].error);
      const std::size_t mid = lo[g] + (hi[g] - lo[g]) / 2;
      if (res[g].outcome.flipped) {
        hi[g] = mid;
      } else {
        lo[g] = mid + 1;
      }
    }
  }
  return lo;
}

/// Advance a lane group of near-boundary MC grid cells through their sample
/// ladders in lockstep: every lane holds one cell at fixed charges and draws
/// its own ΔVt stream, so all lanes take the same number of rounds. A lane
/// whose solve diverges this round just skips the tally (the sample's RNG
/// draws were already consumed, so later samples are unshifted) — it stays
/// active for the next round, exactly like the scalar loop.
template <typename SampleDvt>
void mc_group_batch(StrikeSimulator& sim,
                    const std::vector<StrikeCharges>& charges,
                    std::vector<stats::Rng>& rngs, std::size_t samples,
                    spice::PulseShape::Kind kind, SampleDvt&& sample_dvt,
                    std::vector<std::size_t>& flips, std::vector<std::size_t>& ok,
                    std::atomic<std::size_t>& n_failed) {
  const std::size_t group = charges.size();
  std::vector<DeltaVt> dvts(group);
  const std::vector<std::uint8_t> active(group, 1);
  std::vector<StrikeSimulator::LaneOutcome> res(group);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t g = 0; g < group; ++g) dvts[g] = sample_dvt(rngs[g]);
    sim.simulate_batch(charges, dvts, kind, active, res);
    for (std::size_t g = 0; g < group; ++g) {
      if (res[g].failed) {
        n_failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      ++ok[g];
      if (res[g].outcome.flipped) ++flips[g];
    }
  }
}

StrikeCharges unit_direction(int which) {
  switch (which) {
    case 0: return StrikeCharges{1.0, 0.0, 0.0};
    case 1: return StrikeCharges{0.0, 1.0, 0.0};
    case 2: return StrikeCharges{0.0, 0.0, 1.0};
    default:
      throw util::InvalidArgument("unit_direction: index out of range");
  }
}

/// FNV-1a over raw double bytes.
void hash_doubles(std::uint64_t& h, const double* data, std::size_t count) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < count * sizeof(double); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
}

void hash_value(std::uint64_t& h, double v) { hash_doubles(h, &v, 1); }

}  // namespace

std::uint64_t CharacterizerConfig::fingerprint(const CellDesign& design) const {
  std::uint64_t h = 14695981039346656037ull;
  hash_value(h, static_cast<double>(kSchemeVersion));
  for (double v : vdds) hash_value(h, v);
  hash_value(h, static_cast<double>(pv_samples_single));
  hash_value(h, static_cast<double>(pair_grid_points));
  hash_value(h, static_cast<double>(triple_grid_points));
  hash_value(h, static_cast<double>(pv_samples_grid));
  hash_value(h, q_max_fc);
  hash_value(h, bisect_tol_fc);
  hash_value(h, static_cast<double>(static_cast<int>(pulse_kind)));
  hash_value(h, static_cast<double>(seed));
  // `threads` is intentionally absent: it never changes the model.

  const spice::FinFetModel& n = design.nfet ? *design.nfet : spice::default_nfet();
  const spice::FinFetModel& p = design.pfet ? *design.pfet : spice::default_pfet();
  for (const spice::FinFetModel* m : {&n, &p}) {
    hash_value(h, m->vt0);
    hash_value(h, m->n);
    hash_value(h, m->kp);
    hash_value(h, m->dibl);
    hash_value(h, m->lambda);
  }
  hash_value(h, design.nfin_pd);
  hash_value(h, design.nfin_pg);
  hash_value(h, design.nfin_pu);
  hash_value(h, design.cnode_f);
  hash_value(h, design.sigma_vt);
  hash_value(h, design.temp_k);
  hash_value(h, static_cast<double>(static_cast<int>(design.topology)));
  hash_value(h, design.tech.w_fin_nm);
  hash_value(h, design.tech.l_fin_nm);
  hash_value(h, design.tech.h_fin_nm);
  hash_value(h, design.tech.electron_mobility_cm2_vs);
  return h;
}

double bisect_critical_scale(StrikeSimulator& sim, const StrikeCharges& direction,
                             const DeltaVt& delta_vt, double s_max, double tol,
                             spice::PulseShape::Kind kind) {
  FINSER_REQUIRE(s_max > 0.0 && tol > 0.0,
                 "bisect_critical_scale: bad bracket parameters");
  if (!sim.simulate(scale_direction(direction, s_max), delta_vt, kind).flipped) {
    return SingleCdf::kNeverFlips;
  }
  double lo = 0.0;
  double hi = s_max;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (sim.simulate(scale_direction(direction, mid), delta_vt, kind).flipped) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

CellCharacterizer::CellCharacterizer(const CellDesign& design,
                                     const CharacterizerConfig& config)
    : design_(design), config_(config) {
  FINSER_REQUIRE(!config_.vdds.empty(), "CellCharacterizer: no supply voltages");
  FINSER_REQUIRE(config_.pair_grid_points >= 2 && config_.triple_grid_points >= 2,
                 "CellCharacterizer: grids need >= 2 points per axis");
  FINSER_REQUIRE(config_.q_max_fc > 0.0, "CellCharacterizer: q_max must be positive");
}

DeltaVt CellCharacterizer::sample_delta_vt(stats::Rng& rng) const {
  DeltaVt dvt{};
  for (double& v : dvt) v = rng.normal(0.0, design_.sigma_vt);
  return dvt;
}

SingleCdf CellCharacterizer::characterize_single(
    exec::ThreadPool& pool, detail::SimSlots& sims, int which,
    std::uint64_t seed, const exec::CancelToken* cancel,
    std::size_t& attempted, std::size_t& failed) const {
  const StrikeCharges dir = unit_direction(which);
  SingleCdf cdf;
  // The nominal bisection anchors the whole table (axis placement, binary
  // POF); if *it* cannot converge, the voltage is unrecoverable — propagate.
  cdf.nominal_qcrit_fc = bisect_critical_scale(
      sims.at(0), dir, DeltaVt{}, config_.q_max_fc, config_.bisect_tol_fc,
      config_.pulse_kind);

  // PV samples are independent: sample k always draws from stream k of this
  // stage's seed, so the result is the same for any thread count, lane width
  // or batch boundary. A sample whose solve diverges is marked with a
  // negative sentinel and excluded from the CDF — never guessed as flip or
  // no-flip. With lane_width() > 1 the samples advance in SIMD lockstep lane
  // groups (chunk = lane width, a few dozen SPICE transients per chunk);
  // lane width 1 keeps the historical chunk = 1 scalar loop.
  const std::size_t lanes = spice::lane_width();
  std::vector<double> qcrit(config_.pv_samples_single);
  std::atomic<std::size_t> n_failed{0};
  if (lanes <= 1) {
    require_complete(pool.parallel_for_chunks(
        config_.pv_samples_single, 1,
        [&](const exec::ChunkRange& r) {
          StrikeSimulator& sim = sims.at(r.worker);
          for (std::size_t k = r.begin; k < r.end; ++k) {
            stats::Rng rng = stats::Rng::stream(seed, k);
            const DeltaVt dvt = sample_delta_vt(rng);
            try {
              qcrit[k] = bisect_critical_scale(sim, dir, dvt, config_.q_max_fc,
                                               config_.bisect_tol_fc,
                                               config_.pulse_kind);
            } catch (const util::NumericalError&) {
              qcrit[k] = kFailedSample;
              n_failed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        },
        cancel));
  } else {
    require_complete(pool.parallel_for_chunks(
        config_.pv_samples_single, lanes,
        [&](const exec::ChunkRange& r) {
          StrikeSimulator& sim = sims.at(r.worker);
          const std::size_t group = r.end - r.begin;
          std::vector<DeltaVt> dvts(group);
          for (std::size_t g = 0; g < group; ++g) {
            stats::Rng rng = stats::Rng::stream(seed, r.begin + g);
            dvts[g] = sample_delta_vt(rng);
          }
          std::size_t nf = 0;
          bisect_critical_scale_batch(sim, dir, dvts, config_.q_max_fc,
                                      config_.bisect_tol_fc, config_.pulse_kind,
                                      qcrit.data() + r.begin, nf);
          if (nf > 0) n_failed.fetch_add(nf, std::memory_order_relaxed);
        },
        cancel));
  }
  cdf.failed_samples = n_failed.load();
  cdf.total_samples = config_.pv_samples_single - cdf.failed_samples;
  attempted += config_.pv_samples_single;
  failed += cdf.failed_samples;
  cdf.qcrit_samples_fc.reserve(cdf.total_samples);
  for (double q : qcrit) {
    if (q >= 0.0 && q < SingleCdf::kNeverFlips) cdf.qcrit_samples_fc.push_back(q);
  }
  std::sort(cdf.qcrit_samples_fc.begin(), cdf.qcrit_samples_fc.end());
  return cdf;
}

namespace {

/// Charges for a pair combo (a, b) at grid charges (qa, qb).
StrikeCharges pair_charges(int a, int b, double qa, double qb) {
  StrikeCharges c;
  double* slots[3] = {&c.i1_fc, &c.i2_fc, &c.i3_fc};
  *slots[a] = qa;
  *slots[b] = qb;
  return c;
}

/// Smallest spacing of an axis (controls the MC dilation radius).
double min_spacing(const util::Axis& axis) {
  double dq = axis.back() - axis.front();
  for (std::size_t i = 1; i < axis.size(); ++i) {
    dq = std::min(dq, axis[i] - axis[i - 1]);
  }
  return dq;
}

}  // namespace

util::Axis make_charge_axis(double qc_lo_fc, double qc_hi_fc, std::size_t points,
                            double q_max_fc) {
  FINSER_REQUIRE(points >= 6, "make_charge_axis: need >= 6 points");
  FINSER_REQUIRE(q_max_fc > 0.0, "make_charge_axis: q_max must be positive");
  // Fall back to a mid-range dense band when the cell never flipped.
  if (!(qc_lo_fc > 0.0) || qc_lo_fc >= q_max_fc) {
    qc_lo_fc = 0.25 * q_max_fc;
    qc_hi_fc = 0.5 * q_max_fc;
  }
  qc_hi_fc = std::min(std::max(qc_hi_fc, qc_lo_fc), q_max_fc);

  double dense_lo = std::max(0.4 * qc_lo_fc, 1e-4 * q_max_fc);
  double dense_hi = std::min(1.7 * qc_hi_fc, 0.95 * q_max_fc);
  if (dense_hi <= dense_lo) dense_hi = std::min(2.0 * dense_lo, 0.95 * q_max_fc);

  const std::size_t n_dense = points - 2;  // All but {0} and {q_max}.
  std::vector<double> pts;
  pts.reserve(points);
  pts.push_back(0.0);
  for (std::size_t i = 0; i < n_dense; ++i) {
    pts.push_back(dense_lo + (dense_hi - dense_lo) * static_cast<double>(i) /
                                 static_cast<double>(n_dense - 1));
  }
  pts.push_back(q_max_fc);
  // Guard monotonicity against degenerate parameter combinations.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i] <= pts[i - 1]) pts[i] = pts[i - 1] + 1e-6 * q_max_fc;
  }
  return util::Axis(std::move(pts));
}

void CellCharacterizer::characterize_pair(
    exec::ThreadPool& pool, detail::SimSlots& sims, int a, int b,
    const util::Axis& axis, double sigma_q_fc, std::uint64_t seed,
    util::Grid2& pv, util::Grid2& nominal, const exec::CancelToken* cancel,
    std::size_t& attempted, std::size_t& failed) const {
  const std::size_t np = axis.size();
  const double dq = min_spacing(axis);
  const auto radius =
      static_cast<std::ptrdiff_t>(std::ceil(4.0 * sigma_q_fc / dq)) + 1;

  // Nominal boundary per row by binary search (flip region is monotone).
  // Rows are independent and RNG-free — parallel rows, lane-grouped when the
  // batched engine is on. Failures propagate: a wrong boundary would
  // misplace the whole MC band.
  const std::size_t lanes = spice::lane_width();
  std::vector<std::size_t> boundary(np, np);  // First flipping column, np = none.
  if (lanes <= 1) {
    require_complete(pool.parallel_for_chunks(
        np, 1,
        [&](const exec::ChunkRange& r) {
      StrikeSimulator& sim = sims.at(r.worker);
      for (std::size_t i = r.begin; i < r.end; ++i) {
        std::size_t lo = 0, hi = np;  // Search smallest j with flip in [lo, hi).
        while (lo < hi) {
          const std::size_t mid = lo + (hi - lo) / 2;
          const bool flips = sim.simulate(pair_charges(a, b, axis[i], axis[mid]),
                                          DeltaVt{}, config_.pulse_kind)
                                 .flipped;
          if (flips) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        boundary[i] = lo;
      }
        },
        cancel));
  } else {
    require_complete(pool.parallel_for_chunks(
        np, lanes,
        [&](const exec::ChunkRange& r) {
          StrikeSimulator& sim = sims.at(r.worker);
          const std::vector<std::size_t> first_flip = boundary_search_batch(
              sim, r.end - r.begin, np, config_.pulse_kind,
              [&](std::size_t g, std::size_t mid) {
                return pair_charges(a, b, axis[r.begin + g], axis[mid]);
              });
          std::copy(first_flip.begin(), first_flip.end(),
                    boundary.begin() + static_cast<std::ptrdiff_t>(r.begin));
        },
        cancel));
  }

  std::vector<double> nom_values(np * np);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = 0; j < np; ++j) {
      nom_values[i * np + j] = j >= boundary[i] ? 1.0 : 0.0;
    }
  }

  // PV values: Monte Carlo only within `radius` (Chebyshev) of the boundary.
  // Collect the near-boundary cells first, then run them in parallel; each
  // cell draws from the stream keyed by its linear grid index, so the result
  // does not depend on how many cells made the list.
  std::vector<double> pv_values = nom_values;
  std::vector<std::size_t> mc_cells;
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = 0; j < np; ++j) {
      bool near_boundary = false;
      const auto si = static_cast<std::ptrdiff_t>(i);
      const auto sj = static_cast<std::ptrdiff_t>(j);
      for (std::ptrdiff_t di = -radius; di <= radius && !near_boundary; ++di) {
        for (std::ptrdiff_t dj = -radius; dj <= radius && !near_boundary; ++dj) {
          const std::ptrdiff_t ni = si + di;
          const std::ptrdiff_t nj = sj + dj;
          if (ni < 0 || nj < 0 || ni >= static_cast<std::ptrdiff_t>(np) ||
              nj >= static_cast<std::ptrdiff_t>(np)) {
            continue;
          }
          if (nom_values[static_cast<std::size_t>(ni) * np +
                         static_cast<std::size_t>(nj)] != nom_values[i * np + j]) {
            near_boundary = true;
          }
        }
      }
      if (near_boundary) mc_cells.push_back(i * np + j);
    }
  }
  std::atomic<std::size_t> n_failed{0};
  if (lanes <= 1) {
    require_complete(pool.parallel_for_chunks(
        mc_cells.size(), 1,
        [&](const exec::ChunkRange& r) {
      StrikeSimulator& sim = sims.at(r.worker);
      for (std::size_t c = r.begin; c < r.end; ++c) {
        const std::size_t cell = mc_cells[c];
        const std::size_t i = cell / np;
        const std::size_t j = cell % np;
        stats::Rng rng = stats::Rng::stream(seed, cell);
        std::size_t flips = 0;
        std::size_t ok = 0;
        for (std::size_t k = 0; k < config_.pv_samples_grid; ++k) {
          // Draw the PV sample before the solve: a failed sample consumes the
          // same RNG stream, so later samples are unshifted.
          const DeltaVt dvt = sample_delta_vt(rng);
          try {
            if (sim.simulate(pair_charges(a, b, axis[i], axis[j]), dvt,
                             config_.pulse_kind)
                    .flipped) {
              ++flips;
            }
            ++ok;
          } catch (const util::NumericalError&) {
            n_failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Failures shrink the denominator; if every sample failed, fall back
        // to the nominal value rather than invent a probability.
        pv_values[cell] = ok > 0 ? static_cast<double>(flips) /
                                       static_cast<double>(ok)
                                 : nom_values[cell];
      }
        },
        cancel));
  } else {
    require_complete(pool.parallel_for_chunks(
        mc_cells.size(), lanes,
        [&](const exec::ChunkRange& r) {
          StrikeSimulator& sim = sims.at(r.worker);
          const std::size_t group = r.end - r.begin;
          std::vector<StrikeCharges> charges(group);
          std::vector<stats::Rng> rngs;
          rngs.reserve(group);
          for (std::size_t g = 0; g < group; ++g) {
            const std::size_t cell = mc_cells[r.begin + g];
            charges[g] = pair_charges(a, b, axis[cell / np], axis[cell % np]);
            rngs.push_back(stats::Rng::stream(seed, cell));
          }
          std::vector<std::size_t> flips(group, 0);
          std::vector<std::size_t> ok(group, 0);
          mc_group_batch(
              sim, charges, rngs, config_.pv_samples_grid, config_.pulse_kind,
              [this](stats::Rng& rng) { return sample_delta_vt(rng); }, flips,
              ok, n_failed);
          for (std::size_t g = 0; g < group; ++g) {
            const std::size_t cell = mc_cells[r.begin + g];
            // Failures shrink the denominator; if every sample failed, fall
            // back to the nominal value rather than invent a probability.
            pv_values[cell] = ok[g] > 0 ? static_cast<double>(flips[g]) /
                                              static_cast<double>(ok[g])
                                        : nom_values[cell];
          }
        },
        cancel));
  }
  attempted += mc_cells.size() * config_.pv_samples_grid;
  failed += n_failed.load();

  nominal = util::Grid2(axis, axis, std::move(nom_values));
  pv = util::Grid2(axis, axis, std::move(pv_values));
}

void CellCharacterizer::characterize_triple(
    exec::ThreadPool& pool, detail::SimSlots& sims, const util::Axis& axis,
    double sigma_q_fc, std::uint64_t seed, util::Grid3& pv,
    util::Grid3& nominal, const exec::CancelToken* cancel,
    std::size_t& attempted, std::size_t& failed) const {
  const std::size_t np = axis.size();
  const double dq = min_spacing(axis);
  const auto radius =
      static_cast<std::ptrdiff_t>(std::ceil(4.0 * sigma_q_fc / dq)) + 1;

  const auto idx = [np](std::size_t i, std::size_t j, std::size_t k) {
    return (i * np + j) * np + k;
  };

  // Nominal: binary search the first flipping k for each (i, j) — RNG-free,
  // one parallel item per (i, j) column, lane-grouped when the batched
  // engine is on.
  const std::size_t lanes = spice::lane_width();
  std::vector<double> nom_values(np * np * np);
  if (lanes <= 1) {
    require_complete(pool.parallel_for_chunks(
        np * np, 1,
        [&](const exec::ChunkRange& r) {
      StrikeSimulator& sim = sims.at(r.worker);
      for (std::size_t ij = r.begin; ij < r.end; ++ij) {
        const std::size_t i = ij / np;
        const std::size_t j = ij % np;
        std::size_t lo = 0, hi = np;
        while (lo < hi) {
          const std::size_t mid = lo + (hi - lo) / 2;
          const bool flips =
              sim.simulate(StrikeCharges{axis[i], axis[j], axis[mid]}, DeltaVt{},
                           config_.pulse_kind)
                  .flipped;
          if (flips) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        for (std::size_t k = 0; k < np; ++k) {
          nom_values[idx(i, j, k)] = k >= lo ? 1.0 : 0.0;
        }
      }
        },
        cancel));
  } else {
    require_complete(pool.parallel_for_chunks(
        np * np, lanes,
        [&](const exec::ChunkRange& r) {
          StrikeSimulator& sim = sims.at(r.worker);
          const std::vector<std::size_t> first_flip = boundary_search_batch(
              sim, r.end - r.begin, np, config_.pulse_kind,
              [&](std::size_t g, std::size_t mid) {
                const std::size_t ij = r.begin + g;
                return StrikeCharges{axis[ij / np], axis[ij % np], axis[mid]};
              });
          for (std::size_t g = 0; g < r.end - r.begin; ++g) {
            const std::size_t ij = r.begin + g;
            for (std::size_t k = 0; k < np; ++k) {
              nom_values[idx(ij / np, ij % np, k)] =
                  k >= first_flip[g] ? 1.0 : 0.0;
            }
          }
        },
        cancel));
  }

  std::vector<double> pv_values = nom_values;
  std::vector<std::size_t> mc_cells;
  const auto snp = static_cast<std::ptrdiff_t>(np);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = 0; j < np; ++j) {
      for (std::size_t k = 0; k < np; ++k) {
        bool near_boundary = false;
        for (std::ptrdiff_t di = -radius; di <= radius && !near_boundary; ++di) {
          for (std::ptrdiff_t dj = -radius; dj <= radius && !near_boundary; ++dj) {
            for (std::ptrdiff_t dk = -radius; dk <= radius && !near_boundary;
                 ++dk) {
              const std::ptrdiff_t ni = static_cast<std::ptrdiff_t>(i) + di;
              const std::ptrdiff_t nj = static_cast<std::ptrdiff_t>(j) + dj;
              const std::ptrdiff_t nk = static_cast<std::ptrdiff_t>(k) + dk;
              if (ni < 0 || nj < 0 || nk < 0 || ni >= snp || nj >= snp ||
                  nk >= snp) {
                continue;
              }
              if (nom_values[idx(static_cast<std::size_t>(ni),
                                 static_cast<std::size_t>(nj),
                                 static_cast<std::size_t>(nk))] !=
                  nom_values[idx(i, j, k)]) {
                near_boundary = true;
              }
            }
          }
        }
        if (near_boundary) mc_cells.push_back(idx(i, j, k));
      }
    }
  }
  std::atomic<std::size_t> n_failed{0};
  if (lanes <= 1) {
    require_complete(pool.parallel_for_chunks(
        mc_cells.size(), 1,
        [&](const exec::ChunkRange& r) {
      StrikeSimulator& sim = sims.at(r.worker);
      for (std::size_t c = r.begin; c < r.end; ++c) {
        const std::size_t cell = mc_cells[c];
        const std::size_t k = cell % np;
        const std::size_t j = (cell / np) % np;
        const std::size_t i = cell / (np * np);
        stats::Rng rng = stats::Rng::stream(seed, cell);
        std::size_t flips = 0;
        std::size_t ok = 0;
        for (std::size_t s = 0; s < config_.pv_samples_grid; ++s) {
          const DeltaVt dvt = sample_delta_vt(rng);  // Drawn even if the solve fails.
          try {
            if (sim.simulate(StrikeCharges{axis[i], axis[j], axis[k]}, dvt,
                             config_.pulse_kind)
                    .flipped) {
              ++flips;
            }
            ++ok;
          } catch (const util::NumericalError&) {
            n_failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        pv_values[cell] = ok > 0 ? static_cast<double>(flips) /
                                       static_cast<double>(ok)
                                 : nom_values[cell];
      }
        },
        cancel));
  } else {
    require_complete(pool.parallel_for_chunks(
        mc_cells.size(), lanes,
        [&](const exec::ChunkRange& r) {
          StrikeSimulator& sim = sims.at(r.worker);
          const std::size_t group = r.end - r.begin;
          std::vector<StrikeCharges> charges(group);
          std::vector<stats::Rng> rngs;
          rngs.reserve(group);
          for (std::size_t g = 0; g < group; ++g) {
            const std::size_t cell = mc_cells[r.begin + g];
            charges[g] = StrikeCharges{axis[cell / (np * np)],
                                       axis[(cell / np) % np], axis[cell % np]};
            rngs.push_back(stats::Rng::stream(seed, cell));
          }
          std::vector<std::size_t> flips(group, 0);
          std::vector<std::size_t> ok(group, 0);
          mc_group_batch(
              sim, charges, rngs, config_.pv_samples_grid, config_.pulse_kind,
              [this](stats::Rng& rng) { return sample_delta_vt(rng); }, flips,
              ok, n_failed);
          for (std::size_t g = 0; g < group; ++g) {
            const std::size_t cell = mc_cells[r.begin + g];
            pv_values[cell] = ok[g] > 0 ? static_cast<double>(flips[g]) /
                                              static_cast<double>(ok[g])
                                        : nom_values[cell];
          }
        },
        cancel));
  }
  attempted += mc_cells.size() * config_.pv_samples_grid;
  failed += n_failed.load();

  nominal = util::Grid3(axis, axis, axis, std::move(nom_values));
  pv = util::Grid3(axis, axis, axis, std::move(pv_values));
}

PofTable CellCharacterizer::characterize_at(double vdd_v, std::uint64_t seed,
                                            const exec::ProgressSink& progress,
                                            const exec::CancelToken* cancel) const {
  obs::ScopedSpan span("sram.characterize_voltage",
                       "sram.characterize_voltage vdd=" +
                           std::to_string(vdd_v) + "V");
  exec::ThreadPool pool(config_.threads);
  detail::SimSlots sims(design_, vdd_v, pool.thread_count());

  PofTable table;
  table.vdd_v = vdd_v;
  table.q_max_fc = config_.q_max_fc;

  for (int which = 0; which < 3; ++which) {
    table.singles[static_cast<std::size_t>(which)] = characterize_single(
        pool, sims, which,
        stats::Rng::derive_seed(seed,
                                kStreamSingleBase + static_cast<std::uint64_t>(which)),
        cancel, table.attempted_samples, table.failed_samples);
    if (progress) {
      std::ostringstream os;
      const auto& s = table.singles[static_cast<std::size_t>(which)];
      os << "vdd=" << vdd_v << " I" << which + 1
         << ": qcrit_nom=" << s.nominal_qcrit_fc
         << " fC, qcrit_mean=" << s.mean_qcrit_fc()
         << " fC, sigma=" << s.stddev_qcrit_fc() << " fC";
      progress.message(os.str());
    }
  }

  // Smearing radius estimate for the grid MC placement.
  double sigma_q = 0.0;
  for (const auto& s : table.singles) sigma_q = std::max(sigma_q, s.stddev_qcrit_fc());
  if (sigma_q <= 0.0) sigma_q = 0.02 * config_.q_max_fc;

  // Charge axes densified around the cell's critical-charge band.
  double qc_lo = SingleCdf::kNeverFlips;
  double qc_hi = 0.0;
  for (const auto& s : table.singles) {
    if (s.nominal_qcrit_fc < SingleCdf::kNeverFlips) {
      qc_lo = std::min(qc_lo, s.nominal_qcrit_fc);
      qc_hi = std::max(qc_hi, s.nominal_qcrit_fc);
    }
  }
  if (qc_hi == 0.0) qc_lo = 0.0;  // No flips observed: axis falls back.
  const util::Axis pair_axis = make_charge_axis(
      qc_lo, qc_hi, config_.pair_grid_points, config_.q_max_fc);
  const util::Axis triple_axis = make_charge_axis(
      qc_lo, qc_hi, config_.triple_grid_points, config_.q_max_fc);

  const int pair_ids[3][2] = {{0, 1}, {0, 2}, {1, 2}};
  for (int p = 0; p < 3; ++p) {
    characterize_pair(
        pool, sims, pair_ids[p][0], pair_ids[p][1], pair_axis, sigma_q,
        stats::Rng::derive_seed(seed,
                                kStreamPairBase + static_cast<std::uint64_t>(p)),
        table.pairs_pv[static_cast<std::size_t>(p)],
        table.pairs_nominal[static_cast<std::size_t>(p)], cancel,
        table.attempted_samples, table.failed_samples);
  }
  if (progress) progress.message("vdd=" + std::to_string(vdd_v) + ": pair grids done");

  characterize_triple(pool, sims, triple_axis, sigma_q,
                      stats::Rng::derive_seed(seed, kStreamTriple),
                      table.triple_pv, table.triple_nominal, cancel,
                      table.attempted_samples, table.failed_samples);
  if (progress) progress.message("vdd=" + std::to_string(vdd_v) + ": triple grid done");

  if (table.failed_samples > 0) {
    const double frac = static_cast<double>(table.failed_samples) /
                        static_cast<double>(table.attempted_samples);
    if (progress) {
      std::ostringstream os;
      os << "vdd=" << vdd_v << ": " << table.failed_samples << "/"
         << table.attempted_samples
         << " strike samples failed numerically (excluded from the LUTs)";
      progress.message(os.str());
    }
    if (frac > config_.max_failure_fraction) {
      std::ostringstream os;
      os << "characterize_at(vdd=" << vdd_v << "): failure fraction " << frac
         << " exceeds max_failure_fraction " << config_.max_failure_fraction
         << " (" << table.failed_samples << "/" << table.attempted_samples
         << " samples) — the solver is too sick for the model to be trusted";
      throw util::NumericalError(os.str());
    }
  }
  FINSER_OBS_COUNT("sram.strike_samples", table.attempted_samples);
  FINSER_OBS_COUNT("sram.strike_sample_failures", table.failed_samples);
  return table;
}

CellSoftErrorModel CellCharacterizer::characterize(
    const exec::ProgressSink& progress, const ckpt::RunOptions& run) const {
  CellSoftErrorModel model;
  model.config_fingerprint = config_.fingerprint(design_);
  std::vector<double> vdds = config_.vdds;
  std::sort(vdds.begin(), vdds.end());

  if (!run.active()) {
    for (std::size_t v = 0; v < vdds.size(); ++v) {
      model.tables.push_back(characterize_at(
          vdds[v], stats::Rng::derive_seed(config_.seed, v), progress));
    }
    return model;
  }

  // Checkpointable campaign: the unit of work is one (sorted) supply
  // voltage; its blob is the serialized PofTable. The outer pool is serial —
  // characterize_at parallelizes internally — so run_units only sequences
  // the voltages, skips restored ones, and flushes after finished ones.
  exec::ThreadPool outer(1);
  const ckpt::UnitRunResult units = ckpt::run_units(
      outer, vdds.size(), model.config_fingerprint, run,
      [&](const exec::ChunkRange& u) {
        const PofTable t = characterize_at(
            vdds[u.index], stats::Rng::derive_seed(config_.seed, u.index),
            progress, run.cancel);
        util::ByteWriter w;
        t.write(w);
        return w.take();
      });
  if (progress && units.reused > 0) {
    progress.message("characterize: resumed, " + std::to_string(units.reused) +
                     "/" + std::to_string(vdds.size()) +
                     " voltage(s) restored from checkpoint");
  }
  for (const std::vector<std::uint8_t>& blob : units.blobs) {
    util::ByteReader r(blob);
    model.tables.push_back(PofTable::read(r));
    FINSER_REQUIRE(r.exhausted(),
                   "characterize: trailing bytes in checkpointed PofTable");
  }
  return model;
}

}  // namespace finser::sram
