#include "finser/sram/snm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "finser/spice/compiled.hpp"
#include "finser/spice/dc.hpp"
#include "finser/util/error.hpp"

namespace finser::sram {

namespace {

using spice::kGround;

/// Sweep the VTC of one half-cell: input voltage → output voltage, with the
/// output loaded by its pass gate (bitline at the precharge level, wordline
/// per access mode). \p pd/pu/pg index into delta_vt by Role.
std::vector<double> sweep_vtc(const CellDesign& design, double vdd_v,
                              AccessMode mode, const DeltaVt& delta_vt, Role pd,
                              Role pu, Role pg, std::size_t samples) {
  const spice::FinFetModel& nfet = design.nfet ? *design.nfet
                                               : spice::default_nfet();
  const spice::FinFetModel& pfet = design.pfet ? *design.pfet
                                               : spice::default_pfet();

  spice::Circuit c;
  const auto n_in = c.node("in");
  const auto n_out = c.node("out");
  const auto n_vdd = c.node("vdd");
  const auto n_bl = c.node("bl");
  const auto n_wl = c.node("wl");
  c.add<spice::VSource>(c, n_vdd, kGround, vdd_v);
  c.add<spice::VSource>(c, n_bl, kGround, vdd_v);
  c.add<spice::VSource>(c, n_wl, kGround,
                        mode == AccessMode::kRead ? vdd_v : 0.0);
  auto& vin = c.add<spice::VSource>(c, n_in, kGround, 0.0);

  auto& m_pd = c.add<spice::Mosfet>(n_out, n_in, kGround, nfet, design.nfin_pd);
  auto& m_pu = c.add<spice::Mosfet>(n_out, n_in, n_vdd, pfet, design.nfin_pu);
  auto& m_pg = c.add<spice::Mosfet>(n_bl, n_wl, n_out, nfet, design.nfin_pg);
  m_pd.set_delta_vt(delta_vt[static_cast<std::size_t>(pd)]);
  m_pu.set_delta_vt(delta_vt[static_cast<std::size_t>(pu)]);
  m_pg.set_delta_vt(delta_vt[static_cast<std::size_t>(pg)]);
  m_pd.set_temperature(design.temp_k);
  m_pu.set_temperature(design.temp_k);
  m_pg.set_temperature(design.temp_k);

  // Compile once for the whole sweep; each sample point is a one-parameter
  // rebind (vin) against the same workspace, with the previous solution as
  // the continuation guess.
  spice::CompiledCircuit cc(c);
  spice::SolveWorkspace ws;
  std::vector<double> vtc(samples);
  std::vector<double> x;
  for (std::size_t i = 0; i < samples; ++i) {
    const double v = vdd_v * static_cast<double>(i) /
                     static_cast<double>(samples - 1);
    vin.set_voltage(v);
    cc.rebind();
    x = spice::solve_dc(cc, ws, x);  // Continuation from the previous point.
    vtc[i] = x[n_out];
  }
  return vtc;
}

/// Linear interpolation of a sampled VTC at input voltage \p v.
double vtc_at(const std::vector<double>& vtc, double vdd_v, double v) {
  const double t = std::clamp(v / vdd_v, 0.0, 1.0) *
                   static_cast<double>(vtc.size() - 1);
  const std::size_t i =
      std::min(static_cast<std::size_t>(t), vtc.size() - 2);
  const double f = t - static_cast<double>(i);
  return vtc[i] + f * (vtc[i + 1] - vtc[i]);
}

/// Inverse of a monotone-decreasing sampled VTC: input producing output \p w.
double vtc_inverse(const std::vector<double>& vtc, double vdd_v, double w) {
  if (w >= vtc.front()) return 0.0;
  if (w <= vtc.back()) return vdd_v;
  std::size_t lo = 0, hi = vtc.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (vtc[mid] > w) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double dv = vdd_v / static_cast<double>(vtc.size() - 1);
  const double span = vtc[lo] - vtc[hi];
  const double f = span > 0.0 ? (vtc[lo] - w) / span : 0.5;
  return (static_cast<double>(lo) + f) * dv;
}

/// Largest square inside the lobe bounded left by F2^{-1}(w) and right by
/// F1(w): find max s with  F2^{-1}(w0) + s ≤ F1(w0 + s)  over w0.
double lobe_square(const std::vector<double>& vtc1, const std::vector<double>& vtc2,
                   double vdd_v) {
  double best = 0.0;
  const std::size_t n = 161;
  for (std::size_t i = 0; i < n; ++i) {
    const double w0 = vdd_v * static_cast<double>(i) / static_cast<double>(n - 1);
    const double left = vtc_inverse(vtc2, vdd_v, w0);
    // g(s) = F1(w0 + s) − left − s is decreasing in s: bisect its root.
    double lo = 0.0, hi = vdd_v;
    if (vtc_at(vtc1, vdd_v, w0) - left <= 0.0) continue;  // No room at all.
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      const double g = vtc_at(vtc1, vdd_v, w0 + mid) - left - mid;
      if (g >= 0.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    best = std::max(best, lo);
  }
  return best;
}

}  // namespace

SnmResult static_noise_margin(const CellDesign& design, double vdd_v,
                              AccessMode mode, const DeltaVt& delta_vt,
                              std::size_t samples) {
  FINSER_REQUIRE(vdd_v > 0.0, "static_noise_margin: Vdd must be positive");
  FINSER_REQUIRE(samples >= 16, "static_noise_margin: need >= 16 VTC samples");

  // Inverter L (drives Q, input QB) and inverter R (drives QB, input Q),
  // each loaded by its own pass gate.
  const auto vtc_l = sweep_vtc(design, vdd_v, mode, delta_vt, Role::kPdL,
                               Role::kPuL, Role::kPgL, samples);
  const auto vtc_r = sweep_vtc(design, vdd_v, mode, delta_vt, Role::kPdR,
                               Role::kPuR, Role::kPgR, samples);

  SnmResult out;
  // Lower-right lobe: V(Q) high / V(QB) low; bounded right by VTC_L and
  // left by VTC_R^{-1}. The upper-left lobe is the transposed problem.
  out.lobe_low_v = lobe_square(vtc_l, vtc_r, vdd_v);
  out.lobe_high_v = lobe_square(vtc_r, vtc_l, vdd_v);
  out.snm_v = std::min(out.lobe_low_v, out.lobe_high_v);
  return out;
}

}  // namespace finser::sram
