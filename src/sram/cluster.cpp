#include "finser/sram/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "finser/obs/obs.hpp"
#include "finser/spice/dc.hpp"
#include "finser/stats/rng.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fingerprint.hpp"
#include "finser/util/units.hpp"

namespace finser::sram {

using spice::kGround;
using spice::Mosfet;
using spice::PulseISource;
using spice::PulseShape;

std::size_t cluster_rows(ClusterMode mode) {
  switch (mode) {
    case ClusterMode::k2x2:
      return 2;
    case ClusterMode::k1x1:
    case ClusterMode::k1x4:
      return 1;
  }
  return 1;
}

std::size_t cluster_cols(ClusterMode mode) {
  switch (mode) {
    case ClusterMode::k2x2:
      return 2;
    case ClusterMode::k1x4:
      return 4;
    case ClusterMode::k1x1:
      return 1;
  }
  return 1;
}

const char* cluster_mode_name(ClusterMode mode) {
  switch (mode) {
    case ClusterMode::k2x2:
      return "2x2";
    case ClusterMode::k1x4:
      return "1x4";
    case ClusterMode::k1x1:
      return "1x1";
  }
  return "1x1";
}

std::optional<ClusterMode> cluster_mode_from(const std::string& name) {
  if (name == "1x1") return ClusterMode::k1x1;
  if (name == "2x2") return ClusterMode::k2x2;
  if (name == "1x4") return ClusterMode::k1x4;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// ClusterSimulator
// ---------------------------------------------------------------------------

ClusterSimulator::ClusterSimulator(const CellDesign& design, double vdd_v,
                                   std::size_t tile_rows, std::size_t tile_cols)
    : design_(design),
      vdd_v_(vdd_v),
      tile_rows_(tile_rows),
      tile_cols_(tile_cols) {
  FINSER_REQUIRE(vdd_v > 0.0, "ClusterSimulator: Vdd must be positive");
  FINSER_REQUIRE(tile_rows >= 1 && tile_cols >= 1 && tile_rows * tile_cols >= 1,
                 "ClusterSimulator: tile must contain at least one cell");
  if (design_.nfet == nullptr) design_.nfet = &spice::default_nfet();
  if (design_.pfet == nullptr) design_.pfet = &spice::default_pfet();

  tau_s_ = util::fs_to_s(phys::transit_time_fs(design_.tech, vdd_v_));

  const std::size_t cells = cell_count();

  // Shared rails: one supply and one (low — retention only) wordline for the
  // whole tile, one precharged bitline pair per tile column. The bitlines
  // are the electrical coupling path between vertically adjacent cells: both
  // cells' pass gates hang off the same bl/blb nodes, exactly as in a
  // physical column.
  n_vdd_ = circuit_.node("vdd");
  n_wl_ = circuit_.node("wl");
  circuit_.add<spice::VSource>(circuit_, n_vdd_, kGround, vdd_v_);
  circuit_.add<spice::VSource>(circuit_, n_wl_, kGround, 0.0);
  n_bl_.resize(tile_cols_);
  n_blb_.resize(tile_cols_);
  for (std::size_t c = 0; c < tile_cols_; ++c) {
    n_bl_[c] = circuit_.node("bl" + std::to_string(c));
    n_blb_[c] = circuit_.node("blb" + std::to_string(c));
    circuit_.add<spice::VSource>(circuit_, n_bl_[c], kGround, vdd_v_);
    circuit_.add<spice::VSource>(circuit_, n_blb_[c], kGround, vdd_v_);
  }

  // Per-cell 6T core, every cell in the canonical Q=1/QB=0 frame — the
  // strike folding (strike_index) already canonicalized each cell's charge
  // triple against its stored bit, so the tile netlist never needs to know
  // the data pattern (see docs/charge_sharing.md for the approximation this
  // buys and costs).
  n_q_.resize(cells);
  n_qb_.resize(cells);
  fets_.resize(cells);
  srcs_.resize(cells);
  const PulseShape zero{};
  for (std::size_t i = 0; i < cells; ++i) {
    const std::size_t col = i % tile_cols_;
    n_q_[i] = circuit_.node("q" + std::to_string(i));
    n_qb_[i] = circuit_.node("qb" + std::to_string(i));

    // Cross-coupled inverters (same construction order as StrikeSimulator).
    fets_[i][static_cast<std::size_t>(Role::kPdL)] = &circuit_.add<Mosfet>(
        n_q_[i], n_qb_[i], kGround, *design_.nfet, design_.nfin_pd);
    fets_[i][static_cast<std::size_t>(Role::kPuL)] = &circuit_.add<Mosfet>(
        n_q_[i], n_qb_[i], n_vdd_, *design_.pfet, design_.nfin_pu);
    fets_[i][static_cast<std::size_t>(Role::kPdR)] = &circuit_.add<Mosfet>(
        n_qb_[i], n_q_[i], kGround, *design_.nfet, design_.nfin_pd);
    fets_[i][static_cast<std::size_t>(Role::kPuR)] = &circuit_.add<Mosfet>(
        n_qb_[i], n_q_[i], n_vdd_, *design_.pfet, design_.nfin_pu);
    // Pass gates onto the column's shared bitlines (wordline low).
    fets_[i][static_cast<std::size_t>(Role::kPgL)] = &circuit_.add<Mosfet>(
        n_bl_[col], n_wl_, n_q_[i], *design_.nfet, design_.nfin_pg);
    fets_[i][static_cast<std::size_t>(Role::kPgR)] = &circuit_.add<Mosfet>(
        n_blb_[col], n_wl_, n_qb_[i], *design_.nfet, design_.nfin_pg);
    for (Mosfet* fet : fets_[i]) fet->set_temperature(design_.temp_k);

    // Storage-node capacitances (gate + junction, lumped).
    circuit_.add<spice::Capacitor>(n_q_[i], kGround, design_.cnode_f);
    circuit_.add<spice::Capacitor>(n_qb_[i], kGround, design_.cnode_f);

    // Strike current sources (paper Fig. 5a), per cell; shapes bound per
    // simulation, zero for unstruck cells.
    srcs_[i][0] = &circuit_.add<PulseISource>(n_q_[i], kGround, zero);
    srcs_[i][1] = &circuit_.add<PulseISource>(n_vdd_, n_qb_[i], zero);
    srcs_[i][2] = &circuit_.add<PulseISource>(n_blb_[col], n_qb_[i], zero);

    probes_.push_back("q" + std::to_string(i));
    probes_.push_back("qb" + std::to_string(i));
  }

  // Same transient window as the single-cell simulator: the pulses are ~10 fs
  // wide and a 14 nm cell regenerates in < 1 ps, so 50 ps covers flip or
  // recovery of every tile cell.
  topt_.t_end = 50e-12;
  topt_.dt_initial = 1e-15;
  topt_.dt_max = 1e-12;

  // The netlist is final: lower it once. Every simulate() is a rebind.
  compiled_.emplace(circuit_);
}

void ClusterSimulator::bind(const std::vector<CellStrike>& strikes,
                            const std::vector<DeltaVt>& dvts,
                            PulseShape::Kind kind) {
  FINSER_REQUIRE(dvts.size() == cell_count(),
                 "ClusterSimulator: one DeltaVt per tile cell required");
  constexpr double kDelayS = 1e-12;
  const double width_s = tau_s_;
  const PulseShape zero{};
  for (std::size_t i = 0; i < cell_count(); ++i) {
    for (std::size_t r = 0; r < kRoleCount; ++r) {
      fets_[i][r]->set_delta_vt(dvts[i][r]);
    }
    for (PulseISource* src : srcs_[i]) src->set_shape(zero);
  }
  auto shape = [&](double q_fc) {
    const double q_c = util::fc_to_c(q_fc);
    return kind == PulseShape::Kind::kRectangular
               ? PulseShape::rectangular_for_charge(q_c, width_s, kDelayS)
               : PulseShape::triangular_for_charge(q_c, width_s, kDelayS);
  };
  for (const CellStrike& s : strikes) {
    FINSER_REQUIRE(s.local < cell_count(),
                   "ClusterSimulator: strike local index out of range");
    srcs_[s.local][0]->set_shape(shape(s.charges.i1_fc));
    srcs_[s.local][1]->set_shape(shape(s.charges.i2_fc));
    srcs_[s.local][2]->set_shape(shape(s.charges.i3_fc));
  }
  compiled_->rebind();
}

std::vector<double> ClusterSimulator::hold_guess() const {
  std::vector<double> guess(circuit_.unknown_count(), 0.0);
  for (std::size_t i = 0; i < cell_count(); ++i) {
    guess[n_q_[i]] = vdd_v_;
    guess[n_qb_[i]] = 0.0;
  }
  guess[n_vdd_] = vdd_v_;
  for (std::size_t c = 0; c < tile_cols_; ++c) {
    guess[n_bl_[c]] = vdd_v_;
    guess[n_blb_[c]] = vdd_v_;
  }
  return guess;
}

ClusterSimulator::Outcome ClusterSimulator::finish_wave(
    const spice::Waveform& wave) const {
  Outcome out;
  out.flipped.assign(cell_count(), 0);
  for (std::size_t i = 0; i < cell_count(); ++i) {
    const double q = wave.final_value(2 * i);
    const double qb = wave.final_value(2 * i + 1);
    // Same flip criterion as the single-cell path: the '1' node fell below
    // mid-rail and the '0' node rose above it.
    if (q < 0.5 * vdd_v_ && qb > 0.5 * vdd_v_) {
      out.flipped[i] = 1;
      ++out.flip_count;
    }
  }
  return out;
}

ClusterSimulator::Outcome ClusterSimulator::simulate(
    const std::vector<CellStrike>& strikes, const std::vector<DeltaVt>& dvts,
    PulseShape::Kind kind) {
  bind(strikes, dvts, kind);
  const auto x0 = spice::solve_dc(*compiled_, ws_, hold_guess());
  return finish_wave(spice::run_transient(*compiled_, ws_, x0, topt_, probes_));
}

void ClusterSimulator::simulate_batch(
    const std::vector<CellStrike>& strikes,
    const std::vector<std::vector<DeltaVt>>& dvt_samples,
    PulseShape::Kind kind, std::vector<Outcome>& out) {
  const std::size_t count = dvt_samples.size();
  out.assign(count, Outcome{});

  const std::size_t width = spice::lane_width();
  if (width == 1) {
    for (std::size_t k = 0; k < count; ++k) {
      try {
        out[k] = simulate(strikes, dvt_samples[k], kind);
      } catch (const util::NumericalError& e) {
        out[k].failed = true;
        out[k].error = e.what();
      }
    }
    return;
  }

  if (bw_.lanes != width) compiled_->batch_configure(bw_, width);

  std::vector<std::vector<double>> x0s;
  for (std::size_t offset = 0; offset < count; offset += width) {
    const std::size_t group = std::min(width, count - offset);
    x0s.assign(group, {});
    bool any = false;
    for (std::size_t g = 0; g < group; ++g) {
      const std::size_t k = offset + g;
      // Bind lane g: same setter+rebind sequence as the scalar path, then
      // captured into the lane's AoSoA slices. The DC hold solve stays
      // scalar (one per sample; the joint transient dominates the cost).
      bind(strikes, dvt_samples[k], kind);
      compiled_->batch_rebind_lane(bw_, g);
      try {
        x0s[g] = spice::solve_dc(*compiled_, ws_, hold_guess());
        any = true;
      } catch (const util::NumericalError& e) {
        out[k].failed = true;
        out[k].error = e.what();
      }
    }
    if (!any) continue;

    const spice::BatchTransientResult res =
        spice::run_transient_batch(*compiled_, bw_, x0s, topt_, probes_);
    for (std::size_t g = 0; g < group; ++g) {
      const std::size_t k = offset + g;
      if (x0s[g].empty()) continue;
      if (res.failed[g]) {
        out[k].failed = true;
        out[k].error = res.errors[g];
        continue;
      }
      Outcome& o = out[k];
      o.flipped.assign(cell_count(), 0);
      o.flip_count = 0;
      for (std::size_t i = 0; i < cell_count(); ++i) {
        const double q = res.waves[g].final_value(2 * i);
        const double qb = res.waves[g].final_value(2 * i + 1);
        if (q < 0.5 * vdd_v_ && qb > 0.5 * vdd_v_) {
          o.flipped[i] = 1;
          ++o.flip_count;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ClusterPofSurface
// ---------------------------------------------------------------------------

namespace {

// The surface always uses the rectangular drift-collection pulse (the
// paper's Fig. 5a shape and the characterizer default).
constexpr PulseShape::Kind kClusterPulse = PulseShape::Kind::kRectangular;

// Stream id for PV-sample draws derived from a surface key hash.
constexpr std::uint64_t kPvStream = 0xC1u;

std::uint64_t key_hash(const std::vector<std::int64_t>& key) {
  util::Fnv1a h;
  h.str("finser.cluster_surface.key");
  for (const std::int64_t v : key) h.u64(static_cast<std::uint64_t>(v));
  return h.hash();
}

}  // namespace

ClusterPofSurface::ClusterPofSurface(const CellDesign& design,
                                     const ClusterConfig& config)
    : design_(design), config_(config) {
  FINSER_REQUIRE(config_.share_fraction >= 0.0 && config_.share_fraction < 1.0,
                 "ClusterPofSurface: share_fraction must be in [0, 1)");
  FINSER_REQUIRE(config_.quantum_fc > 0.0,
                 "ClusterPofSurface: quantum_fc must be positive");
  FINSER_REQUIRE(config_.pv_samples >= 1,
                 "ClusterPofSurface: pv_samples must be at least 1");
}

void ClusterPofSurface::flip_count_distribution(
    double vdd_v, bool with_pv, const std::vector<CellCharge>& cells,
    std::vector<double>& out) {
  FINSER_REQUIRE(!cells.empty(),
                 "ClusterPofSurface: at least one struck cell required");
  const std::size_t tile_cells = tile_rows() * tile_cols();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    FINSER_REQUIRE(cells[i].local < tile_cells,
                   "ClusterPofSurface: local index out of range");
    FINSER_REQUIRE(i == 0 || cells[i - 1].local < cells[i].local,
                   "ClusterPofSurface: cells must be sorted by local index");
  }

  // Quantize the joint charge vector into the canonical key. The *quantized*
  // charges (not the raw ones) are what gets simulated, so a memo hit
  // returns exactly what a fresh evaluation of the same key would.
  Key key;
  key.reserve(3 + 4 * cells.size());
  key.push_back(std::llround(vdd_v * 1e6));  // µV
  key.push_back(with_pv ? 1 : 0);
  key.push_back(static_cast<std::int64_t>(cells.size()));
  for (const CellCharge& c : cells) {
    key.push_back(static_cast<std::int64_t>(c.local));
    key.push_back(std::llround(c.charges.i1_fc / config_.quantum_fc));
    key.push_back(std::llround(c.charges.i2_fc / config_.quantum_fc));
    key.push_back(std::llround(c.charges.i3_fc / config_.quantum_fc));
  }

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = memo_.find(key);
  if (it != memo_.end()) {
    FINSER_OBS_COUNT("sram.cluster.surface_hit", 1);
    out = it->second;
    return;
  }
  FINSER_OBS_COUNT("sram.cluster.surface_miss", 1);
  out = evaluate_locked(key, vdd_v, with_pv, cells);
}

ClusterSimulator& ClusterPofSurface::simulator_locked(double vdd_v) {
  const std::int64_t key = std::llround(vdd_v * 1e6);
  auto it = sims_.find(key);
  if (it == sims_.end()) {
    it = sims_
             .emplace(key, std::make_unique<ClusterSimulator>(
                               design_, vdd_v, tile_rows(), tile_cols()))
             .first;
  }
  return *it->second;
}

const std::vector<double>& ClusterPofSurface::evaluate_locked(
    const Key& key, double vdd_v, bool with_pv,
    const std::vector<CellCharge>& cells) {
  ClusterSimulator& sim = simulator_locked(vdd_v);
  const std::size_t n = cells.size();
  const std::size_t tile_cells = sim.cell_count();

  // Dequantized charges — the values the key actually encodes.
  std::vector<ClusterSimulator::CellStrike> strikes(n);
  std::vector<double> totals(n);
  for (std::size_t i = 0; i < n; ++i) {
    strikes[i].local = cells[i].local;
    strikes[i].charges.i1_fc =
        static_cast<double>(key[4 + 4 * i]) * config_.quantum_fc;
    strikes[i].charges.i2_fc =
        static_cast<double>(key[5 + 4 * i]) * config_.quantum_fc;
    strikes[i].charges.i3_fc =
        static_cast<double>(key[6 + 4 * i]) * config_.quantum_fc;
    totals[i] = strikes[i].charges.i1_fc + strikes[i].charges.i2_fc +
                strikes[i].charges.i3_fc;
  }

  // Multi-node charge collection (arXiv:1706.03315): a fraction of each
  // struck cell's collected charge also appears on every adjacent struck
  // cell of the tile, injected into the dominant collection node (the off
  // pull-down drain — current I1). Monotone in charge, so correlation can
  // only add joint-flip mass relative to the independent model.
  if (config_.share_fraction > 0.0) {
    const auto tc = static_cast<std::int64_t>(sim.tile_cols());
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t ri = cells[i].local / tc, ci = cells[i].local % tc;
      double shared = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const std::int64_t rj = cells[j].local / tc, cj = cells[j].local % tc;
        if (std::llabs(ri - rj) + std::llabs(ci - cj) == 1) {
          shared += totals[j];
        }
      }
      strikes[i].charges.i1_fc += config_.share_fraction * shared;
    }
  }

  // Count flips among the *struck* cells only: unstruck tile cells carry no
  // injection and a spurious neighbour flip through the shared bitlines
  // would be a solver artifact, not a modeled mechanism.
  std::vector<double> counts(n + 1, 0.0);
  const DeltaVt zero_dvt{};
  std::vector<DeltaVt> dvts(tile_cells, zero_dvt);
  const auto struck_flips = [&](const ClusterSimulator::Outcome& o) {
    std::size_t flips = 0;
    for (const auto& s : strikes) flips += o.flipped[s.local] != 0 ? 1 : 0;
    return flips;
  };

  std::size_t successes = 0;
  std::string last_error = "no samples run";
  if (!with_pv) {
    // Nominal channel: one joint transient at zero threshold shift — the
    // cluster analogue of the LUT's nominal column; a point mass.
    try {
      const auto o = sim.simulate(strikes, dvts, kClusterPulse);
      counts[struck_flips(o)] += 1.0;
      successes = 1;
    } catch (const util::NumericalError& e) {
      last_error = e.what();
      FINSER_OBS_COUNT("sram.cluster.sim_fail", 1);
    }
    FINSER_OBS_COUNT("sram.cluster.sims", 1);
  } else {
    // With-PV channel: joint ΔVt samples, lane-batched. Seeds derive from
    // the key hash, not from any caller RNG — the entry is a pure function
    // of its key, so values are identical no matter which thread, worker or
    // query order computes them first. Draws are sample-major, struck cells
    // in ascending local order, six normals per cell (the unstruck cells'
    // variation only enters through bitline coupling and is omitted).
    stats::Rng rng = stats::Rng::stream(key_hash(key), kPvStream);
    std::vector<std::vector<DeltaVt>> samples(config_.pv_samples, dvts);
    for (auto& sample : samples) {
      for (const auto& s : strikes) {
        for (std::size_t r = 0; r < kRoleCount; ++r) {
          sample[s.local][r] = rng.normal(0.0, design_.sigma_vt);
        }
      }
    }
    std::vector<ClusterSimulator::Outcome> outs;
    sim.simulate_batch(strikes, samples, kClusterPulse, outs);
    FINSER_OBS_COUNT("sram.cluster.sims", outs.size());
    for (const auto& o : outs) {
      if (o.failed) {
        last_error = o.error;
        FINSER_OBS_COUNT("sram.cluster.sim_fail", 1);
        continue;
      }
      counts[struck_flips(o)] += 1.0;
      ++successes;
    }
  }

  if (successes == 0) {
    throw util::NumericalError(
        "ClusterPofSurface: every joint sample failed to converge (" +
        last_error + ")");
  }
  std::vector<double> dist(n + 1, 0.0);
  for (std::size_t k = 0; k <= n; ++k) {
    dist[k] = counts[k] / static_cast<double>(successes);
  }
  return memo_.emplace(key, std::move(dist)).first->second;
}

std::size_t ClusterPofSurface::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_.size();
}

std::uint64_t ClusterPofSurface::fingerprint(
    std::uint64_t model_fingerprint) const {
  util::Fnv1a h;
  h.str("finser.cluster_surface.v1");
  h.u64(model_fingerprint);
  h.u64(static_cast<std::uint64_t>(config_.mode));
  h.f64(config_.share_fraction);
  h.u64(config_.pv_samples);
  h.f64(config_.quantum_fc);
  return h.hash();
}

std::vector<std::uint8_t> ClusterPofSurface::encode() const {
  std::lock_guard<std::mutex> lock(mu_);
  util::ByteWriter w;
  w.u64(memo_.size());
  for (const auto& [key, dist] : memo_) {
    w.u64(key.size());
    for (const std::int64_t v : key) w.u64(static_cast<std::uint64_t>(v));
    w.f64_vec(dist);
  }
  return w.take();
}

std::size_t ClusterPofSurface::decode_merge(
    const std::vector<std::uint8_t>& blob) {
  util::ByteReader r(blob.data(), blob.size());
  const std::uint64_t entries = r.u64();
  std::size_t absorbed = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint64_t e = 0; e < entries; ++e) {
    const std::uint64_t klen = r.u64();
    if (klen < 3 || klen > 4096) {
      throw util::Error("ClusterPofSurface: malformed surface entry (key " +
                        std::to_string(klen) + " words)");
    }
    Key key(klen);
    for (auto& v : key) v = static_cast<std::int64_t>(r.u64());
    std::vector<double> dist = r.f64_vec();
    if (dist.empty() || dist.size() > 1 + tile_rows() * tile_cols()) {
      throw util::Error(
          "ClusterPofSurface: malformed surface entry (distribution " +
          std::to_string(dist.size()) + " bins)");
    }
    // Values are pure functions of keys: any entry already present is
    // necessarily identical, so first-in wins without comparison.
    if (memo_.emplace(std::move(key), std::move(dist)).second) ++absorbed;
  }
  return absorbed;
}

}  // namespace finser::sram
