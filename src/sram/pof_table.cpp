#include "finser/sram/pof_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "finser/util/error.hpp"

namespace finser::sram {

// ---------------------------------------------------------------------------
// SingleCdf
// ---------------------------------------------------------------------------

double SingleCdf::pof(double q_fc) const {
  if (total_samples == 0) return 0.0;
  const auto it = std::upper_bound(qcrit_samples_fc.begin(), qcrit_samples_fc.end(),
                                   q_fc);
  return static_cast<double>(it - qcrit_samples_fc.begin()) /
         static_cast<double>(total_samples);
}

double SingleCdf::pof_nominal(double q_fc) const {
  return q_fc >= nominal_qcrit_fc ? 1.0 : 0.0;
}

double SingleCdf::mean_qcrit_fc() const {
  if (qcrit_samples_fc.empty()) return kNeverFlips;
  double acc = 0.0;
  for (double q : qcrit_samples_fc) acc += q;
  return acc / static_cast<double>(qcrit_samples_fc.size());
}

double SingleCdf::stddev_qcrit_fc() const {
  const std::size_t n = qcrit_samples_fc.size();
  if (n < 2) return 0.0;
  const double mu = mean_qcrit_fc();
  double acc = 0.0;
  for (double q : qcrit_samples_fc) acc += (q - mu) * (q - mu);
  return std::sqrt(acc / static_cast<double>(n - 1));
}

// ---------------------------------------------------------------------------
// PofTable
// ---------------------------------------------------------------------------

double PofTable::pof(const StrikeCharges& c, bool with_pv) const {
  const bool has1 = c.i1_fc > kChargeEpsFc;
  const bool has2 = c.i2_fc > kChargeEpsFc;
  const bool has3 = c.i3_fc > kChargeEpsFc;
  const int mask = (has1 ? 1 : 0) | (has2 ? 2 : 0) | (has3 ? 4 : 0);

  switch (mask) {
    case 0:
      return 0.0;
    case 1:
      return with_pv ? singles[0].pof(c.i1_fc) : singles[0].pof_nominal(c.i1_fc);
    case 2:
      return with_pv ? singles[1].pof(c.i2_fc) : singles[1].pof_nominal(c.i2_fc);
    case 4:
      return with_pv ? singles[2].pof(c.i3_fc) : singles[2].pof_nominal(c.i3_fc);
    case 3: {  // I1 + I2
      const double p = with_pv ? pairs_pv[0](c.i1_fc, c.i2_fc)
                               : pairs_nominal[0](c.i1_fc, c.i2_fc);
      return with_pv ? p : std::round(p);
    }
    case 5: {  // I1 + I3
      const double p = with_pv ? pairs_pv[1](c.i1_fc, c.i3_fc)
                               : pairs_nominal[1](c.i1_fc, c.i3_fc);
      return with_pv ? p : std::round(p);
    }
    case 6: {  // I2 + I3
      const double p = with_pv ? pairs_pv[2](c.i2_fc, c.i3_fc)
                               : pairs_nominal[2](c.i2_fc, c.i3_fc);
      return with_pv ? p : std::round(p);
    }
    case 7: {
      const double p = with_pv ? triple_pv(c.i1_fc, c.i2_fc, c.i3_fc)
                               : triple_nominal(c.i1_fc, c.i2_fc, c.i3_fc);
      return with_pv ? p : std::round(p);
    }
    default:
      return 0.0;
  }
}

// ---------------------------------------------------------------------------
// CellSoftErrorModel
// ---------------------------------------------------------------------------

const PofTable& CellSoftErrorModel::at_vdd(double vdd_v) const {
  for (const PofTable& t : tables) {
    if (std::abs(t.vdd_v - vdd_v) < 1e-3) return t;
  }
  throw util::DomainError("CellSoftErrorModel: no table characterized at Vdd = " +
                          std::to_string(vdd_v));
}

double CellSoftErrorModel::pof(double vdd_v, const StrikeCharges& charges,
                               bool with_pv) const {
  return at_vdd(vdd_v).pof(charges, with_pv);
}

std::vector<double> CellSoftErrorModel::vdds() const {
  std::vector<double> out;
  out.reserve(tables.size());
  for (const PofTable& t : tables) out.push_back(t.vdd_v);
  return out;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[8] = {'F', 'N', 'S', 'R', 'P', 'O', 'F', '2'};

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_vec(std::ostream& os, const std::vector<double>& v) {
  write_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  FINSER_REQUIRE(is.good(), "PofTable: truncated file (u64)");
  return v;
}

double read_f64(std::istream& is) {
  double v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  FINSER_REQUIRE(is.good(), "PofTable: truncated file (f64)");
  return v;
}

std::vector<double> read_vec(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  FINSER_REQUIRE(n < (1ull << 32), "PofTable: implausible vector length");
  std::vector<double> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  FINSER_REQUIRE(is.good(), "PofTable: truncated file (vector)");
  return v;
}

void write_grid2(std::ostream& os, const util::Grid2& g) {
  write_vec(os, g.x_axis().points());
  write_vec(os, g.y_axis().points());
  std::vector<double> vals;
  vals.reserve(g.x_axis().size() * g.y_axis().size());
  for (std::size_t i = 0; i < g.x_axis().size(); ++i) {
    for (std::size_t j = 0; j < g.y_axis().size(); ++j) vals.push_back(g.at(i, j));
  }
  write_vec(os, vals);
}

util::Grid2 read_grid2(std::istream& is) {
  auto xs = read_vec(is);
  auto ys = read_vec(is);
  auto vals = read_vec(is);
  return util::Grid2(util::Axis(std::move(xs)), util::Axis(std::move(ys)),
                     std::move(vals));
}

void write_grid3(std::ostream& os, const util::Grid3& g) {
  write_vec(os, g.x_axis().points());
  write_vec(os, g.y_axis().points());
  write_vec(os, g.z_axis().points());
  std::vector<double> vals;
  vals.reserve(g.x_axis().size() * g.y_axis().size() * g.z_axis().size());
  for (std::size_t i = 0; i < g.x_axis().size(); ++i) {
    for (std::size_t j = 0; j < g.y_axis().size(); ++j) {
      for (std::size_t k = 0; k < g.z_axis().size(); ++k) {
        vals.push_back(g.at(i, j, k));
      }
    }
  }
  write_vec(os, vals);
}

util::Grid3 read_grid3(std::istream& is) {
  auto xs = read_vec(is);
  auto ys = read_vec(is);
  auto zs = read_vec(is);
  auto vals = read_vec(is);
  return util::Grid3(util::Axis(std::move(xs)), util::Axis(std::move(ys)),
                     util::Axis(std::move(zs)), std::move(vals));
}

void write_single(std::ostream& os, const SingleCdf& s) {
  write_f64(os, s.nominal_qcrit_fc);
  write_u64(os, s.total_samples);
  write_vec(os, s.qcrit_samples_fc);
}

SingleCdf read_single(std::istream& is) {
  SingleCdf s;
  s.nominal_qcrit_fc = read_f64(is);
  s.total_samples = read_u64(is);
  s.qcrit_samples_fc = read_vec(is);
  return s;
}

}  // namespace

void CellSoftErrorModel::save(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream os(path, std::ios::binary);
  FINSER_REQUIRE(os.good(), "CellSoftErrorModel::save: cannot open " + path);
  os.write(kMagic, sizeof(kMagic));
  write_u64(os, config_fingerprint);
  write_u64(os, tables.size());
  for (const PofTable& t : tables) {
    write_f64(os, t.vdd_v);
    write_f64(os, t.q_max_fc);
    for (const auto& s : t.singles) write_single(os, s);
    for (const auto& g : t.pairs_pv) write_grid2(os, g);
    for (const auto& g : t.pairs_nominal) write_grid2(os, g);
    write_grid3(os, t.triple_pv);
    write_grid3(os, t.triple_nominal);
  }
  FINSER_REQUIRE(os.good(), "CellSoftErrorModel::save: write failure to " + path);
}

CellSoftErrorModel CellSoftErrorModel::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    throw util::Error("CellSoftErrorModel::load: cannot open " + path);
  }
  char magic[8];
  is.read(magic, sizeof(magic));
  FINSER_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "CellSoftErrorModel::load: bad magic in " + path);
  CellSoftErrorModel model;
  model.config_fingerprint = read_u64(is);
  const std::uint64_t count = read_u64(is);
  FINSER_REQUIRE(count < 1024, "CellSoftErrorModel::load: implausible table count");
  model.tables.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PofTable t;
    t.vdd_v = read_f64(is);
    t.q_max_fc = read_f64(is);
    for (auto& s : t.singles) s = read_single(is);
    for (auto& g : t.pairs_pv) g = read_grid2(is);
    for (auto& g : t.pairs_nominal) g = read_grid2(is);
    t.triple_pv = read_grid3(is);
    t.triple_nominal = read_grid3(is);
    model.tables.push_back(std::move(t));
  }
  return model;
}

bool CellSoftErrorModel::try_load(const std::string& path,
                                  std::uint64_t expected_fingerprint,
                                  CellSoftErrorModel& out) {
  try {
    CellSoftErrorModel model = load(path);
    if (model.config_fingerprint != expected_fingerprint) return false;
    out = std::move(model);
    return true;
  } catch (const util::Error&) {
    return false;
  }
}

}  // namespace finser::sram
