#include "finser/sram/pof_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "finser/util/bytes.hpp"
#include "finser/util/checksum.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fault.hpp"
#include "finser/util/io.hpp"

namespace finser::sram {

// ---------------------------------------------------------------------------
// SingleCdf
// ---------------------------------------------------------------------------

double SingleCdf::pof(double q_fc) const {
  if (total_samples == 0) return 0.0;
  const auto it = std::upper_bound(qcrit_samples_fc.begin(), qcrit_samples_fc.end(),
                                   q_fc);
  return static_cast<double>(it - qcrit_samples_fc.begin()) /
         static_cast<double>(total_samples);
}

double SingleCdf::pof_nominal(double q_fc) const {
  return q_fc >= nominal_qcrit_fc ? 1.0 : 0.0;
}

double SingleCdf::mean_qcrit_fc() const {
  if (qcrit_samples_fc.empty()) return kNeverFlips;
  double acc = 0.0;
  for (double q : qcrit_samples_fc) acc += q;
  return acc / static_cast<double>(qcrit_samples_fc.size());
}

double SingleCdf::stddev_qcrit_fc() const {
  const std::size_t n = qcrit_samples_fc.size();
  if (n < 2) return 0.0;
  const double mu = mean_qcrit_fc();
  double acc = 0.0;
  for (double q : qcrit_samples_fc) acc += (q - mu) * (q - mu);
  return std::sqrt(acc / static_cast<double>(n - 1));
}

// ---------------------------------------------------------------------------
// PofTable
// ---------------------------------------------------------------------------

double PofTable::pof(const StrikeCharges& c, bool with_pv) const {
  const bool has1 = c.i1_fc > kChargeEpsFc;
  const bool has2 = c.i2_fc > kChargeEpsFc;
  const bool has3 = c.i3_fc > kChargeEpsFc;
  const int mask = (has1 ? 1 : 0) | (has2 ? 2 : 0) | (has3 ? 4 : 0);

  switch (mask) {
    case 0:
      return 0.0;
    case 1:
      return with_pv ? singles[0].pof(c.i1_fc) : singles[0].pof_nominal(c.i1_fc);
    case 2:
      return with_pv ? singles[1].pof(c.i2_fc) : singles[1].pof_nominal(c.i2_fc);
    case 4:
      return with_pv ? singles[2].pof(c.i3_fc) : singles[2].pof_nominal(c.i3_fc);
    case 3: {  // I1 + I2
      const double p = with_pv ? pairs_pv[0](c.i1_fc, c.i2_fc)
                               : pairs_nominal[0](c.i1_fc, c.i2_fc);
      return with_pv ? p : std::round(p);
    }
    case 5: {  // I1 + I3
      const double p = with_pv ? pairs_pv[1](c.i1_fc, c.i3_fc)
                               : pairs_nominal[1](c.i1_fc, c.i3_fc);
      return with_pv ? p : std::round(p);
    }
    case 6: {  // I2 + I3
      const double p = with_pv ? pairs_pv[2](c.i2_fc, c.i3_fc)
                               : pairs_nominal[2](c.i2_fc, c.i3_fc);
      return with_pv ? p : std::round(p);
    }
    case 7: {
      const double p = with_pv ? triple_pv(c.i1_fc, c.i2_fc, c.i3_fc)
                               : triple_nominal(c.i1_fc, c.i2_fc, c.i3_fc);
      return with_pv ? p : std::round(p);
    }
    default:
      return 0.0;
  }
}

// ---------------------------------------------------------------------------
// CellSoftErrorModel
// ---------------------------------------------------------------------------

const PofTable& CellSoftErrorModel::at_vdd(double vdd_v) const {
  for (const PofTable& t : tables) {
    if (std::abs(t.vdd_v - vdd_v) < 1e-3) return t;
  }
  throw util::DomainError("CellSoftErrorModel: no table characterized at Vdd = " +
                          std::to_string(vdd_v));
}

double CellSoftErrorModel::pof(double vdd_v, const StrikeCharges& charges,
                               bool with_pv) const {
  return at_vdd(vdd_v).pof(charges, with_pv);
}

std::vector<double> CellSoftErrorModel::vdds() const {
  std::vector<double> out;
  out.reserve(tables.size());
  for (const PofTable& t : tables) out.push_back(t.vdd_v);
  return out;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

// Format v3: 'FNSRPOF2' files (no CRC, no failure counters) fail the magic
// check and are silently re-characterized — the cache is a cache.
constexpr char kMagic[8] = {'F', 'N', 'S', 'R', 'P', 'O', 'F', '3'};

void write_grid2(util::ByteWriter& w, const util::Grid2& g) {
  w.f64_vec(g.x_axis().points());
  w.f64_vec(g.y_axis().points());
  std::vector<double> vals;
  vals.reserve(g.x_axis().size() * g.y_axis().size());
  for (std::size_t i = 0; i < g.x_axis().size(); ++i) {
    for (std::size_t j = 0; j < g.y_axis().size(); ++j) vals.push_back(g.at(i, j));
  }
  w.f64_vec(vals);
}

util::Grid2 read_grid2(util::ByteReader& r) {
  auto xs = r.f64_vec();
  auto ys = r.f64_vec();
  auto vals = r.f64_vec();
  return util::Grid2(util::Axis(std::move(xs)), util::Axis(std::move(ys)),
                     std::move(vals));
}

void write_grid3(util::ByteWriter& w, const util::Grid3& g) {
  w.f64_vec(g.x_axis().points());
  w.f64_vec(g.y_axis().points());
  w.f64_vec(g.z_axis().points());
  std::vector<double> vals;
  vals.reserve(g.x_axis().size() * g.y_axis().size() * g.z_axis().size());
  for (std::size_t i = 0; i < g.x_axis().size(); ++i) {
    for (std::size_t j = 0; j < g.y_axis().size(); ++j) {
      for (std::size_t k = 0; k < g.z_axis().size(); ++k) {
        vals.push_back(g.at(i, j, k));
      }
    }
  }
  w.f64_vec(vals);
}

util::Grid3 read_grid3(util::ByteReader& r) {
  auto xs = r.f64_vec();
  auto ys = r.f64_vec();
  auto zs = r.f64_vec();
  auto vals = r.f64_vec();
  return util::Grid3(util::Axis(std::move(xs)), util::Axis(std::move(ys)),
                     util::Axis(std::move(zs)), std::move(vals));
}

void write_single(util::ByteWriter& w, const SingleCdf& s) {
  w.f64(s.nominal_qcrit_fc);
  w.u64(s.total_samples);
  w.u64(s.failed_samples);
  w.f64_vec(s.qcrit_samples_fc);
}

SingleCdf read_single(util::ByteReader& r) {
  SingleCdf s;
  s.nominal_qcrit_fc = r.f64();
  s.total_samples = static_cast<std::size_t>(r.u64());
  s.failed_samples = static_cast<std::size_t>(r.u64());
  s.qcrit_samples_fc = r.f64_vec();
  return s;
}

}  // namespace

void PofTable::write(util::ByteWriter& w) const {
  w.f64(vdd_v);
  w.f64(q_max_fc);
  w.u64(attempted_samples);
  w.u64(failed_samples);
  for (const auto& s : singles) write_single(w, s);
  for (const auto& g : pairs_pv) write_grid2(w, g);
  for (const auto& g : pairs_nominal) write_grid2(w, g);
  write_grid3(w, triple_pv);
  write_grid3(w, triple_nominal);
}

PofTable PofTable::read(util::ByteReader& r) {
  PofTable t;
  t.vdd_v = r.f64();
  t.q_max_fc = r.f64();
  t.attempted_samples = static_cast<std::size_t>(r.u64());
  t.failed_samples = static_cast<std::size_t>(r.u64());
  for (auto& s : t.singles) s = read_single(r);
  for (auto& g : t.pairs_pv) g = read_grid2(r);
  for (auto& g : t.pairs_nominal) g = read_grid2(r);
  t.triple_pv = read_grid3(r);
  t.triple_nominal = read_grid3(r);
  return t;
}

std::size_t CellSoftErrorModel::attempted_samples() const {
  std::size_t n = 0;
  for (const PofTable& t : tables) n += t.attempted_samples;
  return n;
}

std::size_t CellSoftErrorModel::failed_samples() const {
  std::size_t n = 0;
  for (const PofTable& t : tables) n += t.failed_samples;
  return n;
}

void CellSoftErrorModel::save(const std::string& path) const {
  util::ByteWriter payload;
  payload.u64(config_fingerprint);
  payload.u64(tables.size());
  for (const PofTable& t : tables) t.write(payload);

  util::ByteWriter file;
  file.bytes(kMagic, sizeof(kMagic));
  file.bytes(payload.data().data(), payload.size());
  file.u32(util::crc32(payload.data().data(), payload.size()));

  // Fault-injection hook: corrupt one byte of the first save (cache_flip's
  // argument is the offset) so tests can prove a flipped cache is rejected
  // by CRC and regenerated, never loaded.
  std::vector<std::uint8_t> bytes = file.take();
  if (util::fault_fire(util::FaultSite::kCacheFlip)) {
    const std::size_t off = static_cast<std::size_t>(util::fault_arg(
                                util::FaultSite::kCacheFlip)) %
                            bytes.size();
    bytes[off] ^= 0x01;
  }

  std::string error;
  if (!util::atomic_write_file(path, bytes.data(), bytes.size(), &error)) {
    throw util::Error("CellSoftErrorModel::save: " + error);
  }
}

CellSoftErrorModel CellSoftErrorModel::load(const std::string& path) {
  std::vector<std::uint8_t> raw;
  std::string io_error;
  if (!util::read_file(path, raw, &io_error)) {
    throw util::Error("CellSoftErrorModel::load: " + io_error);
  }
  if (raw.size() < sizeof(kMagic) + sizeof(std::uint32_t)) {
    throw util::Error("CellSoftErrorModel::load: " + path +
                      " too short to be a POF cache (" +
                      std::to_string(raw.size()) + " bytes)");
  }
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    throw util::Error("CellSoftErrorModel::load: bad magic in " + path +
                      " (not a format-v3 POF cache)");
  }

  // Integrity first, parsing second: the CRC over the whole payload rejects
  // truncation and bit flips before any length field is trusted.
  const std::size_t payload_size =
      raw.size() - sizeof(kMagic) - sizeof(std::uint32_t);
  const std::uint8_t* payload = raw.data() + sizeof(kMagic);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload + payload_size, sizeof(stored_crc));
  if (stored_crc != util::crc32(payload, payload_size)) {
    throw util::Error("CellSoftErrorModel::load: CRC mismatch in " + path +
                      " (torn or corrupted cache)");
  }

  util::ByteReader r(payload, payload_size);
  CellSoftErrorModel model;
  model.config_fingerprint = r.u64();
  const std::uint64_t count = r.u64();
  FINSER_REQUIRE(count < 1024, "CellSoftErrorModel::load: implausible table count");
  model.tables.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    model.tables.push_back(PofTable::read(r));
  }
  FINSER_REQUIRE(r.exhausted(),
                 "CellSoftErrorModel::load: trailing bytes after last table");
  return model;
}

bool CellSoftErrorModel::try_load(const std::string& path,
                                  std::uint64_t expected_fingerprint,
                                  CellSoftErrorModel& out, std::string* reason) {
  const auto reject = [&](const std::string& why) {
    if (reason != nullptr) *reason = why;
    std::fprintf(stderr,
                 "[finser:sram] POF cache %s not used: %s; re-characterizing\n",
                 path.c_str(), why.c_str());
    return false;
  };
  // A missing cache is the normal first-run case — no log, no warning.
  if (!std::filesystem::exists(path)) {
    if (reason != nullptr) *reason = "no cache file";
    return false;
  }
  try {
    CellSoftErrorModel model = load(path);
    if (model.config_fingerprint != expected_fingerprint) {
      return reject("config fingerprint mismatch (stale cache)");
    }
    out = std::move(model);
    return true;
  } catch (const std::exception& e) {
    // std::exception, not just util::Error: a corrupt length field that
    // slipped past the CRC (or a bad_alloc from one) must also degrade to
    // re-characterization, never crash the run.
    return reject(e.what());
  }
}

}  // namespace finser::sram
