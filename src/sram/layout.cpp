#include "finser/sram/layout.hpp"

#include "finser/stats/rng.hpp"
#include "finser/util/error.hpp"

namespace finser::sram {

ArrayLayout::ArrayLayout(std::size_t rows, std::size_t cols,
                         const CellGeometry& geometry, DataPattern pattern,
                         std::uint64_t pattern_seed)
    : rows_(rows), cols_(cols), geometry_(geometry), pattern_(pattern),
      pattern_seed_(pattern_seed) {
  FINSER_REQUIRE(rows > 0 && cols > 0, "ArrayLayout: empty array");
  FINSER_REQUIRE(geometry.fin_w_nm > 0 && geometry.fin_h_nm > 0 &&
                     geometry.gate_len_nm > 0,
                 "ArrayLayout: non-positive fin dimensions");
  FINSER_REQUIRE(geometry.nfin_pd >= 1 && geometry.nfin_pg >= 1 &&
                     geometry.nfin_pu >= 1,
                 "ArrayLayout: fin counts must be >= 1");
  build();
}

const FinSite& ArrayLayout::site(std::uint32_t fin_id) const {
  FINSER_REQUIRE(fin_id < sites_.size(), "ArrayLayout::site: id out of range");
  return sites_[fin_id];
}

double ArrayLayout::collection_efficiency(std::uint32_t fin_id) const {
  FINSER_REQUIRE(fin_id < efficiency_.size(),
                 "ArrayLayout::collection_efficiency: id out of range");
  return efficiency_[fin_id];
}

bool ArrayLayout::bit(std::size_t row, std::size_t col) const {
  FINSER_REQUIRE(row < rows_ && col < cols_, "ArrayLayout::bit: out of range");
  return bits_[row * cols_ + col] != 0;
}

std::optional<int> ArrayLayout::strike_index(Role role, bool bit) {
  // Bit = 1 means Q = 1/QB = 0 (the paper's Fig. 5a orientation):
  // sensitive are the OFF pull-down at Q, OFF pull-up at QB, OFF pass at QB.
  // Bit = 0 is the mirror image.
  if (bit) {
    switch (role) {
      case Role::kPdL: return 0;  // I1
      case Role::kPuR: return 1;  // I2
      case Role::kPgR: return 2;  // I3
      default: return std::nullopt;
    }
  }
  switch (role) {
    case Role::kPdR: return 0;
    case Role::kPuL: return 1;
    case Role::kPgL: return 2;
    default: return std::nullopt;
  }
}

void ArrayLayout::build() {
  // Stored bits.
  bits_.resize(rows_ * cols_);
  stats::Rng rng(pattern_seed_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      bool b = true;
      switch (pattern_) {
        case DataPattern::kAllOnes: b = true; break;
        case DataPattern::kAllZeros: b = false; break;
        case DataPattern::kCheckerboard: b = ((r + c) % 2) == 0; break;
        case DataPattern::kRandom: b = rng.bernoulli(0.5); break;
      }
      bits_[r * cols_ + c] = b ? 1 : 0;
    }
  }

  // Transistor channel sites in cell-local coordinates.
  struct LocalSite {
    Role role;
    double x, y;
    int nfin;
  };
  const LocalSite locals[kRoleCount] = {
      {Role::kPdL, geometry_.x_nfin_left_nm, geometry_.y_poly_a_nm, geometry_.nfin_pd},
      {Role::kPuL, geometry_.x_pfin_left_nm, geometry_.y_poly_a_nm, geometry_.nfin_pu},
      {Role::kPgR, geometry_.x_nfin_right_nm, geometry_.y_poly_a_nm, geometry_.nfin_pg},
      {Role::kPgL, geometry_.x_nfin_left_nm, geometry_.y_poly_b_nm, geometry_.nfin_pg},
      {Role::kPuR, geometry_.x_pfin_right_nm, geometry_.y_poly_b_nm, geometry_.nfin_pu},
      {Role::kPdR, geometry_.x_nfin_right_nm, geometry_.y_poly_b_nm, geometry_.nfin_pd},
  };

  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const bool mirror_x = (c % 2) == 1;
      const bool mirror_y = (r % 2) == 1;
      const double ox = static_cast<double>(c) * geometry_.cell_w_nm;
      const double oy = static_cast<double>(r) * geometry_.cell_h_nm;

      for (const LocalSite& ls : locals) {
        for (int f = 0; f < ls.nfin; ++f) {
          // Extra fins of a multi-fin device spread symmetrically in x.
          const double spread =
              (static_cast<double>(f) - 0.5 * static_cast<double>(ls.nfin - 1)) *
              geometry_.fin_pitch_nm;
          double lx = ls.x + spread;
          double ly = ls.y;
          if (mirror_x) lx = geometry_.cell_w_nm - lx;
          if (mirror_y) ly = geometry_.cell_h_nm - ly;

          geom::Aabb box;
          box.lo = {ox + lx - 0.5 * geometry_.fin_w_nm,
                    oy + ly - 0.5 * geometry_.gate_len_nm, 0.0};
          box.hi = {ox + lx + 0.5 * geometry_.fin_w_nm,
                    oy + ly + 0.5 * geometry_.gate_len_nm, geometry_.fin_h_nm};
          fins_.add(box);
          sites_.push_back(FinSite{static_cast<std::uint32_t>(r),
                                   static_cast<std::uint32_t>(c), ls.role});
          efficiency_.push_back(1.0);

          // Bulk FinFET: tiered substrate collection volumes under the fin
          // (SOI's buried oxide suppresses these — paper Sec. 3.3).
          if (geometry_.technology == TechnologyKind::kBulk) {
            for (const CollectionTier& tier : geometry_.bulk_tiers) {
              FINSER_REQUIRE(tier.depth_hi_nm > tier.depth_lo_nm &&
                                 tier.efficiency >= 0.0 && tier.efficiency <= 1.0,
                             "ArrayLayout: malformed bulk collection tier");
              geom::Aabb sub = box;
              sub.lo.z = -tier.depth_hi_nm;
              sub.hi.z = -tier.depth_lo_nm;
              fins_.add(sub);
              sites_.push_back(FinSite{static_cast<std::uint32_t>(r),
                                       static_cast<std::uint32_t>(c), ls.role});
              efficiency_.push_back(tier.efficiency);
            }
          }
        }
      }
    }
  }
}

}  // namespace finser::sram
