#include "finser/geom/aabb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace finser::geom {

void Aabb::expand(const Aabb& o) {
  lo.x = std::min(lo.x, o.lo.x);
  lo.y = std::min(lo.y, o.lo.y);
  lo.z = std::min(lo.z, o.lo.z);
  hi.x = std::max(hi.x, o.hi.x);
  hi.y = std::max(hi.y, o.hi.y);
  hi.z = std::max(hi.z, o.hi.z);
}

std::optional<RayInterval> Aabb::intersect(const Ray& ray, double t_min) const {
  double t0 = t_min;
  double t1 = std::numeric_limits<double>::infinity();

  const double* o = &ray.origin.x;
  const double* d = &ray.dir.x;
  const double* blo = &lo.x;
  const double* bhi = &hi.x;

  for (int axis = 0; axis < 3; ++axis) {
    if (d[axis] == 0.0) {
      // Ray parallel to this slab: miss unless origin lies within it.
      if (o[axis] < blo[axis] || o[axis] > bhi[axis]) return std::nullopt;
      continue;
    }
    const double inv = 1.0 / d[axis];
    double ta = (blo[axis] - o[axis]) * inv;
    double tb = (bhi[axis] - o[axis]) * inv;
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return std::nullopt;
  }
  return RayInterval{t0, t1};
}

}  // namespace finser::geom
