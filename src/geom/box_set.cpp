#include "finser/geom/box_set.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "finser/obs/obs.hpp"
#include "finser/util/error.hpp"

namespace finser::geom {

std::uint32_t BoxSet::add(const Aabb& box) {
  FINSER_REQUIRE(box.valid(), "BoxSet::add: invalid box (lo > hi)");
  boxes_.push_back(box);
  return static_cast<std::uint32_t>(boxes_.size() - 1);
}

Aabb BoxSet::bounds() const {
  FINSER_REQUIRE(!boxes_.empty(), "BoxSet::bounds: empty set");
  Aabb b = boxes_.front();
  for (const Aabb& x : boxes_) b.expand(x);
  return b;
}

void BoxSet::query(const Ray& ray, std::vector<BoxHit>& out) const {
  FINSER_OBS_COUNT("geom.box_queries", 1);
  out.clear();
  for (std::uint32_t id = 0; id < boxes_.size(); ++id) {
    if (auto iv = boxes_[id].intersect(ray)) {
      out.push_back(BoxHit{id, *iv});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const BoxHit& a, const BoxHit& b) { return a.interval.t_in < b.interval.t_in; });
}

UniformGrid::UniformGrid(const BoxSet& set, double target_boxes_per_cell)
    : set_(&set) {
  FINSER_REQUIRE(!set.empty(), "UniformGrid: empty BoxSet");
  FINSER_REQUIRE(target_boxes_per_cell > 0.0,
                 "UniformGrid: target_boxes_per_cell must be positive");
  bounds_ = set.bounds();
  // Pad bounds slightly so boundary geometry is strictly inside.
  const Vec3 pad = (bounds_.extent() + Vec3{1.0, 1.0, 1.0}) * 1e-6;
  bounds_.lo -= pad;
  bounds_.hi += pad;

  const Vec3 ext = bounds_.extent();
  const double n_boxes = static_cast<double>(set.size());
  const double cells_target = std::max(1.0, n_boxes / target_boxes_per_cell);
  const double vol = std::max(ext.x * ext.y * ext.z, 1e-30);
  const double scale = std::cbrt(cells_target / vol);
  const double* e = &ext.x;
  for (int a = 0; a < 3; ++a) {
    n_[a] = std::clamp(static_cast<int>(std::ceil(e[a] * scale)), 1, 256);
  }
  cell_size_ = {ext.x / n_[0], ext.y / n_[1], ext.z / n_[2]};
  cells_.assign(static_cast<std::size_t>(n_[0]) * static_cast<std::size_t>(n_[1]) *
                    static_cast<std::size_t>(n_[2]),
                {});

  for (std::uint32_t id = 0; id < set.size(); ++id) {
    const Aabb& b = set.box(id);
    int lo_c[3], hi_c[3];
    const double* blo = &b.lo.x;
    const double* bhi = &b.hi.x;
    const double* glo = &bounds_.lo.x;
    const double* cs = &cell_size_.x;
    for (int a = 0; a < 3; ++a) {
      lo_c[a] = std::clamp(static_cast<int>((blo[a] - glo[a]) / cs[a]), 0, n_[a] - 1);
      hi_c[a] = std::clamp(static_cast<int>((bhi[a] - glo[a]) / cs[a]), 0, n_[a] - 1);
    }
    for (int iz = lo_c[2]; iz <= hi_c[2]; ++iz) {
      for (int iy = lo_c[1]; iy <= hi_c[1]; ++iy) {
        for (int ix = lo_c[0]; ix <= hi_c[0]; ++ix) {
          cells_[cell_index(ix, iy, iz)].push_back(id);
        }
      }
    }
  }
  stamp_.assign(set.size(), 0);
}

void UniformGrid::query(const Ray& ray, std::vector<BoxHit>& out) {
  FINSER_OBS_COUNT("geom.grid_queries", 1);
  out.clear();
  const auto entry = bounds_.intersect(ray);
  if (!entry) return;
  ++epoch_;

  // 3-D DDA setup: walk cells from the entry point.
  const double t_start = std::max(entry->t_in, 0.0);
  const Vec3 p = ray.at(t_start + 1e-12);
  const double* pp = &p.x;
  const double* glo = &bounds_.lo.x;
  const double* ghi = &bounds_.hi.x;
  const double* cs = &cell_size_.x;
  const double* dir = &ray.dir.x;

  int cell[3];
  int step[3];
  double t_max[3];
  double t_delta[3];
  for (int a = 0; a < 3; ++a) {
    cell[a] = std::clamp(static_cast<int>((pp[a] - glo[a]) / cs[a]), 0, n_[a] - 1);
    if (dir[a] > 0.0) {
      step[a] = 1;
      const double next = glo[a] + (cell[a] + 1) * cs[a];
      t_max[a] = t_start + (next - pp[a]) / dir[a];
      t_delta[a] = cs[a] / dir[a];
    } else if (dir[a] < 0.0) {
      step[a] = -1;
      const double next = glo[a] + cell[a] * cs[a];
      t_max[a] = t_start + (next - pp[a]) / dir[a];
      t_delta[a] = -cs[a] / dir[a];
    } else {
      step[a] = 0;
      t_max[a] = std::numeric_limits<double>::infinity();
      t_delta[a] = std::numeric_limits<double>::infinity();
    }
  }
  (void)ghi;

  const double t_end = entry->t_out;
  while (true) {
    for (std::uint32_t id : cells_[cell_index(cell[0], cell[1], cell[2])]) {
      if (stamp_[id] == epoch_) continue;
      stamp_[id] = epoch_;
      if (auto iv = set_->box(id).intersect(ray)) {
        out.push_back(BoxHit{id, *iv});
      }
    }
    // Advance to the next cell.
    int axis = 0;
    if (t_max[1] < t_max[axis]) axis = 1;
    if (t_max[2] < t_max[axis]) axis = 2;
    if (t_max[axis] > t_end) break;
    cell[axis] += step[axis];
    if (cell[axis] < 0 || cell[axis] >= n_[axis]) break;
    t_max[axis] += t_delta[axis];
  }

  std::sort(out.begin(), out.end(),
            [](const BoxHit& a, const BoxHit& b) { return a.interval.t_in < b.interval.t_in; });
}

}  // namespace finser::geom
