#include "finser/core/pof_combine.hpp"

#include <algorithm>

namespace finser::core {

CombinedPof combine_eqs_4_to_6(const std::vector<double>& p) {
  double prod = 1.0;
  for (double pi : p) prod *= (1.0 - pi);
  const double tot = 1.0 - prod;

  double seu = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    double term = p[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (j != i) term *= (1.0 - p[j]);
    }
    seu += term;
  }
  return CombinedPof{tot, seu, std::max(tot - seu, 0.0)};
}

std::array<double, kMaxMultiplicity> multiplicity_distribution(
    const std::vector<double>& p) {
  std::array<double, kMaxMultiplicity> dist{};
  dist[0] = 1.0;
  for (double pi : p) {
    // In-place DP, iterating counts downward; the last bin absorbs overflow.
    dist[kMaxMultiplicity - 1] =
        dist[kMaxMultiplicity - 1] + dist[kMaxMultiplicity - 2] * pi;
    for (std::size_t n = kMaxMultiplicity - 2; n >= 1; --n) {
      dist[n] = dist[n] * (1.0 - pi) + dist[n - 1] * pi;
    }
    dist[0] *= (1.0 - pi);
  }
  return dist;
}

}  // namespace finser::core
