#include "finser/core/pof_combine.hpp"

#include <algorithm>

#include "finser/obs/obs.hpp"

namespace finser::core {

CombinedPof combine_eqs_4_to_6(const std::vector<double>& p) {
  double prod = 1.0;
  for (double pi : p) prod *= (1.0 - pi);
  const double tot = 1.0 - prod;

  double seu = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    double term = p[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (j != i) term *= (1.0 - p[j]);
    }
    seu += term;
  }
  return CombinedPof{tot, seu, std::max(tot - seu, 0.0)};
}

std::array<double, kMaxMultiplicity> multiplicity_distribution(
    const std::vector<double>& p) {
  // More cells than histogram bins: counts >= kMaxMultiplicity-1 will be
  // aggregated into the last bin. Track it — clusters and grazing tracks
  // make this reachable, and it must never be a silent truncation.
  if (p.size() > kMaxMultiplicity - 1) {
    FINSER_OBS_COUNT("core.pof.multiplicity_saturated", 1);
  }
  std::array<double, kMaxMultiplicity> dist{};
  dist[0] = 1.0;
  for (double pi : p) {
    // In-place DP, iterating counts downward; the last bin absorbs overflow.
    dist[kMaxMultiplicity - 1] =
        dist[kMaxMultiplicity - 1] + dist[kMaxMultiplicity - 2] * pi;
    for (std::size_t n = kMaxMultiplicity - 2; n >= 1; --n) {
      dist[n] = dist[n] * (1.0 - pi) + dist[n - 1] * pi;
    }
    dist[0] *= (1.0 - pi);
  }
  return dist;
}

std::array<double, kMaxMultiplicity> convolve_multiplicity(
    const std::array<double, kMaxMultiplicity>& dist,
    const std::vector<double>& q) {
  std::array<double, kMaxMultiplicity> out{};
  bool saturated = false;
  for (std::size_t a = 0; a < kMaxMultiplicity; ++a) {
    for (std::size_t b = 0; b < q.size(); ++b) {
      const double mass = dist[a] * q[b];
      const std::size_t n = std::min(a + b, kMaxMultiplicity - 1);
      out[n] += mass;
      if (a + b > kMaxMultiplicity - 1 && mass != 0.0) saturated = true;
    }
  }
  if (saturated) FINSER_OBS_COUNT("core.pof.multiplicity_saturated", 1);
  return out;
}

}  // namespace finser::core
