#include "finser/core/array_engine.hpp"

#include <algorithm>

#include "finser/exec/thread_pool.hpp"
#include "finser/obs/obs.hpp"
#include "finser/phys/collection.hpp"
#include "finser/util/error.hpp"

namespace finser::core {

// --- PofAccumulator ---------------------------------------------------------

void PofAccumulator::add(const CombinedPof& pof) {
  tot_.add(pof.tot);
  seu_.add(pof.seu);
  mbu_.add(pof.mbu);
  wtot_.add(pof.tot, 1.0);
}

void PofAccumulator::add_weighted(const CombinedPof& pof, double weight) {
  // Horvitz–Thompson: the plain channels see weight·pof, so their mean and
  // stderr are exactly the unbiased estimator and its error bar; the
  // weighted channel keeps the raw pair for ESS accounting.
  tot_.add(weight * pof.tot);
  seu_.add(weight * pof.seu);
  mbu_.add(weight * pof.mbu);
  wtot_.add(pof.tot, weight);
}

void PofAccumulator::add_multiplicity(std::size_t n, double mass) {
  // Counts beyond the histogram depth saturate into the last bin — tracked,
  // never silent (clusters make high multiplicities reachable).
  if (n >= kMaxMultiplicity) {
    FINSER_OBS_COUNT("core.pof.multiplicity_saturated", 1);
  }
  mult_[std::min(n, kMaxMultiplicity - 1)] += mass;
}

void PofAccumulator::merge(const PofAccumulator& other) {
  tot_.merge(other.tot_);
  seu_.merge(other.seu_);
  mbu_.merge(other.mbu_);
  wtot_.merge(other.wtot_);
  for (std::size_t n = 0; n < kMaxMultiplicity; ++n) mult_[n] += other.mult_[n];
}

PofEstimate PofAccumulator::finalize(std::size_t strikes,
                                     double hit_fraction) const {
  PofEstimate e;
  e.tot = tot_.mean();
  e.seu = seu_.mean();
  e.mbu = mbu_.mean();
  e.tot_se = tot_.stderr_of_mean();
  e.seu_se = seu_.stderr_of_mean();
  e.mbu_se = mbu_.stderr_of_mean();
  e.hit_fraction = hit_fraction;
  e.strikes = strikes;
  e.ess = wtot_.ess();
  if (strikes > 0) {
    for (std::size_t n = 0; n < kMaxMultiplicity; ++n) {
      e.multiplicity[n] = mult_[n] / static_cast<double>(strikes);
    }
  }
  return e;
}

void PofAccumulator::write(util::ByteWriter& w) const {
  const auto write_stats = [&w](const stats::RunningStats& s) {
    const stats::RunningStats::Raw raw = s.raw();
    w.u64(raw.n);
    w.f64(raw.mean);
    w.f64(raw.m2);
    w.f64(raw.min);
    w.f64(raw.max);
  };
  write_stats(tot_);
  write_stats(seu_);
  write_stats(mbu_);
  const stats::WeightedRunningStats::Raw wraw = wtot_.raw();
  w.u64(wraw.n);
  w.f64(wraw.sum_w);
  w.f64(wraw.sum_w2);
  w.f64(wraw.mean);
  w.f64(wraw.m2);
  for (const double m : mult_) w.f64(m);
}

PofAccumulator PofAccumulator::read(util::ByteReader& r) {
  const auto read_stats = [&r]() {
    stats::RunningStats::Raw raw;
    raw.n = r.u64();
    raw.mean = r.f64();
    raw.m2 = r.f64();
    raw.min = r.f64();
    raw.max = r.f64();
    return stats::RunningStats::from_raw(raw);
  };
  PofAccumulator a;
  a.tot_ = read_stats();
  a.seu_ = read_stats();
  a.mbu_ = read_stats();
  stats::WeightedRunningStats::Raw wraw;
  wraw.n = r.u64();
  wraw.sum_w = r.f64();
  wraw.sum_w2 = r.f64();
  wraw.mean = r.f64();
  wraw.m2 = r.f64();
  a.wtot_ = stats::WeightedRunningStats::from_raw(wraw);
  for (double& m : a.mult_) m = r.f64();
  return a;
}

// --- ArrayMcResult codec ----------------------------------------------------

std::vector<std::uint8_t> encode_result(const ArrayMcResult& result) {
  util::ByteWriter w;
  w.f64_vec(result.vdds);
  w.u64(result.est.size());
  for (const auto& modes : result.est) {
    for (const PofEstimate& e : modes) {
      w.f64(e.tot);
      w.f64(e.seu);
      w.f64(e.mbu);
      w.f64(e.tot_se);
      w.f64(e.seu_se);
      w.f64(e.mbu_se);
      w.f64(e.hit_fraction);
      w.u64(e.strikes);
      w.f64(e.ess);
      for (const double m : e.multiplicity) w.f64(m);
    }
  }
  w.u64(result.units_total);
  w.u64(result.units_used);
  w.u64(result.stopped_early ? 1 : 0);
  return w.take();
}

ArrayMcResult decode_result(util::ByteReader& r) {
  ArrayMcResult result;
  result.vdds = r.f64_vec();
  const std::uint64_t nv = r.u64();
  FINSER_REQUIRE(nv == result.vdds.size(),
                 "decode_result: estimate/vdd count mismatch");
  result.est.resize(nv);
  for (auto& modes : result.est) {
    for (PofEstimate& e : modes) {
      e.tot = r.f64();
      e.seu = r.f64();
      e.mbu = r.f64();
      e.tot_se = r.f64();
      e.seu_se = r.f64();
      e.mbu_se = r.f64();
      e.hit_fraction = r.f64();
      e.strikes = static_cast<std::size_t>(r.u64());
      e.ess = r.f64();
      for (double& m : e.multiplicity) m = r.f64();
    }
  }
  result.units_total = static_cast<std::size_t>(r.u64());
  result.units_used = static_cast<std::size_t>(r.u64());
  result.stopped_early = r.u64() != 0;
  return result;
}

// --- McPartial --------------------------------------------------------------

McPartial McPartial::merge(McPartial a, McPartial b) {
  if (a.acc.empty()) return b;
  for (std::size_t v = 0; v < a.acc.size(); ++v) {
    for (std::size_t m = 0; m < 2; ++m) a.acc[v][m].merge(b.acc[v][m]);
  }
  a.hits += b.hits;
  a.weighted_hits += b.weighted_hits;
  return a;
}

std::vector<std::uint8_t> McPartial::encode() const {
  util::ByteWriter w;
  w.u64(acc.size());
  w.u64(hits);
  w.f64(weighted_hits);
  for (const auto& modes : acc) {
    modes[kModeNominal].write(w);
    modes[kModeWithPv].write(w);
  }
  return w.take();
}

McPartial McPartial::decode(const std::vector<std::uint8_t>& blob,
                            std::size_t expected_nv) {
  util::ByteReader r(blob);
  const std::uint64_t nv = r.u64();
  FINSER_REQUIRE(nv == expected_nv, "McPartial: vdd count mismatch in blob");
  McPartial p(static_cast<std::size_t>(nv));
  p.hits = static_cast<std::size_t>(r.u64());
  p.weighted_hits = r.f64();
  for (auto& modes : p.acc) {
    modes[kModeNominal] = PofAccumulator::read(r);
    modes[kModeWithPv] = PofAccumulator::read(r);
  }
  FINSER_REQUIRE(r.exhausted(), "McPartial: trailing bytes in blob");
  return p;
}

// --- ArrayEngine ------------------------------------------------------------

ArrayEngine::WorkerScratch::WorkerScratch(const sram::ArrayLayout& layout,
                                          const phys::Transporter::Config& tc)
    : transporter(layout.fins(), tc),
      cell_charges(layout.cell_count(), sram::StrikeCharges{}) {}

ArrayEngine::ArrayEngine(const sram::ArrayLayout& layout,
                         const sram::CellSoftErrorModel& model)
    : layout_(&layout), model_(&model), vdds_(model.vdds()) {}

ArrayEngine::~ArrayEngine() = default;

double ArrayEngine::sampled_area_nm2() const {
  return (layout_->width_nm() + 2.0 * source_margin_nm()) *
         (layout_->height_nm() + 2.0 * source_margin_nm());
}

void ArrayEngine::begin_strike(WorkerScratch& ws) const {
  for (const std::uint32_t c : ws.touched_cells) {
    ws.cell_charges[c] = sram::StrikeCharges{};
  }
  ws.touched_cells.clear();
}

void ArrayEngine::add_deposits(const phys::TrackResult& track,
                               WorkerScratch& ws) const {
  for (const phys::FinDeposit& dep : track.deposits) {
    const sram::FinSite& site = layout_->site(dep.fin_id);
    const bool bit = layout_->bit(site.cell_row, site.cell_col);
    const auto idx = sram::ArrayLayout::strike_index(site.role, bit);
    if (!idx) continue;  // Transistor not sensitive in this data state.
    const std::uint32_t cell =
        site.cell_row * static_cast<std::uint32_t>(layout_->cols()) +
        site.cell_col;
    sram::StrikeCharges& ch = ws.cell_charges[cell];
    if (!ch.any()) ws.touched_cells.push_back(cell);
    const double q_fc = phys::charge_fc_from_pairs(dep.eh_pairs) *
                        layout_->collection_efficiency(dep.fin_id);
    switch (*idx) {
      case 0: ch.i1_fc += q_fc; break;
      case 1: ch.i2_fc += q_fc; break;
      case 2: ch.i3_fc += q_fc; break;
      default: break;
    }
  }
}

void ArrayEngine::score_strike(WorkerScratch& ws, McPartial& part) const {
  if (sram::ClusterPofSurface* surface = cluster_surface()) {
    score_clustered(*surface, ws, part, 1.0, /*weighted=*/false);
    return;
  }
  const std::size_t nv = vdds_.size();
  for (std::size_t v = 0; v < nv; ++v) {
    const sram::PofTable& table = model_->at_vdd(vdds_[v]);
    for (std::size_t mode = 0; mode < 2; ++mode) {
      const bool with_pv = (mode == kModeWithPv);
      ws.pofs.clear();
      for (const std::uint32_t c : ws.touched_cells) {
        const double p = table.pof(ws.cell_charges[c], with_pv);
        if (p > 0.0) ws.pofs.push_back(p);
      }
      const CombinedPof combined = ws.pofs.empty()
                                       ? CombinedPof{0.0, 0.0, 0.0}
                                       : combine_eqs_4_to_6(ws.pofs);
      PofAccumulator& a = part.acc[v][mode];
      a.add(combined);
      if (!ws.pofs.empty()) {
        const auto dist = multiplicity_distribution(ws.pofs);
        for (std::size_t n = 0; n < kMaxMultiplicity; ++n) {
          a.add_multiplicity(n, dist[n]);
        }
      } else {
        a.add_multiplicity(0, 1.0);
      }
    }
  }
}

void ArrayEngine::score_weighted_history(WorkerScratch& ws, McPartial& part,
                                         double weight) const {
  if (sram::ClusterPofSurface* surface = cluster_surface()) {
    score_clustered(*surface, ws, part, weight, /*weighted=*/true);
    return;
  }
  const std::size_t nv = vdds_.size();
  for (std::size_t v = 0; v < nv; ++v) {
    const sram::PofTable& table = model_->at_vdd(vdds_[v]);
    for (std::size_t mode = 0; mode < 2; ++mode) {
      const bool with_pv = (mode == kModeWithPv);
      ws.pofs.clear();
      for (const std::uint32_t c : ws.touched_cells) {
        const double p = table.pof(ws.cell_charges[c], with_pv);
        if (p > 0.0) ws.pofs.push_back(p);
      }
      const CombinedPof combined = ws.pofs.empty()
                                       ? CombinedPof{}
                                       : combine_eqs_4_to_6(ws.pofs);
      PofAccumulator& a = part.acc[v][mode];
      // Weighted (Horvitz–Thompson) estimator; also feeds the ESS channel.
      a.add_weighted(combined, weight);
      if (!ws.pofs.empty()) {
        const auto dist = multiplicity_distribution(ws.pofs);
        // The n >= 1 bins carry the interaction weight; the no-flip bin
        // absorbs the rest so each history still contributes unit mass.
        double flipped_mass = 0.0;
        for (std::size_t n = 1; n < kMaxMultiplicity; ++n) {
          a.add_multiplicity(n, weight * dist[n]);
          flipped_mass += weight * dist[n];
        }
        a.add_multiplicity(0, 1.0 - flipped_mass);
      } else {
        a.add_multiplicity(0, 1.0);
      }
    }
  }
}

void ArrayEngine::score_clustered(sram::ClusterPofSurface& surface,
                                  WorkerScratch& ws, McPartial& part,
                                  double weight, bool weighted) const {
  const std::size_t tr = surface.tile_rows();
  const std::size_t tc = surface.tile_cols();
  const auto cols = static_cast<std::uint32_t>(layout_->cols());

  // Group the touched cells by layout tile, cells ascending within a tile —
  // the canonical order the surface keys expect (cell-id order within a
  // tile is local-index order). A single std::sort over (tile, cell) pairs
  // does both; strikes touch a handful of cells, so this is cheap.
  ws.tile_order.clear();
  for (const std::uint32_t c : ws.touched_cells) {
    const std::uint32_t row = c / cols;
    const std::uint32_t col = c % cols;
    ws.tile_order.emplace_back(
        sram::cluster_tile_id(row, col, layout_->cols(), tr, tc), c);
  }
  std::sort(ws.tile_order.begin(), ws.tile_order.end());

  const std::size_t nv = vdds_.size();
  for (std::size_t v = 0; v < nv; ++v) {
    const sram::PofTable& table = model_->at_vdd(vdds_[v]);
    for (std::size_t mode = 0; mode < 2; ++mode) {
      const bool with_pv = (mode == kModeWithPv);
      // Singleton tiles keep the independent per-cell LUT arithmetic
      // (identical to the 1x1 path for those cells); multi-cell tiles each
      // contribute one joint flip-count distribution from the surface.
      ws.pofs.clear();
      std::array<double, kMaxMultiplicity> dist{};
      dist[0] = 1.0;
      bool any_joint = false;
      for (std::size_t i = 0; i < ws.tile_order.size();) {
        std::size_t j = i + 1;
        while (j < ws.tile_order.size() &&
               ws.tile_order[j].first == ws.tile_order[i].first) {
          ++j;
        }
        if (j - i == 1) {
          const double p =
              table.pof(ws.cell_charges[ws.tile_order[i].second], with_pv);
          if (p > 0.0) ws.pofs.push_back(p);
        } else {
          ws.cluster_query.clear();
          for (std::size_t k = i; k < j; ++k) {
            const std::uint32_t c = ws.tile_order[k].second;
            ws.cluster_query.push_back(sram::ClusterPofSurface::CellCharge{
                sram::cluster_local_index(c / cols, c % cols, tr, tc),
                ws.cell_charges[c]});
          }
          surface.flip_count_distribution(vdds_[v], with_pv, ws.cluster_query,
                                          ws.cluster_dist);
          dist = convolve_multiplicity(dist, ws.cluster_dist);
          any_joint = true;
        }
        i = j;
      }
      if (!ws.pofs.empty()) {
        const auto singles = multiplicity_distribution(ws.pofs);
        ws.cluster_dist.assign(singles.begin(), singles.end());
        dist = convolve_multiplicity(dist, ws.cluster_dist);
      }
      const double tot = 1.0 - dist[0];
      const double seu = dist[1];
      const CombinedPof combined{tot, seu, std::max(tot - seu, 0.0)};
      PofAccumulator& a = part.acc[v][mode];
      if (!weighted) {
        a.add(combined);
        if (!ws.pofs.empty() || any_joint) {
          for (std::size_t n = 0; n < kMaxMultiplicity; ++n) {
            a.add_multiplicity(n, dist[n]);
          }
        } else {
          a.add_multiplicity(0, 1.0);
        }
      } else {
        a.add_weighted(combined, weight);
        if (!ws.pofs.empty() || any_joint) {
          double flipped_mass = 0.0;
          for (std::size_t n = 1; n < kMaxMultiplicity; ++n) {
            a.add_multiplicity(n, weight * dist[n]);
            flipped_mass += weight * dist[n];
          }
          a.add_multiplicity(0, 1.0 - flipped_mass);
        } else {
          a.add_multiplicity(0, 1.0);
        }
      }
    }
  }
}

ArrayMcResult ArrayEngine::run_point(const EnergyPoint& point,
                                     std::uint64_t seed,
                                     const exec::ProgressSink& progress,
                                     const ckpt::RunOptions& run_opts) const {
  FINSER_REQUIRE(point.e_mev > 0.0,
                 std::string(kind()) + "::run: non-positive energy");
  obs::ScopedSpan run_span(span_name());
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter(runs_counter()).add(1);
    reg.counter(units_counter()).add(units());
  }

  const std::size_t nv = vdds_.size();
  phys::Transporter::Config tc;
  tc.straggling = straggling();

  exec::ThreadPool pool(threads());
  std::vector<std::unique_ptr<WorkerScratch>> workers(pool.thread_count());
  progress.start_phase(unit_label(), units());

  // Chunk i consumes stats::Rng::stream(seed, i) and nothing else, and the
  // partials merge in chunk-index order — so the result is bit-identical
  // for any thread count, and a resumed run (which replays only the missing
  // chunks and re-reduces the full set) for any interruption pattern.
  const auto process_chunk = [&](const exec::ChunkRange& r) -> McPartial {
    std::unique_ptr<WorkerScratch>& slot = workers[r.worker];
    if (!slot) slot = std::make_unique<WorkerScratch>(*layout_, tc);
    WorkerScratch& ws = *slot;
    stats::Rng rng = stats::Rng::stream(seed, r.index);
    McPartial part(nv);
    simulate_chunk(r, point, seed, rng, ws, part);
    progress.tick(r.end - r.begin);
    return part;
  };

  // Unit-space mapping of ckpt work units onto strike chunks (the last
  // chunk may be ragged).
  const auto chunk_for_unit = [&](const exec::ChunkRange& u) {
    return exec::ChunkRange{u.index, u.index * chunk_size(),
                            std::min(units(), (u.index + 1) * chunk_size()),
                            u.worker};
  };

  const stats::CiStopConfig& ci = ci_stop();
  McPartial total;
  std::size_t used_units = units();
  bool stopped_early = false;
  if (!ci.enabled()) {
    // Fixed-budget paths, untouched: with CI stopping disabled the driver is
    // byte-identical to its pre-adaptive form.
    if (!run_opts.active()) {
      total = exec::parallel_reduce<McPartial>(pool, units(), chunk_size(),
                                               process_chunk, McPartial::merge);
    } else {
      const std::size_t n_chunks = (units() + chunk_size() - 1) / chunk_size();
      const std::uint64_t fp = point_fingerprint(point, seed);
      const ckpt::UnitRunResult unit_result = ckpt::run_units(
          pool, n_chunks, fp, run_opts, [&](const exec::ChunkRange& u) {
            return process_chunk(chunk_for_unit(u)).encode();
          });
      std::vector<McPartial> parts;
      parts.reserve(unit_result.blobs.size());
      for (const auto& blob : unit_result.blobs) {
        parts.push_back(McPartial::decode(blob, nv));
      }
      total = exec::reduce_pairwise(std::move(parts), McPartial::merge);
    }
  } else {
    // Adaptive path: chunks run in deterministic geometric rounds; after
    // each boundary the merged prefix decides whether the remaining budget
    // can be skipped. The decision depends only on the chunk blobs (merged
    // pairwise in index order), so it is identical at any thread count, any
    // worker count, and across kill/resume — the same invariance class as
    // the estimates themselves.
    const std::size_t n_chunks = (units() + chunk_size() - 1) / chunk_size();
    const std::uint64_t fp = point_fingerprint(point, seed);
    const ckpt::AdaptiveSchedule schedule{ci.min_chunks, ci.growth};
    const auto converged = [&](std::size_t done,
                               const std::vector<std::vector<std::uint8_t>>&
                                   blobs) {
      std::vector<McPartial> parts;
      parts.reserve(done);
      for (std::size_t i = 0; i < done; ++i) {
        parts.push_back(McPartial::decode(blobs[i], nv));
      }
      const McPartial prefix =
          exec::reduce_pairwise(std::move(parts), McPartial::merge);
      double worst = 0.0;
      for (const auto& modes : prefix.acc) {
        for (const PofAccumulator& a : modes) {
          worst = std::max(worst, a.rel_halfwidth());
        }
      }
      return worst <= ci.target;
    };
    const ckpt::UnitRunResult unit_result = ckpt::run_units_adaptive(
        pool, n_chunks, fp, run_opts, schedule,
        [&](const exec::ChunkRange& u) {
          return process_chunk(chunk_for_unit(u)).encode();
        },
        converged);
    std::vector<McPartial> parts;
    parts.reserve(unit_result.blobs.size());
    for (const auto& blob : unit_result.blobs) {
      parts.push_back(McPartial::decode(blob, nv));
    }
    total = exec::reduce_pairwise(std::move(parts), McPartial::merge);
    used_units = std::min(units(), unit_result.completed * chunk_size());
    stopped_early = unit_result.stopped_early;
    if (obs::enabled()) {
      obs::Registry& reg = obs::Registry::global();
      if (stopped_early) reg.counter("core.mc.vr.stopped_early").add(1);
      reg.counter("core.mc.vr.units_saved").add(units() - used_units);
    }
  }

  ArrayMcResult result;
  result.vdds = vdds_;
  result.est.resize(nv);
  result.units_total = units();
  result.units_used = used_units;
  result.stopped_early = stopped_early;
  // The weighted hit mass is the unbiased numerator under importance
  // sampling and sums to exactly `hits` for unit weights, so the uniform
  // estimator's value is unchanged bit-for-bit.
  const double hit_fraction =
      total.weighted_hits / static_cast<double>(used_units);
  for (std::size_t v = 0; v < nv; ++v) {
    for (std::size_t mode = 0; mode < 2; ++mode) {
      result.est[v][mode] =
          total.acc[v][mode].finalize(used_units, hit_fraction);
      FINSER_OBS_RECORD("core.mc.vr.ess",
                        static_cast<std::uint64_t>(result.est[v][mode].ess));
    }
  }
  return result;
}

void hash_layout(util::Fnv1a& h, const sram::ArrayLayout& layout) {
  h.u64(layout.rows());
  h.u64(layout.cols());
  h.f64(layout.width_nm()).f64(layout.height_nm());
  for (std::size_t row = 0; row < layout.rows(); ++row) {
    for (std::size_t col = 0; col < layout.cols(); ++col) {
      h.u64(layout.bit(row, col) ? 1 : 0);
    }
  }
  return;
}

}  // namespace finser::core
