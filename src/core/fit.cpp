#include "finser/core/fit.hpp"

#include "finser/util/error.hpp"
#include "finser/util/units.hpp"

namespace finser::core {

FitResult integrate_fit(const std::vector<env::EnergyBin>& bins,
                        const std::vector<PofEstimate>& pof_per_bin,
                        double lx_nm, double ly_nm) {
  FINSER_REQUIRE(bins.size() == pof_per_bin.size(),
                 "integrate_fit: bin/POF count mismatch");
  FINSER_REQUIRE(lx_nm > 0.0 && ly_nm > 0.0, "integrate_fit: non-positive area");

  const double area_cm2 = util::nm_to_cm(lx_nm) * util::nm_to_cm(ly_nm);

  double tot_per_s = 0.0;
  double seu_per_s = 0.0;
  double mbu_per_s = 0.0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double weight = bins[i].integral_flux_per_cm2_s * area_cm2;
    tot_per_s += pof_per_bin[i].tot * weight;
    seu_per_s += pof_per_bin[i].seu * weight;
    mbu_per_s += pof_per_bin[i].mbu * weight;
  }

  FitResult out;
  out.fit_tot = util::per_hour_to_fit(tot_per_s * 3600.0);
  out.fit_seu = util::per_hour_to_fit(seu_per_s * 3600.0);
  out.fit_mbu = util::per_hour_to_fit(mbu_per_s * 3600.0);
  return out;
}

}  // namespace finser::core
