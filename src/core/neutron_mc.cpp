#include "finser/core/neutron_mc.hpp"

#include "finser/stats/direction.hpp"
#include "finser/util/error.hpp"
#include "finser/util/units.hpp"

namespace finser::core {

NeutronArrayMc::NeutronArrayMc(const sram::ArrayLayout& layout,
                               const sram::CellSoftErrorModel& model,
                               const NeutronMcConfig& config)
    : ArrayEngine(layout, model), config_(config) {
  FINSER_REQUIRE(config_.histories > 0, "NeutronArrayMc: need >= 1 history");
  FINSER_REQUIRE(config_.chunk > 0, "NeutronArrayMc: chunk must be positive");
  FINSER_REQUIRE(config_.interaction_depth_um > 0.0,
                 "NeutronArrayMc: interaction depth must be positive");
  FINSER_REQUIRE(!model.tables.empty(), "NeutronArrayMc: empty cell model");
}

/// Checkpoint fingerprint — see ArrayMc::point_fingerprint for the inclusion
/// policy. The point's species is not hashed: every history is a neutron.
std::uint64_t NeutronArrayMc::point_fingerprint(const EnergyPoint& point,
                                                std::uint64_t seed) const {
  util::Fnv1a h;
  h.str("finser.neutron_mc.ckpt.v2");
  h.u64(model().config_fingerprint);
  h.f64(point.e_mev);
  h.u64(seed);
  h.u64(config_.histories);
  h.u64(config_.chunk);
  h.u64(static_cast<std::uint64_t>(config_.angular));
  h.u64(static_cast<std::uint64_t>(config_.straggling));
  h.f64(config_.interaction_depth_um);
  h.f64(config_.source_margin_nm);
  h.f64(config_.ci.target);
  h.u64(config_.ci.min_chunks);
  h.f64(config_.ci.growth);
  hash_layout(h, layout());
  return h.hash();
}

void NeutronArrayMc::simulate_chunk(const exec::ChunkRange& r,
                                    const EnergyPoint& point,
                                    std::uint64_t /*seed*/, stats::Rng& rng,
                                    WorkerScratch& ws, McPartial& part) const {
  const double e_n_mev = point.e_mev;

  // Pure functions of (config, layout, energy) — recomputing them per chunk
  // instead of per run is bit-exact and keeps the chunk self-contained.
  const geom::Aabb fin_bounds = layout().bounds();
  const double z_top = fin_bounds.hi.z;
  const double z_bottom = z_top - util::um_to_nm(config_.interaction_depth_um);
  const double x_lo = -config_.source_margin_nm;
  const double x_hi = layout().width_nm() + config_.source_margin_nm;
  const double y_lo = -config_.source_margin_nm;
  const double y_hi = layout().height_nm() + config_.source_margin_nm;

  const double sigma_per_cm = interactions_.macroscopic_per_cm(e_n_mev);

  for (std::size_t h = r.begin; h < r.end; ++h) {
    // Incident neutron on the source plane just above the fins.
    geom::Vec3 dir = config_.angular == SourceAngularLaw::kIsotropic
                         ? stats::isotropic_hemisphere_down(rng)
                         : stats::cosine_hemisphere_down(rng);
    if (dir.z >= -1e-6) dir.z = -1e-6;
    dir = dir.normalized();
    const geom::Vec3 entry{rng.uniform(x_lo, x_hi), rng.uniform(y_lo, y_hi),
                           z_top};

    // Forced interaction along the chord through the slab.
    const double chord_nm = (z_top - z_bottom) / (-dir.z);
    const double weight = sigma_per_cm * util::nm_to_cm(chord_nm);
    const geom::Vec3 interaction_point = entry + dir * (rng.uniform() * chord_nm);

    const phys::NeutronInteraction interaction =
        interactions_.sample(e_n_mev, dir, rng);

    // Transport every charged secondary, accumulating per-cell charges.
    begin_strike(ws);
    for (const phys::NeutronSecondary& sec : interaction.secondaries) {
      if (sec.energy_mev <= 1e-5) continue;
      const geom::Ray ray{interaction_point, sec.direction};
      const phys::TrackResult track =
          ws.transporter.transport(ray, sec.species, sec.energy_mev, rng);
      add_deposits(track, ws);
    }
    if (!ws.touched_cells.empty()) {
      ++part.hits;
      // Per-history hit mass for the diagnostic hit fraction: the history
      // itself is analog (only the interaction is forced), so unit mass.
      part.weighted_hits += 1.0;
    }

    score_weighted_history(ws, part, weight);
  }
}

}  // namespace finser::core
