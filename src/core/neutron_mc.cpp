#include "finser/core/neutron_mc.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "finser/core/pof_combine.hpp"
#include "finser/exec/thread_pool.hpp"
#include "finser/obs/obs.hpp"
#include "finser/phys/collection.hpp"
#include "finser/stats/direction.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fingerprint.hpp"
#include "finser/util/units.hpp"
#include "mc_partial.hpp"

namespace finser::core {

namespace {

phys::Transporter::Config transporter_config(const NeutronMcConfig& cfg) {
  phys::Transporter::Config tc;
  tc.straggling = cfg.straggling;
  return tc;
}

/// Per-worker mutable state (see array_mc.cpp — same rationale).
struct WorkerState {
  phys::Transporter transporter;
  std::vector<sram::StrikeCharges> cell_charges;
  std::vector<std::uint32_t> touched_cells;
  std::vector<double> pofs;

  WorkerState(const sram::ArrayLayout& layout,
              const phys::Transporter::Config& tc)
      : transporter(layout.fins(), tc),
        cell_charges(layout.cell_count(), sram::StrikeCharges{}) {}
};

/// Checkpoint fingerprint — see array_mc.cpp for the inclusion policy.
std::uint64_t run_fingerprint(const NeutronMcConfig& cfg,
                              const sram::ArrayLayout& layout,
                              const sram::CellSoftErrorModel& model,
                              double e_n_mev, std::uint64_t seed) {
  util::Fnv1a h;
  h.str("finser.neutron_mc.ckpt.v1");
  h.u64(model.config_fingerprint);
  h.f64(e_n_mev);
  h.u64(seed);
  h.u64(cfg.histories);
  h.u64(cfg.chunk);
  h.u64(static_cast<std::uint64_t>(cfg.angular));
  h.u64(static_cast<std::uint64_t>(cfg.straggling));
  h.f64(cfg.interaction_depth_um);
  h.f64(cfg.source_margin_nm);
  h.u64(layout.rows());
  h.u64(layout.cols());
  h.f64(layout.width_nm()).f64(layout.height_nm());
  for (std::size_t row = 0; row < layout.rows(); ++row) {
    for (std::size_t col = 0; col < layout.cols(); ++col) {
      h.u64(layout.bit(row, col) ? 1 : 0);
    }
  }
  return h.hash();
}

}  // namespace

NeutronArrayMc::NeutronArrayMc(const sram::ArrayLayout& layout,
                               const sram::CellSoftErrorModel& model,
                               const NeutronMcConfig& config)
    : layout_(&layout), model_(&model), config_(config) {
  FINSER_REQUIRE(config_.histories > 0, "NeutronArrayMc: need >= 1 history");
  FINSER_REQUIRE(config_.chunk > 0, "NeutronArrayMc: chunk must be positive");
  FINSER_REQUIRE(config_.interaction_depth_um > 0.0,
                 "NeutronArrayMc: interaction depth must be positive");
  FINSER_REQUIRE(!model.tables.empty(), "NeutronArrayMc: empty cell model");
}

double NeutronArrayMc::sampled_area_nm2() const {
  return (layout_->width_nm() + 2.0 * config_.source_margin_nm) *
         (layout_->height_nm() + 2.0 * config_.source_margin_nm);
}

ArrayMcResult NeutronArrayMc::run(double e_n_mev, std::uint64_t seed,
                                  const exec::ProgressSink& progress,
                                  const ckpt::RunOptions& run_opts) const {
  FINSER_REQUIRE(e_n_mev > 0.0, "NeutronArrayMc::run: non-positive energy");
  obs::ScopedSpan run_span("core.neutron_mc.run");
  FINSER_OBS_COUNT("core.neutron_mc.runs", 1);
  FINSER_OBS_COUNT("core.neutron_mc.histories", config_.histories);

  const std::vector<double> vdds = model_->vdds();
  const std::size_t nv = vdds.size();

  const geom::Aabb fin_bounds = layout_->bounds();
  const double z_top = fin_bounds.hi.z;
  const double z_bottom = z_top - util::um_to_nm(config_.interaction_depth_um);
  const double x_lo = -config_.source_margin_nm;
  const double x_hi = layout_->width_nm() + config_.source_margin_nm;
  const double y_lo = -config_.source_margin_nm;
  const double y_hi = layout_->height_nm() + config_.source_margin_nm;

  const double sigma_per_cm = interactions_.macroscopic_per_cm(e_n_mev);

  const phys::Transporter::Config tc = transporter_config(config_);

  exec::ThreadPool pool(config_.threads);
  std::vector<std::unique_ptr<WorkerState>> workers(pool.thread_count());
  progress.start_phase("histories", config_.histories);

  const auto process_chunk = [&](const exec::ChunkRange& r) -> McPartial {
        std::unique_ptr<WorkerState>& slot = workers[r.worker];
        if (!slot) slot = std::make_unique<WorkerState>(*layout_, tc);
        WorkerState& ws = *slot;
        stats::Rng rng = stats::Rng::stream(seed, r.index);
        McPartial part(nv);

        for (std::size_t h = r.begin; h < r.end; ++h) {
          // Incident neutron on the source plane just above the fins.
          geom::Vec3 dir = config_.angular == SourceAngularLaw::kIsotropic
                               ? stats::isotropic_hemisphere_down(rng)
                               : stats::cosine_hemisphere_down(rng);
          if (dir.z >= -1e-6) dir.z = -1e-6;
          dir = dir.normalized();
          const geom::Vec3 entry{rng.uniform(x_lo, x_hi),
                                 rng.uniform(y_lo, y_hi), z_top};

          // Forced interaction along the chord through the slab.
          const double chord_nm = (z_top - z_bottom) / (-dir.z);
          const double weight = sigma_per_cm * util::nm_to_cm(chord_nm);
          const geom::Vec3 point = entry + dir * (rng.uniform() * chord_nm);

          const phys::NeutronInteraction interaction =
              interactions_.sample(e_n_mev, dir, rng);

          // Transport every charged secondary, accumulating per-cell charges.
          for (const std::uint32_t c : ws.touched_cells) {
            ws.cell_charges[c] = sram::StrikeCharges{};
          }
          ws.touched_cells.clear();

          for (const phys::NeutronSecondary& sec : interaction.secondaries) {
            if (sec.energy_mev <= 1e-5) continue;
            const geom::Ray ray{point, sec.direction};
            const phys::TrackResult track =
                ws.transporter.transport(ray, sec.species, sec.energy_mev, rng);
            for (const phys::FinDeposit& dep : track.deposits) {
              const sram::FinSite& site = layout_->site(dep.fin_id);
              const bool bit = layout_->bit(site.cell_row, site.cell_col);
              const auto idx = sram::ArrayLayout::strike_index(site.role, bit);
              if (!idx) continue;
              const std::uint32_t cell =
                  site.cell_row * static_cast<std::uint32_t>(layout_->cols()) +
                  site.cell_col;
              sram::StrikeCharges& ch = ws.cell_charges[cell];
              if (!ch.any()) ws.touched_cells.push_back(cell);
              const double q_fc = phys::charge_fc_from_pairs(dep.eh_pairs) *
                                  layout_->collection_efficiency(dep.fin_id);
              switch (*idx) {
                case 0: ch.i1_fc += q_fc; break;
                case 1: ch.i2_fc += q_fc; break;
                case 2: ch.i3_fc += q_fc; break;
                default: break;
              }
            }
          }
          if (!ws.touched_cells.empty()) ++part.hits;

          for (std::size_t v = 0; v < nv; ++v) {
            const sram::PofTable& table = model_->at_vdd(vdds[v]);
            for (std::size_t mode = 0; mode < 2; ++mode) {
              const bool with_pv = (mode == kModeWithPv);
              ws.pofs.clear();
              for (const std::uint32_t c : ws.touched_cells) {
                const double p = table.pof(ws.cell_charges[c], with_pv);
                if (p > 0.0) ws.pofs.push_back(p);
              }
              const CombinedPof combined = ws.pofs.empty()
                                               ? CombinedPof{}
                                               : combine_eqs_4_to_6(ws.pofs);
              PofAccumulator& a = part.acc[v][mode];
              // Weighted per-incident-neutron estimator.
              a.add(CombinedPof{weight * combined.tot, weight * combined.seu,
                                weight * combined.mbu});
              if (!ws.pofs.empty()) {
                const auto dist = multiplicity_distribution(ws.pofs);
                // The n >= 1 bins carry the interaction weight; the no-flip
                // bin absorbs the rest so each history still contributes unit
                // mass.
                double flipped_mass = 0.0;
                for (std::size_t n = 1; n < kMaxMultiplicity; ++n) {
                  a.add_multiplicity(n, weight * dist[n]);
                  flipped_mass += weight * dist[n];
                }
                a.add_multiplicity(0, 1.0 - flipped_mass);
              } else {
                a.add_multiplicity(0, 1.0);
              }
            }
          }
        }

        progress.tick(r.end - r.begin);
        return part;
  };

  McPartial total;
  if (!run_opts.active()) {
    total = exec::parallel_reduce<McPartial>(pool, config_.histories,
                                             config_.chunk, process_chunk,
                                             McPartial::merge);
  } else {
    const std::size_t n_chunks =
        (config_.histories + config_.chunk - 1) / config_.chunk;
    const std::uint64_t fp =
        run_fingerprint(config_, *layout_, *model_, e_n_mev, seed);
    const ckpt::UnitRunResult units = ckpt::run_units(
        pool, n_chunks, fp, run_opts, [&](const exec::ChunkRange& u) {
          const exec::ChunkRange r{
              u.index, u.index * config_.chunk,
              std::min(config_.histories, (u.index + 1) * config_.chunk),
              u.worker};
          return process_chunk(r).encode();
        });
    std::vector<McPartial> parts;
    parts.reserve(units.blobs.size());
    for (const auto& blob : units.blobs) {
      parts.push_back(McPartial::decode(blob, nv));
    }
    total = exec::reduce_pairwise(std::move(parts), McPartial::merge);
  }

  ArrayMcResult result;
  result.vdds = vdds;
  result.est.resize(nv);
  const double hit_fraction =
      static_cast<double>(total.hits) / static_cast<double>(config_.histories);
  for (std::size_t v = 0; v < nv; ++v) {
    for (std::size_t mode = 0; mode < 2; ++mode) {
      result.est[v][mode] =
          total.acc[v][mode].finalize(config_.histories, hit_fraction);
    }
  }
  return result;
}

}  // namespace finser::core
