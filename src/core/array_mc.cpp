#include "finser/core/array_mc.hpp"

#include <algorithm>
#include <cmath>

#include "finser/core/pof_combine.hpp"
#include "finser/phys/collection.hpp"
#include "finser/stats/direction.hpp"
#include "finser/stats/summary.hpp"
#include "finser/util/error.hpp"

namespace finser::core {

namespace {

phys::Transporter::Config transporter_config(const ArrayMcConfig& cfg) {
  phys::Transporter::Config tc;
  tc.straggling = cfg.straggling;
  return tc;
}

}  // namespace

ArrayMc::ArrayMc(const sram::ArrayLayout& layout,
                 const sram::CellSoftErrorModel& model, const ArrayMcConfig& config)
    : layout_(&layout), model_(&model), config_(config),
      transporter_(layout.fins(), transporter_config(config)) {
  FINSER_REQUIRE(config_.strikes > 0, "ArrayMc: need at least one strike");
  FINSER_REQUIRE(!model.tables.empty(), "ArrayMc: empty cell model");
  if (config_.angular == SourceAngularLaw::kBeam) {
    FINSER_REQUIRE(config_.beam_direction.z < 0.0,
                   "ArrayMc: beam direction must point downward");
    beam_dir_ = config_.beam_direction.normalized();
  }
  cell_charges_.assign(layout.cell_count(), sram::StrikeCharges{});
}

double ArrayMc::sampled_area_nm2() const {
  return (layout_->width_nm() + 2.0 * config_.source_margin_nm) *
         (layout_->height_nm() + 2.0 * config_.source_margin_nm);
}

ArrayMcResult ArrayMc::run(phys::Species species, double e_mev, stats::Rng& rng) {
  FINSER_REQUIRE(e_mev > 0.0, "ArrayMc::run: non-positive energy");

  const std::vector<double> vdds = model_->vdds();
  const std::size_t nv = vdds.size();

  // Accumulators: [vdd][mode] × {tot, seu, mbu} + multiplicity sums.
  std::vector<std::array<std::array<stats::RunningStats, 3>, 2>> acc(nv);
  std::vector<std::array<std::array<double, kMaxMultiplicity>, 2>> mult_acc(
      nv, {{{}, {}}});
  std::size_t hits = 0;

  const geom::Aabb fin_bounds = layout_->bounds();
  const double z_source = fin_bounds.hi.z + config_.source_height_nm;
  const double x_lo = -config_.source_margin_nm;
  const double x_hi = layout_->width_nm() + config_.source_margin_nm;
  const double y_lo = -config_.source_margin_nm;
  const double y_hi = layout_->height_nm() + config_.source_margin_nm;

  std::vector<double> pofs;  // Per-touched-cell POFs of the current strike.

  // Stratification grid (jittered-grid sampling over the source plane).
  const auto strata = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(config_.strikes))));

  for (std::size_t s = 0; s < config_.strikes; ++s) {
    // Step 1 (paper Sec. 5.1): random particle position and direction.
    geom::Ray ray;
    if (config_.position == SourcePositionSampling::kStratified) {
      const std::size_t ix = s % strata;
      const std::size_t iy = (s / strata) % strata;
      const double fx = (static_cast<double>(ix) + rng.uniform()) /
                        static_cast<double>(strata);
      const double fy = (static_cast<double>(iy) + rng.uniform()) /
                        static_cast<double>(strata);
      ray.origin = {x_lo + (x_hi - x_lo) * fx, y_lo + (y_hi - y_lo) * fy,
                    z_source};
    } else {
      ray.origin = {rng.uniform(x_lo, x_hi), rng.uniform(y_lo, y_hi), z_source};
    }
    switch (config_.angular) {
      case SourceAngularLaw::kIsotropic:
        ray.dir = stats::isotropic_hemisphere_down(rng);
        break;
      case SourceAngularLaw::kCosine:
        ray.dir = stats::cosine_hemisphere_down(rng);
        break;
      case SourceAngularLaw::kBeam:
        ray.dir = beam_dir_;
        break;
    }
    if (ray.dir.z == 0.0) ray.dir.z = -1e-12;  // Guard true horizontals.

    // Step 2-3: transport, accumulate sensitive-transistor charges per cell.
    const phys::TrackResult track = transporter_.transport(ray, species, e_mev, rng);

    for (const std::uint32_t c : touched_cells_) {
      cell_charges_[c] = sram::StrikeCharges{};
    }
    touched_cells_.clear();

    for (const phys::FinDeposit& dep : track.deposits) {
      const sram::FinSite& site = layout_->site(dep.fin_id);
      const bool bit = layout_->bit(site.cell_row, site.cell_col);
      const auto idx = sram::ArrayLayout::strike_index(site.role, bit);
      if (!idx) continue;  // Transistor not sensitive in this data state.
      const std::uint32_t cell =
          site.cell_row * static_cast<std::uint32_t>(layout_->cols()) +
          site.cell_col;
      sram::StrikeCharges& ch = cell_charges_[cell];
      if (!ch.any()) touched_cells_.push_back(cell);
      const double q_fc = phys::charge_fc_from_pairs(dep.eh_pairs) *
                          layout_->collection_efficiency(dep.fin_id);
      switch (*idx) {
        case 0: ch.i1_fc += q_fc; break;
        case 1: ch.i2_fc += q_fc; break;
        case 2: ch.i3_fc += q_fc; break;
        default: break;
      }
    }
    if (!touched_cells_.empty()) ++hits;

    // Steps 4-5: cell POFs from the LUTs, combined via Eqs. 4-6, for every
    // supply voltage and both process-variation modes.
    for (std::size_t v = 0; v < nv; ++v) {
      const sram::PofTable& table = model_->at_vdd(vdds[v]);
      for (std::size_t mode = 0; mode < 2; ++mode) {
        const bool with_pv = (mode == kModeWithPv);
        pofs.clear();
        for (const std::uint32_t c : touched_cells_) {
          const double p = table.pof(cell_charges_[c], with_pv);
          if (p > 0.0) pofs.push_back(p);
        }
        const CombinedPof combined =
            pofs.empty() ? CombinedPof{0.0, 0.0, 0.0} : combine_eqs_4_to_6(pofs);
        acc[v][mode][0].add(combined.tot);
        acc[v][mode][1].add(combined.seu);
        acc[v][mode][2].add(combined.mbu);
        if (!pofs.empty()) {
          const auto dist = multiplicity_distribution(pofs);
          for (std::size_t n = 0; n < kMaxMultiplicity; ++n) {
            mult_acc[v][mode][n] += dist[n];
          }
        } else {
          mult_acc[v][mode][0] += 1.0;
        }
      }
    }
  }

  ArrayMcResult result;
  result.vdds = vdds;
  result.est.resize(nv);
  const double hit_fraction =
      static_cast<double>(hits) / static_cast<double>(config_.strikes);
  for (std::size_t v = 0; v < nv; ++v) {
    for (std::size_t mode = 0; mode < 2; ++mode) {
      PofEstimate& e = result.est[v][mode];
      e.tot = acc[v][mode][0].mean();
      e.seu = acc[v][mode][1].mean();
      e.mbu = acc[v][mode][2].mean();
      e.tot_se = acc[v][mode][0].stderr_of_mean();
      e.seu_se = acc[v][mode][1].stderr_of_mean();
      e.mbu_se = acc[v][mode][2].stderr_of_mean();
      e.hit_fraction = hit_fraction;
      e.strikes = config_.strikes;
      for (std::size_t n = 0; n < kMaxMultiplicity; ++n) {
        e.multiplicity[n] =
            mult_acc[v][mode][n] / static_cast<double>(config_.strikes);
      }
    }
  }
  return result;
}

}  // namespace finser::core
