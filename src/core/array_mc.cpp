#include "finser/core/array_mc.hpp"

#include <cmath>
#include <numbers>

#include "finser/obs/obs.hpp"
#include "finser/stats/direction.hpp"
#include "finser/util/error.hpp"

namespace finser::core {

namespace {

/// |z| bands of the track-aware importance proposal, geometric between
/// kFocusZMin and 1 so grazing bands (whose lateral sweep varies fastest)
/// get the same relative sweep resolution as steep ones. Tracks below
/// kFocusZMin fall back to plain uniform origins.
constexpr std::size_t kFocusBands = 24;
constexpr double kFocusZMin = 0.004;

/// Azimuth sectors (modulo pi — the origin strip of a track is symmetric
/// about its fin-layer crossing point, so opposite azimuths share a cover).
/// Each sector's boxes are dilated along the sector's central azimuth only;
/// without this the long grazing strips would be covered by quadratically
/// wasteful isotropic dilations. The strip cross width carries a
/// sweep * sin(pi / (2 * kFocusSectors)) azimuth-slack term, so more
/// sectors means proportionally tighter (smaller-area, higher-gain) covers.
constexpr std::size_t kFocusSectors = 32;

/// Uniform-floor mass of the origin proposal: with probability kFocusFloor
/// the origin is drawn uniformly over the source plane regardless of the
/// focus boxes, so q >= kFocusFloor / plane_area everywhere the uniform
/// density is positive and every likelihood-ratio weight is bounded by
/// 1 / kFocusFloor. This is what keeps the back-projected proposal exact:
/// crossing points whose back-projection leaves the source plane simply get
/// weight 0 (they are outside the target density's support).
constexpr double kFocusFloor = 0.1;

/// Half of the lateral distance a track with vertical component |z| sweeps
/// while descending through a fin layer of height \p layer_nm.
double half_sweep_nm(double abs_z, double layer_nm) {
  return 0.5 * layer_nm * std::sqrt(std::max(0.0, 1.0 - abs_z * abs_z)) /
         abs_z;
}

/// Monte-Carlo estimate of the *union* area of a plane's focus boxes.
/// focus_area() counts overlap with multiplicity, so under area-weighted
/// box sampling union = focus_area * E[1 / cover]. A fixed literal seed
/// keeps construction deterministic; 256 samples put the estimate within a
/// few percent, far finer than the saturation threshold it feeds.
double estimate_union_area(const stats::FocusPlane& plane) {
  if (plane.box_count() == 0 || plane.alpha() <= 0.0) return 0.0;
  stats::Rng rng(0x756e696f6eull);  // "union"
  constexpr int kSamples = 256;
  double inv_cover = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const stats::FocusPlane::Sample s =
        plane.sample(rng.uniform() * plane.alpha(), rng.uniform(),
                     rng.uniform());
    // Invert the mixture density for the cover count at the sample.
    const double cover =
        (plane.pdf(s.x, s.y) - (1.0 - plane.alpha()) / plane.plane_area()) *
        plane.focus_area() / plane.alpha();
    inv_cover += 1.0 / std::max(1.0, cover);
  }
  return plane.focus_area() * inv_cover / static_cast<double>(kSamples);
}

}  // namespace

ArrayMc::ArrayMc(const sram::ArrayLayout& layout,
                 const sram::CellSoftErrorModel& model, const ArrayMcConfig& config)
    : ArrayEngine(layout, model), config_(config) {
  FINSER_REQUIRE(config_.strikes > 0, "ArrayMc: need at least one strike");
  FINSER_REQUIRE(config_.chunk > 0, "ArrayMc: chunk must be positive");
  FINSER_REQUIRE(!model.tables.empty(), "ArrayMc: empty cell model");
  if (config_.angular == SourceAngularLaw::kBeam) {
    FINSER_REQUIRE(config_.beam_direction.z < 0.0,
                   "ArrayMc: beam direction must point downward");
    beam_dir_ = config_.beam_direction.normalized();
  }
  if (config_.cluster.enabled()) {
    FINSER_REQUIRE(config_.cluster_design != nullptr,
                   "ArrayMc: cluster mode needs the cell design "
                   "(ArrayMcConfig::cluster_design)");
    if (config_.cluster_surface != nullptr) {
      FINSER_REQUIRE(
          config_.cluster_surface->config().mode == config_.cluster.mode,
          "ArrayMc: shared cluster surface was built for a different mode");
      surface_ = config_.cluster_surface;
    } else {
      owned_surface_ = std::make_unique<sram::ClusterPofSurface>(
          *config_.cluster_design, config_.cluster);
      surface_ = owned_surface_.get();
    }
  }
  const stats::SamplingConfig& vr = config_.sampling;
  FINSER_REQUIRE(vr.direction_bias >= 0.0 && vr.direction_bias < 1.0,
                 "ArrayMc: direction_bias must be in [0, 1)");
  FINSER_REQUIRE(vr.direction_bias == 0.0 ||
                     config_.angular == SourceAngularLaw::kIsotropic,
                 "ArrayMc: direction_bias applies to the isotropic law only");
  FINSER_REQUIRE(vr.grazing_bias >= 0.0 && vr.grazing_bias < 1.0,
                 "ArrayMc: grazing_bias must be in [0, 1)");
  FINSER_REQUIRE(vr.qmc == stats::QmcMode::kNone ||
                     config_.position != SourcePositionSampling::kStratified,
                 "ArrayMc: QMC and stratified positions are alternative "
                 "low-discrepancy schemes; pick one");
  if (config_.position == SourcePositionSampling::kImportance) {
    FINSER_REQUIRE(vr.focus_fraction >= 0.0 && vr.focus_fraction < 1.0,
                   "ArrayMc: focus_fraction must be in [0, 1)");
    FINSER_REQUIRE(vr.focus_margin_nm >= 0.0,
                   "ArrayMc: focus_margin_nm must be non-negative");
    // Focus boxes: lateral footprints of the fins that are sensitive in the
    // stored data state. The proposal targets the track's *crossing point*
    // of the fin layer (mid-depth), so each |z| band dilates the footprints
    // by the base margin plus half the band's worst-case lateral sweep —
    // grazing tracks cross fins far from where they pierce the layer, and
    // the wider boxes keep that mass inside the focus component.
    std::vector<stats::FocusBox> base;
    const geom::BoxSet& fins = layout.fins();
    for (std::uint32_t id = 0; id < fins.size(); ++id) {
      const sram::FinSite& site = layout.site(id);
      const bool bit = layout.bit(site.cell_row, site.cell_col);
      if (!sram::ArrayLayout::strike_index(site.role, bit)) continue;
      const geom::Aabb& b = fins.box(id);
      base.push_back({b.lo.x, b.hi.x, b.lo.y, b.hi.y});
    }
    const geom::Aabb bounds = layout.bounds();
    const double layer_nm = bounds.hi.z - bounds.lo.z;
    focus_mid_depth_nm_ = config_.source_height_nm + 0.5 * layer_nm;
    const double x_lo = -config_.source_margin_nm;
    const double x_hi = layout.width_nm() + config_.source_margin_nm;
    const double y_lo = -config_.source_margin_nm;
    const double y_hi = layout.height_nm() + config_.source_margin_nm;
    // Sweeps are capped at the plane half-diagonal: a longer strip leaves
    // the plane anyway, and the band degrades gracefully toward uniform
    // sampling (weights near 1).
    const double sweep_cap =
        0.5 * std::hypot(x_hi - x_lo, y_hi - y_lo);
    const double m0 = vr.focus_margin_nm;
    const double band_ratio =
        std::pow(1.0 / kFocusZMin, 1.0 / static_cast<double>(kFocusBands));
    // Worst within-sector azimuth deviation from the sector center.
    const double sector_sin =
        std::sin(std::numbers::pi / (2.0 * static_cast<double>(kFocusSectors)));
    focus_bands_.reserve(kFocusBands * kFocusSectors);
    const double plane_area = (x_hi - x_lo) * (y_hi - y_lo);
    for (std::size_t k = 0; k < kFocusBands; ++k) {
      const double z_lo = kFocusZMin * std::pow(band_ratio,
                                                static_cast<double>(k));
      const double sweep = std::min(half_sweep_nm(z_lo, layer_nm), sweep_cap);
      // Crossing points of on-plane origins reach up to the back-projection
      // offset beyond the source rectangle, so the proposal lives on an
      // expanded rectangle — otherwise edge hits would be reachable only
      // through the uniform floor, at the worst-case weight.
      const double expand =
          std::min(focus_mid_depth_nm_ *
                       std::sqrt(std::max(0.0, 1.0 - z_lo * z_lo)) / z_lo,
                   2.0 * sweep_cap);
      const double ex_lo = x_lo - expand;
      const double ex_hi = x_hi + expand;
      const double ey_lo = y_lo - expand;
      const double ey_hi = y_hi + expand;
      for (std::size_t j = 0; j < kFocusSectors; ++j) {
        std::vector<stats::FocusBox> boxes;
        if (sweep <= m0) {
          // Near-vertical band: the sweep is smaller than the base margin,
          // so the azimuth decomposition buys nothing — an isotropic
          // dilation by (margin + sweep) is the tighter cover and every
          // sector shares it.
          const double d = m0 + sweep;
          boxes.reserve(base.size());
          for (const stats::FocusBox& b : base) {
            boxes.push_back({b.x_lo - d, b.x_hi + d, b.y_lo - d, b.y_hi + d});
          }
        } else {
          const double phi = (static_cast<double>(j) + 0.5) *
                             std::numbers::pi /
                             static_cast<double>(kFocusSectors);
          const double cx = std::abs(std::cos(phi));
          const double cy = std::abs(std::sin(phi));
          // Cover the +-(sweep + margin) strip along the sector azimuth with
          // axis-aligned segment boxes: one long box would bound a diagonal
          // strip by a near-square, wasting area quadratically. The segments
          // tile the needed half-length *exactly* (no overshoot — inflated
          // focus area is inflated weight everywhere), with segment length
          // tracking the strip's cross width so the stair-step slop stays a
          // small constant factor.
          const double cross = m0 + sweep * sector_sin;
          const double half_len = sweep + m0;
          const auto n_seg = std::max<std::size_t>(
              1, static_cast<std::size_t>(
                     std::ceil(half_len / std::max(2.0 * cross, 30.0))));
          const double seg_half = half_len / static_cast<double>(n_seg);
          boxes.reserve(base.size() * n_seg);
          for (const stats::FocusBox& b : base) {
            for (std::size_t i = 0; i < n_seg; ++i) {
              // Segment centers tile [-half_len, +half_len] with spacing
              // 2*seg_half; half-extent seg_half along the azimuth, `cross`
              // across (in the rotated frame), re-boxed axis-aligned.
              const double t = -half_len +
                               (2.0 * static_cast<double>(i) + 1.0) * seg_half;
              const double hx = seg_half * cx + cross * cy;
              const double hy = seg_half * cy + cross * cx;
              boxes.push_back({b.x_lo + t * std::cos(phi) - hx,
                               b.x_hi + t * std::cos(phi) + hx,
                               b.y_lo + t * std::sin(phi) - hy,
                               b.y_hi + t * std::sin(phi) + hy});
            }
          }
        }
        stats::FocusPlane plane(ex_lo, ex_hi, ey_lo, ey_hi, std::move(boxes),
                                vr.focus_fraction);
        if (estimate_union_area(plane) >= 0.8 * plane_area) {
          // Saturated cover (deep-grazing bands): the strips blanket most
          // of the source plane, so focusing cannot beat uniform and the
          // cover-count fluctuations only add weight noise. Degrade this
          // band/sector to the exact uniform origin proposal (alpha 0 —
          // simulate_chunk samples the origin directly, weight 1). The
          // criterion is the box *union* vs the source-plane area: grazing
          // strips overlap heavily, and cover-proportional sampling of the
          // overlap is exactly how the proposal tracks the track-count
          // density, so multiplicity-counted area must not trip the guard.
          focus_bands_.emplace_back(x_lo, x_hi, y_lo, y_hi,
                                    std::vector<stats::FocusBox>{}, 0.0);
        } else {
          focus_bands_.push_back(std::move(plane));
        }
      }
    }
  }
}

/// Fingerprint of everything an ArrayMc checkpoint's content depends on.
/// Thread count and chunk *schedule* are excluded by construction; the chunk
/// *size* is included because it defines the unit decomposition.
std::uint64_t ArrayMc::point_fingerprint(const EnergyPoint& point,
                                         std::uint64_t seed) const {
  util::Fnv1a h;
  h.str("finser.array_mc.ckpt.v3");
  h.u64(model().config_fingerprint);
  h.u64(static_cast<std::uint64_t>(point.species));
  h.f64(point.e_mev);
  h.f64(point.e_lo_mev);
  h.f64(point.e_hi_mev);
  h.u64(seed);
  h.u64(config_.strikes);
  h.u64(config_.chunk);
  h.u64(static_cast<std::uint64_t>(config_.angular));
  h.u64(static_cast<std::uint64_t>(config_.position));
  h.f64(config_.beam_direction.x)
      .f64(config_.beam_direction.y)
      .f64(config_.beam_direction.z);
  h.u64(static_cast<std::uint64_t>(config_.straggling));
  h.f64(config_.source_margin_nm);
  h.f64(config_.source_height_nm);
  h.f64(config_.sampling.focus_fraction);
  h.f64(config_.sampling.focus_margin_nm);
  h.f64(config_.sampling.direction_bias);
  h.f64(config_.sampling.grazing_bias);
  h.u64(config_.sampling.energy_strata);
  h.u64(static_cast<std::uint64_t>(config_.sampling.qmc));
  h.f64(config_.ci.target);
  h.u64(config_.ci.min_chunks);
  h.f64(config_.ci.growth);
  h.u64(static_cast<std::uint64_t>(config_.cluster.mode));
  h.f64(config_.cluster.share_fraction);
  h.u64(config_.cluster.pv_samples);
  h.f64(config_.cluster.quantum_fc);
  hash_layout(h, layout());
  return h.hash();
}

void ArrayMc::simulate_chunk(const exec::ChunkRange& r,
                             const EnergyPoint& point, std::uint64_t seed,
                             stats::Rng& rng, WorkerScratch& ws,
                             McPartial& part) const {
  // Pure functions of (config, layout) — recomputing them per chunk instead
  // of per run is bit-exact and keeps the chunk self-contained.
  const geom::Aabb fin_bounds = layout().bounds();
  const double z_source = fin_bounds.hi.z + config_.source_height_nm;
  const double x_lo = -config_.source_margin_nm;
  const double x_hi = layout().width_nm() + config_.source_margin_nm;
  const double y_lo = -config_.source_margin_nm;
  const double y_hi = layout().height_nm() + config_.source_margin_nm;

  // Stratification grid (jittered-grid sampling over the source plane). The
  // stratum is a function of the *global* strike index, so the pattern is
  // independent of how strikes are chunked across workers.
  const auto strata = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(config_.strikes))));

  // Scrambled Sobol point set, keyed by the run seed only: point s is the
  // same value in every chunk, so QMC positions inherit the chunking
  // independence of the RNG streams.
  const bool use_sobol = config_.sampling.qmc == stats::QmcMode::kSobol;
  std::optional<stats::SobolSequence> sobol;
  if (use_sobol) {
    sobol.emplace(stats::Rng::derive_seed(seed, 0x536f626f6cull));  // "Sobol"
  }

  // Within-bin energy stratification (only meaningful when the driver
  // supplies bin bounds; single-energy runs fall back to e_rep).
  const std::size_t e_strata =
      point.has_range() ? config_.sampling.energy_strata : 0;
  const double log_e_lo = e_strata > 0 ? std::log(point.e_lo_mev) : 0.0;
  const double log_slice =
      e_strata > 0 ? (std::log(point.e_hi_mev) - log_e_lo) /
                         static_cast<double>(e_strata)
                   : 0.0;

  for (std::size_t s = r.begin; s < r.end; ++s) {
    double w = 1.0;  // Likelihood-ratio weight of this strike.

    // Optional energy stratification: stratum = s mod K tiles the bin's
    // log-range exactly (equal log-widths, equal probability under the
    // log-uniform within-bin law), so the weight stays exactly 1 and the
    // estimand becomes the bin-average POF.
    double e_mev = point.e_mev;
    if (e_strata > 0) {
      const std::size_t k = s % e_strata;
      const double u = use_sobol ? sobol->point(s, 3) : rng.uniform();
      e_mev = std::exp(log_e_lo + log_slice * (static_cast<double>(k) + u));
    }

    // Step 1 (paper Sec. 5.1): random particle position and direction.
    // The angular law is shared by every position mode; the track-aware
    // importance proposal needs the direction before the origin, every
    // other mode draws position first (the legacy stream order).
    const auto sample_direction = [&](geom::Ray& out, double& weight) {
      switch (config_.angular) {
        case SourceAngularLaw::kIsotropic:
          if (config_.sampling.direction_bias > 0.0) {
            const stats::DirectionSample ds = stats::biased_hemisphere_down(
                rng, config_.sampling.direction_bias);
            out.dir = ds.dir;
            weight *= ds.weight;
          } else if (config_.position == SourcePositionSampling::kImportance &&
                     config_.sampling.grazing_bias > 0.0) {
            // Track-aware importance oversamples the grazing tail: those
            // tracks sweep across many cells and dominate the POF variance.
            const stats::DirectionSample ds = stats::grazing_hemisphere_down(
                rng, config_.sampling.grazing_bias);
            out.dir = ds.dir;
            weight *= ds.weight;
          } else {
            out.dir = stats::isotropic_hemisphere_down(rng);
          }
          break;
        case SourceAngularLaw::kCosine:
          out.dir = stats::cosine_hemisphere_down(rng);
          break;
        case SourceAngularLaw::kBeam:
          out.dir = beam_dir_;
          break;
      }
      if (out.dir.z == 0.0) out.dir.z = -1e-12;  // Guard true horizontals.
    };

    geom::Ray ray;
    if (config_.position == SourcePositionSampling::kImportance) {
      sample_direction(ray, w);
      const double u_sel = use_sobol ? sobol->point(s, 0) : rng.uniform();
      const double u_x = use_sobol ? sobol->point(s, 1) : rng.uniform();
      const double u_y = use_sobol ? sobol->point(s, 2) : rng.uniform();
      const double abs_z = -ray.dir.z;
      if (abs_z < kFocusZMin) {
        // Near-horizontal tracks sweep laterally without bound; their
        // contributing origins are spread over the whole plane, so the
        // proposal degrades to the exact uniform law (weight 1).
        ray.origin = {x_lo + (x_hi - x_lo) * u_x, y_lo + (y_hi - y_lo) * u_y,
                      z_source};
      } else {
        const double band_log_ratio =
            std::log(1.0 / kFocusZMin) / static_cast<double>(kFocusBands);
        const std::size_t band = std::min<std::size_t>(
            kFocusBands - 1,
            static_cast<std::size_t>(std::log(abs_z / kFocusZMin) /
                                     band_log_ratio));
        double phi = std::atan2(ray.dir.y, ray.dir.x);
        if (phi < 0.0) phi += std::numbers::pi;
        const std::size_t sector = std::min<std::size_t>(
            kFocusSectors - 1,
            static_cast<std::size_t>(phi / std::numbers::pi *
                                     static_cast<double>(kFocusSectors)));
        const stats::FocusPlane& plane =
            focus_bands_[band * kFocusSectors + sector];
        if (plane.alpha() == 0.0) {
          // Saturated band/sector (see the constructor): the exact uniform
          // origin law, sampled directly — no back-projection, weight 1.
          ray.origin = {x_lo + (x_hi - x_lo) * u_x,
                        y_lo + (y_hi - y_lo) * u_y, z_source};
        } else {
          // Lateral displacement from the origin to the track's fin-layer
          // mid-depth crossing: the proposal samples the crossing point T
          // and back-projects, origin = T - off. For a fixed direction that
          // is a translation, so q_origin(x | dir) = q_T(x + off) exactly.
          const double off_x = focus_mid_depth_nm_ * ray.dir.x / abs_z;
          const double off_y = focus_mid_depth_nm_ * ray.dir.y / abs_z;
          double ox, oy;
          if (u_sel < kFocusFloor) {
            ox = x_lo + (x_hi - x_lo) * u_x;
            oy = y_lo + (y_hi - y_lo) * u_y;
          } else {
            const double u = (u_sel - kFocusFloor) / (1.0 - kFocusFloor);
            const stats::FocusPlane::Sample ps = plane.sample(u, u_x, u_y);
            ox = ps.x - off_x;
            oy = ps.y - off_y;
            if (ps.focused) {
              FINSER_OBS_COUNT("core.array_mc.vr.focus_draws", 1);
            }
          }
          if (ox < x_lo || ox > x_hi || oy < y_lo || oy > y_hi) {
            // Back-projected origin left the source plane: the sample sits
            // outside the target density's support, so its likelihood-ratio
            // weight is 0. Record the strike (it is part of the sample
            // count) and skip the physics.
            begin_strike(ws);
            score_weighted_history(ws, part, 0.0);
            continue;
          }
          const double plane_area = (x_hi - x_lo) * (y_hi - y_lo);
          const double q =
              kFocusFloor / plane_area +
              (1.0 - kFocusFloor) * plane.pdf(ox + off_x, oy + off_y);
          w *= (1.0 / plane_area) / q;
          ray.origin = {ox, oy, z_source};
        }
      }
    } else {
      switch (config_.position) {
        case SourcePositionSampling::kStratified: {
          const std::size_t ix = s % strata;
          const std::size_t iy = (s / strata) % strata;
          const double fx = (static_cast<double>(ix) + rng.uniform()) /
                            static_cast<double>(strata);
          const double fy = (static_cast<double>(iy) + rng.uniform()) /
                            static_cast<double>(strata);
          ray.origin = {x_lo + (x_hi - x_lo) * fx, y_lo + (y_hi - y_lo) * fy,
                        z_source};
          break;
        }
        case SourcePositionSampling::kImportance:
          break;  // Handled above.
        case SourcePositionSampling::kUniform:
          if (use_sobol) {
            ray.origin = {x_lo + (x_hi - x_lo) * sobol->point(s, 1),
                          y_lo + (y_hi - y_lo) * sobol->point(s, 2), z_source};
          } else {
            ray.origin = {rng.uniform(x_lo, x_hi), rng.uniform(y_lo, y_hi),
                          z_source};
          }
          break;
      }
      sample_direction(ray, w);
    }

    // Step 2-3: transport, accumulate sensitive-transistor charges per cell.
    const phys::TrackResult track =
        ws.transporter.transport(ray, point.species, e_mev, rng);

    begin_strike(ws);
    add_deposits(track, ws);
    if (!ws.touched_cells.empty()) {
      ++part.hits;
      part.weighted_hits += w;
      FINSER_OBS_COUNT("core.array_mc.strike_hits", 1);
    }

    // Steps 4-5: cell POFs from the LUTs, combined via Eqs. 4-6, for every
    // supply voltage and both process-variation modes. Unit-weight strikes
    // take the plain scoring path — add(pof) and add_weighted(pof, 1.0)
    // are bit-identical, so the w == 1.0 branch is an optimization, not a
    // semantic fork.
    if (w == 1.0) {
      score_strike(ws, part);
    } else {
      score_weighted_history(ws, part, w);
    }
  }
}

}  // namespace finser::core
