#include "finser/core/array_mc.hpp"

#include <cmath>

#include "finser/obs/obs.hpp"
#include "finser/stats/direction.hpp"
#include "finser/util/error.hpp"

namespace finser::core {

ArrayMc::ArrayMc(const sram::ArrayLayout& layout,
                 const sram::CellSoftErrorModel& model, const ArrayMcConfig& config)
    : ArrayEngine(layout, model), config_(config) {
  FINSER_REQUIRE(config_.strikes > 0, "ArrayMc: need at least one strike");
  FINSER_REQUIRE(config_.chunk > 0, "ArrayMc: chunk must be positive");
  FINSER_REQUIRE(!model.tables.empty(), "ArrayMc: empty cell model");
  if (config_.angular == SourceAngularLaw::kBeam) {
    FINSER_REQUIRE(config_.beam_direction.z < 0.0,
                   "ArrayMc: beam direction must point downward");
    beam_dir_ = config_.beam_direction.normalized();
  }
}

/// Fingerprint of everything an ArrayMc checkpoint's content depends on.
/// Thread count and chunk *schedule* are excluded by construction; the chunk
/// *size* is included because it defines the unit decomposition.
std::uint64_t ArrayMc::point_fingerprint(const EnergyPoint& point,
                                         std::uint64_t seed) const {
  util::Fnv1a h;
  h.str("finser.array_mc.ckpt.v1");
  h.u64(model().config_fingerprint);
  h.u64(static_cast<std::uint64_t>(point.species));
  h.f64(point.e_mev);
  h.u64(seed);
  h.u64(config_.strikes);
  h.u64(config_.chunk);
  h.u64(static_cast<std::uint64_t>(config_.angular));
  h.u64(static_cast<std::uint64_t>(config_.position));
  h.f64(config_.beam_direction.x)
      .f64(config_.beam_direction.y)
      .f64(config_.beam_direction.z);
  h.u64(static_cast<std::uint64_t>(config_.straggling));
  h.f64(config_.source_margin_nm);
  h.f64(config_.source_height_nm);
  hash_layout(h, layout());
  return h.hash();
}

void ArrayMc::simulate_chunk(const exec::ChunkRange& r,
                             const EnergyPoint& point, stats::Rng& rng,
                             WorkerScratch& ws, McPartial& part) const {
  // Pure functions of (config, layout) — recomputing them per chunk instead
  // of per run is bit-exact and keeps the chunk self-contained.
  const geom::Aabb fin_bounds = layout().bounds();
  const double z_source = fin_bounds.hi.z + config_.source_height_nm;
  const double x_lo = -config_.source_margin_nm;
  const double x_hi = layout().width_nm() + config_.source_margin_nm;
  const double y_lo = -config_.source_margin_nm;
  const double y_hi = layout().height_nm() + config_.source_margin_nm;

  // Stratification grid (jittered-grid sampling over the source plane). The
  // stratum is a function of the *global* strike index, so the pattern is
  // independent of how strikes are chunked across workers.
  const auto strata = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(config_.strikes))));

  for (std::size_t s = r.begin; s < r.end; ++s) {
    // Step 1 (paper Sec. 5.1): random particle position and direction.
    geom::Ray ray;
    if (config_.position == SourcePositionSampling::kStratified) {
      const std::size_t ix = s % strata;
      const std::size_t iy = (s / strata) % strata;
      const double fx = (static_cast<double>(ix) + rng.uniform()) /
                        static_cast<double>(strata);
      const double fy = (static_cast<double>(iy) + rng.uniform()) /
                        static_cast<double>(strata);
      ray.origin = {x_lo + (x_hi - x_lo) * fx, y_lo + (y_hi - y_lo) * fy,
                    z_source};
    } else {
      ray.origin = {rng.uniform(x_lo, x_hi), rng.uniform(y_lo, y_hi),
                    z_source};
    }
    switch (config_.angular) {
      case SourceAngularLaw::kIsotropic:
        ray.dir = stats::isotropic_hemisphere_down(rng);
        break;
      case SourceAngularLaw::kCosine:
        ray.dir = stats::cosine_hemisphere_down(rng);
        break;
      case SourceAngularLaw::kBeam:
        ray.dir = beam_dir_;
        break;
    }
    if (ray.dir.z == 0.0) ray.dir.z = -1e-12;  // Guard true horizontals.

    // Step 2-3: transport, accumulate sensitive-transistor charges per cell.
    const phys::TrackResult track =
        ws.transporter.transport(ray, point.species, point.e_mev, rng);

    begin_strike(ws);
    add_deposits(track, ws);
    if (!ws.touched_cells.empty()) {
      ++part.hits;
      FINSER_OBS_COUNT("core.array_mc.strike_hits", 1);
    }

    // Steps 4-5: cell POFs from the LUTs, combined via Eqs. 4-6, for every
    // supply voltage and both process-variation modes.
    score_strike(ws, part);
  }
}

}  // namespace finser::core
