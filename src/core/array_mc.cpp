#include "finser/core/array_mc.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "finser/core/pof_combine.hpp"
#include "finser/exec/thread_pool.hpp"
#include "finser/obs/obs.hpp"
#include "finser/phys/collection.hpp"
#include "finser/stats/direction.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fingerprint.hpp"
#include "mc_partial.hpp"

namespace finser::core {

namespace {

phys::Transporter::Config transporter_config(const ArrayMcConfig& cfg) {
  phys::Transporter::Config tc;
  tc.straggling = cfg.straggling;
  return tc;
}

/// Per-worker mutable state: the Transporter keeps internal scratch and the
/// strike loop reuses per-cell charge slots, so each pool slot gets its own
/// copy (created lazily on first chunk, on the worker's own thread).
struct WorkerState {
  phys::Transporter transporter;
  std::vector<sram::StrikeCharges> cell_charges;
  std::vector<std::uint32_t> touched_cells;
  std::vector<double> pofs;  // Per-touched-cell POFs of the current strike.

  WorkerState(const sram::ArrayLayout& layout,
              const phys::Transporter::Config& tc)
      : transporter(layout.fins(), tc),
        cell_charges(layout.cell_count(), sram::StrikeCharges{}) {}
};

/// Fingerprint of everything an ArrayMc checkpoint's content depends on.
/// Thread count and chunk *schedule* are excluded by construction; the chunk
/// *size* is included because it defines the unit decomposition.
std::uint64_t run_fingerprint(const ArrayMcConfig& cfg,
                              const sram::ArrayLayout& layout,
                              const sram::CellSoftErrorModel& model,
                              phys::Species species, double e_mev,
                              std::uint64_t seed) {
  util::Fnv1a h;
  h.str("finser.array_mc.ckpt.v1");
  h.u64(model.config_fingerprint);
  h.u64(static_cast<std::uint64_t>(species));
  h.f64(e_mev);
  h.u64(seed);
  h.u64(cfg.strikes);
  h.u64(cfg.chunk);
  h.u64(static_cast<std::uint64_t>(cfg.angular));
  h.u64(static_cast<std::uint64_t>(cfg.position));
  h.f64(cfg.beam_direction.x).f64(cfg.beam_direction.y).f64(cfg.beam_direction.z);
  h.u64(static_cast<std::uint64_t>(cfg.straggling));
  h.f64(cfg.source_margin_nm);
  h.f64(cfg.source_height_nm);
  h.u64(layout.rows());
  h.u64(layout.cols());
  h.f64(layout.width_nm()).f64(layout.height_nm());
  for (std::size_t row = 0; row < layout.rows(); ++row) {
    for (std::size_t col = 0; col < layout.cols(); ++col) {
      h.u64(layout.bit(row, col) ? 1 : 0);
    }
  }
  return h.hash();
}

}  // namespace

void PofAccumulator::write(util::ByteWriter& w) const {
  const auto write_stats = [&w](const stats::RunningStats& s) {
    const stats::RunningStats::Raw raw = s.raw();
    w.u64(raw.n);
    w.f64(raw.mean);
    w.f64(raw.m2);
    w.f64(raw.min);
    w.f64(raw.max);
  };
  write_stats(tot_);
  write_stats(seu_);
  write_stats(mbu_);
  for (const double m : mult_) w.f64(m);
}

PofAccumulator PofAccumulator::read(util::ByteReader& r) {
  const auto read_stats = [&r]() {
    stats::RunningStats::Raw raw;
    raw.n = r.u64();
    raw.mean = r.f64();
    raw.m2 = r.f64();
    raw.min = r.f64();
    raw.max = r.f64();
    return stats::RunningStats::from_raw(raw);
  };
  PofAccumulator a;
  a.tot_ = read_stats();
  a.seu_ = read_stats();
  a.mbu_ = read_stats();
  for (double& m : a.mult_) m = r.f64();
  return a;
}

std::vector<std::uint8_t> encode_result(const ArrayMcResult& result) {
  util::ByteWriter w;
  w.f64_vec(result.vdds);
  w.u64(result.est.size());
  for (const auto& modes : result.est) {
    for (const PofEstimate& e : modes) {
      w.f64(e.tot);
      w.f64(e.seu);
      w.f64(e.mbu);
      w.f64(e.tot_se);
      w.f64(e.seu_se);
      w.f64(e.mbu_se);
      w.f64(e.hit_fraction);
      w.u64(e.strikes);
      for (const double m : e.multiplicity) w.f64(m);
    }
  }
  return w.take();
}

ArrayMcResult decode_result(util::ByteReader& r) {
  ArrayMcResult result;
  result.vdds = r.f64_vec();
  const std::uint64_t nv = r.u64();
  FINSER_REQUIRE(nv == result.vdds.size(),
                 "decode_result: estimate/vdd count mismatch");
  result.est.resize(nv);
  for (auto& modes : result.est) {
    for (PofEstimate& e : modes) {
      e.tot = r.f64();
      e.seu = r.f64();
      e.mbu = r.f64();
      e.tot_se = r.f64();
      e.seu_se = r.f64();
      e.mbu_se = r.f64();
      e.hit_fraction = r.f64();
      e.strikes = static_cast<std::size_t>(r.u64());
      for (double& m : e.multiplicity) m = r.f64();
    }
  }
  return result;
}

void PofAccumulator::add(const CombinedPof& pof) {
  tot_.add(pof.tot);
  seu_.add(pof.seu);
  mbu_.add(pof.mbu);
}

void PofAccumulator::add_multiplicity(std::size_t n, double mass) {
  mult_[std::min(n, kMaxMultiplicity - 1)] += mass;
}

void PofAccumulator::merge(const PofAccumulator& other) {
  tot_.merge(other.tot_);
  seu_.merge(other.seu_);
  mbu_.merge(other.mbu_);
  for (std::size_t n = 0; n < kMaxMultiplicity; ++n) mult_[n] += other.mult_[n];
}

PofEstimate PofAccumulator::finalize(std::size_t strikes,
                                     double hit_fraction) const {
  PofEstimate e;
  e.tot = tot_.mean();
  e.seu = seu_.mean();
  e.mbu = mbu_.mean();
  e.tot_se = tot_.stderr_of_mean();
  e.seu_se = seu_.stderr_of_mean();
  e.mbu_se = mbu_.stderr_of_mean();
  e.hit_fraction = hit_fraction;
  e.strikes = strikes;
  if (strikes > 0) {
    for (std::size_t n = 0; n < kMaxMultiplicity; ++n) {
      e.multiplicity[n] = mult_[n] / static_cast<double>(strikes);
    }
  }
  return e;
}

ArrayMc::ArrayMc(const sram::ArrayLayout& layout,
                 const sram::CellSoftErrorModel& model, const ArrayMcConfig& config)
    : layout_(&layout), model_(&model), config_(config) {
  FINSER_REQUIRE(config_.strikes > 0, "ArrayMc: need at least one strike");
  FINSER_REQUIRE(config_.chunk > 0, "ArrayMc: chunk must be positive");
  FINSER_REQUIRE(!model.tables.empty(), "ArrayMc: empty cell model");
  if (config_.angular == SourceAngularLaw::kBeam) {
    FINSER_REQUIRE(config_.beam_direction.z < 0.0,
                   "ArrayMc: beam direction must point downward");
    beam_dir_ = config_.beam_direction.normalized();
  }
}

double ArrayMc::sampled_area_nm2() const {
  return (layout_->width_nm() + 2.0 * config_.source_margin_nm) *
         (layout_->height_nm() + 2.0 * config_.source_margin_nm);
}

ArrayMcResult ArrayMc::run(phys::Species species, double e_mev,
                           std::uint64_t seed,
                           const exec::ProgressSink& progress,
                           const ckpt::RunOptions& run_opts) const {
  FINSER_REQUIRE(e_mev > 0.0, "ArrayMc::run: non-positive energy");
  obs::ScopedSpan run_span("core.array_mc.run");
  FINSER_OBS_COUNT("core.array_mc.runs", 1);
  FINSER_OBS_COUNT("core.array_mc.strikes", config_.strikes);

  const std::vector<double> vdds = model_->vdds();
  const std::size_t nv = vdds.size();

  const geom::Aabb fin_bounds = layout_->bounds();
  const double z_source = fin_bounds.hi.z + config_.source_height_nm;
  const double x_lo = -config_.source_margin_nm;
  const double x_hi = layout_->width_nm() + config_.source_margin_nm;
  const double y_lo = -config_.source_margin_nm;
  const double y_hi = layout_->height_nm() + config_.source_margin_nm;

  // Stratification grid (jittered-grid sampling over the source plane). The
  // stratum is a function of the *global* strike index, so the pattern is
  // independent of how strikes are chunked across workers.
  const auto strata = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(config_.strikes))));

  const phys::Transporter::Config tc = transporter_config(config_);

  exec::ThreadPool pool(config_.threads);
  std::vector<std::unique_ptr<WorkerState>> workers(pool.thread_count());
  progress.start_phase("strikes", config_.strikes);

  // Chunk i consumes stats::Rng::stream(seed, i) and nothing else, and the
  // partials merge in chunk-index order — so the result is bit-identical
  // for any thread count, and a resumed run (which replays only the missing
  // chunks and re-reduces the full set) for any interruption pattern.
  const auto process_chunk = [&](const exec::ChunkRange& r) -> McPartial {
        std::unique_ptr<WorkerState>& slot = workers[r.worker];
        if (!slot) slot = std::make_unique<WorkerState>(*layout_, tc);
        WorkerState& ws = *slot;
        stats::Rng rng = stats::Rng::stream(seed, r.index);
        McPartial part(nv);

        for (std::size_t s = r.begin; s < r.end; ++s) {
          // Step 1 (paper Sec. 5.1): random particle position and direction.
          geom::Ray ray;
          if (config_.position == SourcePositionSampling::kStratified) {
            const std::size_t ix = s % strata;
            const std::size_t iy = (s / strata) % strata;
            const double fx = (static_cast<double>(ix) + rng.uniform()) /
                              static_cast<double>(strata);
            const double fy = (static_cast<double>(iy) + rng.uniform()) /
                              static_cast<double>(strata);
            ray.origin = {x_lo + (x_hi - x_lo) * fx, y_lo + (y_hi - y_lo) * fy,
                          z_source};
          } else {
            ray.origin = {rng.uniform(x_lo, x_hi), rng.uniform(y_lo, y_hi),
                          z_source};
          }
          switch (config_.angular) {
            case SourceAngularLaw::kIsotropic:
              ray.dir = stats::isotropic_hemisphere_down(rng);
              break;
            case SourceAngularLaw::kCosine:
              ray.dir = stats::cosine_hemisphere_down(rng);
              break;
            case SourceAngularLaw::kBeam:
              ray.dir = beam_dir_;
              break;
          }
          if (ray.dir.z == 0.0) ray.dir.z = -1e-12;  // Guard true horizontals.

          // Step 2-3: transport, accumulate sensitive-transistor charges per
          // cell.
          const phys::TrackResult track =
              ws.transporter.transport(ray, species, e_mev, rng);

          for (const std::uint32_t c : ws.touched_cells) {
            ws.cell_charges[c] = sram::StrikeCharges{};
          }
          ws.touched_cells.clear();

          for (const phys::FinDeposit& dep : track.deposits) {
            const sram::FinSite& site = layout_->site(dep.fin_id);
            const bool bit = layout_->bit(site.cell_row, site.cell_col);
            const auto idx = sram::ArrayLayout::strike_index(site.role, bit);
            if (!idx) continue;  // Transistor not sensitive in this data state.
            const std::uint32_t cell =
                site.cell_row * static_cast<std::uint32_t>(layout_->cols()) +
                site.cell_col;
            sram::StrikeCharges& ch = ws.cell_charges[cell];
            if (!ch.any()) ws.touched_cells.push_back(cell);
            const double q_fc = phys::charge_fc_from_pairs(dep.eh_pairs) *
                                layout_->collection_efficiency(dep.fin_id);
            switch (*idx) {
              case 0: ch.i1_fc += q_fc; break;
              case 1: ch.i2_fc += q_fc; break;
              case 2: ch.i3_fc += q_fc; break;
              default: break;
            }
          }
          if (!ws.touched_cells.empty()) {
            ++part.hits;
            FINSER_OBS_COUNT("core.array_mc.strike_hits", 1);
          }

          // Steps 4-5: cell POFs from the LUTs, combined via Eqs. 4-6, for
          // every supply voltage and both process-variation modes.
          for (std::size_t v = 0; v < nv; ++v) {
            const sram::PofTable& table = model_->at_vdd(vdds[v]);
            for (std::size_t mode = 0; mode < 2; ++mode) {
              const bool with_pv = (mode == kModeWithPv);
              ws.pofs.clear();
              for (const std::uint32_t c : ws.touched_cells) {
                const double p = table.pof(ws.cell_charges[c], with_pv);
                if (p > 0.0) ws.pofs.push_back(p);
              }
              const CombinedPof combined = ws.pofs.empty()
                                               ? CombinedPof{0.0, 0.0, 0.0}
                                               : combine_eqs_4_to_6(ws.pofs);
              PofAccumulator& a = part.acc[v][mode];
              a.add(combined);
              if (!ws.pofs.empty()) {
                const auto dist = multiplicity_distribution(ws.pofs);
                for (std::size_t n = 0; n < kMaxMultiplicity; ++n) {
                  a.add_multiplicity(n, dist[n]);
                }
              } else {
                a.add_multiplicity(0, 1.0);
              }
            }
          }
        }

        progress.tick(r.end - r.begin);
        return part;
  };

  McPartial total;
  if (!run_opts.active()) {
    total = exec::parallel_reduce<McPartial>(pool, config_.strikes,
                                             config_.chunk, process_chunk,
                                             McPartial::merge);
  } else {
    const std::size_t n_chunks =
        (config_.strikes + config_.chunk - 1) / config_.chunk;
    const std::uint64_t fp =
        run_fingerprint(config_, *layout_, *model_, species, e_mev, seed);
    const ckpt::UnitRunResult units = ckpt::run_units(
        pool, n_chunks, fp, run_opts, [&](const exec::ChunkRange& u) {
          const exec::ChunkRange r{
              u.index, u.index * config_.chunk,
              std::min(config_.strikes, (u.index + 1) * config_.chunk),
              u.worker};
          return process_chunk(r).encode();
        });
    std::vector<McPartial> parts;
    parts.reserve(units.blobs.size());
    for (const auto& blob : units.blobs) {
      parts.push_back(McPartial::decode(blob, nv));
    }
    total = exec::reduce_pairwise(std::move(parts), McPartial::merge);
  }

  ArrayMcResult result;
  result.vdds = vdds;
  result.est.resize(nv);
  const double hit_fraction =
      static_cast<double>(total.hits) / static_cast<double>(config_.strikes);
  for (std::size_t v = 0; v < nv; ++v) {
    for (std::size_t mode = 0; mode < 2; ++mode) {
      result.est[v][mode] =
          total.acc[v][mode].finalize(config_.strikes, hit_fraction);
    }
  }
  return result;
}

}  // namespace finser::core
