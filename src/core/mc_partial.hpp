#pragma once
/// \file mc_partial.hpp
/// \brief Per-chunk partial result shared by the chunked array Monte Carlos.
///
/// Both ArrayMc and NeutronMc reduce their strike/history loops over the
/// same shape: one PofAccumulator per (vdd, mode) plus a hit counter. The
/// partials are produced one per RNG chunk and merged pairwise in
/// chunk-index order (exec::reduce_pairwise), which makes the reduction
/// independent of the thread schedule.

#include <array>
#include <cstddef>
#include <vector>

#include "finser/core/array_mc.hpp"

namespace finser::core {

/// One chunk's worth of accumulated statistics.
struct McPartial {
  /// acc[vdd_index][mode] (mode: kModeNominal / kModeWithPv).
  std::vector<std::array<PofAccumulator, 2>> acc;
  /// Strikes (histories) with any sensitive deposit.
  std::size_t hits = 0;

  McPartial() = default;
  explicit McPartial(std::size_t nv) : acc(nv) {}

  /// Merge for exec::parallel_reduce (associative; a absorbs b).
  static McPartial merge(McPartial a, McPartial b) {
    if (a.acc.empty()) return b;
    for (std::size_t v = 0; v < a.acc.size(); ++v) {
      for (std::size_t m = 0; m < 2; ++m) a.acc[v][m].merge(b.acc[v][m]);
    }
    a.hits += b.hits;
    return a;
  }

  /// Checkpoint-blob codec. The raw Welford state round-trips bit-exactly,
  /// so decode(encode(p)) merges identically to p itself — the property the
  /// resume-bit-identity guarantee rests on.
  std::vector<std::uint8_t> encode() const {
    util::ByteWriter w;
    w.u64(acc.size());
    w.u64(hits);
    for (const auto& modes : acc) {
      modes[kModeNominal].write(w);
      modes[kModeWithPv].write(w);
    }
    return w.take();
  }

  static McPartial decode(const std::vector<std::uint8_t>& blob,
                          std::size_t expected_nv) {
    util::ByteReader r(blob);
    const std::uint64_t nv = r.u64();
    FINSER_REQUIRE(nv == expected_nv, "McPartial: vdd count mismatch in blob");
    McPartial p(static_cast<std::size_t>(nv));
    p.hits = static_cast<std::size_t>(r.u64());
    for (auto& modes : p.acc) {
      modes[kModeNominal] = PofAccumulator::read(r);
      modes[kModeWithPv] = PofAccumulator::read(r);
    }
    FINSER_REQUIRE(r.exhausted(), "McPartial: trailing bytes in blob");
    return p;
  }
};

}  // namespace finser::core
