#include "finser/core/ser_flow.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "finser/exec/exec.hpp"
#include "finser/exec/thread_pool.hpp"
#include "finser/obs/obs.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fingerprint.hpp"

namespace finser::core {

SerFlow::SerFlow(const SerFlowConfig& config)
    : config_(config),
      layout_(config.array_rows, config.array_cols, config.cell_geometry,
              config.pattern, config.pattern_seed),
      mc_seed_cursor_(config.seed) {}

const sram::CellSoftErrorModel& SerFlow::cell_model(
    const exec::ProgressSink& progress, const ckpt::RunOptions& run) {
  if (model_.has_value()) return *model_;

  sram::CharacterizerConfig ccfg = config_.characterization;
  if (ccfg.threads == 0) ccfg.threads = config_.threads;
  const sram::CellCharacterizer characterizer(config_.cell_design, ccfg);
  const std::uint64_t fp =
      config_.characterization.fingerprint(config_.cell_design);

  if (!config_.lut_cache_path.empty()) {
    sram::CellSoftErrorModel cached;
    if (sram::CellSoftErrorModel::try_load(config_.lut_cache_path, fp, cached)) {
      FINSER_OBS_COUNT("core.lut_cache_hits", 1);
      progress.message("POF LUTs loaded from " + config_.lut_cache_path);
      model_ = std::move(cached);
      return *model_;
    }
    FINSER_OBS_COUNT("core.lut_cache_misses", 1);
  }

  // The characterization checkpoint is a sibling of the caller's: same
  // cancel token and interval, its own file (unit = supply voltage).
  ckpt::RunOptions crun = run;
  if (run.checkpointing()) crun.checkpoint_path = run.checkpoint_path + ".cell";

  progress.message("characterizing SRAM cell (POF LUTs)...");
  model_ = characterizer.characterize(progress, crun);
  if (!config_.lut_cache_path.empty()) {
    try {
      model_->save(config_.lut_cache_path);
      progress.message("POF LUTs cached to " + config_.lut_cache_path);
    } catch (const util::Error& e) {
      // The model is already in memory — a failed cache write costs the
      // *next* run a re-characterization, never this one.
      progress.message(std::string("warning: POF LUT cache not written: ") +
                       e.what());
    }
  }
  return *model_;
}

void SerFlow::set_cell_model(sram::CellSoftErrorModel model) {
  FINSER_REQUIRE(model.config_fingerprint == model_fingerprint(),
                 "SerFlow::set_cell_model: model fingerprint does not match "
                 "this flow's characterization config");
  model_ = std::move(model);
}

sram::ClusterPofSurface* SerFlow::ensure_cluster_surface() {
  if (!config_.array_mc.cluster.enabled()) return nullptr;
  if (!cluster_surface_) {
    cluster_surface_ = std::make_unique<sram::ClusterPofSurface>(
        config_.cell_design, config_.array_mc.cluster);
  }
  return cluster_surface_.get();
}

ArrayMcResult SerFlow::run_at_energy(phys::Species species, double e_mev,
                                     const exec::ProgressSink& progress) {
  const sram::CellSoftErrorModel& model = cell_model(progress);
  ArrayMcConfig cfg = config_.array_mc;
  if (cfg.threads == 0) cfg.threads = config_.threads;
  cfg.cluster_design = &config_.cell_design;
  cfg.cluster_surface = ensure_cluster_surface();
  ArrayMc mc(layout_, model, cfg);
  return mc.run(species, e_mev, mc_seed_cursor_++, progress);
}

namespace {

/// Identity of one sweep for checkpoint validation: everything that decides
/// the per-bin results. Thread budget and checkpoint cadence are excluded —
/// they never change the numbers.
std::uint64_t sweep_fingerprint(const SerFlowConfig& cfg,
                                const sram::ArrayLayout& layout,
                                std::uint64_t model_fp, phys::Species species,
                                const std::vector<env::EnergyBin>& bins,
                                const std::vector<std::uint64_t>& bin_seeds,
                                bool neutron) {
  util::Fnv1a h;
  h.str("finser.ser_flow.sweep.v3");
  h.u64(model_fp);
  h.u64(static_cast<std::uint64_t>(species));
  h.u64(bins.size());
  for (const env::EnergyBin& b : bins) {
    h.f64(b.e_rep_mev).f64(b.e_lo_mev).f64(b.e_hi_mev);
  }
  // Seeds encode cfg.seed plus the flow's cursor position at sweep entry.
  for (std::uint64_t s : bin_seeds) h.u64(s);
  if (neutron) {
    const NeutronMcConfig& n = cfg.neutron_mc;
    h.u64(n.histories).u64(n.chunk);
    h.u64(static_cast<std::uint64_t>(n.angular));
    h.u64(static_cast<std::uint64_t>(n.straggling));
    h.f64(n.interaction_depth_um).f64(n.source_margin_nm);
    h.f64(n.ci.target).u64(n.ci.min_chunks).f64(n.ci.growth);
  } else {
    const ArrayMcConfig& a = cfg.array_mc;
    h.u64(a.strikes).u64(a.chunk);
    h.u64(static_cast<std::uint64_t>(a.angular));
    h.u64(static_cast<std::uint64_t>(a.position));
    h.u64(static_cast<std::uint64_t>(a.straggling));
    h.f64(a.beam_direction.x).f64(a.beam_direction.y).f64(a.beam_direction.z);
    h.f64(a.source_margin_nm).f64(a.source_height_nm);
    h.f64(a.sampling.focus_fraction).f64(a.sampling.focus_margin_nm);
    h.f64(a.sampling.direction_bias);
    h.u64(a.sampling.energy_strata);
    h.u64(static_cast<std::uint64_t>(a.sampling.qmc));
    h.f64(a.ci.target).u64(a.ci.min_chunks).f64(a.ci.growth);
    h.u64(static_cast<std::uint64_t>(a.cluster.mode));
    h.f64(a.cluster.share_fraction);
    h.u64(a.cluster.pv_samples);
    h.f64(a.cluster.quantum_fc);
  }
  hash_layout(h, layout);
  return h.hash();
}

}  // namespace

EnergySweepResult SerFlow::sweep(const env::Spectrum& spectrum,
                                 const exec::ProgressSink& progress,
                                 const ckpt::RunOptions& run) {
  const sram::CellSoftErrorModel& model = cell_model(progress, run);

  std::size_t bins = config_.alpha_bins;
  double e_lo = config_.alpha_e_lo_mev;
  double e_hi = config_.alpha_e_hi_mev;
  double margin = config_.array_mc.source_margin_nm;
  switch (spectrum.species()) {
    case phys::Species::kProton:
      bins = config_.proton_bins;
      e_lo = config_.proton_e_lo_mev;
      e_hi = config_.proton_e_hi_mev;
      break;
    case phys::Species::kNeutron:
      bins = config_.neutron_bins;
      e_lo = config_.neutron_e_lo_mev;
      e_hi = config_.neutron_e_hi_mev;
      margin = config_.neutron_mc.source_margin_nm;
      break;
    default:
      break;
  }

  EnergySweepResult result;
  result.species = spectrum.species();
  result.vdds = model.vdds();
  result.bins = spectrum.discretize(e_lo, e_hi, bins);

  const bool neutron = spectrum.species() == phys::Species::kNeutron;
  const std::size_t n_bins = result.bins.size();

  // Per-bin seeds are drawn serially in bin order, exactly one cursor
  // increment per bin — the sweep consumes the same cursor range no matter
  // how the bins are scheduled.
  std::vector<std::uint64_t> bin_seeds(n_bins);
  for (std::uint64_t& s : bin_seeds) s = mc_seed_cursor_++;

  // Two-level split of the thread budget: energy bins as the outer task
  // level, the strike loop inside each bin on the remainder. Each bin gets
  // its own engine instance (engines are cheap; the heavy state lives in
  // the per-worker transporters inside run()).
  const std::size_t budget = exec::resolve_threads(config_.threads);
  const std::size_t outer = std::max<std::size_t>(1, std::min(n_bins, budget));
  const std::size_t inner = std::max<std::size_t>(1, budget / outer);

  ArrayMcConfig charged_cfg = config_.array_mc;
  if (charged_cfg.threads == 0) charged_cfg.threads = inner;
  NeutronMcConfig neutron_cfg = config_.neutron_mc;
  if (neutron_cfg.threads == 0) neutron_cfg.threads = inner;

  // Correlated charge-collection mode (charged species only): every bin's
  // engine shares the flow's cluster surface, so memoized joint simulations
  // amortize across bins — and, through the optional cluster cache, across
  // runs and workers. Preloading entries only skips simulations (values are
  // pure functions of keys); it can never change a result.
  sram::ClusterPofSurface* cluster_surface = nullptr;
  std::uint64_t cluster_fp = 0;
  if (!neutron) {
    charged_cfg.cluster_design = &config_.cell_design;
    cluster_surface = ensure_cluster_surface();
    charged_cfg.cluster_surface = cluster_surface;
    if (cluster_surface != nullptr && config_.cluster_cache != nullptr) {
      cluster_fp = cluster_surface->fingerprint(model.config_fingerprint);
      std::vector<std::uint8_t> blob;
      if (config_.cluster_cache->load(cluster_fp, blob)) {
        try {
          const std::size_t n = cluster_surface->decode_merge(blob);
          if (n > 0) {
            progress.message("cluster surface: " + std::to_string(n) +
                             " cached entr" + (n == 1 ? "y" : "ies") +
                             " loaded");
          }
        } catch (const std::exception&) {
          // A malformed blob degrades to recompute, never a failed sweep.
        }
      }
    }
  }

  result.per_bin.resize(n_bins);
  exec::ThreadPool outer_pool(outer);
  const auto run_bin = [&](std::size_t i) {
    const env::EnergyBin& bin = result.bins[i];
    std::ostringstream label;
    label << "core.energy_bin " << spectrum.name() << " E=" << bin.e_rep_mev
          << "MeV";
    obs::ScopedSpan bin_span("core.energy_bin", label.str());
    FINSER_OBS_COUNT("core.energy_bins", 1);
    // Inner engines see the cancel token only: checkpointing happens at
    // bin granularity out here, cancellation at chunk granularity inside.
    const ckpt::RunOptions inner_run = run.cancel_only();
    std::unique_ptr<ArrayEngine> engine;
    if (neutron) {
      engine = std::make_unique<NeutronArrayMc>(layout_, model, neutron_cfg);
    } else {
      engine = std::make_unique<ArrayMc>(layout_, model, charged_cfg);
    }
    const EnergyPoint point{spectrum.species(), bin.e_rep_mev, bin.e_lo_mev,
                            bin.e_hi_mev};

    // Bin-level artifact cache (campaigns): a cached blob decodes to the
    // exact result a fresh run would produce (bit-exact codec), so a hit
    // skips the Monte Carlo entirely and is bit-identical to running it.
    ArrayMcResult r;
    bool have_result = false;
    const std::uint64_t bin_fp =
        config_.bin_cache != nullptr
            ? engine->point_fingerprint(point, bin_seeds[i])
            : 0;
    if (config_.bin_cache != nullptr) {
      std::vector<std::uint8_t> blob;
      if (config_.bin_cache->load(bin_fp, blob)) {
        try {
          util::ByteReader reader(blob);
          r = decode_result(reader);
          FINSER_REQUIRE(reader.exhausted(),
                         "bin cache: trailing bytes in cached result");
          FINSER_OBS_COUNT("core.bin_cache_hits", 1);
          have_result = true;
        } catch (const std::exception&) {
          // A malformed blob degrades to recompute, never a failed sweep.
        }
      }
      if (!have_result) FINSER_OBS_COUNT("core.bin_cache_misses", 1);
    }
    if (!have_result) {
      r = engine->run_point(point, bin_seeds[i], {}, inner_run);
      if (config_.bin_cache != nullptr) {
        config_.bin_cache->store(bin_fp, encode_result(r));
      }
    }
    if (progress) {
      std::ostringstream os;
      os << spectrum.name() << ": E=" << bin.e_rep_mev << " MeV done";
      progress.message(os.str());
    }
    return r;
  };

  if (!run.active()) {
    outer_pool.parallel_for_chunks(n_bins, 1, [&](const exec::ChunkRange& r) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        result.per_bin[i] = run_bin(i);
      }
    });
  } else {
    // Checkpointable sweep: one unit per energy bin, blob = the bin's
    // serialized ArrayMcResult. Restored bins are skipped; everything else
    // runs exactly as in the plain path, so resume is bit-identical.
    const std::uint64_t fp =
        sweep_fingerprint(config_, layout_, model.config_fingerprint,
                          spectrum.species(), result.bins, bin_seeds, neutron);
    const ckpt::UnitRunResult units = ckpt::run_units(
        outer_pool, n_bins, fp, run, [&](const exec::ChunkRange& u) {
          return encode_result(run_bin(u.index));
        });
    if (progress && units.reused > 0) {
      progress.message("sweep: resumed, " + std::to_string(units.reused) + "/" +
                       std::to_string(n_bins) +
                       " energy bin(s) restored from checkpoint");
    }
    for (std::size_t i = 0; i < n_bins; ++i) {
      util::ByteReader r(units.blobs[i]);
      result.per_bin[i] = decode_result(r);
      FINSER_REQUIRE(r.exhausted(),
                     "sweep: trailing bytes in checkpointed bin result");
    }
  }

  // Persist the (possibly grown) cluster surface for the next run/worker.
  // Same never-throw contract as bin_cache stores.
  if (cluster_surface != nullptr && config_.cluster_cache != nullptr &&
      cluster_surface->size() > 0) {
    config_.cluster_cache->store(cluster_fp, cluster_surface->encode());
  }

  // Eq. 8 per (vdd, mode). The normalization area is the source-sampling
  // plane (equals the array footprint when the margin is zero).
  const double lx = layout_.width_nm() + 2.0 * margin;
  const double ly = layout_.height_nm() + 2.0 * margin;
  result.fit.resize(result.vdds.size());
  for (std::size_t v = 0; v < result.vdds.size(); ++v) {
    for (std::size_t mode = 0; mode < 2; ++mode) {
      std::vector<PofEstimate> pofs;
      pofs.reserve(result.bins.size());
      for (const ArrayMcResult& r : result.per_bin) pofs.push_back(r.est[v][mode]);
      result.fit[v][mode] = integrate_fit(result.bins, pofs, lx, ly);
    }
  }
  return result;
}

namespace {

/// Parse a finite double from \p name, with \p invalid_msg-driven fallback.
/// Returns \p fallback when unset or malformed.
double env_double(const char* name, double fallback, bool allow_zero) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  // Tolerate trailing whitespace, but nothing else.
  while (end != nullptr && *end != '\0' &&
         std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  const bool parsed = end != nullptr && end != raw && *end == '\0';
  const bool in_range = std::isfinite(v) && (allow_zero ? v >= 0.0 : v > 0.0);
  if (!parsed || !in_range) {
    std::fprintf(stderr,
                 "finser: ignoring invalid %s=\"%s\" (expected a finite value "
                 "%s 0); using %g\n",
                 name, raw, allow_zero ? ">=" : ">", fallback);
    return fallback;
  }
  return v;
}

}  // namespace

double mc_scale_from_env() { return env_double("FINSER_MC_SCALE", 1.0, false); }

void apply_mc_scale(SerFlowConfig& config, double scale) {
  FINSER_REQUIRE(scale > 0.0, "apply_mc_scale: scale must be positive");
  auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(static_cast<double>(n) * scale)));
  };
  config.array_mc.strikes = scaled(config.array_mc.strikes);
  config.neutron_mc.histories = scaled(config.neutron_mc.histories);
  config.characterization.pv_samples_single =
      scaled(config.characterization.pv_samples_single);
  config.characterization.pv_samples_grid =
      scaled(config.characterization.pv_samples_grid);
}

double ci_target_from_env() { return env_double("FINSER_CI_TARGET", -1.0, true); }

void apply_ci_target(SerFlowConfig& config, double target) {
  if (target < 0.0) return;  // Unset: keep the configured values.
  config.array_mc.ci.target = target;
  config.neutron_mc.ci.target = target;
}

std::optional<sram::ClusterMode> cluster_mode_from_env() {
  const char* raw = std::getenv("FINSER_CLUSTER");
  if (raw == nullptr) return std::nullopt;
  const auto mode = sram::cluster_mode_from(raw);
  if (!mode) {
    std::fprintf(stderr,
                 "finser: ignoring invalid FINSER_CLUSTER=\"%s\" (expected "
                 "1x1, 2x2 or 1x4)\n",
                 raw);
  }
  return mode;
}

void apply_cluster(SerFlowConfig& config,
                   std::optional<sram::ClusterMode> mode) {
  if (!mode) return;  // Unset: keep the configured value.
  config.array_mc.cluster.mode = *mode;
}

}  // namespace finser::core
