#include "finser/core/ser_flow.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "finser/util/error.hpp"

namespace finser::core {

SerFlow::SerFlow(const SerFlowConfig& config)
    : config_(config),
      layout_(config.array_rows, config.array_cols, config.cell_geometry,
              config.pattern, config.pattern_seed),
      mc_seed_cursor_(config.seed) {}

const sram::CellSoftErrorModel& SerFlow::cell_model(const sram::ProgressFn& progress) {
  if (model_.has_value()) return *model_;

  const sram::CellCharacterizer characterizer(config_.cell_design,
                                              config_.characterization);
  const std::uint64_t fp =
      config_.characterization.fingerprint(config_.cell_design);

  if (!config_.lut_cache_path.empty()) {
    sram::CellSoftErrorModel cached;
    if (sram::CellSoftErrorModel::try_load(config_.lut_cache_path, fp, cached)) {
      if (progress) progress("POF LUTs loaded from " + config_.lut_cache_path);
      model_ = std::move(cached);
      return *model_;
    }
  }

  if (progress) progress("characterizing SRAM cell (POF LUTs)...");
  model_ = characterizer.characterize(progress);
  if (!config_.lut_cache_path.empty()) {
    model_->save(config_.lut_cache_path);
    if (progress) progress("POF LUTs cached to " + config_.lut_cache_path);
  }
  return *model_;
}

ArrayMcResult SerFlow::run_at_energy(phys::Species species, double e_mev,
                                     const sram::ProgressFn& progress) {
  const sram::CellSoftErrorModel& model = cell_model(progress);
  ArrayMc mc(layout_, model, config_.array_mc);
  stats::Rng rng(mc_seed_cursor_++);
  return mc.run(species, e_mev, rng);
}

EnergySweepResult SerFlow::sweep(const env::Spectrum& spectrum,
                                 const sram::ProgressFn& progress) {
  const sram::CellSoftErrorModel& model = cell_model(progress);

  std::size_t bins = config_.alpha_bins;
  double e_lo = config_.alpha_e_lo_mev;
  double e_hi = config_.alpha_e_hi_mev;
  double margin = config_.array_mc.source_margin_nm;
  switch (spectrum.species()) {
    case phys::Species::kProton:
      bins = config_.proton_bins;
      e_lo = config_.proton_e_lo_mev;
      e_hi = config_.proton_e_hi_mev;
      break;
    case phys::Species::kNeutron:
      bins = config_.neutron_bins;
      e_lo = config_.neutron_e_lo_mev;
      e_hi = config_.neutron_e_hi_mev;
      margin = config_.neutron_mc.source_margin_nm;
      break;
    default:
      break;
  }

  EnergySweepResult result;
  result.species = spectrum.species();
  result.vdds = model.vdds();
  result.bins = spectrum.discretize(e_lo, e_hi, bins);

  const bool neutron = spectrum.species() == phys::Species::kNeutron;
  std::optional<ArrayMc> charged_mc;
  std::optional<NeutronArrayMc> neutron_mc;
  if (neutron) {
    neutron_mc.emplace(layout_, model, config_.neutron_mc);
  } else {
    charged_mc.emplace(layout_, model, config_.array_mc);
  }

  for (const env::EnergyBin& bin : result.bins) {
    stats::Rng rng(mc_seed_cursor_++);
    result.per_bin.push_back(
        neutron ? neutron_mc->run(bin.e_rep_mev, rng)
                : charged_mc->run(spectrum.species(), bin.e_rep_mev, rng));
    if (progress) {
      std::ostringstream os;
      os << spectrum.name() << ": E=" << bin.e_rep_mev << " MeV done";
      progress(os.str());
    }
  }

  // Eq. 8 per (vdd, mode). The normalization area is the source-sampling
  // plane (equals the array footprint when the margin is zero).
  const double lx = layout_.width_nm() + 2.0 * margin;
  const double ly = layout_.height_nm() + 2.0 * margin;
  result.fit.resize(result.vdds.size());
  for (std::size_t v = 0; v < result.vdds.size(); ++v) {
    for (std::size_t mode = 0; mode < 2; ++mode) {
      std::vector<PofEstimate> pofs;
      pofs.reserve(result.bins.size());
      for (const ArrayMcResult& r : result.per_bin) pofs.push_back(r.est[v][mode]);
      result.fit[v][mode] = integrate_fit(result.bins, pofs, lx, ly);
    }
  }
  return result;
}

double mc_scale_from_env() {
  const char* raw = std::getenv("FINSER_MC_SCALE");
  if (raw == nullptr) return 1.0;
  const double v = std::atof(raw);
  return v > 0.0 ? v : 1.0;
}

void apply_mc_scale(SerFlowConfig& config, double scale) {
  FINSER_REQUIRE(scale > 0.0, "apply_mc_scale: scale must be positive");
  auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(static_cast<double>(n) * scale)));
  };
  config.array_mc.strikes = scaled(config.array_mc.strikes);
  config.neutron_mc.histories = scaled(config.neutron_mc.histories);
  config.characterization.pv_samples_single =
      scaled(config.characterization.pv_samples_single);
  config.characterization.pv_samples_grid =
      scaled(config.characterization.pv_samples_grid);
}

}  // namespace finser::core
