#pragma once
/// \file stamp_kernels.hpp
/// \brief Shared per-device stamp arithmetic (internal to finser::spice).
///
/// Both stamping paths — the polymorphic reference one (devices.cpp,
/// Device::stamp) and the devirtualized compiled one (compiled.cpp,
/// CompiledCircuit::stamp_all) — call these kernels, so the two produce
/// byte-identical MNA systems *by construction*: same expressions, same
/// evaluation order, same sequence of Mna::add calls. Any change to a
/// device's companion model belongs here, never in only one caller.

#include <cstddef>

#include "finser/spice/circuit.hpp"
#include "finser/spice/devices.hpp"
#include "finser/spice/finfet.hpp"
#include "finser/spice/mna.hpp"
#include "finser/util/error.hpp"

namespace finser::spice::detail {

/// Two-terminal conductance pattern (resistor, capacitor companion).
inline void stamp_conductance(Mna& mna, std::size_t a, std::size_t b, double g) {
  mna.add(a, a, g);
  mna.add(b, b, g);
  mna.add(a, b, -g);
  mna.add(b, a, -g);
}

/// Capacitor companion conductance for the step in \p ctx.
inline double cap_geq(const StampContext& ctx, double c) {
  const double factor = ctx.method == Integrator::kTrapezoidal ? 2.0 : 1.0;
  return factor * c / ctx.dt;
}

/// Capacitor companion current for the step in \p ctx.
/// BE:   i_n = (C/dt)(v_n − v_{n-1})            => ieq = geq·v_prev
/// TRAP: i_n = (2C/dt)(v_n − v_{n-1}) − i_{n-1} => ieq = geq·v_prev + i_prev
inline double cap_ieq(const StampContext& ctx, double c, double v_prev,
                      double i_prev) {
  const double geq = cap_geq(ctx, c);
  double ieq = geq * v_prev;
  if (ctx.method == Integrator::kTrapezoidal) ieq += i_prev;
  return ieq;
}

/// Capacitor stamp (open circuit in DC).
inline void stamp_capacitor(Mna& mna, const StampContext& ctx, std::size_t a,
                            std::size_t b, double c, double v_prev,
                            double i_prev) {
  if (!ctx.transient) return;
  FINSER_REQUIRE(ctx.dt > 0.0, "Capacitor::stamp: non-positive dt");
  const double geq = cap_geq(ctx, c);
  const double ieq = cap_ieq(ctx, c, v_prev, i_prev);
  stamp_conductance(mna, a, b, geq);
  // Branch current a->b: i = geq·v_ab − ieq; the −ieq part moves to the RHS.
  mna.add_rhs(a, ieq);
  mna.add_rhs(b, -ieq);
}

/// Accepted-step state update of a capacitor's (v_prev, i_prev) history.
inline void commit_capacitor(const StampContext& ctx, double c, std::size_t a,
                             std::size_t b, double& v_prev, double& i_prev) {
  if (!ctx.transient) return;
  const double v_now = ctx.v(a) - ctx.v(b);
  const double geq = cap_geq(ctx, c);
  double i_now = geq * (v_now - v_prev);
  if (ctx.method == Integrator::kTrapezoidal) i_now -= i_prev;
  v_prev = v_now;
  i_prev = i_now;
}

/// Ideal voltage source with branch unknown \p branch_id and value \p volts.
inline void stamp_vsource(Mna& mna, const StampContext& ctx, std::size_t a,
                          std::size_t b, std::size_t branch_id, double volts) {
  const std::size_t k = ctx.branch_index(branch_id);
  // Branch current flows from + (a) through the source to − (b).
  mna.add(a, k, 1.0);
  mna.add(b, k, -1.0);
  mna.add(k, a, 1.0);
  mna.add(k, b, -1.0);
  mna.add_rhs(k, volts);
}

/// Independent current source pushing \p shape current from \p from to \p to.
inline void stamp_isource(Mna& mna, const StampContext& ctx, std::size_t from,
                          std::size_t to, const PulseShape& shape) {
  if (!ctx.transient) return;
  const double i = shape.value(ctx.time);
  if (i == 0.0) return;
  // Current leaves `from` and enters `to`.
  mna.add_rhs(from, -i);
  mna.add_rhs(to, i);
}

/// Hard time points of a pulse: leading/trailing edge, plus the apex of a
/// triangular pulse (where dI/dt flips sign).
inline void pulse_breakpoints(const PulseShape& shape, double t_end,
                              std::vector<double>& out) {
  const double t0 = shape.delay_s;
  const double t1 = shape.delay_s + shape.width_s;
  if (t0 > 0.0 && t0 < t_end) out.push_back(t0);
  if (t1 > 0.0 && t1 < t_end) out.push_back(t1);
  if (shape.kind == PulseShape::Kind::kTriangular) {
    const double tm = shape.delay_s + 0.5 * shape.width_s;
    if (tm > 0.0 && tm < t_end) out.push_back(tm);
  }
}

/// Linearized FinFET companion model at the iterate in \p ctx.
inline void stamp_mosfet(Mna& mna, const StampContext& ctx, std::size_t d,
                         std::size_t g, std::size_t s, const FinFetModel& model,
                         double nfin, double delta_vt, double temp_k) {
  const double vd = ctx.v(d);
  const double vg = ctx.v(g);
  const double vs = ctx.v(s);
  const MosOp op = evaluate_finfet(model, vd, vg, vs, delta_vt, nfin, temp_k);

  // Linearized drain current: i_d ≈ gds·vds + gm·vgs + ieq.
  const double ieq = op.ids - op.gm * (vg - vs) - op.gds * (vd - vs);

  mna.add(d, d, op.gds);
  mna.add(d, g, op.gm);
  mna.add(d, s, -(op.gds + op.gm));
  mna.add_rhs(d, -ieq);

  mna.add(s, d, -op.gds);
  mna.add(s, g, -op.gm);
  mna.add(s, s, op.gds + op.gm);
  mna.add_rhs(s, ieq);
}

}  // namespace finser::spice::detail
