#include "finser/spice/circuit.hpp"

#include "finser/util/error.hpp"

namespace finser::spice {

namespace {
const std::string kGroundName = "gnd";
}

std::size_t Circuit::node(const std::string& name) {
  FINSER_REQUIRE(!name.empty(), "Circuit::node: empty node name");
  if (name == "0" || name == kGroundName) return kGround;
  const auto it = node_index_.find(name);
  if (it != node_index_.end()) return it->second;
  const std::size_t idx = names_.size();
  names_.push_back(name);
  node_index_.emplace(name, idx);
  return idx;
}

std::size_t Circuit::find_node(const std::string& name) const {
  if (name == "0" || name == kGroundName) return kGround;
  const auto it = node_index_.find(name);
  FINSER_REQUIRE(it != node_index_.end(), "Circuit::find_node: unknown node " + name);
  return it->second;
}

const std::string& Circuit::node_name(std::size_t idx) const {
  if (idx == kGround) return kGroundName;
  FINSER_REQUIRE(idx < names_.size(), "Circuit::node_name: index out of range");
  return names_[idx];
}

}  // namespace finser::spice
