#include "finser/spice/mna.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "finser/obs/obs.hpp"
#include "finser/util/error.hpp"

namespace finser::spice {

namespace {

[[noreturn]] void throw_consumed(const char* op) {
  throw util::LogicError(std::string("Mna::") + op +
                         ": system already consumed by a factorization; "
                         "clear() and restamp before reusing it");
}

}  // namespace

Mna::Mna(std::size_t size) : n_(size), a_(size * size, 0.0), b_(size, 0.0),
                             perm_(size, 0) {
  FINSER_REQUIRE(size > 0, "Mna: empty system");
}

void Mna::clear() {
  std::fill(a_.begin(), a_.end(), 0.0);
  std::fill(b_.begin(), b_.end(), 0.0);
  consumed_ = false;
}

void Mna::add(std::size_t i, std::size_t j, double g) {
  if (consumed_) throw_consumed("add");
  if (i == kGround || j == kGround) return;
  a_[i * n_ + j] += g;
}

void Mna::add_rhs(std::size_t i, double v) {
  if (consumed_) throw_consumed("add_rhs");
  if (i == kGround) return;
  b_[i] += v;
}

void Mna::add_gmin(double gmin, std::size_t n_nodes) {
  if (consumed_) throw_consumed("add_gmin");
  for (std::size_t i = 0; i < n_nodes && i < n_; ++i) {
    a_[i * n_ + i] += gmin;
  }
}

std::vector<double> Mna::solve() {
  std::vector<double> x;
  factor_and_solve(nullptr, x);
  return x;
}

void Mna::solve_with_cache(PivotCache& cache, std::vector<double>& x_out) {
  factor_and_solve(&cache, x_out);
}

void Mna::factor_and_solve(PivotCache* cache, std::vector<double>& x) {
  FINSER_OBS_COUNT("spice.mna.solves", 1);
  if (consumed_) throw_consumed("solve");
  // A NaN/Inf on the right-hand side poisons every unknown during back
  // substitution; reject it up front with a precise diagnostic instead of
  // reporting a misleading "non-finite solution component" later.
  for (std::size_t i = 0; i < n_; ++i) {
    if (!std::isfinite(b_[i])) {
      throw util::NumericalError("Mna::solve: non-finite rhs entry at row " +
                                 std::to_string(i));
    }
  }
  consumed_ = true;

  // In-place LU with partial pivoting on the row-major matrix. When a pivot
  // cache is supplied, the predicted order is verified against the column
  // winner found by the very same scan fresh pivoting performs, so the
  // elimination arithmetic is identical whether or not the prediction holds
  // (see the class comment); the prediction outcome only feeds the
  // pivot_reuse/pivot_refactor observability split.
  const bool predicted =
      cache != nullptr && cache->valid && cache->perm.size() == n_;
  bool prediction_held = predicted;

  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n_; ++col) {
    // Pivot search.
    std::size_t piv = col;
    double best = std::abs(a_[perm_[col] * n_ + col]);
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double v = std::abs(a_[perm_[r] * n_ + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (!(best > 1e-300)) {
      if (cache != nullptr) cache->invalidate();
      throw util::NumericalError("Mna::solve: singular matrix at column " +
                                 std::to_string(col));
    }
    if (prediction_held && perm_[piv] != cache->perm[col]) {
      // The cached pivot fell below the column winner: fall back to fresh
      // partial pivoting from this column on (which the scan above already
      // is — only the bookkeeping notices).
      prediction_held = false;
    }
    std::swap(perm_[col], perm_[piv]);

    const std::size_t prow = perm_[col];
    const double diag = a_[prow * n_ + col];
    for (std::size_t r = col + 1; r < n_; ++r) {
      const std::size_t row = perm_[r];
      const double factor = a_[row * n_ + col] / diag;
      if (factor == 0.0) continue;
      a_[row * n_ + col] = factor;  // Store L in place.
      for (std::size_t c = col + 1; c < n_; ++c) {
        a_[row * n_ + c] -= factor * a_[prow * n_ + c];
      }
      b_[row] -= factor * b_[prow];
    }
  }

  if (cache != nullptr) {
    cache->perm = perm_;
    cache->valid = true;
    if (prediction_held) {
      FINSER_OBS_COUNT("spice.mna.pivot_reuse", 1);
    } else {
      FINSER_OBS_COUNT("spice.mna.pivot_refactor", 1);
    }
  }

  // Back substitution.
  x.assign(n_, 0.0);
  for (std::size_t ri = n_; ri-- > 0;) {
    const std::size_t row = perm_[ri];
    double acc = b_[row];
    for (std::size_t c = ri + 1; c < n_; ++c) {
      acc -= a_[row * n_ + c] * x[c];
    }
    x[ri] = acc / a_[row * n_ + ri];
    if (!std::isfinite(x[ri])) {
      throw util::NumericalError("Mna::solve: non-finite solution component");
    }
  }
}

}  // namespace finser::spice
