#include "finser/spice/compiled.hpp"

#include <string>

#include "finser/obs/obs.hpp"
#include "finser/util/error.hpp"
#include "stamp_kernels.hpp"

namespace finser::spice {

CompiledCircuit::CompiledCircuit(const Circuit& circuit)
    : src_(&circuit),
      node_count_(circuit.node_count()),
      unknown_count_(circuit.unknown_count()) {
  ops_.reserve(circuit.devices().size());
  for (const auto& dev : circuit.devices()) {
    const Device* d = dev.get();
    if (const auto* r = dynamic_cast<const Resistor*>(d)) {
      ops_.push_back({Kind::kResistor,
                      static_cast<std::uint32_t>(resistors_.size())});
      resistors_.push_back({r->node_a(), r->node_b(), r->conductance()});
    } else if (const auto* c = dynamic_cast<const Capacitor*>(d)) {
      ops_.push_back({Kind::kCapacitor,
                      static_cast<std::uint32_t>(capacitors_.size())});
      capacitors_.push_back(
          {c->node_a(), c->node_b(), c->capacitance(), 0.0, 0.0});
    } else if (const auto* p = dynamic_cast<const PwlVSource*>(d)) {
      ops_.push_back({Kind::kPwlVSource,
                      static_cast<std::uint32_t>(pwls_.size())});
      pwls_.push_back({p, p->node_a(), p->node_b(), p->branch_id()});
    } else if (const auto* v = dynamic_cast<const VSource*>(d)) {
      ops_.push_back({Kind::kVSource,
                      static_cast<std::uint32_t>(vsources_.size())});
      vsources_.push_back(
          {v, v->node_a(), v->node_b(), v->branch_id(), v->voltage()});
    } else if (const auto* s = dynamic_cast<const PulseISource*>(d)) {
      ops_.push_back({Kind::kPulseISource,
                      static_cast<std::uint32_t>(isources_.size())});
      isources_.push_back({s, s->node_from(), s->node_to(), s->shape()});
    } else if (const auto* m = dynamic_cast<const Mosfet*>(d)) {
      ops_.push_back({Kind::kMosfet,
                      static_cast<std::uint32_t>(mosfets_.size())});
      mosfets_.push_back({m, m->drain(), m->gate(), m->source(), &m->model(),
                          m->nfin(), m->delta_vt(), m->temperature()});
    } else {
      throw util::InvalidArgument(
          std::string("CompiledCircuit: unsupported device kind '") +
          d->kind() + "'");
    }
  }

  // Precompute the fused-path flat slot indices (see stamp_fused): matrix
  // entry (i,j) lives at i·n + j, rhs entry i at i, and any ground-touching
  // stamp is redirected to the trailing scratch slot (n² resp. n) so the
  // inner loop needs no kGround branches — the scratch values are written
  // and never read, exactly mirroring Mna::add's silent drop.
  const std::size_t n = unknown_count_;
  const auto ms = [n](std::size_t i, std::size_t j) {
    return static_cast<Slot>((i == kGround || j == kGround) ? n * n
                                                            : i * n + j);
  };
  const auto rs = [n](std::size_t i) {
    return static_cast<Slot>(i == kGround ? n : i);
  };
  for (ResistorRec& r : resistors_) {
    r.s_aa = ms(r.a, r.a);
    r.s_bb = ms(r.b, r.b);
    r.s_ab = ms(r.a, r.b);
    r.s_ba = ms(r.b, r.a);
  }
  for (CapacitorRec& c : capacitors_) {
    c.s_aa = ms(c.a, c.a);
    c.s_bb = ms(c.b, c.b);
    c.s_ab = ms(c.a, c.b);
    c.s_ba = ms(c.b, c.a);
    c.r_a = rs(c.a);
    c.r_b = rs(c.b);
  }
  for (VSourceRec& v : vsources_) {
    // The branch unknown index is fixed per circuit: branch_offset is always
    // node_count() in both engine paths (StampContext::branch_index).
    const std::size_t k = node_count_ + v.branch;
    v.s_ak = ms(v.a, k);
    v.s_bk = ms(v.b, k);
    v.s_ka = ms(k, v.a);
    v.s_kb = ms(k, v.b);
    v.r_k = rs(k);
  }
  for (PwlRec& p : pwls_) {
    const std::size_t k = node_count_ + p.branch;
    p.s_ak = ms(p.a, k);
    p.s_bk = ms(p.b, k);
    p.s_ka = ms(k, p.a);
    p.s_kb = ms(k, p.b);
    p.r_k = rs(k);
  }
  for (ISourceRec& s : isources_) {
    s.r_from = rs(s.from);
    s.r_to = rs(s.to);
  }
  for (MosRec& m : mosfets_) {
    m.s_dd = ms(m.d, m.d);
    m.s_dg = ms(m.d, m.g);
    m.s_ds = ms(m.d, m.s);
    m.s_sd = ms(m.s, m.d);
    m.s_sg = ms(m.s, m.g);
    m.s_ss = ms(m.s, m.s);
    m.r_d = rs(m.d);
    m.r_s = rs(m.s);
    m.plan = bake_finfet(*m.model, m.delta_vt, m.nfin, m.temp_k);
  }
  FINSER_OBS_COUNT("spice.compiled.compiles", 1);
}

void CompiledCircuit::rebind() {
  // Only parameters with device setters can have moved; topology, resistor
  // and capacitor values and PWL tables are immutable by construction.
  for (VSourceRec& rec : vsources_) rec.v = rec.src->voltage();
  for (ISourceRec& rec : isources_) rec.shape = rec.src->shape();
  for (MosRec& rec : mosfets_) {
    rec.delta_vt = rec.src->delta_vt();
    rec.temp_k = rec.src->temperature();
    rec.plan = bake_finfet(*rec.model, rec.delta_vt, rec.nfin, rec.temp_k);
  }
  FINSER_OBS_COUNT("spice.compiled.rebinds", 1);
}

void CompiledCircuit::stamp_all(Mna& mna, const StampContext& ctx) const {
  // Walk the plan in original netlist order: FP accumulation into shared MNA
  // entries is order-sensitive, and bit-identity with the reference path
  // requires the exact same Mna::add sequence.
  for (const Op op : ops_) {
    switch (op.kind) {
      case Kind::kResistor: {
        const ResistorRec& r = resistors_[op.idx];
        detail::stamp_conductance(mna, r.a, r.b, r.g);
        break;
      }
      case Kind::kCapacitor: {
        const CapacitorRec& c = capacitors_[op.idx];
        detail::stamp_capacitor(mna, ctx, c.a, c.b, c.c, c.v_prev, c.i_prev);
        break;
      }
      case Kind::kVSource: {
        const VSourceRec& v = vsources_[op.idx];
        detail::stamp_vsource(mna, ctx, v.a, v.b, v.branch, v.v);
        break;
      }
      case Kind::kPwlVSource: {
        const PwlRec& p = pwls_[op.idx];
        detail::stamp_vsource(mna, ctx, p.a, p.b, p.branch,
                              p.src->value(ctx.transient ? ctx.time : 0.0));
        break;
      }
      case Kind::kPulseISource: {
        const ISourceRec& s = isources_[op.idx];
        detail::stamp_isource(mna, ctx, s.from, s.to, s.shape);
        break;
      }
      case Kind::kMosfet: {
        const MosRec& m = mosfets_[op.idx];
        detail::stamp_mosfet(mna, ctx, m.d, m.g, m.s, *m.model, m.nfin,
                             m.delta_vt, m.temp_k);
        break;
      }
    }
  }
}

void CompiledCircuit::stamp_fused(double* a, double* b,
                                  const StampContext& ctx) const {
  // Same netlist-order walk and the same arithmetic as stamp_all(), with
  // Mna::add replaced by precomputed-slot accumulation (ground writes land in
  // the trailing scratch slot). Every expression below mirrors the matching
  // kernel in stamp_kernels.hpp term for term — the fused system must be
  // byte-identical to the Mna the reference path assembles.
  for (const Op op : ops_) {
    switch (op.kind) {
      case Kind::kResistor: {
        const ResistorRec& r = resistors_[op.idx];
        a[r.s_aa] += r.g;
        a[r.s_bb] += r.g;
        a[r.s_ab] += -r.g;
        a[r.s_ba] += -r.g;
        break;
      }
      case Kind::kCapacitor: {
        if (!ctx.transient) break;  // Open circuit in DC.
        FINSER_REQUIRE(ctx.dt > 0.0, "Capacitor::stamp: non-positive dt");
        const CapacitorRec& c = capacitors_[op.idx];
        const double geq = detail::cap_geq(ctx, c.c);
        const double ieq = detail::cap_ieq(ctx, c.c, c.v_prev, c.i_prev);
        a[c.s_aa] += geq;
        a[c.s_bb] += geq;
        a[c.s_ab] += -geq;
        a[c.s_ba] += -geq;
        b[c.r_a] += ieq;
        b[c.r_b] += -ieq;
        break;
      }
      case Kind::kVSource: {
        const VSourceRec& v = vsources_[op.idx];
        a[v.s_ak] += 1.0;
        a[v.s_bk] += -1.0;
        a[v.s_ka] += 1.0;
        a[v.s_kb] += -1.0;
        b[v.r_k] += v.v;
        break;
      }
      case Kind::kPwlVSource: {
        const PwlRec& p = pwls_[op.idx];
        a[p.s_ak] += 1.0;
        a[p.s_bk] += -1.0;
        a[p.s_ka] += 1.0;
        a[p.s_kb] += -1.0;
        b[p.r_k] += p.src->value(ctx.transient ? ctx.time : 0.0);
        break;
      }
      case Kind::kPulseISource: {
        if (!ctx.transient) break;
        const ISourceRec& s = isources_[op.idx];
        const double i = s.shape.value(ctx.time);
        if (i == 0.0) break;
        b[s.r_from] += -i;
        b[s.r_to] += i;
        break;
      }
      case Kind::kMosfet: {
        const MosRec& m = mosfets_[op.idx];
        const double vd = ctx.v(m.d);
        const double vg = ctx.v(m.g);
        const double vs = ctx.v(m.s);
        const MosOp mop = evaluate_finfet_planned(m.plan, vd, vg, vs);
        const double ieq =
            mop.ids - mop.gm * (vg - vs) - mop.gds * (vd - vs);
        const double gsum = mop.gds + mop.gm;
        a[m.s_dd] += mop.gds;
        a[m.s_dg] += mop.gm;
        a[m.s_ds] += -gsum;
        b[m.r_d] += -ieq;
        a[m.s_sd] += -mop.gds;
        a[m.s_sg] += -mop.gm;
        a[m.s_ss] += gsum;
        b[m.r_s] += ieq;
        break;
      }
    }
  }
}

void CompiledCircuit::initialize_state(const std::vector<double>& x) {
  for (CapacitorRec& c : capacitors_) {
    const double va = c.a == kGround ? 0.0 : x[c.a];
    const double vb = c.b == kGround ? 0.0 : x[c.b];
    c.v_prev = va - vb;
    c.i_prev = 0.0;  // DC steady state: no capacitor current.
  }
}

void CompiledCircuit::commit(const StampContext& ctx) {
  for (CapacitorRec& c : capacitors_) {
    detail::commit_capacitor(ctx, c.c, c.a, c.b, c.v_prev, c.i_prev);
  }
}

void CompiledCircuit::add_breakpoints(double t_end,
                                      std::vector<double>& out) const {
  // Breakpoints are sorted and deduplicated by the transient engine, so the
  // per-kind (rather than netlist-order) walk here is observationally
  // identical to the reference path.
  for (const PwlRec& p : pwls_) p.src->add_breakpoints(t_end, out);
  for (const ISourceRec& s : isources_) {
    detail::pulse_breakpoints(s.shape, t_end, out);
  }
}

bool CompiledCircuit::sources_constant_after(double t) const {
  for (const PwlRec& p : pwls_) {
    if (p.src->last_point_time() > t) return false;
  }
  for (const ISourceRec& s : isources_) {
    if (s.shape.end_time() > t) return false;
  }
  return true;
}

void CompiledCircuit::save_reactive_state(std::vector<double>& out) const {
  out.clear();
  out.reserve(2 * capacitors_.size());
  for (const CapacitorRec& c : capacitors_) {
    out.push_back(c.v_prev);
    out.push_back(c.i_prev);
  }
}

void CompiledCircuit::load_reactive_state(const std::vector<double>& in) {
  FINSER_REQUIRE(in.size() == 2 * capacitors_.size(),
                 "CompiledCircuit: reactive-state snapshot size mismatch");
  std::size_t k = 0;
  for (CapacitorRec& c : capacitors_) {
    c.v_prev = in[k++];
    c.i_prev = in[k++];
  }
}

}  // namespace finser::spice
