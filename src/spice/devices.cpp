#include "finser/spice/devices.hpp"

#include <algorithm>
#include <cmath>

#include "finser/util/error.hpp"
#include "stamp_kernels.hpp"

namespace finser::spice {

// ---------------------------------------------------------------------------
// Resistor
// ---------------------------------------------------------------------------

Resistor::Resistor(std::size_t a, std::size_t b, double ohms) : a_(a), b_(b) {
  FINSER_REQUIRE(ohms > 0.0, "Resistor: resistance must be positive");
  g_ = 1.0 / ohms;
}

void Resistor::stamp(Mna& mna, const StampContext& /*ctx*/) const {
  detail::stamp_conductance(mna, a_, b_, g_);
}

// ---------------------------------------------------------------------------
// Capacitor
// ---------------------------------------------------------------------------

Capacitor::Capacitor(std::size_t a, std::size_t b, double farads)
    : a_(a), b_(b), c_(farads) {
  FINSER_REQUIRE(farads > 0.0, "Capacitor: capacitance must be positive");
}

double Capacitor::companion_geq(const StampContext& ctx) const {
  return detail::cap_geq(ctx, c_);
}

double Capacitor::companion_ieq(const StampContext& ctx) const {
  return detail::cap_ieq(ctx, c_, v_prev_, i_prev_);
}

void Capacitor::stamp(Mna& mna, const StampContext& ctx) const {
  detail::stamp_capacitor(mna, ctx, a_, b_, c_, v_prev_, i_prev_);
}

void Capacitor::initialize_state(const std::vector<double>& x) {
  const double va = a_ == kGround ? 0.0 : x[a_];
  const double vb = b_ == kGround ? 0.0 : x[b_];
  v_prev_ = va - vb;
  i_prev_ = 0.0;  // DC steady state: no capacitor current.
}

void Capacitor::commit(const StampContext& ctx) {
  detail::commit_capacitor(ctx, c_, a_, b_, v_prev_, i_prev_);
}

// ---------------------------------------------------------------------------
// VSource
// ---------------------------------------------------------------------------

VSource::VSource(Circuit& circuit, std::size_t a, std::size_t b, double volts)
    : a_(a), b_(b), branch_(circuit.alloc_branch()), v_(volts) {}

void VSource::stamp(Mna& mna, const StampContext& ctx) const {
  detail::stamp_vsource(mna, ctx, a_, b_, branch_, v_);
}

// ---------------------------------------------------------------------------
// PwlVSource
// ---------------------------------------------------------------------------

PwlVSource::PwlVSource(Circuit& circuit, std::size_t a, std::size_t b,
                       std::vector<std::pair<double, double>> points)
    : a_(a), b_(b), branch_(circuit.alloc_branch()), points_(std::move(points)) {
  FINSER_REQUIRE(!points_.empty(), "PwlVSource: empty waveform");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    FINSER_REQUIRE(points_[i].first > points_[i - 1].first,
                   "PwlVSource: time points must be strictly increasing");
  }
}

double PwlVSource::value(double t) const {
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (t <= points_[i].first) {
      const auto& [t0, v0] = points_[i - 1];
      const auto& [t1, v1] = points_[i];
      return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
    }
  }
  return points_.back().second;
}

void PwlVSource::stamp(Mna& mna, const StampContext& ctx) const {
  detail::stamp_vsource(mna, ctx, a_, b_, branch_,
                        value(ctx.transient ? ctx.time : 0.0));
}

void PwlVSource::add_breakpoints(double t_end, std::vector<double>& out) const {
  for (const auto& [t, v] : points_) {
    (void)v;
    if (t > 0.0 && t < t_end) out.push_back(t);
  }
}

// ---------------------------------------------------------------------------
// PulseShape / PulseISource
// ---------------------------------------------------------------------------

double PulseShape::value(double t) const {
  if (width_s <= 0.0 || amplitude_a == 0.0) return 0.0;
  const double rel = t - delay_s;
  // Half-open at the start, closed at the end: an implicit integrator
  // evaluates sources at the *end* of each step, so the step that lands
  // exactly on the trailing-edge breakpoint must still see the pulse —
  // otherwise the final step's charge is silently dropped. The edge
  // tolerance absorbs the rounding of (delay + width) when delay >> width.
  const double edge_tol = 1e-9 * (std::abs(delay_s) + width_s);
  if (rel <= 0.0 || rel > width_s + edge_tol) return 0.0;
  switch (kind) {
    case Kind::kRectangular:
      return amplitude_a;
    case Kind::kTriangular: {
      const double half = 0.5 * width_s;
      const double frac = rel < half ? rel / half : (width_s - rel) / half;
      return amplitude_a * frac;
    }
  }
  return 0.0;
}

double PulseShape::end_time() const {
  // Mirrors value(): current is zero once rel > width + edge_tol.
  const double edge_tol = 1e-9 * (std::abs(delay_s) + width_s);
  return delay_s + width_s + edge_tol;
}

double PulseShape::charge_c() const {
  switch (kind) {
    case Kind::kRectangular:
      return amplitude_a * width_s;
    case Kind::kTriangular:
      return 0.5 * amplitude_a * width_s;
  }
  return 0.0;
}

PulseShape PulseShape::rectangular_for_charge(double charge_c, double width_s,
                                              double delay_s) {
  FINSER_REQUIRE(width_s > 0.0, "PulseShape: width must be positive");
  return PulseShape{Kind::kRectangular, delay_s, width_s, charge_c / width_s};
}

PulseShape PulseShape::triangular_for_charge(double charge_c, double width_s,
                                             double delay_s) {
  FINSER_REQUIRE(width_s > 0.0, "PulseShape: width must be positive");
  return PulseShape{Kind::kTriangular, delay_s, width_s, 2.0 * charge_c / width_s};
}

PulseISource::PulseISource(std::size_t from, std::size_t to, const PulseShape& shape)
    : from_(from), to_(to), shape_(shape) {}

void PulseISource::stamp(Mna& mna, const StampContext& ctx) const {
  detail::stamp_isource(mna, ctx, from_, to_, shape_);
}

void PulseISource::add_breakpoints(double t_end, std::vector<double>& out) const {
  detail::pulse_breakpoints(shape_, t_end, out);
}

// ---------------------------------------------------------------------------
// Mosfet
// ---------------------------------------------------------------------------

Mosfet::Mosfet(std::size_t d, std::size_t g, std::size_t s, const FinFetModel& model,
               double nfin)
    : d_(d), g_(g), s_(s), model_(&model), nfin_(nfin) {
  FINSER_REQUIRE(nfin > 0.0, "Mosfet: nfin must be positive");
}

MosOp Mosfet::op_at(const std::vector<double>& x) const {
  const auto v = [&x](std::size_t n) { return n == kGround ? 0.0 : x[n]; };
  return evaluate_finfet(*model_, v(d_), v(g_), v(s_), delta_vt_, nfin_, temp_k_);
}

void Mosfet::stamp(Mna& mna, const StampContext& ctx) const {
  detail::stamp_mosfet(mna, ctx, d_, g_, s_, *model_, nfin_, delta_vt_, temp_k_);
}

}  // namespace finser::spice
