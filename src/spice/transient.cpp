#include "finser/spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "finser/obs/obs.hpp"
#include "finser/util/error.hpp"

namespace finser::spice {

// ---------------------------------------------------------------------------
// Waveform
// ---------------------------------------------------------------------------

Waveform::Waveform(std::vector<std::string> names, std::vector<std::size_t> nodes)
    : names_(std::move(names)), nodes_(std::move(nodes)), data_(nodes_.size()) {
  FINSER_REQUIRE(names_.size() == nodes_.size(), "Waveform: name/node mismatch");
}

void Waveform::append(double t, const std::vector<double>& x) {
  times_.push_back(t);
  for (std::size_t p = 0; p < nodes_.size(); ++p) {
    const std::size_t n = nodes_[p];
    data_[p].push_back(n == kGround ? 0.0 : x[n]);
  }
}

std::size_t Waveform::probe(const std::string& name) const {
  for (std::size_t p = 0; p < names_.size(); ++p) {
    if (names_[p] == name) return p;
  }
  throw util::InvalidArgument("Waveform::probe: no probe named " + name);
}

double Waveform::at(std::size_t p, double t) const {
  FINSER_REQUIRE(p < data_.size(), "Waveform::at: probe out of range");
  FINSER_REQUIRE(!times_.empty(), "Waveform::at: empty waveform");
  if (t <= times_.front()) return data_[p].front();
  if (t >= times_.back()) return data_[p].back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double f = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return data_[p][lo] + f * (data_[p][hi] - data_[p][lo]);
}

double Waveform::final_value(std::size_t p) const {
  FINSER_REQUIRE(p < data_.size() && !data_[p].empty(),
                 "Waveform::final_value: empty probe");
  return data_[p].back();
}

double Waveform::min_value(std::size_t p) const {
  FINSER_REQUIRE(p < data_.size() && !data_[p].empty(),
                 "Waveform::min_value: empty probe");
  return *std::min_element(data_[p].begin(), data_[p].end());
}

double Waveform::max_value(std::size_t p) const {
  FINSER_REQUIRE(p < data_.size() && !data_[p].empty(),
                 "Waveform::max_value: empty probe");
  return *std::max_element(data_[p].begin(), data_[p].end());
}

void Waveform::write_csv(std::ostream& os) const {
  os << "time_s";
  for (const std::string& name : names_) os << ',' << name;
  os << '\n';
  char buf[40];
  for (std::size_t i = 0; i < times_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.9g", times_[i]);
    os << buf;
    for (std::size_t p = 0; p < data_.size(); ++p) {
      std::snprintf(buf, sizeof(buf), "%.9g", data_[p][i]);
      os << ',' << buf;
    }
    os << '\n';
  }
}

// ---------------------------------------------------------------------------
// Transient engine
// ---------------------------------------------------------------------------

namespace {

/// Newton solve of one implicit step; returns true on convergence and leaves
/// the converged iterate in \p x.
bool newton_step(const Circuit& circuit, Mna& mna, StampContext& ctx,
                 std::vector<double>& x, const TransientOptions& opt) {
  for (int iter = 0; iter < opt.max_newton; ++iter) {
    FINSER_OBS_COUNT("spice.tran.newton_iters", 1);
    mna.clear();
    ctx.x = &x;
    for (const auto& dev : circuit.devices()) dev->stamp(mna, ctx);

    std::vector<double> x_new;
    try {
      x_new = mna.solve();
    } catch (const util::NumericalError&) {
      return false;  // Singular at this iterate: treat as convergence failure.
    }

    double max_dv = 0.0;
    for (std::size_t i = 0; i < circuit.node_count(); ++i) {
      max_dv = std::max(max_dv, std::abs(x_new[i] - x[i]));
    }
    const double alpha = max_dv > opt.damping_vmax ? opt.damping_vmax / max_dv : 1.0;

    double max_delta = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double step = alpha * (x_new[i] - x[i]);
      x[i] += step;
      max_delta = std::max(max_delta, std::abs(step));
    }
    if (alpha == 1.0 && max_delta < opt.v_tol) return true;
  }
  return false;
}

}  // namespace

Waveform run_transient(const Circuit& circuit, const std::vector<double>& x0,
                       const TransientOptions& opt,
                       const std::vector<std::string>& probe_nodes) {
  FINSER_REQUIRE(opt.t_end > 0.0, "run_transient: t_end must be positive");
  FINSER_REQUIRE(x0.size() == circuit.unknown_count(),
                 "run_transient: x0 size mismatch");
  FINSER_REQUIRE(opt.dt_initial > 0.0 && opt.dt_min > 0.0 &&
                     opt.dt_max >= opt.dt_initial,
                 "run_transient: inconsistent step-size options");

  obs::ScopedSpan run_span("spice.tran.run");
  FINSER_OBS_COUNT("spice.tran.runs", 1);

  // Resolve probes.
  std::vector<std::string> names;
  std::vector<std::size_t> nodes;
  if (probe_nodes.empty()) {
    for (std::size_t i = 0; i < circuit.node_count(); ++i) {
      names.push_back(circuit.node_name(i));
      nodes.push_back(i);
    }
  } else {
    for (const std::string& p : probe_nodes) {
      names.push_back(p);
      nodes.push_back(circuit.find_node(p));
    }
  }
  Waveform wave(std::move(names), std::move(nodes));

  // Collect and sort hard breakpoints.
  std::vector<double> breaks;
  for (const auto& dev : circuit.devices()) dev->add_breakpoints(opt.t_end, breaks);
  breaks.push_back(opt.t_end);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) { return std::abs(a - b) < 1e-24; }),
               breaks.end());

  // Initialize device state from the operating point.
  for (const auto& dev : circuit.devices()) dev->initialize_state(x0);

  std::vector<double> x = x0;
  Mna mna(circuit.unknown_count());
  StampContext ctx;
  ctx.transient = true;
  ctx.method = opt.method;
  ctx.branch_offset = circuit.node_count();

  wave.append(0.0, x);

  double t = 0.0;
  double dt = opt.dt_initial;
  std::size_t next_break = 0;

  // Retry ladder (see TransientOptions::max_restarts): the effective Newton
  // settings escalate deterministically each time the step size underflows,
  // instead of aborting on the first hard spot.
  TransientOptions eff = opt;
  int restart_level = 0;
  std::uint64_t accepted_steps = 0;

  while (t < opt.t_end - 1e-24) {
    // Clamp the step to land exactly on the next breakpoint.
    while (next_break < breaks.size() && breaks[next_break] <= t + 1e-24) {
      ++next_break;
    }
    bool hit_break = false;
    double step = dt;
    if (next_break < breaks.size() && t + step >= breaks[next_break] - 1e-24) {
      step = breaks[next_break] - t;
      hit_break = true;
    }

    ctx.time = t + step;
    ctx.dt = step;
    std::vector<double> x_try = x;  // Start Newton from the previous solution.
    if (newton_step(circuit, mna, ctx, x_try, eff)) {
      // Accept.
      FINSER_OBS_COUNT("spice.tran.steps", 1);
      ++accepted_steps;
      x = std::move(x_try);
      ctx.x = &x;
      for (const auto& dev : circuit.devices()) dev->commit(ctx);
      t = ctx.time;
      wave.append(t, x);
      if (hit_break) {
        dt = opt.dt_initial;  // Restart small after a source edge.
        ++next_break;
      } else {
        dt = std::min(dt * opt.grow_factor, opt.dt_max);
      }
    } else {
      // Reject: shrink and retry from the committed state.
      FINSER_OBS_COUNT("spice.tran.rejects", 1);
      dt *= opt.shrink_factor;
      if (hit_break) {
        // Can't reach the breakpoint in one step anymore; approach it.
      }
      if (dt < opt.dt_min) {
        if (restart_level < opt.max_restarts) {
          // Escalate: more Newton iterations, stronger damping, and a fresh
          // (smaller) starting step for the same failing instant. The state
          // is the last *committed* step, so nothing is replayed.
          ++restart_level;
          FINSER_OBS_COUNT("spice.tran.escalations", 1);
          eff.max_newton *= 2;
          eff.damping_vmax *= 0.5;
          dt = std::max(opt.dt_min,
                        opt.dt_initial * std::pow(0.1, restart_level));
        } else {
          FINSER_OBS_COUNT("spice.tran.failures", 1);
          throw util::NumericalError(
              "run_transient: Newton failed to converge at t = " +
              std::to_string(t) + " after " + std::to_string(restart_level) +
              " escalation(s) (max_newton " + std::to_string(eff.max_newton) +
              ", damping_vmax " + std::to_string(eff.damping_vmax) + ")");
        }
      }
    }
  }
  FINSER_OBS_RECORD("spice.tran.steps_per_run", accepted_steps);
  return wave;
}

}  // namespace finser::spice
