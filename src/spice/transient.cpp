#include "finser/spice/transient.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "finser/spice/compiled.hpp"
#include "finser/util/error.hpp"
#include "engine_detail.hpp"

namespace finser::spice {

// ---------------------------------------------------------------------------
// Waveform
// ---------------------------------------------------------------------------

Waveform::Waveform(std::vector<std::string> names, std::vector<std::size_t> nodes)
    : names_(std::move(names)), nodes_(std::move(nodes)), data_(nodes_.size()) {
  FINSER_REQUIRE(names_.size() == nodes_.size(), "Waveform: name/node mismatch");
}

void Waveform::append(double t, const std::vector<double>& x) {
  times_.push_back(t);
  for (std::size_t p = 0; p < nodes_.size(); ++p) {
    const std::size_t n = nodes_[p];
    data_[p].push_back(n == kGround ? 0.0 : x[n]);
  }
}

std::size_t Waveform::probe(const std::string& name) const {
  for (std::size_t p = 0; p < names_.size(); ++p) {
    if (names_[p] == name) return p;
  }
  throw util::InvalidArgument("Waveform::probe: no probe named " + name);
}

double Waveform::at(std::size_t p, double t) const {
  FINSER_REQUIRE(p < data_.size(), "Waveform::at: probe out of range");
  FINSER_REQUIRE(!times_.empty(), "Waveform::at: empty waveform");
  if (t <= times_.front()) return data_[p].front();
  if (t >= times_.back()) return data_[p].back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double f = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return data_[p][lo] + f * (data_[p][hi] - data_[p][lo]);
}

double Waveform::final_value(std::size_t p) const {
  FINSER_REQUIRE(p < data_.size() && !data_[p].empty(),
                 "Waveform::final_value: empty probe");
  return data_[p].back();
}

double Waveform::min_value(std::size_t p) const {
  FINSER_REQUIRE(p < data_.size() && !data_[p].empty(),
                 "Waveform::min_value: empty probe");
  return *std::min_element(data_[p].begin(), data_[p].end());
}

double Waveform::max_value(std::size_t p) const {
  FINSER_REQUIRE(p < data_.size() && !data_[p].empty(),
                 "Waveform::max_value: empty probe");
  return *std::max_element(data_[p].begin(), data_[p].end());
}

void Waveform::write_csv(std::ostream& os) const {
  os << "time_s";
  for (const std::string& name : names_) os << ',' << name;
  os << '\n';
  char buf[40];
  for (std::size_t i = 0; i < times_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.9g", times_[i]);
    os << buf;
    for (std::size_t p = 0; p < data_.size(); ++p) {
      std::snprintf(buf, sizeof(buf), "%.9g", data_[p][i]);
      os << ',' << buf;
    }
    os << '\n';
  }
}

// ---------------------------------------------------------------------------
// Transient entry points (engine: engine_detail.hpp)
// ---------------------------------------------------------------------------

Waveform run_transient(const Circuit& circuit, const std::vector<double>& x0,
                       const TransientOptions& opt,
                       const std::vector<std::string>& probe_nodes) {
  // Reference path: a throwaway workspace per run, exactly the historical
  // allocation behavior. The hot path below shares one across runs.
  SolveWorkspace ws;
  return detail::run_transient_impl(detail::InterpretedStamper{circuit}, ws, x0,
                                    opt, probe_nodes);
}

Waveform run_transient(CompiledCircuit& circuit, SolveWorkspace& ws,
                       const std::vector<double>& x0,
                       const TransientOptions& opt,
                       const std::vector<std::string>& probe_nodes) {
  return detail::run_transient_impl(detail::CompiledStamper{circuit}, ws, x0,
                                    opt, probe_nodes);
}

}  // namespace finser::spice
