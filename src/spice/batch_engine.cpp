/// \file batch_engine.cpp
/// \brief Lane-width selection and the batched transient entry point.

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "finser/spice/batch.hpp"
#include "engine_detail.hpp"
#include "finser/util/error.hpp"

namespace finser::spice {

namespace {

/// Explicit set_lane_width() override; 0 = none (fall through to env/auto).
std::atomic<std::size_t> g_lane_override{0};

/// One-shot FINSER_LANES parse, hardened the same way as FINSER_MC_SCALE
/// (core/ser_flow.cpp): tolerate trailing whitespace, diagnose-and-ignore
/// anything else on stderr. Returns 0 for unset/auto/invalid.
std::size_t lanes_from_env_uncached() {
  const char* raw = std::getenv("FINSER_LANES");
  if (raw == nullptr) return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(raw, &end, 10);
  while (end != nullptr && *end != '\0' &&
         std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  const bool parsed = end != nullptr && end != raw && *end == '\0';
  if (!parsed || !lane_width_valid(static_cast<std::size_t>(v))) {
    std::fprintf(stderr,
                 "finser: ignoring invalid FINSER_LANES=\"%s\" "
                 "(expected 0 = auto, 1, 4 or 8); using auto\n",
                 raw);
    return 0;
  }
  return static_cast<std::size_t>(v);
}

std::size_t lanes_from_env() {
  static const std::size_t cached = lanes_from_env_uncached();
  return cached;
}

}  // namespace

std::size_t lane_width() {
  const std::size_t over = g_lane_override.load(std::memory_order_relaxed);
  if (over != 0) return over;
  const std::size_t env = lanes_from_env();
  if (env != 0) return env;
  return kDefaultLaneWidth;
}

void set_lane_width(std::size_t w) {
  if (!lane_width_valid(w)) {
    throw util::InvalidArgument(
        "set_lane_width: lane width must be 0 (auto), 1, 4 or 8, got " +
        std::to_string(w));
  }
  g_lane_override.store(w, std::memory_order_relaxed);
}

BatchTransientResult run_transient_batch(
    CompiledCircuit& cc, BatchWorkspace& bw,
    const std::vector<std::vector<double>>& x0, const TransientOptions& opt,
    const std::vector<std::string>& probe_nodes) {
  switch (bw.lanes) {
    case 1:
      return detail::run_transient_batch_impl<1>(cc, bw, x0, opt, probe_nodes);
    case 4:
      return detail::run_transient_batch_impl<4>(cc, bw, x0, opt, probe_nodes);
    case 8:
      return detail::run_transient_batch_impl<8>(cc, bw, x0, opt, probe_nodes);
    default:
      throw util::InvalidArgument(
          "run_transient_batch: workspace not configured (lanes must be 1, 4 "
          "or 8; call batch_configure first)");
  }
}

}  // namespace finser::spice
