/// \file compiled_batch.cpp
/// \brief Lane-batched hooks of CompiledCircuit (see batch.hpp).
///
/// Every expression here mirrors the matching scalar hook in compiled.cpp /
/// stamp_kernels.hpp term for term, evaluated per lane on the AoSoA slices:
/// that is what makes each lane byte-identical to a scalar run with the same
/// binding. The hot stamp (batch_stamp_fused) is written as compile-time-W
/// lane loops over unit-stride slices with uniform (lane-invariant) branches
/// hoisted and the rest in select form, so the compiler vectorizes it
/// without being allowed to change any lane's arithmetic.

#include <bit>
#include <cstdint>

#include "finser/spice/batch.hpp"
#include "finser/spice/compiled.hpp"
#include "finser/util/error.hpp"
#include "stamp_kernels.hpp"

namespace finser::spice {

void CompiledCircuit::batch_configure(BatchWorkspace& bw,
                                      std::size_t lanes) const {
  FINSER_REQUIRE(lanes == 1 || lanes == 4 || lanes == 8,
                 "batch_configure: lane width must be 1, 4 or 8");
  const std::size_t n = unknown_count_;
  bw.lanes = lanes;
  bw.unknowns = n;

  bw.vsrc_v.assign(vsources_.size() * lanes, 0.0);
  bw.is_shape.assign(isources_.size() * lanes, PulseShape{});
  const std::size_t nm = mosfets_.size() * lanes;
  bw.mos.n.assign(nm, 0.0);
  bw.mos.dibl.assign(nm, 0.0);
  bw.mos.lambda.assign(nm, 0.0);
  bw.mos.phi_t.assign(nm, 0.0);
  bw.mos.vt_base.assign(nm, 0.0);
  bw.mos.is.assign(nm, 0.0);
  bw.mos.is_lambda.assign(nm, 0.0);
  bw.mos.duf_dvgs.assign(nm, 0.0);
  bw.mos.duf_dvds.assign(nm, 0.0);
  bw.mos.dur_dvds.assign(nm, 0.0);

  bw.cap_v_prev.assign(capacitors_.size() * lanes, 0.0);
  bw.cap_i_prev.assign(capacitors_.size() * lanes, 0.0);

  bw.fa.assign((n * n + 1) * lanes, 0.0);
  bw.fb.assign((n + 1) * lanes, 0.0);
  bw.x.assign(n * lanes, 0.0);
  bw.x_try.assign(n * lanes, 0.0);
  bw.x_new.assign(n * lanes, 0.0);
  bw.perm.assign(n * lanes, 0);
  for (Mna::PivotCache& cache : bw.pivot) cache.invalidate();
  for (auto& b : bw.breaks) b.clear();

  // Seed every lane from the current scalar binding so freshly configured
  // tail lanes carry finite, well-conditioned parameters.
  for (std::size_t w = 0; w < lanes; ++w) batch_rebind_lane(bw, w);
}

void CompiledCircuit::batch_rebind_lane(BatchWorkspace& bw,
                                        std::size_t lane) const {
  const std::size_t W = bw.lanes;
  FINSER_REQUIRE(lane < W, "batch_rebind_lane: lane out of range");
  for (std::size_t i = 0; i < vsources_.size(); ++i) {
    bw.vsrc_v[i * W + lane] = vsources_[i].v;
  }
  for (std::size_t i = 0; i < isources_.size(); ++i) {
    bw.is_shape[i * W + lane] = isources_[i].shape;
  }
  for (std::size_t i = 0; i < mosfets_.size(); ++i) {
    const FinFetPlan& p = mosfets_[i].plan;
    const std::size_t k = i * W + lane;
    bw.mos.n[k] = p.n;
    bw.mos.dibl[k] = p.dibl;
    bw.mos.lambda[k] = p.lambda;
    bw.mos.phi_t[k] = p.phi_t;
    bw.mos.vt_base[k] = p.vt_base;
    bw.mos.is[k] = p.is;
    bw.mos.is_lambda[k] = p.is_lambda;
    bw.mos.duf_dvgs[k] = p.duf_dvgs;
    bw.mos.duf_dvds[k] = p.duf_dvds;
    bw.mos.dur_dvds[k] = p.dur_dvds;
  }
}

template <std::size_t W>
void CompiledCircuit::batch_stamp_fused(BatchWorkspace& bw, const double* time,
                                        const double* dt,
                                        Integrator method) const {
  // fa / fb / x_try are distinct vectors of the workspace, so the restrict
  // qualifiers hold by construction. Without them the vectorizer has to
  // version the lane loops against every pairwise overlap of these and the
  // per-device parameter slices below — far past its run-time alias-check
  // budget — and gives up.
  double* __restrict__ a = bw.fa.data();
  double* __restrict__ b = bw.fb.data();
  const double* __restrict__ x = bw.x_try.data();
  const bool trap = method == Integrator::kTrapezoidal;

  for (const Op op : ops_) {
    switch (op.kind) {
      case Kind::kResistor: {
        const ResistorRec& r = resistors_[op.idx];
        const double g = r.g;
        for (std::size_t w = 0; w < W; ++w) a[r.s_aa * W + w] += g;
        for (std::size_t w = 0; w < W; ++w) a[r.s_bb * W + w] += g;
        for (std::size_t w = 0; w < W; ++w) a[r.s_ab * W + w] += -g;
        for (std::size_t w = 0; w < W; ++w) a[r.s_ba * W + w] += -g;
        break;
      }
      case Kind::kCapacitor: {
        const CapacitorRec& c = capacitors_[op.idx];
        const double factor = trap ? 2.0 : 1.0;
        const double* __restrict__ vp = bw.cap_v_prev.data() + op.idx * W;
        const double* __restrict__ ip = bw.cap_i_prev.data() + op.idx * W;
        // The throwing check lives in its own loop: a potential throw in the
        // compute loop would block if-conversion of the whole body.
        for (std::size_t w = 0; w < W; ++w) {
          FINSER_REQUIRE(dt[w] > 0.0, "Capacitor::stamp: non-positive dt");
        }
        // Compute into stack lanes, then store one slice per loop: grounded
        // terminals share the scratch row of `a`/`b`, so slice-vs-slice
        // overlap cannot be ruled out statically and interleaved stores
        // would need run-time alias versioning past the vectorizer's budget.
        // Statement order per element is unchanged, so overlapping (scratch)
        // rows still accumulate in the scalar order bit for bit.
        double geq[W];
        double ieq[W];
        // Unswitched on the lane-invariant integrator choice: a select on a
        // scalar (non-lane) bool is not a vectorizable COND_EXPR, and the
        // `+ 0.0` of a multiplier trick would flip -0.0 bits.
        if (trap) {
          for (std::size_t w = 0; w < W; ++w) {
            // Mirrors cap_geq / cap_ieq (stamp_kernels.hpp) per lane.
            geq[w] = factor * c.c / dt[w];
            ieq[w] = geq[w] * vp[w] + ip[w];
          }
        } else {
          for (std::size_t w = 0; w < W; ++w) {
            geq[w] = factor * c.c / dt[w];
            ieq[w] = geq[w] * vp[w];
          }
        }
        for (std::size_t w = 0; w < W; ++w) a[c.s_aa * W + w] += geq[w];
        for (std::size_t w = 0; w < W; ++w) a[c.s_bb * W + w] += geq[w];
        for (std::size_t w = 0; w < W; ++w) a[c.s_ab * W + w] += -geq[w];
        for (std::size_t w = 0; w < W; ++w) a[c.s_ba * W + w] += -geq[w];
        for (std::size_t w = 0; w < W; ++w) b[c.r_a * W + w] += ieq[w];
        for (std::size_t w = 0; w < W; ++w) b[c.r_b * W + w] += -ieq[w];
        break;
      }
      case Kind::kVSource: {
        const VSourceRec& v = vsources_[op.idx];
        const double* __restrict__ lv = bw.vsrc_v.data() + op.idx * W;
        for (std::size_t w = 0; w < W; ++w) a[v.s_ak * W + w] += 1.0;
        for (std::size_t w = 0; w < W; ++w) a[v.s_bk * W + w] += -1.0;
        for (std::size_t w = 0; w < W; ++w) a[v.s_ka * W + w] += 1.0;
        for (std::size_t w = 0; w < W; ++w) a[v.s_kb * W + w] += -1.0;
        for (std::size_t w = 0; w < W; ++w) b[v.r_k * W + w] += lv[w];
        break;
      }
      case Kind::kPwlVSource: {
        // The table is immutable and shared; only the per-lane time differs.
        const PwlRec& p = pwls_[op.idx];
        for (std::size_t w = 0; w < W; ++w) {
          a[p.s_ak * W + w] += 1.0;
          a[p.s_bk * W + w] += -1.0;
          a[p.s_ka * W + w] += 1.0;
          a[p.s_kb * W + w] += -1.0;
          b[p.r_k * W + w] += p.src->value(time[w]);
        }
        break;
      }
      case Kind::kPulseISource: {
        const ISourceRec& s = isources_[op.idx];
        const PulseShape* shapes = bw.is_shape.data() + op.idx * W;
        for (std::size_t w = 0; w < W; ++w) {
          const double i = shapes[w].value(time[w]);
          // Selects, not skips: adding −i/i only when i != 0 matches the
          // scalar kernel's early-out bit for bit (including signed zeros).
          const double bf = b[s.r_from * W + w];
          const double bt = b[s.r_to * W + w];
          b[s.r_from * W + w] = i == 0.0 ? bf : bf + -i;
          b[s.r_to * W + w] = i == 0.0 ? bt : bt + i;
        }
        break;
      }
      case Kind::kMosfet: {
        const MosRec& m = mosfets_[op.idx];
        // Lane-invariant device facts become data, not selects: a COND_EXPR
        // on a scalar (non-lane) bool is not vectorizable, so the PMOS
        // reflection is an XOR of the sign bit (bit-identical to negation
        // for every input, NaNs included) and grounded terminals read a
        // stack array of zeros instead of selecting 0.0 per lane.
        const std::uint64_t pt_flip =
            m.plan.p_type ? 0x8000000000000000ull : 0u;
        const double zero[W] = {};
        const double* px_d = m.d == kGround ? zero : x + m.d * W;
        const double* px_g = m.g == kGround ? zero : x + m.g * W;
        const double* px_s = m.s == kGround ? zero : x + m.s * W;
        const std::size_t mb = op.idx * W;
        const double* __restrict__ pn = bw.mos.n.data() + mb;
        const double* __restrict__ pdibl = bw.mos.dibl.data() + mb;
        const double* __restrict__ plambda = bw.mos.lambda.data() + mb;
        const double* __restrict__ pphi = bw.mos.phi_t.data() + mb;
        const double* __restrict__ pvt = bw.mos.vt_base.data() + mb;
        const double* __restrict__ pis = bw.mos.is.data() + mb;
        const double* __restrict__ pisl = bw.mos.is_lambda.data() + mb;
        const double* __restrict__ pdvgs = bw.mos.duf_dvgs.data() + mb;
        const double* __restrict__ pdvds = bw.mos.duf_dvds.data() + mb;
        const double* __restrict__ pdrds = bw.mos.dur_dvds.data() + mb;
        // As in kCapacitor: all the arithmetic lands in stack lanes, the
        // `a`/`b` updates go one slice per loop afterwards (same statement
        // order per element — bit-identical even on shared scratch rows).
        double l_gds[W];
        double l_gm[W];
        double l_gsum[W];
        double l_ieq[W];
        for (std::size_t w = 0; w < W; ++w) {
          // Terminal voltages in the original frame (ieq below needs them).
          const double vd0 = px_d[w];
          const double vg0 = px_g[w];
          const double vs0 = px_s[w];
          // Select-form evaluate_finfet_planned() on the per-lane plan:
          // PMOS reflection (uniform), then the source-drain-swap frame as
          // input/output selects around one core evaluation — the same
          // expressions the scalar path runs in whichever branch the lane
          // would have taken.
          const double vd = std::bit_cast<double>(
              std::bit_cast<std::uint64_t>(vd0) ^ pt_flip);
          const double vg = std::bit_cast<double>(
              std::bit_cast<std::uint64_t>(vg0) ^ pt_flip);
          const double vs = std::bit_cast<double>(
              std::bit_cast<std::uint64_t>(vs0) ^ pt_flip);
          const double vgs = vg - vs;
          const double vds = vd - vs;
          const bool fwd = vds >= 0.0;
          const double c_vgs = fwd ? vgs : vg - vd;
          const double c_vds = fwd ? vds : -vds;
          const double vt_eff = pvt[w] - pdibl[w] * c_vds;
          const double vp = (c_vgs - vt_eff) / pn[w];
          const detail::FEval ff = detail::ekv_f(vp / pphi[w]);
          const detail::FEval fr = detail::ekv_f((vp - c_vds) / pphi[w]);
          const double clm = 1.0 + plambda[w] * c_vds;
          const double ids = pis[w] * (ff.f - fr.f) * clm;
          const double gm =
              pis[w] * clm * (ff.df * pdvgs[w] - fr.df * pdvgs[w]);
          const double gds =
              pis[w] * clm * (ff.df * pdvds[w] - fr.df * pdrds[w]) +
              pisl[w] * (ff.f - fr.f);
          const double o_ids = fwd ? ids : -ids;
          const double o_gm = fwd ? gm : -gm;
          const double o_gds = fwd ? gds : gm + gds;
          const double mids = std::bit_cast<double>(
              std::bit_cast<std::uint64_t>(o_ids) ^ pt_flip);
          // Stamp in the original frame, mirroring stamp_fused()'s kMosfet.
          l_ieq[w] = mids - o_gm * (vg0 - vs0) - o_gds * (vd0 - vs0);
          l_gds[w] = o_gds;
          l_gm[w] = o_gm;
          l_gsum[w] = o_gds + o_gm;
        }
        for (std::size_t w = 0; w < W; ++w) a[m.s_dd * W + w] += l_gds[w];
        for (std::size_t w = 0; w < W; ++w) a[m.s_dg * W + w] += l_gm[w];
        for (std::size_t w = 0; w < W; ++w) a[m.s_ds * W + w] += -l_gsum[w];
        for (std::size_t w = 0; w < W; ++w) b[m.r_d * W + w] += -l_ieq[w];
        for (std::size_t w = 0; w < W; ++w) a[m.s_sd * W + w] += -l_gds[w];
        for (std::size_t w = 0; w < W; ++w) a[m.s_sg * W + w] += -l_gm[w];
        for (std::size_t w = 0; w < W; ++w) a[m.s_ss * W + w] += l_gsum[w];
        for (std::size_t w = 0; w < W; ++w) b[m.r_s * W + w] += l_ieq[w];
        break;
      }
    }
  }
}

template void CompiledCircuit::batch_stamp_fused<1>(BatchWorkspace&,
                                                    const double*,
                                                    const double*,
                                                    Integrator) const;
template void CompiledCircuit::batch_stamp_fused<4>(BatchWorkspace&,
                                                    const double*,
                                                    const double*,
                                                    Integrator) const;
template void CompiledCircuit::batch_stamp_fused<8>(BatchWorkspace&,
                                                    const double*,
                                                    const double*,
                                                    Integrator) const;

void CompiledCircuit::batch_initialize_state(BatchWorkspace& bw,
                                             std::size_t lane,
                                             const std::vector<double>& x) const {
  const std::size_t W = bw.lanes;
  for (std::size_t i = 0; i < capacitors_.size(); ++i) {
    const CapacitorRec& c = capacitors_[i];
    const double va = c.a == kGround ? 0.0 : x[c.a];
    const double vb = c.b == kGround ? 0.0 : x[c.b];
    bw.cap_v_prev[i * W + lane] = va - vb;
    bw.cap_i_prev[i * W + lane] = 0.0;  // DC steady state: no cap current.
  }
}

void CompiledCircuit::batch_commit(BatchWorkspace& bw, std::size_t lane,
                                   double time, double dt,
                                   Integrator method) const {
  (void)time;
  const std::size_t W = bw.lanes;
  const double* x = bw.x.data();
  const double factor = method == Integrator::kTrapezoidal ? 2.0 : 1.0;
  for (std::size_t i = 0; i < capacitors_.size(); ++i) {
    const CapacitorRec& c = capacitors_[i];
    // Mirrors commit_capacitor (stamp_kernels.hpp) on the lane slice.
    const double va = c.a == kGround ? 0.0 : x[c.a * W + lane];
    const double vb = c.b == kGround ? 0.0 : x[c.b * W + lane];
    const double v_now = va - vb;
    const double geq = factor * c.c / dt;
    double i_now = geq * (v_now - bw.cap_v_prev[i * W + lane]);
    if (method == Integrator::kTrapezoidal) {
      i_now -= bw.cap_i_prev[i * W + lane];
    }
    bw.cap_v_prev[i * W + lane] = v_now;
    bw.cap_i_prev[i * W + lane] = i_now;
  }
}

void CompiledCircuit::batch_add_breakpoints(const BatchWorkspace& bw,
                                            std::size_t lane, double t_end,
                                            std::vector<double>& out) const {
  const std::size_t W = bw.lanes;
  for (const PwlRec& p : pwls_) p.src->add_breakpoints(t_end, out);
  for (std::size_t i = 0; i < isources_.size(); ++i) {
    detail::pulse_breakpoints(bw.is_shape[i * W + lane], t_end, out);
  }
}

bool CompiledCircuit::batch_sources_constant_after(const BatchWorkspace& bw,
                                                   std::size_t lane,
                                                   double t) const {
  const std::size_t W = bw.lanes;
  for (const PwlRec& p : pwls_) {
    if (p.src->last_point_time() > t) return false;
  }
  for (std::size_t i = 0; i < isources_.size(); ++i) {
    if (bw.is_shape[i * W + lane].end_time() > t) return false;
  }
  return true;
}

void CompiledCircuit::batch_save_reactive_state(const BatchWorkspace& bw,
                                                std::size_t lane,
                                                std::vector<double>& out) const {
  const std::size_t W = bw.lanes;
  out.clear();
  out.reserve(2 * capacitors_.size());
  for (std::size_t i = 0; i < capacitors_.size(); ++i) {
    out.push_back(bw.cap_v_prev[i * W + lane]);
    out.push_back(bw.cap_i_prev[i * W + lane]);
  }
}

void CompiledCircuit::batch_load_reactive_state(
    BatchWorkspace& bw, std::size_t lane, const std::vector<double>& in) const {
  const std::size_t W = bw.lanes;
  FINSER_REQUIRE(in.size() == 2 * capacitors_.size(),
                 "CompiledCircuit: reactive-state snapshot size mismatch");
  std::size_t k = 0;
  for (std::size_t i = 0; i < capacitors_.size(); ++i) {
    bw.cap_v_prev[i * W + lane] = in[k++];
    bw.cap_i_prev[i * W + lane] = in[k++];
  }
}

}  // namespace finser::spice
