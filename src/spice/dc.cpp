#include "finser/spice/dc.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "finser/obs/obs.hpp"
#include "finser/util/error.hpp"

namespace finser::spice {

namespace {

/// One damped-Newton stage at fixed gmin. Returns true on convergence;
/// \p x is updated in place with the best iterate either way.
///
/// The gmin shunt pulls node voltages toward \p anchor (the caller's initial
/// guess) rather than toward ground: for bistable circuits such as SRAM
/// cells this keeps the continuation inside the basin the caller selected
/// instead of collapsing onto the symmetric metastable point.
bool newton_stage(const Circuit& circuit, std::vector<double>& x,
                  const std::vector<double>& anchor, double gmin,
                  const DcOptions& opt) {
  const std::size_t n = circuit.unknown_count();
  Mna mna(n);
  StampContext ctx;
  ctx.transient = false;
  ctx.branch_offset = circuit.node_count();

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    FINSER_OBS_COUNT("spice.dc.newton_iters", 1);
    mna.clear();
    ctx.x = &x;
    for (const auto& dev : circuit.devices()) dev->stamp(mna, ctx);
    if (gmin > 0.0) {
      mna.add_gmin(gmin, circuit.node_count());
      for (std::size_t i = 0; i < circuit.node_count(); ++i) {
        mna.add_rhs(i, gmin * anchor[i]);
      }
    }

    std::vector<double> x_new;
    try {
      x_new = mna.solve();
    } catch (const util::NumericalError&) {
      return false;  // Singular at this iterate: report stage failure so the
                     // caller sees "failed to converge", not a raw LU error.
    }

    // Damping: limit the largest voltage move per iteration.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < circuit.node_count(); ++i) {
      max_dv = std::max(max_dv, std::abs(x_new[i] - x[i]));
    }
    double alpha = 1.0;
    if (max_dv > opt.damping_vmax) alpha = opt.damping_vmax / max_dv;

    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double step = alpha * (x_new[i] - x[i]);
      x[i] += step;
      max_delta = std::max(max_delta, std::abs(step));
    }
    if (alpha == 1.0 && max_delta < opt.v_tol) {
      FINSER_OBS_RECORD("spice.dc.iters_per_stage", iter + 1);
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<double> solve_dc(const Circuit& circuit,
                             const std::vector<double>& initial_guess,
                             const DcOptions& options) {
  const std::size_t n = circuit.unknown_count();
  FINSER_REQUIRE(n > 0, "solve_dc: circuit has no unknowns");
  FINSER_REQUIRE(!options.gmin_steps.empty(), "solve_dc: empty gmin schedule");
  FINSER_REQUIRE(initial_guess.empty() || initial_guess.size() == n,
                 "solve_dc: initial guess size mismatch");

  obs::ScopedSpan span("spice.dc.solve");
  FINSER_OBS_COUNT("spice.dc.solves", 1);
  std::vector<double> x = initial_guess.empty() ? std::vector<double>(n, 0.0)
                                                : initial_guess;
  const std::vector<double> anchor = x;

  // gmin continuation with a bounded retry ladder: a failed stage is retried
  // from the last converged iterate with the geometric midpoint between the
  // previous (converged) gmin and the failed one inserted first. Halving the
  // continuation step this way rescues solves where a single gmin decade is
  // too aggressive a homotopy jump, without loosening any tolerance.
  std::vector<double> schedule(options.gmin_steps.begin(),
                               options.gmin_steps.end());
  int extensions = 0;
  double prev_gmin = 0.0;       // gmin of the last converged stage.
  bool any_converged = false;   // Whether prev_gmin is meaningful.
  std::vector<double> x_good = x;

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const double gmin = schedule[i];
    FINSER_OBS_COUNT("spice.dc.gmin_stages", 1);
    if (newton_stage(circuit, x, anchor, gmin, options)) {
      prev_gmin = gmin;
      any_converged = true;
      x_good = x;
      continue;
    }

    if (extensions >= options.max_gmin_extensions) {
      FINSER_OBS_COUNT("spice.dc.failures", 1);
      throw util::NumericalError(
          "solve_dc: Newton failed to converge at gmin = " +
          std::to_string(gmin) + " after " + std::to_string(extensions) +
          " schedule extension(s)");
    }

    // Restore the last converged iterate: the failed stage may have walked x
    // somewhere useless.
    x = x_good;
    double inserted;
    if (any_converged) {
      inserted = std::sqrt(prev_gmin * gmin);
      FINSER_REQUIRE(inserted > gmin && inserted < prev_gmin,
                     "solve_dc: gmin schedule is not strictly decreasing");
    } else {
      // The very first stage failed: retry from a much stiffer shunt.
      inserted = std::min(gmin * 100.0, 1.0);
    }
    ++extensions;
    FINSER_OBS_COUNT("spice.dc.gmin_extensions", 1);
    schedule.insert(schedule.begin() + static_cast<std::ptrdiff_t>(i), inserted);
    --i;  // Re-enter the loop at the inserted stage.
  }
  return x;
}

}  // namespace finser::spice
