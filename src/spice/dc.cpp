#include "finser/spice/dc.hpp"

#include "finser/spice/compiled.hpp"
#include "engine_detail.hpp"

namespace finser::spice {

std::vector<double> solve_dc(const Circuit& circuit,
                             const std::vector<double>& initial_guess,
                             const DcOptions& options) {
  // Reference path: a throwaway workspace per call, exactly the historical
  // allocation behavior. The hot path below shares one across solves.
  SolveWorkspace ws;
  return detail::solve_dc_impl(detail::InterpretedStamper{circuit}, ws,
                               initial_guess, options);
}

std::vector<double> solve_dc(CompiledCircuit& circuit, SolveWorkspace& ws,
                             const std::vector<double>& initial_guess,
                             const DcOptions& options) {
  return detail::solve_dc_impl(detail::CompiledStamper{circuit}, ws,
                               initial_guess, options);
}

}  // namespace finser::spice
