#pragma once
/// \file engine_detail.hpp
/// \brief Shared DC/transient solver engine (internal to finser::spice).
///
/// The Newton/continuation/time-stepping algorithms exist exactly once,
/// templated over a *Stamper* policy that supplies circuit topology and the
/// four device hooks (stamp_all / initialize_state / commit /
/// add_breakpoints):
///
///   * InterpretedStamper — walks the polymorphic Device list of a Circuit.
///     This is the reference path; behavior of the classic
///     solve_dc(Circuit&)/run_transient(Circuit&) entry points.
///   * CompiledStamper — walks a CompiledCircuit's devirtualized stamp plan.
///     This is the characterization hot path; callers keep a SolveWorkspace
///     alive across solves so Newton scratch, the MNA system and the pivot
///     cache are allocated once per (thread, topology).
///
/// Because both stampers emit stamps through the kernels in
/// stamp_kernels.hpp in the same device order, and both paths run this very
/// engine, the two entry-point families produce byte-identical results
/// (pinned by tests/test_spice_compiled.cpp).

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "finser/obs/obs.hpp"
#include "finser/spice/batch.hpp"
#include "finser/spice/circuit.hpp"
#include "finser/spice/compiled.hpp"
#include "finser/spice/dc.hpp"
#include "finser/spice/mna.hpp"
#include "finser/spice/transient.hpp"
#include "finser/util/error.hpp"

namespace finser::spice::detail {

/// Stamper policy over the polymorphic reference path.
struct InterpretedStamper {
  const Circuit& c;

  /// The reference path never fast-forwards: it is the ground truth the
  /// compiled path's steady-state replay is checked against.
  static constexpr bool kSteadyForward = false;

  /// The reference path solves through Mna: it is the legacy baseline the
  /// fused compiled kernel is benchmarked (and bit-compared) against.
  static constexpr bool kFusedSolve = false;

  std::size_t node_count() const { return c.node_count(); }
  std::size_t unknown_count() const { return c.unknown_count(); }
  const std::string& node_name(std::size_t i) const { return c.node_name(i); }
  std::size_t find_node(const std::string& name) const { return c.find_node(name); }

  void stamp_all(Mna& mna, const StampContext& ctx) const {
    for (const auto& dev : c.devices()) dev->stamp(mna, ctx);
  }
  void initialize_state(const std::vector<double>& x) const {
    for (const auto& dev : c.devices()) dev->initialize_state(x);
  }
  void commit(const StampContext& ctx) const {
    for (const auto& dev : c.devices()) dev->commit(ctx);
  }
  void add_breakpoints(double t_end, std::vector<double>& out) const {
    for (const auto& dev : c.devices()) dev->add_breakpoints(t_end, out);
  }
};

/// Stamper policy over a compiled circuit's devirtualized plan.
struct CompiledStamper {
  CompiledCircuit& cc;

  static constexpr bool kSteadyForward = true;
  static constexpr bool kFusedSolve = true;

  std::size_t node_count() const { return cc.node_count(); }
  std::size_t unknown_count() const { return cc.unknown_count(); }
  const std::string& node_name(std::size_t i) const {
    return cc.source().node_name(i);
  }
  std::size_t find_node(const std::string& name) const {
    return cc.source().find_node(name);
  }

  void stamp_all(Mna& mna, const StampContext& ctx) const {
    cc.stamp_all(mna, ctx);
  }
  void stamp_fused(double* a, double* b, const StampContext& ctx) const {
    cc.stamp_fused(a, b, ctx);
  }
  void initialize_state(const std::vector<double>& x) const {
    cc.initialize_state(x);
  }
  void commit(const StampContext& ctx) const { cc.commit(ctx); }
  void add_breakpoints(double t_end, std::vector<double>& out) const {
    cc.add_breakpoints(t_end, out);
  }
  bool sources_constant_after(double t) const {
    return cc.sources_constant_after(t);
  }
  void save_state(std::vector<double>& out) const {
    cc.save_reactive_state(out);
  }
  void load_state(const std::vector<double>& in) const {
    cc.load_reactive_state(in);
  }
};

// ---------------------------------------------------------------------------
// Fused solve kernel (compiled path)
// ---------------------------------------------------------------------------

/// LU solve on the raw fused workspace arrays (ws.fa / ws.fb / ws.fperm, as
/// filled by CompiledCircuit::stamp_fused). This is Mna::factor_and_solve
/// transplanted line for line — same pivot scan, same elimination and back
/// substitution arithmetic, same pivot-cache verification, same
/// spice.mna.* observability counters, same error surface — so the compiled
/// Newton kernels that call it stay byte-identical to the reference path
/// while skipping the per-stamp virtual dispatch and Mna bookkeeping. The
/// trailing ground-scratch slots (index n² resp. n) are never read.
///
/// \tparam N compile-time system size (0 = runtime \p n_rt). Fixing the size
/// lets the compiler fully unroll the tiny elimination loops; unrolling
/// never reassociates floating-point operations, so every instantiation
/// computes the same bits (fused_lu_solve() below picks one by size).
template <std::size_t N = 0>
inline void fused_lu_solve_sized(SolveWorkspace& ws, std::size_t n_rt,
                                 std::vector<double>& x) {
  const std::size_t n = N == 0 ? n_rt : N;
  double* a = ws.fa.data();
  double* b = ws.fb.data();
  std::vector<std::size_t>& perm = ws.fperm;
  Mna::PivotCache& cache = ws.pivot;

  FINSER_OBS_COUNT("spice.mna.solves", 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(b[i])) {
      throw util::NumericalError("Mna::solve: non-finite rhs entry at row " +
                                 std::to_string(i));
    }
  }

  const bool predicted = cache.valid && cache.perm.size() == n;
  bool prediction_held = predicted;

  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    double best = std::abs(a[perm[col] * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a[perm[r] * n + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (!(best > 1e-300)) {
      cache.invalidate();
      throw util::NumericalError("Mna::solve: singular matrix at column " +
                                 std::to_string(col));
    }
    if (prediction_held && perm[piv] != cache.perm[col]) {
      prediction_held = false;
    }
    std::swap(perm[col], perm[piv]);

    const std::size_t prow = perm[col];
    const double diag = a[prow * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const std::size_t row = perm[r];
      const double factor = a[row * n + col] / diag;
      if (factor == 0.0) continue;
      a[row * n + col] = factor;  // Store L in place.
      for (std::size_t c = col + 1; c < n; ++c) {
        a[row * n + c] -= factor * a[prow * n + c];
      }
      b[row] -= factor * b[prow];
    }
  }

  cache.perm = perm;
  cache.valid = true;
  if (prediction_held) {
    FINSER_OBS_COUNT("spice.mna.pivot_reuse", 1);
  } else {
    FINSER_OBS_COUNT("spice.mna.pivot_refactor", 1);
  }

  x.assign(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    const std::size_t row = perm[ri];
    double acc = b[row];
    for (std::size_t c = ri + 1; c < n; ++c) {
      acc -= a[row * n + c] * x[c];
    }
    x[ri] = acc / a[row * n + ri];
    if (!std::isfinite(x[ri])) {
      throw util::NumericalError("Mna::solve: non-finite solution component");
    }
  }
}

/// Size-dispatching front end: routes the characterization-relevant system
/// sizes (a 6T cell solves 10 unknowns, an 8T cell a few more) to fully
/// unrolled instantiations and everything else to the generic one.
inline void fused_lu_solve(SolveWorkspace& ws, std::size_t n,
                           std::vector<double>& x) {
  switch (n) {
    case 6: return fused_lu_solve_sized<6>(ws, n, x);
    case 8: return fused_lu_solve_sized<8>(ws, n, x);
    case 10: return fused_lu_solve_sized<10>(ws, n, x);
    case 11: return fused_lu_solve_sized<11>(ws, n, x);
    case 12: return fused_lu_solve_sized<12>(ws, n, x);
    case 13: return fused_lu_solve_sized<13>(ws, n, x);
    case 14: return fused_lu_solve_sized<14>(ws, n, x);
    default: return fused_lu_solve_sized<0>(ws, n, x);
  }
}

// ---------------------------------------------------------------------------
// DC operating point
// ---------------------------------------------------------------------------

/// One damped-Newton stage at fixed gmin. Returns true on convergence;
/// \p x is updated in place with the best iterate either way.
///
/// The gmin shunt pulls node voltages toward \p anchor (the caller's initial
/// guess) rather than toward ground: for bistable circuits such as SRAM
/// cells this keeps the continuation inside the basin the caller selected
/// instead of collapsing onto the symmetric metastable point.
template <class Stamper>
bool newton_stage(const Stamper& st, SolveWorkspace& ws, Mna& mna,
                  std::vector<double>& x, const std::vector<double>& anchor,
                  double gmin, const DcOptions& opt) {
  const std::size_t n = st.unknown_count();
  StampContext ctx;
  ctx.transient = false;
  ctx.branch_offset = st.node_count();
  if constexpr (Stamper::kFusedSolve) ws.fused_for(n);

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    FINSER_OBS_COUNT("spice.dc.newton_iters", 1);
    if constexpr (Stamper::kFusedSolve) {
      std::fill(ws.fa.begin(), ws.fa.end(), 0.0);
      std::fill(ws.fb.begin(), ws.fb.end(), 0.0);
      ctx.x = &x;
      st.stamp_fused(ws.fa.data(), ws.fb.data(), ctx);
      if (gmin > 0.0) {
        // Same accumulation order as the Mna branch: every diagonal shunt
        // first (Mna::add_gmin), then the rhs anchor loop.
        for (std::size_t i = 0; i < st.node_count() && i < n; ++i) {
          ws.fa[i * n + i] += gmin;
        }
        for (std::size_t i = 0; i < st.node_count(); ++i) {
          ws.fb[i] += gmin * anchor[i];
        }
      }
      try {
        fused_lu_solve(ws, n, ws.x_new);
      } catch (const util::NumericalError&) {
        return false;  // Singular at this iterate: report stage failure so
                       // the caller sees "failed to converge".
      }
    } else {
      mna.clear();
      ctx.x = &x;
      st.stamp_all(mna, ctx);
      if (gmin > 0.0) {
        mna.add_gmin(gmin, st.node_count());
        for (std::size_t i = 0; i < st.node_count(); ++i) {
          mna.add_rhs(i, gmin * anchor[i]);
        }
      }

      try {
        mna.solve_with_cache(ws.pivot, ws.x_new);
      } catch (const util::NumericalError&) {
        return false;  // Singular at this iterate: report stage failure so
                       // the caller sees "failed to converge", not a raw LU
                       // error.
      }
    }
    const std::vector<double>& x_new = ws.x_new;

    // Damping: limit the largest voltage move per iteration.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < st.node_count(); ++i) {
      max_dv = std::max(max_dv, std::abs(x_new[i] - x[i]));
    }
    double alpha = 1.0;
    if (max_dv > opt.damping_vmax) alpha = opt.damping_vmax / max_dv;

    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double step = alpha * (x_new[i] - x[i]);
      x[i] += step;
      max_delta = std::max(max_delta, std::abs(step));
    }
    if (alpha == 1.0 && max_delta < opt.v_tol) {
      FINSER_OBS_RECORD("spice.dc.iters_per_stage", iter + 1);
      return true;
    }
  }
  return false;
}

template <class Stamper>
std::vector<double> solve_dc_impl(const Stamper& st, SolveWorkspace& ws,
                                  const std::vector<double>& initial_guess,
                                  const DcOptions& options) {
  const std::size_t n = st.unknown_count();
  FINSER_REQUIRE(n > 0, "solve_dc: circuit has no unknowns");
  FINSER_REQUIRE(!options.gmin_steps.empty(), "solve_dc: empty gmin schedule");
  FINSER_REQUIRE(initial_guess.empty() || initial_guess.size() == n,
                 "solve_dc: initial guess size mismatch");

  obs::ScopedSpan span("spice.dc.solve");
  FINSER_OBS_COUNT("spice.dc.solves", 1);
  Mna& mna = ws.mna_for(n);
  std::vector<double> x = initial_guess.empty() ? std::vector<double>(n, 0.0)
                                                : initial_guess;
  ws.anchor = x;
  const std::vector<double>& anchor = ws.anchor;

  // gmin continuation with a bounded retry ladder: a failed stage is retried
  // from the last converged iterate with the geometric midpoint between the
  // previous (converged) gmin and the failed one inserted first. Halving the
  // continuation step this way rescues solves where a single gmin decade is
  // too aggressive a homotopy jump, without loosening any tolerance.
  std::vector<double>& schedule = ws.gmin_schedule;
  schedule.assign(options.gmin_steps.begin(), options.gmin_steps.end());
  int extensions = 0;
  double prev_gmin = 0.0;       // gmin of the last converged stage.
  bool any_converged = false;   // Whether prev_gmin is meaningful.
  ws.x_good = x;

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const double gmin = schedule[i];
    FINSER_OBS_COUNT("spice.dc.gmin_stages", 1);
    if (newton_stage(st, ws, mna, x, anchor, gmin, options)) {
      prev_gmin = gmin;
      any_converged = true;
      ws.x_good = x;
      continue;
    }

    if (extensions >= options.max_gmin_extensions) {
      FINSER_OBS_COUNT("spice.dc.failures", 1);
      throw util::NumericalError(
          "solve_dc: Newton failed to converge at gmin = " +
          std::to_string(gmin) + " after " + std::to_string(extensions) +
          " schedule extension(s)");
    }

    // Restore the last converged iterate: the failed stage may have walked x
    // somewhere useless.
    x = ws.x_good;
    double inserted;
    if (any_converged) {
      inserted = std::sqrt(prev_gmin * gmin);
      FINSER_REQUIRE(inserted > gmin && inserted < prev_gmin,
                     "solve_dc: gmin schedule is not strictly decreasing");
    } else {
      // The very first stage failed: retry from a much stiffer shunt.
      inserted = std::min(gmin * 100.0, 1.0);
    }
    ++extensions;
    FINSER_OBS_COUNT("spice.dc.gmin_extensions", 1);
    schedule.insert(schedule.begin() + static_cast<std::ptrdiff_t>(i), inserted);
    --i;  // Re-enter the loop at the inserted stage.
  }
  return x;
}

// ---------------------------------------------------------------------------
// Transient
// ---------------------------------------------------------------------------

/// Newton solve of one implicit step; returns true on convergence and leaves
/// the converged iterate in \p x.
template <class Stamper>
bool newton_step(const Stamper& st, SolveWorkspace& ws, Mna& mna,
                 StampContext& ctx, std::vector<double>& x,
                 const TransientOptions& opt) {
  [[maybe_unused]] const std::size_t n = st.unknown_count();
  if constexpr (Stamper::kFusedSolve) ws.fused_for(n);
  for (int iter = 0; iter < opt.max_newton; ++iter) {
    FINSER_OBS_COUNT("spice.tran.newton_iters", 1);
    if constexpr (Stamper::kFusedSolve) {
      std::fill(ws.fa.begin(), ws.fa.end(), 0.0);
      std::fill(ws.fb.begin(), ws.fb.end(), 0.0);
      ctx.x = &x;
      st.stamp_fused(ws.fa.data(), ws.fb.data(), ctx);
      try {
        fused_lu_solve(ws, n, ws.x_new);
      } catch (const util::NumericalError&) {
        return false;  // Singular at this iterate: convergence failure.
      }
    } else {
      mna.clear();
      ctx.x = &x;
      st.stamp_all(mna, ctx);

      try {
        mna.solve_with_cache(ws.pivot, ws.x_new);
      } catch (const util::NumericalError&) {
        return false;  // Singular at this iterate: treat as convergence
                       // failure.
      }
    }
    const std::vector<double>& x_new = ws.x_new;

    double max_dv = 0.0;
    for (std::size_t i = 0; i < st.node_count(); ++i) {
      max_dv = std::max(max_dv, std::abs(x_new[i] - x[i]));
    }
    const double alpha = max_dv > opt.damping_vmax ? opt.damping_vmax / max_dv : 1.0;

    double max_delta = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double step = alpha * (x_new[i] - x[i]);
      x[i] += step;
      max_delta = std::max(max_delta, std::abs(step));
    }
    if (alpha == 1.0 && max_delta < opt.v_tol) return true;
  }
  return false;
}

template <class Stamper>
Waveform run_transient_impl(const Stamper& st, SolveWorkspace& ws,
                            const std::vector<double>& x0,
                            const TransientOptions& opt,
                            const std::vector<std::string>& probe_nodes) {
  FINSER_REQUIRE(opt.t_end > 0.0, "run_transient: t_end must be positive");
  FINSER_REQUIRE(x0.size() == st.unknown_count(),
                 "run_transient: x0 size mismatch");
  FINSER_REQUIRE(opt.dt_initial > 0.0 && opt.dt_min > 0.0 &&
                     opt.dt_max >= opt.dt_initial,
                 "run_transient: inconsistent step-size options");

  obs::ScopedSpan run_span("spice.tran.run");
  FINSER_OBS_COUNT("spice.tran.runs", 1);

  // Resolve probes.
  std::vector<std::string> names;
  std::vector<std::size_t> nodes;
  if (probe_nodes.empty()) {
    for (std::size_t i = 0; i < st.node_count(); ++i) {
      names.push_back(st.node_name(i));
      nodes.push_back(i);
    }
  } else {
    for (const std::string& p : probe_nodes) {
      names.push_back(p);
      nodes.push_back(st.find_node(p));
    }
  }
  Waveform wave(std::move(names), std::move(nodes));

  // Collect and sort hard breakpoints.
  std::vector<double>& breaks = ws.breaks;
  breaks.clear();
  st.add_breakpoints(opt.t_end, breaks);
  breaks.push_back(opt.t_end);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) { return std::abs(a - b) < 1e-24; }),
               breaks.end());

  // Initialize device state from the operating point.
  st.initialize_state(x0);

  std::vector<double> x = x0;
  Mna& mna = ws.mna_for(st.unknown_count());
  StampContext ctx;
  ctx.transient = true;
  ctx.method = opt.method;
  ctx.branch_offset = st.node_count();

  wave.append(0.0, x);

  double t = 0.0;
  double dt = opt.dt_initial;
  std::size_t next_break = 0;

  // Retry ladder (see TransientOptions::max_restarts): the effective Newton
  // settings escalate deterministically each time the step size underflows,
  // instead of aborting on the first hard spot.
  TransientOptions eff = opt;
  int restart_level = 0;
  std::uint64_t accepted_steps = 0;

  // Steady-state fast-forward (compiled stamper only). In the settling tail
  // of a strike transient the step map becomes a pure function of
  // (x, reactive state): the step size is pinned at dt_max, every source is
  // past its last edge, and each accepted step reproduces the previous
  // solution *exactly* once the floating-point contraction bottoms out
  // (trapezoidal capacitor histories may alternate sign, giving a period-2
  // cycle). The engine snapshots (x, state) after each uniform accepted
  // step; once the last 2p snapshots repeat with period p, every further
  // uniform step provably replays that cycle, so the remaining steps up to
  // the final breakpoint clamp are emitted without stamping or solving —
  // value-identical by induction, not by approximation.
  [[maybe_unused]] constexpr std::size_t kFfMaxPeriod = 4;
  std::uint64_t ff_count = 0;  // Uniform-step snapshots since last reset.
  [[maybe_unused]] const auto ff_snap =
      [&ws](std::uint64_t i) -> SolveWorkspace::StateSnap& {
    return ws.ff_ring[i % ws.ff_ring.size()];
  };
  [[maybe_unused]] const auto ff_same = [](const SolveWorkspace::StateSnap& a,
                                           const SolveWorkspace::StateSnap& b) {
    return a.x == b.x && a.state == b.state;
  };

  while (t < opt.t_end - 1e-24) {
    // Clamp the step to land exactly on the next breakpoint.
    while (next_break < breaks.size() && breaks[next_break] <= t + 1e-24) {
      ++next_break;
    }

    if constexpr (Stamper::kSteadyForward) {
      if (ff_count >= 2 && dt == opt.dt_max && next_break < breaks.size() &&
          st.sources_constant_after(t)) {
        std::size_t period = 0;
        for (std::size_t p = 1; p <= kFfMaxPeriod && period == 0; ++p) {
          if (ff_count < 2 * p) break;
          bool cyclic = true;
          for (std::size_t j = 0; j < p && cyclic; ++j) {
            cyclic = ff_same(ff_snap(ff_count - 1 - j),
                             ff_snap(ff_count - 1 - j - p));
          }
          if (cyclic) period = p;
        }
        if (period > 0) {
          // Replay the cycle over every remaining full-dt step before the
          // breakpoint clamp (mirrors the clamp condition below). Step k
          // ahead of the newest snapshot s_last reproduces
          // s_{last - period + 1 + ((k-1) mod period)}.
          const double bound = breaks[next_break];
          std::uint64_t replayed = 0;
          while (t + dt < bound - 1e-24) {
            ++replayed;
            const SolveWorkspace::StateSnap& s = ff_snap(
                ff_count - 1 - period + 1 + ((replayed - 1) % period));
            t += dt;
            wave.append(t, s.x);
            FINSER_OBS_COUNT("spice.tran.steps", 1);
            FINSER_OBS_COUNT("spice.tran.ff_steps", 1);
            ++accepted_steps;
          }
          if (replayed > 0) {
            const SolveWorkspace::StateSnap& s = ff_snap(
                ff_count - 1 - period + 1 + ((replayed - 1) % period));
            x = s.x;
            st.load_state(s.state);
            ff_count = 0;
          }
        }
      }
    }

    bool hit_break = false;
    double step = dt;
    if (next_break < breaks.size() && t + step >= breaks[next_break] - 1e-24) {
      step = breaks[next_break] - t;
      hit_break = true;
    }

    ctx.time = t + step;
    ctx.dt = step;
    ws.x_try = x;  // Start Newton from the previous solution.
    if (newton_step(st, ws, mna, ctx, ws.x_try, eff)) {
      // Accept.
      FINSER_OBS_COUNT("spice.tran.steps", 1);
      ++accepted_steps;
      std::swap(x, ws.x_try);
      ctx.x = &x;
      st.commit(ctx);
      t = ctx.time;
      wave.append(t, x);
      if constexpr (Stamper::kSteadyForward) {
        // Only a run of *uniform* full-size steps with time-constant
        // sources can certify a cycle; anything else restarts detection.
        if (!hit_break && step == opt.dt_max &&
            st.sources_constant_after(t - step)) {
          SolveWorkspace::StateSnap& slot =
              ws.ff_ring[ff_count % ws.ff_ring.size()];
          slot.x = x;
          st.save_state(slot.state);
          ++ff_count;
        } else {
          ff_count = 0;
        }
      }
      if (hit_break) {
        dt = opt.dt_initial;  // Restart small after a source edge.
        ++next_break;
      } else {
        dt = std::min(dt * opt.grow_factor, opt.dt_max);
      }
    } else {
      // Reject: shrink and retry from the committed state.
      FINSER_OBS_COUNT("spice.tran.rejects", 1);
      ff_count = 0;
      dt *= opt.shrink_factor;
      if (dt < opt.dt_min) {
        if (restart_level < opt.max_restarts) {
          // Escalate: more Newton iterations, stronger damping, and a fresh
          // (smaller) starting step for the same failing instant. The state
          // is the last *committed* step, so nothing is replayed.
          ++restart_level;
          FINSER_OBS_COUNT("spice.tran.escalations", 1);
          eff.max_newton *= 2;
          eff.damping_vmax *= 0.5;
          dt = std::max(opt.dt_min,
                        opt.dt_initial * std::pow(0.1, restart_level));
        } else {
          FINSER_OBS_COUNT("spice.tran.failures", 1);
          throw util::NumericalError(
              "run_transient: Newton failed to converge at t = " +
              std::to_string(t) + " after " + std::to_string(restart_level) +
              " escalation(s) (max_newton " + std::to_string(eff.max_newton) +
              ", damping_vmax " + std::to_string(eff.damping_vmax) + ")");
        }
      }
    }
  }
  FINSER_OBS_RECORD("spice.tran.steps_per_run", accepted_steps);
  return wave;
}

// ---------------------------------------------------------------------------
// Lane-batched transient (compiled path; see batch.hpp)
// ---------------------------------------------------------------------------

/// Per-lane LU failure classification of one batched solve. Each value maps
/// to the util::NumericalError the scalar fused_lu_solve_sized() would have
/// thrown for that lane; the batched Newton turns any of them into a
/// per-lane convergence failure exactly like the scalar catch does.
enum class LaneLu : std::uint8_t {
  kOk = 0,
  kNonFiniteRhs,
  kSingular,
  kNonFiniteSolution,
};

/// Lane-blocked LU on the AoSoA fused arrays: Mna::factor_and_solve /
/// fused_lu_solve_sized() arithmetic per lane — same pivot scan order and
/// tie-breaks, same factor==0 skip semantics (as selects), same counters and
/// per-lane pivot-cache bookkeeping — with one structural change: pivot rows
/// are swapped *physically* per lane instead of indirected through the
/// permutation. Physically position r then always holds what the scalar
/// reads as perm[r], so every elimination and back-substitution inner loop
/// uses indices uniform across lanes and vectorizes no matter how the
/// per-lane pivot choices diverge. Row swaps only move columns >= col: the
/// in-place L entries to the left are never read again (same property the
/// scalar kernel relies on). Errors are flagged per lane, never thrown —
/// a failed lane keeps computing (garbage stays confined to its stride).
template <std::size_t W>
inline void batch_lu_solve(BatchWorkspace& bw, std::size_t n,
                           const std::array<std::uint8_t, W>& active,
                           std::array<LaneLu, W>& status) {
  double* __restrict__ a = bw.fa.data();
  double* __restrict__ b = bw.fb.data();
  double* __restrict__ x = bw.x_new.data();
  std::size_t* __restrict__ perm = bw.perm.data();

  std::size_t n_active = 0;
  for (std::size_t w = 0; w < W; ++w) n_active += active[w] ? 1u : 0u;
  FINSER_OBS_COUNT("spice.mna.solves", static_cast<std::int64_t>(n_active));

  status.fill(LaneLu::kOk);
  // RHS pre-check in select form so the lane loop vectorizes: abs(v) < inf
  // is exactly isfinite(v) for doubles (NaN compares false). Status here is
  // uniformly kOk, so "first error wins" reduces to "any entry bad".
  {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::array<double, W> bad{};
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t w = 0; w < W; ++w) {
        bad[w] = std::abs(b[i * W + w]) < kInf ? bad[w] : 1.0;
      }
    }
    for (std::size_t w = 0; w < W; ++w) {
      if (bad[w] != 0.0) status[w] = LaneLu::kNonFiniteRhs;
    }
  }

  std::array<bool, W> predicted;
  std::array<bool, W> held;
  for (std::size_t w = 0; w < W; ++w) {
    predicted[w] =
        bw.pivot[w].valid && bw.pivot[w].perm.size() == n;
    held[w] = predicted[w];
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t w = 0; w < W; ++w) perm[r * W + w] = r;
  }

  for (std::size_t col = 0; col < n; ++col) {
    // Pivot scan vectorized across lanes: same strictly-greater comparison
    // as the scalar kernel, so ties keep the first maximum and NaN entries
    // (compare false) never displace an earlier pivot — the chosen row is
    // identical per lane, just found with lane-uniform indices.
    std::array<double, W> best;
    std::array<std::size_t, W> piv;
    for (std::size_t w = 0; w < W; ++w) {
      best[w] = std::abs(a[(col * n + col) * W + w]);
      piv[w] = col;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      for (std::size_t w = 0; w < W; ++w) {
        const double v = std::abs(a[(r * n + col) * W + w]);
        const bool gt = v > best[w];
        piv[w] = gt ? r : piv[w];
        best[w] = gt ? v : best[w];
      }
    }
    // Per-lane swap + pivot-cache bookkeeping (scalar, O(n) only on an
    // actual row swap).
    for (std::size_t w = 0; w < W; ++w) {
      if (!(best[w] > 1e-300)) {
        if (status[w] == LaneLu::kOk) {
          status[w] = LaneLu::kSingular;
          bw.pivot[w].invalidate();
        }
        // Keep going with the (near-)zero pivot: the lane's values turn to
        // inf/NaN but stay inside its stride, and the flag above already
        // voids them.
      }
      if (held[w] && perm[piv[w] * W + w] != bw.pivot[w].perm[col]) {
        held[w] = false;
      }
      std::swap(perm[col * W + w], perm[piv[w] * W + w]);
      if (piv[w] != col) {
        for (std::size_t c = col; c < n; ++c) {
          std::swap(a[(col * n + c) * W + w], a[(piv[w] * n + c) * W + w]);
        }
        std::swap(b[col * W + w], b[piv[w] * W + w]);
      }
    }

    // Elimination: uniform indices across lanes (vectorizes). The
    // factor==0 early-out of the scalar kernel becomes per-entry selects
    // with identical results (including signed zeros and inf rows).
    for (std::size_t r = col + 1; r < n; ++r) {
      std::array<double, W> factor;
      for (std::size_t w = 0; w < W; ++w) {
        factor[w] = a[(r * n + col) * W + w] / a[(col * n + col) * W + w];
      }
      // All-lane structural zero: every select below would keep its old
      // value, so skipping the row update outright computes the same bits.
      // This recovers the scalar kernel's factor==0 early-out for the common
      // case where the sparsity pattern agrees across lanes (same topology).
      bool any_nonzero = false;
      for (std::size_t w = 0; w < W; ++w) {
        any_nonzero |= factor[w] != 0.0;
      }
      if (!any_nonzero) continue;
      // Distinct rows (r > col), so the update and pivot row never overlap:
      // restrict row pointers spare the vectorizer its runtime overlap
      // checks on every (col, r) pair.
      double* __restrict__ arow = a + r * n * W;
      const double* __restrict__ apiv = a + col * n * W;
      for (std::size_t w = 0; w < W; ++w) {
        const double old = arow[col * W + w];
        arow[col * W + w] = factor[w] == 0.0 ? old : factor[w];
      }
      for (std::size_t c = col + 1; c < n; ++c) {
        for (std::size_t w = 0; w < W; ++w) {
          const double v = arow[c * W + w];
          const double upd = v - factor[w] * apiv[c * W + w];
          arow[c * W + w] = factor[w] == 0.0 ? v : upd;
        }
      }
      double* __restrict__ brow = b + r * W;
      const double* __restrict__ bpiv = b + col * W;
      for (std::size_t w = 0; w < W; ++w) {
        const double v = brow[w];
        const double upd = v - factor[w] * bpiv[w];
        brow[w] = factor[w] == 0.0 ? v : upd;
      }
    }
  }

  std::int64_t reused = 0;
  std::int64_t refactored = 0;
  for (std::size_t w = 0; w < W; ++w) {
    if (!active[w]) continue;
    if (status[w] != LaneLu::kOk) continue;
    Mna::PivotCache& cache = bw.pivot[w];
    if (held[w]) {
      // held[w] means every column's pivot matched cache.perm, so the
      // writeback below would copy the cache onto itself — skip it.
      ++reused;
    } else {
      cache.perm.resize(n);
      for (std::size_t r = 0; r < n; ++r) cache.perm[r] = perm[r * W + w];
      cache.valid = true;
      ++refactored;
    }
  }
  if (reused > 0) FINSER_OBS_COUNT("spice.mna.pivot_reuse", reused);
  if (refactored > 0) FINSER_OBS_COUNT("spice.mna.pivot_refactor", refactored);

  // Back substitution (uniform indices, vectorizes). The non-finite check
  // accumulates in select form so the division loop stays branch-free:
  // flagging once at the end is equivalent to flagging at the first bad row
  // (same enum value, nothing later overwrites a kOk lane's status).
  {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::array<double, W> badsol{};
    for (std::size_t ri = n; ri-- > 0;) {
      // x[ri] is only written after every x[c], c > ri, has been read:
      // restrict row pointers make the non-overlap explicit.
      const double* __restrict__ arow = a + ri * n * W;
      const double* __restrict__ xtail = x + (ri + 1) * W;
      std::array<double, W> acc;
      for (std::size_t w = 0; w < W; ++w) acc[w] = b[ri * W + w];
      for (std::size_t c = ri + 1; c < n; ++c) {
        for (std::size_t w = 0; w < W; ++w) {
          acc[w] -= arow[c * W + w] * xtail[(c - ri - 1) * W + w];
        }
      }
      for (std::size_t w = 0; w < W; ++w) {
        const double xv = acc[w] / arow[ri * W + w];
        x[ri * W + w] = xv;
        badsol[w] = std::abs(xv) < kInf ? badsol[w] : 1.0;
      }
    }
    for (std::size_t w = 0; w < W; ++w) {
      if (badsol[w] != 0.0 && status[w] == LaneLu::kOk) {
        status[w] = LaneLu::kNonFiniteSolution;
      }
    }
  }
}

/// Lane-batched mirror of run_transient_impl(): W independent transients
/// advance through one vectorized Newton tick at a time. All per-lane step
/// control (breakpoint clamping, accept/reject, the escalation ladder,
/// steady-state fast-forward) is the scalar loop's code ported statement for
/// statement and run per lane; only the per-iteration stamp+solve+update is
/// batched. Lanes that are done, failed or inactive stay in the vector as
/// masked compute-and-discard riders until the group drains — freezing, not
/// branching, is what keeps the hot loop uniform.
template <std::size_t W>
BatchTransientResult run_transient_batch_impl(
    CompiledCircuit& cc, BatchWorkspace& bw,
    const std::vector<std::vector<double>>& x0, const TransientOptions& opt,
    const std::vector<std::string>& probe_nodes) {
  FINSER_REQUIRE(bw.lanes == W, "run_transient_batch: workspace lane mismatch");
  FINSER_REQUIRE(x0.size() <= W, "run_transient_batch: more lanes than width");
  FINSER_REQUIRE(opt.t_end > 0.0, "run_transient: t_end must be positive");
  FINSER_REQUIRE(opt.dt_initial > 0.0 && opt.dt_min > 0.0 &&
                     opt.dt_max >= opt.dt_initial,
                 "run_transient: inconsistent step-size options");
  const std::size_t n = cc.unknown_count();
  FINSER_REQUIRE(bw.unknowns == n, "run_transient_batch: workspace size mismatch");

  obs::ScopedSpan run_span("spice.tran.run_batch");

  // Resolve probes once (identical resolution to the scalar engine).
  std::vector<std::string> names;
  std::vector<std::size_t> nodes;
  if (probe_nodes.empty()) {
    for (std::size_t i = 0; i < cc.node_count(); ++i) {
      names.push_back(cc.source().node_name(i));
      nodes.push_back(i);
    }
  } else {
    for (const std::string& p : probe_nodes) {
      names.push_back(p);
      nodes.push_back(cc.source().find_node(p));
    }
  }

  BatchTransientResult res;
  res.failed.assign(W, 0);
  res.errors.assign(W, std::string());
  res.waves.reserve(W);
  for (std::size_t w = 0; w < W; ++w) res.waves.emplace_back(names, nodes);

  enum class Phase : std::uint8_t {
    kInactive,  ///< Masked-off ragged-tail lane: rides, never reported.
    kStepping,  ///< Between steps: scalar bookkeeping will arm a Newton.
    kNewton,    ///< Mid-Newton: participates in the vectorized tick.
    kDone,
    kFailed,
  };
  std::array<Phase, W> phase;
  phase.fill(Phase::kInactive);
  std::array<double, W> t{};
  std::array<double, W> dt{};
  std::array<double, W> bt{};   ///< Per-lane stamp time (ctx.time).
  std::array<double, W> bdt{};  ///< Per-lane stamp step (ctx.dt).
  std::array<double, W> step{};
  std::array<bool, W> hit_break{};
  std::array<std::size_t, W> next_break{};
  std::array<int, W> newton_iter{};
  std::array<int, W> restart_level{};
  std::array<int, W> eff_max_newton{};
  std::array<double, W> eff_damping{};
  std::array<std::uint64_t, W> accepted{};
  std::array<std::uint64_t, W> ff_count{};
  // Keep masked lanes' dt positive: they are stamped unconditionally and the
  // capacitor companion divides by it.
  dt.fill(opt.dt_initial);
  bdt.fill(opt.dt_initial);

  std::vector<double> xscratch(n, 0.0);
  const auto extract_lane = [&](const std::vector<double>& src, std::size_t w,
                                std::vector<double>& out) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = src[i * W + w];
  };
  const auto inject_lane = [&](const std::vector<double>& in, std::size_t w,
                               std::vector<double>& dst) {
    for (std::size_t i = 0; i < n; ++i) dst[i * W + w] = in[i];
  };

  constexpr std::size_t kFfMaxPeriod = 4;
  const auto ff_snap = [&bw](std::size_t w,
                             std::uint64_t i) -> SolveWorkspace::StateSnap& {
    return bw.ff_ring[w][i % bw.ff_ring[w].size()];
  };
  const auto ff_same = [](const SolveWorkspace::StateSnap& sa,
                          const SolveWorkspace::StateSnap& sb) {
    return sa.x == sb.x && sa.state == sb.state;
  };

  // Initialize active lanes; masked lanes inherit the first active lane's
  // operating point so their ride-along arithmetic stays finite.
  std::size_t first_active = W;
  for (std::size_t w = 0; w < x0.size(); ++w) {
    if (x0[w].empty()) continue;
    FINSER_REQUIRE(x0[w].size() == n, "run_transient: x0 size mismatch");
    if (first_active == W) first_active = w;
    FINSER_OBS_COUNT("spice.tran.runs", 1);
    std::vector<double>& breaks = bw.breaks[w];
    breaks.clear();
    cc.batch_add_breakpoints(bw, w, opt.t_end, breaks);
    breaks.push_back(opt.t_end);
    std::sort(breaks.begin(), breaks.end());
    breaks.erase(
        std::unique(breaks.begin(), breaks.end(),
                    [](double p, double q) { return std::abs(p - q) < 1e-24; }),
        breaks.end());
    cc.batch_initialize_state(bw, w, x0[w]);
    inject_lane(x0[w], w, bw.x);
    res.waves[w].append(0.0, x0[w]);
    phase[w] = Phase::kStepping;
    eff_max_newton[w] = opt.max_newton;
    eff_damping[w] = opt.damping_vmax;
  }
  if (first_active == W) return res;  // Nothing to do.
  for (std::size_t w = 0; w < W; ++w) {
    if (phase[w] == Phase::kInactive) {
      inject_lane(x0[first_active], w, bw.x);
      cc.batch_initialize_state(bw, w, x0[first_active]);
    }
  }

  // Scalar accept-path bookkeeping for lane w (run_transient_impl's accept
  // branch, minus the shared counter handled by the caller).
  const auto accept = [&](std::size_t w) {
    FINSER_OBS_COUNT("spice.tran.steps", 1);
    ++accepted[w];
    for (std::size_t i = 0; i < n; ++i) {
      bw.x[i * W + w] = bw.x_try[i * W + w];
    }
    cc.batch_commit(bw, w, bt[w], bdt[w], opt.method);
    t[w] = bt[w];
    extract_lane(bw.x, w, xscratch);
    res.waves[w].append(t[w], xscratch);
    if (!hit_break[w] && step[w] == opt.dt_max &&
        cc.batch_sources_constant_after(bw, w, t[w] - step[w])) {
      SolveWorkspace::StateSnap& slot = ff_snap(w, ff_count[w]);
      slot.x = xscratch;
      cc.batch_save_reactive_state(bw, w, slot.state);
      ++ff_count[w];
    } else {
      ff_count[w] = 0;
    }
    if (hit_break[w]) {
      dt[w] = opt.dt_initial;  // Restart small after a source edge.
      ++next_break[w];
    } else {
      dt[w] = std::min(dt[w] * opt.grow_factor, opt.dt_max);
    }
    phase[w] = Phase::kStepping;
  };

  // Scalar reject path for lane w; a drained escalation ladder marks the
  // lane failed with the text the scalar engine would have thrown.
  const auto reject = [&](std::size_t w) {
    FINSER_OBS_COUNT("spice.tran.rejects", 1);
    ff_count[w] = 0;
    dt[w] *= opt.shrink_factor;
    phase[w] = Phase::kStepping;
    if (dt[w] < opt.dt_min) {
      if (restart_level[w] < opt.max_restarts) {
        ++restart_level[w];
        FINSER_OBS_COUNT("spice.tran.escalations", 1);
        eff_max_newton[w] *= 2;
        eff_damping[w] *= 0.5;
        dt[w] = std::max(opt.dt_min,
                         opt.dt_initial * std::pow(0.1, restart_level[w]));
      } else {
        FINSER_OBS_COUNT("spice.tran.failures", 1);
        res.failed[w] = 1;
        res.errors[w] =
            "run_transient: Newton failed to converge at t = " +
            std::to_string(t[w]) + " after " +
            std::to_string(restart_level[w]) + " escalation(s) (max_newton " +
            std::to_string(eff_max_newton[w]) + ", damping_vmax " +
            std::to_string(eff_damping[w]) + ")";
        phase[w] = Phase::kFailed;
      }
    }
  };

  std::array<std::uint8_t, W> newton_mask{};
  std::array<LaneLu, W> lu_status{};

  for (;;) {
    // --- Per-lane scalar bookkeeping: arm the next Newton attempt ---------
    for (std::size_t w = 0; w < W; ++w) {
      if (phase[w] != Phase::kStepping) continue;
      if (t[w] >= opt.t_end - 1e-24) {
        FINSER_OBS_RECORD("spice.tran.steps_per_run", accepted[w]);
        phase[w] = Phase::kDone;
        continue;
      }
      std::vector<double>& breaks = bw.breaks[w];
      while (next_break[w] < breaks.size() &&
             breaks[next_break[w]] <= t[w] + 1e-24) {
        ++next_break[w];
      }

      // Steady-state fast-forward (scalar port, per lane).
      if (ff_count[w] >= 2 && dt[w] == opt.dt_max &&
          next_break[w] < breaks.size() &&
          cc.batch_sources_constant_after(bw, w, t[w])) {
        std::size_t period = 0;
        for (std::size_t p = 1; p <= kFfMaxPeriod && period == 0; ++p) {
          if (ff_count[w] < 2 * p) break;
          bool cyclic = true;
          for (std::size_t j = 0; j < p && cyclic; ++j) {
            cyclic = ff_same(ff_snap(w, ff_count[w] - 1 - j),
                             ff_snap(w, ff_count[w] - 1 - j - p));
          }
          if (cyclic) period = p;
        }
        if (period > 0) {
          const double bound = breaks[next_break[w]];
          std::uint64_t replayed = 0;
          while (t[w] + dt[w] < bound - 1e-24) {
            ++replayed;
            const SolveWorkspace::StateSnap& s = ff_snap(
                w, ff_count[w] - 1 - period + 1 + ((replayed - 1) % period));
            t[w] += dt[w];
            res.waves[w].append(t[w], s.x);
            FINSER_OBS_COUNT("spice.tran.steps", 1);
            FINSER_OBS_COUNT("spice.tran.ff_steps", 1);
            ++accepted[w];
          }
          if (replayed > 0) {
            const SolveWorkspace::StateSnap& s = ff_snap(
                w, ff_count[w] - 1 - period + 1 + ((replayed - 1) % period));
            inject_lane(s.x, w, bw.x);
            cc.batch_load_reactive_state(bw, w, s.state);
            ff_count[w] = 0;
          }
        }
      }

      hit_break[w] = false;
      step[w] = dt[w];
      if (next_break[w] < breaks.size() &&
          t[w] + step[w] >= breaks[next_break[w]] - 1e-24) {
        step[w] = breaks[next_break[w]] - t[w];
        hit_break[w] = true;
      }
      bt[w] = t[w] + step[w];
      bdt[w] = step[w];
      for (std::size_t i = 0; i < n; ++i) {
        bw.x_try[i * W + w] = bw.x[i * W + w];
      }
      newton_iter[w] = 0;
      phase[w] = Phase::kNewton;
    }

    std::size_t n_active = 0;
    for (std::size_t w = 0; w < W; ++w) {
      newton_mask[w] = phase[w] == Phase::kNewton ? 1 : 0;
      n_active += newton_mask[w];
    }
    if (n_active == 0) break;  // Every lane done, failed or inactive.

    // --- One masked vectorized Newton iteration over all lanes -------------
    FINSER_OBS_COUNT("spice.tran.newton_iters",
                     static_cast<std::int64_t>(n_active));
    FINSER_OBS_COUNT("spice.batch.newton_ticks", 1);
    FINSER_OBS_COUNT("spice.batch.lane_iters_active",
                     static_cast<std::int64_t>(n_active));
    FINSER_OBS_COUNT("spice.batch.lane_iters_masked",
                     static_cast<std::int64_t>(W - n_active));
    std::fill(bw.fa.begin(), bw.fa.end(), 0.0);
    std::fill(bw.fb.begin(), bw.fb.end(), 0.0);
    cc.batch_stamp_fused<W>(bw, bt.data(), bdt.data(), opt.method);
    batch_lu_solve<W>(bw, n, newton_mask, lu_status);

    // Damping and convergence, lane-vectorized: the max reductions and the
    // damped iterate update run for every lane (i outer, w inner, identical
    // per-lane operation order as the scalar loop), with a masked store so
    // lanes that are not mid-Newton (or whose solve failed) keep their
    // iterate untouched — their max_dv/alpha/max_delta values are computed
    // from garbage and discarded below, never stored.
    {
      std::array<double, W> upd_ok;
      for (std::size_t w = 0; w < W; ++w) {
        upd_ok[w] = phase[w] == Phase::kNewton && lu_status[w] == LaneLu::kOk
                        ? 1.0
                        : 0.0;
      }
      double* __restrict__ xtry = bw.x_try.data();
      const double* __restrict__ xnew = bw.x_new.data();
      std::array<double, W> max_dv{};
      const std::size_t n_nodes = cc.node_count();
      for (std::size_t i = 0; i < n_nodes; ++i) {
        for (std::size_t w = 0; w < W; ++w) {
          const double dv = std::abs(xnew[i * W + w] - xtry[i * W + w]);
          max_dv[w] = dv > max_dv[w] ? dv : max_dv[w];
        }
      }
      std::array<double, W> alpha;
      for (std::size_t w = 0; w < W; ++w) {
        alpha[w] =
            max_dv[w] > eff_damping[w] ? eff_damping[w] / max_dv[w] : 1.0;
      }
      std::array<double, W> max_delta{};
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t w = 0; w < W; ++w) {
          const double d = alpha[w] * (xnew[i * W + w] - xtry[i * W + w]);
          const double nv = xtry[i * W + w] + d;
          xtry[i * W + w] = upd_ok[w] != 0.0 ? nv : xtry[i * W + w];
          const double ad = std::abs(d);
          max_delta[w] = ad > max_delta[w] ? ad : max_delta[w];
        }
      }
      for (std::size_t w = 0; w < W; ++w) {
        if (phase[w] != Phase::kNewton) continue;
        if (lu_status[w] != LaneLu::kOk) {
          // Scalar newton_step catches the LU throw and reports convergence
          // failure without touching the iterate.
          reject(w);
          continue;
        }
        if (alpha[w] == 1.0 && max_delta[w] < opt.v_tol) {
          accept(w);
        } else if (++newton_iter[w] >= eff_max_newton[w]) {
          reject(w);
        }
      }
    }
  }
  return res;
}

}  // namespace finser::spice::detail
