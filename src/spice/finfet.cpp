#include "finser/spice/finfet.hpp"

#include <cmath>

#include "finser/util/constants.hpp"
#include "finser/util/error.hpp"

namespace finser::spice {

namespace {

constexpr double kPhiT = util::kThermalVoltage300K;

using detail::ekv_f;
using detail::FEval;

/// Core NMOS-convention evaluation for vds >= 0.
MosOp evaluate_core(const FinFetModel& m, double vgs, double vds, double delta_vt,
                    double nfin, double temp_k) {
  // Temperature behaviour around T0 = 300 K: thermal voltage scales with T,
  // |Vt| follows the linear tempco, mobility follows the phonon power law.
  const double phi_t = kPhiT * temp_k / 300.0;
  const double kp_t = m.kp * std::pow(300.0 / temp_k, m.mobility_exponent);
  const double vt_eff =
      m.vt0 + m.vt_tc_v_per_k * (temp_k - 300.0) + delta_vt - m.dibl * vds;
  const double vp = (vgs - vt_eff) / m.n;
  const double is = 2.0 * m.n * phi_t * phi_t * kp_t * nfin;

  const FEval ff = ekv_f(vp / phi_t);
  const FEval fr = ekv_f((vp - vds) / phi_t);
  const double clm = 1.0 + m.lambda * vds;

  MosOp op;
  op.ids = is * (ff.f - fr.f) * clm;

  // d(vp)/d(vgs) = 1/n ; d(vp)/d(vds) = dibl/n.
  const double duf_dvgs = 1.0 / (m.n * phi_t);
  const double duf_dvds = m.dibl / (m.n * phi_t);
  const double dur_dvgs = duf_dvgs;
  const double dur_dvds = duf_dvds - 1.0 / phi_t;

  op.gm = is * clm * (ff.df * duf_dvgs - fr.df * dur_dvgs);
  op.gds = is * clm * (ff.df * duf_dvds - fr.df * dur_dvds) +
           is * m.lambda * (ff.f - fr.f);
  return op;
}

}  // namespace

MosOp evaluate_finfet(const FinFetModel& m, double vd, double vg, double vs,
                      double delta_vt, double nfin, double temp_k) {
  FINSER_REQUIRE(nfin > 0.0, "evaluate_finfet: nfin must be positive");
  FINSER_REQUIRE(temp_k > 0.0, "evaluate_finfet: temperature must be positive");

  if (m.type == MosType::kP) {
    // Reflect to NMOS convention: a PFET with terminals (d,g,s) behaves as an
    // NFET at (-d,-g,-s) with current sign flipped.
    FinFetModel n_equiv = m;
    n_equiv.type = MosType::kN;
    MosOp op = evaluate_finfet(n_equiv, -vd, -vg, -vs, delta_vt, nfin, temp_k);
    // I_P(vgs, vds) = -I_N(-vgs, -vds): both reflections flip twice in the
    // chain rule, so gm and gds carry over unchanged; only the current flips.
    op.ids = -op.ids;
    return op;
  }

  const double vgs = vg - vs;
  const double vds = vd - vs;
  if (vds >= 0.0) {
    return evaluate_core(m, vgs, vds, delta_vt, nfin, temp_k);
  }
  // Source-drain swap for vds < 0 (symmetric device): evaluate with the roles
  // exchanged, then translate current & derivatives back to (d,g,s) frame.
  // Writing I(vgs, vds) = -f(vgs - vds, -vds) with f = evaluate_core:
  //   dI/dvgs = -f_a
  //   dI/dvds = -(f_a·(-1) + f_b·(-1)) = f_a + f_b
  const MosOp sw = evaluate_core(m, vg - vd, -vds, delta_vt, nfin, temp_k);
  MosOp op;
  op.ids = -sw.ids;
  op.gm = -sw.gm;
  op.gds = sw.gm + sw.gds;
  return op;
}

FinFetPlan bake_finfet(const FinFetModel& m, double delta_vt, double nfin,
                       double temp_k) {
  FINSER_REQUIRE(nfin > 0.0, "bake_finfet: nfin must be positive");
  FINSER_REQUIRE(temp_k > 0.0, "bake_finfet: temperature must be positive");
  // Every expression below matches the corresponding evaluate_core()
  // subexpression verbatim (same terms, same association order) — the baked
  // values must be the exact doubles the reference evaluation recomputes
  // per call, or evaluate_finfet_planned() loses bit-identity.
  FinFetPlan p;
  p.p_type = m.type == MosType::kP;
  p.n = m.n;
  p.dibl = m.dibl;
  p.lambda = m.lambda;
  p.phi_t = kPhiT * temp_k / 300.0;
  const double kp_t = m.kp * std::pow(300.0 / temp_k, m.mobility_exponent);
  p.vt_base = m.vt0 + m.vt_tc_v_per_k * (temp_k - 300.0) + delta_vt;
  p.is = 2.0 * m.n * p.phi_t * p.phi_t * kp_t * nfin;
  p.is_lambda = p.is * m.lambda;
  p.duf_dvgs = 1.0 / (m.n * p.phi_t);
  p.duf_dvds = m.dibl / (m.n * p.phi_t);
  p.dur_dvds = p.duf_dvds - 1.0 / p.phi_t;
  return p;
}

const FinFetModel& default_nfet() {
  static const FinFetModel m = [] {
    FinFetModel n;
    n.type = MosType::kN;
    return n;
  }();
  return m;
}

const FinFetModel& default_pfet() {
  static const FinFetModel m = [] {
    FinFetModel p;
    p.type = MosType::kP;
    p.kp = 3.2e-4;  // Hole-mobility deficit vs the NFET card.
    return p;
  }();
  return m;
}

}  // namespace finser::spice
