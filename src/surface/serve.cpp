/// \file serve.cpp
/// \brief NDJSON serve loop: parse, batch, backpressure, drain.

#include "finser/surface/serve.hpp"

#include <istream>
#include <ostream>
#include <utility>

#include "finser/obs/obs.hpp"
#include "finser/util/error.hpp"
#include "finser/util/json.hpp"

namespace finser::surface {

namespace {

bool is_finite_number(const util::JsonValue& v) {
  if (!v.is_number()) return false;
  const double d = v.as_double();
  return d == d && d - d == 0.0;  // finite: not NaN, not ±inf
}

}  // namespace

struct ServeSession::Request {
  util::JsonValue id;
  bool has_id = false;
  std::string op;  ///< "fit" or "pof".
  std::string scenario;
  std::string species;
  double vdd = 0.0;
  double energy_mev = 0.0;
  bool with_pv = true;
};

ServeSession::ServeSession(std::vector<ServeScenario> catalog,
                           ServeConfig config, LookupFn lookup, RefineFn refine,
                           const exec::CancelToken* cancel)
    : catalog_(std::move(catalog)),
      config_(std::move(config)),
      lookup_(std::move(lookup)),
      refine_(std::move(refine)),
      cancel_(cancel) {
  FINSER_REQUIRE(!catalog_.empty(), "serve: empty scenario catalog");
  FINSER_REQUIRE(config_.max_pending > 0, "serve: max_pending must be >= 1");
}

void ServeSession::respond(std::ostream& out, const std::string& line) {
  out << line << '\n';
}

void ServeSession::flush(std::vector<Request>& pending, std::ostream& out,
                         bool cache_only) {
  if (!pending.empty()) FINSER_OBS_COUNT("serve.batches", 1);
  for (const Request& q : pending) {
    const ResponseSurface* s = lookup_ ? lookup_(q.scenario, q.species) : nullptr;
    if (s != nullptr) FINSER_OBS_COUNT("serve.cache_hits", 1);
    if (s == nullptr && !cache_only) {
      if (cancel_ != nullptr && cancel_->cancelled()) {
        cache_only = true;  // drain: no new simulations past this point
      } else {
        try {
          FINSER_OBS_COUNT("serve.refines", 1);
          s = refine_(q.scenario, q.species);
        } catch (const util::Cancelled&) {
          cache_only = true;
        } catch (const std::exception& e) {
          util::JsonValue r = util::JsonValue::object();
          if (q.has_id) r["id"] = q.id;
          r["status"] = "error";
          r["reason"] = std::string("refinement failed: ") + e.what();
          respond(out, r.dump());
          degraded_ = true;
          FINSER_OBS_COUNT("serve.errors", 1);
          continue;
        }
      }
    }
    if (s == nullptr) {
      // Cache miss during a cache-only drain: the request is answered with
      // an explicit `cancelled` status rather than silently dropped.
      util::JsonValue r = util::JsonValue::object();
      if (q.has_id) r["id"] = q.id;
      r["status"] = "cancelled";
      r["reason"] = "draining: refinement not started";
      respond(out, r.dump());
      degraded_ = true;
      FINSER_OBS_COUNT("serve.cancelled", 1);
      continue;
    }
    util::JsonValue r = util::JsonValue::object();
    if (q.has_id) r["id"] = q.id;
    r["status"] = "ok";
    r["op"] = q.op;
    r["scenario"] = q.scenario;
    r["species"] = q.species;
    r["vdd"] = q.vdd;
    if (q.op == "pof") {
      r["energy_mev"] = q.energy_mev;
      r["with_pv"] = q.with_pv;
      r["grid_point"] =
          s->is_grid_vdd(q.vdd) && s->is_grid_energy(q.energy_mev);
      const PofSample p = s->pof(q.vdd, q.energy_mev, q.with_pv);
      r["pof_tot"] = p.tot;
      r["pof_seu"] = p.seu;
      r["pof_mbu"] = p.mbu;
      r["pof_tot_se"] = p.tot_se;
    } else {
      r["with_pv"] = q.with_pv;
      r["grid_point"] = s->is_grid_vdd(q.vdd);
      const FitSample f = s->fit(q.vdd, q.with_pv);
      r["fit_tot"] = f.tot;
      r["fit_seu"] = f.seu;
      r["fit_mbu"] = f.mbu;
    }
    respond(out, r.dump());
    FINSER_OBS_COUNT("serve.ok", 1);
  }
  pending.clear();
  out.flush();
}

int ServeSession::run(std::istream& in, std::ostream& out) {
  std::vector<Request> pending;
  pending.reserve(config_.max_pending);
  std::string line;
  bool shutdown = false;
  while (!shutdown) {
    if (cancel_ != nullptr && cancel_->cancelled()) break;
    // About to block on input with work queued? Resolve the batch first so
    // clients that wrote several requests in one burst get them answered by
    // one refinement pass, while a lone request never waits.
    if (!pending.empty() && in.rdbuf()->in_avail() <= 0) {
      flush(pending, out, /*cache_only=*/false);
      continue;  // re-check cancellation before blocking
    }
    if (!std::getline(in, line)) break;  // EOF, or EINTR after a signal
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    FINSER_OBS_COUNT("serve.requests", 1);
    util::JsonValue req;
    try {
      req = util::JsonValue::parse(line);
      FINSER_REQUIRE(req.is_object(), "request must be a JSON object");
    } catch (const std::exception& e) {
      util::JsonValue r = util::JsonValue::object();
      r["status"] = "error";
      r["reason"] = std::string("bad request: ") + e.what();
      respond(out, r.dump());
      out.flush();
      degraded_ = true;
      FINSER_OBS_COUNT("serve.errors", 1);
      continue;
    }

    Request q;
    if (req.contains("id")) {
      q.has_id = true;
      q.id = req.at("id");
    }
    const std::string op =
        req.contains("op") && req.at("op").is_string()
            ? req.at("op").as_string()
            : std::string();

    if (op == "shutdown") {
      flush(pending, out, /*cache_only=*/false);
      util::JsonValue r = util::JsonValue::object();
      if (q.has_id) r["id"] = q.id;
      r["status"] = "ok";
      r["op"] = "shutdown";
      respond(out, r.dump());
      out.flush();
      shutdown = true;
      continue;
    }
    if (op == "stats") {
      // Flush first so the counters reflect every request received so far.
      flush(pending, out, /*cache_only=*/false);
      util::JsonValue r = util::JsonValue::object();
      if (q.has_id) r["id"] = q.id;
      r["status"] = "ok";
      r["op"] = "stats";
      util::JsonValue counters = util::JsonValue::object();
      for (const auto& row : obs::Registry::global().snapshot().counters) {
        counters[row.name] = row.total;
      }
      r["counters"] = std::move(counters);
      respond(out, r.dump());
      out.flush();
      continue;
    }

    // Query ops: validate against the catalog before queueing.
    const auto reject = [&](const std::string& reason) {
      util::JsonValue r = util::JsonValue::object();
      if (q.has_id) r["id"] = q.id;
      r["status"] = "error";
      r["reason"] = reason;
      respond(out, r.dump());
      out.flush();
      degraded_ = true;
      FINSER_OBS_COUNT("serve.errors", 1);
    };
    if (op != "fit" && op != "pof") {
      reject("unknown op (expected fit|pof|stats|shutdown)");
      continue;
    }
    q.op = op;
    q.scenario = req.contains("scenario") && req.at("scenario").is_string()
                     ? req.at("scenario").as_string()
                     : catalog_.front().name;
    const ServeScenario* scen = nullptr;
    for (const ServeScenario& c : catalog_) {
      if (c.name == q.scenario) scen = &c;
    }
    if (scen == nullptr) {
      reject("unknown scenario: " + q.scenario);
      continue;
    }
    if (!req.contains("species") || !req.at("species").is_string()) {
      reject("missing species");
      continue;
    }
    q.species = req.at("species").as_string();
    bool species_known = false;
    for (const std::string& sp : scen->species) {
      species_known = species_known || sp == q.species;
    }
    if (!species_known) {
      reject("scenario '" + q.scenario + "' has no species '" + q.species +
             "'");
      continue;
    }
    if (!req.contains("vdd") || !is_finite_number(req.at("vdd"))) {
      reject("missing or non-finite vdd");
      continue;
    }
    q.vdd = req.at("vdd").as_double();
    if (op == "pof") {
      if (!req.contains("energy_mev") ||
          !is_finite_number(req.at("energy_mev"))) {
        reject("missing or non-finite energy_mev");
        continue;
      }
      q.energy_mev = req.at("energy_mev").as_double();
    }
    if (req.contains("with_pv")) {
      if (!req.at("with_pv").is_bool()) {
        reject("with_pv must be a boolean");
        continue;
      }
      q.with_pv = req.at("with_pv").as_bool();
    }

    // Backpressure: a full pending queue sheds instead of buffering without
    // bound. Shed responses are immediate (they may interleave ahead of the
    // queued requests' answers).
    if (pending.size() >= config_.max_pending) {
      util::JsonValue r = util::JsonValue::object();
      if (q.has_id) r["id"] = q.id;
      r["status"] = "shed";
      r["reason"] = "pending queue full (max_pending=" +
                    std::to_string(config_.max_pending) + ")";
      respond(out, r.dump());
      out.flush();
      degraded_ = true;
      FINSER_OBS_COUNT("serve.shed", 1);
      continue;
    }
    pending.push_back(std::move(q));
  }

  // Drain: when cancelled, answer what the cache can and mark the rest
  // `cancelled`; on EOF/shutdown the queue resolves normally.
  const bool cancelled = cancel_ != nullptr && cancel_->cancelled();
  flush(pending, out, /*cache_only=*/cancelled);
  out.flush();
  return degraded_ ? 6 : 0;
}

}  // namespace finser::surface
