/// \file response_surface.cpp
/// \brief ResponseSurface build/query/codec (docs/serving.md).

#include "finser/surface/response_surface.hpp"

#include "finser/core/array_engine.hpp"
#include "finser/phys/particle.hpp"
#include "finser/util/error.hpp"

namespace finser::surface {

namespace {

constexpr std::uint32_t kCodecVersion = 1;

/// Exact-node-aware lerp: Axis::locate returns frac == 0.0 / 1.0 at grid
/// nodes (and at clamped edges), and `v0 + frac * (v1 - v0)` does not
/// reproduce v1 bit-for-bit at frac == 1.0 under IEEE-754, so nodes are
/// returned verbatim. This is what makes grid-point answers byte-identical
/// to the tabulated channel values.
double lerp_exact(double v0, double v1, double frac) {
  if (frac == 0.0) return v0;
  if (frac == 1.0) return v1;
  return v0 + frac * (v1 - v0);
}

/// Axis location generalized to degenerate (single-point) dimensions, which
/// util::Axis cannot represent: every query collapses to the lone node.
util::Axis::Location locate_or_collapse(const util::Axis& axis, double x) {
  if (axis.size() < 2) return {0, 0.0, true};
  return axis.locate(x, util::OutOfRange::kClamp);
}

void write_str(util::ByteWriter& w, const std::string& s) {
  w.u64(s.size());
  w.bytes(s.data(), s.size());
}

std::string read_str(util::ByteReader& r) {
  const std::uint64_t n = r.u64();
  FINSER_REQUIRE(n <= r.remaining(),
                 "response surface: string length exceeds payload");
  std::string s(n, '\0');
  r.bytes(s.data(), n);
  return s;
}

}  // namespace

ResponseSurface ResponseSurface::from_sweep(std::string scenario_name,
                                            double temp_k,
                                            std::uint64_t fingerprint,
                                            const core::EnergySweepResult& sweep) {
  ResponseSurface s;
  s.scenario = std::move(scenario_name);
  s.species = std::string(phys::species_name(sweep.species));
  s.temp_k = temp_k;
  s.fingerprint = fingerprint;
  s.vdds = sweep.vdds;
  s.bins = sweep.bins;

  const std::size_t nv = s.vdds.size();
  const std::size_t nb = s.bins.size();
  FINSER_REQUIRE(sweep.per_bin.size() == nb,
                 "from_sweep: per_bin/bins size mismatch");
  FINSER_REQUIRE(sweep.fit.size() == nv, "from_sweep: fit/vdds size mismatch");

  for (const std::size_t m : {core::kModeWithPv, core::kModeNominal}) {
    s.pof_tot[m].reserve(nb * nv);
    s.pof_seu[m].reserve(nb * nv);
    s.pof_mbu[m].reserve(nb * nv);
    s.pof_tot_se[m].reserve(nb * nv);
    for (std::size_t b = 0; b < nb; ++b) {
      FINSER_REQUIRE(sweep.per_bin[b].est.size() == nv,
                     "from_sweep: per-bin estimate/vdds size mismatch");
      for (std::size_t v = 0; v < nv; ++v) {
        const core::PofEstimate& e = sweep.per_bin[b].est[v][m];
        s.pof_tot[m].push_back(e.tot);
        s.pof_seu[m].push_back(e.seu);
        s.pof_mbu[m].push_back(e.mbu);
        s.pof_tot_se[m].push_back(e.tot_se);
      }
    }
    s.fit_tot[m].reserve(nv);
    s.fit_seu[m].reserve(nv);
    s.fit_mbu[m].reserve(nv);
    for (std::size_t v = 0; v < nv; ++v) {
      const core::FitResult& f = sweep.fit[v][m];
      s.fit_tot[m].push_back(f.fit_tot);
      s.fit_seu[m].push_back(f.fit_seu);
      s.fit_mbu[m].push_back(f.fit_mbu);
    }
  }
  s.validate();
  s.rebuild_axes();
  return s;
}

void ResponseSurface::rebuild_axes() {
  vdd_axis_ = util::Axis();
  energy_axis_ = util::Axis();
  if (vdds.size() >= 2) vdd_axis_ = util::Axis(vdds, util::Scale::kLinear);
  if (bins.size() >= 2) {
    std::vector<double> reps;
    reps.reserve(bins.size());
    for (const env::EnergyBin& b : bins) reps.push_back(b.e_rep_mev);
    // Geometric bin centers interpolate naturally in log space.
    energy_axis_ = util::Axis(std::move(reps), util::Scale::kLog);
  }
}

PofSample ResponseSurface::pof(double vdd_v, double energy_mev,
                               bool with_pv) const {
  FINSER_REQUIRE(n_vdd() > 0 && n_bins() > 0, "pof query on empty surface");
  const auto m =
      with_pv ? core::kModeWithPv : core::kModeNominal;
  const util::Axis::Location lv = locate_or_collapse(vdd_axis_, vdd_v);
  const util::Axis::Location le = locate_or_collapse(energy_axis_, energy_mev);
  const std::size_t nv = n_vdd();
  const std::size_t v0 = lv.index;
  const std::size_t v1 = (nv >= 2) ? lv.index + 1 : lv.index;
  const std::size_t b0 = le.index;
  const std::size_t b1 = (n_bins() >= 2) ? le.index + 1 : le.index;

  const auto bilerp = [&](const std::array<std::vector<double>, 2>& chan) {
    const std::vector<double>& c = chan[m];
    const double lo = lerp_exact(c[b0 * nv + v0], c[b0 * nv + v1], lv.frac);
    const double hi = lerp_exact(c[b1 * nv + v0], c[b1 * nv + v1], lv.frac);
    return lerp_exact(lo, hi, le.frac);
  };
  PofSample out;
  out.tot = bilerp(pof_tot);
  out.seu = bilerp(pof_seu);
  out.mbu = bilerp(pof_mbu);
  out.tot_se = bilerp(pof_tot_se);
  return out;
}

FitSample ResponseSurface::fit(double vdd_v, bool with_pv) const {
  FINSER_REQUIRE(n_vdd() > 0, "fit query on empty surface");
  const auto m =
      with_pv ? core::kModeWithPv : core::kModeNominal;
  const util::Axis::Location lv = locate_or_collapse(vdd_axis_, vdd_v);
  const std::size_t v0 = lv.index;
  const std::size_t v1 = (n_vdd() >= 2) ? lv.index + 1 : lv.index;
  FitSample out;
  out.tot = lerp_exact(fit_tot[m][v0], fit_tot[m][v1], lv.frac);
  out.seu = lerp_exact(fit_seu[m][v0], fit_seu[m][v1], lv.frac);
  out.mbu = lerp_exact(fit_mbu[m][v0], fit_mbu[m][v1], lv.frac);
  return out;
}

bool ResponseSurface::is_grid_vdd(double vdd_v) const {
  for (double v : vdds) {
    if (v == vdd_v) return true;
  }
  return false;
}

bool ResponseSurface::is_grid_energy(double energy_mev) const {
  for (const env::EnergyBin& b : bins) {
    if (b.e_rep_mev == energy_mev) return true;
  }
  return false;
}

void ResponseSurface::validate() const {
  const std::size_t nv = vdds.size();
  const std::size_t nb = bins.size();
  FINSER_REQUIRE(nv > 0, "response surface: empty vdd axis");
  FINSER_REQUIRE(nb > 0, "response surface: empty energy axis");
  for (std::size_t i = 1; i < nv; ++i) {
    FINSER_REQUIRE(vdds[i - 1] < vdds[i],
                   "response surface: vdd axis not strictly increasing");
  }
  for (std::size_t i = 1; i < nb; ++i) {
    FINSER_REQUIRE(bins[i - 1].e_rep_mev < bins[i].e_rep_mev,
                   "response surface: energy axis not strictly increasing");
  }
  for (std::size_t m = 0; m < 2; ++m) {
    FINSER_REQUIRE(pof_tot[m].size() == nb * nv &&
                       pof_seu[m].size() == nb * nv &&
                       pof_mbu[m].size() == nb * nv &&
                       pof_tot_se[m].size() == nb * nv,
                   "response surface: POF channel size mismatch");
    FINSER_REQUIRE(fit_tot[m].size() == nv && fit_seu[m].size() == nv &&
                       fit_mbu[m].size() == nv,
                   "response surface: FIT channel size mismatch");
  }
}

std::vector<std::uint8_t> ResponseSurface::encode() const {
  validate();
  util::ByteWriter w;
  w.u32(kCodecVersion);
  write_str(w, scenario);
  write_str(w, species);
  w.f64(temp_k);
  w.u64(fingerprint);
  w.f64_vec(vdds);
  w.u64(bins.size());
  for (const env::EnergyBin& b : bins) {
    w.f64(b.e_rep_mev);
    w.f64(b.e_lo_mev);
    w.f64(b.e_hi_mev);
    w.f64(b.integral_flux_per_cm2_s);
  }
  for (std::size_t m = 0; m < 2; ++m) {
    w.f64_vec(pof_tot[m]);
    w.f64_vec(pof_seu[m]);
    w.f64_vec(pof_mbu[m]);
    w.f64_vec(pof_tot_se[m]);
  }
  for (std::size_t m = 0; m < 2; ++m) {
    w.f64_vec(fit_tot[m]);
    w.f64_vec(fit_seu[m]);
    w.f64_vec(fit_mbu[m]);
  }
  return w.take();
}

ResponseSurface ResponseSurface::decode(const std::vector<std::uint8_t>& blob) {
  util::ByteReader r(blob);
  const std::uint32_t version = r.u32();
  FINSER_REQUIRE(version == kCodecVersion,
                 "response surface: unsupported codec version");
  ResponseSurface s;
  s.scenario = read_str(r);
  s.species = read_str(r);
  s.temp_k = r.f64();
  s.fingerprint = r.u64();
  s.vdds = r.f64_vec();
  const std::uint64_t nb = r.u64();
  FINSER_REQUIRE(nb <= r.remaining() / (4 * sizeof(double)),
                 "response surface: bin count exceeds payload");
  s.bins.reserve(nb);
  for (std::uint64_t i = 0; i < nb; ++i) {
    env::EnergyBin b;
    b.e_rep_mev = r.f64();
    b.e_lo_mev = r.f64();
    b.e_hi_mev = r.f64();
    b.integral_flux_per_cm2_s = r.f64();
    s.bins.push_back(b);
  }
  for (std::size_t m = 0; m < 2; ++m) {
    s.pof_tot[m] = r.f64_vec();
    s.pof_seu[m] = r.f64_vec();
    s.pof_mbu[m] = r.f64_vec();
    s.pof_tot_se[m] = r.f64_vec();
  }
  for (std::size_t m = 0; m < 2; ++m) {
    s.fit_tot[m] = r.f64_vec();
    s.fit_seu[m] = r.f64_vec();
    s.fit_mbu[m] = r.f64_vec();
  }
  FINSER_REQUIRE(r.exhausted(), "response surface: trailing bytes");
  s.validate();
  s.rebuild_axes();
  return s;
}

// GCC at -O3 misanalyzes the inlined vector growth inside ByteWriter as a
// zero-size-destination memmove (stringop-overflow false positive); every
// copy is bounds-checked by the writer itself.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
std::vector<std::uint8_t> encode_cell_model(
    const sram::CellSoftErrorModel& model) {
  util::ByteWriter w;
  w.u64(model.tables.size());
  for (const sram::PofTable& t : model.tables) t.write(w);
  return w.take();
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

sram::CellSoftErrorModel decode_cell_model(
    const std::vector<std::uint8_t>& blob, std::uint64_t fingerprint) {
  util::ByteReader r(blob);
  sram::CellSoftErrorModel model;
  const std::uint64_t count = r.u64();
  model.tables.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    model.tables.push_back(sram::PofTable::read(r));
  }
  FINSER_REQUIRE(r.exhausted(), "cell model artifact: trailing bytes");
  model.config_fingerprint = fingerprint;
  return model;
}

}  // namespace finser::surface
