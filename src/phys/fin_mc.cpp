#include "finser/phys/fin_mc.hpp"

#include <cmath>
#include <numbers>

#include "finser/geom/box_set.hpp"
#include "finser/obs/obs.hpp"
#include "finser/phys/collection.hpp"
#include "finser/phys/material.hpp"
#include "finser/phys/stopping.hpp"
#include "finser/stats/direction.hpp"
#include "finser/stats/summary.hpp"
#include "finser/util/error.hpp"

namespace finser::phys {

namespace {

using geom::Vec3;

/// Build an orthonormal basis (u, v) perpendicular to unit vector w.
void basis_perpendicular(const Vec3& w, Vec3& u, Vec3& v) {
  const Vec3 helper = std::abs(w.x) < 0.9 ? Vec3{1.0, 0.0, 0.0} : Vec3{0.0, 1.0, 0.0};
  u = w.cross(helper).normalized();
  v = w.cross(u);
}

}  // namespace

FinStrikeMc::FinStrikeMc(const geom::Aabb& fin_box)
    : FinStrikeMc(fin_box, Config{}) {}

FinStrikeMc::FinStrikeMc(const geom::Aabb& fin_box, const Config& config)
    : fin_(fin_box), config_(config) {
  FINSER_REQUIRE(fin_.valid(), "FinStrikeMc: invalid fin box");
  FINSER_REQUIRE(config_.samples > 0, "FinStrikeMc: need at least one sample");
  enclosing_radius_nm_ = 0.5 * fin_.extent().norm() * (1.0 + 1e-9);
}

FinStrikeStats FinStrikeMc::run(Species s, double e_mev, stats::Rng& rng) const {
  FINSER_REQUIRE(e_mev > 0.0, "FinStrikeMc::run: non-positive energy");
  obs::ScopedSpan span("phys.fin_mc.run");
  FINSER_OBS_COUNT("phys.fin_mc.samples", config_.samples);
  const Vec3 center = fin_.center();
  const Material& si = silicon();

  stats::RunningStats pairs_stats;
  stats::RunningStats chord_stats;
  std::size_t hits = 0;

  for (std::size_t i = 0; i < config_.samples; ++i) {
    // Isotropic chord sampling: direction uniform on the sphere, entry offset
    // uniform on the perpendicular disc of the enclosing sphere.
    const Vec3 dir = stats::isotropic_sphere(rng);
    Vec3 u, v;
    basis_perpendicular(dir, u, v);
    const double r = enclosing_radius_nm_ * std::sqrt(rng.uniform());
    const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const Vec3 offset = u * (r * std::cos(phi)) + v * (r * std::sin(phi));
    const geom::Ray ray{center + offset - dir * (2.0 * enclosing_radius_nm_), dir};

    const auto iv = fin_.intersect(ray);
    if (!iv || iv->length() <= 0.0) continue;
    ++hits;

    const double chord_nm = iv->length();
    const double mean_loss = csda_energy_loss(s, e_mev, chord_nm, si);
    const double loss = sample_energy_loss(config_.straggling, rng, s, e_mev,
                                           mean_loss, chord_nm, si);
    // Ionizing fraction (Lindhard-partitioned nuclear share included).
    const double ionizing = loss * ionizing_fraction(s, e_mev, si);

    pairs_stats.add(eh_pairs_from_energy(ionizing, si));
    chord_stats.add(chord_nm);
  }

  FinStrikeStats out;
  out.hits = hits;
  out.hit_fraction =
      static_cast<double>(hits) / static_cast<double>(config_.samples);
  out.mean_eh_pairs = pairs_stats.mean();
  out.stderr_eh_pairs = pairs_stats.stderr_of_mean();
  out.mean_chord_nm = chord_stats.mean();
  return out;
}

util::Grid1 FinStrikeMc::build_lut(Species s, double e_lo_mev, double e_hi_mev,
                                   std::size_t points, stats::Rng& rng) const {
  FINSER_REQUIRE(points >= 2, "FinStrikeMc::build_lut: need >= 2 points");
  util::Axis axis = util::make_log_axis(e_lo_mev, e_hi_mev, points);
  std::vector<double> pairs(points);
  for (std::size_t i = 0; i < points; ++i) {
    pairs[i] = run(s, axis[i], rng).mean_eh_pairs;
  }
  return util::Grid1(std::move(axis), std::move(pairs), util::Scale::kLinear,
                     util::OutOfRange::kClamp);
}

}  // namespace finser::phys
