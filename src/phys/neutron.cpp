#include "finser/phys/neutron.hpp"

#include <cmath>
#include <numbers>

#include "finser/util/constants.hpp"
#include "finser/util/error.hpp"
#include "finser/util/interp.hpp"
#include "finser/util/units.hpp"

namespace finser::phys {

namespace {

using geom::Vec3;

/// Mass ratios used by the two-body kinematics (atomic mass units).
constexpr double kMassN = 1.0087;
constexpr double kMassSi = 27.977;
constexpr double kMassAlpha = 4.0026;
constexpr double kMassMg = 24.986;
constexpr double kMassP = 1.0073;
constexpr double kMassAl = 27.982;

/// Smooth log-log fits of the ENDF/B natSi channel cross sections [barn].
util::Grid1 make_elastic() {
  // Broad average over the resonance region; ~2-3 b below 10 MeV, falling
  // through the high-energy regime.
  return util::Grid1(
      util::Axis({0.02, 0.1, 0.5, 1.0, 3.0, 6.0, 14.0, 30.0, 100.0, 1000.0},
                 util::Scale::kLog),
      {4.5, 3.8, 3.2, 3.0, 2.8, 2.2, 1.7, 1.3, 0.9, 0.5}, util::Scale::kLog,
      util::OutOfRange::kClamp);
}

util::Grid1 make_n_alpha() {
  // Threshold ~2.75 MeV; rises to ~0.2-0.3 b by 10-14 MeV; slow decline.
  return util::Grid1(
      util::Axis({2.8, 4.0, 6.0, 8.0, 10.0, 14.0, 30.0, 100.0, 1000.0},
                 util::Scale::kLog),
      {1e-4, 0.02, 0.08, 0.14, 0.19, 0.25, 0.20, 0.15, 0.10}, util::Scale::kLog,
      util::OutOfRange::kZero);
}

util::Grid1 make_n_proton() {
  // Threshold ~4.0 MeV; peaks ~0.3 b near 8-14 MeV.
  return util::Grid1(
      util::Axis({4.1, 5.0, 6.0, 8.0, 10.0, 14.0, 30.0, 100.0, 1000.0},
                 util::Scale::kLog),
      {1e-4, 0.03, 0.10, 0.22, 0.28, 0.30, 0.22, 0.15, 0.10}, util::Scale::kLog,
      util::OutOfRange::kZero);
}

/// Rotate a direction sampled around +z onto the given axis.
Vec3 rotate_to_axis(const Vec3& axis, double cos_theta, double phi) {
  const double sin_theta = std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  const Vec3 local{sin_theta * std::cos(phi), sin_theta * std::sin(phi),
                   cos_theta};
  // Orthonormal frame around `axis`.
  const Vec3 helper =
      std::abs(axis.x) < 0.9 ? Vec3{1.0, 0.0, 0.0} : Vec3{0.0, 1.0, 0.0};
  const Vec3 u = axis.cross(helper).normalized();
  const Vec3 v = axis.cross(u);
  return (u * local.x + v * local.y + axis * local.z).normalized();
}

Vec3 isotropic(stats::Rng& rng) {
  const double z = rng.uniform(-1.0, 1.0);
  const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {r * std::cos(phi), r * std::sin(phi), z};
}

struct Tables {
  util::Grid1 elastic = make_elastic();
  util::Grid1 n_alpha = make_n_alpha();
  util::Grid1 n_proton = make_n_proton();
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

NeutronInteractionModel::NeutronInteractionModel() { (void)tables(); }

double NeutronInteractionModel::elastic_barn(double e_n_mev) const {
  FINSER_REQUIRE(e_n_mev > 0.0, "elastic_barn: non-positive energy");
  return tables().elastic(e_n_mev);
}

double NeutronInteractionModel::n_alpha_barn(double e_n_mev) const {
  FINSER_REQUIRE(e_n_mev > 0.0, "n_alpha_barn: non-positive energy");
  return tables().n_alpha(e_n_mev);
}

double NeutronInteractionModel::n_proton_barn(double e_n_mev) const {
  FINSER_REQUIRE(e_n_mev > 0.0, "n_proton_barn: non-positive energy");
  return tables().n_proton(e_n_mev);
}

double NeutronInteractionModel::total_barn(double e_n_mev) const {
  return elastic_barn(e_n_mev) + n_alpha_barn(e_n_mev) + n_proton_barn(e_n_mev);
}

double NeutronInteractionModel::macroscopic_per_cm(double e_n_mev) const {
  // Atom density of silicon: rho * N_A / A  [1/cm^3]; 1 barn = 1e-24 cm^2.
  const double n_atoms = util::kSiliconDensity * util::kAvogadro / util::kSiliconA;
  return n_atoms * total_barn(e_n_mev) * 1e-24;
}

double NeutronInteractionModel::mean_free_path_um(double e_n_mev) const {
  return util::cm_to_um(1.0 / macroscopic_per_cm(e_n_mev));
}

double NeutronInteractionModel::max_recoil_energy_mev(double e_n_mev) {
  const double r = 4.0 * kMassN * kMassSi / ((kMassN + kMassSi) * (kMassN + kMassSi));
  return r * e_n_mev;
}

NeutronInteraction NeutronInteractionModel::sample(double e_n_mev,
                                                   const geom::Vec3& n_dir,
                                                   stats::Rng& rng) const {
  FINSER_REQUIRE(e_n_mev > 0.0, "NeutronInteractionModel::sample: bad energy");
  FINSER_REQUIRE(std::abs(n_dir.norm() - 1.0) < 1e-9,
                 "NeutronInteractionModel::sample: direction must be unit");

  const double s_el = elastic_barn(e_n_mev);
  const double s_a = n_alpha_barn(e_n_mev);
  const double s_p = n_proton_barn(e_n_mev);
  const double total = s_el + s_a + s_p;

  NeutronInteraction out;
  const double u = rng.uniform() * total;
  const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);

  if (u < s_el) {
    // Elastic: isotropic in CM (s-wave average). With mu = cos(theta_CM)
    // uniform in [-1, 1], E_R = E_max (1 - mu)/2 is uniform in [0, E_max],
    // and the lab recoil angle satisfies cos(phi_lab) = sqrt(E_R / E_max).
    out.channel = NeutronChannel::kElastic;
    const double e_max = max_recoil_energy_mev(e_n_mev);
    const double frac = rng.uniform();
    const double e_r = e_max * frac;
    if (e_r > 1e-6) {  // Ignore sub-eV recoils.
      const double cos_lab = std::sqrt(frac);
      out.secondaries.push_back(NeutronSecondary{
          Species::kSiRecoil, e_r, rotate_to_axis(n_dir, cos_lab, phi)});
    }
    return out;
  }

  // Two-body breakup channels: available CM kinetic energy is
  // E_cm = E_n * M/(m_n + M) + Q, split between the products in inverse
  // proportion to their masses (equal and opposite CM momenta). The CM
  // emission direction is sampled isotropically; the CM boost is small for
  // the heavy compound system and is neglected (documented approximation).
  const bool is_alpha = (u < s_el + s_a);
  out.channel = is_alpha ? NeutronChannel::kNAlpha : NeutronChannel::kNProton;
  const double q = is_alpha ? kQnAlphaMeV : kQnProtonMeV;
  const double m_light = is_alpha ? kMassAlpha : kMassP;
  const double m_heavy = is_alpha ? kMassMg : kMassAl;
  const Species light_species = is_alpha ? Species::kAlpha : Species::kProton;
  const Species heavy_species = is_alpha ? Species::kMgRecoil : Species::kSiRecoil;

  const double e_cm = e_n_mev * kMassSi / (kMassN + kMassSi) + q;
  if (e_cm <= 0.0) {
    // Below threshold (cross-section tail): treat as no visible products.
    out.secondaries.clear();
    return out;
  }
  const double e_light = e_cm * m_heavy / (m_light + m_heavy);
  const double e_heavy = e_cm - e_light;

  const Vec3 dir_light = isotropic(rng);
  out.secondaries.push_back(NeutronSecondary{light_species, e_light, dir_light});
  if (e_heavy > 1e-6) {
    out.secondaries.push_back(NeutronSecondary{heavy_species, e_heavy, -dir_light});
  }
  return out;
}

}  // namespace finser::phys
