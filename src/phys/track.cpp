#include "finser/phys/track.hpp"

#include <algorithm>
#include <cmath>

#include "finser/phys/collection.hpp"
#include "finser/phys/stopping.hpp"
#include "finser/util/error.hpp"

namespace finser::phys {

Transporter::Transporter(const geom::BoxSet& fins)
    : Transporter(fins, Config{}) {}

Transporter::Transporter(const geom::BoxSet& fins, const Config& config)
    : fins_(&fins), config_(config) {
  FINSER_REQUIRE(!fins.empty(), "Transporter: empty fin set");
  FINSER_REQUIRE(config_.cutoff_mev > 0.0, "Transporter: cutoff must be positive");
  if (config_.fin_material == nullptr) config_.fin_material = &silicon();
  if (config_.background_material == nullptr) {
    config_.background_material = &silicon_dioxide();
  }
  grid_ = std::make_unique<geom::UniformGrid>(fins);
}

TrackResult Transporter::transport(const geom::Ray& ray, Species s, double e_mev,
                                   stats::Rng& rng) {
  FINSER_REQUIRE(e_mev > 0.0, "transport: non-positive kinetic energy");
  const double dir_norm = ray.dir.norm();
  FINSER_REQUIRE(std::abs(dir_norm - 1.0) < 1e-9,
                 "transport: ray direction must be unit length");

  TrackResult result;
  grid_->query(ray, scratch_hits_);

  const Material& fin_mat = *config_.fin_material;
  const Material& bg_mat = *config_.background_material;

  double e = e_mev;
  double t_cursor = 0.0;  // Track parameter [nm] processed so far.

  for (const geom::BoxHit& hit : scratch_hits_) {
    if (e <= config_.cutoff_mev) break;
    // Fins are disjoint; clip defensively in case of touching boxes.
    const double t_in = std::max(hit.interval.t_in, t_cursor);
    const double t_out = std::max(hit.interval.t_out, t_in);
    if (t_in < 0.0) continue;

    // 1) Background segment up to the fin entry: degrades energy only.
    const double bg_len = t_in - t_cursor;
    if (bg_len > 0.0) {
      const double mean_bg = csda_energy_loss(s, e, bg_len, bg_mat);
      const double loss_bg = sample_energy_loss(config_.straggling, rng, s, e,
                                                mean_bg, bg_len, bg_mat);
      e -= loss_bg;
      if (e <= config_.cutoff_mev) {
        result.stopped_inside = true;
        result.exit_energy_mev = 0.0;
        return result;
      }
    }

    // 2) Fin segment: deposit collectable ionizing energy.
    const double fin_len = t_out - t_in;
    if (fin_len > 0.0) {
      const double mean_fin = csda_energy_loss(s, e, fin_len, fin_mat);
      const double loss_fin = sample_energy_loss(config_.straggling, rng, s, e,
                                                 mean_fin, fin_len, fin_mat);
      if (loss_fin > 0.0) {
        // Ionizing fraction: electronic loss plus the Lindhard share of the
        // nuclear (recoil-cascade) loss.
        const double ionizing_mev = loss_fin * ionizing_fraction(s, e, fin_mat);
        result.deposits.push_back(FinDeposit{
            hit.id, fin_len, ionizing_mev,
            eh_pairs_from_energy(ionizing_mev, fin_mat)});
      }
      e -= loss_fin;
      if (e <= config_.cutoff_mev) {
        result.stopped_inside = true;
        result.exit_energy_mev = 0.0;
        return result;
      }
    }
    t_cursor = t_out;
  }

  result.exit_energy_mev = std::max(e, 0.0);
  return result;
}

}  // namespace finser::phys
