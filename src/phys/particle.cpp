#include "finser/phys/particle.hpp"

#include <cmath>

#include "finser/util/constants.hpp"
#include "finser/util/error.hpp"
#include "finser/util/units.hpp"

namespace finser::phys {

using util::kAlphaMassMeV;
using util::kProtonMassMeV;
using util::kSpeedOfLightCmPerS;

double mass_mev(Species s) {
  switch (s) {
    case Species::kProton: return kProtonMassMeV;
    case Species::kAlpha: return kAlphaMassMeV;
    case Species::kSiRecoil: return 26053.2;  // 28Si nuclear rest energy.
    case Species::kMgRecoil: return 23258.0;  // 25Mg nuclear rest energy.
    case Species::kNeutron: return 939.565;
  }
  return kProtonMassMeV;
}

double charge_number(Species s) {
  switch (s) {
    case Species::kProton: return 1.0;
    case Species::kAlpha: return 2.0;
    case Species::kSiRecoil: return 14.0;
    case Species::kMgRecoil: return 12.0;
    case Species::kNeutron: return 0.0;
  }
  return 1.0;
}

std::string_view species_name(Species s) {
  switch (s) {
    case Species::kProton: return "proton";
    case Species::kAlpha: return "alpha";
    case Species::kSiRecoil: return "Si-recoil";
    case Species::kMgRecoil: return "Mg-recoil";
    case Species::kNeutron: return "neutron";
  }
  return "unknown";
}

double gamma(Species s, double e_mev) {
  FINSER_REQUIRE(e_mev >= 0.0, "gamma: negative kinetic energy");
  return 1.0 + e_mev / mass_mev(s);
}

double beta(Species s, double e_mev) {
  const double g = gamma(s, e_mev);
  return std::sqrt(1.0 - 1.0 / (g * g));
}

double beta_gamma(Species s, double e_mev) {
  const double g = gamma(s, e_mev);
  return std::sqrt(g * g - 1.0);
}

double speed_cm_per_s(Species s, double e_mev) {
  return beta(s, e_mev) * kSpeedOfLightCmPerS;
}

double max_energy_transfer_mev(Species s, double e_mev) {
  const double g = gamma(s, e_mev);
  const double b2g2 = g * g - 1.0;
  const double r = util::kElectronMassMeV / mass_mev(s);
  return 2.0 * util::kElectronMassMeV * b2g2 / (1.0 + 2.0 * g * r + r * r);
}

double passage_time_fs(Species s, double e_mev, double length_nm) {
  FINSER_REQUIRE(length_nm >= 0.0, "passage_time_fs: negative length");
  FINSER_REQUIRE(e_mev > 0.0, "passage_time_fs: particle at rest");
  const double v = speed_cm_per_s(s, e_mev);
  return util::s_to_fs(util::nm_to_cm(length_nm) / v);
}

}  // namespace finser::phys
