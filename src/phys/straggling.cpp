#include "finser/phys/straggling.hpp"

#include <algorithm>
#include <cmath>

#include "finser/phys/stopping.hpp"
#include "finser/util/constants.hpp"
#include "finser/util/error.hpp"
#include "finser/util/units.hpp"

namespace finser::phys {

namespace {

/// Areal density [g/cm²] of a path of length_nm through material m.
double areal_density(double length_nm, const Material& m) {
  return util::nm_to_cm(length_nm) * m.density_g_cm3;
}

/// Euler–Mascheroni constant; Moyal mean offset is (gamma_E + ln 2)·xi.
constexpr double kMoyalMeanOffset = 0.5772156649015329 + 0.6931471805599453;

}  // namespace

double bohr_sigma_mev(Species s, double e_mev, double length_nm, const Material& m) {
  FINSER_REQUIRE(length_nm >= 0.0, "bohr_sigma_mev: negative path");
  const double zeff = effective_charge(s, e_mev);
  // Ω² = 4π N_A r_e² (m_e c²)² z² (Z/A) · X = 0.1569 z² (Z/A) X [MeV²],
  // X in g/cm² (Bohr 1915; non-relativistic form, adequate below 100 MeV).
  const double var = 0.1569 * zeff * zeff * m.z_over_a * areal_density(length_nm, m);
  return std::sqrt(std::max(var, 0.0));
}

double landau_xi_mev(Species s, double e_mev, double length_nm, const Material& m) {
  FINSER_REQUIRE(length_nm >= 0.0, "landau_xi_mev: negative path");
  const double b = beta(s, e_mev);
  if (b <= 0.0) return 0.0;
  const double zeff = effective_charge(s, e_mev);
  // ξ = (K/2) z² (Z/A) X / β²  [MeV].
  return 0.5 * util::kBetheK * zeff * zeff * m.z_over_a *
         areal_density(length_nm, m) / (b * b);
}

double vavilov_kappa(Species s, double e_mev, double length_nm, const Material& m) {
  const double t_max = max_energy_transfer_mev(s, e_mev);
  if (t_max <= 0.0) return 1e30;
  return landau_xi_mev(s, e_mev, length_nm, m) / t_max;
}

double sample_energy_loss(StragglingModel model, stats::Rng& rng, Species s,
                          double e_mev, double mean_loss_mev, double length_nm,
                          const Material& m) {
  FINSER_REQUIRE(mean_loss_mev >= 0.0, "sample_energy_loss: negative mean loss");
  if (model == StragglingModel::kAuto) {
    // Vavilov regime selection: κ ≳ 1 → near-Gaussian; κ ≪ 1 → Landau tail.
    model = vavilov_kappa(s, e_mev, length_nm, m) >= 0.7
                ? StragglingModel::kGaussian
                : StragglingModel::kMoyal;
  }
  double loss = mean_loss_mev;
  switch (model) {
    case StragglingModel::kNone:
      break;
    case StragglingModel::kGaussian: {
      const double sigma = bohr_sigma_mev(s, e_mev, length_nm, m);
      loss = rng.normal(mean_loss_mev, sigma);
      break;
    }
    case StragglingModel::kMoyal: {
      const double xi = landau_xi_mev(s, e_mev, length_nm, m);
      if (xi > 0.0) {
        // Moyal variate: X = -ln(Z²) with Z ~ N(0,1) has the Moyal density;
        // its mean is gamma_E + ln 2. Shift so the sample mean equals the
        // CSDA mean loss.
        double z;
        do {
          z = rng.normal();
        } while (z == 0.0);
        const double moyal = -std::log(z * z);
        loss = mean_loss_mev + xi * (moyal - kMoyalMeanOffset);
      }
      break;
    }
    case StragglingModel::kAuto:
      break;  // Unreachable: resolved to a concrete model above.
  }
  return std::clamp(loss, 0.0, e_mev);
}

}  // namespace finser::phys
