#include "finser/phys/collection.hpp"

#include "finser/util/constants.hpp"
#include "finser/util/error.hpp"
#include "finser/util/units.hpp"

namespace finser::phys {

double transit_time_fs(const FinTechnology& tech, double vds_v) {
  FINSER_REQUIRE(vds_v > 0.0, "transit_time_fs: Vds must be positive");
  FINSER_REQUIRE(tech.l_fin_nm > 0.0, "transit_time_fs: L_fin must be positive");
  FINSER_REQUIRE(tech.electron_mobility_cm2_vs > 0.0,
                 "transit_time_fs: mobility must be positive");
  const double l_cm = util::nm_to_cm(tech.l_fin_nm);
  const double tau_s = l_cm * l_cm / (tech.electron_mobility_cm2_vs * vds_v);
  return util::s_to_fs(tau_s);
}

double eh_pairs_from_energy(double deposited_mev, const Material& m) {
  FINSER_REQUIRE(deposited_mev >= 0.0, "eh_pairs_from_energy: negative deposit");
  if (!m.collects_charge()) return 0.0;
  return util::mev_to_ev(deposited_mev) / m.eh_pair_energy_ev;
}

double charge_fc_from_pairs(double eh_pairs) {
  FINSER_REQUIRE(eh_pairs >= 0.0, "charge_fc_from_pairs: negative pair count");
  return util::c_to_fc(eh_pairs * util::kElementaryChargeC);
}

double CurrentPulse::charge_fc() const {
  return util::c_to_fc(amplitude_a * util::fs_to_s(width_fs));
}

CurrentPulse drift_pulse(double eh_pairs, const FinTechnology& tech, double vds_v) {
  const double tau_fs = transit_time_fs(tech, vds_v);
  const double q_c = eh_pairs * util::kElementaryChargeC;
  return CurrentPulse{q_c / util::fs_to_s(tau_fs), tau_fs};
}

}  // namespace finser::phys
