#include "finser/phys/material.hpp"

#include "finser/util/constants.hpp"

namespace finser::phys {

const Material& silicon() {
  static const Material m{
      /*name=*/"Si",
      /*z_over_a=*/util::kSiliconZ / util::kSiliconA,
      /*density_g_cm3=*/util::kSiliconDensity,
      /*mean_excitation_ev=*/util::kSiliconMeanExcitationEV,
      /*eh_pair_energy_ev=*/util::kSiliconEhPairEnergyEV,
      /*z_nuclear=*/util::kSiliconZ,
      /*a_nuclear=*/util::kSiliconA,
  };
  return m;
}

const Material& silicon_dioxide() {
  static const Material m{
      /*name=*/"SiO2",
      /*z_over_a=*/util::kSio2ZOverA,
      /*density_g_cm3=*/util::kSio2Density,
      /*mean_excitation_ev=*/util::kSio2MeanExcitationEV,
      /*eh_pair_energy_ev=*/0.0,  // insulator: deposited charge is not collected
      /*z_nuclear=*/10.0,         // effective <Z> of SiO2
      /*a_nuclear=*/20.03,        // effective <A> of SiO2
  };
  return m;
}

}  // namespace finser::phys
