#include "finser/phys/stopping.hpp"

#include <algorithm>
#include <cmath>

#include "finser/util/constants.hpp"
#include "finser/util/error.hpp"
#include "finser/util/units.hpp"

namespace finser::phys {

namespace {

using util::kAvogadro;
using util::kBetheK;
using util::kElectronMassMeV;
using util::kSiliconA;
using util::kSiliconZ;

// Calibration constants of the low-energy proton branch (see header).
// S_low = kVbLow * sqrt(E_keV); S_high = (kVbB / E_keV) * ln(1 + kVbC/E_keV
// + kVbD * E_keV); both in MeV·cm²/g for silicon, scaled by Z/A for other
// targets. Combined harmonically (Varelas–Biersack form).
constexpr double kVbLow = 90.0;
constexpr double kVbB = 78434.0;
constexpr double kVbC = 220.0;
constexpr double kVbD = 0.014;

// Branch switch window [MeV]: VB below, Bethe above, log-blend between.
constexpr double kBlendLoMeV = 0.5;
constexpr double kBlendHiMeV = 1.0;

// Z/A of silicon, reference for the VB branch amplitude scaling.
const double kSiZOverA = kSiliconZ / kSiliconA;

/// Bethe–Bloch mass stopping power for a singly charged proton [MeV·cm²/g].
/// Valid above ~0.5 MeV where the logarithm is comfortably positive for Si.
double bethe_proton(double e_mev, const Material& m) {
  const double b = beta(Species::kProton, e_mev);
  const double g = gamma(Species::kProton, e_mev);
  const double b2 = b * b;
  const double me_over_m = kElectronMassMeV / mass_mev(Species::kProton);
  const double two_me_b2g2 = 2.0 * kElectronMassMeV * b2 * g * g;
  const double t_max =
      two_me_b2g2 / (1.0 + 2.0 * g * me_over_m + me_over_m * me_over_m);
  const double i_mev = util::ev_to_mev(m.mean_excitation_ev);
  const double arg = two_me_b2g2 * t_max / (i_mev * i_mev);
  const double bracket = 0.5 * std::log(arg) - b2;
  return kBetheK * m.z_over_a / b2 * std::max(bracket, 0.0);
}

/// Varelas–Biersack low-energy proton branch [MeV·cm²/g], Si-calibrated and
/// amplitude-scaled by the target's electron density (Z/A ratio).
double vb_proton(double e_mev, const Material& m) {
  const double e_kev = util::mev_to_kev(e_mev);
  if (e_kev <= 0.0) return 0.0;
  const double scale = m.z_over_a / kSiZOverA;
  const double s_low = kVbLow * std::sqrt(e_kev) * scale;
  const double s_high =
      (kVbB / e_kev) * std::log(1.0 + kVbC / e_kev + kVbD * e_kev) * scale;
  return 1.0 / (1.0 / s_low + 1.0 / s_high);
}

double proton_electronic(double e_mev, const Material& m) {
  if (e_mev <= 0.0) return 0.0;
  if (e_mev >= kBlendHiMeV) return bethe_proton(e_mev, m);
  if (e_mev <= kBlendLoMeV) return vb_proton(e_mev, m);
  // Log-energy linear blend keeps the joint C0-smooth and monotone-ish.
  const double w = (std::log(e_mev) - std::log(kBlendLoMeV)) /
                   (std::log(kBlendHiMeV) - std::log(kBlendLoMeV));
  return (1.0 - w) * vb_proton(e_mev, m) + w * bethe_proton(e_mev, m);
}

}  // namespace

double effective_charge(Species s, double e_mev) {
  const double z = charge_number(s);
  if (z == 0.0) return 0.0;  // Neutral particles never acquire one.
  const double b = beta(s, e_mev);
  // Barkas-type neutralization z_eff = z * (1 - exp(-C·β·z^(-2/3))). The
  // textbook C = 125 underestimates helium stopping by ~25 % against ASTAR
  // silicon; C = 200 matches ASTAR within a few percent across 0.1-10 MeV
  // (1.33e3 vs 1.37e3 MeV·cm²/g at 1 MeV; 627 vs 590 at 5 MeV).
  return z * (1.0 - std::exp(-200.0 * b * std::pow(z, -2.0 / 3.0)));
}

double electronic_stopping(Species s, double e_mev, const Material& m) {
  FINSER_REQUIRE(e_mev >= 0.0, "electronic_stopping: negative energy");
  if (e_mev == 0.0) return 0.0;
  if (s == Species::kProton) return proton_electronic(e_mev, m);
  // Heavy charged particles: velocity scaling — evaluate the proton curve at
  // the proton energy of equal velocity and multiply by the squared
  // effective (Barkas-neutralized) charge. Exact for alphas to ASTAR within
  // a few percent; for keV-MeV Si/Mg recoils it lands in the
  // velocity-proportional LSS regime with the right shape and magnitude to
  // a few tens of percent (adequate: recoil ranges are << fin pitch, so
  // deposits are locally absorbed either way).
  const double e_p = e_mev * mass_mev(Species::kProton) / mass_mev(s);
  const double zeff = effective_charge(s, e_mev);
  return zeff * zeff * proton_electronic(e_p, m);
}

double lindhard_partition(Species s, double e_mev, const Material& m) {
  FINSER_REQUIRE(e_mev >= 0.0, "lindhard_partition: negative energy");
  if (e_mev == 0.0) return 0.0;
  // Lindhard-Robinson partition: the damage (non-ionizing) share of a
  // recoil's energy is E/(1 + k·g(ε)), so the ionizing efficiency of the
  // nuclear energy-loss channel is q = k·g(ε)/(1 + k·g(ε)), with
  // g(ε) = 3ε^0.15 + 0.7ε^0.6 + ε and k = 0.133 Z^(2/3)/A^(1/2) of the
  // recoiling medium, at the projectile's ZBL reduced energy. Fast recoils
  // ionize almost fully (q → 1); slow ones mostly make phonons (q → 0).
  // 100 keV Si in Si: q ≈ 0.49, matching the classic ~50 % partition.
  const double z1 = charge_number(s);
  if (z1 == 0.0) return 0.0;
  const double m1 = mass_mev(s) / util::kProtonMassMeV;
  const double z2 = m.z_nuclear;
  const double m2 = m.a_nuclear;
  const double e_kev = util::mev_to_kev(e_mev);
  const double zpow = std::pow(z1, 0.23) + std::pow(z2, 0.23);
  const double eps = 32.53 * m2 * e_kev / (z1 * z2 * (m1 + m2) * zpow);
  const double g = 3.0 * std::pow(eps, 0.15) + 0.7 * std::pow(eps, 0.6) + eps;
  const double k = 0.133 * std::pow(z2, 2.0 / 3.0) / std::sqrt(m2);
  return k * g / (1.0 + k * g);
}

double nuclear_stopping(Species s, double e_mev, const Material& m) {
  FINSER_REQUIRE(e_mev >= 0.0, "nuclear_stopping: negative energy");
  if (e_mev == 0.0) return 0.0;
  const double z1 = charge_number(s);
  if (z1 == 0.0) return 0.0;  // Neutral particles: no Coulomb stopping.
  const double m1 = mass_mev(s) / util::kProtonMassMeV;  // ~ amu
  const double z2 = m.z_nuclear;
  const double m2 = m.a_nuclear;
  const double e_kev = util::mev_to_kev(e_mev);
  const double zpow = std::pow(z1, 0.23) + std::pow(z2, 0.23);
  const double eps = 32.53 * m2 * e_kev / (z1 * z2 * (m1 + m2) * zpow);
  double sn_reduced;
  if (eps <= 0.0) return 0.0;
  if (eps <= 30.0) {
    sn_reduced = std::log1p(1.1383 * eps) /
                 (2.0 * (eps + 0.01321 * std::pow(eps, 0.21226) +
                         0.19593 * std::sqrt(eps)));
  } else {
    sn_reduced = std::log(eps) / (2.0 * eps);
  }
  // eV per (1e15 atoms/cm^2):
  const double sn_ev = 8.462 * z1 * z2 * m1 / ((m1 + m2) * zpow) * sn_reduced;
  // Convert to MeV·cm²/g.
  return sn_ev * kAvogadro / (m.a_nuclear * 1e15) * 1e-6;
}

double total_stopping(Species s, double e_mev, const Material& m) {
  return electronic_stopping(s, e_mev, m) + nuclear_stopping(s, e_mev, m);
}

double ionizing_fraction(Species s, double e_mev, const Material& m) {
  const double s_el = electronic_stopping(s, e_mev, m);
  const double s_nuc = nuclear_stopping(s, e_mev, m);
  const double s_tot = s_el + s_nuc;
  if (s_tot <= 0.0) return 1.0;
  return (s_el + lindhard_partition(s, e_mev, m) * s_nuc) / s_tot;
}

double linear_electronic_stopping(Species s, double e_mev, const Material& m) {
  return electronic_stopping(s, e_mev, m) * m.density_g_cm3;
}

double csda_energy_loss(Species s, double e_mev, double length_nm,
                        const Material& m) {
  FINSER_REQUIRE(length_nm >= 0.0, "csda_energy_loss: negative path");
  double e = e_mev;
  double remaining_cm = util::nm_to_cm(length_nm);
  constexpr double kMaxFractionPerStep = 0.05;
  constexpr double kMinEnergyMeV = 1e-6;  // 1 eV: particle considered stopped
  while (remaining_cm > 0.0 && e > kMinEnergyMeV) {
    const double s_lin = linear_electronic_stopping(s, e, m) +
                         nuclear_stopping(s, e, m) * m.density_g_cm3;
    if (s_lin <= 0.0) break;
    // Step small enough to lose at most 5% of the running energy.
    double step = std::min(remaining_cm, kMaxFractionPerStep * e / s_lin);
    if (step <= 0.0) break;
    // Midpoint refinement of the loss over the step.
    const double e_mid = std::max(e - 0.5 * step * s_lin, kMinEnergyMeV);
    const double s_mid = linear_electronic_stopping(s, e_mid, m) +
                         nuclear_stopping(s, e_mid, m) * m.density_g_cm3;
    const double de = std::min(e, step * std::max(s_mid, 0.0));
    e -= de;
    remaining_cm -= step;
  }
  return e_mev - std::max(e, 0.0);
}

double csda_range_um(Species s, double e_mev, const Material& m, double e_cut_mev) {
  FINSER_REQUIRE(e_cut_mev > 0.0, "csda_range_um: cutoff must be positive");
  if (e_mev <= e_cut_mev) return 0.0;
  // Integrate dx = dE / S(E) on a log-energy grid (trapezoid in log E).
  constexpr int kStepsPerDecade = 200;
  const double l_lo = std::log(e_cut_mev);
  const double l_hi = std::log(e_mev);
  const int n = std::max(8, static_cast<int>((l_hi - l_lo) / std::log(10.0) *
                                             kStepsPerDecade));
  double range_cm = 0.0;
  double prev_e = e_cut_mev;
  double prev_f = 1.0 / (total_stopping(s, prev_e, m) * m.density_g_cm3);
  for (int i = 1; i <= n; ++i) {
    const double e = std::exp(l_lo + (l_hi - l_lo) * i / n);
    const double f = 1.0 / (total_stopping(s, e, m) * m.density_g_cm3);
    range_cm += 0.5 * (prev_f + f) * (e - prev_e);
    prev_e = e;
    prev_f = f;
  }
  return util::cm_to_um(range_cm);
}

}  // namespace finser::phys
