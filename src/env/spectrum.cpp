#include "finser/env/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "finser/util/error.hpp"
#include "finser/util/units.hpp"

namespace finser::env {

Spectrum::Spectrum(phys::Species species, std::string name,
                   std::vector<double> energies_mev,
                   std::vector<double> flux_per_cm2_s_mev)
    : species_(species), name_(std::move(name)), energies_(std::move(energies_mev)),
      flux_(std::move(flux_per_cm2_s_mev)) {
  FINSER_REQUIRE(energies_.size() >= 2, "Spectrum: need at least two points");
  FINSER_REQUIRE(energies_.size() == flux_.size(), "Spectrum: size mismatch");
  for (double f : flux_) {
    FINSER_REQUIRE(f > 0.0, "Spectrum: flux values must be positive");
  }
  grid_ = util::Grid1(util::Axis(energies_, util::Scale::kLog), flux_,
                      util::Scale::kLog, util::OutOfRange::kZero);
  rebuild_cdf();
}

void Spectrum::rebuild_cdf() {
  cdf_.assign(energies_.size(), 0.0);
  for (std::size_t i = 1; i < energies_.size(); ++i) {
    cdf_[i] = cdf_[i - 1] + grid_.integrate(energies_[i - 1], energies_[i]);
  }
}

double Spectrum::e_min_mev() const { return energies_.front(); }
double Spectrum::e_max_mev() const { return energies_.back(); }

double Spectrum::differential(double e_mev) const {
  if (e_mev < e_min_mev() || e_mev > e_max_mev()) return 0.0;
  return grid_(e_mev);
}

double Spectrum::integral_flux(double e_lo_mev, double e_hi_mev) const {
  FINSER_REQUIRE(e_hi_mev >= e_lo_mev, "Spectrum::integral_flux: inverted range");
  return grid_.integrate(std::max(e_lo_mev, e_min_mev()),
                         std::min(e_hi_mev, e_max_mev()));
}

std::vector<EnergyBin> Spectrum::discretize(double e_lo_mev, double e_hi_mev,
                                            std::size_t bins) const {
  FINSER_REQUIRE(bins > 0, "Spectrum::discretize: need at least one bin");
  FINSER_REQUIRE(e_lo_mev > 0.0 && e_hi_mev > e_lo_mev,
                 "Spectrum::discretize: invalid energy range");
  std::vector<EnergyBin> out;
  out.reserve(bins);
  const double llo = std::log(e_lo_mev);
  const double lhi = std::log(e_hi_mev);
  for (std::size_t i = 0; i < bins; ++i) {
    EnergyBin b;
    b.e_lo_mev = std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                    static_cast<double>(bins));
    b.e_hi_mev = std::exp(llo + (lhi - llo) * static_cast<double>(i + 1) /
                                    static_cast<double>(bins));
    b.e_rep_mev = std::sqrt(b.e_lo_mev * b.e_hi_mev);
    b.integral_flux_per_cm2_s = integral_flux(b.e_lo_mev, b.e_hi_mev);
    out.push_back(b);
  }
  return out;
}

double Spectrum::sample_energy(stats::Rng& rng) const {
  const double total = cdf_.back();
  FINSER_REQUIRE(total > 0.0, "Spectrum::sample_energy: zero total flux");
  const double target = rng.uniform() * total;
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), target);
  std::size_t hi = static_cast<std::size_t>(it - cdf_.begin());
  if (hi == 0) hi = 1;
  if (hi >= cdf_.size()) hi = cdf_.size() - 1;
  const std::size_t lo = hi - 1;
  const double seg = cdf_[hi] - cdf_[lo];
  const double f = seg > 0.0 ? (target - cdf_[lo]) / seg : 0.5;
  // Log-linear interpolation inside the segment (spectra are log-tabulated).
  return energies_[lo] * std::pow(energies_[hi] / energies_[lo], f);
}

void Spectrum::normalize_total_flux(double flux_per_cm2_s) {
  FINSER_REQUIRE(flux_per_cm2_s > 0.0,
                 "Spectrum::normalize_total_flux: non-positive target");
  const double current = total_flux();
  FINSER_REQUIRE(current > 0.0, "Spectrum::normalize_total_flux: empty spectrum");
  const double k = flux_per_cm2_s / current;
  for (double& f : flux_) f *= k;
  grid_ = util::Grid1(util::Axis(energies_, util::Scale::kLog), flux_,
                      util::Scale::kLog, util::OutOfRange::kZero);
  rebuild_cdf();
}

Spectrum sea_level_protons() {
  // Shape after the CRY sea-level proton spectrum (paper Fig. 2a / ref [23]):
  // roughly flat differential intensity from 1 to a few hundred MeV, then a
  // power-law collapse (~E^-2.7 asymptotically). Tabulated in
  // 1/(m²·s·sr·MeV) and converted to an omnidirectional 1/(cm²·s·MeV) flux
  // with the downward-hemisphere factor 2π sr. The low-energy extension to
  // 0.1 MeV covers the direct-ionization band (paper refs [20-22]).
  const std::vector<double> e_mev = {0.1, 0.3,  1.0,  3.0,  10.0, 30.0,
                                     100.0, 300.0, 1.0e3, 3.0e3, 1.0e4,
                                     1.0e5, 1.0e6, 1.0e7};
  const std::vector<double> j_m2_sr = {2.0e-3, 5.0e-3, 1.0e-2, 1.1e-2, 9.0e-3,
                                       7.0e-3, 5.0e-3, 2.5e-3, 8.0e-4, 1.5e-4,
                                       1.0e-5, 3.0e-8, 3.0e-11, 3.0e-14};
  std::vector<double> flux(j_m2_sr.size());
  const double to_cm2 = 2.0 * 3.14159265358979323846 * 1e-4;  // 2π sr, m²→cm².
  for (std::size_t i = 0; i < flux.size(); ++i) flux[i] = j_m2_sr[i] * to_cm2;
  return Spectrum(phys::Species::kProton, "sea-level protons", e_mev, flux);
}

Spectrum package_alphas(double emission_per_cm2_h) {
  FINSER_REQUIRE(emission_per_cm2_h > 0.0,
                 "package_alphas: emission rate must be positive");
  // Shape after Sai-Halasz et al. (paper Fig. 2b / ref [24]): the 238U/232Th
  // decay chains emit 4.2-8.8 MeV alphas; emission through a range of
  // package-material depths smears this into a spectrum rising toward
  // ~8 MeV and dropping beyond. Normalized below to the paper's assumed
  // total emission rate (default 0.001 α/(cm²·h), ref [25]).
  const std::vector<double> e_mev = {0.5, 1.0, 2.0, 3.0, 4.0, 5.0,
                                     6.0, 7.0, 8.0, 9.0, 10.0};
  const std::vector<double> shape = {2.0, 2.5, 3.5, 4.5, 6.0, 7.5,
                                     9.0, 11.0, 13.0, 14.0, 8.0};
  Spectrum s(phys::Species::kAlpha, "package alphas", e_mev, shape);
  s.normalize_total_flux(emission_per_cm2_h / 3600.0);
  return s;
}

Spectrum sea_level_neutrons() {
  // Gordon et al. (2004) sea-level fit, power-law-with-evaporation-bump
  // shape, anchored so the integral flux above 10 MeV is the canonical
  // ~13 n/(cm²·h) = 3.6e-3 /(cm²·s) (JEDEC JESD89A reference conditions).
  const std::vector<double> e_mev = {0.1,  0.5,  1.0,  2.0,   5.0,
                                     10.0, 30.0, 100.0, 300.0, 1000.0};
  std::vector<double> j = {1.2e-3, 6.0e-4, 4.5e-4, 3.0e-4, 8.0e-5,
                           2.8e-5, 7.0e-6, 1.8e-6, 5.0e-7, 1.1e-7};
  Spectrum s(phys::Species::kNeutron, "sea-level neutrons", e_mev, j);
  // Anchor the absolute scale on the canonical integral flux above 10 MeV.
  const double target_above_10mev = 13.0 / 3600.0;  // [1/(cm² s)]
  const double current = s.integral_flux(10.0, 1000.0);
  s.normalize_total_flux(s.total_flux() * target_above_10mev / current);
  return s;
}

}  // namespace finser::env
