#include "finser/pipeline/artifact_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "finser/obs/obs.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/checksum.hpp"
#include "finser/util/fault.hpp"
#include "finser/util/io.hpp"

namespace finser::pipeline {

namespace {

// Format v1. Layout: magic | u64 kind_len | kind bytes | u64 fingerprint |
// u64 payload_len | payload bytes | u32 crc32(everything after the magic).
// The key echo inside the CRC'd region means a blob renamed onto another
// key's path is rejected as mis-keyed, not served as that key's content.
constexpr char kMagic[8] = {'F', 'N', 'S', 'R', 'A', 'R', 'T', '1'};

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

ArtifactStore::ArtifactStore(std::string root, bool sweep_on_open)
    : root_(std::move(root)) {
  if (sweep_on_open) sweep_orphans(root_);
}

std::size_t ArtifactStore::sweep_orphans(const std::string& dir) {
  std::size_t swept = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;  // Missing dir: nothing to sweep (normal cold start).
  for (const auto& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() != ".tmp") continue;
    if (std::filesystem::remove(p, entry_ec) && !entry_ec) ++swept;
  }
  if (swept > 0) {
    FINSER_OBS_COUNT("pipeline.artifact.orphans_swept",
                     static_cast<std::uint64_t>(swept));
  }
  return swept;
}

std::string ArtifactStore::path_for(const ArtifactKey& key) const {
  return root_ + "/" + key.kind + "-" + hex16(key.fingerprint) + ".art";
}

bool ArtifactStore::put(const ArtifactKey& key,
                        const std::vector<std::uint8_t>& payload,
                        std::string* error) const {
  util::ByteWriter body;
  body.u64(key.kind.size());
  body.bytes(key.kind.data(), key.kind.size());
  body.u64(key.fingerprint);
  body.u64(payload.size());
  body.bytes(payload.data(), payload.size());

  util::ByteWriter file;
  file.bytes(kMagic, sizeof(kMagic));
  file.bytes(body.data().data(), body.size());
  file.u32(util::crc32(body.data().data(), body.size()));

  // Fault-injection hook (same contract as the POF-LUT cache): corrupt one
  // byte so tests can prove a flipped blob is rejected by CRC and
  // recomputed, never loaded.
  std::vector<std::uint8_t> bytes = file.take();
  if (util::fault_fire(util::FaultSite::kCacheFlip)) {
    const std::size_t off = static_cast<std::size_t>(util::fault_arg(
                                util::FaultSite::kCacheFlip)) %
                            bytes.size();
    bytes[off] ^= 0x01;
  }

  if (!util::atomic_write_file(path_for(key), bytes.data(), bytes.size(),
                               error)) {
    return false;
  }
  FINSER_OBS_COUNT("pipeline.artifact.writes", 1);
  return true;
}

bool ArtifactStore::try_get(const ArtifactKey& key,
                            std::vector<std::uint8_t>& out,
                            std::string* reason) const {
  const std::string path = path_for(key);
  const auto miss = [&](const std::string& why, bool log) {
    if (reason != nullptr) *reason = why;
    if (log) {
      std::fprintf(stderr,
                   "[finser:pipeline] artifact %s not used: %s; recomputing\n",
                   path.c_str(), why.c_str());
    }
    if (log) {
      FINSER_OBS_COUNT("pipeline.artifact.rejects", 1);
    } else {
      FINSER_OBS_COUNT("pipeline.artifact.misses", 1);
    }
    return false;
  };

  // A missing blob is the normal cold-run case — no log, no warning.
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return miss("no artifact", false);

  std::vector<std::uint8_t> raw;
  std::string io_error;
  if (!util::read_file(path, raw, &io_error)) return miss(io_error, true);

  if (raw.size() < sizeof(kMagic) + sizeof(std::uint32_t)) {
    return miss("too short to be an artifact (" + std::to_string(raw.size()) +
                    " bytes)",
                true);
  }
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return miss("bad magic (not a format-v1 artifact)", true);
  }

  // Integrity first, parsing second: the CRC over the whole body rejects
  // truncation and bit flips before any length field is trusted.
  const std::size_t body_size =
      raw.size() - sizeof(kMagic) - sizeof(std::uint32_t);
  const std::uint8_t* body = raw.data() + sizeof(kMagic);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, body + body_size, sizeof(stored_crc));
  if (stored_crc != util::crc32(body, body_size)) {
    return miss("CRC mismatch (torn or corrupted artifact)", true);
  }

  try {
    util::ByteReader r(body, body_size);
    const std::uint64_t kind_len = r.u64();
    if (kind_len != key.kind.size()) return miss("artifact kind mismatch", true);
    std::string kind(kind_len, '\0');
    r.bytes(kind.data(), kind_len);
    if (kind != key.kind) return miss("artifact kind mismatch", true);
    if (r.u64() != key.fingerprint) {
      return miss("fingerprint mismatch (stale artifact)", true);
    }
    const std::uint64_t payload_len = r.u64();
    if (payload_len != r.remaining()) {
      return miss("payload length mismatch", true);
    }
    out.resize(payload_len);
    r.bytes(out.data(), payload_len);
  } catch (const std::exception& e) {
    // A corrupt length field that slipped past the CRC must degrade to
    // recompute, never crash the run.
    return miss(e.what(), true);
  }
  FINSER_OBS_COUNT("pipeline.artifact.hits", 1);
  return true;
}

std::vector<ArtifactStore::Entry> ArtifactStore::list() const {
  std::vector<Entry> entries;
  std::error_code ec;
  std::filesystem::directory_iterator it(root_, ec);
  if (ec) return entries;  // Missing root: an empty store, not an error.
  for (const auto& de : it) {
    std::error_code fec;
    if (!de.is_regular_file(fec) || fec) continue;
    const std::filesystem::path& p = de.path();
    if (p.extension() != ".art") continue;
    Entry e;
    e.bytes = de.file_size(fec);
    if (fec) e.bytes = 0;

    // Filename shape: `<kind>-<16 hex digits>.art` (path_for). Kind slugs
    // may themselves contain '-', so split at the *last* dash.
    const std::string stem = p.stem().string();
    const std::size_t dash = stem.rfind('-');
    bool parsed = dash != std::string::npos && stem.size() == dash + 17;
    std::uint64_t fp = 0;
    for (std::size_t i = dash + 1; parsed && i < stem.size(); ++i) {
      const char c = stem[i];
      if (c >= '0' && c <= '9') {
        fp = (fp << 4) | static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        fp = (fp << 4) | static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        parsed = false;
      }
    }
    if (!parsed || dash == 0) {
      e.key.kind = p.filename().string();
      e.status = "unrecognized artifact filename";
      entries.push_back(std::move(e));
      continue;
    }
    e.key.kind = stem.substr(0, dash);
    e.key.fingerprint = fp;
    std::vector<std::uint8_t> blob;
    std::string reason;
    e.ok = try_get(e.key, blob, &reason);
    e.status = e.ok ? "ok" : reason;
    entries.push_back(std::move(e));
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.key.kind != b.key.kind) return a.key.kind < b.key.kind;
    return a.key.fingerprint < b.key.fingerprint;
  });
  return entries;
}

}  // namespace finser::pipeline
