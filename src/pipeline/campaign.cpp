#include "finser/pipeline/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "finser/exec/exec.hpp"
#include "finser/exec/thread_pool.hpp"
#include "finser/obs/obs.hpp"
#include "finser/pipeline/surface_provider.hpp"
#include "finser/spice/batch.hpp"
#include "finser/stats/rng.hpp"
#include "finser/surface/response_surface.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/config.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fingerprint.hpp"
#include "finser/util/io.hpp"

namespace finser::pipeline {

namespace {

// --- schema vocabulary ------------------------------------------------------

const std::vector<std::string>& top_level_keys() {
  static const std::vector<std::string> keys = {
      "campaign", "seed",     "threads",  "lanes", "artifact_dir",
      "output_dir", "defaults", "scenarios"};
  return keys;
}

const std::vector<std::string>& scenario_keys() {
  static const std::vector<std::string> keys = {
      "name",      "rows",       "cols",      "pattern",   "pattern_seed",
      "vdds",      "sigma_vt",   "cnode_f",   "pv_samples", "strikes",
      "histories", "seed",       "species",   "cell_w_nm", "cell_h_nm",
      "fin_w_nm",  "fin_h_nm",   "temp_k",    "sampling",  "cluster"};
  return keys;
}

const std::vector<std::string>& cluster_keys() {
  static const std::vector<std::string> keys = {
      "mode", "share_fraction", "pv_samples", "quantum_fc"};
  return keys;
}

const std::vector<std::string>& sampling_keys() {
  static const std::vector<std::string> keys = {
      "position",      "focus_fraction", "focus_margin_nm",
      "direction_bias", "grazing_bias",   "energy_strata",
      "qmc",            "ci_target",      "ci_min_chunks",
      "ci_growth"};
  return keys;
}

[[noreturn]] void bad(const std::string& message) {
  throw util::InvalidArgument("campaign: " + message);
}

/// Reject keys outside \p allowed, suggesting the nearest known key — same
/// contract as util::KeyValueConfig::suggestion_for, so a typo in a campaign
/// file reads exactly like a typo in an INI file.
void check_keys(const util::JsonValue& obj, const std::string& where,
                const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : obj.items()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) {
      continue;
    }
    std::string message = "unknown key `" + key + "` at " + where;
    const std::string suggestion = util::nearest_key(key, allowed);
    if (!suggestion.empty()) {
      message += " (did you mean `" + suggestion + "`?)";
    }
    bad(message);
  }
}

/// Scenario-key lookup with the defaults block folded under the scenario.
const util::JsonValue* find_key(const util::JsonValue& scenario,
                                const util::JsonValue* defaults,
                                const std::string& key) {
  if (scenario.contains(key)) return &scenario.at(key);
  if (defaults != nullptr && defaults->contains(key)) {
    return &defaults->at(key);
  }
  return nullptr;
}

double get_num(const util::JsonValue* v, double fallback,
               const std::string& where, const char* key) {
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    bad("value for `" + std::string(key) + "` at " + where +
        " must be a number");
  }
  return v->as_double();
}

std::uint64_t get_uint(const util::JsonValue* v, std::uint64_t fallback,
                       const std::string& where, const char* key) {
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    bad("value for `" + std::string(key) + "` at " + where +
        " must be a non-negative integer");
  }
  try {
    return v->as_uint();
  } catch (const util::Error&) {
    bad("value for `" + std::string(key) + "` at " + where +
        " must be a non-negative integer");
  }
}

std::size_t get_size(const util::JsonValue* v, std::size_t fallback,
                     const std::string& where, const char* key) {
  const std::uint64_t raw = get_uint(v, fallback, where, key);
  if (raw == 0) {
    bad("value for `" + std::string(key) + "` at " + where +
        " must be positive");
  }
  return static_cast<std::size_t>(raw);
}

std::string get_str(const util::JsonValue* v, std::string fallback,
                    const std::string& where, const char* key) {
  if (v == nullptr) return fallback;
  if (!v->is_string()) {
    bad("value for `" + std::string(key) + "` at " + where +
        " must be a string");
  }
  return v->as_string();
}

std::vector<double> get_num_list(const util::JsonValue* v,
                                 std::vector<double> fallback,
                                 const std::string& where, const char* key) {
  if (v == nullptr) return fallback;
  if (!v->is_array() || v->size() == 0) {
    bad("value for `" + std::string(key) + "` at " + where +
        " must be a non-empty array of numbers");
  }
  std::vector<double> out;
  out.reserve(v->size());
  for (std::size_t i = 0; i < v->size(); ++i) {
    if (!v->at(i).is_number()) {
      bad("value for `" + std::string(key) + "` at " + where +
          " must be a non-empty array of numbers");
    }
    out.push_back(v->at(i).as_double());
  }
  return out;
}

std::vector<std::string> get_str_list(const util::JsonValue* v,
                                      std::vector<std::string> fallback,
                                      const std::string& where,
                                      const char* key) {
  if (v == nullptr) return fallback;
  if (!v->is_array() || v->size() == 0) {
    bad("value for `" + std::string(key) + "` at " + where +
        " must be a non-empty array of strings");
  }
  std::vector<std::string> out;
  out.reserve(v->size());
  for (std::size_t i = 0; i < v->size(); ++i) {
    if (!v->at(i).is_string()) {
      bad("value for `" + std::string(key) + "` at " + where +
          " must be a non-empty array of strings");
    }
    out.push_back(v->at(i).as_string());
  }
  return out;
}

// --- enums ↔ names ----------------------------------------------------------

const std::vector<std::string>& pattern_names() {
  static const std::vector<std::string> names = {"ones", "zeros",
                                                 "checkerboard", "random"};
  return names;
}

const std::vector<std::string>& species_names() {
  static const std::vector<std::string> names = {"alpha", "proton", "neutron"};
  return names;
}

sram::DataPattern pattern_from(const std::string& name,
                               const std::string& where) {
  if (name == "ones") return sram::DataPattern::kAllOnes;
  if (name == "zeros") return sram::DataPattern::kAllZeros;
  if (name == "checkerboard") return sram::DataPattern::kCheckerboard;
  if (name == "random") return sram::DataPattern::kRandom;
  std::string message = "unknown pattern `" + name + "` at " + where;
  const std::string suggestion = util::nearest_key(name, pattern_names());
  if (!suggestion.empty()) message += " (did you mean `" + suggestion + "`?)";
  bad(message);
}

std::string pattern_name(sram::DataPattern pattern) {
  switch (pattern) {
    case sram::DataPattern::kAllOnes:
      return "ones";
    case sram::DataPattern::kAllZeros:
      return "zeros";
    case sram::DataPattern::kCheckerboard:
      return "checkerboard";
    case sram::DataPattern::kRandom:
      return "random";
  }
  return "checkerboard";
}

const std::vector<std::string>& position_names() {
  static const std::vector<std::string> names = {"uniform", "stratified",
                                                 "importance"};
  return names;
}

const std::vector<std::string>& qmc_names() {
  static const std::vector<std::string> names = {"none", "sobol"};
  return names;
}

core::SourcePositionSampling position_from(const std::string& name,
                                           const std::string& where) {
  if (name == "uniform") return core::SourcePositionSampling::kUniform;
  if (name == "stratified") return core::SourcePositionSampling::kStratified;
  if (name == "importance") return core::SourcePositionSampling::kImportance;
  std::string message = "unknown position sampling `" + name + "` at " + where;
  const std::string suggestion = util::nearest_key(name, position_names());
  if (!suggestion.empty()) message += " (did you mean `" + suggestion + "`?)";
  bad(message);
}

std::string position_name(core::SourcePositionSampling position) {
  switch (position) {
    case core::SourcePositionSampling::kUniform:
      return "uniform";
    case core::SourcePositionSampling::kStratified:
      return "stratified";
    case core::SourcePositionSampling::kImportance:
      return "importance";
  }
  return "uniform";
}

stats::QmcMode qmc_from(const std::string& name, const std::string& where) {
  if (name == "none") return stats::QmcMode::kNone;
  if (name == "sobol") return stats::QmcMode::kSobol;
  std::string message = "unknown qmc mode `" + name + "` at " + where;
  const std::string suggestion = util::nearest_key(name, qmc_names());
  if (!suggestion.empty()) message += " (did you mean `" + suggestion + "`?)";
  bad(message);
}

std::string qmc_name(stats::QmcMode qmc) {
  switch (qmc) {
    case stats::QmcMode::kNone:
      return "none";
    case stats::QmcMode::kSobol:
      return "sobol";
  }
  return "none";
}

const std::vector<std::string>& cluster_mode_names() {
  static const std::vector<std::string> names = {"1x1", "2x2", "1x4"};
  return names;
}

sram::ClusterMode cluster_mode_from_name(const std::string& name,
                                         const std::string& where) {
  const std::optional<sram::ClusterMode> mode = sram::cluster_mode_from(name);
  if (mode.has_value()) return *mode;
  std::string message = "unknown cluster mode `" + name + "` at " + where;
  const std::string suggestion = util::nearest_key(name, cluster_mode_names());
  if (!suggestion.empty()) message += " (did you mean `" + suggestion + "`?)";
  bad(message);
}

void check_species_name(const std::string& name, const std::string& where) {
  const auto& known = species_names();
  if (std::find(known.begin(), known.end(), name) != known.end()) return;
  std::string message = "unknown species `" + name + "` at " + where;
  const std::string suggestion = util::nearest_key(name, known);
  if (!suggestion.empty()) message += " (did you mean `" + suggestion + "`?)";
  bad(message);
}

// --- scenario parsing -------------------------------------------------------

ScenarioSpec parse_scenario(const util::JsonValue& obj,
                            const util::JsonValue* defaults,
                            std::uint64_t campaign_seed,
                            const std::string& where) {
  if (!obj.is_object()) bad(where + " must be an object");
  check_keys(obj, where, scenario_keys());

  const auto key = [&](const char* k) { return find_key(obj, defaults, k); };

  ScenarioSpec s;
  // `name` must come from the scenario itself — a shared default name would
  // guarantee a duplicate.
  if (!obj.contains("name")) bad(where + " is missing required key `name`");
  s.name = get_str(&obj.at("name"), "", where, "name");
  if (s.name.empty()) bad("`name` at " + where + " must be non-empty");

  core::SerFlowConfig& f = s.flow;
  const core::SerFlowConfig reference;  // schema fallbacks = struct defaults
  f.array_rows = get_size(key("rows"), reference.array_rows, where, "rows");
  f.array_cols = get_size(key("cols"), reference.array_cols, where, "cols");
  f.pattern =
      pattern_from(get_str(key("pattern"), pattern_name(reference.pattern),
                           where, "pattern"),
                   where);
  f.pattern_seed =
      get_uint(key("pattern_seed"), reference.pattern_seed, where,
               "pattern_seed");
  f.characterization.vdds = get_num_list(
      key("vdds"), reference.characterization.vdds, where, "vdds");
  f.cell_design.sigma_vt =
      get_num(key("sigma_vt"), reference.cell_design.sigma_vt, where,
              "sigma_vt");
  f.cell_design.cnode_f = get_num(key("cnode_f"), reference.cell_design.cnode_f,
                                  where, "cnode_f");
  f.characterization.pv_samples_single =
      get_size(key("pv_samples"), reference.characterization.pv_samples_single,
               where, "pv_samples");
  f.array_mc.strikes =
      get_size(key("strikes"), reference.array_mc.strikes, where, "strikes");
  // Neutron histories follow strikes unless set — the CLI's convention.
  f.neutron_mc.histories =
      get_size(key("histories"), f.array_mc.strikes, where, "histories");
  f.seed = get_uint(key("seed"), campaign_seed, where, "seed");
  f.cell_geometry.cell_w_nm =
      get_num(key("cell_w_nm"), reference.cell_geometry.cell_w_nm, where,
              "cell_w_nm");
  f.cell_geometry.cell_h_nm =
      get_num(key("cell_h_nm"), reference.cell_geometry.cell_h_nm, where,
              "cell_h_nm");
  f.cell_geometry.fin_w_nm = get_num(
      key("fin_w_nm"), reference.cell_geometry.fin_w_nm, where, "fin_w_nm");
  f.cell_geometry.fin_h_nm = get_num(
      key("fin_h_nm"), reference.cell_geometry.fin_h_nm, where, "fin_h_nm");
  if (f.cell_geometry.cell_w_nm <= 0.0 || f.cell_geometry.cell_h_nm <= 0.0 ||
      f.cell_geometry.fin_w_nm <= 0.0 || f.cell_geometry.fin_h_nm <= 0.0) {
    bad("geometry at " + where + " must be positive");
  }
  // The temperature axis of the response surface: flows into every device
  // model via Mosfet::set_temperature.
  f.cell_design.temp_k =
      get_num(key("temp_k"), reference.cell_design.temp_k, where, "temp_k");
  if (f.cell_design.temp_k <= 0.0) {
    bad("`temp_k` at " + where + " must be positive");
  }

  // Variance-reduction / adaptive-stopping block (docs/statistics.md). The
  // whole object folds through defaults like any other scenario key; keys
  // omitted inside it keep the engine struct defaults (all "off").
  const util::JsonValue* sampling = key("sampling");
  if (sampling != nullptr) {
    if (!sampling->is_object()) {
      bad("`sampling` at " + where + " must be an object");
    }
    const std::string swhere = where + ".sampling";
    check_keys(*sampling, swhere, sampling_keys());
    const auto skey = [&](const char* k) {
      return sampling->contains(k) ? &sampling->at(k) : nullptr;
    };
    f.array_mc.position = position_from(
        get_str(skey("position"), position_name(f.array_mc.position), swhere,
                "position"),
        swhere);
    stats::SamplingConfig& vr = f.array_mc.sampling;
    vr.focus_fraction = get_num(skey("focus_fraction"), vr.focus_fraction,
                                swhere, "focus_fraction");
    if (vr.focus_fraction < 0.0 || vr.focus_fraction >= 1.0) {
      bad("`focus_fraction` at " + swhere + " must be in [0, 1)");
    }
    vr.focus_margin_nm = get_num(skey("focus_margin_nm"), vr.focus_margin_nm,
                                 swhere, "focus_margin_nm");
    if (vr.focus_margin_nm < 0.0) {
      bad("`focus_margin_nm` at " + swhere + " must be non-negative");
    }
    vr.direction_bias = get_num(skey("direction_bias"), vr.direction_bias,
                                swhere, "direction_bias");
    if (vr.direction_bias < 0.0 || vr.direction_bias >= 1.0) {
      bad("`direction_bias` at " + swhere + " must be in [0, 1)");
    }
    vr.grazing_bias = get_num(skey("grazing_bias"), vr.grazing_bias, swhere,
                              "grazing_bias");
    if (vr.grazing_bias < 0.0 || vr.grazing_bias >= 1.0) {
      bad("`grazing_bias` at " + swhere + " must be in [0, 1)");
    }
    vr.energy_strata = static_cast<std::size_t>(
        get_uint(skey("energy_strata"), vr.energy_strata, swhere,
                 "energy_strata"));
    vr.qmc = qmc_from(get_str(skey("qmc"), qmc_name(vr.qmc), swhere, "qmc"),
                      swhere);
    const double ci_target =
        get_num(skey("ci_target"), f.array_mc.ci.target, swhere, "ci_target");
    if (ci_target < 0.0) {
      bad("`ci_target` at " + swhere + " must be >= 0 (0 disables stopping)");
    }
    const std::size_t ci_min_chunks = get_size(
        skey("ci_min_chunks"), f.array_mc.ci.min_chunks, swhere,
        "ci_min_chunks");
    const double ci_growth =
        get_num(skey("ci_growth"), f.array_mc.ci.growth, swhere, "ci_growth");
    if (ci_growth < 1.0) {
      bad("`ci_growth` at " + swhere + " must be >= 1");
    }
    // The stopping rule is engine-agnostic: one knob drives both MCs.
    f.array_mc.ci.target = ci_target;
    f.array_mc.ci.min_chunks = ci_min_chunks;
    f.array_mc.ci.growth = ci_growth;
    f.neutron_mc.ci = f.array_mc.ci;
  }

  // Correlated multi-node charge collection (docs/charge_sharing.md). Folds
  // through defaults like `sampling`; omitted keys keep the engine struct
  // defaults (mode 1x1 = the independent per-cell path, byte-for-byte).
  const util::JsonValue* cluster = key("cluster");
  if (cluster != nullptr) {
    if (!cluster->is_object()) {
      bad("`cluster` at " + where + " must be an object");
    }
    const std::string cwhere = where + ".cluster";
    check_keys(*cluster, cwhere, cluster_keys());
    const auto ckey = [&](const char* k) {
      return cluster->contains(k) ? &cluster->at(k) : nullptr;
    };
    sram::ClusterConfig& cc = f.array_mc.cluster;
    cc.mode = cluster_mode_from_name(
        get_str(ckey("mode"), sram::cluster_mode_name(cc.mode), cwhere,
                "mode"),
        cwhere);
    cc.share_fraction = get_num(ckey("share_fraction"), cc.share_fraction,
                                cwhere, "share_fraction");
    if (cc.share_fraction < 0.0 || cc.share_fraction >= 1.0) {
      bad("`share_fraction` at " + cwhere + " must be in [0, 1)");
    }
    cc.pv_samples =
        get_size(ckey("pv_samples"), cc.pv_samples, cwhere, "pv_samples");
    cc.quantum_fc =
        get_num(ckey("quantum_fc"), cc.quantum_fc, cwhere, "quantum_fc");
    if (cc.quantum_fc <= 0.0) {
      bad("`quantum_fc` at " + cwhere + " must be positive");
    }
  }

  s.species = get_str_list(key("species"), {"alpha", "proton"}, where,
                           "species");
  for (const std::string& name : s.species) check_species_name(name, where);
  return s;
}

}  // namespace

CampaignSpec parse_campaign(const util::JsonValue& doc) {
  if (!doc.is_object()) bad("document must be a JSON object");
  check_keys(doc, "top level", top_level_keys());

  CampaignSpec spec;
  const auto top = [&](const char* k) {
    return doc.contains(k) ? &doc.at(k) : nullptr;
  };
  spec.name = get_str(top("campaign"), spec.name, "top level", "campaign");
  spec.artifact_dir =
      get_str(top("artifact_dir"), spec.artifact_dir, "top level",
              "artifact_dir");
  spec.output_dir =
      get_str(top("output_dir"), spec.output_dir, "top level", "output_dir");
  spec.threads = static_cast<std::size_t>(
      get_uint(top("threads"), 0, "top level", "threads"));
  spec.lanes = static_cast<std::size_t>(
      get_uint(top("lanes"), 0, "top level", "lanes"));
  if (!spice::lane_width_valid(spec.lanes)) {
    bad("top level: `lanes` must be 0 (auto), 1, 4 or 8, got " +
        std::to_string(spec.lanes));
  }
  const std::uint64_t campaign_seed =
      get_uint(top("seed"), 20140601, "top level", "seed");

  const util::JsonValue* defaults = top("defaults");
  if (defaults != nullptr) {
    if (!defaults->is_object()) bad("`defaults` must be an object");
    std::vector<std::string> allowed = scenario_keys();
    allowed.erase(std::remove(allowed.begin(), allowed.end(), "name"),
                  allowed.end());
    check_keys(*defaults, "defaults", allowed);
  }

  const util::JsonValue* scenarios = top("scenarios");
  if (scenarios == nullptr || !scenarios->is_array() || scenarios->size() == 0) {
    bad("`scenarios` must be a non-empty array");
  }
  for (std::size_t i = 0; i < scenarios->size(); ++i) {
    const std::string where = "scenarios[" + std::to_string(i) + "]";
    spec.scenarios.push_back(
        parse_scenario(scenarios->at(i), defaults, campaign_seed, where));
  }
  for (std::size_t i = 0; i < spec.scenarios.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.scenarios.size(); ++j) {
      if (spec.scenarios[i].name == spec.scenarios[j].name) {
        bad("duplicate scenario name `" + spec.scenarios[i].name +
            "` (scenarios[" + std::to_string(i) + "] and scenarios[" +
            std::to_string(j) + "])");
      }
    }
  }
  return spec;
}

CampaignSpec parse_campaign_text(const std::string& text) {
  return parse_campaign(util::JsonValue::parse(text));
}

CampaignSpec parse_campaign_file(const std::string& path) {
  std::vector<std::uint8_t> raw;
  std::string error;
  if (!util::read_file(path, raw, &error)) {
    throw util::Error("cannot read campaign file: " + error);
  }
  return parse_campaign_text(
      std::string(reinterpret_cast<const char*>(raw.data()), raw.size()));
}

util::JsonValue campaign_to_json(const CampaignSpec& spec) {
  util::JsonValue doc = util::JsonValue::object();
  doc["campaign"] = spec.name;
  doc["threads"] = static_cast<std::uint64_t>(spec.threads);
  doc["lanes"] = static_cast<std::uint64_t>(spec.lanes);
  doc["artifact_dir"] = spec.artifact_dir;
  doc["output_dir"] = spec.output_dir;
  util::JsonValue scenarios = util::JsonValue::array();
  for (const ScenarioSpec& s : spec.scenarios) {
    const core::SerFlowConfig& f = s.flow;
    util::JsonValue o = util::JsonValue::object();
    o["name"] = s.name;
    o["rows"] = static_cast<std::uint64_t>(f.array_rows);
    o["cols"] = static_cast<std::uint64_t>(f.array_cols);
    o["pattern"] = pattern_name(f.pattern);
    o["pattern_seed"] = f.pattern_seed;
    util::JsonValue vdds = util::JsonValue::array();
    for (double v : f.characterization.vdds) vdds.push_back(v);
    o["vdds"] = std::move(vdds);
    o["sigma_vt"] = f.cell_design.sigma_vt;
    o["cnode_f"] = f.cell_design.cnode_f;
    o["pv_samples"] =
        static_cast<std::uint64_t>(f.characterization.pv_samples_single);
    o["strikes"] = static_cast<std::uint64_t>(f.array_mc.strikes);
    o["histories"] = static_cast<std::uint64_t>(f.neutron_mc.histories);
    o["seed"] = f.seed;
    util::JsonValue species = util::JsonValue::array();
    for (const std::string& name : s.species) species.push_back(name);
    o["species"] = std::move(species);
    o["cell_w_nm"] = f.cell_geometry.cell_w_nm;
    o["cell_h_nm"] = f.cell_geometry.cell_h_nm;
    o["fin_w_nm"] = f.cell_geometry.fin_w_nm;
    o["fin_h_nm"] = f.cell_geometry.fin_h_nm;
    o["temp_k"] = f.cell_design.temp_k;
    util::JsonValue sampling = util::JsonValue::object();
    sampling["position"] = position_name(f.array_mc.position);
    sampling["focus_fraction"] = f.array_mc.sampling.focus_fraction;
    sampling["focus_margin_nm"] = f.array_mc.sampling.focus_margin_nm;
    sampling["direction_bias"] = f.array_mc.sampling.direction_bias;
    sampling["grazing_bias"] = f.array_mc.sampling.grazing_bias;
    sampling["energy_strata"] =
        static_cast<std::uint64_t>(f.array_mc.sampling.energy_strata);
    sampling["qmc"] = qmc_name(f.array_mc.sampling.qmc);
    sampling["ci_target"] = f.array_mc.ci.target;
    sampling["ci_min_chunks"] =
        static_cast<std::uint64_t>(f.array_mc.ci.min_chunks);
    sampling["ci_growth"] = f.array_mc.ci.growth;
    o["sampling"] = std::move(sampling);
    util::JsonValue cluster = util::JsonValue::object();
    cluster["mode"] =
        std::string(sram::cluster_mode_name(f.array_mc.cluster.mode));
    cluster["share_fraction"] = f.array_mc.cluster.share_fraction;
    cluster["pv_samples"] =
        static_cast<std::uint64_t>(f.array_mc.cluster.pv_samples);
    cluster["quantum_fc"] = f.array_mc.cluster.quantum_fc;
    o["cluster"] = std::move(cluster);
    scenarios.push_back(std::move(o));
  }
  doc["scenarios"] = std::move(scenarios);
  return doc;
}

CampaignSpec single_scenario_campaign(const core::SerFlowConfig& flow,
                                      std::vector<std::string> species,
                                      std::string output_dir,
                                      std::string name) {
  for (const std::string& s : species) check_species_name(s, "species list");
  CampaignSpec spec;
  spec.name = name;
  spec.output_dir = std::move(output_dir);
  spec.threads = flow.threads;
  // Resolved lane width, so --print-config surfaces the engine the run
  // would actually use (and round-trips to an identical run).
  spec.lanes = spice::lane_width();
  ScenarioSpec scenario;
  scenario.name = std::move(name);
  scenario.species = std::move(species);
  scenario.flow = flow;
  spec.scenarios.push_back(std::move(scenario));
  return spec;
}

env::Spectrum spectrum_for_species(const std::string& name) {
  if (name == "alpha") return env::package_alphas();
  if (name == "proton") return env::sea_level_protons();
  if (name == "neutron") return env::sea_level_neutrons();
  check_species_name(name, "species list");  // throws
  throw util::InvalidArgument("campaign: unknown species `" + name + "`");
}

void resolve_flow_for_execution(core::SerFlowConfig& flow) {
  core::apply_mc_scale(flow, core::mc_scale_from_env());
  // FINSER_CI_TARGET overrides the adaptive-stopping target, mirroring
  // FINSER_MC_SCALE: shard workers and the serve refinement path inherit
  // the environment, so a CLI flag reaches every process identically.
  core::apply_ci_target(flow, core::ci_target_from_env());
  // FINSER_CLUSTER overrides the cluster mode the same way (--cluster sets
  // it in the environment before workers fork).
  core::apply_cluster(flow, core::cluster_mode_from_env());
  flow.lut_cache_path.clear();  // the artifact store supersedes it
}

// --- CSV emitters -----------------------------------------------------------

util::CsvTable pof_csv(const surface::ResponseSurface& s) {
  util::CsvTable table({"energy_mev", "vdd_v", "pof_tot", "pof_seu", "pof_mbu",
                        "pof_tot_se"});
  const auto pv = static_cast<std::size_t>(core::kModeWithPv);
  const std::size_t nv = s.n_vdd();
  for (std::size_t b = 0; b < s.n_bins(); ++b) {
    for (std::size_t v = 0; v < nv; ++v) {
      const std::size_t k = b * nv + v;
      table.add_row({s.bins[b].e_rep_mev, s.vdds[v], s.pof_tot[pv][k],
                     s.pof_seu[pv][k], s.pof_mbu[pv][k], s.pof_tot_se[pv][k]});
    }
  }
  return table;
}

util::CsvTable pof_csv(const core::EnergySweepResult& sweep) {
  return pof_csv(surface::ResponseSurface::from_sweep("", 0.0, 0, sweep));
}

util::CsvTable make_fit_table() {
  return util::CsvTable({"species", "vdd_v", "fit_tot", "fit_seu", "fit_mbu",
                         "fit_tot_no_pv"});
}

void append_fit_rows(util::CsvTable& table, const std::string& species,
                     const surface::ResponseSurface& s) {
  const auto pv = static_cast<std::size_t>(core::kModeWithPv);
  const auto nom = static_cast<std::size_t>(core::kModeNominal);
  for (std::size_t v = 0; v < s.n_vdd(); ++v) {
    table.add_row({species, s.vdds[v], s.fit_tot[pv][v], s.fit_seu[pv][v],
                   s.fit_mbu[pv][v], s.fit_tot[nom][v]});
  }
}

void append_fit_rows(util::CsvTable& table, const std::string& species,
                     const core::EnergySweepResult& sweep) {
  append_fit_rows(table, species,
                  surface::ResponseSurface::from_sweep("", 0.0, 0, sweep));
}

// --- stage graph ------------------------------------------------------------

std::size_t StageGraph::add(std::string label, std::vector<std::size_t> deps,
                            std::function<void(std::size_t)> fn) {
  for (std::size_t d : deps) {
    FINSER_REQUIRE(d < stages_.size(),
                   "StageGraph::add: dependency on a stage not yet added");
  }
  stages_.push_back(Stage{std::move(label), std::move(deps), std::move(fn)});
  return stages_.size() - 1;
}

void StageGraph::run(std::size_t thread_budget,
                     const exec::ProgressSink& progress) const {
  const std::size_t budget = exec::resolve_threads(thread_budget);

  // Level = longest dependency chain; stages of one level form a wave.
  std::vector<std::size_t> level(stages_.size(), 0);
  std::size_t max_level = 0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    for (std::size_t d : stages_[i].deps) {
      level[i] = std::max(level[i], level[d] + 1);
    }
    max_level = std::max(max_level, level[i]);
  }

  for (std::size_t wave = 0; wave <= max_level; ++wave) {
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      if (level[i] == wave) ready.push_back(i);
    }
    if (ready.empty()) continue;

    const std::size_t share = std::max<std::size_t>(1, budget / ready.size());
    const auto run_stage = [&](std::size_t id, std::size_t threads) {
      const Stage& stage = stages_[id];
      obs::ScopedSpan span("pipeline.stage", stage.label);
      if (progress) progress.message("stage: " + stage.label);
      stage.fn(threads);
    };
    if (ready.size() == 1) {
      run_stage(ready[0], budget);  // a lone stage keeps the whole budget
    } else {
      exec::ThreadPool pool(std::min(ready.size(), budget));
      pool.parallel_for_chunks(ready.size(), 1,
                               [&](const exec::ChunkRange& r) {
                                 for (std::size_t i = r.begin; i < r.end; ++i) {
                                   run_stage(ready[i], share);
                                 }
                               });
    }
  }
}

// --- artifact adapters ------------------------------------------------------

bool ArtifactBinCache::load(std::uint64_t fingerprint,
                            std::vector<std::uint8_t>& out) {
  return store_.try_get(ArtifactKey{kind_, fingerprint}, out);
}

void ArtifactBinCache::store(std::uint64_t fingerprint,
                             const std::vector<std::uint8_t>& blob) {
  store_.put(ArtifactKey{kind_, fingerprint}, blob);
}

namespace {

std::uint64_t device_lut_fingerprint(const geom::Aabb& fin_box,
                                     const phys::FinStrikeMc::Config& config,
                                     phys::Species species, double e_lo_mev,
                                     double e_hi_mev, std::size_t points,
                                     std::uint64_t seed) {
  util::Fnv1a h;
  h.str("finser.device_lut.v1");
  h.u64(static_cast<std::uint64_t>(species));
  h.f64(fin_box.lo.x).f64(fin_box.lo.y).f64(fin_box.lo.z);
  h.f64(fin_box.hi.x).f64(fin_box.hi.y).f64(fin_box.hi.z);
  h.u64(static_cast<std::uint64_t>(config.straggling)).u64(config.samples);
  h.f64(e_lo_mev).f64(e_hi_mev).u64(points).u64(seed);
  return h.hash();
}

std::vector<std::uint8_t> encode_grid1(const util::Grid1& grid) {
  util::ByteWriter w;
  w.u64(static_cast<std::uint64_t>(grid.x_axis().scale()));
  w.f64_vec(grid.x_axis().points());
  w.f64_vec(grid.values());
  return w.take();
}

util::Grid1 decode_grid1(const std::vector<std::uint8_t>& blob) {
  util::ByteReader r(blob);
  const std::uint64_t scale = r.u64();
  FINSER_REQUIRE(scale <= static_cast<std::uint64_t>(util::Scale::kLog),
                 "device LUT artifact: unknown axis scale");
  std::vector<double> points = r.f64_vec();
  std::vector<double> values = r.f64_vec();
  FINSER_REQUIRE(r.exhausted(), "device LUT artifact: trailing bytes");
  return util::Grid1(util::Axis(std::move(points),
                                static_cast<util::Scale>(scale)),
                     std::move(values));
}

}  // namespace

util::Grid1 cached_device_lut(const ArtifactStore* store,
                              const geom::Aabb& fin_box,
                              const phys::FinStrikeMc::Config& config,
                              phys::Species species, double e_lo_mev,
                              double e_hi_mev, std::size_t points,
                              std::uint64_t seed) {
  const ArtifactKey key{
      "device_lut", device_lut_fingerprint(fin_box, config, species, e_lo_mev,
                                           e_hi_mev, points, seed)};
  if (store != nullptr) {
    std::vector<std::uint8_t> blob;
    if (store->try_get(key, blob)) {
      try {
        return decode_grid1(blob);
      } catch (const std::exception&) {
        // A malformed payload behind a valid envelope degrades to rebuild.
      }
    }
  }
  const phys::FinStrikeMc mc(fin_box, config);
  stats::Rng rng(seed);
  util::Grid1 grid = mc.build_lut(species, e_lo_mev, e_hi_mev, points, rng);
  FINSER_OBS_COUNT("pipeline.device_lut_builds", 1);
  if (store != nullptr) store->put(key, encode_grid1(grid));
  return grid;
}

// --- runner -----------------------------------------------------------------

namespace {

std::uint64_t geometry_fingerprint(const sram::CellGeometry& g) {
  util::Fnv1a h;
  h.str("finser.campaign.geometry.v1");
  h.f64(g.fin_w_nm).f64(g.fin_h_nm).f64(g.gate_len_nm);
  return h.hash();
}

std::string hex8(std::uint64_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08llx",
                static_cast<unsigned long long>(v & 0xffffffffull));
  return std::string(buf);
}

/// Deterministic seed of the campaign's device-LUT stages. Fixed (not a
/// scenario seed) so every scenario sharing a geometry shares the LUT.
constexpr std::uint64_t kDeviceLutSeed = 0xF16D4EULL;  // "Fig. 4"
constexpr std::size_t kDeviceLutPoints = 25;

/// Path-safe stage-id slug: runs of anything outside [A-Za-z0-9_.] collapse
/// to a single '-'. The numeric plan-index prefix added by the caller makes
/// ids unique even if two labels sanitize identically.
std::string sanitize_slug(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (safe) {
      out.push_back(c);
    } else if (!out.empty() && out.back() != '-') {
      out.push_back('-');
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace

std::uint64_t campaign_fingerprint(const CampaignSpec& spec) {
  // threads/lanes are pure execution knobs — every stage is thread-count-
  // and lane-width-invariant — so they are zeroed before hashing: a re-run
  // with a different worker or thread budget must resume, not recompute.
  CampaignSpec norm = spec;
  norm.threads = 0;
  norm.lanes = 0;
  util::Fnv1a h;
  h.str("finser.campaign.fingerprint.v1");
  h.str(campaign_to_json(norm).dump(0));
  return h.hash();
}

/// Persistent execution state shared by every stage of one runner: resolved
/// flow configs, the artifact store, the cell-model map and accumulated
/// results. Living on the runner (not on run()'s stack) is what lets a
/// worker process execute stages one at a time across separate run_stage()
/// calls while reusing models it already materialized.
struct CampaignRunner::Exec {
  double scale = 1.0;
  std::vector<core::SerFlowConfig> flows;
  std::optional<ArtifactStore> store;
  std::optional<ArtifactBinCache> bin_cache;
  // Memoized cluster-surface entries ("cluster_surface" artifact kind):
  // re-runs and sibling scenarios with the same surface fingerprint skip the
  // joint multi-cell simulations already priced.
  std::optional<ArtifactBinCache> cluster_cache;
  // Keys pre-inserted serially at plan time; stages then only assign to
  // their own slot, so concurrent stages never mutate the map's structure.
  std::map<std::uint64_t, sram::CellSoftErrorModel> models;
  std::vector<ScenarioResult> results;
  std::vector<std::function<void(std::size_t, const exec::ProgressSink&,
                                 const ckpt::RunOptions&)>>
      fns;

  /// Ensure models[fp] is populated: already-materialized → no-op; else
  /// artifact-store load; else characterize here (counts
  /// "pipeline.characterizations" exactly like the characterize stage —
  /// this is the sweep-stage fallback when the dependency ran in another
  /// process and the artifact got lost, and it is bit-identical to the
  /// stage by purity).
  void materialize_model(std::uint64_t fp, const sram::CellDesign& design,
                         const sram::CharacterizerConfig& ccfg,
                         std::size_t threads,
                         const exec::ProgressSink& progress,
                         const ckpt::RunOptions& run) {
    sram::CellSoftErrorModel& slot = models.at(fp);
    if (!slot.tables.empty()) return;
    const ArtifactKey key{"cell_model", fp};
    if (store.has_value()) {
      std::vector<std::uint8_t> blob;
      if (store->try_get(key, blob)) {
        try {
          slot = surface::decode_cell_model(blob, fp);
          progress.message("cell model " + hex8(fp) +
                           " loaded from artifact store");
          return;
        } catch (const std::exception&) {
          // Malformed payload: fall through to characterize.
        }
      }
    }
    sram::CharacterizerConfig cfg = ccfg;
    if (cfg.threads == 0) cfg.threads = threads;
    const sram::CellCharacterizer characterizer(design, cfg);
    slot = characterizer.characterize(progress, run.cancel_only());
    FINSER_OBS_COUNT("pipeline.characterizations", 1);
    if (store.has_value()) store->put(key, surface::encode_cell_model(slot));
  }
};

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec)) {
  FINSER_REQUIRE(!spec_.scenarios.empty(),
                 "CampaignRunner: campaign has no scenarios");
}

void CampaignRunner::ensure_exec() {
  if (exec_ != nullptr) return;
  // A non-zero spec pins the SPICE lane width for the whole campaign
  // (results are identical for every width; this is a performance knob).
  if (spec_.lanes != 0) spice::set_lane_width(spec_.lanes);

  exec_ = std::make_shared<Exec>();
  Exec* ex = exec_.get();  // stage lambdas share the runner's lifetime
  ex->scale = core::mc_scale_from_env();
  const double scale = ex->scale;
  const std::size_t n = spec_.scenarios.size();

  // Resolved per-scenario flow configs: MC sizes scaled here (not in the
  // spec, which must round-trip through JSON unscaled), thread budget and
  // caches owned by the runner.
  ex->flows.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ex->flows[i] = spec_.scenarios[i].flow;
    // Shared with the serve refinement path (surface_provider.cpp): the
    // env overrides and the resolved flow — and therefore the response-
    // surface fingerprints — agree across both by construction.
    resolve_flow_for_execution(ex->flows[i]);
  }

  if (!spec_.artifact_dir.empty()) {
    ex->store.emplace(spec_.artifact_dir);
    ex->bin_cache.emplace(*ex->store);
    ex->cluster_cache.emplace(*ex->store, "cluster_surface");
  }
  ex->results.resize(n);

  const auto add_stage =
      [&](std::string label, std::vector<std::size_t> deps,
          std::function<void(std::size_t, const exec::ProgressSink&,
                             const ckpt::RunOptions&)>
              fn) {
        StageInfo info;
        info.id = std::to_string(plan_.size()) + "-" + sanitize_slug(label);
        info.label = std::move(label);
        info.deps = std::move(deps);
        plan_.push_back(std::move(info));
        ex->fns.push_back(std::move(fn));
        return plan_.size() - 1;
      };

  // One characterization stage per unique model fingerprint.
  std::map<std::uint64_t, std::size_t> model_stage;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t fp =
        ex->flows[i].characterization.fingerprint(ex->flows[i].cell_design);
    if (ex->models.count(fp) != 0) continue;
    ex->models[fp];  // reserve the slot
    const sram::CellDesign design = ex->flows[i].cell_design;
    const sram::CharacterizerConfig ccfg = ex->flows[i].characterization;
    model_stage[fp] = add_stage(
        "characterize " + hex8(fp), {},
        [ex, fp, design, ccfg](std::size_t threads,
                               const exec::ProgressSink& progress,
                               const ckpt::RunOptions& run) {
          ex->materialize_model(fp, design, ccfg, threads, progress, run);
        });
  }

  // One device e–h-pair LUT stage per unique (fin geometry, charged
  // species) — the paper's Fig. 4 device level, shared campaign-wide.
  if (!spec_.output_dir.empty() || ex->store.has_value()) {
    std::map<std::pair<std::uint64_t, int>, bool> lut_jobs;
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::string& name : spec_.scenarios[i].species) {
        if (name == "neutron") continue;  // no direct-ionization LUT
        const phys::Species species =
            name == "alpha" ? phys::Species::kAlpha : phys::Species::kProton;
        const std::uint64_t gfp =
            geometry_fingerprint(ex->flows[i].cell_geometry);
        if (!lut_jobs.emplace(std::make_pair(gfp, static_cast<int>(species)),
                              true)
                 .second) {
          continue;
        }
        const bool suffix_geometry = [&] {
          for (std::size_t j = 0; j < n; ++j) {
            if (geometry_fingerprint(ex->flows[j].cell_geometry) != gfp) {
              return true;
            }
          }
          return false;
        }();
        const sram::CellGeometry g = ex->flows[i].cell_geometry;
        const double e_lo = name == "alpha" ? ex->flows[i].alpha_e_lo_mev
                                            : ex->flows[i].proton_e_lo_mev;
        const double e_hi = name == "alpha" ? ex->flows[i].alpha_e_hi_mev
                                            : ex->flows[i].proton_e_hi_mev;
        add_stage(
            "device_lut " + name + " " + hex8(gfp), {},
            [this, ex, name, species, g, e_lo, e_hi, scale, suffix_geometry,
             gfp](std::size_t, const exec::ProgressSink&,
                  const ckpt::RunOptions&) {
              const geom::Aabb fin_box{
                  {0.0, 0.0, 0.0}, {g.fin_w_nm, g.gate_len_nm, g.fin_h_nm}};
              phys::FinStrikeMc::Config cfg;
              cfg.samples = std::max<std::size_t>(
                  1, static_cast<std::size_t>(
                         static_cast<double>(cfg.samples) * scale));
              const util::Grid1 lut = cached_device_lut(
                  ex->store.has_value() ? &*ex->store : nullptr, fin_box, cfg,
                  species, e_lo, e_hi, kDeviceLutPoints, kDeviceLutSeed);
              if (spec_.output_dir.empty()) return;
              util::CsvTable table({"energy_mev", "mean_eh_pairs"});
              for (std::size_t p = 0; p < lut.x_axis().size(); ++p) {
                table.add_row({lut.x_axis()[p], lut.values()[p]});
              }
              const std::string stem =
                  suffix_geometry ? "eh_pairs_" + name + "_" + hex8(gfp)
                                  : "eh_pairs_" + name;
              table.write_csv_file(spec_.output_dir + "/" + stem + ".csv");
            });
      }
    }
  }

  // One sweep stage per scenario, dependent on its model stage.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t fp =
        ex->flows[i].characterization.fingerprint(ex->flows[i].cell_design);
    add_stage(
        "sweep " + spec_.scenarios[i].name, {model_stage.at(fp)},
        [this, ex, i, fp](std::size_t threads,
                          const exec::ProgressSink& progress,
                          const ckpt::RunOptions& run) {
          const ScenarioSpec& scenario = spec_.scenarios[i];
          // Sharded path: the characterize stage may have run in another
          // process — materialize the model here (store load, else
          // recompute). In-process runs find it already populated.
          ex->materialize_model(fp, ex->flows[i].cell_design,
                                ex->flows[i].characterization, threads,
                                progress, run);
          core::SerFlowConfig cfg = ex->flows[i];
          cfg.threads = threads;
          cfg.bin_cache =
              ex->bin_cache.has_value() ? &*ex->bin_cache : nullptr;
          cfg.cluster_cache =
              ex->cluster_cache.has_value() ? &*ex->cluster_cache : nullptr;
          core::SerFlow flow(cfg);
          flow.set_cell_model(ex->models.at(fp));

          ScenarioResult& out = ex->results[i];
          out.name = scenario.name;
          out.sweeps.clear();
          // The resolved scenario is the surface identity: the species
          // *position* matters because the flow's MC seed cursor advances
          // serially across the species sweeps below.
          ScenarioSpec resolved;
          resolved.name = scenario.name;
          resolved.species = scenario.species;
          resolved.flow = ex->flows[i];
          util::CsvTable fit_table = make_fit_table();
          for (std::size_t si = 0; si < scenario.species.size(); ++si) {
            const std::string& name = scenario.species[si];
            const env::Spectrum spectrum = spectrum_for_species(name);
            progress.message(scenario.name + ": sweeping " + spectrum.name());
            core::EnergySweepResult sweep =
                flow.sweep(spectrum, progress, run.cancel_only());
            // Every consumer-facing product below comes from the surface,
            // not the raw sweep — batch CSVs and `serve` answers are the
            // same bytes by construction (docs/serving.md).
            const surface::ResponseSurface surf =
                surface::ResponseSurface::from_sweep(
                    scenario.name, ex->flows[i].cell_design.temp_k,
                    response_surface_fingerprint(resolved, si), sweep);
            if (ex->store.has_value()) {
              ex->store->put(
                  ArtifactKey{surface::kResponseSurfaceKind, surf.fingerprint},
                  surf.encode());
            }
            if (!spec_.output_dir.empty()) {
              pof_csv(surf).write_csv_file(spec_.output_dir + "/" +
                                           scenario.name + "/pof_" + name +
                                           ".csv");
            }
            append_fit_rows(fit_table, name, surf);
            out.sweeps.push_back(std::move(sweep));
          }
          if (!spec_.output_dir.empty()) {
            fit_table.write_csv_file(spec_.output_dir + "/" + scenario.name +
                                     "/fit_summary.csv");
          }
        });
  }
}

const std::vector<StageInfo>& CampaignRunner::plan() {
  ensure_exec();
  return plan_;
}

void CampaignRunner::run_stage(std::size_t index, std::size_t threads,
                               const exec::ProgressSink& progress,
                               const ckpt::RunOptions& run) {
  ensure_exec();
  FINSER_REQUIRE(index < plan_.size(),
                 "CampaignRunner::run_stage: stage index " +
                     std::to_string(index) + " out of range (plan has " +
                     std::to_string(plan_.size()) + " stages)");
  // Same wrapping as StageGraph's in-process dispatch: one span + one
  // progress line per stage, then the stage body with a resolved budget.
  const StageInfo& info = plan_[index];
  obs::ScopedSpan span("pipeline.stage", info.label);
  if (progress) progress.message("stage: " + info.label);
  exec_->fns[index](exec::resolve_threads(threads), progress,
                    run.cancel_only());
}

const std::vector<ScenarioResult>& CampaignRunner::results() {
  ensure_exec();
  return exec_->results;
}

std::vector<ScenarioResult> CampaignRunner::run(
    const exec::ProgressSink& progress, const ckpt::RunOptions& run) {
  ensure_exec();
  Exec* ex = exec_.get();
  StageGraph graph;
  const ckpt::RunOptions stage_run = run.cancel_only();
  for (std::size_t k = 0; k < plan_.size(); ++k) {
    graph.add(plan_[k].label, plan_[k].deps,
              [ex, k, &progress, stage_run](std::size_t threads) {
                ex->fns[k](threads, progress, stage_run);
              });
  }
  graph.run(spec_.threads, progress);
  return ex->results;
}

}  // namespace finser::pipeline
