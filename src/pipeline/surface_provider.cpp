/// \file surface_provider.cpp
/// \brief Surface identity + the memory→artifact→build cache hierarchy.

#include "finser/pipeline/surface_provider.hpp"

#include <utility>

#include "finser/obs/obs.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fingerprint.hpp"

namespace finser::pipeline {

std::uint64_t response_surface_fingerprint(const ScenarioSpec& scenario,
                                           std::size_t species_index) {
  FINSER_REQUIRE(species_index < scenario.species.size(),
                 "response_surface_fingerprint: species index out of range");
  // A normalized single-scenario campaign is the identity document: the
  // dirs and campaign name are presentation, threads/lanes are zeroed by
  // campaign_fingerprint, and the full species list stays in (the seed
  // cursor makes earlier species part of a later species' identity).
  CampaignSpec one;
  one.name = "response_surface";
  one.artifact_dir.clear();
  one.output_dir.clear();
  one.scenarios.push_back(scenario);
  util::Fnv1a h;
  h.str("finser.surface.response_surface.v1");
  h.u64(campaign_fingerprint(one));
  h.u64(species_index);
  return h.hash();
}

SurfaceProvider::SurfaceProvider(CampaignSpec spec, std::size_t threads,
                                 exec::ProgressSink progress,
                                 ckpt::RunOptions run)
    : spec_(std::move(spec)),
      threads_(threads),
      progress_(std::move(progress)),
      run_(std::move(run)) {
  FINSER_REQUIRE(!spec_.scenarios.empty(),
                 "SurfaceProvider: campaign has no scenarios");
  if (!spec_.artifact_dir.empty()) store_.emplace(spec_.artifact_dir);
}

std::vector<surface::ServeScenario> SurfaceProvider::catalog() const {
  std::vector<surface::ServeScenario> out;
  out.reserve(spec_.scenarios.size());
  for (const ScenarioSpec& s : spec_.scenarios) {
    surface::ServeScenario entry;
    entry.name = s.name;
    entry.species = s.species;
    entry.temp_k = s.flow.cell_design.temp_k;
    out.push_back(std::move(entry));
  }
  return out;
}

const ScenarioSpec& SurfaceProvider::find_scenario(
    const std::string& name) const {
  for (const ScenarioSpec& s : spec_.scenarios) {
    if (s.name == name) return s;
  }
  throw util::InvalidArgument("surface provider: unknown scenario `" + name +
                              "`");
}

const surface::ResponseSurface* SurfaceProvider::cache_put(
    surface::ResponseSurface surf, const std::string& scenario,
    const std::string& species) {
  auto& slot = cache_[std::make_pair(scenario, species)];
  slot = std::move(surf);
  return &slot;
}

const surface::ResponseSurface* SurfaceProvider::lookup(
    const std::string& scenario, const std::string& species) {
  const auto it = cache_.find(std::make_pair(scenario, species));
  if (it != cache_.end()) {
    FINSER_OBS_COUNT("surface.memory_hits", 1);
    return &it->second;
  }
  if (!store_.has_value()) return nullptr;

  const ScenarioSpec& scen = find_scenario(scenario);
  std::size_t index = scen.species.size();
  for (std::size_t i = 0; i < scen.species.size(); ++i) {
    if (scen.species[i] == species) index = i;
  }
  if (index == scen.species.size()) {
    throw util::InvalidArgument("surface provider: scenario `" + scenario +
                                "` has no species `" + species + "`");
  }
  // The fingerprint is computed on the *resolved* scenario — the identity
  // the batch sweep stage persisted under (resolve_flow_for_execution is
  // shared, so both sides agree as long as the environment does).
  ScenarioSpec resolved = scen;
  resolve_flow_for_execution(resolved.flow);
  const std::uint64_t fp = response_surface_fingerprint(resolved, index);
  std::vector<std::uint8_t> blob;
  if (!store_->try_get(ArtifactKey{surface::kResponseSurfaceKind, fp},
                       blob)) {
    return nullptr;
  }
  try {
    surface::ResponseSurface surf = surface::ResponseSurface::decode(blob);
    FINSER_REQUIRE(surf.fingerprint == fp,
                   "response surface artifact: fingerprint echo mismatch");
    FINSER_OBS_COUNT("surface.artifact_hits", 1);
    return cache_put(std::move(surf), scenario, species);
  } catch (const std::exception&) {
    // Malformed payload past the store's CRC: treat as a miss and rebuild.
    return nullptr;
  }
}

const surface::ResponseSurface* SurfaceProvider::refine(
    const std::string& scenario, const std::string& species) {
  const ScenarioSpec& scen = find_scenario(scenario);
  bool species_known = false;
  for (const std::string& sp : scen.species) {
    species_known = species_known || sp == species;
  }
  FINSER_REQUIRE(species_known, "surface provider: scenario `" + scenario +
                                    "` has no species `" + species + "`");

  // Build the whole scenario — full species list, in order — through the
  // identical code path batch campaigns use. The runner resolves the flow
  // itself (same env helper), shares the artifact store, and persists the
  // resulting `response_surface` artifacts from its sweep stage.
  CampaignSpec sub;
  sub.name = spec_.name;
  sub.artifact_dir = spec_.artifact_dir;
  sub.output_dir.clear();  // serve emits answers, not CSV files
  sub.threads = threads_;
  sub.lanes = spec_.lanes;
  sub.scenarios.push_back(scen);
  FINSER_OBS_COUNT("surface.builds", 1);
  CampaignRunner runner(std::move(sub));
  const std::vector<ScenarioResult> results = runner.run(progress_, run_);
  FINSER_REQUIRE(results.size() == 1 &&
                     results[0].sweeps.size() == scen.species.size(),
                 "surface provider: refinement produced unexpected results");

  ScenarioSpec resolved = scen;
  resolve_flow_for_execution(resolved.flow);
  const surface::ResponseSurface* wanted = nullptr;
  for (std::size_t i = 0; i < scen.species.size(); ++i) {
    surface::ResponseSurface surf = surface::ResponseSurface::from_sweep(
        scen.name, resolved.flow.cell_design.temp_k,
        response_surface_fingerprint(resolved, i), results[0].sweeps[i]);
    const surface::ResponseSurface* cached =
        cache_put(std::move(surf), scenario, scen.species[i]);
    if (scen.species[i] == species) wanted = cached;
  }
  return wanted;
}

}  // namespace finser::pipeline
