#include "finser/logic/set_chain.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "finser/spice/dc.hpp"
#include "finser/spice/transient.hpp"
#include "finser/util/error.hpp"
#include "finser/util/units.hpp"

namespace finser::logic {

using spice::kGround;

SetChainSimulator::SetChainSimulator(const ChainDesign& design, double vdd_v)
    : design_(design), vdd_v_(vdd_v) {
  FINSER_REQUIRE(vdd_v > 0.0, "SetChainSimulator: Vdd must be positive");
  FINSER_REQUIRE(design_.stages >= 1, "SetChainSimulator: need >= 1 stage");
  if (design_.nfet == nullptr) design_.nfet = &spice::default_nfet();
  if (design_.pfet == nullptr) design_.pfet = &spice::default_pfet();
  tau_s_ = util::fs_to_s(phys::transit_time_fs(design_.tech, vdd_v_));

  // in -> n0 -> n1 -> ... -> n_{stages}: the strike hits n0; the output is
  // the last node. The chain input is tied low, so n0 idles high.
  const auto n_vdd = circuit_.node("vdd");
  const auto n_in = circuit_.node("in");
  circuit_.add<spice::VSource>(circuit_, n_vdd, kGround, vdd_v_);
  circuit_.add<spice::VSource>(circuit_, n_in, kGround, 0.0);

  std::size_t prev = n_in;
  for (std::size_t s = 0; s <= design_.stages; ++s) {
    // Two-step concatenation: `"n" + std::to_string(s)` trips a GCC 12
    // -Wrestrict false positive.
    std::string name = "n";
    name += std::to_string(s);
    const auto node = circuit_.node(name);
    circuit_.add<spice::Mosfet>(node, prev, kGround, *design_.nfet,
                                design_.nfin_n);
    circuit_.add<spice::Mosfet>(node, prev, n_vdd, *design_.pfet,
                                design_.nfin_p);
    circuit_.add<spice::Capacitor>(node, kGround, design_.cload_f);
    nodes_.push_back(node);
    prev = node;
  }

  // Quiescent levels: n0 is high (input low), alternating down the chain.
  victim_high_ = true;
  output_high_ = (design_.stages % 2) == 0;

  // Strike on n0: node is high, so the worst-case hit is the OFF NMOS drain
  // (current pulls the node toward ground).
  strike_ = &circuit_.add<spice::PulseISource>(nodes_.front(), kGround,
                                               spice::PulseShape{});
}

SetOutcome SetChainSimulator::inject(double q_fc) {
  FINSER_REQUIRE(q_fc >= 0.0, "SetChainSimulator::inject: negative charge");
  constexpr double kDelayS = 1e-12;
  strike_->set_shape(spice::PulseShape::rectangular_for_charge(
      util::fc_to_c(q_fc), tau_s_, kDelayS));

  // Seed Newton with the alternating logic levels: long chains from an
  // all-zero guess can wander into singular iterates.
  std::vector<double> guess(circuit_.unknown_count(), 0.0);
  guess[circuit_.find_node("vdd")] = vdd_v_;
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    guess[nodes_[s]] = (s % 2 == 0) ? vdd_v_ : 0.0;
  }
  const auto x0 = spice::solve_dc(circuit_, guess);
  spice::TransientOptions opt;
  opt.t_end = 100e-12;
  opt.dt_initial = 1e-15;
  opt.dt_max = 2e-13;
  std::string out_name = "n";
  out_name += std::to_string(design_.stages);
  const auto wave = spice::run_transient(circuit_, x0, opt, {out_name});

  SetOutcome out;
  const double quiescent = output_high_ ? vdd_v_ : 0.0;
  const double mid = 0.5 * vdd_v_;

  double t_first = -1.0, t_last = -1.0;
  for (std::size_t i = 0; i < wave.sample_count(); ++i) {
    const double v = wave.value(0, i);
    out.peak_excursion_v = std::max(out.peak_excursion_v, std::abs(v - quiescent));
    const bool crossed = output_high_ ? (v < mid) : (v > mid);
    if (crossed) {
      if (t_first < 0.0) t_first = wave.times()[i];
      t_last = wave.times()[i];
    }
  }
  out.propagated = t_first >= 0.0;
  out.width_out_s = out.propagated ? std::max(t_last - t_first, 0.0) : 0.0;
  return out;
}

double SetChainSimulator::critical_charge_fc(double q_max_fc, double tol_fc) {
  FINSER_REQUIRE(q_max_fc > 0.0 && tol_fc > 0.0,
                 "critical_charge_fc: bad bracket");
  if (!inject(q_max_fc).propagated) return 1e30;
  double lo = 0.0, hi = q_max_fc;
  while (hi - lo > tol_fc) {
    const double mid = 0.5 * (lo + hi);
    (inject(mid).propagated ? hi : lo) = mid;
  }
  return hi;
}

double latch_capture_probability(double pulse_width_s, double clk_period_s,
                                 double latch_window_s) {
  FINSER_REQUIRE(clk_period_s > 0.0,
                 "latch_capture_probability: period must be positive");
  FINSER_REQUIRE(pulse_width_s >= 0.0 && latch_window_s >= 0.0,
                 "latch_capture_probability: negative width");
  if (pulse_width_s == 0.0) return 0.0;
  return std::clamp((pulse_width_s + latch_window_s) / clk_period_s, 0.0, 1.0);
}

}  // namespace finser::logic
