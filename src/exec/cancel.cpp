#include "finser/exec/cancel.hpp"

#include <csignal>

namespace finser::exec {

namespace {

std::atomic<CancelToken*> g_signal_token{nullptr};

// Child pids registered for signal fan-out. Fixed-size so the signal
// handler never allocates; slot 0 means "empty".
constexpr std::size_t kFanoutSlots = 64;
std::atomic<int> g_fanout[kFanoutSlots]{};

void on_signal(int /*signum*/) {
  CancelToken* token = g_signal_token.load(std::memory_order_acquire);
  if (token != nullptr) token->cancel();
  // Forward a cooperative stop to every registered child. kill() is
  // async-signal-safe; a stale pid (already reaped) is at worst an ESRCH.
  for (std::size_t i = 0; i < kFanoutSlots; ++i) {
    const int pid = g_fanout[i].load(std::memory_order_acquire);
    if (pid > 0) ::kill(pid, SIGTERM);
  }
}

}  // namespace

bool signal_fanout_add(int pid) {
  if (pid <= 0) return false;
  for (std::size_t i = 0; i < kFanoutSlots; ++i) {
    if (g_fanout[i].load(std::memory_order_acquire) == pid) return true;
  }
  for (std::size_t i = 0; i < kFanoutSlots; ++i) {
    int expected = 0;
    if (g_fanout[i].compare_exchange_strong(expected, pid,
                                            std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

void signal_fanout_remove(int pid) {
  for (std::size_t i = 0; i < kFanoutSlots; ++i) {
    int expected = pid;
    g_fanout[i].compare_exchange_strong(expected, 0,
                                        std::memory_order_acq_rel);
  }
}

void install_signal_cancel(CancelToken* token) {
  g_signal_token.store(token, std::memory_order_release);
  struct sigaction sa = {};
  if (token != nullptr) {
    sa.sa_handler = on_signal;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: a blocked read should fail with EINTR so the main loop
    // reaches its next cancellation check promptly.
    sa.sa_flags = 0;
  } else {
    sa.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace finser::exec
