#include "finser/exec/cancel.hpp"

#include <csignal>

namespace finser::exec {

namespace {

std::atomic<CancelToken*> g_signal_token{nullptr};

void on_signal(int /*signum*/) {
  CancelToken* token = g_signal_token.load(std::memory_order_acquire);
  if (token != nullptr) token->cancel();
}

}  // namespace

void install_signal_cancel(CancelToken* token) {
  g_signal_token.store(token, std::memory_order_release);
  struct sigaction sa = {};
  if (token != nullptr) {
    sa.sa_handler = on_signal;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: a blocked read should fail with EINTR so the main loop
    // reaches its next cancellation check promptly.
    sa.sa_flags = 0;
  } else {
    sa.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace finser::exec
