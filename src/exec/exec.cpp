#include "finser/exec/exec.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace finser::exec {

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<std::size_t>(n) : 1;
}

std::size_t threads_from_env() {
  const char* raw = std::getenv("FINSER_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  bool ok = end != raw;
  while (ok && *end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) ok = false;
    ++end;
  }
  if (!ok || v <= 0) {
    std::fprintf(stderr,
                 "finser: ignoring invalid FINSER_THREADS=\"%s\" "
                 "(want a positive integer)\n",
                 raw);
    return 0;
  }
  return static_cast<std::size_t>(v);
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const std::size_t env = threads_from_env();
  if (env > 0) return env;
  return hardware_threads();
}

}  // namespace finser::exec
