#include "finser/exec/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>

#include "finser/exec/exec.hpp"
#include "finser/obs/obs.hpp"

namespace finser::exec {

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex m;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::uint64_t epoch = 0;   // Bumped once per region.
  std::size_t busy = 0;      // Workers still inside the current region.
  bool stop = false;

  // Current region (valid between the epoch bump and busy == 0).
  const std::function<void(const ChunkRange&)>* fn = nullptr;
  const CancelToken* cancel = nullptr;
  std::size_t n_items = 0;
  std::size_t chunk = 0;
  std::size_t n_chunks = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> executed{0};
  std::atomic<std::uint64_t> cancel_seen_ns{0};  // now_ns() at first detection.
  std::exception_ptr error;

  /// Claim and execute chunks until the region is drained. Any schedule is
  /// fine: chunk indices, not threads, key the deterministic state. The
  /// cancel token is polled only here, between chunks, so a chunk either
  /// runs to completion or never starts.
  void run_chunks(std::size_t slot) {
    for (;;) {
      if (cancel != nullptr && cancel->cancelled()) {
        if (obs::enabled()) {
          std::uint64_t expect = 0;
          cancel_seen_ns.compare_exchange_strong(expect, obs::now_ns(),
                                                 std::memory_order_relaxed);
        }
        next_chunk.store(n_chunks, std::memory_order_relaxed);
        return;
      }
      const std::size_t i = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_chunks) return;
      const ChunkRange r{i, i * chunk, std::min(n_items, (i + 1) * chunk), slot};
      try {
        obs::ScopedSpan span("exec.chunk");
        (*fn)(r);
        executed.fetch_add(1, std::memory_order_relaxed);
        FINSER_OBS_COUNT("exec.chunks", 1);
      } catch (...) {
        std::lock_guard<std::mutex> lk(m);
        if (!error) error = std::current_exception();
        // Drain the remaining chunks: fail fast instead of finishing a
        // region whose result is already lost.
        next_chunk.store(n_chunks, std::memory_order_relaxed);
      }
    }
  }

  void worker_main(std::size_t slot) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(m);
        start_cv.wait(lk, [&] { return stop || epoch != seen; });
        if (stop) return;
        seen = epoch;
      }
      run_chunks(slot);
      {
        std::lock_guard<std::mutex> lk(m);
        if (--busy == 0) done_cv.notify_one();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  const std::size_t n = resolve_threads(threads);
  workers_count_ = n - 1;
  impl_->workers.reserve(workers_count_);
  for (std::size_t slot = 1; slot <= workers_count_; ++slot) {
    impl_->workers.emplace_back([this, slot] { impl_->worker_main(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->stop = true;
  }
  impl_->start_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

bool ThreadPool::parallel_for_chunks(
    std::size_t n_items, std::size_t chunk,
    const std::function<void(const ChunkRange&)>& fn,
    const CancelToken* cancel) {
  FINSER_REQUIRE(chunk > 0, "ThreadPool: chunk size must be positive");
  if (n_items == 0) return true;
  const std::size_t n_chunks = (n_items + chunk - 1) / chunk;
  obs::ScopedSpan region_span("exec.region");
  FINSER_OBS_COUNT("exec.regions", 1);
  FINSER_OBS_COUNT("exec.items", n_items);
  FINSER_OBS_GAUGE("exec.region_chunks", n_chunks);

  if (workers_count_ == 0) {
    // Inline fast path: no synchronization, identical chunk decomposition
    // and identical cancellation points.
    for (std::size_t i = 0; i < n_chunks; ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        FINSER_OBS_COUNT("exec.cancelled_regions", 1);
        return false;
      }
      obs::ScopedSpan span("exec.chunk");
      fn({i, i * chunk, std::min(n_items, (i + 1) * chunk), 0});
      FINSER_OBS_COUNT("exec.chunks", 1);
    }
    return true;
  }

  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->fn = &fn;
    impl_->cancel = cancel;
    impl_->n_items = n_items;
    impl_->chunk = chunk;
    impl_->n_chunks = n_chunks;
    impl_->next_chunk.store(0, std::memory_order_relaxed);
    impl_->executed.store(0, std::memory_order_relaxed);
    impl_->cancel_seen_ns.store(0, std::memory_order_relaxed);
    impl_->error = nullptr;
    impl_->busy = workers_count_;
    ++impl_->epoch;
  }
  impl_->start_cv.notify_all();

  impl_->run_chunks(0);  // The caller is worker slot 0.

  std::exception_ptr error;
  std::size_t executed = 0;
  {
    std::unique_lock<std::mutex> lk(impl_->m);
    impl_->done_cv.wait(lk, [&] { return impl_->busy == 0; });
    impl_->fn = nullptr;
    impl_->cancel = nullptr;
    error = impl_->error;
    executed = impl_->executed.load(std::memory_order_relaxed);
  }
  if (error) std::rethrow_exception(error);
  if (executed != n_chunks && !error) {
    FINSER_OBS_COUNT("exec.cancelled_regions", 1);
    if (obs::enabled()) {
      // Latency from the first worker noticing the cancel to the region
      // fully draining (workers parked, caller unblocked).
      const std::uint64_t seen =
          impl_->cancel_seen_ns.load(std::memory_order_relaxed);
      if (seen != 0) {
        const std::uint64_t end = obs::now_ns();
        static obs::DurationStat& latency =
            obs::Registry::global().duration("exec.cancel_latency");
        latency.record_ns(end > seen ? end - seen : 0);
      }
    }
  }
  return executed == n_chunks;
}

}  // namespace finser::exec
