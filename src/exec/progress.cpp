#include "finser/exec/progress.hpp"

#include <atomic>
#include <mutex>

namespace finser::exec {

struct ProgressSink::State {
  MessageFn fn;
  std::chrono::milliseconds min_interval{250};

  std::mutex mutex;  // Guards fn, last_emit, label, total.
  std::chrono::steady_clock::time_point last_emit{};
  std::string label = "progress";
  std::uint64_t total = 0;

  std::atomic<std::uint64_t> done{0};

  std::string line(std::uint64_t n) const {
    if (total > 0) {
      return label + " " + std::to_string(n) + "/" + std::to_string(total);
    }
    return label + " " + std::to_string(n);
  }
};

ProgressSink::ProgressSink(MessageFn fn, std::chrono::milliseconds min_interval)
    : state_(fn ? std::make_shared<State>() : nullptr) {
  if (state_) {
    state_->fn = std::move(fn);
    state_->min_interval = min_interval;
  }
}

void ProgressSink::message(const std::string& m) const {
  if (!state_) return;
  std::lock_guard<std::mutex> lk(state_->mutex);
  state_->fn(m);
}

void ProgressSink::start_phase(const std::string& label,
                               std::uint64_t total) const {
  if (!state_) return;
  std::lock_guard<std::mutex> lk(state_->mutex);
  state_->label = label;
  state_->total = total;
  state_->done.store(0, std::memory_order_relaxed);
  state_->last_emit = std::chrono::steady_clock::now();
}

void ProgressSink::tick(std::uint64_t n) const {
  if (!state_) return;
  const std::uint64_t done =
      state_->done.fetch_add(n, std::memory_order_relaxed) + n;

  // The final tick of a phase always reports; intermediate ticks are
  // throttled to one line per min_interval.
  std::lock_guard<std::mutex> lk(state_->mutex);
  const bool final_tick = state_->total > 0 && done >= state_->total;
  const auto now = std::chrono::steady_clock::now();
  if (!final_tick && now - state_->last_emit < state_->min_interval) return;
  state_->last_emit = now;
  state_->fn(state_->line(done));
}

std::uint64_t ProgressSink::completed() const {
  return state_ ? state_->done.load(std::memory_order_relaxed) : 0;
}

}  // namespace finser::exec
