#include "finser/util/fault.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>

#include "finser/util/error.hpp"

namespace finser::util {

namespace {

constexpr std::size_t kSiteCount = static_cast<std::size_t>(FaultSite::kCount);

const char* site_name(std::size_t i) {
  constexpr const char* kNames[kSiteCount] = {
      "io_write_fail",           "cache_flip", "newton_diverge",
      "kill_after_flush",        "worker_kill_after_claim",
      "lease_torn",              "heartbeat_stall"};
  return kNames[i];
}

struct SiteState {
  std::atomic<std::uint64_t> trigger{0};  // First firing hit; 0 = disabled.
  std::atomic<std::uint64_t> count{1};    // Width of the firing window.
  std::atomic<std::uint64_t> arg{0};      // Raw N/OFFSET field of the spec.
  std::atomic<std::uint64_t> hits{0};
};

struct Registry {
  std::array<SiteState, kSiteCount> sites;
  std::atomic<bool> any_enabled{false};
  std::once_flag env_once;
};

Registry& registry() {
  static Registry r;
  return r;
}

void apply_spec(const std::string& spec) {
  Registry& r = registry();
  for (SiteState& s : r.sites) {
    s.trigger.store(0, std::memory_order_relaxed);
    s.count.store(1, std::memory_order_relaxed);
    s.arg.store(0, std::memory_order_relaxed);
    s.hits.store(0, std::memory_order_relaxed);
  }
  bool any = false;

  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;

    const std::size_t c1 = item.find(':');
    FINSER_REQUIRE(c1 != std::string::npos,
                   "FINSER_FAULT spec `" + item + "` is not <site>:<n>[:<count>]");
    const std::string name = item.substr(0, c1);
    const std::string rest = item.substr(c1 + 1);
    const std::size_t c2 = rest.find(':');
    const std::string n_str = rest.substr(0, c2);
    const std::string k_str =
        c2 == std::string::npos ? std::string() : rest.substr(c2 + 1);

    std::size_t site = kSiteCount;
    for (std::size_t i = 0; i < kSiteCount; ++i) {
      if (name == site_name(i)) site = i;
    }
    FINSER_REQUIRE(site < kSiteCount, "FINSER_FAULT: unknown site `" + name + "`");

    const auto parse_u64 = [&item](const std::string& text) {
      char* endp = nullptr;
      const unsigned long long v = std::strtoull(text.c_str(), &endp, 10);
      FINSER_REQUIRE(endp != text.c_str() && *endp == '\0',
                     "FINSER_FAULT: bad number in `" + item + "`");
      return static_cast<std::uint64_t>(v);
    };
    const std::uint64_t n = parse_u64(n_str);
    const std::uint64_t k = k_str.empty() ? 1 : parse_u64(k_str);
    FINSER_REQUIRE(k >= 1, "FINSER_FAULT: count must be >= 1 in `" + item + "`");

    SiteState& s = r.sites[site];
    s.arg.store(n, std::memory_order_relaxed);
    // cache_flip's argument is a byte offset; its counter trigger is the
    // first save. Counted sites trigger on hit N (1-based).
    const std::uint64_t trig =
        site == static_cast<std::size_t>(FaultSite::kCacheFlip) ? 1 : n;
    FINSER_REQUIRE(trig >= 1, "FINSER_FAULT: hit index must be >= 1 in `" + item + "`");
    s.trigger.store(trig, std::memory_order_relaxed);
    s.count.store(k, std::memory_order_relaxed);
    any = true;
  }
  r.any_enabled.store(any, std::memory_order_release);
}

void init_from_env() {
  std::call_once(registry().env_once, [] {
    const char* raw = std::getenv("FINSER_FAULT");
    if (raw != nullptr && raw[0] != '\0') apply_spec(raw);
  });
}

SiteState& site_state(FaultSite site) {
  return registry().sites[static_cast<std::size_t>(site)];
}

}  // namespace

void fault_configure(const std::string& spec) {
  init_from_env();  // Consume the once-flag so the env never overrides later.
  apply_spec(spec);
}

bool fault_fire(FaultSite site) {
  Registry& r = registry();
  init_from_env();
  if (!r.any_enabled.load(std::memory_order_acquire)) return false;
  SiteState& s = site_state(site);
  const std::uint64_t trigger = s.trigger.load(std::memory_order_relaxed);
  if (trigger == 0) return false;
  const std::uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  return hit >= trigger && hit < trigger + s.count.load(std::memory_order_relaxed);
}

std::uint64_t fault_arg(FaultSite site) {
  init_from_env();
  return site_state(site).arg.load(std::memory_order_relaxed);
}

std::uint64_t fault_count(FaultSite site) {
  return site_state(site).hits.load(std::memory_order_relaxed);
}

}  // namespace finser::util
