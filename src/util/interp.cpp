#include "finser/util/interp.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "finser/util/error.hpp"

namespace finser::util {

namespace {

double to_space(double v, Scale s) { return s == Scale::kLog ? std::log(v) : v; }
double from_space(double v, Scale s) { return s == Scale::kLog ? std::exp(v) : v; }

void check_strictly_increasing(const std::vector<double>& pts) {
  FINSER_REQUIRE(pts.size() >= 2, "axis needs at least two points");
  // Finiteness before ordering: NaN fails every comparison, so it would
  // otherwise be reported as an ordering error, and ±inf would pass as
  // "increasing" and then poison every interpolation weight.
  for (const double p : pts) {
    FINSER_REQUIRE(std::isfinite(p), "axis points must be finite");
  }
  for (std::size_t i = 1; i < pts.size(); ++i) {
    FINSER_REQUIRE(pts[i] > pts[i - 1], "axis points must be strictly increasing");
  }
}

void check_finite_values(const std::vector<double>& values, const char* what) {
  for (const double v : values) {
    if (!std::isfinite(v)) throw InvalidArgument(std::string(what) +
                                                 ": values must be finite");
  }
}

}  // namespace

Axis::Axis(std::vector<double> points, Scale scale)
    : raw_(std::move(points)), scale_(scale) {
  check_strictly_increasing(raw_);
  points_.resize(raw_.size());
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    if (scale_ == Scale::kLog) {
      FINSER_REQUIRE(raw_[i] > 0.0, "log-scaled axis requires positive coordinates");
    }
    points_[i] = to_space(raw_[i], scale_);
  }
}

Axis::Location Axis::locate(double x, OutOfRange policy) const {
  FINSER_REQUIRE(!points_.empty(), "locate() on an empty axis");
  if (!std::isfinite(x)) {
    // Rejected under every policy: a NaN fails both edge comparisons and
    // would fall through to an ill-defined binary search, and an infinity
    // clamped to an edge silently hides the upstream bug that produced it.
    throw DomainError("non-finite axis query");
  }
  if (scale_ == Scale::kLog && x <= 0.0) {
    if (policy == OutOfRange::kThrow) {
      throw DomainError("non-positive query on log-scaled axis");
    }
    return {0, 0.0, true};
  }
  const double xs = to_space(x, scale_);
  if (xs <= points_.front()) {
    if (policy == OutOfRange::kThrow && xs < points_.front()) {
      std::ostringstream os;
      os << "axis query " << x << " below range [" << raw_.front() << ", "
         << raw_.back() << ']';
      throw DomainError(os.str());
    }
    return {0, 0.0, xs < points_.front()};
  }
  if (xs >= points_.back()) {
    if (policy == OutOfRange::kThrow && xs > points_.back()) {
      std::ostringstream os;
      os << "axis query " << x << " above range [" << raw_.front() << ", "
         << raw_.back() << ']';
      throw DomainError(os.str());
    }
    return {points_.size() - 2, 1.0, xs > points_.back()};
  }
  const auto it = std::upper_bound(points_.begin(), points_.end(), xs);
  const std::size_t hi = static_cast<std::size_t>(it - points_.begin());
  const std::size_t lo = hi - 1;
  const double frac = (xs - points_[lo]) / (points_[hi] - points_[lo]);
  return {lo, frac, false};
}

Grid1::Grid1(Axis x, std::vector<double> values, Scale value_scale, OutOfRange policy)
    : x_(std::move(x)), raw_values_(std::move(values)), value_scale_(value_scale),
      policy_(policy) {
  FINSER_REQUIRE(raw_values_.size() == x_.size(), "Grid1: value count != axis size");
  check_finite_values(raw_values_, "Grid1");
  values_.resize(raw_values_.size());
  for (std::size_t i = 0; i < raw_values_.size(); ++i) {
    if (value_scale_ == Scale::kLog) {
      FINSER_REQUIRE(raw_values_[i] > 0.0, "log-scaled values must be positive");
    }
    values_[i] = (value_scale_ == Scale::kLog) ? std::log(raw_values_[i]) : raw_values_[i];
  }
}

double Grid1::operator()(double x) const {
  const auto loc = x_.locate(x, policy_);
  if (loc.clamped && policy_ == OutOfRange::kZero) return 0.0;
  const double v = values_[loc.index] +
                   loc.frac * (values_[loc.index + 1] - values_[loc.index]);
  return from_space(v, value_scale_);
}

double Grid1::integrate() const { return integrate(x_.front(), x_.back()); }

double Grid1::integrate(double a, double b) const {
  FINSER_REQUIRE(b >= a, "Grid1::integrate: b < a");
  const auto& xs = x_.points();
  const double lo = std::max(a, xs.front());
  const double hi = std::min(b, xs.back());
  if (hi <= lo) return 0.0;

  // Integrate the *interpolant* (which may be curved in linear space when
  // axis or values are log-scaled) by refined trapezoid within each
  // tabulated segment. Sub-steps are uniform in the axis's interpolation
  // space so steep power-law tails are resolved; this keeps
  // sum-over-subranges consistent with the full-range integral.
  constexpr int kRefine = 64;
  const auto seg_integral = [this](double x0, double x1) {
    const bool log_axis = x_.scale() == Scale::kLog;
    const double t0 = log_axis ? std::log(x0) : x0;
    const double t1 = log_axis ? std::log(x1) : x1;
    double acc = 0.0;
    double prev_x = x0;
    double prev_y = (*this)(x0);
    for (int k = 1; k <= kRefine; ++k) {
      const double t = t0 + (t1 - t0) * k / kRefine;
      const double x = log_axis ? std::exp(t) : t;
      const double y = (*this)(x);
      acc += 0.5 * (prev_y + y) * (x - prev_x);
      prev_x = x;
      prev_y = y;
    }
    return acc;
  };

  double acc = 0.0;
  double cursor = lo;
  for (std::size_t i = 0; i < xs.size() && cursor < hi; ++i) {
    if (xs[i] <= cursor) continue;
    const double seg_end = std::min(xs[i], hi);
    acc += seg_integral(cursor, seg_end);
    cursor = seg_end;
  }
  if (cursor < hi) acc += seg_integral(cursor, hi);
  return acc;
}

Grid2::Grid2(Axis x, Axis y, std::vector<double> values, OutOfRange policy)
    : x_(std::move(x)), y_(std::move(y)), values_(std::move(values)), policy_(policy) {
  FINSER_REQUIRE(values_.size() == x_.size() * y_.size(),
                 "Grid2: value count != |x|*|y|");
  check_finite_values(values_, "Grid2");
}

double Grid2::operator()(double x, double y) const {
  const auto lx = x_.locate(x, policy_);
  const auto ly = y_.locate(y, policy_);
  if ((lx.clamped || ly.clamped) && policy_ == OutOfRange::kZero) return 0.0;
  const double v00 = at(lx.index, ly.index);
  const double v01 = at(lx.index, ly.index + 1);
  const double v10 = at(lx.index + 1, ly.index);
  const double v11 = at(lx.index + 1, ly.index + 1);
  const double v0 = v00 + ly.frac * (v01 - v00);
  const double v1 = v10 + ly.frac * (v11 - v10);
  return v0 + lx.frac * (v1 - v0);
}

Grid3::Grid3(Axis x, Axis y, Axis z, std::vector<double> values, OutOfRange policy)
    : x_(std::move(x)), y_(std::move(y)), z_(std::move(z)), values_(std::move(values)),
      policy_(policy) {
  FINSER_REQUIRE(values_.size() == x_.size() * y_.size() * z_.size(),
                 "Grid3: value count != |x|*|y|*|z|");
  check_finite_values(values_, "Grid3");
}

double Grid3::operator()(double x, double y, double z) const {
  const auto lx = x_.locate(x, policy_);
  const auto ly = y_.locate(y, policy_);
  const auto lz = z_.locate(z, policy_);
  if ((lx.clamped || ly.clamped || lz.clamped) && policy_ == OutOfRange::kZero) {
    return 0.0;
  }
  double plane[2];
  for (int dx = 0; dx < 2; ++dx) {
    const double v00 = at(lx.index + static_cast<std::size_t>(dx), ly.index, lz.index);
    const double v01 =
        at(lx.index + static_cast<std::size_t>(dx), ly.index, lz.index + 1);
    const double v10 =
        at(lx.index + static_cast<std::size_t>(dx), ly.index + 1, lz.index);
    const double v11 =
        at(lx.index + static_cast<std::size_t>(dx), ly.index + 1, lz.index + 1);
    const double v0 = v00 + lz.frac * (v01 - v00);
    const double v1 = v10 + lz.frac * (v11 - v10);
    plane[dx] = v0 + ly.frac * (v1 - v0);
  }
  return plane[0] + lx.frac * (plane[1] - plane[0]);
}

Axis make_linear_axis(double lo, double hi, std::size_t n) {
  FINSER_REQUIRE(hi > lo, "make_linear_axis: hi <= lo");
  FINSER_REQUIRE(n >= 2, "make_linear_axis: need n >= 2");
  std::vector<double> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  pts.back() = hi;
  return Axis(std::move(pts), Scale::kLinear);
}

Axis make_log_axis(double lo, double hi, std::size_t n) {
  FINSER_REQUIRE(lo > 0.0, "make_log_axis: lo must be positive");
  FINSER_REQUIRE(hi > lo, "make_log_axis: hi <= lo");
  FINSER_REQUIRE(n >= 2, "make_log_axis: need n >= 2");
  std::vector<double> pts(n);
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                static_cast<double>(n - 1));
  }
  pts.back() = hi;
  return Axis(std::move(pts), Scale::kLog);
}

}  // namespace finser::util
