#include "finser/util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "finser/util/error.hpp"

namespace finser::util {

namespace {

std::string cell_to_string(const CsvTable::Cell& c) {
  if (const double* d = std::get_if<double>(&c)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", *d);
    return buf;
  }
  return std::get<std::string>(c);
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> columns) : columns_(std::move(columns)) {
  FINSER_REQUIRE(!columns_.empty(), "CsvTable needs at least one column");
}

void CsvTable::add_row(std::vector<Cell> row) {
  FINSER_REQUIRE(row.size() == columns_.size(), "CsvTable row width != column count");
  rows_.push_back(std::move(row));
}

void CsvTable::write_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(columns_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(cell_to_string(row[i]));
    }
    os << '\n';
  }
}

void CsvTable::write_csv_file(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream os(path);
  FINSER_REQUIRE(os.good(), "cannot open CSV output file: " + path);
  write_csv(os);
}

void CsvTable::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(cell_to_string(row[i]));
      widths[i] = std::max(widths[i], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << (i ? "  " : "");
      os << r[i];
      for (std::size_t pad = r[i].size(); pad < widths[i]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& r : cells) emit(r);
}

}  // namespace finser::util
