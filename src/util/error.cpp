#include "finser/util/error.hpp"

#include <sstream>

namespace finser::util::detail {

void throw_require_failed(const char* expr, const char* file, int line,
                          const std::string& msg) {
  std::ostringstream os;
  os << msg << " [requirement `" << expr << "` failed at " << file << ':' << line << ']';
  throw InvalidArgument(os.str());
}

}  // namespace finser::util::detail
