#include "finser/util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "finser/util/error.hpp"

namespace finser::util {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string strip_comment(const std::string& line) {
  const std::size_t pos = line.find_first_of("#;");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

}  // namespace

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Two-row Wagner-Fischer; row[j] = distance(a[0..i), b[0..j)).
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string nearest_key(const std::string& unknown,
                        const std::vector<std::string>& candidates) {
  constexpr std::size_t kMaxDistance = 2;
  std::string best;
  std::size_t best_d = kMaxDistance + 1;
  for (const std::string& c : candidates) {
    if (c == unknown) continue;
    const std::size_t d = edit_distance(unknown, c);
    if (d < best_d) {
      best = c;
      best_d = d;
    }
  }
  return best_d <= kMaxDistance ? best : std::string();
}

KeyValueConfig KeyValueConfig::parse(const std::string& text) {
  KeyValueConfig cfg;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string body = trim(strip_comment(line));
    if (body.empty()) continue;
    const std::size_t eq = body.find('=');
    FINSER_REQUIRE(eq != std::string::npos,
                   "config line " + std::to_string(line_no) +
                       " is not `key = value`: " + body);
    const std::string key = trim(body.substr(0, eq));
    const std::string value = trim(body.substr(eq + 1));
    FINSER_REQUIRE(!key.empty(), "config line " + std::to_string(line_no) +
                                     " has an empty key");
    const auto prev = cfg.values_.find(key);
    if (prev != cfg.values_.end()) {
      throw InvalidArgument("config key duplicated: " + key + " (line " +
                            std::to_string(line_no) + " repeats line " +
                            std::to_string(prev->second.line) + ")");
    }
    cfg.values_[key] = Entry{value, line_no};
  }
  return cfg;
}

KeyValueConfig KeyValueConfig::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw Error("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool KeyValueConfig::has(const std::string& key) const {
  return values_.find(key) != values_.end();
}

namespace {

/// "key (line N)" — every getter error names the key *and* the source line,
/// so a bad value in a long campaign config is a one-glance fix.
std::string where(const std::string& key, int line) {
  return key + " (line " + std::to_string(line) + ")";
}

}  // namespace

int KeyValueConfig::line_of(const std::string& key) const {
  const auto it = values_.find(key);
  return it == values_.end() ? 0 : it->second.line;
}

double KeyValueConfig::get_double(const std::string& key, double fallback) const {
  requested_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  accessed_[key] = true;
  const Entry& e = it->second;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(e.value, &consumed);
    FINSER_REQUIRE(consumed == e.value.size(),
                   "config value for " + where(key, e.line) +
                       " is not a number: " + e.value);
    return v;
  } catch (const std::logic_error&) {
    throw InvalidArgument("config value for " + where(key, e.line) +
                          " is not a number: " + e.value);
  }
}

long long KeyValueConfig::get_int(const std::string& key, long long fallback) const {
  requested_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  accessed_[key] = true;
  const Entry& e = it->second;
  try {
    std::size_t consumed = 0;
    const long long v = std::stoll(e.value, &consumed);
    FINSER_REQUIRE(consumed == e.value.size(),
                   "config value for " + where(key, e.line) +
                       " is not an integer: " + e.value);
    return v;
  } catch (const std::logic_error&) {
    throw InvalidArgument("config value for " + where(key, e.line) +
                          " is not an integer: " + e.value);
  }
}

bool KeyValueConfig::get_bool(const std::string& key, bool fallback) const {
  requested_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  accessed_[key] = true;
  const Entry& e = it->second;
  std::string v = e.value;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw InvalidArgument("config value for " + where(key, e.line) +
                        " is not a bool: " + e.value);
}

std::string KeyValueConfig::get_string(const std::string& key,
                                       std::string fallback) const {
  requested_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  accessed_[key] = true;
  return it->second.value;
}

std::vector<double> KeyValueConfig::get_double_list(
    const std::string& key, std::vector<double> fallback) const {
  requested_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  accessed_[key] = true;
  const Entry& e = it->second;
  std::vector<double> out;
  std::istringstream is(e.value);
  std::string item;
  while (std::getline(is, item, ',')) {
    const std::string t = trim(item);
    FINSER_REQUIRE(!t.empty(), "config list for " + where(key, e.line) +
                                   " has an empty element");
    try {
      std::size_t consumed = 0;
      out.push_back(std::stod(t, &consumed));
      FINSER_REQUIRE(consumed == t.size(),
                     "config list element for " + where(key, e.line) +
                         " is not a number: " + t);
    } catch (const std::logic_error&) {
      throw InvalidArgument("config list element for " + where(key, e.line) +
                            " is not a number: " + t);
    }
  }
  FINSER_REQUIRE(!out.empty(),
                 "config list for " + where(key, e.line) + " is empty");
  return out;
}

std::vector<std::string> KeyValueConfig::unknown_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (accessed_.find(key) == accessed_.end()) out.push_back(key);
  }
  return out;
}

std::string KeyValueConfig::suggestion_for(const std::string& unknown) const {
  std::vector<std::string> candidates;
  candidates.reserve(requested_.size());
  for (const auto& [key, value] : requested_) {
    (void)value;
    candidates.push_back(key);
  }
  return nearest_key(unknown, candidates);
}

}  // namespace finser::util
