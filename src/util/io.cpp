#include "finser/util/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "finser/util/fault.hpp"

namespace finser::util {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

}  // namespace

bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, std::string* error) {
  if (fault_fire(FaultSite::kIoWriteFail)) {
    set_error(error, "injected I/O failure (FINSER_FAULT io_write_fail)");
    return false;
  }

  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      set_error(error, "cannot create " + target.parent_path().string() + ": " +
                           ec.message());
      return false;
    }
  }

  // The temp file must live on the same filesystem as the target for
  // rename() to stay atomic, so it is a sibling, not a /tmp file.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, "cannot open " + tmp + ": " + std::strerror(errno));
    return false;
  }

  const auto* p = static_cast<const char*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, "write to " + tmp + " failed: " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }

  if (::fsync(fd) != 0) {
    set_error(error, "fsync of " + tmp + " failed: " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "close of " + tmp + " failed: " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + tmp + " -> " + path + " failed: " +
                         std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out,
               std::string* error) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is.good()) {
    set_error(error, "cannot open " + path);
    return false;
  }
  const std::streamsize size = is.tellg();
  if (size < 0) {
    set_error(error, "cannot stat " + path);
    return false;
  }
  is.seekg(0);
  out.resize(static_cast<std::size_t>(size));
  if (size > 0) {
    is.read(reinterpret_cast<char*>(out.data()), size);
    if (!is.good()) {
      set_error(error, "short read from " + path);
      return false;
    }
  }
  return true;
}

}  // namespace finser::util
