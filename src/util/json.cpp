#include "finser/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "finser/util/error.hpp"

namespace finser::util {

namespace {

[[noreturn]] void fail(const std::string& what) { throw Error("json: " + what); }

/// Maximum nesting depth accepted by the parser (and writer, symmetric).
constexpr int kMaxDepth = 64;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unmodified.
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) fail("NaN/Inf is not representable in JSON");
  char buf[40];
  // %.17g round-trips every finite double; normalize "1e+05"-style exponents
  // is not needed — the format is already deterministic for a given value.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
  // Keep the value recognizably floating-point so parse(dump(x)) preserves
  // the numeric kind of whole-valued doubles.
  if (std::strpbrk(buf, ".eEn") == nullptr) out += ".0";
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) fail("not a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint:
      if (uint_ > static_cast<std::uint64_t>(INT64_MAX)) fail("uint out of int64 range");
      return static_cast<std::int64_t>(uint_);
    case Kind::kDouble: {
      const auto i = static_cast<std::int64_t>(double_);
      if (static_cast<double>(i) != double_) fail("double is not an exact integer");
      return i;
    }
    default: fail("not a number");
  }
}

std::uint64_t JsonValue::as_uint() const {
  switch (kind_) {
    case Kind::kUint: return uint_;
    case Kind::kInt:
      if (int_ < 0) fail("negative value is not a uint");
      return static_cast<std::uint64_t>(int_);
    case Kind::kDouble: {
      if (double_ < 0.0) fail("negative value is not a uint");
      const auto u = static_cast<std::uint64_t>(double_);
      if (static_cast<double>(u) != double_) fail("double is not an exact integer");
      return u;
    }
    default: fail("not a number");
  }
}

double JsonValue::as_double() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return double_;
    default: fail("not a number");
  }
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) fail("not a string");
  return string_;
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) fail("operator[]: not an object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, JsonValue());
  return object_.back().second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind_ != Kind::kObject) fail("at(key): not an object");
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  fail("missing key \"" + key + "\"");
}

bool JsonValue::contains(const std::string& key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, v] : object_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::items() const {
  if (kind_ != Kind::kObject) fail("items(): not an object");
  return object_;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) fail("push_back: not an array");
  array_.push_back(std::move(v));
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (kind_ != Kind::kArray) fail("at(index): not an array");
  if (index >= array_.size()) fail("array index out of range");
  return array_[index];
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  fail("size(): not a container");
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  if (depth > kMaxDepth) fail("nesting too deep");
  const auto newline_pad = [&out, indent](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: append_double(out, double_); break;
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        append_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  using Kind = JsonValue::Kind;
  if (a.is_number() && b.is_number()) {
    // Compare exactly within the integer kinds, by value across kinds.
    if (a.kind_ != Kind::kDouble && b.kind_ != Kind::kDouble) {
      const bool a_neg = a.kind_ == Kind::kInt && a.int_ < 0;
      const bool b_neg = b.kind_ == Kind::kInt && b.int_ < 0;
      if (a_neg != b_neg) return false;
      if (a_neg) return a.int_ == b.int_;
      const std::uint64_t au =
          a.kind_ == Kind::kUint ? a.uint_ : static_cast<std::uint64_t>(a.int_);
      const std::uint64_t bu =
          b.kind_ == Kind::kUint ? b.uint_ : static_cast<std::uint64_t>(b.int_);
      return au == bu;
    }
    return a.as_double() == b.as_double();
  }
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return a.bool_ == b.bool_;
    case Kind::kString: return a.string_ == b.string_;
    case Kind::kArray: return a.array_ == b.array_;
    case Kind::kObject: return a.object_ == b.object_;
    default: return false;  // Numeric kinds handled above.
  }
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue run() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != s_.size()) err("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void err(const std::string& what) const {
    fail(what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) err("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) err(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) err("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        err("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        err("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        err("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (v.contains(key)) err("duplicate key \"" + key + "\"");
      v[key] = parse_value(depth + 1);
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') err("expected ',' or '}'");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') err("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) err("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) err("raw control character in string");
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) err("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size()) err("truncated \\u escape");
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else err("invalid \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences — fine for report tooling).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: err("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    bool floating = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        floating = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start + (negative ? 1u : 0u)) err("invalid number");
    const std::string tok = s_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    if (!floating) {
      if (negative) {
        const long long v = std::strtoll(tok.c_str(), &end, 10);
        if (end == tok.c_str() + tok.size() && errno == 0) {
          return JsonValue(static_cast<std::int64_t>(v));
        }
      } else {
        const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
        if (end == tok.c_str() + tok.size() && errno == 0) {
          return JsonValue(static_cast<std::uint64_t>(v));
        }
      }
      errno = 0;  // Out-of-range integer: fall through to double.
    }
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || !std::isfinite(v)) err("invalid number");
    return JsonValue(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace finser::util
