#include "finser/obs/report.hpp"

#include <cstdio>

#include "finser/util/error.hpp"
#include "finser/util/io.hpp"

namespace finser::obs {

namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

double seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

util::JsonValue build_info() {
  util::JsonValue b = util::JsonValue::object();
  b["finser_version"] =
#ifdef FINSER_VERSION_STRING
      FINSER_VERSION_STRING;
#else
      "unknown";
#endif
  b["build_type"] =
#ifdef FINSER_BUILD_TYPE
      FINSER_BUILD_TYPE;
#else
      "unknown";
#endif
  b["sanitizer"] =
#ifdef FINSER_SANITIZE_STRING
      FINSER_SANITIZE_STRING;
#else
      "";
#endif
#ifdef __VERSION__
  b["compiler"] = __VERSION__;
#else
  b["compiler"] = "unknown";
#endif
  b["cxx_standard"] = static_cast<std::int64_t>(__cplusplus);
  return b;
}

}  // namespace

util::JsonValue metrics_json(const Snapshot& snapshot) {
  util::JsonValue m = util::JsonValue::object();
  util::JsonValue counters = util::JsonValue::object();
  for (const auto& c : snapshot.counters) counters[c.name] = c.total;
  m["counters"] = std::move(counters);

  util::JsonValue histograms = util::JsonValue::object();
  for (const auto& h : snapshot.histograms) {
    util::JsonValue row = util::JsonValue::object();
    row["count"] = h.count;
    row["sum"] = h.sum;
    row["min"] = h.min;
    row["max"] = h.max;
    // Trailing zero buckets are trimmed: the payload stays compact and the
    // serialization still round-trips (absent buckets are zero).
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    util::JsonValue buckets = util::JsonValue::array();
    for (std::size_t b = 0; b < last; ++b) buckets.push_back(h.buckets[b]);
    row["pow2_buckets"] = std::move(buckets);
    histograms[h.name] = std::move(row);
  }
  m["histograms"] = std::move(histograms);
  return m;
}

util::JsonValue build_run_report(const Snapshot& snapshot, const RunInfo& info) {
  util::JsonValue doc = util::JsonValue::object();
  doc["schema"] = "finser.run_report";
  doc["version"] = static_cast<std::int64_t>(kRunReportVersion);
  doc["build"] = build_info();

  util::JsonValue run = util::JsonValue::object();
  run["tool"] = info.tool;
  run["command"] = info.command;
  run["seed"] = info.seed;
  run["threads"] = static_cast<std::uint64_t>(info.threads);
  run["lanes"] = static_cast<std::uint64_t>(info.lanes);
  run["mc_scale"] = info.mc_scale;
  run["config_fingerprint"] = hex_u64(info.config_fingerprint);
  doc["run"] = std::move(run);

  doc["metrics"] = metrics_json(snapshot);

  util::JsonValue timing = util::JsonValue::object();
  timing["wall_seconds"] = seconds(now_ns());
  util::JsonValue spans = util::JsonValue::object();
  for (const auto& d : snapshot.durations) {
    util::JsonValue row = util::JsonValue::object();
    row["count"] = d.count;
    row["total_s"] = seconds(d.total_ns);
    row["min_s"] = seconds(d.min_ns);
    row["max_s"] = seconds(d.max_ns);
    spans[d.name] = std::move(row);
  }
  timing["spans"] = std::move(spans);

  util::JsonValue gauges = util::JsonValue::object();
  for (const auto& g : snapshot.gauges) {
    util::JsonValue row = util::JsonValue::object();
    row["value"] = g.value;
    row["max"] = g.max;
    gauges[g.name] = std::move(row);
  }
  timing["gauges"] = std::move(gauges);

  // Derived rates: events per busy-second of the span that timed them
  // (busy-seconds sum across parallel workers, so at 1 thread this is a
  // wall rate and at N threads an aggregate-throughput rate).
  const auto counter_total = [&](const char* name) -> std::uint64_t {
    for (const auto& c : snapshot.counters) {
      if (c.name == name) return c.total;
    }
    return 0;
  };
  const auto span_total_s = [&](const char* name) -> double {
    for (const auto& d : snapshot.durations) {
      if (d.name == name) return seconds(d.total_ns);
    }
    return 0.0;
  };
  util::JsonValue derived = util::JsonValue::object();
  const std::uint64_t particles = counter_total("core.array_mc.strikes") +
                                  counter_total("core.neutron_mc.histories") +
                                  counter_total("phys.fin_mc.samples");
  const double mc_busy_s = span_total_s("core.array_mc.run") +
                           span_total_s("core.neutron_mc.run") +
                           span_total_s("phys.fin_mc.run");
  derived["particles"] = particles;
  derived["particles_per_second"] =
      mc_busy_s > 0.0 ? static_cast<double>(particles) / mc_busy_s : 0.0;
  const std::uint64_t transients = counter_total("spice.tran.runs");
  const double tran_s = span_total_s("spice.tran.run");
  derived["transients_per_second"] =
      tran_s > 0.0 ? static_cast<double>(transients) / tran_s : 0.0;
  timing["derived"] = std::move(derived);

  const Registry& reg = Registry::global();
  timing["trace_events"] = static_cast<std::uint64_t>(reg.trace_events().size());
  timing["dropped_trace_events"] = reg.dropped_trace_events();
  doc["timing"] = std::move(timing);
  return doc;
}

void write_run_report(const std::string& path, const RunInfo& info,
                      const util::JsonValue* shard) {
  util::JsonValue doc =
      build_run_report(Registry::global().snapshot(), info);
  // Optional "shard" section (sharded campaigns: outcome + per-stage
  // failure records). The validator tolerates extra top-level keys, so
  // non-sharded consumers are unaffected.
  if (shard != nullptr) doc["shard"] = *shard;
  const std::string text = doc.dump(2);
  std::string error;
  if (!util::atomic_write_file(path, text.data(), text.size(), &error)) {
    throw util::Error("write_run_report: " + error);
  }
}

util::JsonValue build_chrome_trace(const Registry& registry) {
  util::JsonValue doc = util::JsonValue::object();
  util::JsonValue events = util::JsonValue::array();
  for (const TraceEvent& ev : registry.trace_events()) {
    util::JsonValue e = util::JsonValue::object();
    e["name"] = ev.name;
    e["cat"] = "finser";
    e["ph"] = "X";
    // Chrome tracing wants microseconds; keep sub-µs precision as a double.
    e["ts"] = static_cast<double>(ev.start_ns) * 1e-3;
    e["dur"] = static_cast<double>(ev.dur_ns) * 1e-3;
    e["pid"] = static_cast<std::int64_t>(1);
    e["tid"] = static_cast<std::int64_t>(ev.tid);
    events.push_back(std::move(e));
  }
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

void write_chrome_trace(const std::string& path) {
  const std::string text = build_chrome_trace(Registry::global()).dump(0);
  std::string error;
  if (!util::atomic_write_file(path, text.data(), text.size(), &error)) {
    throw util::Error("write_chrome_trace: " + error);
  }
}

std::string validate_run_report(const util::JsonValue& doc) {
  try {
    if (!doc.is_object()) return "document is not an object";
    if (doc.at("schema").as_string() != "finser.run_report") {
      return "schema marker mismatch";
    }
    if (doc.at("version").as_int() != kRunReportVersion) {
      return "unsupported version";
    }
    for (const char* key : {"build", "run", "metrics", "timing"}) {
      if (!doc.contains(key) || !doc.at(key).is_object()) {
        return std::string("missing section \"") + key + "\"";
      }
    }
    const util::JsonValue& run = doc.at("run");
    for (const char* key : {"tool", "seed", "threads", "config_fingerprint"}) {
      if (!run.contains(key)) return std::string("run section missing \"") + key + "\"";
    }
    const util::JsonValue& metrics = doc.at("metrics");
    if (!metrics.contains("counters") || !metrics.at("counters").is_object()) {
      return "metrics section missing counters";
    }
    if (!metrics.contains("histograms") || !metrics.at("histograms").is_object()) {
      return "metrics section missing histograms";
    }
    const util::JsonValue& timing = doc.at("timing");
    for (const char* key : {"wall_seconds", "spans", "derived"}) {
      if (!timing.contains(key)) {
        return std::string("timing section missing \"") + key + "\"";
      }
    }
    for (const auto& [name, row] : metrics.at("counters").items()) {
      if (!row.is_number()) return "counter \"" + name + "\" is not a number";
    }
    for (const auto& [name, row] : metrics.at("histograms").items()) {
      for (const char* key : {"count", "sum", "min", "max", "pow2_buckets"}) {
        if (!row.contains(key)) {
          return "histogram \"" + name + "\" missing \"" + key + "\"";
        }
      }
    }
  } catch (const util::Error& e) {
    return e.what();
  }
  return {};
}

}  // namespace finser::obs
