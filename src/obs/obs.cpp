#include "finser/obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace finser::obs {

namespace detail {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_trace_enabled{false};

unsigned thread_id() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

/// Lock-free monotonic max/min update for atomics (no fetch_max in C++20's
/// library on all toolchains; a CAS loop is equivalent and contention-free
/// at metric-update rates).
template <typename T>
void atomic_store_max(std::atomic<T>& a, T v) {
  T cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

template <typename T>
void atomic_store_min(std::atomic<T>& a, T v) {
  T cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
  if (!on) detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  if (on) detail::g_enabled.store(true, std::memory_order_relaxed);
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::string configure_from_env() {
  const char* raw = std::getenv("FINSER_METRICS");
  if (raw == nullptr) return {};
  const std::string value(raw);
  if (!value.empty() && value != "0") set_enabled(true);
  return value;
}

std::uint64_t now_ns() {
  // steady_clock is monotonic; rebase on the first call so trace timestamps
  // start near zero (Chrome tracing renders offsets, not absolutes).
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

// ---------------------------------------------------------------------------
// IntHistogram
// ---------------------------------------------------------------------------

void IntHistogram::record(std::uint64_t value) {
  const unsigned width = static_cast<unsigned>(std::bit_width(value));
  const std::size_t bucket = std::min<std::size_t>(width, kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  detail::atomic_store_min(min_, value);
  detail::atomic_store_max(max_, value);
}

std::uint64_t IntHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}
std::uint64_t IntHistogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}
std::uint64_t IntHistogram::min() const {
  return min_.load(std::memory_order_relaxed);
}
std::uint64_t IntHistogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

std::array<std::uint64_t, IntHistogram::kBuckets> IntHistogram::buckets() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

void IntHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// DurationStat / Gauge
// ---------------------------------------------------------------------------

void DurationStat::record_ns(std::uint64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(ns, std::memory_order_relaxed);
  detail::atomic_store_min(min_, ns);
  detail::atomic_store_max(max_, ns);
}

std::uint64_t DurationStat::min_ns() const {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ull ? 0 : v;
}
std::uint64_t DurationStat::max_ns() const {
  return max_.load(std::memory_order_relaxed);
}

void DurationStat::reset() {
  count_.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t v) {
  value_.store(v, std::memory_order_relaxed);
  detail::atomic_store_max(max_, v);
}

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex m;
  // std::map keeps iteration sorted by name — snapshot order falls out for
  // free. Values are unique_ptrs so references survive rehash-free forever.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<IntHistogram>> histograms;
  std::map<std::string, std::unique_ptr<DurationStat>> durations;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::vector<TraceEvent> trace;
  std::uint64_t dropped_trace = 0;
};

Registry& Registry::global() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl i;  // Never destroyed order-dependently before metric users.
  return i;
}

Counter& Registry::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.m);
  auto& slot = i.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

IntHistogram& Registry::int_histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.m);
  auto& slot = i.histograms[name];
  if (!slot) slot = std::make_unique<IntHistogram>();
  return *slot;
}

DurationStat& Registry::duration(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.m);
  auto& slot = i.durations[name];
  if (!slot) slot = std::make_unique<DurationStat>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.m);
  auto& slot = i.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

void Registry::record_trace(TraceEvent event) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.m);
  if (i.trace.size() >= kMaxTraceEvents) {
    ++i.dropped_trace;
    return;
  }
  i.trace.push_back(std::move(event));
}

std::vector<TraceEvent> Registry::trace_events() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.m);
  return i.trace;
}

std::uint64_t Registry::dropped_trace_events() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.m);
  return i.dropped_trace;
}

Snapshot Registry::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.m);
  Snapshot s;
  s.counters.reserve(i.counters.size());
  for (const auto& [name, c] : i.counters) {
    s.counters.push_back({name, c->total()});
  }
  s.histograms.reserve(i.histograms.size());
  for (const auto& [name, h] : i.histograms) {
    Snapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.min = row.count > 0 ? h->min() : 0;
    row.max = h->max();
    row.buckets = h->buckets();
    s.histograms.push_back(std::move(row));
  }
  s.durations.reserve(i.durations.size());
  for (const auto& [name, d] : i.durations) {
    s.durations.push_back({name, d->count(), d->total_ns(), d->min_ns(), d->max_ns()});
  }
  s.gauges.reserve(i.gauges.size());
  for (const auto& [name, g] : i.gauges) {
    s.gauges.push_back({name, g->value(), g->max()});
  }
  return s;
}

void Registry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.m);
  for (auto& kv : i.counters) kv.second->reset();
  for (auto& kv : i.histograms) kv.second->reset();
  for (auto& kv : i.durations) kv.second->reset();
  for (auto& kv : i.gauges) kv.second->reset();
  i.trace.clear();
  i.dropped_trace = 0;
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

void ScopedSpan::start(const char* name) {
  name_ = name;
  start_ns_ = now_ns();
  active_ = true;
}

void ScopedSpan::finish() {
  const std::uint64_t end = now_ns();
  const std::uint64_t dur = end > start_ns_ ? end - start_ns_ : 0;
  Registry::global().duration(name_).record_ns(dur);
  if (trace_enabled()) {
    TraceEvent ev;
    ev.name = label_.empty() ? std::string(name_) : std::move(label_);
    ev.start_ns = start_ns_;
    ev.dur_ns = dur;
    ev.tid = detail::thread_id();
    Registry::global().record_trace(std::move(ev));
  }
}

}  // namespace finser::obs
