#include "finser/ckpt/checkpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "finser/util/bytes.hpp"
#include "finser/util/checksum.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fault.hpp"
#include "finser/util/io.hpp"

namespace finser::ckpt {

namespace {

constexpr char kMagic[8] = {'F', 'N', 'S', 'R', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kFormatVersion = 1;

void warn(const std::string& msg) {
  std::fprintf(stderr, "[finser:ckpt] warning: %s\n", msg.c_str());
}

}  // namespace

std::size_t Checkpoint::done_count() const {
  std::size_t n = 0;
  for (const auto& b : blobs) {
    if (!b.empty()) ++n;
  }
  return n;
}

bool Checkpoint::save(const std::string& path, std::string* error) const {
  util::ByteWriter payload;
  payload.u32(kFormatVersion);
  payload.u64(fingerprint);
  payload.u64(blobs.size());
  payload.u64(done_count());
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    if (blobs[i].empty()) continue;
    payload.u64(i);
    payload.u64(blobs[i].size());
    payload.bytes(blobs[i].data(), blobs[i].size());
  }

  util::ByteWriter file;
  file.bytes(kMagic, sizeof(kMagic));
  file.bytes(payload.data().data(), payload.size());
  file.u32(util::crc32(payload.data().data(), payload.size()));

  if (!util::atomic_write_file(path, file.data().data(), file.size(), error)) {
    return false;
  }
  // The kill-and-resume test SIGKILLs the process *after* a flush has safely
  // landed on disk — the checkpoint must survive exactly this death.
  if (util::fault_fire(util::FaultSite::kKillAfterFlush)) {
    std::raise(SIGKILL);
  }
  return true;
}

bool Checkpoint::try_load(const std::string& path,
                          std::uint64_t expected_fingerprint,
                          std::size_t expected_units, Checkpoint& out,
                          std::string* reason) {
  const auto reject = [&](const std::string& why) {
    if (reason != nullptr) *reason = why;
    return false;
  };

  std::vector<std::uint8_t> raw;
  std::string io_error;
  if (!util::read_file(path, raw, &io_error)) return reject(io_error);
  if (raw.size() < sizeof(kMagic) + sizeof(std::uint32_t)) {
    return reject("file too short to be a checkpoint (" +
                  std::to_string(raw.size()) + " bytes)");
  }
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return reject("bad magic (not a finser checkpoint)");
  }

  const std::size_t payload_size =
      raw.size() - sizeof(kMagic) - sizeof(std::uint32_t);
  const std::uint8_t* payload = raw.data() + sizeof(kMagic);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload + payload_size, sizeof(stored_crc));
  const std::uint32_t actual_crc = util::crc32(payload, payload_size);
  if (stored_crc != actual_crc) {
    return reject("CRC mismatch (stored " + std::to_string(stored_crc) +
                  ", computed " + std::to_string(actual_crc) +
                  "): torn or corrupted file");
  }

  try {
    util::ByteReader r(payload, payload_size);
    const std::uint32_t version = r.u32();
    if (version != kFormatVersion) {
      return reject("unsupported format version " + std::to_string(version));
    }
    const std::uint64_t fp = r.u64();
    if (fp != expected_fingerprint) {
      return reject("config fingerprint mismatch (checkpoint is from a "
                    "different configuration)");
    }
    const std::uint64_t n_units = r.u64();
    if (n_units != expected_units) {
      return reject("unit count mismatch (checkpoint has " +
                    std::to_string(n_units) + ", run expects " +
                    std::to_string(expected_units) + ")");
    }
    const std::uint64_t n_blobs = r.u64();
    if (n_blobs > n_units) {
      return reject("blob count exceeds unit count");
    }
    Checkpoint ck;
    ck.fingerprint = fp;
    ck.blobs.assign(n_units, {});
    for (std::uint64_t b = 0; b < n_blobs; ++b) {
      const std::uint64_t index = r.u64();
      const std::uint64_t size = r.u64();
      if (index >= n_units) return reject("blob index out of range");
      if (!ck.blobs[index].empty()) return reject("duplicate blob index");
      if (size == 0 || size > r.remaining()) {
        return reject("blob size out of range");
      }
      ck.blobs[index].resize(size);
      r.bytes(ck.blobs[index].data(), size);
    }
    if (!r.exhausted()) return reject("trailing bytes after last blob");
    out = std::move(ck);
    return true;
  } catch (const std::exception& e) {
    return reject(std::string("malformed payload: ") + e.what());
  }
}

std::vector<std::size_t> round_boundaries(std::size_t n_units,
                                          const AdaptiveSchedule& schedule) {
  FINSER_REQUIRE(n_units > 0, "ckpt::round_boundaries: no work units");
  FINSER_REQUIRE(schedule.growth >= 1.0,
                 "ckpt::round_boundaries: growth must be >= 1");
  std::vector<std::size_t> bounds;
  std::size_t b =
      std::min(n_units, std::max<std::size_t>(1, schedule.min_units));
  bounds.push_back(b);
  while (b < n_units) {
    const double grown = std::ceil(static_cast<double>(b) * schedule.growth);
    std::size_t next = b + 1;
    if (grown >= static_cast<double>(n_units)) {
      next = n_units;
    } else if (grown > static_cast<double>(next)) {
      next = static_cast<std::size_t>(grown);
    }
    b = next;
    bounds.push_back(b);
  }
  return bounds;
}

namespace {

/// Shared core of run_units / run_units_adaptive. Rounds execute in order;
/// after each boundary short of n_units the (optional) predicate may stop
/// the run. The checkpoint always has one slot per potential unit, so both
/// entry points read and write the same file format and a checkpoint taken
/// by one resumes under the other (the fingerprint is what distinguishes
/// configurations, not the driver).
UnitRunResult run_rounds(exec::ThreadPool& pool, std::size_t n_units,
                         std::uint64_t fingerprint, const RunOptions& run,
                         const std::vector<std::size_t>& bounds,
                         const UnitFn& compute, const ConvergedFn& converged) {
  UnitRunResult out;
  out.blobs.assign(n_units, {});

  if (run.checkpointing()) {
    Checkpoint restored;
    std::string reason;
    if (Checkpoint::try_load(run.checkpoint_path, fingerprint, n_units,
                             restored, &reason)) {
      out.blobs = std::move(restored.blobs);
      for (const auto& b : out.blobs) {
        if (!b.empty()) ++out.reused;
      }
    } else if (std::filesystem::exists(run.checkpoint_path)) {
      warn("discarding checkpoint " + run.checkpoint_path + ": " + reason +
           "; recomputing from scratch");
    }
  }

  // Workers publish each finished blob under this mutex; the flusher
  // snapshots the blob vector under the same mutex, so the periodic save
  // never races a concurrent store.
  std::mutex flush_m;
  using Clock = std::chrono::steady_clock;
  Clock::time_point last_flush = Clock::now();

  const auto flush_locked = [&]() {
    Checkpoint ck;
    ck.fingerprint = fingerprint;
    ck.blobs = out.blobs;
    std::string error;
    if (!ck.save(run.checkpoint_path, &error)) {
      warn("checkpoint flush to " + run.checkpoint_path + " failed: " + error +
           "; continuing without it");
    }
  };

  const auto body = [&](const exec::ChunkRange& r) {
    if (!out.blobs[r.index].empty()) return;  // Restored from the checkpoint.
    std::vector<std::uint8_t> blob = compute(r);
    FINSER_REQUIRE(!blob.empty(), "ckpt::run_units: unit produced empty blob");
    std::lock_guard<std::mutex> lk(flush_m);
    out.blobs[r.index] = std::move(blob);
    if (run.checkpointing()) {
      const Clock::time_point now = Clock::now();
      const double elapsed =
          std::chrono::duration<double>(now - last_flush).count();
      if (run.checkpoint_interval_sec <= 0.0 ||
          elapsed >= run.checkpoint_interval_sec) {
        flush_locked();
        last_flush = now;
      }
    }
  };

  std::size_t lo = 0;
  for (const std::size_t bound : bounds) {
    bool completed = false;
    try {
      // The round region re-bases chunk indices at lo so unit r.index keeps
      // its global identity (RNG stream, blob slot) regardless of rounds.
      completed = pool.parallel_for_chunks(
          bound - lo, 1,
          [&](const exec::ChunkRange& r) {
            body(exec::ChunkRange{r.index + lo, r.begin + lo, r.end + lo,
                                  r.worker});
          },
          run.cancel);
    } catch (...) {
      // Whatever finished before the failure is still valid, deterministic
      // work — persist it so a retry does not repeat it.
      if (run.checkpointing()) {
        std::lock_guard<std::mutex> lk(flush_m);
        flush_locked();
      }
      throw;
    }

    if (!completed) {
      std::string msg = "run cancelled at a chunk boundary";
      if (run.checkpointing()) {
        std::lock_guard<std::mutex> lk(flush_m);
        flush_locked();
        msg += "; progress saved to " + run.checkpoint_path;
      }
      throw util::Cancelled(msg);
    }

    lo = bound;
    if (bound < n_units && converged && converged(bound, out.blobs)) {
      out.stopped_early = true;
      break;
    }
  }

  out.completed = lo;
  out.blobs.resize(lo);

  if (run.checkpointing()) {
    std::error_code ec;
    std::filesystem::remove(run.checkpoint_path, ec);  // Best-effort cleanup.
  }
  return out;
}

}  // namespace

UnitRunResult run_units(exec::ThreadPool& pool, std::size_t n_units,
                        std::uint64_t fingerprint, const RunOptions& run,
                        const UnitFn& compute) {
  FINSER_REQUIRE(n_units > 0, "ckpt::run_units: no work units");
  // One round spanning everything, no predicate: completes every unit.
  return run_rounds(pool, n_units, fingerprint, run, {n_units}, compute,
                    ConvergedFn{});
}

UnitRunResult run_units_adaptive(exec::ThreadPool& pool, std::size_t n_units,
                                 std::uint64_t fingerprint,
                                 const RunOptions& run,
                                 const AdaptiveSchedule& schedule,
                                 const UnitFn& compute,
                                 const ConvergedFn& converged) {
  FINSER_REQUIRE(n_units > 0, "ckpt::run_units_adaptive: no work units");
  FINSER_REQUIRE(static_cast<bool>(converged),
                 "ckpt::run_units_adaptive: convergence predicate required");
  return run_rounds(pool, n_units, fingerprint, run,
                    round_boundaries(n_units, schedule), compute, converged);
}

}  // namespace finser::ckpt
