#include "finser/shard/lease.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "finser/obs/obs.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/checksum.hpp"
#include "finser/util/fault.hpp"
#include "finser/util/io.hpp"

namespace finser::shard {

namespace {

// Format v1. Layout: magic | body | u32 crc32(body); body = u32 version |
// u32 kind | u64 campaign | u64 worker | u64 attempt | u64 seq | u32 state |
// u32 reserved | u64 stage_len | stage bytes | u64 msg_len | msg bytes.
// The campaign fingerprint inside the CRC'd region is the staleness key —
// same role the (kind, fingerprint) echo plays in an artifact blob.
constexpr char kMagic[8] = {'F', 'N', 'S', 'R', 'L', 'S', 'E', '1'};
constexpr std::uint32_t kVersion = 1;

std::vector<std::uint8_t> encode(const LeaseRecord& rec) {
  util::ByteWriter body;
  body.u32(kVersion);
  body.u32(static_cast<std::uint32_t>(rec.kind));
  body.u64(rec.campaign);
  body.u64(rec.worker);
  body.u64(rec.attempt);
  body.u64(rec.seq);
  body.u32(static_cast<std::uint32_t>(rec.state));
  body.u32(0);  // reserved
  body.u64(rec.stage.size());
  body.bytes(rec.stage.data(), rec.stage.size());
  body.u64(rec.message.size());
  body.bytes(rec.message.data(), rec.message.size());

  util::ByteWriter file;
  file.bytes(kMagic, sizeof(kMagic));
  file.bytes(body.data().data(), body.size());
  file.u32(util::crc32(body.data().data(), body.size()));
  return file.take();
}

/// Deliberately land a torn record: the first half of the encoded bytes,
/// written straight to the final path with no temp-and-rename. This is what
/// a crash mid-write on a non-atomic filesystem would leave behind; every
/// reader must bounce it off the CRC.
bool write_torn(const std::string& path,
                const std::vector<std::uint8_t>& bytes, std::string* error) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const std::size_t half = bytes.size() / 2;
  (void)!::write(fd, bytes.data(), half);
  ::close(fd);
  return true;
}

}  // namespace

std::string task_path(const std::string& lease_dir, std::uint64_t worker) {
  return lease_dir + "/task-" + std::to_string(worker);
}

std::string heartbeat_path(const std::string& lease_dir,
                           std::uint64_t worker) {
  return lease_dir + "/hb-" + std::to_string(worker);
}

std::string done_path(const std::string& lease_dir,
                      const std::string& stage_id) {
  return lease_dir + "/done-" + stage_id;
}

bool write_lease(const std::string& path, const LeaseRecord& rec,
                 std::string* error) {
  const std::vector<std::uint8_t> bytes = encode(rec);
  if (util::fault_fire(util::FaultSite::kLeaseTorn)) {
    return write_torn(path, bytes, error);
  }
  if (!util::atomic_write_file(path, bytes.data(), bytes.size(), error)) {
    return false;
  }
  FINSER_OBS_COUNT("shard.lease.writes", 1);
  return true;
}

bool try_read_lease(const std::string& path, std::uint64_t expected_campaign,
                    LeaseRecord& out, std::string* reason) {
  const auto miss = [&](const std::string& why, bool reject) {
    if (reason != nullptr) *reason = why;
    if (reject) {
      FINSER_OBS_COUNT("shard.lease.rejects", 1);
    }
    return false;
  };

  // A missing record is the normal polling case — quiet, uncounted.
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return miss("no lease", false);

  std::vector<std::uint8_t> raw;
  std::string io_error;
  if (!util::read_file(path, raw, &io_error)) return miss(io_error, true);

  if (raw.size() < sizeof(kMagic) + sizeof(std::uint32_t)) {
    return miss("too short to be a lease record (" +
                    std::to_string(raw.size()) + " bytes)",
                true);
  }
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return miss("bad magic (not a format-v1 lease record)", true);
  }

  // Integrity first, parsing second: the CRC over the whole body rejects
  // truncation and bit flips before any length field is trusted.
  const std::size_t body_size =
      raw.size() - sizeof(kMagic) - sizeof(std::uint32_t);
  const std::uint8_t* body = raw.data() + sizeof(kMagic);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, body + body_size, sizeof(stored_crc));
  if (stored_crc != util::crc32(body, body_size)) {
    return miss("CRC mismatch (torn or corrupted lease)", true);
  }

  try {
    util::ByteReader r(body, body_size);
    const std::uint32_t version = r.u32();
    if (version != kVersion) {
      return miss("unknown lease version " + std::to_string(version), true);
    }
    const std::uint32_t kind = r.u32();
    if (kind > static_cast<std::uint32_t>(LeaseKind::kDone)) {
      return miss("unknown lease kind " + std::to_string(kind), true);
    }
    out.kind = static_cast<LeaseKind>(kind);
    out.campaign = r.u64();
    out.worker = r.u64();
    out.attempt = r.u64();
    out.seq = r.u64();
    const std::uint32_t state = r.u32();
    if (state > static_cast<std::uint32_t>(LeaseState::kShutdown)) {
      return miss("unknown lease state " + std::to_string(state), true);
    }
    out.state = static_cast<LeaseState>(state);
    r.u32();  // reserved
    const std::uint64_t stage_len = r.u64();
    out.stage.resize(stage_len);
    r.bytes(out.stage.data(), stage_len);
    const std::uint64_t msg_len = r.u64();
    out.message.resize(msg_len);
    r.bytes(out.message.data(), msg_len);
    if (r.remaining() != 0) return miss("trailing bytes in lease record", true);
  } catch (const std::exception& e) {
    // A corrupt length field that slipped past the CRC must degrade to
    // "absent", never crash a supervisor or worker.
    return miss(e.what(), true);
  }

  if (out.campaign != expected_campaign) {
    return miss("campaign fingerprint mismatch (stale lease)", true);
  }
  FINSER_OBS_COUNT("shard.lease.reads", 1);
  return true;
}

}  // namespace finser::shard
