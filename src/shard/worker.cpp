#include "finser/shard/worker.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <unistd.h>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/exec/cancel.hpp"
#include "finser/pipeline/campaign.hpp"
#include "finser/shard/lease.hpp"
#include "finser/util/error.hpp"
#include "finser/util/fault.hpp"

namespace finser::shard {

namespace {

/// Heartbeat state shared between the main loop and the heartbeat thread.
/// The main loop owns state *transitions* (ack, done, failed); the thread
/// only re-emits the current record every tick, which is what heals a torn
/// or lost heartbeat file without any acknowledgement protocol.
struct Heartbeat {
  std::mutex mutex;
  LeaseRecord rec;     // current record (kind/campaign/worker pre-filled)
  std::string path;
  bool stalled = false;  // heartbeat_stall fired: stop writing, then wedge

  void publish(LeaseState state, const std::string& stage,
               std::uint64_t attempt, const std::string& message = "") {
    std::lock_guard<std::mutex> lock(mutex);
    rec.state = state;
    rec.stage = stage;
    rec.attempt = attempt;
    rec.message = message;
    rec.seq += 1;
    if (!stalled) write_lease(path, rec);
  }

  /// One thread tick: advance seq and rewrite the current record.
  void tick() {
    std::lock_guard<std::mutex> lock(mutex);
    if (stalled) return;
    if (util::fault_fire(util::FaultSite::kHeartbeatStall)) {
      stalled = true;  // sticky: this worker never heartbeats again
      return;
    }
    rec.seq += 1;
    write_lease(path, rec);
  }

  bool is_stalled() {
    std::lock_guard<std::mutex> lock(mutex);
    return stalled;
  }
};

void sleep_s(double seconds) {
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds > 0.0 ? seconds : 0.01));
}

}  // namespace

int run_worker(const WorkerConfig& config) {
  // The worker re-derives everything from the campaign file so it agrees
  // with the supervisor byte-for-byte. The artifact-dir override is applied
  // *before* fingerprinting — the supervisor resolved the same directory,
  // so both sides stamp identical campaign fingerprints into leases.
  pipeline::CampaignSpec spec =
      pipeline::parse_campaign_file(config.campaign_path);
  if (!config.artifact_dir.empty()) spec.artifact_dir = config.artifact_dir;
  const std::uint64_t campaign = pipeline::campaign_fingerprint(spec);

  pipeline::CampaignRunner runner(std::move(spec));
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < runner.plan().size(); ++i) {
    index_of[runner.plan()[i].id] = i;
  }

  // SIGTERM (supervisor fan-out / operator Ctrl-C) cancels the running
  // stage cooperatively; the worker then exits.
  exec::CancelToken cancel;
  exec::install_signal_cancel(&cancel);
  ckpt::RunOptions stage_run;
  stage_run.cancel = &cancel;

  Heartbeat hb;
  hb.path = heartbeat_path(config.lease_dir, config.worker_id);
  hb.rec.kind = LeaseKind::kHeartbeat;
  hb.rec.state = LeaseState::kIdle;
  hb.rec.campaign = campaign;
  hb.rec.worker = config.worker_id;
  hb.publish(LeaseState::kIdle, "", 0);

  // Orphan watch: if the supervisor is kill -9'd we are re-parented; exit
  // instead of computing for a campaign nobody is steering. Checked in both
  // loops so even a wedged (stalled) worker's watchdog thread still exits.
  const pid_t parent = ::getppid();
  std::thread hb_thread([&hb, &config, parent] {
    for (;;) {
      if (::getppid() != parent) ::_exit(0);
      hb.tick();
      sleep_s(config.heartbeat_period_s);
    }
  });
  hb_thread.detach();

  const char* poison_env = std::getenv("FINSER_SHARD_POISON");
  const std::string poison = poison_env != nullptr ? poison_env : "";
  const std::string task_file = task_path(config.lease_dir, config.worker_id);
  const exec::ProgressSink progress;  // workers are quiet; supervisor narrates

  std::string done_stage;       // dedupe: last (stage, attempt) handled
  std::uint64_t done_attempt = 0;
  for (;;) {
    if (::getppid() != parent) ::_exit(0);
    if (cancel.cancelled()) return 4;

    LeaseRecord task;
    if (!try_read_lease(task_file, campaign, task) ||
        task.kind != LeaseKind::kTask) {
      sleep_s(config.poll_period_s);
      continue;
    }
    if (task.state == LeaseState::kShutdown) return 0;
    if (task.state != LeaseState::kAssign ||
        (task.stage == done_stage && task.attempt == done_attempt)) {
      sleep_s(config.poll_period_s);
      continue;
    }
    done_stage = task.stage;
    done_attempt = task.attempt;

    // Ack: the supervisor treats this heartbeat as the claim. The
    // kill-after-claim drill dies exactly here — after the claim is
    // durable, before any stage work — the worst spot for the supervisor.
    hb.publish(LeaseState::kRunning, task.stage, task.attempt);
    if (util::fault_fire(util::FaultSite::kWorkerKillAfterClaim)) {
      ::raise(SIGKILL);
    }
    if (!poison.empty() && task.stage.find(poison) != std::string::npos) {
      ::raise(SIGKILL);  // deterministic repeat-crasher (quarantine tests)
    }

    try {
      const auto it = index_of.find(task.stage);
      FINSER_REQUIRE(it != index_of.end(),
                     "worker: unknown stage id `" + task.stage +
                         "` (campaign file changed under the supervisor?)");
      runner.run_stage(it->second, config.threads, progress, stage_run);
      // Durable completion marker first (resume authority for future
      // supervisors), then the done heartbeat (completion authority for
      // this one). Losing the marker only costs a recompute next run.
      LeaseRecord done;
      done.kind = LeaseKind::kDone;
      done.state = LeaseState::kDone;
      done.campaign = campaign;
      done.worker = config.worker_id;
      done.attempt = task.attempt;
      done.seq = task.seq;
      done.stage = task.stage;
      write_lease(done_path(config.lease_dir, task.stage), done);
      hb.publish(LeaseState::kDone, task.stage, task.attempt);
    } catch (const util::Cancelled&) {
      return 4;
    } catch (const std::exception& e) {
      hb.publish(LeaseState::kFailed, task.stage, task.attempt, e.what());
    }

    // heartbeat_stall wedges at the stage boundary: no heartbeat, no done
    // report, no exit — exactly the pathology the supervisor's timeout
    // must catch. The watchdog thread still handles orphan exit.
    while (hb.is_stalled()) ::pause();
  }
}

}  // namespace finser::shard
